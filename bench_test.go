// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation section (Sec. IV). Each benchmark runs the corresponding
// experiment at a laptop-friendly scale (the cmd/ tools run the full
// 80x40 = 3200-node and up-to-51200-node versions) and reports the
// domain results via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the paper's rows/series alongside the timing data:
//
//	Fig. 1   — BenchmarkFig1TManShapeLoss       (occupancy collapse)
//	Fig. 6a  — BenchmarkFig6aHomogeneity        (poly vs tman homogeneity)
//	Fig. 6b  — BenchmarkFig6bProximity          (poly vs tman proximity)
//	Fig. 7a  — BenchmarkFig7aMemoryOverhead     (data points per node)
//	Fig. 7b  — BenchmarkFig7bMessageCost        (units per node per round)
//	Fig. 8   — BenchmarkFig8RepairSnapshot      (occupancy during repair)
//	Fig. 9   — BenchmarkFig9Reinjection         (homogeneity after reinjection)
//	Table II — BenchmarkTableIIReshaping        (reshaping time & reliability per K)
//	Fig. 10a — BenchmarkFig10aScalability       (reshaping time vs network size)
//	Fig. 10b — BenchmarkFig10bSplitAblation     (reshaping time per split function)
//
// Scale note: benches use a 40x20 torus (800 nodes) and compressed phases
// (fail at 20, reinject at 60, end at 100); the published shape — who
// wins, by what factor, where the crossovers sit — is preserved, as
// EXPERIMENTS.md documents against full-scale runs.
package polystyrene

import (
	"fmt"
	"testing"

	"polystyrene/internal/core"
	"polystyrene/internal/route"
	"polystyrene/internal/scenario"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/viz"
)

// benchGrid is the bench-scale torus (the paper uses 80x40).
const (
	benchW = 40
	benchH = 20
)

func benchPhases() scenario.Phases {
	return scenario.Phases{FailAt: 20, ReinjectAt: 60, End: 100}
}

func benchCfg(seed uint64, poly bool, k int) scenario.Config {
	return scenario.Config{Seed: seed, W: benchW, H: benchH, Polystyrene: poly, K: k}
}

// runPaperBench executes the 3-phase scenario once per b.N iteration and
// returns the last iteration's result.
func runPaperBench(b *testing.B, cfg scenario.Config) *scenario.Result {
	b.Helper()
	var res *scenario.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = scenario.RunPaper(cfg, benchPhases())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFig1TManShapeLoss reproduces Fig. 1: plain T-Man heals its
// links after the half-torus crash but the shape is gone — half the
// density cells stay empty.
func BenchmarkFig1TManShapeLoss(b *testing.B) {
	var occBefore, occAfter float64
	for i := 0; i < b.N; i++ {
		sc := scenario.MustNew(scenario.Config{
			Seed: 1, W: benchW, H: benchH, Polystyrene: false, SkipMetrics: true,
		})
		sc.Run(20)
		occBefore = viz.OccupancyStats(sc.Space, sc.Snapshot(), benchW/2, benchH/2)
		sc.FailRightHalf()
		sc.Run(30)
		occAfter = viz.OccupancyStats(sc.Space, sc.Snapshot(), benchW/2, benchH/2)
	}
	b.ReportMetric(100*occBefore, "occupancy_before_%")
	b.ReportMetric(100*occAfter, "occupancy_after_%")
}

// BenchmarkFig6aHomogeneity reproduces Fig. 6a: homogeneity over the full
// 3-phase scenario for Polystyrene (K=4) vs plain T-Man. The paper's
// shape: Polystyrene re-converges below H after the crash and near zero
// after reinjection; T-Man stays flat and high.
func BenchmarkFig6aHomogeneity(b *testing.B) {
	phases := benchPhases()
	for name, poly := range map[string]bool{"polystyrene_K4": true, "tman": false} {
		b.Run(name, func(b *testing.B) {
			res := runPaperBench(b, benchCfg(1, poly, 4))
			b.ReportMetric(res.Homogeneity[phases.FailAt+8], "homog_postfail_r+8")
			b.ReportMetric(res.Homogeneity[phases.End-1], "homog_final")
		})
	}
}

// BenchmarkFig6bProximity reproduces Fig. 6b: Polystyrene's neighbourhoods
// stay nearly as tight as T-Man's throughout the scenario.
func BenchmarkFig6bProximity(b *testing.B) {
	phases := benchPhases()
	for name, poly := range map[string]bool{"polystyrene_K4": true, "tman": false} {
		b.Run(name, func(b *testing.B) {
			res := runPaperBench(b, benchCfg(2, poly, 4))
			b.ReportMetric(res.Proximity[phases.FailAt+8], "prox_postfail_r+8")
			b.ReportMetric(res.Proximity[phases.End-1], "prox_final")
		})
	}
}

// BenchmarkFig7aMemoryOverhead reproduces Fig. 7a: data points per node is
// ~K+1 before the crash, spikes just after it (eager re-replication of
// reactivated ghosts), and settles at ~2(K+1) while half the fleet is
// down.
func BenchmarkFig7aMemoryOverhead(b *testing.B) {
	phases := benchPhases()
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			res := runPaperBench(b, benchCfg(3, true, k))
			b.ReportMetric(res.DataPoints[phases.FailAt-1], "points_prefail")
			b.ReportMetric(res.DataPoints[phases.FailAt+1], "points_spike")
			b.ReportMetric(res.DataPoints[phases.ReinjectAt-1], "points_stable")
		})
	}
}

// BenchmarkFig7bMessageCost reproduces Fig. 7b: total communication is
// dominated by T-Man; Polystyrene adds only migration and (incremental)
// backup traffic on top.
func BenchmarkFig7bMessageCost(b *testing.B) {
	phases := benchPhases()
	for name, poly := range map[string]bool{"polystyrene_K8": true, "tman": false} {
		b.Run(name, func(b *testing.B) {
			k := 8
			var tmanShare float64
			var res *scenario.Result
			for i := 0; i < b.N; i++ {
				sc, r, err := scenario.RunPaper(benchCfg(4, poly, k), phases)
				if err != nil {
					b.Fatal(err)
				}
				res = r
				m := sc.Engine.Meter()
				total := m.TotalCost("tman") + m.TotalCost("polystyrene")
				if total > 0 {
					tmanShare = float64(m.TotalCost("tman")) / float64(total)
				}
			}
			b.ReportMetric(res.MsgCost[phases.ReinjectAt-1], "units_per_node_round")
			b.ReportMetric(100*tmanShare, "tman_share_%")
		})
	}
}

// BenchmarkFig8RepairSnapshot reproduces Fig. 8: shortly after the crash
// the shape is already repaired — occupancy of the crashed half returns to
// ~100% within ~8 rounds (paper: repair completed by round 28, i.e. 8
// rounds after the failure, K=4).
func BenchmarkFig8RepairSnapshot(b *testing.B) {
	var occStart, occDone float64
	for i := 0; i < b.N; i++ {
		sc := scenario.MustNew(scenario.Config{
			Seed: 5, W: benchW, H: benchH, Polystyrene: true, K: 4, SkipMetrics: true,
		})
		sc.Run(20)
		sc.FailRightHalf()
		sc.Run(2) // repair started (paper Fig. 8a: r = 22)
		occStart = viz.OccupancyStats(sc.Space, sc.Snapshot(), benchW/2, benchH/2)
		sc.Run(6) // repair completed (paper Fig. 8b: r = 28)
		occDone = viz.OccupancyStats(sc.Space, sc.Snapshot(), benchW/2, benchH/2)
	}
	b.ReportMetric(100*occStart, "occupancy_r+2_%")
	b.ReportMetric(100*occDone, "occupancy_r+8_%")
}

// BenchmarkFig9Reinjection reproduces Fig. 9: after fresh nodes are
// injected, Polystyrene redistributes data points onto them and reaches a
// homogeneity an order of magnitude below plain T-Man's plateau (~0.35 for
// a unit grid, the offset-grid floor).
func BenchmarkFig9Reinjection(b *testing.B) {
	phases := benchPhases()
	for name, poly := range map[string]bool{"polystyrene_K4": true, "tman": false} {
		b.Run(name, func(b *testing.B) {
			res := runPaperBench(b, benchCfg(6, poly, 4))
			b.ReportMetric(res.Homogeneity[phases.End-1], "homog_after_reinject")
		})
	}
}

// BenchmarkTableIIReshaping reproduces Table II: reshaping time grows with
// K while reliability approaches 1 - 0.5^(K+1) (87.5% / 96.9% / 99.8%).
func BenchmarkTableIIReshaping(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var rows []scenario.TableIIRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = scenario.TableII(
					scenario.Config{Seed: 7, W: benchW, H: benchH},
					[]int{k}, scenario.RunOpts{Reps: 3, ConvergeRounds: 20, MaxRounds: 60})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].ReshapingTime.Mean(), "reshaping_rounds")
			b.ReportMetric(rows[0].ReliabilityPct.Mean(), "reliability_%")
		})
	}
}

// BenchmarkFig10aScalability reproduces Fig. 10a: reshaping time grows
// roughly logarithmically with network size for each K (the cmd/polysweep
// tool extends the sweep to the paper's 51 200 nodes). The unsuffixed
// variants run the sequential engine; the _w2 variants run the same cells
// under intra-round exchange batching with two workers (the polysweep
// `-exchange-parallel` path) — a different, equally valid deterministic
// trajectory, so their reshaping_rounds may differ slightly from the
// sequential ones while the published growth shape is preserved.
func BenchmarkFig10aScalability(b *testing.B) {
	for _, size := range []scenario.GridSize{{W: 16, H: 8}, {W: 40, H: 20}, {W: 80, H: 40}} {
		for _, k := range []int{2, 8} {
			for _, workers := range []int{0, 2} {
				name := fmt.Sprintf("N%d_K%d", size.W*size.H, k)
				if workers > 0 {
					if k != 2 {
						continue // one parallel series tracks the scheduler
					}
					name = fmt.Sprintf("%s_w%d", name, workers)
				}
				b.Run(name, func(b *testing.B) {
					var rounds float64
					for i := 0; i < b.N; i++ {
						cfg := scenario.Config{
							Seed: 8, W: size.W, H: size.H, Polystyrene: true, K: k,
							ExchangeParallelism: workers,
						}
						out, err := scenario.MeasureReshaping(cfg, 20, 80)
						if err != nil {
							b.Fatal(err)
						}
						rounds = float64(out.Rounds)
					}
					b.ReportMetric(rounds, "reshaping_rounds")
				})
			}
		}
	}
}

// BenchmarkFig10bSplitAblation reproduces Fig. 10b: the split heuristics
// dominate convergence speed — SplitAdvanced (PD+MD) beats SplitMD beats
// SplitBasic, by nearly 3x at the paper's largest scale.
func BenchmarkFig10bSplitAblation(b *testing.B) {
	for _, kind := range []core.SplitKind{core.SplitBasic, core.SplitMD, core.SplitPD, core.SplitAdvanced} {
		b.Run(kind.String(), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				cfg := scenario.Config{
					Seed: 9, W: benchW * 2, H: benchH * 2, // larger grid separates the curves
					Polystyrene: true, K: 4, Split: kind,
				}
				out, err := scenario.MeasureReshaping(cfg, 20, 120)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(out.Rounds)
			}
			b.ReportMetric(rounds, "reshaping_rounds")
		})
	}
}

// BenchmarkAblationBackupDeltas quantifies the incremental-delta backup
// optimisation of Sec. III-D: steady-state Polystyrene traffic with full
// copies vs deltas.
func BenchmarkAblationBackupDeltas(b *testing.B) {
	for name, full := range map[string]bool{"full_copy": true, "incremental": false} {
		b.Run(name, func(b *testing.B) {
			var perNode float64
			for i := 0; i < b.N; i++ {
				sc := scenario.MustNew(scenario.Config{
					Seed: 10, W: benchW, H: benchH, Polystyrene: true, K: 8,
					FullCopyBackup: full, SkipMetrics: true,
				})
				sc.Run(20)
				perNode = float64(sc.Engine.Meter().RoundCost("polystyrene", 19)) /
					float64(sc.Engine.NumLive())
			}
			b.ReportMetric(perNode, "poly_units_per_node")
		})
	}
}

// BenchmarkAblationBackupPlacement contrasts random backup placement (the
// paper's default, robust to correlated failures) with neighbour-local
// placement, which loses more points when a whole region dies together.
func BenchmarkAblationBackupPlacement(b *testing.B) {
	for name, placement := range map[string]core.BackupPlacement{
		"random": core.PlaceRandom, "neighbors": core.PlaceNeighbors,
	} {
		b.Run(name, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := scenario.Config{
					Seed: 11, W: benchW, H: benchH, Polystyrene: true, K: 4,
					Placement: placement,
				}
				out, err := scenario.MeasureReshaping(cfg, 20, 80)
				if err != nil {
					b.Fatal(err)
				}
				rel = 100 * out.Reliability
			}
			b.ReportMetric(rel, "reliability_%")
		})
	}
}

// BenchmarkAblationOverlayHost compares the two topology-construction
// hosts the paper names for Polystyrene (Fig. 3): reshaping time over
// T-Man vs over Vicinity.
func BenchmarkAblationOverlayHost(b *testing.B) {
	for _, overlay := range []string{"tman", "vicinity"} {
		b.Run(overlay, func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				cfg := scenario.Config{
					Seed: 12, W: benchW, H: benchH, Polystyrene: true, K: 4,
					Overlay: overlay,
				}
				out, err := scenario.MeasureReshaping(cfg, 25, 80)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(out.Rounds)
			}
			b.ReportMetric(rounds, "reshaping_rounds")
		})
	}
}

// BenchmarkAppRouting quantifies the paper's routing motivation (Sec. I):
// greedy geometric routing into the crashed half of the torus lands ~on
// target over a Polystyrene-recovered shape and stalls half a torus away
// over the collapsed baseline.
func BenchmarkAppRouting(b *testing.B) {
	probes := []space.Point{{30, 10}, {25, 5}, {35, 15}, {32, 2}, {28, 18}}
	for name, poly := range map[string]bool{"polystyrene": true, "tman": false} {
		b.Run(name, func(b *testing.B) {
			var meanDist, meanHops float64
			for i := 0; i < b.N; i++ {
				sc := scenario.MustNew(scenario.Config{
					Seed: 13, W: benchW, H: benchH, Polystyrene: poly, K: 4, SkipMetrics: true,
				})
				sc.Run(20)
				sc.FailRightHalf()
				sc.Run(20)
				r := &route.Router{
					Space:    sc.Space,
					Topology: sc.Topology(),
					Position: func(id sim.NodeID) space.Point { return sc.System().Position(id) },
				}
				st, err := r.Probe(sc.Engine, sc.Engine.LiveIDs()[0], probes)
				if err != nil {
					b.Fatal(err)
				}
				meanDist = st.MeanFinalDistance()
				meanHops = st.MeanHops()
			}
			b.ReportMetric(meanDist, "final_distance")
			b.ReportMetric(meanHops, "hops")
		})
	}
}

// BenchmarkExtensionChurn measures the sustained-churn extension: shape
// retention (homogeneity vs reference H) under 1% per-round churn with
// replacement — the regime the paper's conclusion points at.
func BenchmarkExtensionChurn(b *testing.B) {
	var out scenario.ChurnOutcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = scenario.RunChurn(
			scenario.Config{Seed: 14, W: benchW, H: benchH, Polystyrene: true, K: 6},
			scenario.ChurnConfig{Rate: 0.01, Replace: true, Rounds: 30}, 20, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(out.FinalHomogeneity, "homogeneity")
	b.ReportMetric(out.FinalReference, "reference_H")
	b.ReportMetric(100*out.Reliability, "reliability_%")
}

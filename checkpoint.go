package polystyrene

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
	"polystyrene/internal/space"
)

const systemKind = "system"

// systemDigest is the structural identity of a System embedded in every
// checkpoint: a snapshot may only be restored into a system wired from an
// equivalent configuration. Seed and ExchangeParallelism are excluded —
// the RNG state travels inside the snapshot, and exchange parallelism is
// a throughput knob whose batched trajectories are worker-count
// invariant. The shape itself is folded into a hash rather than stored
// (the interned point table inside the engine section carries the actual
// coordinates).
type systemDigest struct {
	spaceKind  string
	spaceDim   int
	widthsHash uint64
	shapeLen   int
	shapeHash  uint64
	k          int
	split      string
	baseline   bool
	delay      int
	neighborK  int
}

func (s *System) digest() systemDigest {
	return systemDigest{
		spaceKind:  s.cfg.Space.kind,
		spaceDim:   s.cfg.Space.dim,
		widthsHash: hashFloats(s.cfg.Space.widths),
		shapeLen:   len(s.shape),
		shapeHash:  hashPoints(s.shape),
		k:          s.cfg.ReplicationFactor,
		split:      s.cfg.Split,
		baseline:   s.cfg.Baseline,
		delay:      s.cfg.DetectionDelay,
		neighborK:  s.cfg.NeighborK,
	}
}

func hashFloats(vs []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

func hashPoints(pts []space.Point) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(b[:], uint64(len(p)))
		h.Write(b[:])
		for _, v := range p {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

func (d systemDigest) write(w *snap.Writer) {
	w.String(d.spaceKind)
	w.Int(d.spaceDim)
	w.U64(d.widthsHash)
	w.Int(d.shapeLen)
	w.U64(d.shapeHash)
	w.Int(d.k)
	w.String(d.split)
	w.Bool(d.baseline)
	w.Int(d.delay)
	w.Int(d.neighborK)
}

func readSystemDigest(r *snap.Reader) systemDigest {
	var d systemDigest
	d.spaceKind = r.String()
	d.spaceDim = r.Int()
	d.widthsHash = r.U64()
	d.shapeLen = r.Int()
	d.shapeHash = r.U64()
	d.k = r.Int()
	d.split = r.String()
	d.baseline = r.Bool()
	d.delay = r.Int()
	d.neighborK = r.Int()
	return d
}

// Snapshot writes a checksummed checkpoint of the whole system — a
// configuration digest, the pinned positions of late-joined nodes, and
// the complete engine state (RNG, liveness, message meter and every
// protocol layer) — to w. Restoring it into a freshly built System of an
// equivalent configuration and running n more rounds is byte-identical
// to never having checkpointed, at every ExchangeParallelism setting.
func (s *System) Snapshot(w io.Writer) error {
	var sw snap.Writer
	s.digest().write(&sw)

	ids := make([]sim.NodeID, 0, len(s.fixedPos))
	for id := range s.fixedPos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sw.Len(len(ids))
	for _, id := range ids {
		sw.Int(int(id))
		p := s.fixedPos[id]
		sw.Len(len(p))
		for _, c := range p {
			sw.F64(c)
		}
	}

	if err := s.engine.SnapshotState(&sw); err != nil {
		return err
	}
	return snap.WriteEnvelope(w, systemKind, sw.Bytes())
}

// Restore loads a checkpoint written by Snapshot into this system, which
// must have been built from an equivalent SystemConfig (Seed and
// ExchangeParallelism may differ). The file's checksum, format version
// and configuration digest are all verified before any state is touched,
// so a corrupted, truncated or mismatched snapshot never yields a
// partially restored system.
func (s *System) Restore(rd io.Reader) error {
	body, err := snap.ReadEnvelope(rd, systemKind)
	if err != nil {
		return err
	}
	r := snap.NewReader(body)
	got := readSystemDigest(r)

	nFixed := r.Len(16)
	fixedIDs := make([]sim.NodeID, nFixed)
	fixedPts := make([]space.Point, nFixed)
	for i := 0; i < nFixed; i++ {
		fixedIDs[i] = sim.NodeID(r.Int())
		n := r.Len(8)
		p := make(space.Point, n)
		for j := range p {
			p[j] = r.F64()
		}
		fixedPts[i] = p
	}
	if err := r.Err(); err != nil {
		return err
	}
	if want := s.digest(); got != want {
		return fmt.Errorf("polystyrene: snapshot configuration %+v does not match this system %+v", got, want)
	}

	if err := s.engine.RestoreState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("polystyrene: %d trailing bytes in snapshot", r.Remaining())
	}

	clear(s.fixedPos)
	for i, id := range fixedIDs {
		s.fixedPos[id] = fixedPts[i]
	}
	return nil
}

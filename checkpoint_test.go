package polystyrene

import (
	"bytes"
	"testing"
)

// systemFingerprint captures everything a facade user can observe.
func systemFingerprint(s *System) map[string]float64 {
	fp := map[string]float64{
		"round":       float64(s.Round()),
		"live":        float64(s.NumLive()),
		"homogeneity": s.Homogeneity(),
		"proximity":   s.Proximity(),
		"reliability": s.Reliability(),
		"datapoints":  s.DataPointsPerNode(),
		"msgcost":     s.LastRoundMessageCost(),
	}
	for _, id := range s.Live() {
		p := s.NodePosition(id)
		fp["x"] += p[0] * float64(id+1)
		fp["y"] += p[1] * float64(id+1)
	}
	return fp
}

func TestSystemSnapshotResumeByteIdentical(t *testing.T) {
	run := func(exPar int, checkpoint bool) map[string]float64 {
		cfg := SystemConfig{
			Seed:                42,
			Space:               Torus(20, 10),
			Shape:               TorusShape(20, 10, 1),
			ReplicationFactor:   4,
			DetectionDelay:      2,
			ExchangeParallelism: exPar,
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Run(10)
		sys.CrashRegion(func(p []float64) bool { return p[0] >= 10 })
		sys.Run(3)

		if checkpoint {
			var buf bytes.Buffer
			if err := sys.Snapshot(&buf); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			sys = restored
		}
		sys.Run(8)
		return systemFingerprint(sys)
	}

	for _, exPar := range []int{0, 2} {
		want := run(exPar, false)
		got := run(exPar, true)
		for k, w := range want {
			if got[k] != w {
				t.Errorf("exPar=%d: %s diverged after snapshot/restore: %v != %v", exPar, k, got[k], w)
			}
		}
	}
}

func TestSystemRestoreRejectsMismatch(t *testing.T) {
	sys := torusSystem(t, 7, false)
	sys.Run(5)
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other, err := NewSystem(SystemConfig{
		Seed:              7,
		Space:             Torus(20, 10),
		Shape:             TorusShape(20, 10, 1),
		ReplicationFactor: 6, // differs
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a differently configured system accepted")
	}

	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 1
	same := torusSystem(t, 8, false)
	if err := same.Restore(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	if err := same.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	if same.Round() != sys.Round() || same.NumLive() != sys.NumLive() {
		t.Fatal("restored system shape diverged")
	}
}

// TestSystemDoubleClose: the graceful-shutdown path closes once on the
// signal handler and once in a defer — both must be safe, and the
// system must stay readable in between.
func TestSystemDoubleClose(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Seed:                9,
		Space:               Torus(20, 10),
		Shape:               TorusShape(20, 10, 1),
		ReplicationFactor:   4,
		ExchangeParallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(3)
	sys.Close()
	sys.Close()
	if sys.NumLive() == 0 {
		t.Fatal("system unreadable after double Close")
	}
}

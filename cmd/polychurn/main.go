// Command polychurn runs the sustained-churn extension experiment: a
// converged torus is subjected to continuous random crash/join churn at a
// range of per-round rates, and the tool reports whether the shape held,
// the final homogeneity versus the reference H, and data-point
// reliability.
//
//	polychurn                       # rates 0%..5% on a 40x20 torus
//	polychurn -rates 0.01,0.02 -w 80 -h 40
//
// The convergence phase can be paid once and reused: -warm converges a
// single cell in-process and warm-starts every rate from it, while
// -checkpoint/-resume split the same idea across invocations through a
// checksummed snapshot file (written atomically — a crash mid-write
// never leaves a half-written snapshot under the target name):
//
//	polychurn -checkpoint warm.snap           # converge once, save, stop
//	polychurn -resume warm.snap -rates 0.01,0.02,0.05
//
// -checkpoint-dir/-resume-dir are the crash-safe directory form: the
// converged snapshot is saved as a rotated, checksummed generation
// (retention bounded by -checkpoint-keep), and -resume-dir warm-starts
// from the newest generation that verifies, silently skipping a torn or
// corrupt one:
//
//	polychurn -checkpoint-dir warm/           # converge once, save a generation
//	polychurn -resume-dir warm/ -rates 0.01,0.02,0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polychurn:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polychurn", flag.ContinueOnError)
	var (
		w         = fs.Int("w", 40, "torus grid width")
		h         = fs.Int("h", 20, "torus grid height")
		k         = fs.Int("k", 4, "replication factor K")
		seed      = fs.Uint64("seed", 1, "base random seed")
		ratesFlag = fs.String("rates", "0,0.005,0.01,0.02,0.05", "comma-separated per-round churn rates")
		rounds    = fs.Int("rounds", 40, "churn period length in rounds")
		converge  = fs.Int("converge", 20, "convergence rounds before churn")
		settle    = fs.Int("settle", 20, "quiet rounds after churn before measuring")
		parallel  = fs.Int("parallel", 0, "total worker budget across rates (0 = all cores)")
		exchange  = fs.Int("exchange-parallel", 0,
			"per-rate intra-round exchange worker cap (0 = sequential engines; any value >= 1 gives identical results)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB for concurrently running rates (0 = unbounded); bounds how many run at once by their estimated engine footprint")
		poolEngines = fs.Bool("pool-engines", true,
			"recycle engines across rates (identical results; saves one engine allocation per rate)")
		warm = fs.Bool("warm", false,
			"converge one cell and warm-start every rate from its checkpoint instead of re-converging per rate")
		checkpointFile = fs.String("checkpoint", "",
			"converge the base configuration, write its snapshot atomically to this file and stop (no sweep is run)")
		resumeFile = fs.String("resume", "",
			"warm-start every rate from a snapshot file written by -checkpoint (grid and K flags must match it)")
		checkpointDir = fs.String("checkpoint-dir", "",
			"converge the base configuration, save it as a rotated checksummed generation in this directory and stop (no sweep is run)")
		resumeDir = fs.String("resume-dir", "",
			"warm-start every rate from the newest generation in this directory that verifies (torn or corrupt generations are skipped)")
		keep = fs.Int("checkpoint-keep", 3,
			"how many generations -checkpoint-dir retains")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpointFile != "" && *checkpointDir != "" {
		return fmt.Errorf("-checkpoint and -checkpoint-dir are mutually exclusive")
	}
	if *resumeFile != "" && *resumeDir != "" {
		return fmt.Errorf("-resume and -resume-dir are mutually exclusive")
	}

	base := scenario.Config{Seed: *seed, W: *w, H: *h, K: *k}

	if *checkpointFile != "" || *checkpointDir != "" {
		cfg := base
		cfg.Polystyrene = true
		cfg.ExchangeParallelism = *exchange
		b, err := scenario.ConvergedSnapshot(cfg, *converge)
		if err != nil {
			return err
		}
		if *checkpointDir != "" {
			mgr, err := ckpt.NewManager(ckpt.Options{
				Dir: *checkpointDir, Kind: scenario.SnapshotKind, Keep: *keep,
			})
			if err != nil {
				return err
			}
			g, err := mgr.Save(*converge, func(dst io.Writer) error {
				_, err := dst.Write(b)
				return err
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# converged snapshot (%d rounds, %dx%d torus, K=%d) saved as %s; sweep with -resume-dir %s\n",
				*converge, *w, *h, *k, g.Name, *checkpointDir)
			return nil
		}
		if err := ckpt.WriteFileAtomic(nil, *checkpointFile, b); err != nil {
			return err
		}
		fmt.Fprintf(out, "# converged snapshot (%d rounds, %dx%d torus, K=%d) written to %s; sweep with -resume %s\n",
			*converge, *w, *h, *k, *checkpointFile, *checkpointFile)
		return nil
	}

	rates, err := parseRates(*ratesFlag)
	if err != nil {
		return err
	}

	var warmSnapshot []byte
	if *resumeFile != "" {
		warmSnapshot, err = os.ReadFile(*resumeFile)
		if err != nil {
			return err
		}
	}
	if *resumeDir != "" {
		mgr, err := ckpt.NewManager(ckpt.Options{
			Dir: *resumeDir, Kind: scenario.SnapshotKind, Keep: *keep,
		})
		if err != nil {
			return err
		}
		_, warmSnapshot, err = mgr.OpenLatestGood()
		if err != nil {
			return fmt.Errorf("resume-dir %s: %w", *resumeDir, err)
		}
	}
	outs, err := scenario.ChurnSweep(base, rates, scenario.ChurnSweepOpts{
		ChurnRounds:         *rounds,
		ConvergeRounds:      *converge,
		SettleRounds:        *settle,
		Parallelism:         *parallel,
		ExchangeParallelism: *exchange,
		MemBudgetBytes:      int64(*memBudget) << 20,
		PoolEngines:         *poolEngines,
		WarmStart:           *warm,
		WarmSnapshot:        warmSnapshot,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "# churn sweep: %dx%d torus, K=%d, %d churn rounds + %d settle\n",
		*w, *h, *k, *rounds, *settle)
	fmt.Fprintln(out, "rate,crashed,joined,homogeneity,reference_H,shape_held,reliability_pct")
	for i, o := range outs {
		fmt.Fprintf(out, "%.3f,%d,%d,%.4f,%.4f,%v,%.2f\n",
			rates[i], o.Crashed, o.Joined, o.FinalHomogeneity, o.FinalReference,
			o.ShapeHeld, 100*o.Reliability)
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r < 0 || r >= 1 {
			return nil, fmt.Errorf("invalid churn rate %q", p)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

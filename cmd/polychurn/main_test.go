package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("0, 0.01,0.5")
	if err != nil || len(got) != 3 || got[1] != 0.01 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestRunSmallSweep(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-rates", "0,0.02",
		"-rounds", "10", "-converge", "8", "-settle", "8",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rate,crashed,joined") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // comment + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "0.000,0,0,") {
		t.Fatalf("zero-churn row unexpected: %s", lines[2])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-rates", "2.0"}, &b); err == nil {
		t.Fatal("bad rate accepted")
	}
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestCheckpointResumeSweep converges once with -checkpoint, then runs
// the sweep twice from the saved file — the two warm-started sweeps must
// be byte-identical — and rejects a resume into a mismatched grid.
func TestCheckpointResumeSweep(t *testing.T) {
	snapFile := t.TempDir() + "/warm.snap"
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-converge", "8", "-checkpoint", snapFile,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged snapshot") || strings.Contains(b.String(), "rate,crashed") {
		t.Fatalf("checkpoint run output unexpected:\n%s", b.String())
	}

	sweep := func() string {
		var out strings.Builder
		err := run([]string{
			"-w", "16", "-h", "8", "-rates", "0,0.02",
			"-rounds", "10", "-settle", "8", "-resume", snapFile,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := sweep()
	if !strings.Contains(first, "rate,crashed,joined") {
		t.Fatalf("resumed sweep missing header:\n%s", first)
	}
	if second := sweep(); second != first {
		t.Fatal("warm-started sweep is not deterministic across invocations")
	}

	var mismatch strings.Builder
	err = run([]string{
		"-w", "20", "-h", "10", "-rates", "0.02", "-rounds", "5", "-resume", snapFile,
	}, &mismatch)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("resume into mismatched grid not refused: %v", err)
	}
}

// TestCheckpointDirResumeDirSweep exercises the crash-safe directory
// form: a generation saved by -checkpoint-dir warm-starts the sweep via
// -resume-dir byte-identically to the single-file -checkpoint/-resume
// path, and a corrupted newest generation is skipped in favour of the
// previous good one.
func TestCheckpointDirResumeDirSweep(t *testing.T) {
	dir := t.TempDir()
	sweepFlags := []string{"-w", "16", "-h", "8", "-rates", "0,0.02", "-rounds", "10", "-settle", "8"}

	var b strings.Builder
	if err := run([]string{"-w", "16", "-h", "8", "-converge", "8", "-checkpoint-dir", dir}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "saved as gen-0000000008") {
		t.Fatalf("checkpoint-dir run output unexpected:\n%s", b.String())
	}

	// The single-file path from the same configuration is the reference.
	snapFile := filepath.Join(t.TempDir(), "warm.snap")
	b.Reset()
	if err := run([]string{"-w", "16", "-h", "8", "-converge", "8", "-checkpoint", snapFile}, &b); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := run(append(append([]string{}, sweepFlags...), "-resume", snapFile), &want); err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	if err := run(append(append([]string{}, sweepFlags...), "-resume-dir", dir), &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("-resume-dir sweep differs from the single-file -resume sweep")
	}

	// Add a newer generation, corrupt it, and require fallback to the
	// round-8 one — the sweep must still match the reference.
	b.Reset()
	if err := run([]string{"-w", "16", "-h", "8", "-converge", "10", "-checkpoint-dir", dir}, &b); err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, "gen-0000000010.snap")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got.Reset()
	if err := run(append(append([]string{}, sweepFlags...), "-resume-dir", dir), &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("sweep after corrupt-newest fallback differs from the reference sweep")
	}

	// A mismatched grid must still be refused via the config digest.
	var mismatch strings.Builder
	err = run([]string{"-w", "20", "-h", "10", "-rates", "0.02", "-rounds", "5", "-resume-dir", dir}, &mismatch)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("resume-dir into mismatched grid not refused: %v", err)
	}
}

func TestRunRejectsConflictingCheckpointFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-checkpoint", "a.snap", "-checkpoint-dir", "d"}, &b); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-checkpoint with -checkpoint-dir accepted: %v", err)
	}
	if err := run([]string{"-resume", "a.snap", "-resume-dir", "d"}, &b); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-resume with -resume-dir accepted: %v", err)
	}
}

func TestWarmSweepInProcess(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-rates", "0,0.02", "-warm",
		"-rounds", "10", "-converge", "8", "-settle", "8",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
}

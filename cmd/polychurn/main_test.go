package main

import (
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("0, 0.01,0.5")
	if err != nil || len(got) != 3 || got[1] != 0.01 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestRunSmallSweep(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-rates", "0,0.02",
		"-rounds", "10", "-converge", "8", "-settle", "8",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rate,crashed,joined") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // comment + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "0.000,0,0,") {
		t.Fatalf("zero-churn row unexpected: %s", lines[2])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-rates", "2.0"}, &b); err == nil {
		t.Fatal("bad rate accepted")
	}
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

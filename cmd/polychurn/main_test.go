package main

import (
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("0, 0.01,0.5")
	if err != nil || len(got) != 3 || got[1] != 0.01 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestRunSmallSweep(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-rates", "0,0.02",
		"-rounds", "10", "-converge", "8", "-settle", "8",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rate,crashed,joined") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // comment + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "0.000,0,0,") {
		t.Fatalf("zero-churn row unexpected: %s", lines[2])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-rates", "2.0"}, &b); err == nil {
		t.Fatal("bad rate accepted")
	}
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestCheckpointResumeSweep converges once with -checkpoint, then runs
// the sweep twice from the saved file — the two warm-started sweeps must
// be byte-identical — and rejects a resume into a mismatched grid.
func TestCheckpointResumeSweep(t *testing.T) {
	snapFile := t.TempDir() + "/warm.snap"
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-converge", "8", "-checkpoint", snapFile,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged snapshot") || strings.Contains(b.String(), "rate,crashed") {
		t.Fatalf("checkpoint run output unexpected:\n%s", b.String())
	}

	sweep := func() string {
		var out strings.Builder
		err := run([]string{
			"-w", "16", "-h", "8", "-rates", "0,0.02",
			"-rounds", "10", "-settle", "8", "-resume", snapFile,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := sweep()
	if !strings.Contains(first, "rate,crashed,joined") {
		t.Fatalf("resumed sweep missing header:\n%s", first)
	}
	if second := sweep(); second != first {
		t.Fatal("warm-started sweep is not deterministic across invocations")
	}

	var mismatch strings.Builder
	err = run([]string{
		"-w", "20", "-h", "10", "-rates", "0.02", "-rounds", "5", "-resume", snapFile,
	}, &mismatch)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("resume into mismatched grid not refused: %v", err)
	}
}

func TestWarmSweepInProcess(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-rates", "0,0.02", "-warm",
		"-rounds", "10", "-converge", "8", "-settle", "8",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
}

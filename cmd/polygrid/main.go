// Command polygrid runs a declarative experiment grid: it parses an
// experiments.json (scenario × size × K × detector × exchange-parallelism
// × repeats), expands it deterministically, executes every cell under a
// worker/memory budget with engine pooling, and writes a timestamped
// results folder (grid.csv, per-cell series, aggregate.csv, paper-ready
// tables.md). -dry-run prints the expanded grid — cell IDs and derived
// seeds — without running anything; -analyze re-derives the aggregate
// outputs from an existing results folder.
//
//	polygrid -spec scripts/paper/experiments.json -out results
//	polygrid -spec scripts/paper/smoke.json -dry-run
//	polygrid -analyze results/paper-20260808-120000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polystyrene/internal/experiments"
)

func main() {
	var (
		spec      = flag.String("spec", "", "path to experiments.json")
		out       = flag.String("out", "results", "results root; the run writes <out>/<name>-<stamp>/")
		stamp     = flag.String("stamp", "", "results-folder stamp (default: current UTC time; fix it for reproducible paths)")
		dryRun    = flag.Bool("dry-run", false, "print the expanded grid (cells, seeds) and exit without running")
		parallel  = flag.Int("parallel", 0, "concurrent cells (0 = GOMAXPROCS)")
		memBudget = flag.Int64("mem-budget", 0, "memory budget in bytes bounding concurrent cells (0 = unbounded)")
		pool      = flag.Bool("pool-engines", true, "recycle engines across equal-size cells")
		analyze   = flag.String("analyze", "", "re-analyze an existing results folder and exit")
		quiet     = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	if *analyze != "" {
		if err := experiments.Analyze(*analyze); err != nil {
			fatal(err)
		}
		fmt.Printf("re-analyzed %s (aggregate.csv, tables.md)\n", *analyze)
		return
	}
	if *spec == "" {
		fatal(fmt.Errorf("polygrid: -spec is required (or -analyze DIR)"))
	}
	sp, specData, err := experiments.ParseFile(*spec)
	if err != nil {
		fatal(err)
	}
	if *dryRun {
		if err := experiments.WriteGrid(os.Stdout, sp, sp.Expand()); err != nil {
			fatal(err)
		}
		return
	}

	opts := experiments.RunOpts{
		Parallelism:    *parallel,
		MemBudgetBytes: *memBudget,
		PoolEngines:    *pool,
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	results, err := experiments.Run(sp, opts)
	if err != nil {
		fatal(err)
	}
	groups, err := experiments.AuditDeterminism(results)
	if err != nil {
		fatal(err)
	}

	st := *stamp
	if st == "" {
		st = time.Now().UTC().Format("20060102-150405")
	}
	dir := fmt.Sprintf("%s/%s-%s", *out, sp.Name, st)
	if err := experiments.WriteResults(dir, specData, results); err != nil {
		fatal(err)
	}
	fmt.Printf("%d cells -> %s (determinism audit: %d identity groups ok)\n", len(results), dir, groups)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

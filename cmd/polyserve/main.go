// Command polyserve runs a Polystyrene overlay as a live service: the
// engine advances gossip rounds on one goroutine while an HTTP frontend
// answers lookups, neighbour queries and node inspections from
// epoch-published read snapshots (see internal/serve) — the paper's
// "keeps serving while dying and recovering" claim, made operational.
//
//	polyserve                            # 80x40 torus workload on :4600
//	polyserve -w 24 -h 12 -interval 20ms # smaller, faster rounds
//	polyserve -fail-at 50 -reinject-at 100 -rounds 200
//	polyserve -profiles 256              # DECENT-style per-user profile points
//	polyserve -selftest -duration 2s     # embedded load generator, no sockets to babysit
//
// Endpoints: /lookup?q=x,y · /neighbors?id=N&k=K · /node/{id} · /stats ·
// /healthz. Every response carries its epoch and round, so staleness is
// observable; before the first epoch and after shutdown starts the
// service answers 503 warming/draining.
//
// SIGINT/SIGTERM drain gracefully: the publisher closes (new queries get
// 503 draining), in-flight requests finish, the listener shuts down, and
// with -checkpoint-dir a final checkpoint generation is saved so the
// soak is crash-safe end to end (resume with -resume-latest).
//
// -selftest runs the serving soak in-process: a three-phase schedule
// (calm, catastrophe + recovery, steady churn) under a closed-loop load
// generator hitting the real HTTP stack, printing sustained QPS and
// p50/p90/p99/p999 latency histograms per phase, and failing unless
// every phase served queries without errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polystyrene"
	"polystyrene/internal/ckpt"
	"polystyrene/internal/scenario"
	"polystyrene/internal/serve"
	"polystyrene/internal/serve/loadgen"
	"polystyrene/internal/shape"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polyserve:", err)
		os.Exit(1)
	}
}

// profileTopics/profileCommunities fix the -profiles keyspace to the
// examples/profiles workload: 24 0/1 topics, 4 interest communities.
const (
	profileTopics      = 24
	profileCommunities = 4
)

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polyserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:4600", "HTTP listen address")
		w        = fs.Int("w", 80, "torus grid width")
		h        = fs.Int("h", 40, "torus grid height")
		k        = fs.Int("k", 4, "replication factor K")
		seed     = fs.Uint64("seed", 1, "random seed")
		fanout   = fs.Int("fanout", 0, "epoch router-view fanout (0 = default)")
		interval = fs.Duration("interval", 50*time.Millisecond,
			"wall-clock pacing per gossip round (0 = as fast as possible)")
		rounds = fs.Int("rounds", 0,
			"stop advancing after this many rounds and keep serving the last epoch (0 = run until signalled)")
		failAt = fs.Int("fail-at", -1,
			"round of the catastrophic right-half failure (-1 = never)")
		reinjectAt = fs.Int("reinject-at", -1,
			"round at which crashed capacity is reinjected (-1 = never)")
		profilesN = fs.Int("profiles", 0,
			"serve the DECENT-style profiles workload with this many per-user profile points instead of the torus scenario")
		checkpointDir = fs.String("checkpoint-dir", "",
			"directory of rotated, atomically written checkpoint generations; SIGINT/SIGTERM save a final generation here before draining")
		autoEvery = fs.Int("auto-checkpoint-every", 0,
			"save a generation into -checkpoint-dir every N rounds (0 = only the final signal-triggered save)")
		keep = fs.Int("checkpoint-keep", 3,
			"how many generations -checkpoint-dir retains")
		resumeLatest = fs.Bool("resume-latest", false,
			"resume from the newest generation in -checkpoint-dir that verifies")
		selftest = fs.Bool("selftest", false,
			"run the in-process serving soak with the embedded load generator and exit")
		duration = fs.Duration("duration", 2*time.Second, "selftest duration")
		workers  = fs.Int("workers", 4, "selftest load-generator workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*autoEvery > 0 || *resumeLatest) && *checkpointDir == "" {
		return fmt.Errorf("-auto-checkpoint-every and -resume-latest need -checkpoint-dir DIR")
	}
	if *failAt >= 0 && *reinjectAt >= 0 && *reinjectAt < *failAt {
		return fmt.Errorf("-reinject-at %d precedes -fail-at %d", *reinjectAt, *failAt)
	}
	if *selftest {
		return runSelftest(out, *seed, *w, *h, *k, *fanout, *workers, *duration)
	}
	if *profilesN > 0 {
		if *checkpointDir != "" {
			return fmt.Errorf("-checkpoint-dir needs the torus scenario workload (checkpointing does not cover -profiles)")
		}
		return serveProfiles(out, *addr, *seed, *profilesN, *fanout, *interval, *rounds)
	}
	return serveScenario(out, *addr, scenario.Config{
		Seed: *seed, W: *w, H: *h, Polystyrene: true, K: *k, SkipMetrics: true,
	}, *fanout, *interval, *rounds, *failAt, *reinjectAt,
		*checkpointDir, *autoEvery, *keep, *resumeLatest)
}

// service bundles the HTTP half: publisher, frontend, listener, server.
type service struct {
	pub   *serve.Publisher
	front *serve.Frontend
	ln    net.Listener
	srv   *http.Server
	done  chan error
}

func startService(addr string, pub *serve.Publisher) (*service, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &service{
		pub:   pub,
		front: serve.NewFrontend(pub),
		ln:    ln,
		done:  make(chan error, 1),
	}
	s.srv = &http.Server{Handler: s.front}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// drain is the graceful shutdown: close the publisher first so new
// queries see 503 draining, let in-flight requests finish, then shut the
// listener down.
func (s *service) drain(out io.Writer) {
	s.pub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	s.srv.Shutdown(ctx)
	err := <-s.done
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(out, "# server error during drain: %v\n", err)
	}
	fmt.Fprintf(out, "# drained after %d queries\n", s.front.Queries())
}

func notifyStop() (chan os.Signal, func()) {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	return sigc, func() { signal.Stop(sigc) }
}

func stopped(sigc <-chan os.Signal) bool {
	select {
	case <-sigc:
		return true
	default:
		return false
	}
}

func serveScenario(out io.Writer, addr string, cfg scenario.Config,
	fanout int, interval time.Duration, rounds, failAt, reinjectAt int,
	ckptDir string, autoEvery, keep int, resumeLatest bool) error {

	sc, err := scenario.New(cfg)
	if err != nil {
		return err
	}
	defer sc.Close()

	var auto *scenario.AutoCheckpointer
	if ckptDir != "" {
		mgr, err := ckpt.NewManager(ckpt.Options{
			Dir: ckptDir, Kind: scenario.SnapshotKind, Keep: keep,
		})
		if err != nil {
			return err
		}
		auto = scenario.NewAutoCheckpointer(sc, mgr, autoEvery)
		if resumeLatest {
			g, err := scenario.RestoreLatest(sc, mgr)
			if err != nil {
				return fmt.Errorf("resume-latest from %s: %w", ckptDir, err)
			}
			auto.MarkSaved(g.Round)
			fmt.Fprintf(out, "# resumed from %s at round %d\n", g.Name, g.Round)
		}
	}

	// Register the signal handler before the listen address is printed:
	// anyone who has seen the banner may signal us, and the signal must
	// land in sigc, not kill the process.
	sigc, stopNotify := notifyStop()
	defer stopNotify()

	pub := sc.ServePublisher(fanout)
	svc, err := startService(addr, pub)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# serving torus %dx%d (K=%d) on http://%s\n",
		cfg.W, cfg.H, cfg.K, svc.ln.Addr())

	end := rounds
	if end <= 0 {
		end = math.MaxInt32
	}
	ph := scenario.Phases{FailAt: failAt, ReinjectAt: reinjectAt, End: end}
	interrupted := false
	scenario.DrivePhasesFunc(sc, ph, end, func(round int) bool {
		if stopped(sigc) {
			interrupted = true
			return false
		}
		if auto != nil {
			if _, _, err := auto.MaybeSave(round); err != nil {
				fmt.Fprintf(out, "# auto-checkpoint at round %d failed: %v\n", round, err)
			}
		}
		if interval > 0 {
			time.Sleep(interval)
		}
		return true
	})
	if !interrupted {
		// Phase script finished: keep serving the final epoch until told
		// to stop.
		fmt.Fprintf(out, "# round schedule complete at round %d; serving final epoch\n",
			sc.Engine.Round())
		<-sigc
	}

	r := sc.Engine.Round()
	if auto != nil {
		if g, err := auto.SaveNow(r); err != nil {
			fmt.Fprintf(out, "# final checkpoint at round %d failed: %v\n", r, err)
		} else {
			fmt.Fprintf(out, "# final checkpoint %s saved; resume with -resume-latest\n", g.Name)
		}
	}
	sc.StopServing()
	svc.drain(out)
	fmt.Fprintf(out, "# stopped at round %d with %d live nodes\n", r, sc.Engine.NumLive())
	return nil
}

func serveProfiles(out io.Writer, addr string, seed uint64, users, fanout int,
	interval time.Duration, rounds int) error {

	perCommunity := users / profileCommunities
	if perCommunity < 1 {
		perCommunity = 1
	}
	pts := shape.Profiles(perCommunity, profileTopics, profileCommunities)
	sys, err := newProfilesSystem(seed, pts)
	if err != nil {
		return err
	}
	// Signal handler first (see serveScenario).
	sigc, stopNotify := notifyStop()
	defer stopNotify()

	pub := sys.ServePublisher(fanout)
	svc, err := startService(addr, pub)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# serving %d profile points (%d communities x %d users, Hamming(%d)) on http://%s\n",
		len(pts), profileCommunities, perCommunity, profileTopics, svc.ln.Addr())
	for r := 0; rounds <= 0 || r < rounds; r++ {
		if stopped(sigc) {
			break
		}
		sys.Run(1)
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	if rounds > 0 && !stopped(sigc) {
		fmt.Fprintf(out, "# round schedule complete at round %d; serving final epoch\n", sys.Round())
		<-sigc
	}
	sys.StopServing()
	svc.drain(out)
	fmt.Fprintf(out, "# stopped at round %d with %d live nodes\n", sys.Round(), sys.NumLive())
	return nil
}

// newProfilesSystem builds the facade system hosting the profile shape,
// with the replication factor of examples/profiles (K=6: small shapes
// need deeper replication to survive a whole community vanishing).
func newProfilesSystem(seed uint64, pts []space.Point) (*polystyrene.System, error) {
	profiles := make([][]float64, len(pts))
	for i, p := range pts {
		profiles[i] = p
	}
	return polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              seed,
		Space:             polystyrene.Hamming(profileTopics),
		Shape:             profiles,
		ReplicationFactor: 6,
	})
}

// runSelftest runs the whole serving story in one process: a scenario
// paced to fit three phases into the requested duration — calm,
// catastrophe + recovery (right half fails, then reinjects), steady
// churn (1% of the population replaced every round) — while the load
// generator drives the real HTTP stack over loopback, one measurement
// window per phase.
func runSelftest(out io.Writer, seed uint64, w, h, k, fanout, workers int, duration time.Duration) error {
	if w*h > 40*20 {
		// The selftest is a smoke check, not a capacity run: cap the grid
		// so rounds stay much shorter than the measurement windows.
		w, h = 40, 20
	}
	sc, err := scenario.New(scenario.Config{
		Seed: seed, W: w, H: h, Polystyrene: true, K: k, SkipMetrics: true,
	})
	if err != nil {
		return err
	}
	defer sc.Close()
	pub := sc.ServePublisher(fanout)
	svc, err := startService("127.0.0.1:0", pub)
	if err != nil {
		return err
	}
	base := "http://" + svc.ln.Addr().String()
	fmt.Fprintf(out, "# selftest: torus %dx%d (K=%d), %v, %d workers, %s\n",
		w, h, k, duration, workers, base)

	const end = 150
	failAt, churnFrom := end/3, 2*end/3
	ph := scenario.Phases{FailAt: failAt, ReinjectAt: churnFrom, End: end}
	total := w * h

	stop := make(chan struct{})
	driveDone := make(chan struct{})
	start := time.Now()
	// Pace against a deadline, not a fixed interval: round r should
	// finish by 80% of duration * r/end, so the schedule lands inside
	// the measurement windows (catastrophe in window 2, churn in window
	// 3) even when round compute eats into the pacing budget.
	budget := duration * 4 / 5
	go func() {
		defer close(driveDone)
		scenario.DrivePhasesFunc(sc, ph, end, func(round int) bool {
			select {
			case <-stop:
				return false
			default:
			}
			if round > churnFrom {
				// Steady churn: replace 1% of the population each round.
				// All engine mutation stays on this driving goroutine.
				n := total / 100
				if n < 1 {
					n = 1
				}
				for i := 0; i < n; i++ {
					if id := sc.Engine.RandomLive(); id != sim.None {
						sc.Engine.Kill(id)
					}
				}
				sc.Reinject(total - sc.Engine.NumLive())
			}
			target := start.Add(budget * time.Duration(round+1) / time.Duration(end))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			return true
		})
	}()

	tgt := loadgen.HTTPTarget{
		Base: base,
		Client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: workers,
		}},
		Pub: pub,
	}
	window := duration / 3
	phases := []string{"calm", "catastrophe+recovery", "churn"}
	results := make([]loadgen.Result, len(phases))
	for i, name := range phases {
		results[i] = loadgen.Run(tgt, loadgen.Options{
			Seed: seed + uint64(i), Workers: workers, Duration: window, NeighborEvery: 4,
		})
		fmt.Fprintf(out, "phase %-21s %s\n", name+":", results[i].String())
	}
	close(stop)
	<-driveDone
	sc.StopServing()
	svc.drain(out)

	for i, name := range phases {
		if results[i].Ops == 0 {
			return fmt.Errorf("selftest: phase %s served zero queries", name)
		}
		if results[i].Errors > 0 {
			return fmt.Errorf("selftest: phase %s hit %d errors", name, results[i].Errors)
		}
	}
	fmt.Fprintf(out, "selftest ok: %d queries across %d phases, final round %d, %d live\n",
		svc.front.Queries(), len(phases), sc.Engine.Round(), sc.Engine.NumLive())
	return nil
}

package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is an io.Writer safe to read while run() writes from
// another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`on (http://[^\s]+)`)

// waitFor polls the buffer until re matches or the deadline passes.
func waitFor(t *testing.T, buf *syncBuffer, re *regexp.Regexp, what string) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s did not appear within 10s; output so far:\n%s", what, buf.String())
	return nil
}

// sigterm delivers a real SIGTERM to this process. The guard channel
// must be registered before run() starts so the signal cannot kill the
// test in the window before run installs its handler.
func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

func guardSigterm(t *testing.T) {
	t.Helper()
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	t.Cleanup(func() { signal.Stop(guard) })
}

func TestSelftestSmoke(t *testing.T) {
	var buf syncBuffer
	err := run([]string{"-selftest", "-duration", "900ms", "-w", "16", "-h", "8", "-workers", "2"}, &buf)
	if err != nil {
		t.Fatalf("selftest failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"phase calm", "phase catastrophe+recovery", "phase churn", "selftest ok", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("selftest output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " 0 qps") {
		t.Fatalf("selftest reported zero QPS:\n%s", out)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-auto-checkpoint-every", "5"},                  // needs -checkpoint-dir
		{"-resume-latest"},                               // needs -checkpoint-dir
		{"-profiles", "64", "-checkpoint-dir", "/tmp/x"}, // profiles can't checkpoint
		{"-fail-at", "10", "-reinject-at", "5"},          // reinject before fail
		{"-no-such-flag"},                                // unknown flag
	}
	for _, args := range cases {
		var buf syncBuffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("run(%v) accepted bad flags", args)
		}
	}
}

func TestServeScenarioSigtermDrain(t *testing.T) {
	guardSigterm(t)
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-w", "16", "-h", "8",
			"-interval", "1ms"}, &buf)
	}()
	m := waitFor(t, &buf, addrRe, "listen address")
	base := m[1]

	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	getOK(t, base+"/healthz", &health)
	if health.Status != "ok" || health.Epoch == 0 {
		t.Fatalf("healthz = %+v", health)
	}
	var lr struct {
		Found bool `json:"found"`
		Node  int  `json:"node"`
		Epoch int  `json:"epoch"`
	}
	getOK(t, base+"/lookup?q=3.5,2.5", &lr)
	if !lr.Found || lr.Epoch == 0 {
		t.Fatalf("lookup = %+v", lr)
	}

	sigterm(t)
	if err := <-done; err != nil {
		t.Fatalf("serve run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "# drained after") || !strings.Contains(out, "# stopped at round") {
		t.Fatalf("missing drain report:\n%s", out)
	}
}

func TestServeProfilesSigtermDrain(t *testing.T) {
	guardSigterm(t)
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-profiles", "64",
			"-interval", "1ms"}, &buf)
	}()
	m := waitFor(t, &buf, addrRe, "listen address")
	base := m[1]
	if !strings.Contains(buf.String(), "64 profile points") {
		t.Fatalf("unexpected profiles banner:\n%s", buf.String())
	}

	// Query a community core: 24-dim Hamming point.
	q := make([]string, 24)
	for i := range q {
		q[i] = "0"
	}
	for i := 6; i < 12; i++ {
		q[i] = "1" // community 1's core topics
	}
	var lr struct {
		Found    bool    `json:"found"`
		Distance float64 `json:"distance"`
	}
	getOK(t, base+"/lookup?q="+strings.Join(q, ","), &lr)
	if !lr.Found || lr.Distance > 2 {
		t.Fatalf("profile lookup = %+v, want a community-1 member (distance <= 2)", lr)
	}
	var st struct {
		Points int `json:"points"`
		Live   int `json:"live"`
	}
	getOK(t, base+"/stats", &st)
	if st.Points != 64 || st.Live != 64 {
		t.Fatalf("stats = %+v, want 64 points / 64 live", st)
	}

	sigterm(t)
	if err := <-done; err != nil {
		t.Fatalf("profiles run failed: %v\n%s", err, buf.String())
	}
}

func TestServeSigtermSavesCheckpoint(t *testing.T) {
	guardSigterm(t)
	dir := t.TempDir()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-w", "16", "-h", "8",
			"-interval", "1ms", "-checkpoint-dir", dir, "-auto-checkpoint-every", "5"}, &buf)
	}()
	waitFor(t, &buf, addrRe, "listen address")
	// Let a few rounds (and at least one auto generation) happen.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ents, _ := os.ReadDir(dir)
		if len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint generation appeared within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sigterm(t)
	if err := <-done; err != nil {
		t.Fatalf("run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "final checkpoint") {
		t.Fatalf("no final checkpoint message:\n%s", buf.String())
	}

	// A resumed service starts from the saved round, not round 0.
	guardSigterm(t)
	var buf2 syncBuffer
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-addr", "127.0.0.1:0", "-w", "16", "-h", "8",
			"-interval", "1ms", "-checkpoint-dir", dir, "-resume-latest"}, &buf2)
	}()
	waitFor(t, &buf2, regexp.MustCompile(`# resumed from (\S+) at round (\d+)`), "resume banner")
	waitFor(t, &buf2, addrRe, "listen address")
	sigterm(t)
	if err := <-done2; err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, buf2.String())
	}
}

func getOK(t *testing.T, url string, into any) {
	t.Helper()
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(into)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil {
			return
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("GET %s never returned 200: %v", url, lastErr)
}

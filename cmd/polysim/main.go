// Command polysim runs the paper's three-phase evaluation scenario
// (converge / catastrophic half-torus failure / reinjection) and prints a
// per-round CSV of the four metrics of Figs. 6 and 7: homogeneity,
// proximity, data points per node and message cost per node.
//
// Reproduce Fig. 6/7 curves:
//
//	polysim -k 4                # Polystyrene, K=4, 80x40 torus
//	polysim -tman               # plain T-Man baseline
//	polysim -w 40 -h 20 -seed 7 # smaller grid, different seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"polystyrene/internal/core"
	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polysim", flag.ContinueOnError)
	var (
		w          = fs.Int("w", 80, "torus grid width")
		h          = fs.Int("h", 40, "torus grid height")
		k          = fs.Int("k", 4, "replication factor K")
		seed       = fs.Uint64("seed", 1, "random seed")
		tmanOnly   = fs.Bool("tman", false, "run the plain T-Man baseline instead of Polystyrene")
		split      = fs.String("split", "advanced", "split function: basic|pd|md|advanced")
		failAt     = fs.Int("fail-at", 20, "round of the catastrophic failure")
		reinjectAt = fs.Int("reinject-at", 100, "round of the reinjection")
		end        = fs.Int("end", 200, "total rounds")
		exchange   = fs.Int("exchange-parallel", 0,
			"intra-round exchange workers (0 = sequential engine; results are identical for every value >= 1)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB (0 = unbounded); refuses to start when the configuration's estimated engine footprint exceeds it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	splitKind, err := core.ParseSplitKind(*split)
	if err != nil {
		return err
	}
	cfg := scenario.Config{
		Seed:                *seed,
		W:                   *w,
		H:                   *h,
		Polystyrene:         !*tmanOnly,
		K:                   *k,
		Split:               splitKind,
		ExchangeParallelism: *exchange,
	}
	if *memBudget > 0 {
		if est := cfg.EstimatedFootprintBytes(); est > int64(*memBudget)<<20 {
			return fmt.Errorf("estimated engine footprint %d MiB exceeds -mem-budget %d MiB (shrink the grid or raise the budget)",
				(est+(1<<20)-1)>>20, *memBudget)
		}
	}
	phases := scenario.Phases{FailAt: *failAt, ReinjectAt: *reinjectAt, End: *end}

	sc, res, err := scenario.RunPaper(cfg, phases)
	if err != nil {
		return err
	}
	defer sc.Close()

	fmt.Fprintf(out, "# polystyrene=%v K=%d split=%s grid=%dx%d seed=%d\n",
		cfg.Polystyrene, cfg.K, splitKind, *w, *h, *seed)
	fmt.Fprintf(out, "# reference homogeneity (full population) H=%.4f\n",
		0.5) // H = 0.5*sqrt(A/N) = 0.5 for step-1 grids
	fmt.Fprintln(out, "round,live,homogeneity,proximity,datapoints_per_node,msgcost_per_node")
	for r := 0; r < len(res.Homogeneity); r++ {
		fmt.Fprintf(out, "%d,%d,%.4f,%.4f,%.3f,%.1f\n",
			r, res.LiveNodes[r], res.Homogeneity[r], res.Proximity[r],
			res.DataPoints[r], res.MsgCost[r])
	}
	fmt.Fprintf(out, "# final reliability: %.2f%%\n", 100*sc.Reliability())
	return nil
}

// Command polysim runs the paper's three-phase evaluation scenario
// (converge / catastrophic half-torus failure / reinjection) and prints a
// per-round CSV of the four metrics of Figs. 6 and 7: homogeneity,
// proximity, data points per node and message cost per node.
//
// Reproduce Fig. 6/7 curves:
//
//	polysim -k 4                # Polystyrene, K=4, 80x40 torus
//	polysim -tman               # plain T-Man baseline
//	polysim -w 40 -h 20 -seed 7 # smaller grid, different seed
//
// Long runs can be checkpointed and resumed bit-exactly: the resumed
// run's CSV is byte-identical to the uninterrupted one.
//
//	polysim -checkpoint state.snap -checkpoint-at 50   # run to round 50, save, stop
//	polysim -resume state.snap                         # finish the same run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"polystyrene/internal/core"
	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
}

// drive advances sc through the paper's schedule one round at a time,
// firing each phase event at the start of its round. When stopAt is >= 0
// and the scenario reaches that round, drive stops — before the round's
// events, so a resumed run re-enters the loop at the same point and fires
// them itself. This one loop serves fresh, checkpointing and resumed runs
// alike, which is what makes a resumed CSV byte-identical to an
// uninterrupted one.
func drive(sc *scenario.Scenario, phases scenario.Phases, stopAt int) (stopped bool) {
	total := sc.Cfg.W * sc.Cfg.H
	for sc.Engine.Round() < phases.End {
		r := sc.Engine.Round()
		if r == stopAt {
			return true
		}
		if r == phases.FailAt {
			sc.FailRightHalf()
		}
		if r == phases.ReinjectAt {
			// Replace exactly the nodes still missing, so the schedule is
			// insensitive to where a checkpoint interrupted it.
			sc.Reinject(total - sc.Engine.NumLive())
		}
		sc.Run(1)
	}
	return false
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polysim", flag.ContinueOnError)
	var (
		w          = fs.Int("w", 80, "torus grid width")
		h          = fs.Int("h", 40, "torus grid height")
		k          = fs.Int("k", 4, "replication factor K")
		seed       = fs.Uint64("seed", 1, "random seed")
		tmanOnly   = fs.Bool("tman", false, "run the plain T-Man baseline instead of Polystyrene")
		split      = fs.String("split", "advanced", "split function: basic|pd|md|advanced")
		failAt     = fs.Int("fail-at", 20, "round of the catastrophic failure")
		reinjectAt = fs.Int("reinject-at", 100, "round of the reinjection")
		end        = fs.Int("end", 200, "total rounds")
		exchange   = fs.Int("exchange-parallel", 0,
			"intra-round exchange workers (0 = sequential engine; results are identical for every value >= 1)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB (0 = unbounded); refuses to start when the configuration's estimated engine footprint exceeds it")
		checkpointFile = fs.String("checkpoint", "",
			"write a checksummed snapshot to this file at -checkpoint-at and stop without printing the CSV")
		checkpointAt = fs.Int("checkpoint-at", -1,
			"round at which -checkpoint saves (before that round's phase events)")
		resumeFile = fs.String("resume", "",
			"resume from a snapshot written by -checkpoint; all other flags must rebuild the same configuration, and the CSV printed is byte-identical to the uninterrupted run's")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	splitKind, err := core.ParseSplitKind(*split)
	if err != nil {
		return err
	}
	cfg := scenario.Config{
		Seed:                *seed,
		W:                   *w,
		H:                   *h,
		Polystyrene:         !*tmanOnly,
		K:                   *k,
		Split:               splitKind,
		ExchangeParallelism: *exchange,
	}
	if *memBudget > 0 {
		if est := cfg.EstimatedFootprintBytes(); est > int64(*memBudget)<<20 {
			return fmt.Errorf("estimated engine footprint %d MiB exceeds -mem-budget %d MiB (shrink the grid or raise the budget)",
				(est+(1<<20)-1)>>20, *memBudget)
		}
	}
	phases := scenario.Phases{FailAt: *failAt, ReinjectAt: *reinjectAt, End: *end}
	if err := phases.Validate(); err != nil {
		return err
	}
	if *checkpointFile != "" && (*checkpointAt < 0 || *checkpointAt >= *end) {
		return fmt.Errorf("-checkpoint needs -checkpoint-at in [0, %d)", *end)
	}
	if *checkpointFile == "" && *checkpointAt >= 0 {
		return fmt.Errorf("-checkpoint-at needs -checkpoint FILE")
	}

	sc, err := scenario.New(cfg)
	if err != nil {
		return err
	}
	defer sc.Close()

	if *resumeFile != "" {
		f, err := os.Open(*resumeFile)
		if err != nil {
			return err
		}
		err = sc.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", *resumeFile, err)
		}
	}

	stopAt := -1
	if *checkpointFile != "" {
		stopAt = *checkpointAt
	}
	if drive(sc, phases, stopAt) {
		f, err := os.Create(*checkpointFile)
		if err != nil {
			return err
		}
		err = sc.SnapshotTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", *checkpointFile, err)
		}
		fmt.Fprintf(out, "# checkpoint written to %s at round %d; finish with -resume %s\n",
			*checkpointFile, sc.Engine.Round(), *checkpointFile)
		return nil
	}

	res := sc.Result()
	fmt.Fprintf(out, "# polystyrene=%v K=%d split=%s grid=%dx%d seed=%d\n",
		cfg.Polystyrene, cfg.K, splitKind, *w, *h, *seed)
	fmt.Fprintf(out, "# reference homogeneity (full population) H=%.4f\n",
		0.5) // H = 0.5*sqrt(A/N) = 0.5 for step-1 grids
	fmt.Fprintln(out, "round,live,homogeneity,proximity,datapoints_per_node,msgcost_per_node")
	for r := 0; r < len(res.Homogeneity); r++ {
		fmt.Fprintf(out, "%d,%d,%.4f,%.4f,%.3f,%.1f\n",
			r, res.LiveNodes[r], res.Homogeneity[r], res.Proximity[r],
			res.DataPoints[r], res.MsgCost[r])
	}
	fmt.Fprintf(out, "# final reliability: %.2f%%\n", 100*sc.Reliability())
	return nil
}

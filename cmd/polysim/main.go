// Command polysim runs the paper's three-phase evaluation scenario
// (converge / catastrophic half-torus failure / reinjection) and prints a
// per-round CSV of the four metrics of Figs. 6 and 7: homogeneity,
// proximity, data points per node and message cost per node.
//
// Reproduce Fig. 6/7 curves:
//
//	polysim -k 4                # Polystyrene, K=4, 80x40 torus
//	polysim -tman               # plain T-Man baseline
//	polysim -w 40 -h 20 -seed 7 # smaller grid, different seed
//
// Long runs can be checkpointed and resumed bit-exactly: the resumed
// run's CSV is byte-identical to the uninterrupted one.
//
//	polysim -checkpoint state.snap -checkpoint-at 50   # run to round 50, save, stop
//	polysim -resume state.snap                         # finish the same run
//
// For crash-safe soaks, -checkpoint-dir holds rotated generations
// written atomically (temp file → fsync → rename → dir fsync), each
// independently checksummed. -auto-checkpoint-every N saves on a round
// cadence and -checkpoint-keep M bounds retention; SIGINT/SIGTERM save
// a final generation, close cleanly and exit; -resume-latest recovers
// from the newest generation that verifies, silently skipping a torn or
// corrupt one. -watchdog-stall D aborts a hung soak with a stall report
// (stuck round, last durable checkpoint, full goroutine dump):
//
//	polysim -checkpoint-dir ckpt -auto-checkpoint-every 25 -watchdog-stall 5m
//	polysim -checkpoint-dir ckpt -resume-latest        # finish after a crash
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/core"
	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
}

type driveOutcome int

const (
	driveCompleted   driveOutcome = iota
	driveStopped                  // reached the -checkpoint-at round
	driveInterrupted              // SIGINT/SIGTERM
)

type driveOpts struct {
	stopAt    int                        // checkpoint-and-stop round; -1 = none
	auto      *scenario.AutoCheckpointer // nil = no auto-checkpointing
	interrupt <-chan os.Signal           // nil = no graceful-stop channel
	watchdog  *scenario.Watchdog         // nil = no stall detection
	onSave    func(ckpt.Generation)      // called after each durable save
}

// drive advances sc through the paper's schedule one round at a time,
// firing each phase event at the start of its round. Checkpoints — the
// auto cadence, the -checkpoint-at stop and the interrupt check — all
// happen at round start BEFORE that round's events, so a resumed run
// re-enters the loop at the same point and fires them itself. This one
// loop serves fresh, checkpointing, interrupted and resumed runs alike,
// which is what makes a resumed CSV byte-identical to an uninterrupted
// one.
func drive(sc *scenario.Scenario, phases scenario.Phases, o driveOpts) (driveOutcome, error) {
	total := sc.Cfg.W * sc.Cfg.H
	for sc.Engine.Round() < phases.End {
		r := sc.Engine.Round()
		if o.watchdog != nil {
			o.watchdog.Tick(r)
		}
		if o.interrupt != nil {
			select {
			case <-o.interrupt:
				return driveInterrupted, nil
			default:
			}
		}
		if r == o.stopAt {
			return driveStopped, nil
		}
		if o.auto != nil {
			g, saved, err := o.auto.MaybeSave(r)
			if err != nil {
				return driveCompleted, fmt.Errorf("auto-checkpoint at round %d: %w", r, err)
			}
			if saved && o.onSave != nil {
				o.onSave(g)
			}
		}
		if r == phases.FailAt {
			sc.FailRightHalf()
		}
		if r == phases.ReinjectAt {
			// Replace exactly the nodes still missing, so the schedule is
			// insensitive to where a checkpoint interrupted it.
			sc.Reinject(total - sc.Engine.NumLive())
		}
		sc.Run(1)
	}
	return driveCompleted, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polysim", flag.ContinueOnError)
	var (
		w          = fs.Int("w", 80, "torus grid width")
		h          = fs.Int("h", 40, "torus grid height")
		k          = fs.Int("k", 4, "replication factor K")
		seed       = fs.Uint64("seed", 1, "random seed")
		tmanOnly   = fs.Bool("tman", false, "run the plain T-Man baseline instead of Polystyrene")
		split      = fs.String("split", "advanced", "split function: basic|pd|md|advanced")
		failAt     = fs.Int("fail-at", 20, "round of the catastrophic failure")
		reinjectAt = fs.Int("reinject-at", 100, "round of the reinjection")
		end        = fs.Int("end", 200, "total rounds")
		exchange   = fs.Int("exchange-parallel", 0,
			"intra-round exchange workers (0 = sequential engine; results are identical for every value >= 1)")
		shards = fs.Int("shards", 0,
			"sharded multi-engine topology: split the torus into N vertical bands driven concurrently (0/1 = single engine; N must divide -w; results are deterministic per N and keyed by N; takes precedence over -exchange-parallel)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB (0 = unbounded); refuses to start when the configuration's estimated engine footprint exceeds it")
		checkpointFile = fs.String("checkpoint", "",
			"write a checksummed snapshot to this file at -checkpoint-at and stop without printing the CSV")
		checkpointAt = fs.Int("checkpoint-at", -1,
			"round at which -checkpoint saves (before that round's phase events)")
		resumeFile = fs.String("resume", "",
			"resume from a snapshot written by -checkpoint; all other flags must rebuild the same configuration, and the CSV printed is byte-identical to the uninterrupted run's")
		checkpointDir = fs.String("checkpoint-dir", "",
			"directory of rotated, atomically written checkpoint generations (with -auto-checkpoint-every / -resume-latest); SIGINT/SIGTERM save a final generation here before exiting")
		autoEvery = fs.Int("auto-checkpoint-every", 0,
			"save a generation into -checkpoint-dir every N rounds (0 = only the final signal-triggered save)")
		keep = fs.Int("checkpoint-keep", 3,
			"how many generations -checkpoint-dir retains")
		resumeLatest = fs.Bool("resume-latest", false,
			"resume from the newest generation in -checkpoint-dir that verifies (torn or corrupt generations are skipped); the finished CSV is byte-identical to the uninterrupted run's")
		stall = fs.Duration("watchdog-stall", 0,
			"abort with a stall report (stuck round, last checkpoint, goroutine dump) when no round completes for this long (0 = no watchdog)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	splitKind, err := core.ParseSplitKind(*split)
	if err != nil {
		return err
	}
	cfg := scenario.Config{
		Seed:                *seed,
		W:                   *w,
		H:                   *h,
		Polystyrene:         !*tmanOnly,
		K:                   *k,
		Split:               splitKind,
		ExchangeParallelism: *exchange,
		Shards:              *shards,
	}
	if *memBudget > 0 {
		if est := cfg.EstimatedFootprintBytes(); est > int64(*memBudget)<<20 {
			return fmt.Errorf("estimated engine footprint %d MiB exceeds -mem-budget %d MiB (shrink the grid or raise the budget)",
				(est+(1<<20)-1)>>20, *memBudget)
		}
	}
	phases := scenario.Phases{FailAt: *failAt, ReinjectAt: *reinjectAt, End: *end}
	if err := phases.Validate(); err != nil {
		return err
	}
	if *checkpointFile != "" && (*checkpointAt < 0 || *checkpointAt >= *end) {
		return fmt.Errorf("-checkpoint needs -checkpoint-at in [0, %d)", *end)
	}
	if *checkpointFile == "" && *checkpointAt >= 0 {
		return fmt.Errorf("-checkpoint-at needs -checkpoint FILE")
	}
	if (*autoEvery > 0 || *resumeLatest) && *checkpointDir == "" {
		return fmt.Errorf("-auto-checkpoint-every and -resume-latest need -checkpoint-dir DIR")
	}
	if *resumeLatest && *resumeFile != "" {
		return fmt.Errorf("-resume and -resume-latest are mutually exclusive")
	}

	sc, err := scenario.New(cfg)
	if err != nil {
		return err
	}
	defer sc.Close()

	if *resumeFile != "" {
		f, err := os.Open(*resumeFile)
		if err != nil {
			return err
		}
		err = sc.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", *resumeFile, err)
		}
	}

	// lastCkpt is read by the watchdog goroutine, so it is atomic.
	var lastCkpt atomic.Value
	lastCkpt.Store("")
	var auto *scenario.AutoCheckpointer
	if *checkpointDir != "" {
		mgr, err := ckpt.NewManager(ckpt.Options{
			Dir: *checkpointDir, Kind: scenario.SnapshotKind, Keep: *keep,
		})
		if err != nil {
			return err
		}
		auto = scenario.NewAutoCheckpointer(sc, mgr, *autoEvery)
		if *resumeLatest {
			g, err := scenario.RestoreLatest(sc, mgr)
			if err != nil {
				return fmt.Errorf("resume-latest from %s: %w", *checkpointDir, err)
			}
			auto.MarkSaved(g.Round)
			lastCkpt.Store(g.Path(*checkpointDir))
		}
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	var wd *scenario.Watchdog
	if *stall > 0 {
		wd = scenario.NewWatchdog(*stall, func(lastRound int) {
			scenario.StallReport(os.Stderr, lastRound, lastCkpt.Load().(string))
			os.Exit(2)
		})
		defer wd.Stop()
	}

	stopAt := -1
	if *checkpointFile != "" {
		stopAt = *checkpointAt
	}
	outcome, err := drive(sc, phases, driveOpts{
		stopAt:    stopAt,
		auto:      auto,
		interrupt: sigc,
		watchdog:  wd,
		onSave:    func(g ckpt.Generation) { lastCkpt.Store(g.Path(*checkpointDir)) },
	})
	if err != nil {
		return err
	}
	switch outcome {
	case driveStopped:
		var buf bytes.Buffer
		if err := sc.SnapshotTo(&buf); err != nil {
			return fmt.Errorf("checkpoint %s: %w", *checkpointFile, err)
		}
		if err := ckpt.WriteFileAtomic(nil, *checkpointFile, buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintf(out, "# checkpoint written to %s at round %d; finish with -resume %s\n",
			*checkpointFile, sc.Engine.Round(), *checkpointFile)
		return nil
	case driveInterrupted:
		r := sc.Engine.Round()
		if auto == nil {
			fmt.Fprintf(out, "# interrupted at round %d; no -checkpoint-dir, nothing saved\n", r)
			return nil
		}
		g, err := auto.SaveNow(r)
		if err != nil {
			return fmt.Errorf("final checkpoint at round %d: %w", r, err)
		}
		fmt.Fprintf(out, "# interrupted at round %d; checkpoint %s saved; finish with -resume-latest\n",
			r, g.Name)
		return nil
	}

	res := sc.Result()
	fmt.Fprintf(out, "# polystyrene=%v K=%d split=%s grid=%dx%d seed=%d\n",
		cfg.Polystyrene, cfg.K, splitKind, *w, *h, *seed)
	fmt.Fprintf(out, "# reference homogeneity (full population) H=%.4f\n",
		0.5) // H = 0.5*sqrt(A/N) = 0.5 for step-1 grids
	fmt.Fprintln(out, "round,live,homogeneity,proximity,datapoints_per_node,msgcost_per_node")
	for r := 0; r < len(res.Homogeneity); r++ {
		fmt.Fprintf(out, "%d,%d,%.4f,%.4f,%.3f,%.1f\n",
			r, res.LiveNodes[r], res.Homogeneity[r], res.Proximity[r],
			res.DataPoints[r], res.MsgCost[r])
	}
	fmt.Fprintf(out, "# final reliability: %.2f%%\n", 100*sc.Reliability())
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallScenario(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "round,live,homogeneity") {
		t.Fatal("missing CSV header")
	}
	// 30 data rows plus header and comments.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "round,") {
			rows++
		}
	}
	if rows != 30 {
		t.Fatalf("CSV rows = %d, want 30", rows)
	}
	if !strings.Contains(out, "final reliability") {
		t.Fatal("missing reliability footer")
	}
}

func TestRunTManBaseline(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-tman", "-w", "16", "-h", "8", "-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "polystyrene=false") {
		t.Fatal("baseline header missing")
	}
}

func TestRunMemBudget(t *testing.T) {
	var b strings.Builder
	// A 1 MiB budget cannot hold the 80x40 default grid's engine.
	err := run([]string{"-mem-budget", "1", "-end", "5", "-fail-at", "1", "-reinject-at", "2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "mem-budget") {
		t.Fatalf("over-budget run not refused: %v", err)
	}
	// A sufficient budget runs normally.
	b.Reset()
	if err := run([]string{
		"-w", "16", "-h", "8", "-mem-budget", "64",
		"-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "final reliability") {
		t.Fatal("budgeted run did not complete")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-split", "bogus"}, &b); err == nil {
		t.Fatal("bogus split accepted")
	}
	if err := run([]string{"-fail-at", "50", "-reinject-at", "10"}, &b); err == nil {
		t.Fatal("inverted phases accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-checkpoint", "x.snap"}, &b); err == nil {
		t.Fatal("-checkpoint without -checkpoint-at accepted")
	}
	if err := run([]string{"-checkpoint-at", "5"}, &b); err == nil {
		t.Fatal("-checkpoint-at without -checkpoint accepted")
	}
}

// TestCheckpointResumeByteIdentical round-trips a run through a snapshot
// file: checkpoint mid-reshaping, resume in a second process-equivalent
// invocation, and require the resumed CSV to be byte-identical to an
// uninterrupted run's. Checkpoints in every phase are exercised,
// including the exact event rounds.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30"}

	var full strings.Builder
	if err := run(base, &full); err != nil {
		t.Fatal(err)
	}

	for _, at := range []string{"5", "8", "14", "20", "27"} {
		snapFile := t.TempDir() + "/state.snap"
		var ck strings.Builder
		err := run(append(append([]string{}, base...),
			"-checkpoint", snapFile, "-checkpoint-at", at), &ck)
		if err != nil {
			t.Fatalf("checkpoint at %s: %v", at, err)
		}
		if !strings.Contains(ck.String(), "checkpoint written") {
			t.Fatalf("checkpoint run at %s printed no confirmation:\n%s", at, ck.String())
		}
		if strings.Contains(ck.String(), "round,live") {
			t.Fatalf("checkpoint run at %s printed a partial CSV", at)
		}

		var resumed strings.Builder
		err = run(append(append([]string{}, base...), "-resume", snapFile), &resumed)
		if err != nil {
			t.Fatalf("resume from %s: %v", at, err)
		}
		if resumed.String() != full.String() {
			t.Fatalf("resume from checkpoint at %s is not byte-identical to the uninterrupted run", at)
		}
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30"}
	snapFile := t.TempDir() + "/state.snap"
	var b strings.Builder
	if err := run(append(append([]string{}, base...),
		"-checkpoint", snapFile, "-checkpoint-at", "10"), &b); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-w", "16", "-h", "8", "-k", "7", "-fail-at", "8", "-reinject-at", "20", "-end", "30",
		"-resume", snapFile,
	}, &b)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("resume into mismatched config not refused: %v", err)
	}
}

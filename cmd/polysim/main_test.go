package main

import (
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunSmallScenario(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "round,live,homogeneity") {
		t.Fatal("missing CSV header")
	}
	// 30 data rows plus header and comments.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "round,") {
			rows++
		}
	}
	if rows != 30 {
		t.Fatalf("CSV rows = %d, want 30", rows)
	}
	if !strings.Contains(out, "final reliability") {
		t.Fatal("missing reliability footer")
	}
}

func TestRunTManBaseline(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-tman", "-w", "16", "-h", "8", "-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "polystyrene=false") {
		t.Fatal("baseline header missing")
	}
}

func TestRunMemBudget(t *testing.T) {
	var b strings.Builder
	// A 1 MiB budget cannot hold the 80x40 default grid's engine.
	err := run([]string{"-mem-budget", "1", "-end", "5", "-fail-at", "1", "-reinject-at", "2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "mem-budget") {
		t.Fatalf("over-budget run not refused: %v", err)
	}
	// A sufficient budget runs normally.
	b.Reset()
	if err := run([]string{
		"-w", "16", "-h", "8", "-mem-budget", "64",
		"-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "final reliability") {
		t.Fatal("budgeted run did not complete")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-split", "bogus"}, &b); err == nil {
		t.Fatal("bogus split accepted")
	}
	if err := run([]string{"-fail-at", "50", "-reinject-at", "10"}, &b); err == nil {
		t.Fatal("inverted phases accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-checkpoint", "x.snap"}, &b); err == nil {
		t.Fatal("-checkpoint without -checkpoint-at accepted")
	}
	if err := run([]string{"-checkpoint-at", "5"}, &b); err == nil {
		t.Fatal("-checkpoint-at without -checkpoint accepted")
	}
}

// TestCheckpointResumeByteIdentical round-trips a run through a snapshot
// file: checkpoint mid-reshaping, resume in a second process-equivalent
// invocation, and require the resumed CSV to be byte-identical to an
// uninterrupted run's. Checkpoints in every phase are exercised,
// including the exact event rounds.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30"}

	var full strings.Builder
	if err := run(base, &full); err != nil {
		t.Fatal(err)
	}

	for _, at := range []string{"5", "8", "14", "20", "27"} {
		snapFile := t.TempDir() + "/state.snap"
		var ck strings.Builder
		err := run(append(append([]string{}, base...),
			"-checkpoint", snapFile, "-checkpoint-at", at), &ck)
		if err != nil {
			t.Fatalf("checkpoint at %s: %v", at, err)
		}
		if !strings.Contains(ck.String(), "checkpoint written") {
			t.Fatalf("checkpoint run at %s printed no confirmation:\n%s", at, ck.String())
		}
		if strings.Contains(ck.String(), "round,live") {
			t.Fatalf("checkpoint run at %s printed a partial CSV", at)
		}

		var resumed strings.Builder
		err = run(append(append([]string{}, base...), "-resume", snapFile), &resumed)
		if err != nil {
			t.Fatalf("resume from %s: %v", at, err)
		}
		if resumed.String() != full.String() {
			t.Fatalf("resume from checkpoint at %s is not byte-identical to the uninterrupted run", at)
		}
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30"}
	snapFile := t.TempDir() + "/state.snap"
	var b strings.Builder
	if err := run(append(append([]string{}, base...),
		"-checkpoint", snapFile, "-checkpoint-at", "10"), &b); err != nil {
		t.Fatal(err)
	}
	// Every divergent dimension of the configuration digest must be
	// refused: replication factor, grid size and split function.
	mismatches := map[string][]string{
		"k":     {"-w", "16", "-h", "8", "-k", "7"},
		"size":  {"-w", "8", "-h", "16"},
		"split": {"-w", "16", "-h", "8", "-split", "basic"},
	}
	for name, flags := range mismatches {
		err := run(append(append([]string{}, flags...),
			"-fail-at", "8", "-reinject-at", "20", "-end", "30", "-resume", snapFile), &b)
		if err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Fatalf("resume into mismatched %s not refused: %v", name, err)
		}
	}
}

func TestRunRejectsBadCheckpointDirFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-auto-checkpoint-every", "5"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("-auto-checkpoint-every without -checkpoint-dir accepted: %v", err)
	}
	if err := run([]string{"-resume-latest"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("-resume-latest without -checkpoint-dir accepted: %v", err)
	}
	if err := run([]string{
		"-checkpoint-dir", t.TempDir(), "-resume-latest", "-resume", "x.snap",
	}, &b); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-resume with -resume-latest accepted: %v", err)
	}
}

// TestSigtermGracefulCheckpointAndResume delivers a real SIGTERM to an
// auto-checkpointing run mid-soak, requires it to save a final
// generation and exit cleanly, and requires the -resume-latest run to
// print a CSV byte-identical to the uninterrupted run's.
func TestSigtermGracefulCheckpointAndResume(t *testing.T) {
	// 600 rounds ≈ a second of wall clock — hundreds of rounds of margin
	// between the signal (sent within milliseconds of the first saved
	// generation) and natural completion.
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "600"}

	var full strings.Builder
	if err := run(base, &full); err != nil {
		t.Fatal(err)
	}

	// Registering our own handler first keeps the test process alive in
	// the window before run() installs its own; both channels receive
	// the signal once run() has.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	dir := t.TempDir()
	withDir := append(append([]string{}, base...),
		"-checkpoint-dir", dir, "-auto-checkpoint-every", "5")

	var interrupted strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(withDir, &interrupted) }()

	// Wait for the first generation — proof the drive loop (and the
	// signal handler before it) is up — then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ents, err := os.ReadDir(dir); err == nil {
			found := false
			for _, e := range ents {
				if strings.HasPrefix(e.Name(), "gen-") {
					found = true
				}
			}
			if found {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no generation appeared within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("interrupted run failed: %v", err)
	}
	if !strings.Contains(interrupted.String(), "interrupted at round") {
		t.Fatalf("interrupted run ran to completion before the signal landed:\n%.200s",
			interrupted.String())
	}
	if strings.Contains(interrupted.String(), "round,live") {
		t.Fatal("interrupted run printed a partial CSV")
	}

	var resumed strings.Builder
	if err := run(append(append([]string{}, withDir...), "-resume-latest"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Fatal("resumed CSV is not byte-identical to the uninterrupted run")
	}
}

// TestResumeLatestSkipsCorruptNewest corrupts the newest generation on
// disk and requires -resume-latest to fall back to the previous one,
// still finishing byte-identical to the uninterrupted run.
func TestResumeLatestSkipsCorruptNewest(t *testing.T) {
	base := []string{"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30"}

	var full strings.Builder
	if err := run(base, &full); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	withDir := append(append([]string{}, base...),
		"-checkpoint-dir", dir, "-auto-checkpoint-every", "10")
	var b strings.Builder
	if err := run(withDir, &b); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "gen-") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no generations written")
	}
	data, err := os.ReadFile(filepath.Join(dir, newest))
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail: keep only the first half of the newest generation.
	if err := os.WriteFile(filepath.Join(dir, newest), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var resumed strings.Builder
	if err := run(append(append([]string{}, withDir...), "-resume-latest"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Fatal("resume past the corrupt generation is not byte-identical to the uninterrupted run")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallScenario(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "round,live,homogeneity") {
		t.Fatal("missing CSV header")
	}
	// 30 data rows plus header and comments.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "round,") {
			rows++
		}
	}
	if rows != 30 {
		t.Fatalf("CSV rows = %d, want 30", rows)
	}
	if !strings.Contains(out, "final reliability") {
		t.Fatal("missing reliability footer")
	}
}

func TestRunTManBaseline(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-tman", "-w", "16", "-h", "8", "-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "polystyrene=false") {
		t.Fatal("baseline header missing")
	}
}

func TestRunMemBudget(t *testing.T) {
	var b strings.Builder
	// A 1 MiB budget cannot hold the 80x40 default grid's engine.
	err := run([]string{"-mem-budget", "1", "-end", "5", "-fail-at", "1", "-reinject-at", "2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "mem-budget") {
		t.Fatalf("over-budget run not refused: %v", err)
	}
	// A sufficient budget runs normally.
	b.Reset()
	if err := run([]string{
		"-w", "16", "-h", "8", "-mem-budget", "64",
		"-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "final reliability") {
		t.Fatal("budgeted run did not complete")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-split", "bogus"}, &b); err == nil {
		t.Fatal("bogus split accepted")
	}
	if err := run([]string{"-fail-at", "50", "-reinject-at", "10"}, &b); err == nil {
		t.Fatal("inverted phases accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallScenario(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-fail-at", "8", "-reinject-at", "20", "-end", "30",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "round,live,homogeneity") {
		t.Fatal("missing CSV header")
	}
	// 30 data rows plus header and comments.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "round,") {
			rows++
		}
	}
	if rows != 30 {
		t.Fatalf("CSV rows = %d, want 30", rows)
	}
	if !strings.Contains(out, "final reliability") {
		t.Fatal("missing reliability footer")
	}
}

func TestRunTManBaseline(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-tman", "-w", "16", "-h", "8", "-fail-at", "5", "-reinject-at", "10", "-end", "15",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "polystyrene=false") {
		t.Fatal("baseline header missing")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-split", "bogus"}, &b); err == nil {
		t.Fatal("bogus split accepted")
	}
	if err := run([]string{"-fail-at", "50", "-reinject-at", "10"}, &b); err == nil {
		t.Fatal("inverted phases accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

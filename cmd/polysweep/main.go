// Command polysweep reproduces Fig. 10 of the paper: reshaping time as a
// function of network size.
//
//	polysweep -mode size              # Fig. 10a — K ∈ {2,4,8}, SplitAdvanced
//	polysweep -mode split             # Fig. 10b — Basic / MD / Advanced at K=4
//	polysweep -mode size -max 3200    # laptop-scale smoke run
//
// The default sweep covers the paper's full size axis up to the 51,200-node
// 320x160 torus; grid cells fan out across all cores (tune with -parallel).
// Output is CSV: one row per (variant, size) with the mean reshaping time
// and CI95 over the requested repetitions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"polystyrene/internal/core"
	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polysweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polysweep", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "size", "sweep mode: size (Fig. 10a) or split (Fig. 10b)")
		maxNodes = fs.Int("max", 51200, "largest network size to include (paper: 51200)")
		reps     = fs.Int("reps", 3, "repetitions per point (paper: 25)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		converge = fs.Int("converge", 20, "convergence rounds before the failure")
		budget   = fs.Int("max-rounds", 80, "round budget for reshaping")
		parallel = fs.Int("parallel", 0, "total worker budget across grid cells (0 = all cores)")
		exchange = fs.Int("exchange-parallel", 0,
			"per-cell intra-round exchange worker cap (0 = sequential engines; any value >= 1 gives identical results)")
		shards = fs.Int("shards", 0,
			"run every cell on the sharded multi-engine topology with N vertical bands (0/1 = single engine; N must divide each cell's grid width — the paper sizes tile at 2 and 4; deterministic per N, keyed by N; takes precedence over -exchange-parallel)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB for concurrently running cells (0 = unbounded); bounds how many cells run at once by their estimated engine footprint, never which cells run")
		poolEngines = fs.Bool("pool-engines", true,
			"recycle engines across equal-size cells (identical results; saves one engine allocation per cell)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var variants map[string]func(scenario.Config) scenario.Config
	switch *mode {
	case "size":
		variants = map[string]func(scenario.Config) scenario.Config{
			"K2": func(c scenario.Config) scenario.Config { c.K = 2; return c },
			"K4": func(c scenario.Config) scenario.Config { c.K = 4; return c },
			"K8": func(c scenario.Config) scenario.Config { c.K = 8; return c },
		}
	case "split":
		variants = map[string]func(scenario.Config) scenario.Config{
			"basic":    func(c scenario.Config) scenario.Config { c.K = 4; c.Split = core.SplitBasic; return c },
			"md":       func(c scenario.Config) scenario.Config { c.K = 4; c.Split = core.SplitMD; return c },
			"pd":       func(c scenario.Config) scenario.Config { c.K = 4; c.Split = core.SplitPD; return c },
			"advanced": func(c scenario.Config) scenario.Config { c.K = 4; c.Split = core.SplitAdvanced; return c },
		}
	default:
		return fmt.Errorf("unknown mode %q (want size|split)", *mode)
	}

	sizes := scenario.PaperGridSizes(*maxNodes)
	results, err := scenario.SizeSweep(scenario.Config{Seed: *seed}, sizes, variants,
		scenario.RunOpts{
			Reps:                *reps,
			ConvergeRounds:      *converge,
			MaxRounds:           *budget,
			Parallelism:         *parallel,
			ExchangeParallelism: *exchange,
			Shards:              *shards,
			MemBudgetBytes:      int64(*memBudget) << 20,
			PoolEngines:         *poolEngines,
		})
	if err != nil {
		return err
	}

	labels := make([]string, 0, len(results))
	for l := range results {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	fmt.Fprintf(out, "# mode=%s reps=%d seed=%d\n", *mode, *reps, *seed)
	fmt.Fprintln(out, "variant,nodes,reshaping_rounds_mean,reshaping_rounds_ci95")
	for _, label := range labels {
		for _, pt := range results[label] {
			fmt.Fprintf(out, "%s,%d,%.2f,%.3f\n",
				label, pt.Nodes, pt.ReshapingTime.Mean(), pt.ReshapingTime.CI95())
		}
	}
	return nil
}

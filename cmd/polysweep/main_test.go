package main

import (
	"strings"
	"testing"
)

func TestRunSizeMode(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-max", "200", "-reps", "1", "-converge", "10", "-max-rounds", "40"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "variant,nodes,reshaping_rounds_mean") {
		t.Fatal("missing CSV header")
	}
	for _, variant := range []string{"K2,", "K4,", "K8,"} {
		if !strings.Contains(out, variant) {
			t.Fatalf("missing variant %q:\n%s", variant, out)
		}
	}
}

func TestRunSplitMode(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-mode", "split", "-max", "128", "-reps", "1",
		"-converge", "10", "-max-rounds", "40"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, variant := range []string{"basic,", "md,", "pd,", "advanced,"} {
		if !strings.Contains(out, variant) {
			t.Fatalf("missing variant %q:\n%s", variant, out)
		}
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "nope"}, &b); err == nil {
		t.Fatal("bad mode accepted")
	}
}

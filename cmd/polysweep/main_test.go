package main

import (
	"strings"
	"testing"
)

func TestRunSizeMode(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-max", "200", "-reps", "1", "-converge", "10", "-max-rounds", "40"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "variant,nodes,reshaping_rounds_mean") {
		t.Fatal("missing CSV header")
	}
	for _, variant := range []string{"K2,", "K4,", "K8,"} {
		if !strings.Contains(out, variant) {
			t.Fatalf("missing variant %q:\n%s", variant, out)
		}
	}
}

func TestRunSplitMode(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-mode", "split", "-max", "128", "-reps", "1",
		"-converge", "10", "-max-rounds", "40"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, variant := range []string{"basic,", "md,", "pd,", "advanced,"} {
		if !strings.Contains(out, variant) {
			t.Fatalf("missing variant %q:\n%s", variant, out)
		}
	}
}

// TestRunMemBudgetIdenticalOutput pins the CLI-level contract of the
// memory budget and the engine pool: a 1 MiB budget (cells run one at a
// time, recycled engines) produces byte-identical CSV to the unbounded,
// per-cell-engine run.
func TestRunMemBudgetIdenticalOutput(t *testing.T) {
	args := []string{"-max", "200", "-reps", "2", "-converge", "10", "-max-rounds", "40"}
	var ref, budgeted, unpooled strings.Builder
	if err := run(args, &ref); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-mem-budget", "1"}, args...), &budgeted); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-pool-engines=false"}, args...), &unpooled); err != nil {
		t.Fatal(err)
	}
	if budgeted.String() != ref.String() {
		t.Error("-mem-budget changed the sweep output")
	}
	if unpooled.String() != ref.String() {
		t.Error("-pool-engines=false changed the sweep output")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "nope"}, &b); err == nil {
		t.Fatal("bad mode accepted")
	}
}

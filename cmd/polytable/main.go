// Command polytable reproduces Table II of the paper: reshaping time and
// reliability of Polystyrene on the 80x40 torus after losing half the
// nodes, for replication factors K ∈ {2, 4, 8}, averaged over repeated
// runs with 95% confidence intervals.
//
//	polytable               # 25 repetitions, paper settings (~minutes)
//	polytable -reps 5 -w 40 -h 20   # faster smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"polystyrene/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polytable:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polytable", flag.ContinueOnError)
	var (
		w        = fs.Int("w", 80, "torus grid width")
		h        = fs.Int("h", 40, "torus grid height")
		reps     = fs.Int("reps", 25, "repetitions per K (paper: 25)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		converge = fs.Int("converge", 20, "convergence rounds before the failure")
		budget   = fs.Int("max-rounds", 80, "round budget for reshaping")
		parallel = fs.Int("parallel", 0, "total worker budget across repetitions (0 = all cores)")
		exchange = fs.Int("exchange-parallel", 0,
			"per-run intra-round exchange worker cap (0 = sequential engines; any value >= 1 gives identical results)")
		memBudget = fs.Int("mem-budget", 0,
			"memory budget in MiB for concurrently running repetitions (0 = unbounded); bounds how many run at once by their estimated engine footprint")
		poolEngines = fs.Bool("pool-engines", true,
			"recycle engines across repetitions (identical results; saves one engine allocation per run)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rows, err := scenario.TableII(scenario.Config{Seed: *seed, W: *w, H: *h},
		[]int{2, 4, 8}, scenario.RunOpts{
			Reps:                *reps,
			ConvergeRounds:      *converge,
			MaxRounds:           *budget,
			Parallelism:         *parallel,
			ExchangeParallelism: *exchange,
			MemBudgetBytes:      int64(*memBudget) << 20,
			PoolEngines:         *poolEngines,
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Table II — reshaping time and reliability, %dx%d torus, %d runs, CI95\n", *w, *h, *reps)
	fmt.Fprintf(out, "%-4s %-24s %-20s\n", "K", "Reshaping time (rounds)", "Reliability (%)")
	for _, row := range rows {
		fmt.Fprintf(out, "%-4d %6.2f ± %-15.3f %6.2f ± %-12.2f\n",
			row.K,
			row.ReshapingTime.Mean(), row.ReshapingTime.CI95(),
			row.ReliabilityPct.Mean(), row.ReliabilityPct.CI95())
		if row.FailedToReshape > 0 {
			fmt.Fprintf(out, "     (%d of %d runs missed the homogeneity threshold within the budget)\n",
				row.FailedToReshape, *reps)
		}
	}
	fmt.Fprintln(out, "\npaper (80x40): K=2: 5.00±0.000 / 87.73±0.18 | K=4: 6.96±0.083 / 96.88±0.10 | K=8: 9.08±0.114 / 99.80±0.03")
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallTable(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-w", "16", "-h", "8", "-reps", "2", "-converge", "10", "-max-rounds", "40"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table II", "Reshaping time", "Reliability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// One row per K in {2,4,8}.
	for _, k := range []string{"2 ", "4 ", "8 "} {
		if !strings.Contains(out, "\n"+k) {
			t.Fatalf("missing row for K=%s:\n%s", strings.TrimSpace(k), out)
		}
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// Command polyviz renders snapshots of the overlay at chosen rounds of the
// three-phase scenario, reproducing the visual figures of the paper:
//
//	polyviz -tman -rounds 19,40 -out fig1        # Fig. 1 (T-Man loses the shape)
//	polyviz -k 4 -rounds 22,28 -out fig8          # Fig. 8 (repair)
//	polyviz -rounds 125 -out fig9poly             # Fig. 9b (after reinjection)
//
// Each requested round r produces <out>-r<r>.svg plus an ASCII density map
// on stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"polystyrene/internal/scenario"
	"polystyrene/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "polyviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("polyviz", flag.ContinueOnError)
	var (
		w          = fs.Int("w", 80, "torus grid width")
		h          = fs.Int("h", 40, "torus grid height")
		k          = fs.Int("k", 4, "replication factor K")
		seed       = fs.Uint64("seed", 1, "random seed")
		tmanOnly   = fs.Bool("tman", false, "plain T-Man baseline")
		failAt     = fs.Int("fail-at", 20, "round of the catastrophic failure")
		reinjectAt = fs.Int("reinject-at", 100, "round of the reinjection")
		roundsFlag = fs.String("rounds", "22,28", "comma-separated rounds to snapshot")
		prefix     = fs.String("out", "snapshot", "output file prefix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rounds, err := parseRounds(*roundsFlag)
	if err != nil {
		return err
	}
	last := rounds[len(rounds)-1]

	sc, err := scenario.New(scenario.Config{
		Seed:        *seed,
		W:           *w,
		H:           *h,
		Polystyrene: !*tmanOnly,
		K:           *k,
		SkipMetrics: true,
	})
	if err != nil {
		return err
	}

	killed := 0
	for round := 0; round <= last; round++ {
		if round == *failAt {
			killed = sc.FailRightHalf()
			fmt.Fprintf(out, "# round %d: crashed %d nodes\n", round, killed)
		}
		if round == *reinjectAt && killed > 0 {
			sc.Reinject(killed)
			fmt.Fprintf(out, "# round %d: reinjected %d nodes\n", round, killed)
		}
		sc.Run(1)
		if !containsInt(rounds, round) {
			continue
		}
		snap := sc.Snapshot()
		name := fmt.Sprintf("%s-r%d.svg", *prefix, round)
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := viz.WriteSVG(f, sc.Space, snap, viz.SVGOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		occ := viz.OccupancyStats(sc.Space, snap, *w/2, *h/2)
		fmt.Fprintf(out, "# round %d: %d live nodes, occupancy %.0f%% -> %s\n",
			round, sc.Engine.NumLive(), 100*occ, name)
		fmt.Fprintln(out, viz.ASCIIDensity(sc.Space, snap, minInt(*w, 80), minInt(*h, 40)))
	}
	return nil
}

func parseRounds(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || r < 0 {
			return nil, fmt.Errorf("invalid round %q", p)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rounds given")
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			return nil, fmt.Errorf("rounds must be ascending")
		}
	}
	return out, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

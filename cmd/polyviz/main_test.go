package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRounds(t *testing.T) {
	got, err := parseRounds("22, 28")
	if err != nil || len(got) != 2 || got[0] != 22 || got[1] != 28 {
		t.Fatalf("parseRounds = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "-1", "10,5"} {
		if _, err := parseRounds(bad); err == nil {
			t.Errorf("parseRounds(%q) accepted", bad)
		}
	}
}

func TestRunWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "snap")
	var b strings.Builder
	err := run([]string{
		"-w", "16", "-h", "8", "-fail-at", "5", "-rounds", "4,10", "-out", prefix,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"4", "10"} {
		name := prefix + "-r" + r + ".svg"
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing snapshot %s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Fatalf("%s is not SVG", name)
		}
	}
	if !strings.Contains(b.String(), "crashed") {
		t.Fatal("failure event not reported")
	}
}

func TestContainsAndMin(t *testing.T) {
	if !containsInt([]int{1, 2}, 2) || containsInt([]int{1}, 3) {
		t.Fatal("containsInt broken")
	}
	if minInt(3, 5) != 3 || minInt(5, 3) != 3 {
		t.Fatal("minInt broken")
	}
}

package polystyrene_test

import (
	"fmt"
	"math"
	"slices"

	"polystyrene"
	"polystyrene/internal/shape"
)

// ExampleNewSystem shows the paper's headline behaviour: a torus overlay
// that survives losing its entire right half.
func ExampleNewSystem() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              1,
		Space:             polystyrene.Torus(20, 10),
		Shape:             polystyrene.TorusShape(20, 10, 1),
		ReplicationFactor: 4,
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15) // converge
	sys.CrashRegion(func(p []float64) bool { return p[0] >= 10 })
	sys.Run(12) // reshape
	fmt.Println("shape recovered:", sys.Homogeneity() < sys.ReferenceHomogeneity())
	// Output: shape recovered: true
}

// ExampleSystem_AppendNeighbors shows the allocation-free primary form of
// the neighbour query: results append into a caller-owned buffer that a
// hot loop reuses across calls.
func ExampleSystem_AppendNeighbors() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:  3,
		Space: polystyrene.Torus(20, 10),
		Shape: polystyrene.TorusShape(20, 10, 1),
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15) // converge

	buf := make([]int, 0, 8) // pooled: reused for every query
	for _, id := range []int{0, 1, 2} {
		buf = sys.AppendNeighbors(buf[:0], id, 4)
		fmt.Printf("node %d has %d neighbours, self-links: %v\n",
			id, len(buf), slices.Contains(buf, id))
	}
	// Output:
	// node 0 has 4 neighbours, self-links: false
	// node 1 has 4 neighbours, self-links: false
	// node 2 has 4 neighbours, self-links: false
}

// ExampleSystem_EachNeighbor shows the zero-copy visitor form: neighbours
// stream to the callback in increasing distance order, and returning
// false stops the iteration early — no slice ever materialises.
func ExampleSystem_EachNeighbor() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:  3,
		Space: polystyrene.Torus(20, 10),
		Shape: polystyrene.TorusShape(20, 10, 1),
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15)

	pos := sys.NodePosition(0)
	dist := func(p []float64) float64 {
		// Torus distance along each axis, for the 20x10 space above.
		dx := math.Min(math.Abs(p[0]-pos[0]), 20-math.Abs(p[0]-pos[0]))
		dy := math.Min(math.Abs(p[1]-pos[1]), 10-math.Abs(p[1]-pos[1]))
		return math.Hypot(dx, dy)
	}
	visited, last, sorted := 0, 0.0, true
	sys.EachNeighbor(0, 8, func(nb int) bool {
		d := dist(sys.NodePosition(nb))
		sorted = sorted && d >= last
		last = d
		visited++
		return visited < 3 // stop early after three neighbours
	})
	fmt.Println("visited:", visited)
	fmt.Println("increasing distance:", sorted)
	// Output:
	// visited: 3
	// increasing distance: true
}

// ExampleSystem_Lookup shows the routing primitive: queries resolve to the
// node closest to a point, even for points whose original hosts crashed.
func ExampleSystem_Lookup() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              2,
		Space:             polystyrene.Ring(100),
		Shape:             polystyrene.RingShape(50, 100),
		ReplicationFactor: 4,
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15)
	owner := sys.Lookup([]float64{42})
	fmt.Println("key 42 has an owner:", owner >= 0)
	// Output: key 42 has an owner: true
}

// ExampleSystem_ServePublisher serves the profiles workload of
// examples/profiles while rounds run: the publisher snapshots an
// immutable epoch after every round, and queries answer from the epoch —
// never touching (or blocking) the engine. cmd/polyserve wraps exactly
// this wiring in an HTTP frontend.
func ExampleSystem_ServePublisher() {
	pts := shape.Profiles(16, 24, 4) // 4 interest communities, 16 users each
	profiles := make([][]float64, len(pts))
	for i, p := range pts {
		profiles[i] = p
	}
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              11,
		Space:             polystyrene.Hamming(24),
		Shape:             profiles,
		ReplicationFactor: 6,
	})
	if err != nil {
		panic(err)
	}
	pub := sys.ServePublisher(0)
	sys.Run(20) // converge; each round publishes a fresh epoch

	ep := pub.Current()
	fmt.Println("epoch:", ep.Seq, "round:", ep.Round, "live:", ep.NumLive())
	// Route to the node closest to community 1's interest core. A member
	// profile is its community core plus one personal topic, so distance
	// 1 means the lookup landed on a community member.
	id, dist, _, ok := ep.Lookup(shape.ProfileCore(1, 24, 4))
	fmt.Println("found:", ok, "node:", id, "distance:", dist)
	pub.Close()
	// Output:
	// epoch: 21 round: 19 live: 64
	// found: true node: 16 distance: 1
}

package polystyrene_test

import (
	"fmt"

	"polystyrene"
)

// ExampleNewSystem shows the paper's headline behaviour: a torus overlay
// that survives losing its entire right half.
func ExampleNewSystem() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              1,
		Space:             polystyrene.Torus(20, 10),
		Shape:             polystyrene.TorusShape(20, 10, 1),
		ReplicationFactor: 4,
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15) // converge
	sys.CrashRegion(func(p []float64) bool { return p[0] >= 10 })
	sys.Run(12) // reshape
	fmt.Println("shape recovered:", sys.Homogeneity() < sys.ReferenceHomogeneity())
	// Output: shape recovered: true
}

// ExampleSystem_Lookup shows the routing primitive: queries resolve to the
// node closest to a point, even for points whose original hosts crashed.
func ExampleSystem_Lookup() {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              2,
		Space:             polystyrene.Ring(100),
		Shape:             polystyrene.RingShape(50, 100),
		ReplicationFactor: 4,
	})
	if err != nil {
		panic(err)
	}
	sys.Run(15)
	owner := sys.Lookup([]float64{42})
	fmt.Println("key 42 has an owner:", owner >= 0)
	// Output: key 42 has an owner: true
}

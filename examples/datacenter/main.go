// Datacenter: a ring-shaped key-value overlay spread across four
// datacenters, with key ranges correlated to datacenter placement — the
// deployment the paper's introduction warns about: "all the virtual
// machines handling contiguous keys hosted in the same rack".
//
// One datacenter (a contiguous quarter of the ring) loses power. With a
// classic topology-construction protocol the ring would keep a hole where
// the datacenter used to be; with Polystyrene the surviving nodes adopt
// the orphaned key positions and close the ring, so lookups for "dark"
// keys route to a nearby live owner again.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"polystyrene"
)

func main() {
	// 1024-key ring, 256 nodes: 64 per datacenter.
	if err := demo(os.Stdout, 1024, 256, 25); err != nil {
		log.Fatal(err)
	}
}

// datacenterOf maps a ring position to its hosting datacenter (0-3):
// contiguous arcs of the key space live in the same facility.
func datacenterOf(pos, ringSize float64) int {
	return int(pos/(ringSize/4)) % 4
}

// worstLookup probes lookups across the key space and reports the largest
// ring distance between a key and the node that answers for it.
func worstLookup(sys *polystyrene.System, ringSize float64) float64 {
	worst := 0.0
	for key := 0.0; key < ringSize; key += ringSize / 64 {
		owner := sys.Lookup([]float64{key})
		if owner < 0 {
			return math.Inf(1)
		}
		pos := sys.NodePosition(owner)[0]
		d := math.Abs(pos - key)
		if d > ringSize/2 {
			d = ringSize - d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func outage(baseline bool, ringSize float64, nodes, rounds int) (worstBefore, worstAfter float64, err error) {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              7,
		Space:             polystyrene.Ring(ringSize),
		Shape:             polystyrene.RingShape(nodes, ringSize),
		ReplicationFactor: 6, // survives pf=0.5 with ~99% per Sec. III-D; plenty for pf=0.25
		Baseline:          baseline,
	})
	if err != nil {
		return 0, 0, err
	}
	sys.Run(rounds)
	worstBefore = worstLookup(sys, ringSize)

	// Datacenter 2 loses power: every node whose current ring position
	// falls in its arc crashes at once.
	sys.CrashRegion(func(p []float64) bool { return datacenterOf(p[0], ringSize) == 2 })
	sys.Run(rounds)
	return worstBefore, worstLookup(sys, ringSize), nil
}

func demo(out io.Writer, ringSize float64, nodes, rounds int) error {
	fmt.Fprintf(out, "%d nodes on a %.0f-key ring across 4 datacenters; datacenter 2 fails\n\n", nodes, ringSize)
	for _, baseline := range []bool{true, false} {
		name := "polystyrene"
		if baseline {
			name = "t-man only "
		}
		before, after, err := outage(baseline, ringSize, nodes, rounds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s  worst key→owner distance: %6.2f before, %6.2f after the outage\n",
			name, before, after)
	}
	fmt.Fprintln(out, "\nThe ideal spacing after losing a quarter of the nodes is ~", ringSize/float64(nodes*3/4))
	fmt.Fprintln(out, "Polystyrene closes the ring; T-Man leaves the dead datacenter's arc dark.")
	return nil
}

// Datacenter: a ring-shaped key-value overlay spread across four
// datacenters, with key ranges correlated to datacenter placement — the
// deployment the paper's introduction warns about: "all the virtual
// machines handling contiguous keys hosted in the same rack".
//
// One datacenter (a contiguous quarter of the ring) loses power. With a
// classic topology-construction protocol the ring would keep a hole where
// the datacenter used to be; with Polystyrene the surviving nodes adopt
// the orphaned key positions and close the ring, so lookups for "dark"
// keys route to a nearby live owner again.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math"

	"polystyrene"
)

const (
	ringSize = 1024 // circumference of the key space
	nodes    = 256  // 64 per datacenter
)

// datacenterOf maps a ring position to its hosting datacenter (0-3):
// contiguous arcs of the key space live in the same facility.
func datacenterOf(pos float64) int {
	return int(pos/(ringSize/4)) % 4
}

// worstLookup probes lookups across the key space and reports the largest
// ring distance between a key and the node that answers for it.
func worstLookup(sys *polystyrene.System) float64 {
	worst := 0.0
	for key := 0.0; key < ringSize; key += ringSize / 64 {
		owner := sys.Lookup([]float64{key})
		if owner < 0 {
			return math.Inf(1)
		}
		pos := sys.NodePosition(owner)[0]
		d := math.Abs(pos - key)
		if d > ringSize/2 {
			d = ringSize - d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func run(baseline bool) (worstBefore, worstAfter float64) {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              7,
		Space:             polystyrene.Ring(ringSize),
		Shape:             polystyrene.RingShape(nodes, ringSize),
		ReplicationFactor: 6, // survives pf=0.5 with ~99% per Sec. III-D; plenty for pf=0.25
		Baseline:          baseline,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(25)
	worstBefore = worstLookup(sys)

	// Datacenter 2 loses power: every node whose current ring position
	// falls in its arc crashes at once.
	sys.CrashRegion(func(p []float64) bool { return datacenterOf(p[0]) == 2 })
	sys.Run(25)
	return worstBefore, worstLookup(sys)
}

func main() {
	fmt.Printf("%d nodes on a %d-key ring across 4 datacenters; datacenter 2 fails\n\n", nodes, ringSize)
	for _, baseline := range []bool{true, false} {
		name := "polystyrene"
		if baseline {
			name = "t-man only "
		}
		before, after := run(baseline)
		fmt.Printf("%s  worst key→owner distance: %6.2f before, %6.2f after the outage\n",
			name, before, after)
	}
	fmt.Println("\nThe ideal spacing after losing a quarter of the nodes is ~", ringSize/(nodes*3/4))
	fmt.Println("Polystyrene closes the ring; T-Man leaves the dead datacenter's arc dark.")
}

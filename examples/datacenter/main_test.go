package main

import (
	"strings"
	"testing"
)

func TestDemoRingOutage(t *testing.T) {
	var buf strings.Builder
	if err := demo(&buf, 256, 64, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"polystyrene", "t-man only", "after the outage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDatacenterOf(t *testing.T) {
	for dc := 0; dc < 4; dc++ {
		pos := float64(dc)*256 + 100
		if got := datacenterOf(pos, 1024); got != dc {
			t.Fatalf("datacenterOf(%v) = %d, want %d", pos, got, dc)
		}
	}
}

// Keyspace: elastic re-provisioning of a CAN-like 2D key space.
//
// A cloud tenant runs a 2D-torus storage overlay (one node per key zone,
// as in CAN). Half the fleet is lost when a region goes down; the overlay
// first *absorbs* the failure — survivors take over the orphaned zones at
// double load — and later the operator re-provisions fresh, empty VMs from
// the pool. Polystyrene's migration hands each newcomer a fair share of
// the key space, returning the system to one zone per node (the paper's
// phase 3, Sec. IV-B).
//
//	go run ./examples/keyspace
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polystyrene"
)

func main() {
	if err := demo(os.Stdout, 32, 16); err != nil { // 512 zones / nodes
		log.Fatal(err)
	}
}

// loadStats returns the min, mean and max number of key zones (data
// points) per live node — the load-balance view of the overlay.
func loadStats(sys *polystyrene.System) (minLoad, maxLoad int, mean float64) {
	live := sys.Live()
	minLoad, maxLoad = 1<<30, 0
	total := 0
	for _, id := range live {
		n := len(sys.NodeGuests(id))
		total += n
		if n < minLoad {
			minLoad = n
		}
		if n > maxLoad {
			maxLoad = n
		}
	}
	return minLoad, maxLoad, float64(total) / float64(len(live))
}

func demo(out io.Writer, w, h int) error {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              3,
		Space:             polystyrene.Torus(float64(w), float64(h)),
		Shape:             polystyrene.TorusShape(w, h, 1),
		ReplicationFactor: 6,
	})
	if err != nil {
		return err
	}

	report := func(stage string) {
		lo, hi, mean := loadStats(sys)
		fmt.Fprintf(out, "%-28s nodes=%3d  zones/node: min=%d mean=%.2f max=%d  homogeneity=%.3f\n",
			stage, sys.NumLive(), lo, mean, hi, sys.Homogeneity())
	}

	sys.Run(20)
	report("steady state:")

	killed := sys.CrashRegion(func(p []float64) bool { return p[0] >= float64(w)/2 })
	sys.Run(20)
	report(fmt.Sprintf("region down (-%d nodes):", killed))

	// Re-provision: fresh empty VMs join on an offset grid covering the
	// whole torus uniformly.
	fresh := make([][]float64, 0, killed)
	for _, p := range polystyrene.TorusShape(w, h, 1) {
		if len(fresh) < killed && int(p[0]+p[1])%2 == 0 {
			fresh = append(fresh, []float64{p[0] + 0.5, p[1] + 0.5})
		}
	}
	if _, err := sys.AddNodes(fresh); err != nil {
		return err
	}
	sys.Run(40)
	report(fmt.Sprintf("re-provisioned (+%d nodes):", len(fresh)))

	fmt.Fprintf(out, "\n%.1f%% of the original key zones survived the regional outage (K=6)\n",
		100*sys.Reliability())
	return nil
}

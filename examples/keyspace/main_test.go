package main

import (
	"strings"
	"testing"
)

func TestDemoElasticReprovisioning(t *testing.T) {
	var buf strings.Builder
	if err := demo(&buf, 16, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"steady state:", "region down", "re-provisioned", "survived"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

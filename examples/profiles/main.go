// Profiles: a semantic overlay in a non-geometric metric space.
//
// Topology construction is routinely used to cluster users by interest
// profile for decentralized recommendation (Gossple, WhatsUp — see the
// paper's Sec. II-B). Here profiles are 0/1 topic vectors under the
// Hamming distance: four interest communities of 64 users each, every
// community's members hosted by the same provider.
//
// When one provider (community) goes dark, its interest region of the
// profile space would normally vanish from the overlay — recommendations
// for those topics have nobody to route to. With Polystyrene, surviving
// users adopt the orphaned profiles: the semantic shape of the overlay
// outlives the provider.
//
//	go run ./examples/profiles
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polystyrene"
	"polystyrene/internal/shape"
)

const (
	topics      = 24 // profile vector length
	communities = 4
)

func main() {
	if err := demo(os.Stdout, 64, 25); err != nil {
		log.Fatal(err)
	}
}

// communityProfile builds a profile for user u of community c: a shared
// 6-topic community core plus a per-user variation topic, so members are
// mutually close under Hamming distance but not identical. The formula
// lives in shape.Profile, shared with polyserve -profiles.
func communityProfile(c, u int) []float64 {
	return shape.Profile(c, u, topics, communities)
}

// coverage reports, for each community, the distance from its canonical
// core profile to the closest live node position — how reachable that
// interest region still is in the overlay.
func coverage(sys *polystyrene.System) []float64 {
	out := make([]float64, communities)
	for c := range out {
		core := communityProfile(c, 0)
		owner := sys.Lookup(core)
		if owner < 0 {
			out[c] = -1
			continue
		}
		pos := sys.NodePosition(owner)
		d := 0.0
		for t := range pos {
			if pos[t] != core[t] {
				d++
			}
		}
		out[c] = d
	}
	return out
}

func demo(out io.Writer, usersPerCommunity, rounds int) error {
	pts := shape.Profiles(usersPerCommunity, topics, communities)
	profiles := make([][]float64, len(pts))
	for i, p := range pts {
		profiles[i] = p
	}

	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              11,
		Space:             polystyrene.Hamming(topics),
		Shape:             profiles,
		ReplicationFactor: 6,
	})
	if err != nil {
		return err
	}

	sys.Run(rounds)
	fmt.Fprintln(out, "interest coverage after convergence (Hamming distance to each community core):")
	fmt.Fprintf(out, "  %v\n", coverage(sys))

	// Provider hosting community 1 goes dark: crash every node whose
	// current profile position sits in community 1's core region.
	killed := sys.CrashRegion(func(p []float64) bool {
		hits := 0
		for t := 6; t < 12; t++ { // community 1's core topics
			if p[t] >= 1 {
				hits++
			}
		}
		return hits >= 4
	})
	fmt.Fprintf(out, "\nprovider outage: %d users of community 1 vanished\n", killed)

	sys.Run(rounds)
	fmt.Fprintln(out, "interest coverage after Polystyrene re-shaping:")
	fmt.Fprintf(out, "  %v\n", coverage(sys))
	fmt.Fprintf(out, "\n%.1f%% of all user profiles survived and are still routable (K=6)\n",
		100*sys.Reliability())
	return nil
}

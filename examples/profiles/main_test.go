package main

import (
	"strings"
	"testing"
)

func TestDemoSemanticOverlayOutage(t *testing.T) {
	var buf strings.Builder
	if err := demo(&buf, 16, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"provider outage", "re-shaping", "survived"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "-1") {
		t.Fatalf("some community core became unroutable:\n%s", out)
	}
}

func TestCommunityProfileShape(t *testing.T) {
	for c := 0; c < communities; c++ {
		p := communityProfile(c, 3)
		ones := 0
		for _, v := range p {
			if v == 1 {
				ones++
			}
		}
		if ones != 7 { // 6 core topics + 1 variation
			t.Fatalf("community %d profile has %d set topics, want 7", c, ones)
		}
	}
}

// Quickstart: the paper's headline experiment in ~40 lines.
//
// Build a 40x20 torus of 800 nodes, let it converge, crash the entire
// right half — a correlated catastrophic failure — and watch Polystyrene
// pull the shape back together in a handful of gossip rounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"polystyrene"
)

func main() {
	const w, h = 40, 20
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              1,
		Space:             polystyrene.Torus(w, h),
		Shape:             polystyrene.TorusShape(w, h, 1),
		ReplicationFactor: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys.Run(20)
	fmt.Printf("after convergence:   homogeneity %.3f, proximity %.3f, %d nodes\n",
		sys.Homogeneity(), sys.Proximity(), sys.NumLive())

	killed := sys.CrashRegion(func(p []float64) bool { return p[0] >= w/2 })
	fmt.Printf("catastrophe:         crashed %d nodes (the whole right half)\n", killed)

	ref := sys.ReferenceHomogeneity()
	for round := 1; ; round++ {
		sys.Run(1)
		hom := sys.Homogeneity()
		fmt.Printf("round +%2d:           homogeneity %.3f (target H = %.3f)\n", round, hom, ref)
		if hom < ref {
			fmt.Printf("reshaped in %d rounds; %.1f%% of the original data points survived\n",
				round, 100*sys.Reliability())
			break
		}
		if round > 40 {
			log.Fatal("did not reshape within 40 rounds")
		}
	}
}

// Quickstart: the paper's headline experiment in ~40 lines.
//
// Build a 40x20 torus of 800 nodes, let it converge, crash the entire
// right half — a correlated catastrophic failure — and watch Polystyrene
// pull the shape back together in a handful of gossip rounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polystyrene"
)

func main() {
	if err := demo(os.Stdout, 40, 20, 4, 20, 40); err != nil {
		log.Fatal(err)
	}
}

// demo runs the experiment on a w x h torus with replication factor k:
// converge rounds of convergence, then the crash, then up to maxRounds
// rounds of reshaping.
func demo(out io.Writer, w, h, k, converge, maxRounds int) error {
	sys, err := polystyrene.NewSystem(polystyrene.SystemConfig{
		Seed:              1,
		Space:             polystyrene.Torus(float64(w), float64(h)),
		Shape:             polystyrene.TorusShape(w, h, 1),
		ReplicationFactor: k,
	})
	if err != nil {
		return err
	}

	sys.Run(converge)
	fmt.Fprintf(out, "after convergence:   homogeneity %.3f, proximity %.3f, %d nodes\n",
		sys.Homogeneity(), sys.Proximity(), sys.NumLive())

	killed := sys.CrashRegion(func(p []float64) bool { return p[0] >= float64(w)/2 })
	fmt.Fprintf(out, "catastrophe:         crashed %d nodes (the whole right half)\n", killed)

	ref := sys.ReferenceHomogeneity()
	for round := 1; ; round++ {
		sys.Run(1)
		hom := sys.Homogeneity()
		fmt.Fprintf(out, "round +%2d:           homogeneity %.3f (target H = %.3f)\n", round, hom, ref)
		if hom < ref {
			fmt.Fprintf(out, "reshaped in %d rounds; %.1f%% of the original data points survived\n",
				round, 100*sys.Reliability())
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("did not reshape within %d rounds", maxRounds)
		}
	}
}

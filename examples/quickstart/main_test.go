package main

import (
	"io"
	"strings"
	"testing"
)

func TestDemoSmallTorusReshapes(t *testing.T) {
	var buf strings.Builder
	if err := demo(&buf, 16, 8, 4, 15, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reshaped in") {
		t.Fatalf("missing reshaping report in output:\n%s", buf.String())
	}
}

func TestDemoDefaultScaleConfigIsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("full 800-node demo in -short mode")
	}
	if err := demo(io.Discard, 40, 20, 4, 20, 40); err != nil {
		t.Fatal(err)
	}
}

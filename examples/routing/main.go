// Routing: why shape preservation matters for greedy geometric routing.
//
// Overlays like CAN route greedily: each hop forwards to the neighbour
// closest to the target, which works because nodes are spread uniformly
// over the data space. This example converges a torus, crashes its right
// half, and then fires greedy routes into the dead region — once over the
// Polystyrene-recovered shape, once over the plain T-Man baseline. Over
// the recovered shape every route lands on top of its target; over the
// collapsed shape routes stall at the old boundary, half a torus away.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"polystyrene/internal/route"
	"polystyrene/internal/scenario"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

func main() {
	if err := demo(os.Stdout, 40, 20); err != nil {
		log.Fatal(err)
	}
}

func probe(poly bool, w, h int) (route.ProbeStats, error) {
	sc, err := scenario.New(scenario.Config{
		Seed: 9, W: w, H: h, Polystyrene: poly, K: 4, SkipMetrics: true,
	})
	if err != nil {
		return route.ProbeStats{}, err
	}
	sc.Run(20)
	sc.FailRightHalf()
	sc.Run(20)

	r := &route.Router{
		Space:    sc.Space,
		Topology: sc.Topology(),
		Position: func(id sim.NodeID) space.Point { return sc.System().Position(id) },
	}
	// Probe targets spread across the crashed half.
	var probes []space.Point
	for x := float64(w)/2 + 2; x < float64(w); x += 4 {
		for y := 2.0; y < float64(h); y += 5 {
			probes = append(probes, space.Point{x, y})
		}
	}
	src := sc.Engine.LiveIDs()[0]
	return r.Probe(sc.Engine, src, probes)
}

func demo(out io.Writer, w, h int) error {
	fmt.Fprintf(out, "greedy routing into the crashed half of a %dx%d torus\n\n", w, h)
	for _, poly := range []bool{false, true} {
		name := "polystyrene"
		if !poly {
			name = "t-man only "
		}
		st, err := probe(poly, w, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s  %2d routes: mean final distance %5.2f, worst %5.2f, mean hops %.1f\n",
			name, st.Routes, st.MeanFinalDistance(), st.WorstFinalDistance, st.MeanHops())
	}
	fmt.Fprintln(out, "\nOver the recovered shape, greedy routing delivers next to every target;")
	fmt.Fprintln(out, "over the collapsed one it stalls at the old failure boundary.")
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestDemoRoutesBothConfigurations(t *testing.T) {
	var buf strings.Builder
	if err := demo(&buf, 16, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"polystyrene", "t-man only", "routes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

module polystyrene

go 1.24

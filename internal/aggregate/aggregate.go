// Package aggregate implements gossip-based aggregation (Jelasity,
// Montresor & Babaoglu, ACM TOCS 2005 — the paper's reference [24] and the
// source of its pair-wise exchange discipline): every node holds a local
// estimate, and each round it averages that estimate with a random peer's.
// All estimates converge exponentially fast to the global average of the
// initial values.
//
// Polystyrene's evaluation computes the reference homogeneity
// H = 0.5*sqrt(A/N) from global knowledge of the live node count N. A
// deployed system has no such oracle; this package supplies the standard
// decentralized substitutes:
//
//   - Average: push-pull averaging of an arbitrary per-node quantity;
//   - Count: system-size estimation (one node seeds 1, everyone else 0;
//     the average converges to 1/N, so N ≈ 1/estimate);
//
// so every node can track N — and therefore H, and therefore "has the
// shape recovered yet?" — locally. The integration test in this package
// demonstrates exactly that on the paper's catastrophe scenario.
package aggregate

import (
	"fmt"

	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
)

// Kind selects what the protocol aggregates.
type Kind int

const (
	// Average converges every estimate to the mean of initial values.
	Average Kind = iota + 1
	// Count converges every estimate to 1/N, from which the live system
	// size is recovered as 1/estimate. The protocol re-seeds after
	// membership changes via Restart.
	Count
)

// Config parameterises the protocol.
type Config struct {
	// Kind selects the aggregate.
	Kind Kind
	// Sampler supplies random gossip partners.
	Sampler *rps.Protocol
	// Initial returns a node's initial value (required for Average;
	// ignored for Count).
	Initial func(id sim.NodeID) float64
}

// Protocol is the aggregation layer. It implements sim.Protocol.
type Protocol struct {
	cfg       Config
	estimates []float64
	known     []bool
	seeded    bool
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns an aggregation layer.
func New(cfg Config) (*Protocol, error) {
	switch cfg.Kind {
	case Average:
		if cfg.Initial == nil {
			return nil, fmt.Errorf("aggregate: Average needs Config.Initial")
		}
	case Count:
		// no initial function needed
	default:
		return nil, fmt.Errorf("aggregate: unknown kind %d", cfg.Kind)
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("aggregate: Config.Sampler is required")
	}
	return &Protocol{cfg: cfg}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "aggregate" }

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(_ *sim.Engine, id sim.NodeID) {
	for len(p.estimates) <= int(id) {
		p.estimates = append(p.estimates, 0)
		p.known = append(p.known, false)
	}
	switch p.cfg.Kind {
	case Average:
		p.estimates[id] = p.cfg.Initial(id)
	case Count:
		if !p.seeded {
			// Exactly one node starts at 1; the average of the whole
			// population is then 1/N.
			p.estimates[id] = 1
			p.seeded = true
		} else {
			p.estimates[id] = 0
		}
	}
	p.known[id] = true
}

// Step implements sim.Protocol: one push-pull averaging exchange.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	q := p.cfg.Sampler.RandomPeer(e, id)
	if q == sim.None || !e.Alive(q) {
		return
	}
	mean := (p.estimates[id] + p.estimates[q]) / 2
	p.estimates[id] = mean
	p.estimates[q] = mean
	// One value each way, one unit per value.
	e.Charge(2)
}

// Estimate returns id's current local estimate.
func (p *Protocol) Estimate(id sim.NodeID) float64 {
	if int(id) >= len(p.estimates) {
		return 0
	}
	return p.estimates[id]
}

// CountEstimate converts a Count-mode estimate into a system-size guess
// from id's point of view. It returns 0 until the node has any mass.
func (p *Protocol) CountEstimate(id sim.NodeID) float64 {
	est := p.Estimate(id)
	if p.cfg.Kind != Count || est <= 0 {
		return 0
	}
	return 1 / est
}

// Restart re-seeds the aggregate over the current live population. For
// Count this is the standard epoch restart after churn: mass lost with
// crashed nodes (or duplicated by joins) biases the estimate, so periodic
// restarts keep it tracking the live N.
func (p *Protocol) Restart(e *sim.Engine, initial func(id sim.NodeID) float64) {
	live := e.LiveIDs()
	switch p.cfg.Kind {
	case Count:
		for i, id := range live {
			if i == 0 {
				p.estimates[id] = 1
			} else {
				p.estimates[id] = 0
			}
		}
	case Average:
		if initial == nil {
			initial = p.cfg.Initial
		}
		for _, id := range live {
			p.estimates[id] = initial(id)
		}
	}
}

// MaxRelativeError reports the worst relative deviation of live estimates
// from the true value — the convergence measure of the TOCS paper.
func (p *Protocol) MaxRelativeError(e *sim.Engine, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	worst := 0.0
	for _, id := range e.LiveIDs() {
		err := (p.estimates[id] - truth) / truth
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}

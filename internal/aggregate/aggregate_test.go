package aggregate

import (
	"math"
	"testing"

	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
)

func newAvgNet(t *testing.T, seed uint64, n int, initial func(id sim.NodeID) float64) (*sim.Engine, *Protocol) {
	t.Helper()
	sampler := rps.New(rps.Config{})
	agg, err := New(Config{Kind: Average, Sampler: sampler, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(seed, sampler, agg)
	e.AddNodes(n)
	return e, agg
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Kind: Average, Sampler: rps.New(rps.Config{})}); err == nil {
		t.Fatal("Average without Initial accepted")
	}
	if _, err := New(Config{Kind: Kind(42), Sampler: rps.New(rps.Config{})}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestAverageConverges(t *testing.T) {
	// Initial values 0..99: the global mean is 49.5; every local estimate
	// must approach it exponentially fast (TOCS 2005).
	e, agg := newAvgNet(t, 1, 100, func(id sim.NodeID) float64 { return float64(id) })
	e.RunRounds(30)
	if err := agg.MaxRelativeError(e, 49.5); err > 0.01 {
		t.Fatalf("max relative error %v after 30 rounds, want < 1%%", err)
	}
}

func TestAverageMassConservation(t *testing.T) {
	// Push-pull averaging preserves the sum of estimates exactly (up to
	// float error) as long as nobody crashes.
	e, agg := newAvgNet(t, 2, 64, func(id sim.NodeID) float64 { return float64(id % 7) })
	want := 0.0
	for _, id := range e.LiveIDs() {
		want += agg.Estimate(id)
	}
	e.RunRounds(20)
	got := 0.0
	for _, id := range e.LiveIDs() {
		got += agg.Estimate(id)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("mass changed: %v -> %v", want, got)
	}
}

func TestCountEstimatesSystemSize(t *testing.T) {
	sampler := rps.New(rps.Config{})
	agg := MustNew(Config{Kind: Count, Sampler: sampler})
	e := sim.New(3, sampler, agg)
	e.AddNodes(200)
	e.RunRounds(40)
	for _, id := range e.LiveIDs() {
		n := agg.CountEstimate(id)
		if n < 150 || n > 260 {
			t.Fatalf("node %d estimates N=%v, truth 200", id, n)
		}
	}
}

func TestCountRestartTracksCrash(t *testing.T) {
	// After a massive crash, the old mass distribution is biased; an epoch
	// restart re-converges the estimate to the new live population.
	sampler := rps.New(rps.Config{})
	agg := MustNew(Config{Kind: Count, Sampler: sampler})
	e := sim.New(4, sampler, agg)
	e.AddNodes(200)
	e.RunRounds(30)
	for id := sim.NodeID(100); id < 200; id++ {
		e.Kill(id)
	}
	agg.Restart(e, nil)
	e.RunRounds(40)
	for _, id := range e.LiveIDs() {
		n := agg.CountEstimate(id)
		if n < 70 || n > 140 {
			t.Fatalf("node %d estimates N=%v after crash, truth 100", id, n)
		}
	}
}

func TestRestartAverage(t *testing.T) {
	e, agg := newAvgNet(t, 5, 50, func(sim.NodeID) float64 { return 10 })
	e.RunRounds(5)
	agg.Restart(e, func(sim.NodeID) float64 { return 2 })
	e.RunRounds(10)
	if err := agg.MaxRelativeError(e, 2); err > 0.01 {
		t.Fatalf("restart did not take: err %v", err)
	}
}

func TestEstimateUnknownNode(t *testing.T) {
	_, agg := newAvgNet(t, 6, 3, func(sim.NodeID) float64 { return 1 })
	if agg.Estimate(999) != 0 || agg.CountEstimate(999) != 0 {
		t.Fatal("unknown node estimate not zero")
	}
}

func TestMaxRelativeErrorZeroTruth(t *testing.T) {
	e, agg := newAvgNet(t, 7, 3, func(sim.NodeID) float64 { return 1 })
	if agg.MaxRelativeError(e, 0) != 0 {
		t.Fatal("zero truth should yield zero error")
	}
}

func TestChargesCost(t *testing.T) {
	e, _ := newAvgNet(t, 8, 50, func(sim.NodeID) float64 { return 1 })
	e.RunRounds(5)
	if e.Meter().TotalCost("aggregate") == 0 {
		t.Fatal("aggregation charged nothing")
	}
}

func TestDecentralizedReferenceHomogeneity(t *testing.T) {
	// The paper computes the reference homogeneity H = 0.5*sqrt(A/N) from
	// global knowledge of N (Sec. IV-A). A deployed Polystyrene system can
	// instead track N with Count aggregation and evaluate H locally: after
	// the half-system crash, every node's locally computed H must be close
	// to the true sqrt(2)/2-scaled value.
	const area, n = 3200.0, 200
	sampler := rps.New(rps.Config{})
	agg := MustNew(Config{Kind: Count, Sampler: sampler})
	e := sim.New(9, sampler, agg)
	e.AddNodes(n)
	e.RunRounds(30)
	for id := sim.NodeID(n / 2); id < n; id++ {
		e.Kill(id)
	}
	agg.Restart(e, nil)
	e.RunRounds(40)

	trueH := 0.5 * math.Sqrt(area/float64(n/2))
	for _, id := range e.LiveIDs() {
		nodeN := agg.CountEstimate(id)
		if nodeN <= 0 {
			t.Fatalf("node %d has no size estimate", id)
		}
		localH := 0.5 * math.Sqrt(area/nodeN)
		if rel := math.Abs(localH-trueH) / trueH; rel > 0.2 {
			t.Fatalf("node %d local H=%v vs true %v (rel err %v)", id, localH, trueH, rel)
		}
	}
}

// Package ckpt manages durable checkpoint generations on disk.
//
// A checkpoint directory holds numbered generation files
// ("gen-0000000042.snap", round encoded in the name) plus a checksummed
// manifest ("MANIFEST.snap") listing the retained generations. Every
// write — generation or manifest — follows the atomic dance:
//
//	create temp file → write → fsync → close → rename → fsync directory
//
// so a crash at any point leaves either the old file or the new file,
// never a truncated hybrid at the final path. Rotation removes dropped
// generations only after the new manifest is durable; an orphaned file
// from a crash between those steps is harmless, because recovery scans
// the directory as well as the manifest.
//
// Recovery (OpenLatestGood) walks candidates newest-first — the union
// of the directory scan and the manifest — and verifies each via the
// snap envelope's whole-file checksum, returning the newest generation
// that decodes cleanly. A torn or corrupted newest generation therefore
// degrades to the previous one instead of failing the resume.
//
// Transient write errors (anything carrying Transient() bool, see
// IsTransient) are retried with doubling backoff up to Options.Retries
// times; everything else — including an injected crash — propagates.
package ckpt

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"polystyrene/internal/snap"
)

// ManifestName is the manifest file inside a checkpoint directory.
const ManifestName = "MANIFEST.snap"

// manifestKind is the snap envelope kind of the manifest file.
const manifestKind = "ckpt-manifest"

// genPattern is the generation filename layout; the zero-padded round
// makes lexical and numeric order agree.
const genPattern = "gen-%010d.snap"

// File is the writable-file surface the manager needs. *os.File
// satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the manager performs, so
// fault-injection shims (internal/faultio) can interpose on every
// mutating step. OS is the real implementation.
type FS interface {
	MkdirAll(dir string) error
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// OS is the real filesystem.
var OS FS = osFS{}

// IsTransient reports whether err (or anything it wraps) marks itself
// retryable by implementing Transient() bool returning true. The
// manager retries only such errors; a crash mid-dance is permanent by
// definition.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Generation identifies one retained checkpoint generation.
type Generation struct {
	Name  string // filename within the checkpoint directory
	Round int    // simulation round the snapshot was taken at
	Size  int64  // file size in bytes
	Sum   uint64 // FNV-1a over the whole file
}

// Path returns the generation's full path under dir.
func (g Generation) Path(dir string) string { return filepath.Join(dir, g.Name) }

// GenName returns the generation filename for a round.
func GenName(round int) string { return fmt.Sprintf(genPattern, round) }

// ParseGenRound extracts the round from a generation filename.
func ParseGenRound(name string) (int, bool) {
	var round int
	if _, err := fmt.Sscanf(name, genPattern, &round); err != nil {
		return 0, false
	}
	if name != GenName(round) || round < 0 {
		return 0, false
	}
	return round, true
}

// Options configures a Manager.
type Options struct {
	// Dir is the checkpoint directory; created if missing.
	Dir string
	// Kind is the snap envelope kind every generation must carry
	// (e.g. "scenario"). Recovery rejects files of any other kind.
	Kind string
	// Keep is how many generations to retain; older ones are removed
	// after each save. Default 3.
	Keep int
	// FS defaults to OS.
	FS FS
	// Retries bounds re-attempts of a save whose failure is transient
	// (see IsTransient). Default 3.
	Retries int
	// Backoff is the first retry delay; each retry doubles it.
	// Default 10ms.
	Backoff time.Duration
	// Sleep is swappable for tests. Default time.Sleep.
	Sleep func(time.Duration)
}

// Manager writes, rotates and recovers checkpoint generations in one
// directory. Methods are not safe for concurrent use; callers serialize
// saves (the scenario auto-checkpointer runs them on the round loop).
type Manager struct {
	opts Options
	gens []Generation // retained generations, ascending round
}

// NewManager opens (creating if needed) a checkpoint directory. An
// existing manifest is loaded best-effort: a missing or corrupt
// manifest is not an error, because recovery rebuilds the candidate
// list from the directory scan anyway.
func NewManager(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("ckpt: Options.Dir is required")
	}
	if opts.Kind == "" {
		return nil, fmt.Errorf("ckpt: Options.Kind is required")
	}
	if opts.Keep == 0 {
		opts.Keep = 3
	}
	if opts.Keep < 1 {
		return nil, fmt.Errorf("ckpt: Keep must be >= 1, got %d", opts.Keep)
	}
	if opts.FS == nil {
		opts.FS = OS
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Backoff == 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	m := &Manager{opts: opts}
	if err := m.retry(func() error { return opts.FS.MkdirAll(opts.Dir) }); err != nil {
		return nil, fmt.Errorf("ckpt: creating %s: %w", opts.Dir, err)
	}
	if data, err := opts.FS.ReadFile(filepath.Join(opts.Dir, ManifestName)); err == nil {
		if gens, err := decodeManifest(data); err == nil {
			m.gens = gens
		}
	}
	return m, nil
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Generations returns the retained generations, ascending by round.
// The slice is a copy.
func (m *Manager) Generations() []Generation {
	return append([]Generation(nil), m.gens...)
}

// Save durably writes one generation for round: the write callback
// streams the snapshot envelope into the temp file, which is then
// fsynced and renamed into place. On success the manifest is rewritten
// (atomically, same dance) to the retained set and dropped generations
// are removed best-effort. Transient failures of any step are retried
// with doubling backoff.
func (m *Manager) Save(round int, write func(io.Writer) error) (Generation, error) {
	if round < 0 {
		return Generation{}, fmt.Errorf("ckpt: negative round %d", round)
	}
	name := GenName(round)
	final := filepath.Join(m.opts.Dir, name)
	var size int64
	var sum uint64
	err := m.retry(func() error {
		n, s, err := m.writeGen(final, write)
		size, sum = n, s
		return err
	})
	if err != nil {
		return Generation{}, fmt.Errorf("ckpt: saving %s: %w", name, err)
	}
	gen := Generation{Name: name, Round: round, Size: size, Sum: sum}

	// Fold the new generation into the retained set (replacing a
	// same-round save) and rotate.
	kept := m.gens[:0:0]
	for _, g := range m.gens {
		if g.Name != name {
			kept = append(kept, g)
		}
	}
	kept = append(kept, gen)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Round < kept[j].Round })
	var dropped []Generation
	if n := len(kept) - m.opts.Keep; n > 0 {
		dropped = append(dropped, kept[:n]...)
		kept = kept[n:]
	}
	if err := m.retry(func() error { return m.writeManifest(kept) }); err != nil {
		// The generation itself is durable and discoverable by the
		// directory scan; report the stale manifest anyway so a soak
		// with a persistently failing disk does not run silent.
		m.gens = kept
		return gen, fmt.Errorf("ckpt: %s saved but manifest update failed: %w", name, err)
	}
	m.gens = kept
	// Only now is it safe to drop old generations: the manifest no
	// longer references them. Removal failures are harmless — the
	// orphans are re-dropped on the next rotation or ignored forever.
	for _, g := range dropped {
		_ = m.opts.FS.Remove(g.Path(m.opts.Dir))
	}
	return gen, nil
}

func (m *Manager) retry(attempt func() error) error {
	backoff := m.opts.Backoff
	for tries := 0; ; tries++ {
		err := attempt()
		if err == nil || tries >= m.opts.Retries || !IsTransient(err) {
			return err
		}
		m.opts.Sleep(backoff)
		backoff *= 2
	}
}

// writeGen runs one attempt of the atomic write dance for a single
// file, returning the byte count and FNV-1a sum of what was written.
func (m *Manager) writeGen(final string, write func(io.Writer) error) (int64, uint64, error) {
	fs := m.opts.FS
	tmp := final + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("create %s: %w", tmp, err)
	}
	h := fnv.New64a()
	cw := &countWriter{w: io.MultiWriter(f, h)}
	if err := write(cw); err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, fmt.Errorf("close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return 0, 0, fmt.Errorf("rename %s: %w", final, err)
	}
	if err := fs.SyncDir(filepath.Dir(final)); err != nil {
		return 0, 0, fmt.Errorf("fsync dir of %s: %w", final, err)
	}
	return cw.n, h.Sum64(), nil
}

func (m *Manager) writeManifest(gens []Generation) error {
	var w snap.Writer
	w.Len(len(gens))
	for _, g := range gens {
		w.String(g.Name)
		w.Int(g.Round)
		w.I64(g.Size)
		w.U64(g.Sum)
	}
	enc := snap.Encode(manifestKind, w.Bytes())
	path := filepath.Join(m.opts.Dir, ManifestName)
	_, _, err := m.writeGen(path, func(out io.Writer) error {
		_, werr := out.Write(enc)
		return werr
	})
	return err
}

func decodeManifest(data []byte) ([]Generation, error) {
	body, err := snap.Decode(manifestKind, data)
	if err != nil {
		return nil, err
	}
	r := snap.NewReader(body)
	n := r.Len(8 + 8 + 8 + 8 + 1) // name len + round + size + sum + ≥1 name byte
	gens := make([]Generation, 0, n)
	for i := 0; i < n; i++ {
		g := Generation{Name: r.String(), Round: r.Int(), Size: r.I64(), Sum: r.U64()}
		if r.Err() != nil {
			break
		}
		if round, ok := ParseGenRound(g.Name); !ok || round != g.Round {
			return nil, fmt.Errorf("ckpt: manifest entry %d: name %q does not match round %d", i, g.Name, g.Round)
		}
		gens = append(gens, g)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing manifest bytes", r.Remaining())
	}
	return gens, nil
}

// OpenLatestGood returns the newest generation that verifies cleanly,
// together with its raw file bytes (the full snap envelope, already
// checksum-verified — feed them straight to the restore path).
// Candidates are the union of the directory scan and the manifest,
// newest round first; corrupt or torn files are skipped. The error
// reports every rejected candidate when nothing survives.
func (m *Manager) OpenLatestGood() (Generation, []byte, error) {
	return m.OpenLatestGoodAtMost(int(^uint(0) >> 1))
}

// OpenLatestGoodAtMost is OpenLatestGood restricted to generations at
// or before round — the time-travel entry point: replay from the last
// retained generation preceding a failure.
func (m *Manager) OpenLatestGoodAtMost(round int) (Generation, []byte, error) {
	fs := m.opts.FS
	seen := map[string]int{}
	if names, err := fs.ReadDir(m.opts.Dir); err == nil {
		for _, name := range names {
			if r, ok := ParseGenRound(name); ok {
				seen[name] = r
			}
		}
	}
	for _, g := range m.gens {
		seen[g.Name] = g.Round
	}
	cands := make([]Generation, 0, len(seen))
	for name, r := range seen {
		if r <= round {
			cands = append(cands, Generation{Name: name, Round: r})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Round > cands[j].Round })

	var rejected []string
	for _, c := range cands {
		path := c.Path(m.opts.Dir)
		data, err := fs.ReadFile(path)
		if err != nil {
			rejected = append(rejected, fmt.Sprintf("%s: %v", c.Name, err))
			continue
		}
		if _, err := snap.Decode(m.opts.Kind, data); err != nil {
			rejected = append(rejected, fmt.Sprintf("%s: %v", c.Name, err))
			continue
		}
		h := fnv.New64a()
		h.Write(data)
		c.Size = int64(len(data))
		c.Sum = h.Sum64()
		return c, data, nil
	}
	if len(rejected) == 0 {
		return Generation{}, nil, fmt.Errorf("ckpt: no generations at or before round %d in %s", round, m.opts.Dir)
	}
	return Generation{}, nil, fmt.Errorf("ckpt: no good generation in %s; rejected:\n  %s",
		m.opts.Dir, strings.Join(rejected, "\n  "))
}

// WriteFileAtomic writes data to path with the full atomic dance (temp
// file → fsync → rename → dir fsync) on fs. It is the single-file
// little sibling of Manager.Save, for callers that keep exactly one
// checkpoint at a fixed path.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	if fs == nil {
		fs = OS
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("ckpt: fsync dir of %s: %w", path, err)
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package ckpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polystyrene/internal/snap"
)

func testManager(t *testing.T, keep int) *Manager {
	t.Helper()
	m, err := NewManager(Options{Dir: t.TempDir(), Kind: "blob", Keep: keep})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func decodeBlob(t *testing.T, raw []byte) string {
	t.Helper()
	body, err := snap.Decode("blob", raw)
	if err != nil {
		t.Fatalf("decoding recovered envelope: %v", err)
	}
	return string(body)
}

func saveBlob(t *testing.T, m *Manager, round int, body string) Generation {
	t.Helper()
	g, err := m.Save(round, func(w io.Writer) error {
		return snap.WriteEnvelope(w, "blob", []byte(body))
	})
	if err != nil {
		t.Fatalf("Save(%d): %v", round, err)
	}
	return g
}

func TestSaveAndRecoverLatest(t *testing.T) {
	m := testManager(t, 3)
	for round := 10; round <= 50; round += 10 {
		saveBlob(t, m, round, fmt.Sprintf("state@%d", round))
	}
	g, body, err := m.OpenLatestGood()
	if err != nil {
		t.Fatalf("OpenLatestGood: %v", err)
	}
	if g.Round != 50 || decodeBlob(t, body) != "state@50" {
		t.Fatalf("recovered round %d body %q", g.Round, body)
	}
	// Rotation: only the last 3 generations (30, 40, 50) remain.
	gens := m.Generations()
	if len(gens) != 3 || gens[0].Round != 30 || gens[2].Round != 50 {
		t.Fatalf("retained %+v", gens)
	}
	for _, round := range []int{10, 20} {
		if _, err := os.Stat(filepath.Join(m.Dir(), GenName(round))); !os.IsNotExist(err) {
			t.Errorf("dropped generation %d still on disk (err=%v)", round, err)
		}
	}
}

func TestRecoverySkipsCorruptNewest(t *testing.T) {
	m := testManager(t, 3)
	saveBlob(t, m, 1, "old")
	g2 := saveBlob(t, m, 2, "new")
	// Torn write: truncate the newest generation mid-file.
	path := g2.Path(m.Dir())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	g, body, err := m.OpenLatestGood()
	if err != nil {
		t.Fatalf("OpenLatestGood: %v", err)
	}
	if g.Round != 1 || decodeBlob(t, body) != "old" {
		t.Fatalf("fell back to round %d body %q, want 1 %q", g.Round, body, "old")
	}
}

func TestRecoveryWithoutManifest(t *testing.T) {
	m := testManager(t, 3)
	saveBlob(t, m, 7, "orphan")
	if err := os.Remove(filepath.Join(m.Dir(), ManifestName)); err != nil {
		t.Fatal(err)
	}
	// A fresh manager over the same dir finds the generation by scan.
	m2, err := NewManager(Options{Dir: m.Dir(), Kind: "blob"})
	if err != nil {
		t.Fatal(err)
	}
	g, body, err := m2.OpenLatestGood()
	if err != nil {
		t.Fatalf("OpenLatestGood: %v", err)
	}
	if g.Round != 7 || decodeBlob(t, body) != "orphan" {
		t.Fatalf("recovered round %d body %q", g.Round, body)
	}
}

func TestOpenLatestGoodAtMost(t *testing.T) {
	m := testManager(t, 10)
	for _, round := range []int{3, 6, 9} {
		saveBlob(t, m, round, fmt.Sprintf("r%d", round))
	}
	g, body, err := m.OpenLatestGoodAtMost(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Round != 6 || decodeBlob(t, body) != "r6" {
		t.Fatalf("AtMost(8) → round %d body %q", g.Round, body)
	}
	if _, _, err := m.OpenLatestGoodAtMost(2); err == nil {
		t.Fatal("AtMost(2) found a generation before any were saved")
	}
}

func TestRecoveryRejectsWrongKind(t *testing.T) {
	m := testManager(t, 3)
	saveBlob(t, m, 1, "blob-body")
	other, err := NewManager(Options{Dir: m.Dir(), Kind: "scenario"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.OpenLatestGood(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("wrong-kind generation accepted or unclear error: %v", err)
	}
}

type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

// flakyFS fails the first n mutating Create calls with a transient
// error, then behaves normally.
type flakyFS struct {
	FS
	failsLeft int
}

func (f *flakyFS) Create(path string) (File, error) {
	if f.failsLeft > 0 {
		f.failsLeft--
		return nil, transientErr{"simulated EAGAIN"}
	}
	return f.FS.Create(path)
}

func TestSaveRetriesTransientErrors(t *testing.T) {
	var slept []time.Duration
	fs := &flakyFS{FS: OS, failsLeft: 2}
	m, err := NewManager(Options{
		Dir: t.TempDir(), Kind: "blob", Keep: 2,
		Retries: 3, Backoff: time.Millisecond,
		FS:    fs,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	saveBlob(t, m, 1, "eventually")
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [1ms 2ms]", slept)
	}
	if _, _, err := m.OpenLatestGood(); err != nil {
		t.Fatalf("recovery after retried save: %v", err)
	}
}

func TestSaveGivesUpAfterRetryBudget(t *testing.T) {
	fs := &flakyFS{FS: OS, failsLeft: 100}
	m, err := NewManager(Options{
		Dir: t.TempDir(), Kind: "blob",
		Retries: 2, Backoff: time.Microsecond,
		FS:    fs,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Save(1, func(w io.Writer) error {
		return snap.WriteEnvelope(w, "blob", []byte("x"))
	})
	if err == nil || !IsTransient(err) {
		t.Fatalf("exhausted retries: err=%v", err)
	}
	if fs.failsLeft != 100-3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", 100-fs.failsLeft)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is transient")
	}
	if IsTransient(io.ErrUnexpectedEOF) {
		t.Error("plain error is transient")
	}
	if !IsTransient(transientErr{"x"}) {
		t.Error("transient error not recognized")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", transientErr{"x"})) {
		t.Error("wrapped transient error not recognized")
	}
}

func TestParseGenRound(t *testing.T) {
	cases := []struct {
		name  string
		round int
		ok    bool
	}{
		{GenName(0), 0, true},
		{GenName(123456), 123456, true},
		{"gen-123.snap", 0, false}, // not zero-padded
		{"gen--000000001.snap", 0, false},
		{ManifestName, 0, false},
		{"gen-0000000001.snap.tmp", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		round, ok := ParseGenRound(tc.name)
		if ok != tc.ok || round != tc.round {
			t.Errorf("ParseGenRound(%q) = %d,%v want %d,%v", tc.name, round, ok, tc.round, tc.ok)
		}
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.snap")
	for i := 0; i < 3; i++ {
		if err := WriteFileAtomic(nil, path, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("WriteFileAtomic: %v", err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("final contents %q err %v", got, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("dir entries %v err %v", names, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManager(t, 5)
	want := []Generation{
		saveBlob(t, m, 4, "a"),
		saveBlob(t, m, 8, "bb"),
	}
	m2, err := NewManager(Options{Dir: m.Dir(), Kind: "blob"})
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Generations()
	if len(got) != len(want) {
		t.Fatalf("reloaded %d generations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("generation %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// FuzzManifest feeds arbitrary bytes through the manifest decoder: it
// must never panic, and anything it accepts must re-encode to entries
// with valid generation names.
func FuzzManifest(f *testing.F) {
	var w snap.Writer
	w.Len(2)
	w.String(GenName(1))
	w.Int(1)
	w.I64(64)
	w.U64(0xabcdef)
	w.String(GenName(9))
	w.Int(9)
	w.I64(128)
	w.U64(0x123456)
	f.Add(snap.Encode(manifestKind, w.Bytes()))
	f.Add([]byte{})
	f.Add([]byte("PSYSNAP\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gens, err := decodeManifest(data)
		if err != nil {
			return
		}
		for _, g := range gens {
			if round, ok := ParseGenRound(g.Name); !ok || round != g.Round {
				t.Fatalf("decoder accepted invalid entry %+v", g)
			}
		}
	})
}

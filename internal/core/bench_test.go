package core

// Micro-benchmarks for the Polystyrene point-set hot paths. The headline
// one, BenchmarkMigrateRound, executes one full layer round (recovery,
// backup, migration, projection for every live node) at the post-failure
// steady state — the regime the ROADMAP's "Beyond 51,200 nodes" item
// targets, where survivors host several guests each. Its "stringkeyed"
// variant replays the same round with the PR-1-era representation
// (string-keyed merge/delta maps, allocating split, unconditional medoid)
// so the interned-ID rework is measured against the baseline it replaced;
// the tracked BENCH_*.json records both.

import (
	"sort"
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// benchStack builds a converged post-catastrophe stack: half the torus
// crashed, recovery and deduplication settled, each survivor hosting ~2
// guest points.
func benchStack(b *testing.B, seed uint64) *stack {
	b.Helper()
	st := newStack(b, stackOpts{seed: seed, w: 32, h: 16, cfg: Config{K: 4}})
	st.engine.RunRounds(10)
	for i, p := range st.points {
		if space.RightHalf(p, float64(st.w)) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	st.engine.RunRounds(10)
	return st
}

// BenchmarkMigrateRound measures one full Polystyrene round over every
// live node, in the interned-ID representation versus the string-keyed
// baseline it replaced.
func BenchmarkMigrateRound(b *testing.B) {
	b.Run("interned", func(b *testing.B) {
		st := benchStack(b, 42)
		ids := st.engine.LiveIDs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				st.poly.Step(st.engine, id)
			}
		}
	})
	b.Run("stringkeyed", func(b *testing.B) {
		st := benchStack(b, 42)
		ids := st.engine.LiveIDs()
		bl := newStringKeyedBaseline(st.poly, st.tman)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				bl.step(st.engine, id)
			}
		}
	})
}

// --- string-keyed baseline (the pre-interning implementation) ---

// stringKeyedBaseline replays the PR-1 implementation of the Polystyrene
// step against the live protocol state: every point-set operation goes
// through Point.Key() strings and per-call maps, the split allocates its
// partitions, and the medoid projection reruns every round. It drives the
// point slices only (never the lockstep ID state), so a stack stepped
// exclusively through it stays internally consistent for benchmarking.
type stringKeyedBaseline struct {
	p *Protocol
	// topo is the legacy allocating neighbour query (the pre-redesign
	// Topology contract), resolved from the concrete overlay since the
	// interface now only carries the append/visitor forms.
	topo interface {
		Neighbors(id sim.NodeID, k int) []sim.NodeID
	}
	// pushed mirrors the old per-backup pushed-key cache:
	// node → backup target → key set of the last push.
	pushed map[sim.NodeID]map[sim.NodeID]map[string]bool
}

func newStringKeyedBaseline(p *Protocol, topo interface {
	Neighbors(id sim.NodeID, k int) []sim.NodeID
}) *stringKeyedBaseline {
	return &stringKeyedBaseline{
		p: p, topo: topo,
		pushed: make(map[sim.NodeID]map[sim.NodeID]map[string]bool),
	}
}

func (bl *stringKeyedBaseline) step(e *sim.Engine, id sim.NodeID) {
	bl.recover(e, id)
	bl.backup(e, id)
	bl.migrate(e, id)
	bl.project(id)
}

func (bl *stringKeyedBaseline) recover(e *sim.Engine, id sim.NodeID) {
	p, st := bl.p, bl.p.nodes[id]
	var failed []sim.NodeID
	for origin := range st.ghosts {
		if p.cfg.Detector.Failed(e, id, origin) {
			failed = append(failed, origin)
		}
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	for _, origin := range failed {
		st.guests = mergePoints(st.guests, st.ghosts[origin].pts)
		delete(st.ghosts, origin)
	}
}

func (bl *stringKeyedBaseline) backup(e *sim.Engine, id sim.NodeID) {
	p, st := bl.p, bl.p.nodes[id]
	pushed := bl.pushed[id]
	if pushed == nil {
		pushed = make(map[sim.NodeID]map[string]bool)
		bl.pushed[id] = pushed
	}
	kept := st.backups[:0]
	for _, b := range st.backups {
		if !p.cfg.Detector.Failed(e, id, b.node) {
			kept = append(kept, b)
		} else {
			delete(pushed, b.node)
		}
	}
	st.backups = kept
	if missing := p.cfg.K - len(st.backups); missing > 0 {
		bl.pickBackupTargets(e, id, missing)
	}
	if len(st.backups) == 0 {
		return
	}
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	snapshot := clonePoints(st.guests)
	keys := make([]string, len(st.guests))
	now := make(map[string]bool, len(st.guests))
	for i, g := range st.guests {
		keys[i] = g.Key()
		now[keys[i]] = true
	}
	for _, b := range st.backups {
		gs := p.nodes[b.node].ghosts[id]
		if gs == nil {
			gs = &ghostSet{}
			p.nodes[b.node].ghosts[id] = gs
		}
		gs.pts = snapshot
		prev := pushed[b.node]
		delta := 0
		for _, k := range keys {
			if !prev[k] {
				delta++
			}
		}
		for k := range prev {
			if !now[k] {
				delta++
			}
		}
		pushed[b.node] = now
		e.Charge(delta * ptCost)
	}
}

func (bl *stringKeyedBaseline) pickBackupTargets(e *sim.Engine, id sim.NodeID, n int) {
	p, st := bl.p, bl.p.nodes[id]
	exclude := make(map[sim.NodeID]bool, len(st.backups)+1)
	exclude[id] = true
	for _, b := range st.backups {
		exclude[b.node] = true
	}
	candidates := p.cfg.Sampler.RandomPeers(e, id, n+len(st.backups)+1)
	added := 0
	for _, c := range candidates {
		if added == n {
			return
		}
		if !exclude[c] && e.Alive(c) {
			exclude[c] = true
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
	for tries := 0; added < n && tries < 20*n; tries++ {
		c := e.RandomLive()
		if c != sim.None && !exclude[c] {
			exclude[c] = true
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
}

func (bl *stringKeyedBaseline) migrate(e *sim.Engine, id sim.NodeID) {
	p := bl.p
	candidates := bl.topo.Neighbors(id, p.cfg.Psi)
	if r := p.cfg.Sampler.RandomPeer(e, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
		}
	}
	live := candidates[:0]
	for _, c := range candidates {
		if e.Alive(c) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	q := live[e.Rand().Intn(len(live))]

	pst, qst := p.nodes[id], p.nodes[q]
	all := mergePoints(clonePoints(pst.guests), qst.guests)
	toP, toQ := bl.splitAllocating(all, pst.pos, qst.pos)
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	e.Charge((len(qst.guests) + len(toQ)) * ptCost)
	pst.guests = toP
	qst.guests = toQ
	bl.project(q)
}

// splitAllocating is the old SplitAdvanced: fresh partition slices per
// call.
func (bl *stringKeyedBaseline) splitAllocating(points []space.Point, posP, posQ space.Point) (toP, toQ []space.Point) {
	sp := &bl.p.splitter
	s := sp.Space
	u, v, ok := sp.diameter(points)
	if !ok {
		u, v = posP, posQ
	}
	var a, bb []space.Point
	for _, x := range points {
		if s.Distance(x, u) < s.Distance(x, v) {
			a = append(a, x)
		} else {
			bb = append(bb, x)
		}
	}
	ma := space.MedoidPoint(s, a)
	mb := space.MedoidPoint(s, bb)
	dist := func(m, pos space.Point) float64 {
		if m == nil {
			return 0
		}
		return s.Distance(m, pos)
	}
	if dist(ma, posP)+dist(mb, posQ) < dist(mb, posP)+dist(ma, posQ) {
		return a, bb
	}
	return bb, a
}

func (bl *stringKeyedBaseline) project(id sim.NodeID) {
	st := bl.p.nodes[id]
	if len(st.guests) == 0 {
		return
	}
	st.pos = space.MedoidPoint(bl.p.cfg.Space, st.guests)
}

package core

// Chaos and property tests: drive the full stack through randomised
// sequences of failures, churn and reinjection, and assert that the
// protocol's core invariants hold at every step. These are the invariants
// the paper's mechanisms are designed to preserve:
//
//   - no duplicate points inside a node's guest set;
//   - |backups| == min(K, live-1) after every round; backups are live,
//     distinct, never self;
//   - a data point with at least one live copy (guest or active-able
//     ghost) is eventually hosted again (conservation under recovery);
//   - positions are always valid points of the data space.

import (
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// checkInvariants asserts the per-node structural invariants.
func checkInvariants(t *testing.T, st *stack) {
	t.Helper()
	live := st.engine.LiveIDs()
	for _, id := range live {
		guests := st.poly.Guests(id)
		seen := map[string]bool{}
		for _, g := range guests {
			k := g.Key()
			if seen[k] {
				t.Fatalf("node %d hosts duplicate point %v", id, g)
			}
			seen[k] = true
			if len(g) != st.space.Dim() {
				t.Fatalf("node %d hosts malformed point %v", id, g)
			}
		}
		if pos := st.poly.Position(id); len(pos) != st.space.Dim() {
			t.Fatalf("node %d has malformed position %v", id, pos)
		}
		backups := st.poly.Backups(id)
		wantBackups := st.poly.K()
		if avail := len(live) - 1; wantBackups > avail {
			wantBackups = avail
		}
		if len(backups) != wantBackups {
			t.Fatalf("node %d has %d backups, want %d", id, len(backups), wantBackups)
		}
		bseen := map[sim.NodeID]bool{id: true}
		for _, b := range backups {
			if bseen[b] {
				t.Fatalf("node %d has duplicate/self backup %d", id, b)
			}
			if !st.engine.Alive(b) {
				t.Fatalf("node %d has dead backup %d", id, b)
			}
			bseen[b] = true
		}
	}
}

func TestChaosRandomChurn(t *testing.T) {
	// Random uncorrelated churn: kill a few random nodes per round and
	// keep checking invariants and point conservation.
	st := newStack(t, stackOpts{seed: 100, w: 16, h: 8, cfg: Config{K: 4}})
	rng := xrand.New(999)
	st.engine.RunRounds(5)
	for round := 0; round < 25; round++ {
		if st.engine.NumLive() > 40 && rng.Bool(0.7) {
			live := st.engine.LiveIDs()
			st.engine.Kill(live[rng.Intn(len(live))])
		}
		st.engine.RunRounds(1)
		checkInvariants(t, st)
	}
	// With K=4 and sequential single-node churn, points virtually never
	// die: each crash leaves 4 live replicas that are re-replicated the
	// very next round.
	if unique := len(st.uniqueActivePoints()); unique < st.w*st.h-2 {
		t.Fatalf("unique points %d of %d after churn", unique, st.w*st.h)
	}
}

func TestChaosRepeatedCatastrophes(t *testing.T) {
	// Two successive regional catastrophes: right half first, then the
	// bottom half of the survivors. The shape must re-form both times.
	st := newStack(t, stackOpts{seed: 101, w: 16, h: 8, cfg: Config{K: 6}})
	st.engine.RunRounds(10)

	for wave, in := range []func(space.Point) bool{
		func(p space.Point) bool { return p[0] >= 8 },
		func(p space.Point) bool { return p[1] >= 4 },
	} {
		for _, id := range st.engine.LiveIDs() {
			if in(st.poly.Position(id)) {
				st.engine.Kill(id)
			}
		}
		st.engine.RunRounds(20)
		checkInvariants(t, st)
		// After each recovery the shape must cover both halves again.
		left, right := 0, 0
		for _, id := range st.engine.LiveIDs() {
			if st.poly.Position(id)[0] >= 8 {
				right++
			} else {
				left++
			}
		}
		if left == 0 || right == 0 {
			t.Fatalf("wave %d: shape not recovered (left=%d right=%d)", wave, left, right)
		}
	}
	if st.engine.NumLive() < 20 {
		t.Fatalf("too few survivors for a meaningful test: %d", st.engine.NumLive())
	}
	// 32 survivors of 128; K=6 replicas dominate losses: most points live.
	if rel := float64(len(st.uniqueActivePoints())) / float64(st.w*st.h); rel < 0.5 {
		t.Fatalf("reliability %v after two catastrophes with K=6", rel)
	}
}

func TestChaosChurnPlusReinjection(t *testing.T) {
	// Mixed workload: converge, crash a region, trickle-inject newcomers
	// while random churn continues.
	st := newStack(t, stackOpts{seed: 102, w: 16, h: 8, cfg: Config{K: 4}})
	rng := xrand.New(4242)
	st.engine.RunRounds(8)
	for i, p := range st.points {
		if space.RightHalf(p, 16) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	for round := 0; round < 30; round++ {
		if round%3 == 0 {
			st.engine.AddNodes(2) // trickle reinjection
		}
		if rng.Bool(0.3) && st.engine.NumLive() > 40 {
			live := st.engine.LiveIDs()
			st.engine.Kill(live[rng.Intn(len(live))])
		}
		st.engine.RunRounds(1)
		checkInvariants(t, st)
	}
	// Recovery duplicates are only removed when two holders meet in a
	// migration exchange, so give the system a quiet settling period after
	// the churn stops before asserting full deduplication.
	st.engine.RunRounds(25)
	total := 0
	for _, id := range st.engine.LiveIDs() {
		total += st.poly.NumGuests(id)
	}
	unique := len(st.uniqueActivePoints())
	if total != unique {
		t.Fatalf("duplicates survive mixed churn: %d guests vs %d unique", total, unique)
	}
}

func TestPointConservationProperty(t *testing.T) {
	// Property (randomised): as long as every crash leaves at least one
	// copy of a point (its holder or one of the holder's backups alive),
	// the point is eventually re-hosted. We approximate by killing random
	// *minorities* and verifying total uniqueness never drops below the
	// guaranteed-survivor count computed from ground truth at kill time.
	rng := xrand.New(31337)
	for trial := 0; trial < 3; trial++ {
		st := newStack(t, stackOpts{seed: 200 + uint64(trial), w: 12, h: 6, cfg: Config{K: 3}})
		st.engine.RunRounds(6)

		// Pick a random 25% of nodes to kill simultaneously.
		live := st.engine.LiveIDs()
		kill := map[sim.NodeID]bool{}
		for _, idx := range rng.Sample(len(live), len(live)/4) {
			kill[live[idx]] = true
		}

		// Ground truth: a point survives if a holder or a ghost holder
		// stays alive.
		survivors := map[string]bool{}
		for _, id := range live {
			if !kill[id] {
				for _, g := range st.poly.Guests(id) {
					survivors[g.Key()] = true
				}
				for _, origin := range st.poly.GhostOrigins(id) {
					_ = origin
				}
			}
		}
		// Ghost copies: any live node holding ghosts from anyone keeps
		// those points recoverable.
		for _, id := range live {
			if kill[id] {
				continue
			}
			for _, origin := range st.poly.GhostOrigins(id) {
				for _, g := range ghostPointsOf(st, id, origin) {
					survivors[g.Key()] = true
				}
			}
		}

		for id := range kill {
			st.engine.Kill(id)
		}
		st.engine.RunRounds(10)

		hosted := st.uniqueActivePoints()
		for key := range survivors {
			if !hosted[key] {
				t.Fatalf("trial %d: point with a surviving copy was lost", trial)
			}
		}
	}
}

// ghostPointsOf exposes a node's ghost points from one origin for the
// conservation property test.
func ghostPointsOf(st *stack, id, origin sim.NodeID) []space.Point {
	gs := st.poly.nodes[id].ghosts[origin]
	if gs == nil {
		return nil
	}
	return gs.pts
}

func TestProjectionStaysInShapeNeighborhood(t *testing.T) {
	// Node positions are medoids of hosted grid points, so they must
	// always coincide with some original grid point (projection never
	// invents coordinates).
	st := newStack(t, stackOpts{seed: 103, w: 12, h: 6, cfg: Config{K: 4}})
	valid := map[string]bool{}
	for _, p := range st.points {
		valid[p.Key()] = true
	}
	st.engine.RunRounds(8)
	for i, p := range st.points {
		if space.RightHalf(p, 12) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	st.engine.RunRounds(12)
	for _, id := range st.engine.LiveIDs() {
		if st.poly.NumGuests(id) == 0 {
			continue
		}
		if !valid[st.poly.Position(id).Key()] {
			t.Fatalf("node %d projected to %v, not an original grid point",
				id, st.poly.Position(id))
		}
	}
}

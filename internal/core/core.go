// Package core implements Polystyrene, the paper's contribution: a
// shape-preserving add-on layer for decentralized topology construction
// (Sec. III). It decouples nodes from the data points that define the
// target shape, so that when a whole region of the overlay crashes the
// survivors can adopt the orphaned data points and migrate onto them,
// reforming the original shape at a lower sampling density.
//
// The layer combines four epidemic mechanisms, executed after every round
// of the underlying topology-construction protocol (Fig. 4):
//
//   - projection — a node's virtual position, fed to T-Man, is the medoid
//     of the data points it hosts (Sec. III-C);
//   - backup — every node replicates its guest points onto K random nodes,
//     where they are stored as inactive ghosts (Algorithm 1, Sec. III-D);
//   - recovery — when a ghost's origin is detected as failed, the ghost
//     points are reactivated into the local guest set (Algorithm 2);
//   - migration — neighbouring nodes repeatedly merge and re-split their
//     guest sets (Algorithm 3), a pair-wise decentralized k-means that
//     re-balances points across nodes and removes duplicates (Sec. III-F).
//
// # Interned point identities
//
// Data points form a fixed, generator-produced universe (the shape is the
// point set, Sec. III-A), so every point is interned into a space.Interner
// exactly once — when a seed node first hosts it — and all point-set state
// carries dense space.PointID identities in lockstep with the points:
// guest sets, ghost sets and the per-backup pushed sets are (Point,
// PointID) pairs. Set operations on the hot path (the migration union, the
// incremental backup delta, ghost adoption) run on generation-stamped ID
// arrays and pooled scratch buffers instead of string-keyed maps, and the
// layer maintains an incremental guests⁻¹ holders index (PointID → holder
// nodes) that the evaluation metrics consume in O(holders) per point.
//
// Invariants (see space.Interner): only canonical points enter the layer —
// Config.InitialPoint must return canonical (e.g. torus-wrapped)
// coordinates — every hosted point is interned before use, and points are
// immutable once published. IDs are private to one Protocol's interner;
// share Config.Interner when the harness must resolve the same IDs.
//
// # Batched execution
//
// A Polystyrene step's conflict set is {initiator} ∪ {current backup
// targets after the top-up} ∪ {migration partner}: those are the only
// nodes whose layer state the step reads or writes, which lets the engine
// batch disjoint steps concurrently (sim.Batched). Two cross-cutting
// structures need care: the guests⁻¹ holders index is keyed by PointID,
// not NodeID, so its mutations are deferred into per-worker logs and
// applied at each batch barrier in step order; and the neighbour-window
// rankings read the *positions* of arbitrary overlay candidates, so the
// layer snapshots all node positions at the start of its batched pass
// (Position serves the snapshot while the pass runs) to make rankings
// independent of concurrent projections. Pooled scratch lives in
// per-worker slots — slot 0 is the sequential engine's — and the batch
// matcher mirrors the step's peer/target selection on a dedicated plan
// scratch without mutating anything.
package core

import (
	"fmt"
	"slices"

	"polystyrene/internal/fd"
	"polystyrene/internal/genset"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// Topology is the view Polystyrene needs of the topology-construction
// layer below it: the ability to enumerate a node's k closest overlay
// neighbours. Both T-Man and Vicinity satisfy it — the paper presents
// Polystyrene as "an add-on layer that can be plugged into any
// decentralized topology construction algorithm" (Sec. II-C).
//
// The overlay is queried constantly — backup placement (Sec. III-D), the
// migration candidate window (Sec. III-F) and every per-round metric ask
// "who are node n's k closest peers" — so the contract is allocation-free
// in both of its forms:
//
//   - AppendNeighbors appends the up-to-k closest neighbours of id to dst,
//     ordered by increasing distance, and returns the extended slice. The
//     caller owns (and typically pools) the buffer; implementations run
//     their selection on internal scratch and must not retain dst.
//   - EachNeighbor visits the same sequence without materialising it,
//     calling yield in increasing distance order and stopping early when
//     yield returns false. Implementations may iterate over internal
//     scratch, so yield must not call back into the topology; reading
//     positions or liveness from other layers is fine.
//
// Both forms must agree exactly (same neighbours, same order) for a given
// overlay state, and implementations are expected to answer out-of-range
// ids and k <= 0 as empty queries. Concrete providers additionally keep a
// legacy Neighbors(id, k) convenience that allocates a fresh slice per
// call; it is deliberately not part of this interface.
type Topology interface {
	AppendNeighbors(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID
	EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool)
}

// WorkerTopology is the extension of Topology this layer requires to run
// under the engine's batch scheduler: AppendNeighbors variants whose
// selection scratch is owned by an explicit worker slot (so concurrent
// batched Polystyrene steps can query the overlay without sharing
// buffers) or by the matcher's plan mirror. Both T-Man and Vicinity
// implement it; a Topology without it keeps the layer on the sequential
// path (Batchable returns false).
type WorkerTopology interface {
	Topology
	// AppendNeighborsW is AppendNeighbors over worker slot w's scratch.
	AppendNeighborsW(w int, dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID
	// AppendNeighborsPlan is AppendNeighbors over the provider's plan
	// scratch (single-threaded, used between batches).
	AppendNeighborsPlan(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID
	// EnsureWorkers sizes the provider's worker-slot table; called
	// single-threaded before any worker starts.
	EnsureWorkers(n int)
}

// Defaults from the paper's experimental setting (Sec. IV-A).
const (
	// DefaultK is the replication factor (the paper evaluates 2, 4 and 8;
	// 4 is the middle setting used for the illustrative figures).
	DefaultK = 4
	// DefaultPsi is ψ, the size of the neighbour window the migration
	// partner is drawn from (Algorithm 3, line 1).
	DefaultPsi = 5
)

// BackupPlacement selects where a node places its K replicas.
type BackupPlacement int

const (
	// PlaceRandom spreads copies uniformly at random via the peer-sampling
	// layer — the paper's default, chosen to survive spatially correlated
	// failures (Sec. III-D).
	PlaceRandom BackupPlacement = iota + 1
	// PlaceNeighbors replicates to topologically close nodes instead. The
	// paper discusses this variant: faster percolation after localized
	// failures, but vulnerable to correlated regional crashes. Provided
	// for the ablation benches.
	PlaceNeighbors
)

// Config parameterises the Polystyrene layer. Space, Topology and Sampler are
// required. InitialPoint decides the data point a joining node starts
// with; when it returns seed=false the node joins empty-handed but with an
// initialised position (the paper's reinjection scenario, Sec. IV-A).
type Config struct {
	// Space is the metric data space.
	Space space.Space
	// Topology is the topology-construction layer below (T-Man, Vicinity, ...).
	Topology Topology
	// Sampler is the peer-sampling layer, used for random backup targets
	// and the random migration candidate.
	Sampler *rps.Protocol
	// Detector is the failure detector; nil means fd.Perfect.
	Detector fd.Detector
	// InitialPoint returns the original position of a joining node and
	// whether that position is a data point the node should host (seed).
	// Returned points must be canonical (see the package doc): they are
	// interned as the node's identity in the data universe.
	InitialPoint func(id sim.NodeID) (pos space.Point, seed bool)
	// Interner maps canonical data points to dense PointIDs. Optional:
	// when nil the protocol creates a private interner. Supply a shared
	// one when the harness needs to resolve the layer's PointIDs too
	// (e.g. the indexed evaluation metrics).
	Interner *space.Interner
	// K is the replication factor (copies per data point).
	K int
	// Psi is the migration candidate window ψ.
	Psi int
	// Split selects the migration split strategy; zero means SplitAdvanced.
	Split SplitKind
	// DiameterSampleCap bounds diameter search cost; see Splitter.
	DiameterSampleCap int
	// Placement selects backup placement; zero means PlaceRandom.
	Placement BackupPlacement
	// FullCopyBackup disables the incremental-delta optimisation of
	// Algorithm 1 (Sec. III-D) so each round re-sends full copies. Only
	// the charged message cost differs; provided for the ablation bench.
	FullCopyBackup bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Space == nil {
		return c, fmt.Errorf("core: Config.Space is required")
	}
	if c.Topology == nil {
		return c, fmt.Errorf("core: Config.Topology is required")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("core: Config.Sampler is required")
	}
	if c.InitialPoint == nil {
		return c, fmt.Errorf("core: Config.InitialPoint is required")
	}
	if c.Detector == nil {
		c.Detector = fd.Perfect{}
	}
	if c.Interner == nil {
		c.Interner = space.NewInterner()
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Psi <= 0 {
		c.Psi = DefaultPsi
	}
	if c.Split == 0 {
		c.Split = SplitAdvanced
	}
	if c.Placement == 0 {
		c.Placement = PlaceRandom
	}
	return c, nil
}

// ghostSet is one origin's inactive replica: its guest set as of the last
// push, points and interned IDs in lockstep. Buffers are reused across
// pushes from the same origin.
type ghostSet struct {
	pts []space.Point
	ids []space.PointID
}

// backupRef is one replication target together with the ID set of the
// guests most recently pushed there, which prices the incremental delta of
// Algorithm 1 (Sec. III-D).
type backupRef struct {
	node   sim.NodeID
	pushed []space.PointID
}

// nodeState is the per-node state of Table I in the paper.
type nodeState struct {
	// guests are the data points this node currently hosts (primary
	// copies), unique within the slice; guestIDs carries their interned
	// identities in lockstep.
	guests   []space.Point
	guestIDs []space.PointID
	// pos is the node's virtual position: the medoid of guests, or the
	// last known position when guests is empty. posDirty records that the
	// guest set changed since pos was last projected, so the O(g²) medoid
	// scan only reruns on transitions (steady-state migrations that hand
	// every point back skip it).
	pos      space.Point
	posDirty bool
	// ghosts maps an origin node to the inactive copies it pushed here.
	ghosts map[sim.NodeID]*ghostSet
	// backups lists the nodes this node replicates its guests to.
	backups []backupRef
}

// holderOp is one deferred holders-index mutation of a batched step,
// applied at the batch barrier in step order.
type holderOp struct {
	pid  space.PointID
	node sim.NodeID
	add  bool
}

// stepOps locates one step's contiguous run of deferred ops in its
// worker's log.
type stepOps struct {
	step   int32
	lo, hi int32
}

// scratch is one worker slot's pooled step state. pset/nset are
// generation-stamped membership sets over dense PointIDs and NodeIDs
// respectively; mergedPts/IDs is the migration union buffer; failedBuf
// backs recover's sorted origin list; nbrBuf backs the neighbour and
// random-peer queries of migration and backup placement; splitter is the
// slot's migration splitter (batched steps point its Rng at the step
// stream); ops/steps hold the slot's deferred holders-index mutations.
type scratch struct {
	pset      genset.Set
	nset      genset.Set
	mergedPts []space.Point
	mergedIDs []space.PointID
	failedBuf []sim.NodeID
	nbrBuf    []sim.NodeID
	splitter  Splitter
	ops       []holderOp
	steps     []stepOps
}

// Protocol is the Polystyrene layer. It implements sim.Protocol and
// sim.Batched, and must be stacked above its Config.Topology layer in the
// engine.
type Protocol struct {
	cfg      Config
	splitter Splitter
	nodes    []*nodeState
	// wtopo is cfg.Topology's worker-slot extension, nil when the
	// provider does not offer one (which keeps the layer sequential).
	wtopo WorkerTopology

	// holders is the incremental guests⁻¹ index: holders.lists[pid] are
	// the nodes hosting point pid as a guest (possibly including crashed
	// nodes; readers filter by liveness — see HoldersOf).
	holders holderIndex

	// ws holds one scratch per worker slot; slot 0 is the sequential
	// engine's. plan backs the matcher's selection mirrors, and flushBuf
	// stages the step-ordered application of deferred holder ops.
	ws       []*scratch
	flushBuf []flushRef

	plan struct {
		nset genset.Set
		cand []sim.NodeID
		nbr  []sim.NodeID
	}
	// psiCache hands each planned step's migration ψ-window (a draw-free
	// overlay ranking) from PlanStep to StepW.
	psiCache sim.WindowCache

	// posSnap/snapOn freeze Position answers during a batched pass (see
	// the package comment).
	posSnap []space.Point
	snapOn  bool
}

// flushRef points FlushBatch at one worker's run of ops for one step.
type flushRef struct {
	step   int32
	worker int32
	lo, hi int32
}

var _ sim.Protocol = (*Protocol)(nil)
var _ sim.Batched = (*Protocol)(nil)

// New returns a Polystyrene layer with the given configuration.
func New(cfg Config) (*Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg: cfg,
		splitter: Splitter{
			Kind:              cfg.Split,
			Space:             cfg.Space,
			DiameterSampleCap: cfg.DiameterSampleCap,
		},
	}
	p.wtopo, _ = cfg.Topology.(WorkerTopology)
	p.ws = []*scratch{p.newScratch()}
	p.psiCache = sim.NewWindowCache(cfg.Psi)
	p.holders.floor = cfg.K + 1
	return p, nil
}

func (p *Protocol) newScratch() *scratch {
	return &scratch{splitter: Splitter{
		Kind:              p.cfg.Split,
		Space:             p.cfg.Space,
		DiameterSampleCap: p.cfg.DiameterSampleCap,
	}}
}

func (p *Protocol) ensureWorkers(n int) {
	for len(p.ws) < n {
		p.ws = append(p.ws, p.newScratch())
	}
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "polystyrene" }

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	if p.splitter.Rng == nil {
		p.splitter.Rng = e.Rand().Split()
	}
	for len(p.nodes) <= int(id) {
		p.nodes = append(p.nodes, nil)
	}
	pos, seed := p.cfg.InitialPoint(id)
	st := &nodeState{
		pos:    pos.Clone(),
		ghosts: make(map[sim.NodeID]*ghostSet),
	}
	if seed {
		pt := pos.Clone()
		pid := p.cfg.Interner.Intern(pt)
		st.guests = []space.Point{pt}
		st.guestIDs = []space.PointID{pid}
		p.holders.add(e, pid, id)
	}
	p.nodes[id] = st
}

// Step implements sim.Protocol: recovery, backup maintenance, migration
// and projection for one node (paper Fig. 4, steps 2-4; projection is
// step 1 of the *next* T-Man round).
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.StepW(e.SeqCtx(), id)
}

// StepW implements sim.Batched: the full per-node step under an explicit
// step context (the sequential Step routes through it byte-identically,
// with scratch slot 0 and immediate holders-index updates).
func (p *Protocol) StepW(ctx *sim.StepCtx, id sim.NodeID) {
	scr := p.ws[ctx.Worker()]
	opLo := len(scr.ops)
	p.recover(ctx, scr, id)
	p.backup(ctx, scr, id)
	p.migrate(ctx, scr, id)
	p.project(id)
	if ctx.Batched() {
		if len(scr.ops) > opLo {
			scr.steps = append(scr.steps, stepOps{step: int32(ctx.StepIndex()), lo: int32(opLo), hi: int32(len(scr.ops))})
		}
	} else {
		// Batched rounds tick once per round from EndBatchedRound instead:
		// the trim window must only advance on the engine goroutine.
		p.holders.tick(1)
	}
}

// holderAdd records (or, sequentially, applies) a holders-index insert.
// The index is keyed by PointID, which no conflict set covers, so batched
// steps must not touch it directly: mutations queue in the worker's log
// and FlushBatch applies them at the barrier in step order.
func (p *Protocol) holderAdd(ctx *sim.StepCtx, scr *scratch, pid space.PointID, n sim.NodeID) {
	if !ctx.Batched() {
		p.holders.add(ctx.Engine(), pid, n)
		return
	}
	scr.ops = append(scr.ops, holderOp{pid: pid, node: n, add: true})
}

// holderRemove is holderAdd's removal counterpart.
func (p *Protocol) holderRemove(ctx *sim.StepCtx, scr *scratch, pid space.PointID, n sim.NodeID) {
	if !ctx.Batched() {
		p.holders.remove(pid, n)
		return
	}
	scr.ops = append(scr.ops, holderOp{pid: pid, node: n})
}

// --- Recovery (Algorithm 2) ---

// recover reactivates ghost points whose origin node has been detected as
// failed, merging them into the local guest set.
func (p *Protocol) recover(ctx *sim.StepCtx, scr *scratch, id sim.NodeID) {
	e := ctx.Engine()
	st := p.nodes[id]
	if len(st.ghosts) == 0 {
		return
	}
	// Collect the origins first and only then consult the detector, in ID
	// order: map iteration order is randomised in Go, and both the merge
	// order (guest-slice order, hence medoid tie-breaks) and the
	// detector's query order (a probabilistic detector consumes a random
	// stream per query) would otherwise make runs non-reproducible.
	failed := scr.failedBuf[:0]
	for origin := range st.ghosts {
		failed = append(failed, origin)
	}
	slices.Sort(failed)
	n := 0
	for _, origin := range failed {
		if p.cfg.Detector.Failed(e, id, origin) {
			failed[n] = origin
			n++
		}
	}
	failed = failed[:n]
	for _, origin := range failed {
		p.adoptGhosts(ctx, scr, st, id, origin, st.ghosts[origin])
		delete(st.ghosts, origin)
	}
	scr.failedBuf = failed
}

// adoptGhosts merges a failed origin's ghost set into id's guests,
// skipping points already hosted (set union by interned ID), and retires
// the dead origin's stale entries from the holders index.
func (p *Protocol) adoptGhosts(ctx *sim.StepCtx, scr *scratch, st *nodeState, id, origin sim.NodeID, gs *ghostSet) {
	for _, pid := range gs.ids {
		p.holderRemove(ctx, scr, pid, origin)
	}
	before := len(st.guestIDs)
	st.guests, st.guestIDs = p.unionInto(scr, st.guests, st.guestIDs, gs.pts, gs.ids)
	for _, pid := range st.guestIDs[before:] {
		p.holderAdd(ctx, scr, pid, id)
	}
	if len(st.guestIDs) > before {
		st.posDirty = true
	}
}

// unionInto appends to (dstPts, dstIDs) every point of (srcPts, srcIDs)
// whose ID is not already present — the ID-keyed set union behind ghost
// adoption and the migration merge, equivalent to the string-keyed
// mergePoints oracle but touching only the pooled generation stamps.
// Existing dst order is preserved and novel points append in src order.
func (p *Protocol) unionInto(scr *scratch, dstPts []space.Point, dstIDs []space.PointID, srcPts []space.Point, srcIDs []space.PointID) ([]space.Point, []space.PointID) {
	mark, gen := scr.pset.Next(p.cfg.Interner.Len())
	for _, pid := range dstIDs {
		mark[pid] = gen
	}
	for i, pid := range srcIDs {
		if mark[pid] != gen {
			mark[pid] = gen
			dstPts = append(dstPts, srcPts[i])
			dstIDs = append(dstIDs, pid)
		}
	}
	return dstPts, dstIDs
}

// --- Backup (Algorithm 1) ---

// backup prunes failed backup targets, tops the set back up to K random
// nodes, and pushes the current guest set to every target.
func (p *Protocol) backup(ctx *sim.StepCtx, scr *scratch, id sim.NodeID) {
	e := ctx.Engine()
	st := p.nodes[id]

	// backups ← backups \ failed (line 1).
	kept := st.backups[:0]
	for _, b := range st.backups {
		if !p.cfg.Detector.Failed(e, id, b.node) {
			kept = append(kept, b)
		}
	}
	st.backups = kept

	// backups ← backups ∪ {(K − |backups|) random nodes} (line 2).
	if missing := p.cfg.K - len(st.backups); missing > 0 {
		p.pickBackupTargets(ctx, scr, id, missing)
	}

	// Push guests to every backup (lines 3-4). The stored ghosts are a
	// full replacement; the *charged* traffic is the incremental delta
	// (Sec. III-D optimisation) unless FullCopyBackup is set.
	if len(st.backups) == 0 {
		return
	}
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	if p.cfg.FullCopyBackup {
		for i := range st.backups {
			ctx.Touch(st.backups[i].node)
			p.pushGhosts(id, st.backups[i].node, st)
			ctx.Charge(len(st.guests) * ptCost)
		}
		return
	}
	// One generation pass marks the current guest set; each target's delta
	// then prices against its own previously-pushed set, with no maps and
	// no key strings.
	mark, gen := scr.pset.Next(p.cfg.Interner.Len())
	for _, pid := range st.guestIDs {
		mark[pid] = gen
	}
	for i := range st.backups {
		b := &st.backups[i]
		ctx.Touch(b.node)
		p.pushGhosts(id, b.node, st)
		delta := pushDelta(mark, gen, len(st.guestIDs), b.pushed)
		b.pushed = append(b.pushed[:0], st.guestIDs...)
		ctx.Charge(delta * ptCost)
	}
}

// pushDelta returns the incremental backup traffic of Algorithm 1
// (Sec. III-D): points added since the last push plus removal tombstones,
// i.e. |cur| + |prev| − 2·|cur ∩ prev|. The current guest set must already
// be stamped with gen in mark; prev is the target's previously-pushed ID
// set. It equals the string-keyed two-map count it replaced (see the
// oracle property test).
func pushDelta(mark []uint32, gen uint32, curLen int, prev []space.PointID) int {
	common := 0
	for _, pid := range prev {
		if mark[pid] == gen {
			common++
		}
	}
	return curLen + len(prev) - 2*common
}

// pushGhosts replaces the ghost copy of id's guests stored at target b,
// reusing b's existing buffers for this origin. Ghost points are slice
// headers onto immutable point data, so later guest-set mutations at the
// origin never disturb a stored ghost.
func (p *Protocol) pushGhosts(id, b sim.NodeID, st *nodeState) {
	tgt := p.nodes[b]
	gs := tgt.ghosts[id]
	if gs == nil {
		gs = &ghostSet{}
		tgt.ghosts[id] = gs
	}
	gs.pts = append(gs.pts[:0], st.guests...)
	gs.ids = append(gs.ids[:0], st.guestIDs...)
}

// pickBackupTargets appends up to n fresh backup nodes to id's target list
// according to the configured placement, excluding self and current
// targets via the pooled node-generation set. The candidate draw appends
// into the slot's pooled buffer, so the top-up allocates nothing.
func (p *Protocol) pickBackupTargets(ctx *sim.StepCtx, scr *scratch, id sim.NodeID, n int) {
	e := ctx.Engine()
	st := p.nodes[id]
	exclude, gen := scr.nset.Next(e.NumNodes())
	exclude[id] = gen
	for _, b := range st.backups {
		exclude[b.node] = gen
	}

	var candidates []sim.NodeID
	switch p.cfg.Placement {
	case PlaceNeighbors:
		candidates = p.topoAppendNeighbors(ctx, scr.nbrBuf[:0], id, n+len(st.backups)+1)
		scr.nbrBuf = candidates
	default:
		candidates = p.cfg.Sampler.AppendRandomPeersW(ctx, scr.nbrBuf[:0], id, n+len(st.backups)+1)
		scr.nbrBuf = candidates
	}

	added := 0
	for _, c := range candidates {
		if added == n {
			return
		}
		if exclude[c] != gen && e.Alive(c) {
			exclude[c] = gen
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
	// The sampling view may be too small right after a catastrophe; fall
	// back to uniform draws over the whole live system.
	for tries := 0; added < n && tries < 20*n; tries++ {
		c := ctx.RandomLive()
		if c != sim.None && exclude[c] != gen {
			exclude[c] = gen
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
}

// topoAppendNeighbors routes an overlay query at the right scratch slot:
// batched steps query the WorkerTopology on their own worker slot,
// sequential ones use the provider's default (slot 0).
func (p *Protocol) topoAppendNeighbors(ctx *sim.StepCtx, dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	if ctx.Batched() {
		return p.wtopo.AppendNeighborsW(ctx.Worker(), dst, id, k)
	}
	return p.cfg.Topology.AppendNeighbors(dst, id, k)
}

// --- Migration (Algorithm 3) ---

// migrate performs the pair-wise pull-push exchange of guest points with a
// partner drawn from the ψ closest T-Man neighbours plus one random peer.
// The candidate window lands in pooled scratch, so the Psi-scan performs
// no allocations.
func (p *Protocol) migrate(ctx *sim.StepCtx, scr *scratch, id sim.NodeID) {
	e := ctx.Engine()
	// Batched steps reuse the ψ window their plan already ranked (it is
	// draw-free, so the stream stays aligned with the plan's replay).
	var candidates []sim.NodeID
	if ctx.Batched() {
		candidates = p.psiCache.Append(scr.nbrBuf[:0], id)
	} else {
		candidates = p.cfg.Topology.AppendNeighbors(scr.nbrBuf[:0], id, p.cfg.Psi)
	}
	scr.nbrBuf = candidates
	if r := p.cfg.Sampler.RandomPeerW(ctx, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
			scr.nbrBuf = candidates
		}
	}
	// Neighbours can be stale for one round after a crash event.
	live := candidates[:0]
	for _, c := range candidates {
		if e.Alive(c) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	q := live[ctx.Rand().Intn(len(live))]
	ctx.Touch(q)

	pst, qst := p.nodes[id], p.nodes[q]
	// all_points ← p.guests ∪ q.guests (line 4). The union removes
	// duplicate copies, which is how redundant points created by eager
	// re-replication after a failure get cleaned up (Sec. IV-B). It is an
	// ID-keyed union into pooled scratch — p's points first, then q's
	// novel ones, preserving the merge order the split tie-breaks see.
	mp := append(scr.mergedPts[:0], pst.guests...)
	mi := append(scr.mergedIDs[:0], pst.guestIDs...)
	mp, mi = p.unionInto(scr, mp, mi, qst.guests, qst.guestIDs)
	scr.mergedPts, scr.mergedIDs = mp, mi

	// Sequential steps keep the protocol's persistent splitter (and its
	// long-lived sampling stream); batched steps use the slot's splitter
	// fed by the step stream, so diameter sampling is scheduling-proof.
	sp := &p.splitter
	if ctx.Batched() {
		sp = &scr.splitter
		sp.Rng = ctx.Rand()
	}
	toP, toQ, idsP, idsQ := sp.Split(mp, mi, pst.pos, qst.pos)
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	// Pull: q ships its guests to p; push: p ships q's new set back.
	ctx.Charge((len(qst.guests) + len(toQ)) * ptCost)

	p.setGuests(ctx, scr, id, pst, toP, idsP)
	p.setGuests(ctx, scr, q, qst, toQ, idsQ)
	p.project(q) // q's position moves with its new guest set
}

// setGuests replaces st's guest set with a split result (whose slices
// alias splitter scratch), maintaining the holders index and the
// projection dirty flag. An unchanged set — the steady-state common case,
// where migration hands every point back to its holder — costs a single
// ID-slice comparison and leaves the cached medoid valid.
func (p *Protocol) setGuests(ctx *sim.StepCtx, scr *scratch, id sim.NodeID, st *nodeState, pts []space.Point, ids []space.PointID) {
	if slices.Equal(st.guestIDs, ids) {
		return
	}
	for _, pid := range st.guestIDs {
		p.holderRemove(ctx, scr, pid, id)
	}
	for _, pid := range ids {
		p.holderAdd(ctx, scr, pid, id)
	}
	st.guests = append(st.guests[:0], pts...)
	st.guestIDs = append(st.guestIDs[:0], ids...)
	st.posDirty = true
}

// --- Projection (Sec. III-C) ---

// project recomputes the node's virtual position as the medoid of its
// guests, if the guest set changed since the last projection. A node with
// no guests keeps its previous position, which is how freshly reinjected
// (empty) nodes remain addressable until migration hands them points.
func (p *Protocol) project(id sim.NodeID) {
	st := p.nodes[id]
	if len(st.guests) == 0 || !st.posDirty {
		return
	}
	st.pos = space.MedoidPoint(p.cfg.Space, st.guests)
	st.posDirty = false
}

// --- sim.Batched ---

// Batchable implements sim.Batched: the layer can run batched when its
// overlay offers worker-slot queries and its failure detector declares
// order-independent, race-free answers. Otherwise the engine keeps this
// layer on the sequential path (lower layers may still batch).
func (p *Protocol) Batchable() bool {
	if p.wtopo == nil {
		return false
	}
	ps, ok := p.cfg.Detector.(fd.ParallelSafe)
	return ok && ps.ParallelSafe()
}

// PlanInvariant implements sim.PlanInvariant: a Polystyrene step's
// selection reads only the position snapshot, the frozen overlay views,
// the frozen detector answers and the initiator's own sampling view —
// nothing another Polystyrene step mutates — so cached plans stay valid
// for the whole pass and deferred steps are never re-planned.
func (p *Protocol) PlanInvariant() bool { return true }

// BeginBatchedRound implements sim.Batched: it sizes the per-worker
// scratch (here and in the overlay below) and snapshots every node's
// position. Migration and placement windows rank candidates by position;
// serving those reads from a start-of-pass snapshot keeps rankings
// identical no matter which projections have already run concurrently —
// and therefore identical at every worker count.
func (p *Protocol) BeginBatchedRound(e *sim.Engine, workers int) {
	p.ensureWorkers(workers)
	p.wtopo.EnsureWorkers(workers)
	p.posSnap = p.posSnap[:0]
	for _, st := range p.nodes {
		p.posSnap = append(p.posSnap, st.pos)
	}
	p.snapOn = true
}

// PlanStep implements sim.Batched: it appends the step's conflict set —
// {id} ∪ {backup targets surviving the prune} ∪ {targets the top-up will
// pick} ∪ {the migration partner} — by mirroring the step's selection
// sequence draw-for-draw on the throwaway stream, without mutating
// anything. Holder-index updates touch no node state and are excluded by
// design (they are deferred to FlushBatch).
func (p *Protocol) PlanStep(e *sim.Engine, rng *xrand.Rand, id sim.NodeID, dst []sim.NodeID) []sim.NodeID {
	dst = append(dst, id)
	st := p.nodes[id]
	// recover draws nothing and touches only id's own state, so it needs
	// no mirror. Mirror backup's prune: surviving targets will all be
	// pushed to.
	base := len(dst)
	for _, b := range st.backups {
		if !p.cfg.Detector.Failed(e, id, b.node) {
			dst = append(dst, b.node)
		}
	}
	kept := len(dst) - base
	if missing := p.cfg.K - kept; missing > 0 {
		dst = p.planPickBackupTargets(e, rng, id, dst, base, missing)
	}

	// Mirror migrate's partner selection: ψ-window plus one random peer,
	// live-filtered, uniform pick. The ranked window is handed to StepW
	// through the per-node cache.
	cand := p.planTopoNeighbors(p.plan.cand[:0], id, p.cfg.Psi)
	p.psiCache.Put(id, cand)
	if r := p.cfg.Sampler.PlanRandomPeer(e, rng, id); r != sim.None && r != id {
		dup := false
		for _, c := range cand {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			cand = append(cand, r)
		}
	}
	live := cand[:0]
	for _, c := range cand {
		if e.Alive(c) {
			live = append(live, c)
		}
	}
	p.plan.cand = live
	if len(live) > 0 {
		dst = append(dst, live[rng.Intn(len(live))])
	}
	return dst
}

// planPickBackupTargets mirrors pickBackupTargets draw-for-draw against
// unmutated state: dst[keptOff:] holds the pruned target list, and picked
// targets append to dst.
func (p *Protocol) planPickBackupTargets(e *sim.Engine, rng *xrand.Rand, id sim.NodeID, dst []sim.NodeID, keptOff, n int) []sim.NodeID {
	exclude, gen := p.plan.nset.Next(e.NumNodes())
	exclude[id] = gen
	for _, b := range dst[keptOff:] {
		exclude[b] = gen
	}

	var candidates []sim.NodeID
	want := n + (len(dst) - keptOff) + 1
	switch p.cfg.Placement {
	case PlaceNeighbors:
		candidates = p.planTopoNeighbors(p.plan.nbr[:0], id, want)
	default:
		candidates = p.cfg.Sampler.AppendPlanRandomPeers(p.plan.nbr[:0], e, rng, id, want)
	}
	p.plan.nbr = candidates

	added := 0
	for _, c := range candidates {
		if added == n {
			return dst
		}
		if exclude[c] != gen && e.Alive(c) {
			exclude[c] = gen
			dst = append(dst, c)
			added++
		}
	}
	for tries := 0; added < n && tries < 20*n; tries++ {
		c := sim.None
		if e.NumLive() > 0 {
			c = e.LiveAt(rng.Intn(e.NumLive()))
		}
		if c != sim.None && exclude[c] != gen {
			exclude[c] = gen
			dst = append(dst, c)
			added++
		}
	}
	return dst
}

// planTopoNeighbors is topoAppendNeighbors for the matcher: the overlay
// query over the provider's plan scratch.
func (p *Protocol) planTopoNeighbors(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	return p.wtopo.AppendNeighborsPlan(dst, id, k)
}

// FlushBatch implements sim.Batched: it applies every holder-index
// mutation the batch's steps deferred, in step order — exactly the
// sequence a sequential execution of the batch would have produced, so
// the index contents are byte-identical at every worker count.
func (p *Protocol) FlushBatch(e *sim.Engine) {
	refs := p.flushBuf[:0]
	for w, scr := range p.ws {
		for _, so := range scr.steps {
			refs = append(refs, flushRef{step: so.step, worker: int32(w), lo: so.lo, hi: so.hi})
		}
	}
	slices.SortFunc(refs, func(a, b flushRef) int { return int(a.step) - int(b.step) })
	for _, ref := range refs {
		for _, op := range p.ws[ref.worker].ops[ref.lo:ref.hi] {
			if op.add {
				p.holders.add(e, op.pid, op.node)
			} else {
				p.holders.remove(op.pid, op.node)
			}
		}
	}
	p.flushBuf = refs[:0]
	for _, scr := range p.ws {
		scr.ops, scr.steps = scr.ops[:0], scr.steps[:0]
	}
}

// EndBatchedRound implements sim.Batched, restoring live Position reads
// before observers run and advancing the holders-index trim window by the
// round's step count (the per-step tick of the sequential path must not
// run on concurrent workers).
func (p *Protocol) EndBatchedRound(e *sim.Engine) {
	p.snapOn = false
	p.holders.tick(e.NumLive())
}

// --- Accessors (used by the position func, metrics and tests) ---

// Position returns the node's current virtual position. It is valid for
// dead nodes too (their last position), which T-Man needs while purging.
// During the layer's own batched pass it serves the start-of-pass
// snapshot, so concurrent neighbour rankings are scheduling-independent.
func (p *Protocol) Position(id sim.NodeID) space.Point {
	if p.snapOn {
		return p.posSnap[id]
	}
	return p.nodes[id].pos
}

// Guests returns a copy of the node's guest points. Hot paths should use
// GuestsFunc or AppendGuests instead, which do not allocate.
func (p *Protocol) Guests(id sim.NodeID) []space.Point {
	return clonePoints(p.nodes[id].guests)
}

// GuestsFunc calls fn for every guest point of id, with its interned ID,
// without copying the set. fn must not mutate the point and must not call
// back into the protocol.
func (p *Protocol) GuestsFunc(id sim.NodeID, fn func(pt space.Point, pid space.PointID)) {
	st := p.nodes[id]
	for i, g := range st.guests {
		fn(g, st.guestIDs[i])
	}
}

// AppendGuests appends the node's guest points to dst and returns it —
// the allocation-free alternative to Guests for callers with a reusable
// buffer. The points themselves are shared and must not be mutated.
func (p *Protocol) AppendGuests(id sim.NodeID, dst []space.Point) []space.Point {
	return append(dst, p.nodes[id].guests...)
}

// NumGuests returns how many guest points the node hosts.
func (p *Protocol) NumGuests(id sim.NodeID) int { return len(p.nodes[id].guests) }

// NumGhosts returns how many ghost points the node stores.
func (p *Protocol) NumGhosts(id sim.NodeID) int {
	n := 0
	for _, gs := range p.nodes[id].ghosts {
		n += len(gs.pts)
	}
	return n
}

// Backups returns a copy of the node's current backup targets.
func (p *Protocol) Backups(id sim.NodeID) []sim.NodeID {
	refs := p.nodes[id].backups
	out := make([]sim.NodeID, len(refs))
	for i, b := range refs {
		out[i] = b.node
	}
	return out
}

// GhostOrigins returns the origins that have replicated state to id.
func (p *Protocol) GhostOrigins(id sim.NodeID) []sim.NodeID {
	st := p.nodes[id]
	out := make([]sim.NodeID, 0, len(st.ghosts))
	for origin := range st.ghosts {
		out = append(out, origin)
	}
	return out
}

// K returns the configured replication factor.
func (p *Protocol) K() int { return p.cfg.K }

// Interner returns the protocol's point interner: the authority on the
// PointIDs used by GuestsFunc and HoldersOf.
func (p *Protocol) Interner() *space.Interner { return p.cfg.Interner }

// HoldersOf returns the nodes currently hosting the interned point as a
// guest. The returned slice is the protocol's live index — callers must
// not retain or mutate it, and it may contain crashed nodes (a crash is
// not an observable transition; readers filter by engine liveness). It
// satisfies metrics.HolderIndex.
func (p *Protocol) HoldersOf(pid space.PointID) []sim.NodeID {
	return p.holders.of(pid)
}

// HoldersIndexFootprint reports the holders index's entry count, its
// total backing capacity (in entries), and the capacity bound the trim
// discipline settles under once the system is calm. Diagnostics for the
// memory soak tests: capacity transiently exceeds the bound during a
// recovery wave and is trimmed back under it against the decaying
// high-water mark afterwards.
func (p *Protocol) HoldersIndexFootprint() (entries, capacity, slackBound int) {
	return p.holders.footprint()
}

// PositionFunc returns the function the topology-construction layer should
// use to resolve node positions, closing the projection loop of Fig. 3.
// The result is assignable to tman.PositionFunc and vicinity.PositionFunc.
func (p *Protocol) PositionFunc() func(id sim.NodeID) space.Point {
	return func(id sim.NodeID) space.Point { return p.Position(id) }
}

// --- holders index ---

// Holders-list trimming parameters. A recovery wave reactivates ghosts
// eagerly, so holder lists transiently grow well past their steady-state
// length of ~1 — appended to one holder at a time, doubling their backing
// arrays — and once migration has deduplicated the copies the lists
// shrink back but their capacity stays pinned, list by list, run-long
// (~3x the entry count after a couple of waves at 12,800 nodes). The trim
// window closes every holderTrimWindow protocol steps; the window's
// largest observed list length is the decaying high-water mark that gates
// it: a calm window (high-water mark at most K+1, i.e. no recovery wave
// in flight) compacts every list whose capacity exceeds holderTrimSlack
// times its current length, while a hot window trims nothing — lists
// about to regrow should keep their capacity. Trimming only changes
// capacities, never contents, so it is invisible to results at every
// worker count.
const (
	holderTrimWindow = 4096
	holderTrimSlack  = 2
)

// holderIndex is the incremental guests⁻¹ map: for each PointID, the nodes
// hosting that point as a guest. Lists are tiny (one holder in steady
// state, ~K+1 transiently after a recovery wave), so membership updates
// are linear scans and removal is swap-remove; list order is therefore
// arbitrary, which is fine for the order-independent (min / any-live)
// queries the metrics run. floor / steps / hwMark drive the decaying
// high-water-mark capacity trim (see the constants above).
type holderIndex struct {
	lists  [][]sim.NodeID
	floor  int
	steps  int
	hwMark int
}

// add appends n to pid's holder list, first compacting out entries whose
// nodes have crashed since they were indexed — a crash is not an
// observable transition for the maintainer, so dead entries are retired
// here. Only the lists of points that never gain a holder again (lost
// points) can retain dead entries indefinitely, which bounds the index by
// the universe size even under sustained churn.
func (h *holderIndex) add(e *sim.Engine, pid space.PointID, n sim.NodeID) {
	for len(h.lists) <= int(pid) {
		h.lists = append(h.lists, nil)
	}
	l := h.lists[pid]
	kept := l[:0]
	for _, v := range l {
		if e.Alive(v) {
			kept = append(kept, v)
		}
	}
	kept = append(kept, n)
	h.lists[pid] = kept
	if len(kept) > h.hwMark {
		h.hwMark = len(kept)
	}
}

// tick advances the trim window by n protocol steps and, when a calm
// window closes (largest list length seen at most the K+1 floor — a
// recovery wave in flight shows up as longer lists, and its lists should
// keep their capacity), compacts every list whose capacity outgrew
// holderTrimSlack times its current length. Lists at capacity <=
// holderTrimSlack are never compacted: the steady-state 1<->2 holder
// flutter of migration would otherwise thrash reallocations. Called once
// per sequential step and once per batched round (with the round's step
// count) — always from the engine goroutine, so the sweep never races
// with workers.
func (h *holderIndex) tick(n int) {
	h.steps += n
	if h.steps < holderTrimWindow {
		return
	}
	if h.hwMark <= h.floor {
		for i, l := range h.lists {
			if cap(l) > holderTrimSlack*len(l) && cap(l) > holderTrimSlack {
				compact := make([]sim.NodeID, len(l))
				copy(compact, l)
				h.lists[i] = compact
			}
		}
	}
	h.steps, h.hwMark = 0, 0
}

// footprint returns the index's entry count, its total list capacity (in
// entries), and the exact capacity bound the trim discipline promises
// once a calm window has closed: per allocated list, holderTrimSlack
// times its length, but never below holderTrimSlack (tick exempts
// cap <= holderTrimSlack lists to avoid thrash).
func (h *holderIndex) footprint() (entries, capacity, slackBound int) {
	for _, l := range h.lists {
		entries += len(l)
		capacity += cap(l)
		if cap(l) > 0 {
			b := holderTrimSlack * len(l)
			if b < holderTrimSlack {
				b = holderTrimSlack
			}
			slackBound += b
		}
	}
	return entries, capacity, slackBound
}

func (h *holderIndex) remove(pid space.PointID, n sim.NodeID) {
	if int(pid) >= len(h.lists) {
		return
	}
	l := h.lists[pid]
	for i, v := range l {
		if v == n {
			l[i] = l[len(l)-1]
			h.lists[pid] = l[:len(l)-1]
			return
		}
	}
}

func (h *holderIndex) of(pid space.PointID) []sim.NodeID {
	if int(pid) >= len(h.lists) {
		return nil
	}
	return h.lists[pid]
}

// --- point-set helpers ---

// clonePoints returns an independent copy of pts (points themselves are
// immutable and may be shared).
func clonePoints(pts []space.Point) []space.Point {
	out := make([]space.Point, len(pts))
	copy(out, pts)
	return out
}

// mergePoints returns base extended with every point of extra that is not
// already present (set union by point key). base may be mutated.
//
// This is the string-keyed predecessor of the interned-ID unions above; it
// is retained as the reference oracle for the property tests and baseline
// benchmarks, and must stay semantically aligned with adoptGhosts/migrate.
func mergePoints(base []space.Point, extra []space.Point) []space.Point {
	if len(extra) == 0 {
		return base
	}
	seen := make(map[string]bool, len(base)+len(extra))
	for _, b := range base {
		seen[b.Key()] = true
	}
	for _, x := range extra {
		k := x.Key()
		if !seen[k] {
			seen[k] = true
			base = append(base, x)
		}
	}
	return base
}

// Package core implements Polystyrene, the paper's contribution: a
// shape-preserving add-on layer for decentralized topology construction
// (Sec. III). It decouples nodes from the data points that define the
// target shape, so that when a whole region of the overlay crashes the
// survivors can adopt the orphaned data points and migrate onto them,
// reforming the original shape at a lower sampling density.
//
// The layer combines four epidemic mechanisms, executed after every round
// of the underlying topology-construction protocol (Fig. 4):
//
//   - projection — a node's virtual position, fed to T-Man, is the medoid
//     of the data points it hosts (Sec. III-C);
//   - backup — every node replicates its guest points onto K random nodes,
//     where they are stored as inactive ghosts (Algorithm 1, Sec. III-D);
//   - recovery — when a ghost's origin is detected as failed, the ghost
//     points are reactivated into the local guest set (Algorithm 2);
//   - migration — neighbouring nodes repeatedly merge and re-split their
//     guest sets (Algorithm 3), a pair-wise decentralized k-means that
//     re-balances points across nodes and removes duplicates (Sec. III-F).
package core

import (
	"fmt"
	"sort"

	"polystyrene/internal/fd"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Topology is the view Polystyrene needs of the topology-construction
// layer below it: the ability to enumerate a node's k closest overlay
// neighbours. Both T-Man and Vicinity satisfy it — the paper presents
// Polystyrene as "an add-on layer that can be plugged into any
// decentralized topology construction algorithm" (Sec. II-C).
type Topology interface {
	Neighbors(id sim.NodeID, k int) []sim.NodeID
}

// Defaults from the paper's experimental setting (Sec. IV-A).
const (
	// DefaultK is the replication factor (the paper evaluates 2, 4 and 8;
	// 4 is the middle setting used for the illustrative figures).
	DefaultK = 4
	// DefaultPsi is ψ, the size of the neighbour window the migration
	// partner is drawn from (Algorithm 3, line 1).
	DefaultPsi = 5
)

// BackupPlacement selects where a node places its K replicas.
type BackupPlacement int

const (
	// PlaceRandom spreads copies uniformly at random via the peer-sampling
	// layer — the paper's default, chosen to survive spatially correlated
	// failures (Sec. III-D).
	PlaceRandom BackupPlacement = iota + 1
	// PlaceNeighbors replicates to topologically close nodes instead. The
	// paper discusses this variant: faster percolation after localized
	// failures, but vulnerable to correlated regional crashes. Provided
	// for the ablation benches.
	PlaceNeighbors
)

// Config parameterises the Polystyrene layer. Space, Topology and Sampler are
// required. InitialPoint decides the data point a joining node starts
// with; when it returns seed=false the node joins empty-handed but with an
// initialised position (the paper's reinjection scenario, Sec. IV-A).
type Config struct {
	// Space is the metric data space.
	Space space.Space
	// Topology is the topology-construction layer below (T-Man, Vicinity, ...).
	Topology Topology
	// Sampler is the peer-sampling layer, used for random backup targets
	// and the random migration candidate.
	Sampler *rps.Protocol
	// Detector is the failure detector; nil means fd.Perfect.
	Detector fd.Detector
	// InitialPoint returns the original position of a joining node and
	// whether that position is a data point the node should host (seed).
	InitialPoint func(id sim.NodeID) (pos space.Point, seed bool)
	// K is the replication factor (copies per data point).
	K int
	// Psi is the migration candidate window ψ.
	Psi int
	// Split selects the migration split strategy; zero means SplitAdvanced.
	Split SplitKind
	// DiameterSampleCap bounds diameter search cost; see Splitter.
	DiameterSampleCap int
	// Placement selects backup placement; zero means PlaceRandom.
	Placement BackupPlacement
	// FullCopyBackup disables the incremental-delta optimisation of
	// Algorithm 1 (Sec. III-D) so each round re-sends full copies. Only
	// the charged message cost differs; provided for the ablation bench.
	FullCopyBackup bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Space == nil {
		return c, fmt.Errorf("core: Config.Space is required")
	}
	if c.Topology == nil {
		return c, fmt.Errorf("core: Config.Topology is required")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("core: Config.Sampler is required")
	}
	if c.InitialPoint == nil {
		return c, fmt.Errorf("core: Config.InitialPoint is required")
	}
	if c.Detector == nil {
		c.Detector = fd.Perfect{}
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Psi <= 0 {
		c.Psi = DefaultPsi
	}
	if c.Split == 0 {
		c.Split = SplitAdvanced
	}
	if c.Placement == 0 {
		c.Placement = PlaceRandom
	}
	return c, nil
}

// nodeState is the per-node state of Table I in the paper.
type nodeState struct {
	// guests are the data points this node currently hosts (primary
	// copies). Keys are unique within the slice.
	guests []space.Point
	// pos is the node's virtual position: the medoid of guests, or the
	// last known position when guests is empty.
	pos space.Point
	// ghosts maps an origin node to the inactive copies it pushed here.
	ghosts map[sim.NodeID][]space.Point
	// backups lists the nodes this node replicates its guests to.
	backups []sim.NodeID
	// pushed caches, per backup node, the key set of the guests most
	// recently pushed there, enabling incremental-delta cost accounting.
	pushed map[sim.NodeID]map[string]bool
}

// Protocol is the Polystyrene layer. It implements sim.Protocol and must
// be stacked above its Config.Topology layer in the engine.
type Protocol struct {
	cfg      Config
	splitter Splitter
	nodes    []*nodeState
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns a Polystyrene layer with the given configuration.
func New(cfg Config) (*Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Protocol{
		cfg: cfg,
		splitter: Splitter{
			Kind:              cfg.Split,
			Space:             cfg.Space,
			DiameterSampleCap: cfg.DiameterSampleCap,
		},
	}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "polystyrene" }

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	if p.splitter.Rng == nil {
		p.splitter.Rng = e.Rand().Split()
	}
	for len(p.nodes) <= int(id) {
		p.nodes = append(p.nodes, nil)
	}
	pos, seed := p.cfg.InitialPoint(id)
	st := &nodeState{
		pos:    pos.Clone(),
		ghosts: make(map[sim.NodeID][]space.Point),
		pushed: make(map[sim.NodeID]map[string]bool),
	}
	if seed {
		st.guests = []space.Point{pos.Clone()}
	}
	p.nodes[id] = st
}

// Step implements sim.Protocol: recovery, backup maintenance, migration
// and projection for one node (paper Fig. 4, steps 2-4; projection is
// step 1 of the *next* T-Man round).
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.recover(e, id)
	p.backup(e, id)
	p.migrate(e, id)
	p.project(id)
}

// --- Recovery (Algorithm 2) ---

// recover reactivates ghost points whose origin node has been detected as
// failed, merging them into the local guest set.
func (p *Protocol) recover(e *sim.Engine, id sim.NodeID) {
	st := p.nodes[id]
	// Collect failed origins first and process them in ID order: map
	// iteration order is randomised in Go, and the merge order influences
	// guest-slice order (hence medoid tie-breaks), which would make runs
	// non-reproducible.
	var failed []sim.NodeID
	for origin := range st.ghosts {
		if p.cfg.Detector.Failed(e, id, origin) {
			failed = append(failed, origin)
		}
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	for _, origin := range failed {
		st.guests = mergePoints(st.guests, st.ghosts[origin])
		delete(st.ghosts, origin)
	}
}

// --- Backup (Algorithm 1) ---

// backup prunes failed backup targets, tops the set back up to K random
// nodes, and pushes the current guest set to every target.
func (p *Protocol) backup(e *sim.Engine, id sim.NodeID) {
	st := p.nodes[id]

	// backups ← backups \ failed (line 1).
	kept := st.backups[:0]
	for _, b := range st.backups {
		if !p.cfg.Detector.Failed(e, id, b) {
			kept = append(kept, b)
		} else {
			delete(st.pushed, b)
		}
	}
	st.backups = kept

	// backups ← backups ∪ {(K − |backups|) random nodes} (line 2).
	if missing := p.cfg.K - len(st.backups); missing > 0 {
		st.backups = append(st.backups, p.pickBackupTargets(e, id, missing)...)
	}

	// Push guests to every backup (lines 3-4). The stored ghosts are a
	// full replacement; the *charged* traffic is the incremental delta
	// (Sec. III-D optimisation) unless FullCopyBackup is set.
	//
	// The guest set is fixed for the duration of the loop, so one shared
	// snapshot and one shared key set serve all K targets: ghost slices
	// and pushed-key maps are only ever read after this point (points are
	// immutable, guest replacements are wholesale), never mutated.
	if len(st.backups) == 0 {
		return
	}
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	snapshot := clonePoints(st.guests)
	if p.cfg.FullCopyBackup {
		for _, b := range st.backups {
			p.nodes[b].ghosts[id] = snapshot
			e.Charge(len(st.guests) * ptCost)
		}
		return
	}
	keys := make([]string, len(st.guests))
	now := make(map[string]bool, len(st.guests))
	for i, g := range st.guests {
		keys[i] = g.Key()
		now[keys[i]] = true
	}
	for _, b := range st.backups {
		p.nodes[b].ghosts[id] = snapshot

		prev := st.pushed[b]
		delta := 0
		for _, k := range keys {
			if !prev[k] {
				delta++ // point added since last push
			}
		}
		for k := range prev {
			if !now[k] {
				delta++ // point removed since last push (tombstone)
			}
		}
		st.pushed[b] = now
		e.Charge(delta * ptCost)
	}
}

// pickBackupTargets returns up to n fresh backup nodes according to the
// configured placement, excluding self and current targets.
func (p *Protocol) pickBackupTargets(e *sim.Engine, id sim.NodeID, n int) []sim.NodeID {
	st := p.nodes[id]
	exclude := make(map[sim.NodeID]bool, len(st.backups)+1)
	exclude[id] = true
	for _, b := range st.backups {
		exclude[b] = true
	}

	var candidates []sim.NodeID
	switch p.cfg.Placement {
	case PlaceNeighbors:
		candidates = p.cfg.Topology.Neighbors(id, n+len(st.backups)+1)
	default:
		candidates = p.cfg.Sampler.RandomPeers(e, id, n+len(st.backups)+1)
	}

	out := make([]sim.NodeID, 0, n)
	for _, c := range candidates {
		if len(out) == n {
			return out
		}
		if !exclude[c] && e.Alive(c) {
			exclude[c] = true
			out = append(out, c)
		}
	}
	// The sampling view may be too small right after a catastrophe; fall
	// back to uniform draws over the whole live system.
	for tries := 0; len(out) < n && tries < 20*n; tries++ {
		c := e.RandomLive()
		if c != sim.None && !exclude[c] {
			exclude[c] = true
			out = append(out, c)
		}
	}
	return out
}

// --- Migration (Algorithm 3) ---

// migrate performs the pair-wise pull-push exchange of guest points with a
// partner drawn from the ψ closest T-Man neighbours plus one random peer.
func (p *Protocol) migrate(e *sim.Engine, id sim.NodeID) {
	candidates := p.cfg.Topology.Neighbors(id, p.cfg.Psi)
	if r := p.cfg.Sampler.RandomPeer(e, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
		}
	}
	// Neighbours can be stale for one round after a crash event.
	live := candidates[:0]
	for _, c := range candidates {
		if e.Alive(c) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	q := live[e.Rand().Intn(len(live))]

	pst, qst := p.nodes[id], p.nodes[q]
	// all_points ← p.guests ∪ q.guests (line 4). The union removes
	// duplicate copies, which is how redundant points created by eager
	// re-replication after a failure get cleaned up (Sec. IV-B).
	all := mergePoints(clonePoints(pst.guests), qst.guests)

	toP, toQ := p.splitter.Split(all, pst.pos, qst.pos)
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	// Pull: q ships its guests to p; push: p ships q's new set back.
	e.Charge((len(qst.guests) + len(toQ)) * ptCost)

	pst.guests = toP
	qst.guests = toQ
	p.project(q) // q's position moves with its new guest set
}

// --- Projection (Sec. III-C) ---

// project recomputes the node's virtual position as the medoid of its
// guests. A node with no guests keeps its previous position, which is how
// freshly reinjected (empty) nodes remain addressable until migration
// hands them points.
func (p *Protocol) project(id sim.NodeID) {
	st := p.nodes[id]
	if len(st.guests) == 0 {
		return
	}
	st.pos = space.MedoidPoint(p.cfg.Space, st.guests)
}

// --- Accessors (used by the position func, metrics and tests) ---

// Position returns the node's current virtual position. It is valid for
// dead nodes too (their last position), which T-Man needs while purging.
func (p *Protocol) Position(id sim.NodeID) space.Point {
	return p.nodes[id].pos
}

// Guests returns a copy of the node's guest points.
func (p *Protocol) Guests(id sim.NodeID) []space.Point {
	return clonePoints(p.nodes[id].guests)
}

// NumGuests returns how many guest points the node hosts.
func (p *Protocol) NumGuests(id sim.NodeID) int { return len(p.nodes[id].guests) }

// NumGhosts returns how many ghost points the node stores.
func (p *Protocol) NumGhosts(id sim.NodeID) int {
	n := 0
	for _, pts := range p.nodes[id].ghosts {
		n += len(pts)
	}
	return n
}

// Backups returns a copy of the node's current backup targets.
func (p *Protocol) Backups(id sim.NodeID) []sim.NodeID {
	out := make([]sim.NodeID, len(p.nodes[id].backups))
	copy(out, p.nodes[id].backups)
	return out
}

// GhostOrigins returns the origins that have replicated state to id.
func (p *Protocol) GhostOrigins(id sim.NodeID) []sim.NodeID {
	st := p.nodes[id]
	out := make([]sim.NodeID, 0, len(st.ghosts))
	for origin := range st.ghosts {
		out = append(out, origin)
	}
	return out
}

// K returns the configured replication factor.
func (p *Protocol) K() int { return p.cfg.K }

// PositionFunc returns the function the topology-construction layer should
// use to resolve node positions, closing the projection loop of Fig. 3.
// The result is assignable to tman.PositionFunc and vicinity.PositionFunc.
func (p *Protocol) PositionFunc() func(id sim.NodeID) space.Point {
	return func(id sim.NodeID) space.Point { return p.Position(id) }
}

// --- point-set helpers ---

// clonePoints returns an independent copy of pts (points themselves are
// immutable and may be shared).
func clonePoints(pts []space.Point) []space.Point {
	out := make([]space.Point, len(pts))
	copy(out, pts)
	return out
}

// mergePoints returns base extended with every point of extra that is not
// already present (set union by point key). base may be mutated.
func mergePoints(base []space.Point, extra []space.Point) []space.Point {
	if len(extra) == 0 {
		return base
	}
	seen := make(map[string]bool, len(base)+len(extra))
	for _, b := range base {
		seen[b.Key()] = true
	}
	for _, x := range extra {
		k := x.Key()
		if !seen[k] {
			seen[k] = true
			base = append(base, x)
		}
	}
	return base
}

// Package core implements Polystyrene, the paper's contribution: a
// shape-preserving add-on layer for decentralized topology construction
// (Sec. III). It decouples nodes from the data points that define the
// target shape, so that when a whole region of the overlay crashes the
// survivors can adopt the orphaned data points and migrate onto them,
// reforming the original shape at a lower sampling density.
//
// The layer combines four epidemic mechanisms, executed after every round
// of the underlying topology-construction protocol (Fig. 4):
//
//   - projection — a node's virtual position, fed to T-Man, is the medoid
//     of the data points it hosts (Sec. III-C);
//   - backup — every node replicates its guest points onto K random nodes,
//     where they are stored as inactive ghosts (Algorithm 1, Sec. III-D);
//   - recovery — when a ghost's origin is detected as failed, the ghost
//     points are reactivated into the local guest set (Algorithm 2);
//   - migration — neighbouring nodes repeatedly merge and re-split their
//     guest sets (Algorithm 3), a pair-wise decentralized k-means that
//     re-balances points across nodes and removes duplicates (Sec. III-F).
//
// # Interned point identities
//
// Data points form a fixed, generator-produced universe (the shape is the
// point set, Sec. III-A), so every point is interned into a space.Interner
// exactly once — when a seed node first hosts it — and all point-set state
// carries dense space.PointID identities in lockstep with the points:
// guest sets, ghost sets and the per-backup pushed sets are (Point,
// PointID) pairs. Set operations on the hot path (the migration union, the
// incremental backup delta, ghost adoption) run on generation-stamped ID
// arrays and pooled scratch buffers instead of string-keyed maps, and the
// layer maintains an incremental guests⁻¹ holders index (PointID → holder
// nodes) that the evaluation metrics consume in O(holders) per point.
//
// Invariants (see space.Interner): only canonical points enter the layer —
// Config.InitialPoint must return canonical (e.g. torus-wrapped)
// coordinates — every hosted point is interned before use, and points are
// immutable once published. IDs are private to one Protocol's interner;
// share Config.Interner when the harness must resolve the same IDs.
package core

import (
	"fmt"
	"slices"

	"polystyrene/internal/fd"
	"polystyrene/internal/genset"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Topology is the view Polystyrene needs of the topology-construction
// layer below it: the ability to enumerate a node's k closest overlay
// neighbours. Both T-Man and Vicinity satisfy it — the paper presents
// Polystyrene as "an add-on layer that can be plugged into any
// decentralized topology construction algorithm" (Sec. II-C).
//
// The overlay is queried constantly — backup placement (Sec. III-D), the
// migration candidate window (Sec. III-F) and every per-round metric ask
// "who are node n's k closest peers" — so the contract is allocation-free
// in both of its forms:
//
//   - AppendNeighbors appends the up-to-k closest neighbours of id to dst,
//     ordered by increasing distance, and returns the extended slice. The
//     caller owns (and typically pools) the buffer; implementations run
//     their selection on internal scratch and must not retain dst.
//   - EachNeighbor visits the same sequence without materialising it,
//     calling yield in increasing distance order and stopping early when
//     yield returns false. Implementations may iterate over internal
//     scratch, so yield must not call back into the topology; reading
//     positions or liveness from other layers is fine.
//
// Both forms must agree exactly (same neighbours, same order) for a given
// overlay state, and implementations are expected to answer out-of-range
// ids and k <= 0 as empty queries. Concrete providers additionally keep a
// legacy Neighbors(id, k) convenience that allocates a fresh slice per
// call; it is deliberately not part of this interface.
type Topology interface {
	AppendNeighbors(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID
	EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool)
}

// Defaults from the paper's experimental setting (Sec. IV-A).
const (
	// DefaultK is the replication factor (the paper evaluates 2, 4 and 8;
	// 4 is the middle setting used for the illustrative figures).
	DefaultK = 4
	// DefaultPsi is ψ, the size of the neighbour window the migration
	// partner is drawn from (Algorithm 3, line 1).
	DefaultPsi = 5
)

// BackupPlacement selects where a node places its K replicas.
type BackupPlacement int

const (
	// PlaceRandom spreads copies uniformly at random via the peer-sampling
	// layer — the paper's default, chosen to survive spatially correlated
	// failures (Sec. III-D).
	PlaceRandom BackupPlacement = iota + 1
	// PlaceNeighbors replicates to topologically close nodes instead. The
	// paper discusses this variant: faster percolation after localized
	// failures, but vulnerable to correlated regional crashes. Provided
	// for the ablation benches.
	PlaceNeighbors
)

// Config parameterises the Polystyrene layer. Space, Topology and Sampler are
// required. InitialPoint decides the data point a joining node starts
// with; when it returns seed=false the node joins empty-handed but with an
// initialised position (the paper's reinjection scenario, Sec. IV-A).
type Config struct {
	// Space is the metric data space.
	Space space.Space
	// Topology is the topology-construction layer below (T-Man, Vicinity, ...).
	Topology Topology
	// Sampler is the peer-sampling layer, used for random backup targets
	// and the random migration candidate.
	Sampler *rps.Protocol
	// Detector is the failure detector; nil means fd.Perfect.
	Detector fd.Detector
	// InitialPoint returns the original position of a joining node and
	// whether that position is a data point the node should host (seed).
	// Returned points must be canonical (see the package doc): they are
	// interned as the node's identity in the data universe.
	InitialPoint func(id sim.NodeID) (pos space.Point, seed bool)
	// Interner maps canonical data points to dense PointIDs. Optional:
	// when nil the protocol creates a private interner. Supply a shared
	// one when the harness needs to resolve the layer's PointIDs too
	// (e.g. the indexed evaluation metrics).
	Interner *space.Interner
	// K is the replication factor (copies per data point).
	K int
	// Psi is the migration candidate window ψ.
	Psi int
	// Split selects the migration split strategy; zero means SplitAdvanced.
	Split SplitKind
	// DiameterSampleCap bounds diameter search cost; see Splitter.
	DiameterSampleCap int
	// Placement selects backup placement; zero means PlaceRandom.
	Placement BackupPlacement
	// FullCopyBackup disables the incremental-delta optimisation of
	// Algorithm 1 (Sec. III-D) so each round re-sends full copies. Only
	// the charged message cost differs; provided for the ablation bench.
	FullCopyBackup bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Space == nil {
		return c, fmt.Errorf("core: Config.Space is required")
	}
	if c.Topology == nil {
		return c, fmt.Errorf("core: Config.Topology is required")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("core: Config.Sampler is required")
	}
	if c.InitialPoint == nil {
		return c, fmt.Errorf("core: Config.InitialPoint is required")
	}
	if c.Detector == nil {
		c.Detector = fd.Perfect{}
	}
	if c.Interner == nil {
		c.Interner = space.NewInterner()
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Psi <= 0 {
		c.Psi = DefaultPsi
	}
	if c.Split == 0 {
		c.Split = SplitAdvanced
	}
	if c.Placement == 0 {
		c.Placement = PlaceRandom
	}
	return c, nil
}

// ghostSet is one origin's inactive replica: its guest set as of the last
// push, points and interned IDs in lockstep. Buffers are reused across
// pushes from the same origin.
type ghostSet struct {
	pts []space.Point
	ids []space.PointID
}

// backupRef is one replication target together with the ID set of the
// guests most recently pushed there, which prices the incremental delta of
// Algorithm 1 (Sec. III-D).
type backupRef struct {
	node   sim.NodeID
	pushed []space.PointID
}

// nodeState is the per-node state of Table I in the paper.
type nodeState struct {
	// guests are the data points this node currently hosts (primary
	// copies), unique within the slice; guestIDs carries their interned
	// identities in lockstep.
	guests   []space.Point
	guestIDs []space.PointID
	// pos is the node's virtual position: the medoid of guests, or the
	// last known position when guests is empty. posDirty records that the
	// guest set changed since pos was last projected, so the O(g²) medoid
	// scan only reruns on transitions (steady-state migrations that hand
	// every point back skip it).
	pos      space.Point
	posDirty bool
	// ghosts maps an origin node to the inactive copies it pushed here.
	ghosts map[sim.NodeID]*ghostSet
	// backups lists the nodes this node replicates its guests to.
	backups []backupRef
}

// Protocol is the Polystyrene layer. It implements sim.Protocol and must
// be stacked above its Config.Topology layer in the engine.
type Protocol struct {
	cfg      Config
	splitter Splitter
	nodes    []*nodeState

	// holders is the incremental guests⁻¹ index: holders.lists[pid] are
	// the nodes hosting point pid as a guest (possibly including crashed
	// nodes; readers filter by liveness — see HoldersOf).
	holders holderIndex

	// Pooled scratch (the engine is sequential, so per-instance reuse is
	// safe). pset/nset are generation-stamped membership sets over dense
	// PointIDs and NodeIDs respectively; mergedPts/IDs is the migration
	// union buffer; failedBuf backs recover's sorted origin list; nbrBuf
	// backs the AppendNeighbors queries of migration and backup placement.
	pset      genset.Set
	nset      genset.Set
	mergedPts []space.Point
	mergedIDs []space.PointID
	failedBuf []sim.NodeID
	nbrBuf    []sim.NodeID
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns a Polystyrene layer with the given configuration.
func New(cfg Config) (*Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Protocol{
		cfg: cfg,
		splitter: Splitter{
			Kind:              cfg.Split,
			Space:             cfg.Space,
			DiameterSampleCap: cfg.DiameterSampleCap,
		},
	}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "polystyrene" }

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	if p.splitter.Rng == nil {
		p.splitter.Rng = e.Rand().Split()
	}
	for len(p.nodes) <= int(id) {
		p.nodes = append(p.nodes, nil)
	}
	pos, seed := p.cfg.InitialPoint(id)
	st := &nodeState{
		pos:    pos.Clone(),
		ghosts: make(map[sim.NodeID]*ghostSet),
	}
	if seed {
		pt := pos.Clone()
		pid := p.cfg.Interner.Intern(pt)
		st.guests = []space.Point{pt}
		st.guestIDs = []space.PointID{pid}
		p.holders.add(e, pid, id)
	}
	p.nodes[id] = st
}

// Step implements sim.Protocol: recovery, backup maintenance, migration
// and projection for one node (paper Fig. 4, steps 2-4; projection is
// step 1 of the *next* T-Man round).
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.recover(e, id)
	p.backup(e, id)
	p.migrate(e, id)
	p.project(id)
}

// --- Recovery (Algorithm 2) ---

// recover reactivates ghost points whose origin node has been detected as
// failed, merging them into the local guest set.
func (p *Protocol) recover(e *sim.Engine, id sim.NodeID) {
	st := p.nodes[id]
	if len(st.ghosts) == 0 {
		return
	}
	// Collect failed origins first and process them in ID order: map
	// iteration order is randomised in Go, and the merge order influences
	// guest-slice order (hence medoid tie-breaks), which would make runs
	// non-reproducible.
	failed := p.failedBuf[:0]
	for origin := range st.ghosts {
		if p.cfg.Detector.Failed(e, id, origin) {
			failed = append(failed, origin)
		}
	}
	slices.Sort(failed)
	for _, origin := range failed {
		p.adoptGhosts(e, st, id, origin, st.ghosts[origin])
		delete(st.ghosts, origin)
	}
	p.failedBuf = failed
}

// adoptGhosts merges a failed origin's ghost set into id's guests,
// skipping points already hosted (set union by interned ID), and retires
// the dead origin's stale entries from the holders index.
func (p *Protocol) adoptGhosts(e *sim.Engine, st *nodeState, id, origin sim.NodeID, gs *ghostSet) {
	for _, pid := range gs.ids {
		p.holders.remove(pid, origin)
	}
	before := len(st.guestIDs)
	st.guests, st.guestIDs = p.unionInto(st.guests, st.guestIDs, gs.pts, gs.ids)
	for _, pid := range st.guestIDs[before:] {
		p.holders.add(e, pid, id)
	}
	if len(st.guestIDs) > before {
		st.posDirty = true
	}
}

// unionInto appends to (dstPts, dstIDs) every point of (srcPts, srcIDs)
// whose ID is not already present — the ID-keyed set union behind ghost
// adoption and the migration merge, equivalent to the string-keyed
// mergePoints oracle but touching only the pooled generation stamps.
// Existing dst order is preserved and novel points append in src order.
func (p *Protocol) unionInto(dstPts []space.Point, dstIDs []space.PointID, srcPts []space.Point, srcIDs []space.PointID) ([]space.Point, []space.PointID) {
	mark, gen := p.pset.Next(p.cfg.Interner.Len())
	for _, pid := range dstIDs {
		mark[pid] = gen
	}
	for i, pid := range srcIDs {
		if mark[pid] != gen {
			mark[pid] = gen
			dstPts = append(dstPts, srcPts[i])
			dstIDs = append(dstIDs, pid)
		}
	}
	return dstPts, dstIDs
}

// --- Backup (Algorithm 1) ---

// backup prunes failed backup targets, tops the set back up to K random
// nodes, and pushes the current guest set to every target.
func (p *Protocol) backup(e *sim.Engine, id sim.NodeID) {
	st := p.nodes[id]

	// backups ← backups \ failed (line 1).
	kept := st.backups[:0]
	for _, b := range st.backups {
		if !p.cfg.Detector.Failed(e, id, b.node) {
			kept = append(kept, b)
		}
	}
	st.backups = kept

	// backups ← backups ∪ {(K − |backups|) random nodes} (line 2).
	if missing := p.cfg.K - len(st.backups); missing > 0 {
		p.pickBackupTargets(e, id, missing)
	}

	// Push guests to every backup (lines 3-4). The stored ghosts are a
	// full replacement; the *charged* traffic is the incremental delta
	// (Sec. III-D optimisation) unless FullCopyBackup is set.
	if len(st.backups) == 0 {
		return
	}
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	if p.cfg.FullCopyBackup {
		for i := range st.backups {
			p.pushGhosts(id, st.backups[i].node, st)
			e.Charge(len(st.guests) * ptCost)
		}
		return
	}
	// One generation pass marks the current guest set; each target's delta
	// then prices against its own previously-pushed set, with no maps and
	// no key strings.
	mark, gen := p.pset.Next(p.cfg.Interner.Len())
	for _, pid := range st.guestIDs {
		mark[pid] = gen
	}
	for i := range st.backups {
		b := &st.backups[i]
		p.pushGhosts(id, b.node, st)
		delta := pushDelta(mark, gen, len(st.guestIDs), b.pushed)
		b.pushed = append(b.pushed[:0], st.guestIDs...)
		e.Charge(delta * ptCost)
	}
}

// pushDelta returns the incremental backup traffic of Algorithm 1
// (Sec. III-D): points added since the last push plus removal tombstones,
// i.e. |cur| + |prev| − 2·|cur ∩ prev|. The current guest set must already
// be stamped with gen in mark; prev is the target's previously-pushed ID
// set. It equals the string-keyed two-map count it replaced (see the
// oracle property test).
func pushDelta(mark []uint32, gen uint32, curLen int, prev []space.PointID) int {
	common := 0
	for _, pid := range prev {
		if mark[pid] == gen {
			common++
		}
	}
	return curLen + len(prev) - 2*common
}

// pushGhosts replaces the ghost copy of id's guests stored at target b,
// reusing b's existing buffers for this origin. Ghost points are slice
// headers onto immutable point data, so later guest-set mutations at the
// origin never disturb a stored ghost.
func (p *Protocol) pushGhosts(id, b sim.NodeID, st *nodeState) {
	tgt := p.nodes[b]
	gs := tgt.ghosts[id]
	if gs == nil {
		gs = &ghostSet{}
		tgt.ghosts[id] = gs
	}
	gs.pts = append(gs.pts[:0], st.guests...)
	gs.ids = append(gs.ids[:0], st.guestIDs...)
}

// pickBackupTargets appends up to n fresh backup nodes to id's target list
// according to the configured placement, excluding self and current
// targets via the pooled node-generation set.
func (p *Protocol) pickBackupTargets(e *sim.Engine, id sim.NodeID, n int) {
	st := p.nodes[id]
	exclude, gen := p.nset.Next(e.NumNodes())
	exclude[id] = gen
	for _, b := range st.backups {
		exclude[b.node] = gen
	}

	var candidates []sim.NodeID
	switch p.cfg.Placement {
	case PlaceNeighbors:
		candidates = p.cfg.Topology.AppendNeighbors(p.nbrBuf[:0], id, n+len(st.backups)+1)
		p.nbrBuf = candidates
	default:
		candidates = p.cfg.Sampler.RandomPeers(e, id, n+len(st.backups)+1)
	}

	added := 0
	for _, c := range candidates {
		if added == n {
			return
		}
		if exclude[c] != gen && e.Alive(c) {
			exclude[c] = gen
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
	// The sampling view may be too small right after a catastrophe; fall
	// back to uniform draws over the whole live system.
	for tries := 0; added < n && tries < 20*n; tries++ {
		c := e.RandomLive()
		if c != sim.None && exclude[c] != gen {
			exclude[c] = gen
			st.backups = append(st.backups, backupRef{node: c})
			added++
		}
	}
}

// --- Migration (Algorithm 3) ---

// migrate performs the pair-wise pull-push exchange of guest points with a
// partner drawn from the ψ closest T-Man neighbours plus one random peer.
// The candidate window lands in pooled scratch, so the Psi-scan performs
// no allocations.
func (p *Protocol) migrate(e *sim.Engine, id sim.NodeID) {
	candidates := p.cfg.Topology.AppendNeighbors(p.nbrBuf[:0], id, p.cfg.Psi)
	p.nbrBuf = candidates
	if r := p.cfg.Sampler.RandomPeer(e, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
			p.nbrBuf = candidates
		}
	}
	// Neighbours can be stale for one round after a crash event.
	live := candidates[:0]
	for _, c := range candidates {
		if e.Alive(c) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	q := live[e.Rand().Intn(len(live))]

	pst, qst := p.nodes[id], p.nodes[q]
	// all_points ← p.guests ∪ q.guests (line 4). The union removes
	// duplicate copies, which is how redundant points created by eager
	// re-replication after a failure get cleaned up (Sec. IV-B). It is an
	// ID-keyed union into pooled scratch — p's points first, then q's
	// novel ones, preserving the merge order the split tie-breaks see.
	mp := append(p.mergedPts[:0], pst.guests...)
	mi := append(p.mergedIDs[:0], pst.guestIDs...)
	mp, mi = p.unionInto(mp, mi, qst.guests, qst.guestIDs)
	p.mergedPts, p.mergedIDs = mp, mi

	toP, toQ, idsP, idsQ := p.splitter.Split(mp, mi, pst.pos, qst.pos)
	ptCost := sim.PointCost(p.cfg.Space.Dim())
	// Pull: q ships its guests to p; push: p ships q's new set back.
	e.Charge((len(qst.guests) + len(toQ)) * ptCost)

	p.setGuests(e, id, pst, toP, idsP)
	p.setGuests(e, q, qst, toQ, idsQ)
	p.project(q) // q's position moves with its new guest set
}

// setGuests replaces st's guest set with a split result (whose slices
// alias splitter scratch), maintaining the holders index and the
// projection dirty flag. An unchanged set — the steady-state common case,
// where migration hands every point back to its holder — costs a single
// ID-slice comparison and leaves the cached medoid valid.
func (p *Protocol) setGuests(e *sim.Engine, id sim.NodeID, st *nodeState, pts []space.Point, ids []space.PointID) {
	if slices.Equal(st.guestIDs, ids) {
		return
	}
	for _, pid := range st.guestIDs {
		p.holders.remove(pid, id)
	}
	for _, pid := range ids {
		p.holders.add(e, pid, id)
	}
	st.guests = append(st.guests[:0], pts...)
	st.guestIDs = append(st.guestIDs[:0], ids...)
	st.posDirty = true
}

// --- Projection (Sec. III-C) ---

// project recomputes the node's virtual position as the medoid of its
// guests, if the guest set changed since the last projection. A node with
// no guests keeps its previous position, which is how freshly reinjected
// (empty) nodes remain addressable until migration hands them points.
func (p *Protocol) project(id sim.NodeID) {
	st := p.nodes[id]
	if len(st.guests) == 0 || !st.posDirty {
		return
	}
	st.pos = space.MedoidPoint(p.cfg.Space, st.guests)
	st.posDirty = false
}

// --- Accessors (used by the position func, metrics and tests) ---

// Position returns the node's current virtual position. It is valid for
// dead nodes too (their last position), which T-Man needs while purging.
func (p *Protocol) Position(id sim.NodeID) space.Point {
	return p.nodes[id].pos
}

// Guests returns a copy of the node's guest points. Hot paths should use
// GuestsFunc or AppendGuests instead, which do not allocate.
func (p *Protocol) Guests(id sim.NodeID) []space.Point {
	return clonePoints(p.nodes[id].guests)
}

// GuestsFunc calls fn for every guest point of id, with its interned ID,
// without copying the set. fn must not mutate the point and must not call
// back into the protocol.
func (p *Protocol) GuestsFunc(id sim.NodeID, fn func(pt space.Point, pid space.PointID)) {
	st := p.nodes[id]
	for i, g := range st.guests {
		fn(g, st.guestIDs[i])
	}
}

// AppendGuests appends the node's guest points to dst and returns it —
// the allocation-free alternative to Guests for callers with a reusable
// buffer. The points themselves are shared and must not be mutated.
func (p *Protocol) AppendGuests(id sim.NodeID, dst []space.Point) []space.Point {
	return append(dst, p.nodes[id].guests...)
}

// NumGuests returns how many guest points the node hosts.
func (p *Protocol) NumGuests(id sim.NodeID) int { return len(p.nodes[id].guests) }

// NumGhosts returns how many ghost points the node stores.
func (p *Protocol) NumGhosts(id sim.NodeID) int {
	n := 0
	for _, gs := range p.nodes[id].ghosts {
		n += len(gs.pts)
	}
	return n
}

// Backups returns a copy of the node's current backup targets.
func (p *Protocol) Backups(id sim.NodeID) []sim.NodeID {
	refs := p.nodes[id].backups
	out := make([]sim.NodeID, len(refs))
	for i, b := range refs {
		out[i] = b.node
	}
	return out
}

// GhostOrigins returns the origins that have replicated state to id.
func (p *Protocol) GhostOrigins(id sim.NodeID) []sim.NodeID {
	st := p.nodes[id]
	out := make([]sim.NodeID, 0, len(st.ghosts))
	for origin := range st.ghosts {
		out = append(out, origin)
	}
	return out
}

// K returns the configured replication factor.
func (p *Protocol) K() int { return p.cfg.K }

// Interner returns the protocol's point interner: the authority on the
// PointIDs used by GuestsFunc and HoldersOf.
func (p *Protocol) Interner() *space.Interner { return p.cfg.Interner }

// HoldersOf returns the nodes currently hosting the interned point as a
// guest. The returned slice is the protocol's live index — callers must
// not retain or mutate it, and it may contain crashed nodes (a crash is
// not an observable transition; readers filter by engine liveness). It
// satisfies metrics.HolderIndex.
func (p *Protocol) HoldersOf(pid space.PointID) []sim.NodeID {
	return p.holders.of(pid)
}

// PositionFunc returns the function the topology-construction layer should
// use to resolve node positions, closing the projection loop of Fig. 3.
// The result is assignable to tman.PositionFunc and vicinity.PositionFunc.
func (p *Protocol) PositionFunc() func(id sim.NodeID) space.Point {
	return func(id sim.NodeID) space.Point { return p.Position(id) }
}

// --- holders index ---

// holderIndex is the incremental guests⁻¹ map: for each PointID, the nodes
// hosting that point as a guest. Lists are tiny (one holder in steady
// state, ~K+1 transiently after a recovery wave), so membership updates
// are linear scans and removal is swap-remove; list order is therefore
// arbitrary, which is fine for the order-independent (min / any-live)
// queries the metrics run.
type holderIndex struct {
	lists [][]sim.NodeID
}

// add appends n to pid's holder list, first compacting out entries whose
// nodes have crashed since they were indexed — a crash is not an
// observable transition for the maintainer, so dead entries are retired
// here. Only the lists of points that never gain a holder again (lost
// points) can retain dead entries indefinitely, which bounds the index by
// the universe size even under sustained churn.
func (h *holderIndex) add(e *sim.Engine, pid space.PointID, n sim.NodeID) {
	for len(h.lists) <= int(pid) {
		h.lists = append(h.lists, nil)
	}
	l := h.lists[pid]
	kept := l[:0]
	for _, v := range l {
		if e.Alive(v) {
			kept = append(kept, v)
		}
	}
	h.lists[pid] = append(kept, n)
}

func (h *holderIndex) remove(pid space.PointID, n sim.NodeID) {
	if int(pid) >= len(h.lists) {
		return
	}
	l := h.lists[pid]
	for i, v := range l {
		if v == n {
			l[i] = l[len(l)-1]
			h.lists[pid] = l[:len(l)-1]
			return
		}
	}
}

func (h *holderIndex) of(pid space.PointID) []sim.NodeID {
	if int(pid) >= len(h.lists) {
		return nil
	}
	return h.lists[pid]
}

// --- point-set helpers ---

// clonePoints returns an independent copy of pts (points themselves are
// immutable and may be shared).
func clonePoints(pts []space.Point) []space.Point {
	out := make([]space.Point, len(pts))
	copy(out, pts)
	return out
}

// mergePoints returns base extended with every point of extra that is not
// already present (set union by point key). base may be mutated.
//
// This is the string-keyed predecessor of the interned-ID unions above; it
// is retained as the reference oracle for the property tests and baseline
// benchmarks, and must stay semantically aligned with adoptGhosts/migrate.
func mergePoints(base []space.Point, extra []space.Point) []space.Point {
	if len(extra) == 0 {
		return base
	}
	seen := make(map[string]bool, len(base)+len(extra))
	for _, b := range base {
		seen[b.Key()] = true
	}
	for _, x := range extra {
		k := x.Key()
		if !seen[k] {
			seen[k] = true
			base = append(base, x)
		}
	}
	return base
}

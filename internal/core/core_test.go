package core

import (
	"testing"

	"polystyrene/internal/fd"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/tman"
)

// stack is a fully wired RPS + T-Man + Polystyrene network over a torus
// grid, the unit-test-scale analogue of the paper's experimental setup.
type stack struct {
	engine  *sim.Engine
	sampler *rps.Protocol
	tman    *tman.Protocol
	poly    *Protocol
	points  []space.Point
	space   space.Torus
	w, h    int
}

type stackOpts struct {
	seed    uint64
	w, h    int
	cfg     Config // Space/TMan/Sampler/InitialPoint filled in by newStack
	tmanCfg tman.Config
}

func newStack(t testing.TB, o stackOpts) *stack {
	t.Helper()
	if o.w == 0 {
		o.w, o.h = 16, 8
	}
	st := &stack{
		points:  space.TorusGrid(o.w, o.h, 1),
		space:   space.TorusForGrid(o.w, o.h, 1),
		sampler: rps.New(rps.Config{}),
		w:       o.w, h: o.h,
	}
	var poly *Protocol
	o.tmanCfg.Space = st.space
	o.tmanCfg.Sampler = st.sampler
	o.tmanCfg.Position = func(id sim.NodeID) space.Point { return poly.Position(id) }
	tm, err := tman.New(o.tmanCfg)
	if err != nil {
		t.Fatal(err)
	}
	st.tman = tm

	o.cfg.Space = st.space
	o.cfg.Topology = tm
	o.cfg.Sampler = st.sampler
	if o.cfg.InitialPoint == nil {
		o.cfg.InitialPoint = func(id sim.NodeID) (space.Point, bool) {
			if int(id) < len(st.points) {
				return st.points[id], true
			}
			// Late joiners beyond the grid arrive empty-handed on a
			// parallel offset grid (the reinjection scenario).
			idx := int(id) - len(st.points)
			base := st.points[idx%len(st.points)]
			return st.space.Wrap(space.Point{base[0] + 0.5, base[1] + 0.5}), false
		}
	}
	poly, err = New(o.cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.poly = poly
	st.engine = sim.New(o.seed, st.sampler, tm, poly)
	st.engine.AddNodes(o.w * o.h)
	return st
}

// uniqueActivePoints returns the set of distinct guest point keys over all
// live nodes, iterated zero-copy through GuestsFunc.
func (st *stack) uniqueActivePoints() map[string]bool {
	out := map[string]bool{}
	for _, id := range st.engine.LiveIDs() {
		st.poly.GuestsFunc(id, func(g space.Point, _ space.PointID) {
			out[g.Key()] = true
		})
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestDefaults(t *testing.T) {
	st := newStack(t, stackOpts{seed: 1})
	if st.poly.cfg.K != DefaultK || st.poly.cfg.Psi != DefaultPsi {
		t.Fatalf("defaults not applied: %+v", st.poly.cfg)
	}
	if st.poly.cfg.Split != SplitAdvanced {
		t.Fatal("default split is not advanced")
	}
	if st.poly.cfg.Placement != PlaceRandom {
		t.Fatal("default placement is not random")
	}
	if st.poly.K() != DefaultK {
		t.Fatal("K() accessor mismatch")
	}
}

func TestInitialState(t *testing.T) {
	st := newStack(t, stackOpts{seed: 2})
	for _, id := range st.engine.LiveIDs() {
		if n := st.poly.NumGuests(id); n != 1 {
			t.Fatalf("node %d starts with %d guests, want 1", id, n)
		}
		if !st.poly.Position(id).Equal(st.points[id]) {
			t.Fatalf("node %d pos %v, want %v", id, st.poly.Position(id), st.points[id])
		}
		if st.poly.NumGhosts(id) != 0 {
			t.Fatalf("node %d has ghosts before any round", id)
		}
		if len(st.poly.Backups(id)) != 0 {
			t.Fatalf("node %d has backups before any round", id)
		}
	}
}

func TestBackupInvariants(t *testing.T) {
	st := newStack(t, stackOpts{seed: 3, cfg: Config{K: 3}})
	st.engine.RunRounds(5)
	for _, id := range st.engine.LiveIDs() {
		backups := st.poly.Backups(id)
		if len(backups) != 3 {
			t.Fatalf("node %d has %d backups, want 3", id, len(backups))
		}
		seen := map[sim.NodeID]bool{}
		for _, b := range backups {
			if b == id {
				t.Fatalf("node %d backs up to itself", id)
			}
			if seen[b] {
				t.Fatalf("node %d has duplicate backup %d", id, b)
			}
			if !st.engine.Alive(b) {
				t.Fatalf("node %d has dead backup %d", id, b)
			}
			seen[b] = true
			// The backup must hold our ghosts.
			found := false
			for _, origin := range st.poly.GhostOrigins(b) {
				if origin == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("backup %d holds no ghosts from %d", b, id)
			}
		}
	}
}

func TestGhostCountMatchesReplication(t *testing.T) {
	// Once stabilised without failures, the system holds |P|*(K+1) copies:
	// every point once as a guest and K times as a ghost (Sec. IV-B).
	st := newStack(t, stackOpts{seed: 4, cfg: Config{K: 2}})
	st.engine.RunRounds(10)
	guests, ghosts := 0, 0
	for _, id := range st.engine.LiveIDs() {
		guests += st.poly.NumGuests(id)
		ghosts += st.poly.NumGhosts(id)
	}
	n := st.w * st.h
	if guests != n {
		t.Fatalf("total guests %d, want %d", guests, n)
	}
	if ghosts != 2*n {
		t.Fatalf("total ghosts %d, want %d", ghosts, 2*n)
	}
}

func TestNoFailureConservation(t *testing.T) {
	// Without failures, migration must neither lose nor duplicate points.
	st := newStack(t, stackOpts{seed: 5})
	st.engine.RunRounds(15)
	unique := st.uniqueActivePoints()
	if len(unique) != st.w*st.h {
		t.Fatalf("unique active points %d, want %d", len(unique), st.w*st.h)
	}
	total := 0
	for _, id := range st.engine.LiveIDs() {
		total += st.poly.NumGuests(id)
	}
	if total != st.w*st.h {
		t.Fatalf("total guests %d, want %d (duplicates present)", total, st.w*st.h)
	}
}

func TestSingleCrashRecovery(t *testing.T) {
	st := newStack(t, stackOpts{seed: 6, cfg: Config{K: 4}})
	st.engine.RunRounds(5)
	victim := sim.NodeID(10)
	victimPoint := st.points[victim]
	st.engine.Kill(victim)
	st.engine.RunRounds(3)
	// The victim's data point must have been recovered by a ghost holder
	// and be active somewhere.
	if !st.uniqueActivePoints()[victimPoint.Key()] {
		t.Fatal("victim's data point was lost despite K=4 replication")
	}
	// Nobody should keep the victim as a backup target.
	for _, id := range st.engine.LiveIDs() {
		for _, b := range st.poly.Backups(id) {
			if b == victim {
				t.Fatalf("node %d still backs up to dead node", id)
			}
		}
	}
}

func TestDuplicatesFromRecoveryAreCleaned(t *testing.T) {
	// Killing a node reactivates its point at K places at once; migration
	// must deduplicate so the steady-state count returns to one guest copy
	// per point.
	st := newStack(t, stackOpts{seed: 7, cfg: Config{K: 4}})
	st.engine.RunRounds(5)
	st.engine.Kill(20)
	st.engine.RunRounds(20)
	total := 0
	for _, id := range st.engine.LiveIDs() {
		total += st.poly.NumGuests(id)
	}
	unique := len(st.uniqueActivePoints())
	if total != unique {
		t.Fatalf("guests %d vs unique %d: duplicates not cleaned after 20 rounds", total, unique)
	}
}

func TestCatastrophicFailureShapeRecovery(t *testing.T) {
	// The headline behaviour at unit-test scale: crash half the torus and
	// check that (a) nearly all data points survive, (b) survivors migrate
	// so that the right half of the shape is populated again, and (c) the
	// average load doubles.
	st := newStack(t, stackOpts{seed: 8, cfg: Config{K: 4}})
	st.engine.RunRounds(10)
	for i, p := range st.points {
		if space.RightHalf(p, float64(st.w)) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	st.engine.RunRounds(25)

	n := st.w * st.h
	unique := len(st.uniqueActivePoints())
	// With K=4 and pf=0.5 expected survival is 1-0.5^5 ≈ 96.9%.
	if unique < n*90/100 {
		t.Fatalf("only %d of %d points survived (expect ~96.9%%)", unique, n)
	}
	// Some survivors must now sit (project) in the right half.
	right := 0
	for _, id := range st.engine.LiveIDs() {
		if space.RightHalf(st.poly.Position(id), float64(st.w)) {
			right++
		}
	}
	if right < st.engine.NumLive()/4 {
		t.Fatalf("only %d of %d survivors migrated into the crashed half", right, st.engine.NumLive())
	}
	// Average guests per node approaches points/live ≈ 2.
	total := 0
	for _, id := range st.engine.LiveIDs() {
		total += st.poly.NumGuests(id)
	}
	avg := float64(total) / float64(st.engine.NumLive())
	if avg < 1.5 || avg > 2.5 {
		t.Fatalf("average guests per node = %v, want ~2", avg)
	}
}

func TestReinjectedNodesAcquirePoints(t *testing.T) {
	// Follows the paper's phase structure: reinjection happens after the
	// catastrophe, when survivors hold ~2 points each and migration can
	// hand the surplus to the empty newcomers. (With exactly one point per
	// node and no failure, a pairwise split correctly never moves a point
	// away from the node sitting on it.)
	st := newStack(t, stackOpts{seed: 9, cfg: Config{K: 4}})
	st.engine.RunRounds(10)
	for i, p := range st.points {
		if space.RightHalf(p, float64(st.w)) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	st.engine.RunRounds(15)
	uniqueBefore := len(st.uniqueActivePoints())

	newcomers := st.engine.AddNodes(st.w * st.h / 2)
	for _, id := range newcomers {
		if st.poly.NumGuests(id) != 0 {
			t.Fatalf("reinjected node %d started with guests", id)
		}
		if st.poly.Position(id) == nil {
			t.Fatalf("reinjected node %d has no position", id)
		}
	}
	st.engine.RunRounds(30)
	withPoints := 0
	for _, id := range newcomers {
		if st.poly.NumGuests(id) > 0 {
			withPoints++
		}
	}
	if withPoints < len(newcomers)/2 {
		t.Fatalf("only %d of %d reinjected nodes acquired data points", withPoints, len(newcomers))
	}
	// Conservation still holds: reinjection loses nothing.
	if unique := len(st.uniqueActivePoints()); unique < uniqueBefore {
		t.Fatalf("unique points fell from %d to %d after reinjection", uniqueBefore, unique)
	}
}

func TestEmptyNodeKeepsPosition(t *testing.T) {
	st := newStack(t, stackOpts{seed: 10})
	id := st.engine.AddNodes(1)[0]
	want := st.poly.Position(id).Clone()
	// project on an empty node must not clear or nil the position.
	st.poly.project(id)
	if got := st.poly.Position(id); !got.Equal(want) {
		t.Fatalf("empty node position changed: %v -> %v", want, got)
	}
}

func TestPositionIsMedoidOfGuests(t *testing.T) {
	st := newStack(t, stackOpts{seed: 11})
	st.engine.RunRounds(8)
	for _, id := range st.engine.LiveIDs() {
		guests := st.poly.Guests(id)
		if len(guests) == 0 {
			continue
		}
		want := space.MedoidPoint(st.space, guests)
		if !st.poly.Position(id).Equal(want) {
			t.Fatalf("node %d pos %v is not the medoid %v of its guests", id, st.poly.Position(id), want)
		}
	}
}

func TestIncrementalBackupCheaperThanFullCopy(t *testing.T) {
	run := func(full bool) int {
		st := newStack(t, stackOpts{seed: 12, cfg: Config{K: 4, FullCopyBackup: full}})
		st.engine.RunRounds(15)
		return st.engine.Meter().RoundCost("polystyrene", 14)
	}
	fullCost := run(true)
	deltaCost := run(false)
	if deltaCost >= fullCost {
		t.Fatalf("incremental backup cost %d not below full-copy cost %d", deltaCost, fullCost)
	}
}

func TestLossyFailureDetectorStillRecovers(t *testing.T) {
	st := newStack(t, stackOpts{seed: 13, cfg: Config{
		K: 4,
	}})
	st.poly.cfg.Detector = fd.NewProbabilistic(0.3, st.engine.Rand().Split())
	st.engine.RunRounds(5)
	victim := sim.NodeID(5)
	key := st.points[victim].Key()
	st.engine.Kill(victim)
	st.engine.RunRounds(15)
	if !st.uniqueActivePoints()[key] {
		t.Fatal("point lost under a lossy failure detector")
	}
}

func TestDelayedDetectorDelaysRecovery(t *testing.T) {
	st := newStack(t, stackOpts{seed: 14, cfg: Config{K: 4}})
	st.poly.cfg.Detector = fd.NewDelayed(5)
	st.engine.RunRounds(5)
	victim := sim.NodeID(8)
	key := st.points[victim].Key()
	st.engine.Kill(victim)
	st.engine.RunRounds(2)
	if st.uniqueActivePoints()[key] {
		t.Fatal("point recovered before the detector could have reported the crash")
	}
	st.engine.RunRounds(10)
	if !st.uniqueActivePoints()[key] {
		t.Fatal("point never recovered after detection delay elapsed")
	}
}

func TestNeighborBackupPlacement(t *testing.T) {
	st := newStack(t, stackOpts{seed: 15, cfg: Config{K: 3, Placement: PlaceNeighbors}})
	st.engine.RunRounds(10)
	// Backups must be drawn from nearby nodes: mean backup distance under
	// neighbour placement should be far below the random-placement mean
	// (which is ~ the mean pairwise torus distance).
	sum, count := 0.0, 0
	for _, id := range st.engine.LiveIDs() {
		for _, b := range st.poly.Backups(id) {
			sum += st.space.Distance(st.poly.Position(id), st.poly.Position(b))
			count++
		}
	}
	if count == 0 {
		t.Fatal("no backups placed")
	}
	if mean := sum / float64(count); mean > 3.0 {
		t.Fatalf("neighbour placement mean backup distance %v, want local (<3)", mean)
	}
}

func TestGuestIterationAPIs(t *testing.T) {
	// Guests (cloning), GuestsFunc (zero-copy callback) and AppendGuests
	// (append-into) must present the same sequence, with GuestsFunc's IDs
	// in lockstep through the interner.
	st := newStack(t, stackOpts{seed: 17, cfg: Config{K: 3}})
	st.engine.RunRounds(5)
	st.engine.Kill(7) // trigger recovery so some nodes host several points
	st.engine.RunRounds(3)
	in := st.poly.Interner()
	var buf []space.Point
	for _, id := range st.engine.LiveIDs() {
		want := st.poly.Guests(id)
		i := 0
		st.poly.GuestsFunc(id, func(g space.Point, pid space.PointID) {
			if i >= len(want) || !g.Equal(want[i]) {
				t.Fatalf("node %d: GuestsFunc[%d] = %v diverges from Guests %v", id, i, g, want)
			}
			if !in.PointOf(pid).Equal(g) {
				t.Fatalf("node %d: GuestsFunc ID %d does not resolve to %v", id, pid, g)
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("node %d: GuestsFunc yielded %d points, Guests %d", id, i, len(want))
		}
		buf = st.poly.AppendGuests(id, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("node %d: AppendGuests %d points, Guests %d", id, len(buf), len(want))
		}
		for j := range buf {
			if !buf[j].Equal(want[j]) {
				t.Fatalf("node %d: AppendGuests[%d] = %v, want %v", id, j, buf[j], want[j])
			}
		}
		if st.poly.NumGuests(id) != len(want) {
			t.Fatalf("node %d: NumGuests %d, want %d", id, st.poly.NumGuests(id), len(want))
		}
	}
}

func TestMergePoints(t *testing.T) {
	a := []space.Point{{1, 1}, {2, 2}}
	b := []space.Point{{2, 2}, {3, 3}}
	got := mergePoints(clonePoints(a), b)
	if len(got) != 3 {
		t.Fatalf("mergePoints length %d, want 3", len(got))
	}
	if got := mergePoints(nil, nil); len(got) != 0 {
		t.Fatalf("mergePoints(nil,nil) = %v", got)
	}
	if got := mergePoints(clonePoints(a), nil); len(got) != 2 {
		t.Fatalf("mergePoints(a,nil) = %v", got)
	}
}

func TestBackupsRestoredAfterBackupCrash(t *testing.T) {
	st := newStack(t, stackOpts{seed: 16, cfg: Config{K: 3}})
	st.engine.RunRounds(5)
	node := sim.NodeID(0)
	victims := st.poly.Backups(node)
	st.engine.KillAll(victims)
	st.engine.RunRounds(2)
	backups := st.poly.Backups(node)
	if len(backups) != 3 {
		t.Fatalf("backups not replenished: %d, want 3", len(backups))
	}
	for _, b := range backups {
		if !st.engine.Alive(b) {
			t.Fatalf("replenished backup %d is dead", b)
		}
	}
}

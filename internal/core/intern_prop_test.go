package core

// Property tests pinning the interned-ID point-set operations to their
// string-Key() predecessors: the ID-keyed union (unionInto), the
// generation-stamped backup delta (pushDelta) and the incremental holders
// index must agree with map-of-Key oracles on random point multisets and
// under randomised churn. Together with the byte-identical golden
// trajectories these are the licence for the representation swap.

import (
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// oracleProtocol builds a bare Protocol wired to an interner, enough to
// drive the pooled scratch helpers without a full stack.
func oracleProtocol(in *space.Interner) *Protocol {
	p := &Protocol{cfg: Config{Interner: in}}
	p.ws = []*scratch{p.newScratch()}
	return p
}

// randomSubset draws a random (unique, shuffled) subset of the universe,
// as points and lockstep IDs.
func randomSubset(rng *xrand.Rand, universe []space.Point, ids []space.PointID) ([]space.Point, []space.PointID) {
	idx := rng.Sample(len(universe), rng.Intn(len(universe)+1))
	pts := make([]space.Point, len(idx))
	pids := make([]space.PointID, len(idx))
	for i, j := range idx {
		pts[i] = universe[j]
		pids[i] = ids[j]
	}
	return pts, pids
}

func TestUnionIntoMatchesStringKeyOracle(t *testing.T) {
	rng := xrand.New(1234)
	in := space.NewInterner()
	universe := space.TorusGrid(9, 7, 1)
	ids := in.InternAll(universe)
	p := oracleProtocol(in)

	for trial := 0; trial < 300; trial++ {
		aPts, aIDs := randomSubset(rng, universe, ids)
		bPts, bIDs := randomSubset(rng, universe, ids)

		wantPts := mergePoints(clonePoints(aPts), bPts)
		gotPts, gotIDs := p.unionInto(p.ws[0], clonePoints(aPts), append([]space.PointID{}, aIDs...), bPts, bIDs)

		if len(gotPts) != len(wantPts) || len(gotIDs) != len(wantPts) {
			t.Fatalf("trial %d: union size %d/%d, oracle %d", trial, len(gotPts), len(gotIDs), len(wantPts))
		}
		for i := range wantPts {
			if !gotPts[i].Equal(wantPts[i]) {
				t.Fatalf("trial %d: union[%d] = %v, oracle %v (order must match)", trial, i, gotPts[i], wantPts[i])
			}
			if !in.PointOf(gotIDs[i]).Equal(gotPts[i]) {
				t.Fatalf("trial %d: union[%d] ID %d out of lockstep", trial, i, gotIDs[i])
			}
		}
	}
}

func TestPushDeltaMatchesStringKeyOracle(t *testing.T) {
	rng := xrand.New(5678)
	in := space.NewInterner()
	universe := space.TorusGrid(8, 8, 1)
	ids := in.InternAll(universe)
	p := oracleProtocol(in)

	for trial := 0; trial < 300; trial++ {
		curPts, curIDs := randomSubset(rng, universe, ids)
		prevPts, prevIDs := randomSubset(rng, universe, ids)

		// The old string-keyed count: additions then removal tombstones.
		prev := map[string]bool{}
		for _, g := range prevPts {
			prev[g.Key()] = true
		}
		now := map[string]bool{}
		want := 0
		for _, g := range curPts {
			k := g.Key()
			now[k] = true
			if !prev[k] {
				want++
			}
		}
		for k := range prev {
			if !now[k] {
				want++
			}
		}

		mark, gen := p.ws[0].pset.Next(in.Len())
		for _, pid := range curIDs {
			mark[pid] = gen
		}
		if got := pushDelta(mark, gen, len(curIDs), prevIDs); got != want {
			t.Fatalf("trial %d: delta %d, oracle %d (|cur|=%d |prev|=%d)",
				trial, got, want, len(curIDs), len(prevIDs))
		}
	}
}

// oracleHolders rebuilds guests⁻¹ the old way: scan every live node's
// guest set into a map keyed by Point.Key().
func oracleHolders(st *stack) map[string][]sim.NodeID {
	out := map[string][]sim.NodeID{}
	for _, id := range st.engine.LiveIDs() {
		for _, g := range st.poly.Guests(id) {
			out[g.Key()] = append(out[g.Key()], id)
		}
	}
	return out
}

func TestHoldersIndexMatchesFullScanUnderChurn(t *testing.T) {
	// Drive the full stack through convergence, a catastrophe, random
	// churn and reinjection; after every round the live-filtered holders
	// index must equal the rebuilt guests⁻¹ map, and guest state must stay
	// in lockstep with its IDs.
	st := newStack(t, stackOpts{seed: 321, w: 12, h: 6, cfg: Config{K: 3}})
	rng := xrand.New(999)
	in := st.poly.Interner()

	check := func(round int) {
		t.Helper()
		oracle := oracleHolders(st)
		seen := 0
		for pid := 0; pid < in.Len(); pid++ {
			pt := in.PointOf(space.PointID(pid))
			var live []sim.NodeID
			for _, id := range st.poly.HoldersOf(space.PointID(pid)) {
				if st.engine.Alive(id) {
					live = append(live, id)
				}
			}
			want := oracle[pt.Key()]
			if len(live) != len(want) {
				t.Fatalf("round %d: point %v holders %v, oracle %v", round, pt, live, want)
			}
			wantSet := map[sim.NodeID]bool{}
			for _, id := range want {
				wantSet[id] = true
			}
			for _, id := range live {
				if !wantSet[id] {
					t.Fatalf("round %d: point %v has spurious holder %d (oracle %v)", round, pt, id, want)
				}
			}
			seen += len(live)
		}
		// Every oracle entry was covered (sizes match per point and the
		// totals agree).
		total := 0
		for _, hs := range oracle {
			total += len(hs)
		}
		if seen != total {
			t.Fatalf("round %d: index covers %d holdings, oracle %d", round, seen, total)
		}
		// Lockstep invariant: guests and guestIDs resolve to each other.
		for _, id := range st.engine.LiveIDs() {
			ns := st.poly.nodes[id]
			if len(ns.guests) != len(ns.guestIDs) {
				t.Fatalf("round %d: node %d guests/IDs out of lockstep", round, id)
			}
			for i, g := range ns.guests {
				if !in.PointOf(ns.guestIDs[i]).Equal(g) {
					t.Fatalf("round %d: node %d guest %d ID mismatch", round, id, i)
				}
			}
		}
	}

	st.engine.RunRounds(5)
	check(-1)
	for i, pt := range st.points {
		if space.RightHalf(pt, 12) {
			st.engine.Kill(sim.NodeID(i))
		}
	}
	for round := 0; round < 25; round++ {
		if round%4 == 0 {
			st.engine.AddNodes(1)
		}
		if rng.Bool(0.3) && st.engine.NumLive() > 20 {
			live := st.engine.LiveIDs()
			st.engine.Kill(live[rng.Intn(len(live))])
		}
		st.engine.RunRounds(1)
		check(round)
	}
}

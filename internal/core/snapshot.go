package core

import (
	"fmt"
	"sort"

	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

var _ sim.Snapshotter = (*Protocol)(nil)

// SnapshotState implements sim.Snapshotter for the Polystyrene layer. It
// owns three pieces of durable state beyond the per-node Table I records:
// the shared point interner (the layer is its authority — every PointID
// in the snapshot is relative to the table serialized here), the
// incremental holders index including its trim-window counters, and the
// splitter's private random stream (consumed by diameter sampling, so it
// is part of the trajectory). The failure detector travels in this
// section too: it is configuration from the engine's point of view, but
// stateful detectors (fd.Delayed) influence recovery and must resume
// exactly.
//
// Guests and ghosts are serialized as interned PointIDs only; their
// point slices are rebuilt from the restored interner. Node positions are
// serialized as raw coordinates because a reinjected node's position is a
// half-step offset that is deliberately not a data point.
func (p *Protocol) SnapshotState(w *snap.Writer) {
	// Interner table, in ID order.
	in := p.cfg.Interner
	w.Len(in.Len())
	for id := 0; id < in.Len(); id++ {
		writePoint(w, in.PointOf(space.PointID(id)))
	}

	// Splitter stream.
	if p.splitter.Rng != nil {
		w.Bool(true)
		for _, s := range p.splitter.Rng.State() {
			w.U64(s)
		}
	} else {
		w.Bool(false)
	}

	// Per-node state.
	w.Len(len(p.nodes))
	for _, st := range p.nodes {
		if st == nil {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.Len(len(st.guestIDs))
		for _, pid := range st.guestIDs {
			w.U32(uint32(pid))
		}
		writePoint(w, st.pos)
		w.Bool(st.posDirty)
		origins := make([]sim.NodeID, 0, len(st.ghosts))
		for o := range st.ghosts {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		w.Len(len(origins))
		for _, o := range origins {
			w.Int(int(o))
			gs := st.ghosts[o]
			w.Len(len(gs.ids))
			for _, pid := range gs.ids {
				w.U32(uint32(pid))
			}
		}
		w.Len(len(st.backups))
		for _, b := range st.backups {
			w.Int(int(b.node))
			w.Len(len(b.pushed))
			for _, pid := range b.pushed {
				w.U32(uint32(pid))
			}
		}
	}

	// Holders index with its trim high-water state. floor is config
	// (K+1) and is not serialized.
	w.Len(len(p.holders.lists))
	for _, l := range p.holders.lists {
		w.Len(len(l))
		for _, n := range l {
			w.Int(int(n))
		}
	}
	w.Int(p.holders.steps)
	w.Int(p.holders.hwMark)

	// Stateful detector, if any.
	if ds, ok := p.cfg.Detector.(sim.Snapshotter); ok {
		w.Bool(true)
		var dw snap.Writer
		ds.SnapshotState(&dw)
		w.Section(dw.Bytes())
	} else {
		w.Bool(false)
	}
}

// RestoreState implements sim.Snapshotter.
func (p *Protocol) RestoreState(r *snap.Reader) error {
	// Interner: repopulate the shared table in the snapshot's ID order,
	// so every PointID that follows resolves against the restored table.
	in := p.cfg.Interner
	nPts := r.Len(8)
	pts := make([]space.Point, nPts)
	for i := range pts {
		pts[i] = readPoint(r)
	}
	if err := r.Err(); err != nil {
		return err
	}
	in.Reset()
	for i, pt := range pts {
		if id := in.Intern(pt); id != space.PointID(i) {
			return fmt.Errorf("core: snapshot interner table has duplicate point at ID %d", i)
		}
	}

	hasRng := r.Bool()
	if hasRng {
		var st [4]uint64
		for i := range st {
			st[i] = r.U64()
		}
		if p.splitter.Rng == nil {
			// The lazy Split in InitNode has not run in this engine (e.g.
			// a restore into a never-populated protocol); any placeholder
			// works, SetState overwrites it entirely.
			p.splitter.Rng = xrand.New(0)
		}
		p.splitter.Rng.SetState(st)
	} else {
		p.splitter.Rng = nil
	}

	nNodes := r.Len(1)
	nodes := make([]*nodeState, nNodes)
	for i := range nodes {
		if !r.Bool() {
			continue
		}
		st := &nodeState{ghosts: make(map[sim.NodeID]*ghostSet)}
		ng := r.Len(4)
		st.guestIDs = make([]space.PointID, ng)
		st.guests = make([]space.Point, ng)
		for j := 0; j < ng; j++ {
			pid := space.PointID(r.U32())
			if int(pid) >= in.Len() {
				return fmt.Errorf("core: snapshot guest PointID %d out of range", pid)
			}
			st.guestIDs[j] = pid
			st.guests[j] = in.PointOf(pid)
		}
		st.pos = readPoint(r)
		st.posDirty = r.Bool()
		nGhost := r.Len(2)
		for j := 0; j < nGhost; j++ {
			origin := sim.NodeID(r.Int())
			gn := r.Len(4)
			gs := &ghostSet{
				ids: make([]space.PointID, gn),
				pts: make([]space.Point, gn),
			}
			for k := 0; k < gn; k++ {
				pid := space.PointID(r.U32())
				if int(pid) >= in.Len() {
					return fmt.Errorf("core: snapshot ghost PointID %d out of range", pid)
				}
				gs.ids[k] = pid
				gs.pts[k] = in.PointOf(pid)
			}
			st.ghosts[origin] = gs
		}
		nBk := r.Len(2)
		st.backups = make([]backupRef, nBk)
		for j := 0; j < nBk; j++ {
			st.backups[j].node = sim.NodeID(r.Int())
			np := r.Len(4)
			st.backups[j].pushed = make([]space.PointID, np)
			for k := 0; k < np; k++ {
				st.backups[j].pushed[k] = space.PointID(r.U32())
			}
		}
		nodes[i] = st
	}

	nLists := r.Len(1)
	lists := make([][]sim.NodeID, nLists)
	for i := range lists {
		ln := r.Len(8)
		l := make([]sim.NodeID, ln)
		for j := range l {
			l[j] = sim.NodeID(r.Int())
		}
		lists[i] = l
	}
	steps := r.Int()
	hwMark := r.Int()

	hasDet := r.Bool()
	ds, statefulDet := p.cfg.Detector.(sim.Snapshotter)
	if hasDet != statefulDet {
		return fmt.Errorf("core: snapshot detector state presence mismatch (snapshot %v, config %T)", hasDet, p.cfg.Detector)
	}
	if hasDet {
		sub := r.Section()
		if err := r.Err(); err != nil {
			return err
		}
		if err := ds.RestoreState(sub); err != nil {
			return fmt.Errorf("core: restoring detector: %w", err)
		}
		if err := snap.CloseSection("detector", sub); err != nil {
			return err
		}
	}
	if err := r.Err(); err != nil {
		return err
	}

	p.nodes = nodes
	p.holders.lists = lists
	p.holders.steps = steps
	p.holders.hwMark = hwMark
	p.snapOn = false
	return nil
}

func writePoint(w *snap.Writer, p space.Point) {
	w.Len(len(p))
	for _, c := range p {
		w.F64(c)
	}
}

func readPoint(r *snap.Reader) space.Point {
	n := r.Len(8)
	p := make(space.Point, n)
	for i := range p {
		p[i] = r.F64()
	}
	return p
}

package core

import (
	"fmt"

	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// SplitKind selects the strategy used to distribute the merged guest sets
// of two interacting nodes during migration (paper Sec. III-F).
type SplitKind int

const (
	// SplitBasic allocates each data point to the closer of the two node
	// positions (Algorithm 4) — a step of distributed k-means. It can get
	// stuck in status-quo configurations (Fig. 5a).
	SplitBasic SplitKind = iota + 1
	// SplitPD partitions the merged set along one of its diameters
	// (heuristic PD of Algorithm 5) and assigns the two parts in the
	// (u→p, v→q) orientation, without the displacement heuristic.
	SplitPD
	// SplitMD partitions with the basic closest-position rule but then
	// allocates the two clusters so as to minimise the movement of the two
	// nodes (heuristic MD of Algorithm 5 on its own, as in Fig. 10b).
	SplitMD
	// SplitAdvanced combines both heuristics (Algorithm 5): partition
	// along a diameter (PD), then orient the allocation to minimise node
	// displacement (MD). This is what the headline results use.
	SplitAdvanced
)

// String implements fmt.Stringer.
func (k SplitKind) String() string {
	switch k {
	case SplitBasic:
		return "basic"
	case SplitPD:
		return "pd"
	case SplitMD:
		return "md"
	case SplitAdvanced:
		return "advanced"
	default:
		return fmt.Sprintf("SplitKind(%d)", int(k))
	}
}

// ParseSplitKind converts a CLI string into a SplitKind.
func ParseSplitKind(s string) (SplitKind, error) {
	switch s {
	case "basic":
		return SplitBasic, nil
	case "pd":
		return SplitPD, nil
	case "md":
		return SplitMD, nil
	case "advanced", "pd+md":
		return SplitAdvanced, nil
	default:
		return 0, fmt.Errorf("core: unknown split kind %q (want basic|pd|md|advanced)", s)
	}
}

// Splitter distributes a merged point set between two nodes at positions
// posP and posQ, returning the points each node should keep. The two
// returned slices always form a partition of the input: every input point
// appears in exactly one of them.
type Splitter struct {
	// Kind selects the strategy.
	Kind SplitKind
	// Space supplies the metric.
	Space space.Space
	// DiameterSampleCap bounds the number of candidate pairs examined
	// when approximating a diameter over large point sets (the paper
	// suggests sampling once a set exceeds ~30 points). Zero means the
	// default of 500 pairs; exact search is used whenever the set has no
	// more pairs than the cap.
	DiameterSampleCap int
	// Rng supplies randomness for diameter sampling. Required only when
	// point sets can exceed the exact-search threshold.
	Rng *xrand.Rand

	// Pooled partition buffers: the two clusters are assembled here, and
	// the slices returned by Split alias them.
	aPts, bPts []space.Point
	aIDs, bIDs []space.PointID
}

const defaultDiameterSampleCap = 500

// Split distributes points between the nodes at posP and posQ. ids carries
// the points' interned identities in lockstep and is partitioned alongside
// them; callers that do not track identities may pass nil, in which case
// the returned ID slices are empty.
//
// The returned slices alias scratch buffers owned by the Splitter: they
// are valid only until the next Split call, and callers copy whatever they
// keep. This keeps the migration hot path allocation-free.
func (sp *Splitter) Split(points []space.Point, ids []space.PointID, posP, posQ space.Point) (toP, toQ []space.Point, idsP, idsQ []space.PointID) {
	sp.aPts, sp.bPts = sp.aPts[:0], sp.bPts[:0]
	sp.aIDs, sp.bIDs = sp.aIDs[:0], sp.bIDs[:0]
	switch sp.Kind {
	case SplitPD:
		u, v, ok := sp.diameter(points)
		if !ok {
			sp.partition(points, ids, posP, posQ)
		} else {
			sp.partition(points, ids, u, v)
		}
		return sp.aPts, sp.bPts, sp.aIDs, sp.bIDs
	case SplitMD:
		sp.partition(points, ids, posP, posQ)
		return sp.orientByDisplacement(posP, posQ)
	case SplitAdvanced:
		u, v, ok := sp.diameter(points)
		if !ok {
			sp.partition(points, ids, posP, posQ)
			return sp.aPts, sp.bPts, sp.aIDs, sp.bIDs
		}
		sp.partition(points, ids, u, v)
		return sp.orientByDisplacement(posP, posQ)
	default: // SplitBasic and unset
		sp.partition(points, ids, posP, posQ)
		return sp.aPts, sp.bPts, sp.aIDs, sp.bIDs
	}
}

// diameter returns a farthest pair (exact for small sets, sampled for
// large ones). ok is false when fewer than two points exist.
func (sp *Splitter) diameter(points []space.Point) (u, v space.Point, ok bool) {
	if len(points) < 2 {
		return nil, nil, false
	}
	maxPairs := sp.DiameterSampleCap
	if maxPairs <= 0 {
		maxPairs = defaultDiameterSampleCap
	}
	var i, j int
	if sp.Rng != nil {
		i, j, _ = space.DiameterSampled(sp.Space, points, maxPairs, sp.Rng)
	} else {
		i, j, _ = space.Diameter(sp.Space, points)
	}
	if i < 0 {
		return nil, nil, false
	}
	return points[i], points[j], true
}

// partition implements the shared closest-pole rule of Algorithm 4
// (SPLIT_BASIC, poles = node positions) and heuristic PD (Algorithm 5
// lines 2-4, poles = a diameter): points strictly closer to poleA go into
// the a-buffers; ties and the rest into b. ids, when non-nil, follows in
// lockstep.
func (sp *Splitter) partition(points []space.Point, ids []space.PointID, poleA, poleB space.Point) {
	s := sp.Space
	for i, x := range points {
		if s.Distance(x, poleA) < s.Distance(x, poleB) {
			sp.aPts = append(sp.aPts, x)
			if ids != nil {
				sp.aIDs = append(sp.aIDs, ids[i])
			}
		} else {
			sp.bPts = append(sp.bPts, x)
			if ids != nil {
				sp.bIDs = append(sp.bIDs, ids[i])
			}
		}
	}
}

// orientByDisplacement implements heuristic MD (Algorithm 5, lines 5-13):
// allocate the two assembled clusters to p and q so the sum of
// medoid-to-position distances — how far each node would move — is
// minimal. Empty clusters contribute no displacement.
func (sp *Splitter) orientByDisplacement(posP, posQ space.Point) (toP, toQ []space.Point, idsP, idsQ []space.PointID) {
	ma := space.MedoidPoint(sp.Space, sp.aPts)
	mb := space.MedoidPoint(sp.Space, sp.bPts)
	dist := func(m, pos space.Point) float64 {
		if m == nil {
			return 0
		}
		return sp.Space.Distance(m, pos)
	}
	deltaAB := dist(ma, posP) + dist(mb, posQ)
	deltaBA := dist(mb, posP) + dist(ma, posQ)
	if deltaAB < deltaBA {
		return sp.aPts, sp.bPts, sp.aIDs, sp.bIDs
	}
	return sp.bPts, sp.aPts, sp.bIDs, sp.aIDs
}

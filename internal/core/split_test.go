package core

import (
	"sort"
	"strings"
	"testing"

	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// fig5 reconstructs the configuration of the paper's Fig. 5: two nodes p
// (pos = c) and q (pos = e) with guests {a,b,c} and {d,e,f}. SPLIT_BASIC
// leaves the sub-optimal partition untouched (status quo), while
// SPLIT_ADVANCED finds the better partition {b,c,e,f} / {a,d}. The
// coordinates are chosen so that (b,d) is the unique diameter, a is
// closest to d, and the basic rule keeps every point where it is.
type fig5Config struct {
	a, b, c, d, e, f space.Point
	posP, posQ       space.Point
	all              []space.Point
	space            space.Space
}

func newFig5() fig5Config {
	cfg := fig5Config{
		a:     space.Point{1.8, 4.2},
		b:     space.Point{-0.5, -1.5},
		c:     space.Point{0, 0},
		d:     space.Point{2.2, 4.6},
		e:     space.Point{4, 0},
		f:     space.Point{4.2, -0.8},
		space: space.NewEuclidean(2),
	}
	cfg.posP, cfg.posQ = cfg.c, cfg.e
	cfg.all = []space.Point{cfg.a, cfg.b, cfg.c, cfg.d, cfg.e, cfg.f}
	return cfg
}

// splitPts runs Split without identity tracking and copies the partitions
// out of the splitter's scratch, so tests can hold several results at once.
func splitPts(sp *Splitter, pts []space.Point, posP, posQ space.Point) (toP, toQ []space.Point) {
	a, b, _, _ := sp.Split(pts, nil, posP, posQ)
	return append([]space.Point{}, a...), append([]space.Point{}, b...)
}

func pointSet(pts []space.Point) string {
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

func sameSet(a, b []space.Point) bool { return pointSet(a) == pointSet(b) }

func TestFig5BasicStatusQuo(t *testing.T) {
	cfg := newFig5()
	sp := &Splitter{Kind: SplitBasic, Space: cfg.space}
	toP, toQ := splitPts(sp, cfg.all, cfg.posP, cfg.posQ)
	if !sameSet(toP, []space.Point{cfg.a, cfg.b, cfg.c}) {
		t.Fatalf("basic split toP = %v, want {a,b,c}", toP)
	}
	if !sameSet(toQ, []space.Point{cfg.d, cfg.e, cfg.f}) {
		t.Fatalf("basic split toQ = %v, want {d,e,f}", toQ)
	}
}

func TestFig5AdvancedImproves(t *testing.T) {
	cfg := newFig5()
	sp := &Splitter{Kind: SplitAdvanced, Space: cfg.space}
	toP, toQ := splitPts(sp, cfg.all, cfg.posP, cfg.posQ)
	if !sameSet(toP, []space.Point{cfg.b, cfg.c, cfg.e, cfg.f}) {
		t.Fatalf("advanced split toP = %v, want {b,c,e,f}", toP)
	}
	if !sameSet(toQ, []space.Point{cfg.a, cfg.d}) {
		t.Fatalf("advanced split toQ = %v, want {a,d}", toQ)
	}
	// The paper's objective: the advanced partition has lower total
	// within-cluster scatter than the basic one.
	basicScatter := space.Scatter(cfg.space, []space.Point{cfg.a, cfg.b, cfg.c}) +
		space.Scatter(cfg.space, []space.Point{cfg.d, cfg.e, cfg.f})
	advScatter := space.Scatter(cfg.space, toP) + space.Scatter(cfg.space, toQ)
	if advScatter >= basicScatter {
		t.Fatalf("advanced scatter %v not better than basic %v", advScatter, basicScatter)
	}
}

func TestFig5PDPartition(t *testing.T) {
	cfg := newFig5()
	sp := &Splitter{Kind: SplitPD, Space: cfg.space}
	toP, toQ := splitPts(sp, cfg.all, cfg.posP, cfg.posQ)
	clusterAD := []space.Point{cfg.a, cfg.d}
	clusterBCEF := []space.Point{cfg.b, cfg.c, cfg.e, cfg.f}
	ok := (sameSet(toP, clusterAD) && sameSet(toQ, clusterBCEF)) ||
		(sameSet(toP, clusterBCEF) && sameSet(toQ, clusterAD))
	if !ok {
		t.Fatalf("PD split = %v / %v, want clusters {a,d} and {b,c,e,f}", toP, toQ)
	}
}

func TestMDOrientationMinimisesDisplacement(t *testing.T) {
	// Two tight clusters; posP sits on cluster B, posQ on cluster A. MD
	// must give B to p and A to q even though basic assignment's natural
	// labelling is the same; flip positions to force a swap.
	s := space.NewEuclidean(1)
	clusterA := []space.Point{{0}, {0.1}, {0.2}}
	clusterB := []space.Point{{10}, {10.1}, {10.2}}
	all := append(append([]space.Point{}, clusterA...), clusterB...)
	sp := &Splitter{Kind: SplitAdvanced, Space: s}

	toP, toQ := splitPts(sp, all, space.Point{10}, space.Point{0})
	if !sameSet(toP, clusterB) || !sameSet(toQ, clusterA) {
		t.Fatalf("MD did not keep nodes near their clusters: toP=%v toQ=%v", toP, toQ)
	}
	toP, toQ = splitPts(sp, all, space.Point{0}, space.Point{10})
	if !sameSet(toP, clusterA) || !sameSet(toQ, clusterB) {
		t.Fatalf("MD mis-oriented: toP=%v toQ=%v", toP, toQ)
	}
}

func TestSplitMDAloneUsesBasicPartition(t *testing.T) {
	// With positions centred on the two clusters, MD-alone equals basic.
	s := space.NewEuclidean(1)
	all := []space.Point{{0}, {1}, {9}, {10}}
	md := &Splitter{Kind: SplitMD, Space: s}
	toP, toQ := splitPts(md, all, space.Point{0.5}, space.Point{9.5})
	if !sameSet(toP, []space.Point{{0}, {1}}) || !sameSet(toQ, []space.Point{{9}, {10}}) {
		t.Fatalf("MD split = %v / %v", toP, toQ)
	}
	// With swapped positions, MD swaps the allocation (basic would too
	// here, but MD must in particular not double-swap).
	toP, toQ = splitPts(md, all, space.Point{9.5}, space.Point{0.5})
	if !sameSet(toP, []space.Point{{9}, {10}}) || !sameSet(toQ, []space.Point{{0}, {1}}) {
		t.Fatalf("MD swapped split = %v / %v", toP, toQ)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	s := space.NewEuclidean(2)
	posP, posQ := space.Point{0, 0}, space.Point{1, 0}
	for _, kind := range []SplitKind{SplitBasic, SplitPD, SplitMD, SplitAdvanced} {
		sp := &Splitter{Kind: kind, Space: s}
		toP, toQ := splitPts(sp, nil, posP, posQ)
		if len(toP) != 0 || len(toQ) != 0 {
			t.Errorf("%v: empty input produced %v / %v", kind, toP, toQ)
		}
		single := []space.Point{{0.1, 0}}
		toP, toQ = splitPts(sp, single, posP, posQ)
		if len(toP)+len(toQ) != 1 {
			t.Errorf("%v: single point lost or duplicated: %v / %v", kind, toP, toQ)
		}
	}
}

func TestSplitIdenticalPoints(t *testing.T) {
	// All points identical: the diameter is degenerate (u == v); nothing
	// may be lost and the split must not panic.
	s := space.NewEuclidean(2)
	pts := []space.Point{{1, 1}, {1, 1}, {1, 1}}
	for _, kind := range []SplitKind{SplitBasic, SplitPD, SplitMD, SplitAdvanced} {
		sp := &Splitter{Kind: kind, Space: s}
		toP, toQ := splitPts(sp, pts, space.Point{0, 0}, space.Point{2, 2})
		if len(toP)+len(toQ) != 3 {
			t.Errorf("%v: identical points lost: %d+%d", kind, len(toP), len(toQ))
		}
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	// Property: for every strategy, the output is a partition of the input
	// (no point lost, none duplicated), on random torus point sets.
	tor := space.NewTorus(40, 40)
	rng := xrand.New(77)
	for _, kind := range []SplitKind{SplitBasic, SplitPD, SplitMD, SplitAdvanced} {
		sp := &Splitter{Kind: kind, Space: tor, Rng: rng.Split()}
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(40)
			pts := make([]space.Point, n)
			for i := range pts {
				pts[i] = space.Point{40 * rng.Float64(), 40 * rng.Float64()}
			}
			posP := space.Point{40 * rng.Float64(), 40 * rng.Float64()}
			posQ := space.Point{40 * rng.Float64(), 40 * rng.Float64()}
			toP, toQ := splitPts(sp, pts, posP, posQ)
			if len(toP)+len(toQ) != n {
				t.Fatalf("%v trial %d: %d points in, %d out", kind, trial, n, len(toP)+len(toQ))
			}
			counts := map[string]int{}
			for _, p := range pts {
				counts[p.Key()]++
			}
			for _, p := range append(append([]space.Point{}, toP...), toQ...) {
				counts[p.Key()]--
			}
			for k, c := range counts {
				if c != 0 {
					t.Fatalf("%v trial %d: point multiset changed (key %q count %d)", kind, trial, k, c)
				}
			}
		}
	}
}

func TestSplitLargeSetUsesSampledDiameter(t *testing.T) {
	// Over the exact-search threshold, a sampled diameter must still give a
	// valid partition.
	s := space.NewEuclidean(2)
	rng := xrand.New(99)
	pts := make([]space.Point, 200)
	for i := range pts {
		pts[i] = space.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	sp := &Splitter{Kind: SplitAdvanced, Space: s, DiameterSampleCap: 300, Rng: rng}
	toP, toQ := splitPts(sp, pts, space.Point{0, 0}, space.Point{100, 100})
	if len(toP)+len(toQ) != 200 || len(toP) == 0 || len(toQ) == 0 {
		t.Fatalf("sampled split sizes %d/%d", len(toP), len(toQ))
	}
}

func TestSplitKindString(t *testing.T) {
	cases := map[SplitKind]string{
		SplitBasic: "basic", SplitPD: "pd", SplitMD: "md", SplitAdvanced: "advanced",
		SplitKind(99): "SplitKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestParseSplitKind(t *testing.T) {
	for _, s := range []string{"basic", "pd", "md", "advanced", "pd+md"} {
		if _, err := ParseSplitKind(s); err != nil {
			t.Errorf("ParseSplitKind(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseSplitKind("nope"); err == nil {
		t.Error("ParseSplitKind accepted garbage")
	}
	if k, _ := ParseSplitKind("advanced"); k != SplitAdvanced {
		t.Error("round-trip mismatch")
	}
}

package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"polystyrene/internal/metrics"
	"polystyrene/internal/trace"
)

// AggregateRow folds the repetitions of one grid point — everything
// sharing (scenario, size, K, detector, exchange) — into mean ± CI95
// summaries, the paper-table granularity.
type AggregateRow struct {
	Scenario string
	W, H, K  int
	Detector string
	Exchange int
	Reps     int
	// ShapeHeld counts repetitions that ended with h < H.
	ShapeHeld      int
	Homogeneity    metrics.Accumulator
	ReferenceH     metrics.Accumulator
	ReliabilityPct metrics.Accumulator
}

// Aggregate groups cell results by grid point, preserving first-seen
// (i.e. expansion) order so the output is deterministic.
func Aggregate(results []CellResult) []*AggregateRow {
	type key struct {
		scenario string
		w, h, k  int
		det      string
		exchange int
	}
	index := make(map[key]*AggregateRow)
	var rows []*AggregateRow
	for _, r := range results {
		c := r.Cell
		k := key{c.Scenario.Label, c.W, c.H, c.K, c.Detector, c.Exchange}
		row, ok := index[k]
		if !ok {
			row = &AggregateRow{
				Scenario: c.Scenario.Label,
				W:        c.W, H: c.H, K: c.K,
				Detector: c.Detector,
				Exchange: c.Exchange,
			}
			index[k] = row
			rows = append(rows, row)
		}
		row.Reps++
		if r.ShapeHeld {
			row.ShapeHeld++
		}
		row.Homogeneity.Add(r.FinalHomogeneity)
		row.ReferenceH.Add(r.ReferenceH)
		row.ReliabilityPct.Add(r.ReliabilityPct)
	}
	return rows
}

// WriteAggregateCSV emits one row per grid point with mean and CI95
// columns.
func WriteAggregateCSV(w io.Writer, rows []*AggregateRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "scenario,nodes,w,h,k,detector,exchange,reps,shape_held,homogeneity_mean,homogeneity_ci95,reference_h_mean,reliability_pct_mean,reliability_pct_ci95")
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%d,%d,%d,%d,%s,%d,%d,%d,%s,%s,%s,%s,%s\n",
			r.Scenario, r.W*r.H, r.W, r.H, r.K, r.Detector, r.Exchange, r.Reps, r.ShapeHeld,
			ftoa(r.Homogeneity.Mean()), ftoa(r.Homogeneity.CI95()),
			ftoa(r.ReferenceH.Mean()),
			ftoa(r.ReliabilityPct.Mean()), ftoa(r.ReliabilityPct.CI95()))
	}
	return bw.Flush()
}

// WriteTables renders the aggregate as paper-ready markdown: one table
// per scenario (rows ordered as expanded) and a determinism-audit footer
// — the grid's exchange axis shares seeds, so equal-trajectory groups
// must agree; `groups` is AuditDeterminism's count.
func WriteTables(w io.Writer, name string, rows []*AggregateRow, groups int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", name)
	var order []string
	byScenario := make(map[string][]*AggregateRow)
	for _, r := range rows {
		if _, ok := byScenario[r.Scenario]; !ok {
			order = append(order, r.Scenario)
		}
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	headers := []string{"nodes", "k", "detector", "w", "reps", "shape held", "homogeneity h", "reference H", "reliability %"}
	for _, scn := range order {
		fmt.Fprintf(bw, "\n## %s\n\n", scn)
		var md [][]any
		for _, r := range byScenario[scn] {
			md = append(md, []any{
				r.W * r.H, r.K, r.Detector, r.Exchange,
				r.Reps,
				fmt.Sprintf("%d/%d", r.ShapeHeld, r.Reps),
				fmt.Sprintf("%.4f ± %.4f", r.Homogeneity.Mean(), r.Homogeneity.CI95()),
				fmt.Sprintf("%.4f", r.ReferenceH.Mean()),
				fmt.Sprintf("%.1f ± %.1f", r.ReliabilityPct.Mean(), r.ReliabilityPct.CI95()),
			})
		}
		if err := trace.MarkdownTable(bw, headers, md); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "\nDeterminism audit: %d identity groups byte-identical across exchange parallelism.\n", groups)
	return bw.Flush()
}

// Analyze re-derives aggregate.csv and tables.md from a results folder's
// grid.csv — including re-running the determinism audit, so a tampered
// or divergent grid fails here rather than aggregating silently.
func Analyze(dir string) error {
	f, err := os.Open(dir + "/grid.csv")
	if err != nil {
		return err
	}
	results, err := ReadGridCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	groups, err := AuditDeterminism(results)
	if err != nil {
		return err
	}
	rows := Aggregate(results)
	af, err := os.Create(dir + "/aggregate.csv")
	if err != nil {
		return err
	}
	if err := WriteAggregateCSV(af, rows); err != nil {
		af.Close()
		return err
	}
	if err := af.Close(); err != nil {
		return err
	}
	name := strings.TrimSuffix(dir, "/")
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	tf, err := os.Create(dir + "/tables.md")
	if err != nil {
		return err
	}
	if err := WriteTables(tf, name, rows, groups); err != nil {
		tf.Close()
		return err
	}
	return tf.Close()
}

// Package experiments is the declarative experiment-grid pipeline: an
// experiments.json describes a grid of (scenario × size × K × detector ×
// exchange-parallelism × repeats), and the package expands it
// deterministically into cells (splitmix64-derived per-cell seeds via
// scenario.CellSeed), executes every cell under a runner.Budget with
// engine pooling, writes per-cell CSVs plus a grid summary into a results
// folder, and aggregates them into a paper-ready CSV and markdown tables.
// It replaces the bespoke loops of the polysim/polysweep/polytable/
// polychurn CLIs with one reproducible workflow (cmd/polygrid,
// scripts/paper/run_all.sh).
//
// Rejection happens up front: unknown JSON keys, malformed axes and
// invalid scenario/parameter combinations all fail at parse/validate time
// — before any cell has burned a core-hour. Expansion is a pure function
// of the spec, so `polygrid -dry-run` shows the exact blast radius of an
// experiments.json edit.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"polystyrene/internal/fd"
	"polystyrene/internal/scenario"
	"polystyrene/internal/trace"
	"polystyrene/internal/xrand"
)

// Spec is the declarative description of one experiment grid, the parsed
// form of experiments.json. Every axis is crossed with every other; the
// cell count is len(Scenarios) × len(Sizes) × len(Ks) × len(Detectors) ×
// len(ExchangeParallelism) × Repeats.
type Spec struct {
	// Name labels the grid; the results folder is <Name>-<stamp>.
	Name string `json:"name"`
	// Seed is the base seed every per-cell seed is derived from.
	Seed uint64 `json:"seed"`
	// Repeats is the number of repetitions per cell (default 1). Reps
	// differ by seed (and by generated schedule, for stochastic
	// scenarios); everything else in the cell is identical.
	Repeats int `json:"repeats"`
	// Rounds is the default horizon of every cell; a scenario may
	// override it.
	Rounds int `json:"rounds"`
	// Scenarios is the workload axis; see ScenarioSpec.
	Scenarios []ScenarioSpec `json:"scenarios"`
	// Sizes lists torus grids as [w, h] pairs.
	Sizes [][2]int `json:"sizes"`
	// Ks lists replication factors (default [4]).
	Ks []int `json:"ks"`
	// Detectors lists failure detectors: "perfect", "delayed:N" or
	// "probabilistic:P" (default ["perfect"]).
	Detectors []string `json:"detectors"`
	// ExchangeParallelism lists intra-round exchange worker counts
	// (default [0], the sequential engine). Cells differing only in a
	// level >= 1 are byte-identical by the engine's determinism contract
	// — the grid deliberately derives their seeds identically, so a grid
	// with this axis doubles as a continuous determinism audit.
	ExchangeParallelism []int `json:"exchange_parallelism"`
}

// ScenarioSpec names one workload of the scenario axis and its
// parameters. Name selects the generator; only the fields that scenario
// consumes may be set — any other non-zero field is an invalid
// combination and rejected up front:
//
//   - "paper": the 3-phase evaluation of Sec. IV-A. fail_at (default 20)
//     is the half-torus catastrophe, rejoin_at (default 100) the
//     reinjection.
//   - "churn": uniform random churn at `rate` per round (required),
//     every crash matched by a fresh joiner, pre-computed as a
//     replayable schedule (trace.UniformChurn).
//   - "flash-crowd": `crowd` × N fresh nodes (default 0.5) join at
//     fail_at and all leave at rejoin_at (trace.FlashCrowd).
//   - "rolling-partition": the torus is cut into `bands` (default 4)
//     vertical bands; band b fails at fail_at + b*stride (default
//     stride 2), each band's loss rejoined `rejoin_at` rounds after it
//     fails when rejoin_at >= 0 (failures.RollingPartition; here
//     rejoin_at is a relative delay).
//   - "rack-failure": a correlated-placement hierarchy of `datacenters`
//     × `racks_per_dc` (defaults 4×4); datacenter 0 — a contiguous slab
//     of the shape — fails at fail_at, rejoined at rejoin_at when >= 0
//     (failures.DatacenterOutage).
//   - "weibull": heterogeneous node lifetimes drawn from
//     Weibull(shape, scale) (defaults 0.7, rounds/2), deaths replaced by
//     fresh joiners (trace.WeibullLifetimes).
//   - "trace": replays the schedule CSV at `trace` (path resolved
//     relative to the spec file). Its initial population must match
//     every size in the grid — checked up front.
type ScenarioSpec struct {
	Name string `json:"name"`
	// Label distinguishes two entries of the same Name (defaults to
	// Name; must be unique across the axis).
	Label string `json:"label,omitempty"`
	// Rounds overrides the spec-level horizon for this scenario.
	Rounds int `json:"rounds,omitempty"`

	FailAt   int     `json:"fail_at,omitempty"`
	RejoinAt int     `json:"rejoin_at,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Crowd    float64 `json:"crowd,omitempty"`
	Bands    int     `json:"bands,omitempty"`
	Stride   int     `json:"stride,omitempty"`
	DCs      int     `json:"datacenters,omitempty"`
	Racks    int     `json:"racks_per_dc,omitempty"`
	Shape    float64 `json:"shape,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Trace    string  `json:"trace,omitempty"`

	// unset tracks which optional fields the JSON actually set, for
	// invalid-combination rejection (a zero value is indistinguishable
	// from absent otherwise). Populated by Parse.
	setFields map[string]bool
}

// scenarioFields maps each scenario name to the optional fields it
// consumes; any other set field is rejected.
var scenarioFields = map[string][]string{
	"paper":             {"fail_at", "rejoin_at"},
	"churn":             {"rate"},
	"flash-crowd":       {"fail_at", "rejoin_at", "crowd"},
	"rolling-partition": {"fail_at", "rejoin_at", "bands", "stride"},
	"rack-failure":      {"fail_at", "rejoin_at", "datacenters", "racks_per_dc"},
	"weibull":           {"shape", "scale"},
	"trace":             {"trace"},
}

// Parse decodes and validates an experiments.json. Unknown keys anywhere
// in the document are rejected (a typoed axis silently shrinking the
// grid is the failure mode this guards against). baseDir anchors
// relative trace paths (pass the spec file's directory).
func Parse(data []byte, baseDir string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	// Re-decode each scenario generically to learn which fields were
	// actually present (for combination checks).
	var raw struct {
		Scenarios []map[string]json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i := range spec.Scenarios {
		spec.Scenarios[i].setFields = make(map[string]bool)
		if i < len(raw.Scenarios) {
			for k := range raw.Scenarios[i] {
				spec.Scenarios[i].setFields[k] = true
			}
		}
	}
	spec.applyDefaults()
	if err := spec.Validate(baseDir); err != nil {
		return nil, err
	}
	return &spec, nil
}

// ParseFile is Parse over a file, anchoring relative trace paths at the
// file's directory.
func ParseFile(path string) (*Spec, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	dir := "."
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir = path[:i]
	}
	spec, err := Parse(data, dir)
	if err != nil {
		return nil, nil, err
	}
	return spec, data, nil
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("experiments: trailing data after the spec document")
	}
	return nil
}

func (s *Spec) applyDefaults() {
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if len(s.Ks) == 0 {
		s.Ks = []int{4}
	}
	if len(s.Detectors) == 0 {
		s.Detectors = []string{"perfect"}
	}
	if len(s.ExchangeParallelism) == 0 {
		s.ExchangeParallelism = []int{0}
	}
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if sc.Label == "" {
			sc.Label = sc.Name
		}
		if sc.Rounds == 0 {
			sc.Rounds = s.Rounds
		}
	}
}

// Validate rejects a malformed or inconsistent spec: empty axes,
// non-positive sizes/Ks/repeats, unparseable detectors, negative
// exchange levels, duplicate scenario labels, scenario parameters that
// do not belong to their scenario, event rounds outside the horizon, and
// trace files that are missing, malformed or sized for a different grid.
func (s *Spec) Validate(baseDir string) error {
	if s.Name == "" {
		return fmt.Errorf("experiments: spec needs a name")
	}
	if s.Repeats < 1 {
		return fmt.Errorf("experiments: repeats %d < 1", s.Repeats)
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("experiments: no scenarios")
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("experiments: no sizes")
	}
	for _, sz := range s.Sizes {
		if sz[0] < 2 || sz[1] < 2 {
			return fmt.Errorf("experiments: size %dx%d too small (need w,h >= 2)", sz[0], sz[1])
		}
	}
	for _, k := range s.Ks {
		if k < 1 {
			return fmt.Errorf("experiments: replication factor %d < 1", k)
		}
	}
	for _, d := range s.Detectors {
		if _, err := ParseDetector(d, 1); err != nil {
			return err
		}
	}
	for _, w := range s.ExchangeParallelism {
		if w < 0 {
			return fmt.Errorf("experiments: exchange parallelism %d < 0", w)
		}
	}
	labels := make(map[string]bool, len(s.Scenarios))
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if labels[sc.Label] {
			return fmt.Errorf("experiments: duplicate scenario label %q", sc.Label)
		}
		labels[sc.Label] = true
		if err := sc.validate(s, baseDir); err != nil {
			return err
		}
	}
	return nil
}

func (sc *ScenarioSpec) validate(s *Spec, baseDir string) error {
	allowed, ok := scenarioFields[sc.Name]
	if !ok {
		return fmt.Errorf("experiments: unknown scenario %q (want %s)", sc.Name, strings.Join(trace.SortedKeys(scenarioFields), "|"))
	}
	for f := range sc.setFields {
		switch f {
		case "name", "label", "rounds":
			continue
		}
		found := false
		for _, a := range allowed {
			if f == a {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("experiments: scenario %q does not take %q (allowed: %s)", sc.Label, f, strings.Join(allowed, ", "))
		}
	}
	if sc.Rounds < 1 {
		return fmt.Errorf("experiments: scenario %q has no horizon (set rounds on it or on the spec)", sc.Label)
	}
	// Per-scenario parameter defaults and range checks. Defaults are
	// resolved here so Expand sees fully concrete specs.
	switch sc.Name {
	case "paper":
		if !sc.setFields["fail_at"] {
			sc.FailAt = 20
		}
		if !sc.setFields["rejoin_at"] {
			sc.RejoinAt = 100
		}
		ph := scenario.Phases{FailAt: sc.FailAt, ReinjectAt: sc.RejoinAt, End: sc.Rounds}
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("experiments: scenario %q: %w", sc.Label, err)
		}
	case "churn":
		if !sc.setFields["rate"] || sc.Rate <= 0 || sc.Rate >= 1 {
			return fmt.Errorf("experiments: scenario %q needs a churn rate in (0,1) (got %v)", sc.Label, sc.Rate)
		}
	case "flash-crowd":
		if !sc.setFields["crowd"] {
			sc.Crowd = 0.5
		}
		if sc.Crowd <= 0 || sc.Crowd > 4 {
			return fmt.Errorf("experiments: scenario %q crowd fraction %v out of (0,4]", sc.Label, sc.Crowd)
		}
		if !sc.setFields["fail_at"] {
			sc.FailAt = sc.Rounds / 4
		}
		if !sc.setFields["rejoin_at"] {
			sc.RejoinAt = sc.Rounds / 2
		}
		if sc.FailAt < 0 || sc.RejoinAt < sc.FailAt || sc.RejoinAt >= sc.Rounds {
			return fmt.Errorf("experiments: scenario %q needs 0 <= fail_at <= rejoin_at < rounds (got %d, %d, %d)",
				sc.Label, sc.FailAt, sc.RejoinAt, sc.Rounds)
		}
	case "rolling-partition":
		if !sc.setFields["bands"] {
			sc.Bands = 4
		}
		if !sc.setFields["stride"] {
			sc.Stride = 2
		}
		if !sc.setFields["fail_at"] {
			sc.FailAt = sc.Rounds / 4
		}
		if !sc.setFields["rejoin_at"] {
			sc.RejoinAt = -1
		}
		if sc.Bands < 1 || sc.Stride < 0 || sc.FailAt < 0 {
			return fmt.Errorf("experiments: scenario %q needs bands >= 1, stride >= 0, fail_at >= 0", sc.Label)
		}
		last := sc.FailAt + (sc.Bands-1)*sc.Stride
		if sc.RejoinAt >= 0 {
			last += sc.RejoinAt
		}
		if last >= sc.Rounds {
			return fmt.Errorf("experiments: scenario %q: last band event at round %d is outside the %d-round horizon", sc.Label, last, sc.Rounds)
		}
	case "rack-failure":
		if !sc.setFields["datacenters"] {
			sc.DCs = 4
		}
		if !sc.setFields["racks_per_dc"] {
			sc.Racks = 4
		}
		if !sc.setFields["fail_at"] {
			sc.FailAt = sc.Rounds / 4
		}
		if !sc.setFields["rejoin_at"] {
			sc.RejoinAt = -1
		}
		if sc.DCs < 1 || sc.Racks < 1 {
			return fmt.Errorf("experiments: scenario %q needs positive datacenters and racks_per_dc", sc.Label)
		}
		if sc.FailAt < 0 || sc.FailAt >= sc.Rounds || (sc.RejoinAt >= 0 && (sc.RejoinAt < sc.FailAt || sc.RejoinAt >= sc.Rounds)) {
			return fmt.Errorf("experiments: scenario %q fail/rejoin rounds (%d, %d) outside the %d-round horizon", sc.Label, sc.FailAt, sc.RejoinAt, sc.Rounds)
		}
	case "weibull":
		if !sc.setFields["shape"] {
			sc.Shape = 0.7
		}
		if !sc.setFields["scale"] {
			sc.Scale = float64(sc.Rounds) / 2
		}
		if sc.Shape <= 0 || sc.Scale <= 0 {
			return fmt.Errorf("experiments: scenario %q needs positive weibull shape and scale (got %v, %v)", sc.Label, sc.Shape, sc.Scale)
		}
	case "trace":
		if sc.Trace == "" {
			return fmt.Errorf("experiments: scenario %q needs a trace path", sc.Label)
		}
		if !strings.HasPrefix(sc.Trace, "/") && baseDir != "" {
			sc.Trace = baseDir + "/" + sc.Trace
		}
		f, err := os.Open(sc.Trace)
		if err != nil {
			return fmt.Errorf("experiments: scenario %q: %w", sc.Label, err)
		}
		sched, err := trace.ReadScheduleCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("experiments: scenario %q: %s: %w", sc.Label, sc.Trace, err)
		}
		for _, sz := range s.Sizes {
			if n := sz[0] * sz[1]; sched.Initial != n {
				return fmt.Errorf("experiments: scenario %q: trace %s has initial population %d but the grid includes size %dx%d (%d nodes)",
					sc.Label, sc.Trace, sched.Initial, sz[0], sz[1], n)
			}
		}
	}
	return nil
}

// ParseDetector resolves a detector axis value. seed feeds the
// probabilistic detector's private stream (derive it from the cell seed
// so repetitions stay independent).
func ParseDetector(s string, seed uint64) (fd.Detector, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "perfect":
		if hasArg {
			return nil, fmt.Errorf("experiments: detector %q takes no argument", s)
		}
		return nil, nil
	case "delayed":
		d, err := strconv.Atoi(arg)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("experiments: detector %q needs delayed:N with N >= 1", s)
		}
		return fd.NewDelayed(d), nil
	case "probabilistic":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || !(p > 0 && p <= 1) {
			return nil, fmt.Errorf("experiments: detector %q needs probabilistic:P with P in (0,1]", s)
		}
		return fd.NewProbabilistic(p, xrand.New(seed)), nil
	}
	return nil, fmt.Errorf("experiments: unknown detector %q (want perfect|delayed:N|probabilistic:P)", s)
}

// Cell is one fully resolved grid point.
type Cell struct {
	// Index is the cell's position in expansion order (stable across
	// runs of the same spec).
	Index int
	// Scenario is the resolved workload (defaults applied).
	Scenario ScenarioSpec
	// W, H, K, Detector, Exchange, Rep are the cell's axis values.
	W, H, K  int
	Detector string
	Exchange int
	Rep      int
	// Seed is the cell's derived engine seed. It deliberately excludes
	// the Exchange axis: cells differing only in exchange parallelism
	// >= 1 must produce byte-identical results (the engine's determinism
	// contract), so a grid with that axis continuously audits it.
	Seed uint64
	// ScheduleSeed drives the cell's schedule generator; it excludes K,
	// detector and exchange so all protocol variants of one (size, rep)
	// face the exact same availability trace.
	ScheduleSeed uint64
	// Rounds is the cell's horizon.
	Rounds int
}

// ID returns the cell's stable identifier, used as its results filename.
func (c Cell) ID() string {
	det := strings.NewReplacer(":", "", ".", "p").Replace(c.Detector)
	return fmt.Sprintf("%s_%dx%d_k%d_%s_w%d_r%d", c.Scenario.Label, c.W, c.H, c.K, det, c.Exchange, c.Rep)
}

// Expand produces the cell list in canonical order (scenario, size, K,
// detector, exchange, rep — the rightmost axis fastest). It is a pure
// function of the spec: same spec, same cells, same seeds.
func (s *Spec) Expand() []Cell {
	cells := make([]Cell, 0,
		len(s.Scenarios)*len(s.Sizes)*len(s.Ks)*len(s.Detectors)*len(s.ExchangeParallelism)*s.Repeats)
	for _, scn := range s.Scenarios {
		for _, sz := range s.Sizes {
			for _, k := range s.Ks {
				for _, det := range s.Detectors {
					for _, w := range s.ExchangeParallelism {
						for rep := 0; rep < s.Repeats; rep++ {
							cells = append(cells, Cell{
								Index:    len(cells),
								Scenario: scn,
								W:        sz[0], H: sz[1], K: k,
								Detector: det,
								Exchange: w,
								Rep:      rep,
								Seed: scenario.CellSeed(s.Seed, scn.Label+"/"+det,
									uint64(sz[0]), uint64(sz[1]), uint64(k), uint64(rep)),
								ScheduleSeed: scenario.CellSeed(s.Seed, "schedule/"+scn.Label,
									uint64(sz[0]), uint64(sz[1]), uint64(rep)),
								Rounds: scn.Rounds,
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// WriteGrid renders the expanded grid as a deterministic plain-text
// table — the -dry-run output, golden-tested so experiments.json edits
// show their blast radius in review.
func WriteGrid(w io.Writer, spec *Spec, cells []Cell) error {
	if _, err := fmt.Fprintf(w, "# %s: %d cells (%d scenarios x %d sizes x %d ks x %d detectors x %d exchange levels x %d reps)\n",
		spec.Name, len(cells), len(spec.Scenarios), len(spec.Sizes), len(spec.Ks),
		len(spec.Detectors), len(spec.ExchangeParallelism), spec.Repeats); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%4d  %-44s rounds=%-4d seed=%016x schedule=%016x\n",
			c.Index, c.ID(), c.Rounds, c.Seed, c.ScheduleSeed); err != nil {
			return err
		}
	}
	return nil
}

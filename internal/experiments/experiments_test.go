package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"polystyrene/internal/scenario"
)

const smokeSpec = "../../scripts/paper/smoke.json"

func parseValid(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Parse([]byte(src), ".")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

func TestParseRejects(t *testing.T) {
	valid := `{
		"name": "x", "seed": 1, "rounds": 20,
		"scenarios": [{"name": "paper", "fail_at": 5, "rejoin_at": 10}],
		"sizes": [[16, 8]]
	}`
	parseValid(t, valid) // baseline must parse

	cases := []struct{ name, src, want string }{
		{"unknown top-level key", `{"name":"x","rounds":20,"scenarioz":[],"sizes":[[16,8]]}`, "unknown field"},
		{"unknown scenario key", `{"name":"x","rounds":20,"scenarios":[{"name":"paper","fail_att":5}],"sizes":[[16,8]]}`, "unknown field"},
		{"no name", `{"rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[16,8]]}`, "needs a name"},
		{"no scenarios", `{"name":"x","rounds":20,"scenarios":[],"sizes":[[16,8]]}`, "no scenarios"},
		{"no sizes", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[]}`, "no sizes"},
		{"tiny size", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[1,8]]}`, "too small"},
		{"bad k", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[16,8]],"ks":[0]}`, "replication factor"},
		{"bad detector", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[16,8]],"detectors":["psychic"]}`, "unknown detector"},
		{"bad delayed", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[16,8]],"detectors":["delayed:0"]}`, "delayed:N"},
		{"negative exchange", `{"name":"x","rounds":20,"scenarios":[{"name":"paper"}],"sizes":[[16,8]],"exchange_parallelism":[-1]}`, "exchange parallelism"},
		{"unknown scenario name", `{"name":"x","rounds":20,"scenarios":[{"name":"meteor"}],"sizes":[[16,8]]}`, "unknown scenario"},
		{"duplicate label", `{"name":"x","rounds":120,"scenarios":[{"name":"paper"},{"name":"paper"}],"sizes":[[16,8]]}`, "duplicate scenario label"},
		{"field of wrong scenario", `{"name":"x","rounds":20,"scenarios":[{"name":"paper","rate":0.1}],"sizes":[[16,8]]}`, "does not take"},
		{"churn without rate", `{"name":"x","rounds":20,"scenarios":[{"name":"churn"}],"sizes":[[16,8]]}`, "churn rate"},
		{"churn rate 1", `{"name":"x","rounds":20,"scenarios":[{"name":"churn","rate":1.0}],"sizes":[[16,8]]}`, "churn rate"},
		{"no horizon", `{"name":"x","scenarios":[{"name":"churn","rate":0.1}],"sizes":[[16,8]]}`, "horizon"},
		{"flash crowd event order", `{"name":"x","rounds":20,"scenarios":[{"name":"flash-crowd","fail_at":15,"rejoin_at":5}],"sizes":[[16,8]]}`, "fail_at"},
		{"rolling partition overflow", `{"name":"x","rounds":20,"scenarios":[{"name":"rolling-partition","fail_at":15,"bands":4,"stride":3}],"sizes":[[16,8]]}`, "horizon"},
		{"rack failure late rejoin", `{"name":"x","rounds":20,"scenarios":[{"name":"rack-failure","fail_at":5,"rejoin_at":25}],"sizes":[[16,8]]}`, "horizon"},
		{"weibull bad shape", `{"name":"x","rounds":20,"scenarios":[{"name":"weibull","shape":-1}],"sizes":[[16,8]]}`, "shape"},
		{"trace without path", `{"name":"x","rounds":20,"scenarios":[{"name":"trace"}],"sizes":[[16,8]]}`, "trace path"},
		{"paper invalid phases", `{"name":"x","rounds":20,"scenarios":[{"name":"paper","fail_at":30,"rejoin_at":40}],"sizes":[[16,8]]}`, "paper"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src), ".")
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejectsMismatchedTrace(t *testing.T) {
	dir := t.TempDir()
	// A trace sized for 64 nodes, offered to a 16x8 (128-node) grid.
	if err := os.WriteFile(dir+"/small.csv",
		[]byte("# polystyrene-schedule v1 initial=64\nround,op,node\n3,leave,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `{"name":"x","rounds":20,"scenarios":[{"name":"trace","trace":"small.csv"}],"sizes":[[16,8]]}`
	_, err := Parse([]byte(src), dir)
	if err == nil || !strings.Contains(err.Error(), "initial population 64") {
		t.Fatalf("mismatched trace accepted (err=%v)", err)
	}
	// Matching population parses.
	if err := os.WriteFile(dir+"/ok.csv",
		[]byte("# polystyrene-schedule v1 initial=128\nround,op,node\n3,leave,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src = `{"name":"x","rounds":20,"scenarios":[{"name":"trace","trace":"ok.csv"}],"sizes":[[16,8]]}`
	if _, err := Parse([]byte(src), dir); err != nil {
		t.Fatalf("matching trace rejected: %v", err)
	}
}

func TestExpandSeedDerivation(t *testing.T) {
	spec := parseValid(t, `{
		"name": "x", "seed": 9, "rounds": 20, "repeats": 2,
		"scenarios": [
			{"name": "churn", "rate": 0.05},
			{"name": "flash-crowd"}
		],
		"sizes": [[16, 8], [16, 16]],
		"ks": [2, 4],
		"detectors": ["perfect", "delayed:2"],
		"exchange_parallelism": [0, 1, 2]
	}`)
	cells := spec.Expand()
	if want := 2 * 2 * 2 * 2 * 3 * 2; len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	seen := make(map[string]bool, len(cells))
	type axes struct {
		label   string
		w, h, k int
		det     string
		rep     int
	}
	engineSeeds := make(map[axes]uint64)
	type schedAxes struct {
		label string
		w, h  int
		rep   int
	}
	schedSeeds := make(map[schedAxes]uint64)
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d", i, c.Index)
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate cell id %s", c.ID())
		}
		seen[c.ID()] = true
		// The engine seed must not depend on exchange parallelism...
		ka := axes{c.Scenario.Label, c.W, c.H, c.K, c.Detector, c.Rep}
		if prev, ok := engineSeeds[ka]; ok {
			if prev != c.Seed {
				t.Errorf("%s: seed varies with exchange parallelism", c.ID())
			}
		} else {
			engineSeeds[ka] = c.Seed
		}
		// ...and the schedule seed only on (scenario, size, rep).
		sa := schedAxes{c.Scenario.Label, c.W, c.H, c.Rep}
		if prev, ok := schedSeeds[sa]; ok {
			if prev != c.ScheduleSeed {
				t.Errorf("%s: schedule seed varies with k/detector/exchange", c.ID())
			}
		} else {
			schedSeeds[sa] = c.ScheduleSeed
		}
	}
	// Distinct axes must get distinct engine seeds.
	distinct := make(map[uint64]axes)
	for ka, s := range engineSeeds {
		if prev, dup := distinct[s]; dup {
			t.Fatalf("axes %+v and %+v share seed %016x", prev, ka, s)
		}
		distinct[s] = ka
	}
	// Expansion is stable: a second expansion is identical.
	again := spec.Expand()
	for i := range cells {
		if cells[i].ID() != again[i].ID() || cells[i].Seed != again[i].Seed {
			t.Fatalf("expansion unstable at cell %d", i)
		}
	}
}

func TestDryRunGolden(t *testing.T) {
	spec, _, err := ParseFile(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGrid(&buf, spec, spec.Expand()); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../scripts/paper/testdata/smoke_grid.golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("-dry-run expansion diverged from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), golden)
	}
}

func TestAuditDeterminism(t *testing.T) {
	mk := func(label string, w int, fp uint64) CellResult {
		return CellResult{
			Cell:        Cell{Scenario: ScenarioSpec{Label: label}, W: 16, H: 8, K: 2, Detector: "perfect", Exchange: w},
			Fingerprint: fp,
		}
	}
	// w=1 and w=2 agree; w=0 differs and is legitimately its own group.
	ok := []CellResult{mk("a", 0, 111), mk("a", 1, 222), mk("a", 2, 222)}
	groups, err := AuditDeterminism(ok)
	if err != nil || groups != 1 {
		t.Fatalf("audit = (%d, %v), want (1, nil)", groups, err)
	}
	bad := []CellResult{mk("a", 1, 222), mk("a", 2, 333)}
	if _, err := AuditDeterminism(bad); err == nil {
		t.Fatal("divergent batched cells must fail the audit")
	}
}

func TestGridCSVRoundTrip(t *testing.T) {
	results := []CellResult{
		{
			Cell: Cell{
				Scenario: ScenarioSpec{Name: "churn", Label: "churn"},
				W:        16, H: 8, K: 2, Detector: "delayed:2", Exchange: 1, Rep: 3,
				Seed: 0xdeadbeef, ScheduleSeed: 0xfeed, Rounds: 24,
			},
			FinalHomogeneity: 0.125, ReferenceH: 0.5, ShapeHeld: true,
			ReliabilityPct: 98.4375, Fingerprint: 0xabc123,
		},
	}
	// Write through the real writer, read back, compare the round trip.
	dir := t.TempDir()
	results[0].Series = &scenario.Result{}
	if err := WriteResults(dir, []byte("{}"), results); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dir + "/grid.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadGridCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("read %d rows, want 1", len(back))
	}
	got, want := back[0], results[0]
	if got.Cell.ID() != want.Cell.ID() ||
		got.Cell.Seed != want.Cell.Seed ||
		got.Cell.ScheduleSeed != want.Cell.ScheduleSeed ||
		got.FinalHomogeneity != want.FinalHomogeneity ||
		got.ReferenceH != want.ReferenceH ||
		got.ShapeHeld != want.ShapeHeld ||
		got.ReliabilityPct != want.ReliabilityPct ||
		got.Fingerprint != want.Fingerprint {
		t.Errorf("grid.csv round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadGridCSVRejects(t *testing.T) {
	if _, err := ReadGridCSV(strings.NewReader("")); err == nil {
		t.Error("empty grid.csv accepted")
	}
	if _, err := ReadGridCSV(strings.NewReader("nope\n")); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := ReadGridCSV(strings.NewReader(gridHeader + "\na,b\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadGridCSV(strings.NewReader(gridHeader + "\n" + strings.Repeat("x,", 15) + "x\n")); err == nil {
		t.Error("non-numeric row accepted")
	}
}

// TestSmokeGridEndToEnd runs the CI smoke spec in-process and checks the
// analyzer output against the same golden run_all.sh --smoke diffs —
// the grid pipeline's full-stack test.
func TestSmokeGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke grid run")
	}
	spec, specData, err := ParseFile(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(spec, RunOpts{PoolEngines: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditDeterminism(results); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/smoke-smoke"
	if err := WriteResults(dir, specData, results); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dir + "/tables.md")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../scripts/paper/testdata/smoke_tables.golden.md")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("smoke tables.md diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"polystyrene/internal/scenario"
	"polystyrene/internal/trace"
)

// Results-folder layout. One grid run writes <out>/<name>-<stamp>/ with:
//
//	experiments.json   the spec, byte-for-byte as given (provenance)
//	grid.csv           one row per cell: identity, seed and final summary
//	cells/<id>.csv     the cell's per-round series (trace.Table CSV)
//	aggregate.csv      repetitions folded: mean and CI95 per grid point
//	tables.md          paper-ready markdown tables + determinism audit
//
// grid.csv is the analyzer's input: Analyze(dir) regenerates
// aggregate.csv and tables.md from it alone, so a results folder stays
// re-analyzable long after the run.

const gridHeader = "cell,scenario,w,h,k,detector,exchange,rep,seed,schedule_seed,rounds,final_homogeneity,reference_h,shape_held,reliability_pct,fingerprint"

// WriteResults lays down a results folder for one executed grid:
// the spec copy, grid.csv and the per-cell series CSVs, then runs the
// analyzer over it (aggregate.csv, tables.md).
func WriteResults(dir string, specData []byte, results []CellResult) error {
	if err := os.MkdirAll(dir+"/cells", 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(dir+"/experiments.json", specData, 0o644); err != nil {
		return err
	}
	g, err := os.Create(dir + "/grid.csv")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(g)
	fmt.Fprintln(bw, gridHeader)
	for _, r := range results {
		c := r.Cell
		held := 0
		if r.ShapeHeld {
			held = 1
		}
		fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%s,%d,%d,%016x,%016x,%d,%s,%s,%d,%s,%016x\n",
			c.ID(), c.Scenario.Label, c.W, c.H, c.K, c.Detector, c.Exchange, c.Rep,
			c.Seed, c.ScheduleSeed, c.Rounds,
			ftoa(r.FinalHomogeneity), ftoa(r.ReferenceH), held, ftoa(r.ReliabilityPct), r.Fingerprint)
	}
	if err := bw.Flush(); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	for _, r := range results {
		if err := writeCellCSV(dir+"/cells/"+r.Cell.ID()+".csv", r.Series); err != nil {
			return err
		}
	}
	return Analyze(dir)
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCellCSV emits the per-round series through the shared table
// writer, so cell CSVs read back with trace.ReadCSV like every other
// trace in the repo.
func writeCellCSV(path string, res *scenario.Result) error {
	t := trace.NewTable()
	n := len(res.LiveNodes)
	round := make([]float64, n)
	live := make([]float64, n)
	for i := 0; i < n; i++ {
		round[i] = float64(i)
		live[i] = float64(res.LiveNodes[i])
	}
	cols := []struct {
		name string
		vals []float64
	}{
		{"round", round},
		{"live", live},
		{"homogeneity", res.Homogeneity},
		{"proximity", res.Proximity},
		{"datapoints_per_node", res.DataPoints},
		{"msgcost_per_node", res.MsgCost},
	}
	for _, c := range cols {
		if err := t.AddColumn(c.name, c.vals); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGridCSV parses grid.csv back into summary-only CellResults (Series
// is nil) — everything the analyzer and the determinism audit need.
func ReadGridCSV(r io.Reader) ([]CellResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("experiments: empty grid.csv")
	}
	if got := strings.TrimSpace(sc.Text()); got != gridHeader {
		return nil, fmt.Errorf("experiments: grid.csv header mismatch:\n  got  %s\n  want %s", got, gridHeader)
	}
	var out []CellResult
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 16 {
			return nil, fmt.Errorf("experiments: grid.csv line %d has %d fields, want 16", line, len(f))
		}
		var r CellResult
		var err error
		atoi := func(s string) int {
			if err != nil {
				return 0
			}
			var v int
			v, err = strconv.Atoi(s)
			return v
		}
		atof := func(s string) float64 {
			if err != nil {
				return 0
			}
			var v float64
			v, err = strconv.ParseFloat(s, 64)
			return v
		}
		hexu := func(s string) uint64 {
			if err != nil {
				return 0
			}
			var v uint64
			v, err = strconv.ParseUint(s, 16, 64)
			return v
		}
		r.Cell = Cell{
			Index:        len(out),
			Scenario:     ScenarioSpec{Name: f[1], Label: f[1]},
			W:            atoi(f[2]),
			H:            atoi(f[3]),
			K:            atoi(f[4]),
			Detector:     f[5],
			Exchange:     atoi(f[6]),
			Rep:          atoi(f[7]),
			Seed:         hexu(f[8]),
			ScheduleSeed: hexu(f[9]),
			Rounds:       atoi(f[10]),
		}
		r.FinalHomogeneity = atof(f[11])
		r.ReferenceH = atof(f[12])
		r.ShapeHeld = atoi(f[13]) != 0
		r.ReliabilityPct = atof(f[14])
		r.Fingerprint = hexu(f[15])
		if err != nil {
			return nil, fmt.Errorf("experiments: grid.csv line %d: %w", line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

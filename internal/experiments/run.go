package experiments

import (
	"fmt"
	"math"
	"os"

	"polystyrene/internal/failures"
	"polystyrene/internal/runner"
	"polystyrene/internal/scenario"
	"polystyrene/internal/shape"
	"polystyrene/internal/trace"
)

// CellResult is the measured outcome of one grid cell: the final-state
// summary columns of grid.csv plus the full per-round series (the cell
// CSV) and a fingerprint of that series for determinism audits.
type CellResult struct {
	Cell Cell
	// FinalHomogeneity and ReferenceH are h and H after the last round;
	// ShapeHeld reports h < H (the shape survived, Sec. IV-A criterion).
	FinalHomogeneity float64
	ReferenceH       float64
	ShapeHeld        bool
	// ReliabilityPct is the surviving fraction of original data points,
	// in percent (Table II measure).
	ReliabilityPct float64
	// Fingerprint hashes the entire per-round series (FNV-1a over the
	// raw float bits plus the live-node trace); two cells ran the same
	// trajectory iff their fingerprints match.
	Fingerprint uint64
	// Series is the per-round metric record.
	Series *scenario.Result
}

// Fingerprint digests a per-round metric record with FNV-1a over the
// float bit patterns and live counts: byte-identical trajectories — and
// only those — collide. This is the identity the grid's exchange axis is
// audited against.
func Fingerprint(r *scenario.Result) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for _, col := range [][]float64{r.Homogeneity, r.Proximity, r.DataPoints, r.MsgCost} {
		mix(uint64(len(col)))
		for _, v := range col {
			mix(math.Float64bits(v))
		}
	}
	mix(uint64(len(r.LiveNodes)))
	for _, v := range r.LiveNodes {
		mix(uint64(v))
	}
	return h
}

// BuildSchedule materializes the cell's availability schedule, nil for
// the scripted-phases "paper" scenario. The schedule is a pure function
// of (scenario spec, grid size, ScheduleSeed) — deliberately independent
// of K, detector and exchange parallelism, so every protocol variant in
// one (size, rep) slice faces the exact same trace.
func BuildSchedule(cell Cell) (*trace.Schedule, error) {
	n := cell.W * cell.H
	sp := cell.Scenario
	switch sp.Name {
	case "paper":
		return nil, nil
	case "churn":
		return trace.UniformChurn(n, cell.Rounds, sp.Rate, true, cell.ScheduleSeed)
	case "flash-crowd":
		return trace.FlashCrowd(n, sp.FailAt, int(sp.Crowd*float64(n)), sp.RejoinAt)
	case "rolling-partition":
		pos := shape.Grid(cell.W, cell.H, 1)
		return failures.RollingPartition(pos, float64(cell.W), sp.Bands, sp.FailAt, sp.Stride, sp.RejoinAt)
	case "rack-failure":
		pos := shape.Grid(cell.W, cell.H, 1)
		h, err := failures.NewHierarchy(sp.DCs, sp.Racks, failures.Correlated, pos, float64(cell.W), nil)
		if err != nil {
			return nil, err
		}
		return failures.DatacenterOutage(h, n, sp.FailAt, sp.RejoinAt, 0)
	case "weibull":
		return trace.WeibullLifetimes(n, cell.Rounds, sp.Shape, sp.Scale, true, cell.ScheduleSeed)
	case "trace":
		f, err := os.Open(sp.Trace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadScheduleCSV(f)
	}
	return nil, fmt.Errorf("experiments: unknown scenario %q", sp.Name)
}

// RunCell executes one cell to completion. pool may be nil (no engine
// reuse); with a pool, the cell borrows an engine sized for its grid and
// parks it back when done — the pooled trajectory is byte-identical to a
// fresh engine's, which the grid's repeat runs audit.
func RunCell(cell Cell, pool *scenario.EnginePool) (CellResult, error) {
	det, err := ParseDetector(cell.Detector, scenario.CellSeed(cell.Seed, "detector"))
	if err != nil {
		return CellResult{}, err
	}
	cfg := scenario.Config{
		Seed:                cell.Seed,
		W:                   cell.W,
		H:                   cell.H,
		Polystyrene:         true,
		K:                   cell.K,
		Detector:            det,
		ExchangeParallelism: cell.Exchange,
	}
	release := pool.Acquire(&cfg)
	defer release()

	var sc *scenario.Scenario
	if cell.Scenario.Name == "paper" {
		sc, err = scenario.New(cfg)
		if err != nil {
			return CellResult{}, err
		}
		ph := scenario.Phases{FailAt: cell.Scenario.FailAt, ReinjectAt: cell.Scenario.RejoinAt, End: cell.Rounds}
		scenario.DrivePhases(sc, ph, cell.Rounds)
	} else {
		sched, berr := BuildSchedule(cell)
		if berr != nil {
			return CellResult{}, berr
		}
		sc, _, err = scenario.RunSchedule(cfg, sched, cell.Rounds)
		if err != nil {
			return CellResult{}, err
		}
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}

	out := CellResult{
		Cell:             cell,
		FinalHomogeneity: sc.Homogeneity(),
		ReferenceH:       sc.ReferenceHomogeneity(),
		ReliabilityPct:   100 * sc.Reliability(),
		Series:           sc.Result(),
	}
	out.ShapeHeld = out.FinalHomogeneity < out.ReferenceH
	out.Fingerprint = Fingerprint(out.Series)
	return out, nil
}

// RunOpts bounds a grid execution.
type RunOpts struct {
	// Parallelism is the worker budget for concurrent cells; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// MemBudgetBytes bounds concurrent cells by their estimated engine
	// footprint (<= 0: unbounded); the largest cell in the grid is used
	// as the per-job estimate.
	MemBudgetBytes int64
	// PoolEngines recycles engines across equal-size cells.
	PoolEngines bool
	// Progress, when non-nil, receives one line per finished cell (order
	// reflects completion, not expansion; results always fold in
	// expansion order).
	Progress func(line string)
}

// Run expands the spec and executes every cell under the given budget.
// Results come back in expansion order regardless of scheduling, so a
// grid run is deterministic at every parallelism level.
func Run(spec *Spec, opts RunOpts) ([]CellResult, error) {
	cells := spec.Expand()
	results := make([]CellResult, len(cells))
	var maxBytes int64
	for _, c := range cells {
		cfg := scenario.Config{W: c.W, H: c.H, Polystyrene: true, K: c.K}
		if b := cfg.EstimatedFootprintBytes(); b > maxBytes {
			maxBytes = b
		}
	}
	par, _ := runner.Budget{
		Workers:  opts.Parallelism,
		MemBytes: opts.MemBudgetBytes,
		JobBytes: maxBytes,
	}.Split(len(cells))
	var pool *scenario.EnginePool
	if opts.PoolEngines {
		pool = scenario.NewEnginePool()
	}
	defer pool.Drain()
	err := runner.Map(par, len(cells), func(i int) error {
		r, err := RunCell(cells[i], pool)
		if err != nil {
			return fmt.Errorf("experiments: cell %s: %w", cells[i].ID(), err)
		}
		results[i] = r
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("cell %d/%d %s: h=%.4f H=%.4f rel=%.1f%% fp=%016x",
				i+1, len(cells), cells[i].ID(), r.FinalHomogeneity, r.ReferenceH, r.ReliabilityPct, r.Fingerprint))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AuditDeterminism cross-checks the grid's built-in identity invariant:
// cells that differ only in exchange parallelism >= 1 share a seed and a
// schedule, so the engine contract requires their series to be
// byte-identical. Returns the number of multi-cell identity groups
// checked, and an error naming the first divergence. Cells at level 0
// (the legacy sequential engine, a distinct deterministic trajectory)
// form their own group.
func AuditDeterminism(results []CellResult) (groups int, err error) {
	type key struct {
		label      string
		w, h, k    int
		det        string
		rep        int
		sequential bool
	}
	first := make(map[key]*CellResult)
	checked := make(map[key]bool)
	for i := range results {
		r := &results[i]
		k := key{r.Cell.Scenario.Label, r.Cell.W, r.Cell.H, r.Cell.K, r.Cell.Detector, r.Cell.Rep, r.Cell.Exchange == 0}
		prev, ok := first[k]
		if !ok {
			first[k] = r
			continue
		}
		if !checked[k] {
			checked[k] = true
			groups++
		}
		if prev.Fingerprint != r.Fingerprint {
			return groups, fmt.Errorf("experiments: determinism violation: %s (fp %016x) and %s (fp %016x) must be byte-identical",
				prev.Cell.ID(), prev.Fingerprint, r.Cell.ID(), r.Fingerprint)
		}
	}
	return groups, nil
}

// Package failures models the correlated failure domains that motivate
// the paper: overlays whose node placement follows the physical
// infrastructure ("all the virtual machines handling contiguous keys
// hosted in the same rack", Sec. I) inherit that infrastructure's
// failure correlation — a rack PDU, a datacenter power feed, a cloud
// region can all take out a contiguous slab of the topology at once.
//
// A Hierarchy assigns every node a (datacenter, rack) coordinate, either
// correlated with the node's position in the data space (the dangerous
// deployment the paper warns about) or random (the classic assumption).
// Injectors then crash whole domains, and the tests compare how much of
// the shape each placement policy loses.
package failures

import (
	"fmt"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// Placement selects how infrastructure coordinates relate to overlay
// positions.
type Placement int

const (
	// Correlated assigns contiguous regions of the data space to the same
	// rack and datacenter — cross-layer-optimised deployments (data
	// locality, as in Meghdoot or rack-aware schedulers).
	Correlated Placement = iota + 1
	// Scattered assigns infrastructure coordinates uniformly at random,
	// the uncorrelated baseline assumption of classic overlay designs.
	Scattered
)

// Hierarchy maps nodes onto a two-level infrastructure tree:
// datacenters × racks-per-datacenter.
type Hierarchy struct {
	// Datacenters and RacksPerDC describe the tree.
	Datacenters int
	RacksPerDC  int

	placement Placement
	// assignment[id] is the node's global rack index
	// (dc*RacksPerDC + rack).
	assignment map[sim.NodeID]int
}

// NewHierarchy builds a hierarchy for the given initial positions. Under
// Correlated placement, nodes are assigned racks by slicing the first
// coordinate of their position into Datacenters*RacksPerDC contiguous
// bands of the torus width; under Scattered they are assigned uniformly
// at random from rng.
func NewHierarchy(datacenters, racksPerDC int, placement Placement,
	positions []space.Point, width float64, rng *xrand.Rand) (*Hierarchy, error) {
	if datacenters <= 0 || racksPerDC <= 0 {
		return nil, fmt.Errorf("failures: hierarchy needs positive dimensions")
	}
	if placement != Correlated && placement != Scattered {
		return nil, fmt.Errorf("failures: unknown placement %d", placement)
	}
	if placement == Correlated && width <= 0 {
		return nil, fmt.Errorf("failures: correlated placement needs a positive width")
	}
	if placement == Scattered && rng == nil {
		return nil, fmt.Errorf("failures: scattered placement needs an rng")
	}
	h := &Hierarchy{
		Datacenters: datacenters,
		RacksPerDC:  racksPerDC,
		placement:   placement,
		assignment:  make(map[sim.NodeID]int, len(positions)),
	}
	totalRacks := datacenters * racksPerDC
	for i, p := range positions {
		id := sim.NodeID(i)
		switch placement {
		case Correlated:
			band := int(p[0] / width * float64(totalRacks))
			if band >= totalRacks {
				band = totalRacks - 1
			}
			h.assignment[id] = band
		case Scattered:
			h.assignment[id] = rng.Intn(totalRacks)
		}
	}
	return h, nil
}

// Assign places a (possibly late-joining) node explicitly.
func (h *Hierarchy) Assign(id sim.NodeID, datacenter, rack int) error {
	if datacenter < 0 || datacenter >= h.Datacenters || rack < 0 || rack >= h.RacksPerDC {
		return fmt.Errorf("failures: coordinates (%d,%d) out of range", datacenter, rack)
	}
	h.assignment[id] = datacenter*h.RacksPerDC + rack
	return nil
}

// Datacenter returns id's datacenter index (-1 when unknown).
func (h *Hierarchy) Datacenter(id sim.NodeID) int {
	rack, ok := h.assignment[id]
	if !ok {
		return -1
	}
	return rack / h.RacksPerDC
}

// Rack returns id's rack-within-datacenter index (-1 when unknown).
func (h *Hierarchy) Rack(id sim.NodeID) int {
	rack, ok := h.assignment[id]
	if !ok {
		return -1
	}
	return rack % h.RacksPerDC
}

// FailDatacenter crashes every live node of the given datacenter and
// returns how many died.
func (h *Hierarchy) FailDatacenter(e *sim.Engine, dc int) int {
	killed := 0
	for _, id := range e.LiveIDs() {
		if h.Datacenter(id) == dc {
			e.Kill(id)
			killed++
		}
	}
	return killed
}

// FailRack crashes every live node of one rack and returns how many died.
func (h *Hierarchy) FailRack(e *sim.Engine, dc, rack int) int {
	killed := 0
	for _, id := range e.LiveIDs() {
		if h.Datacenter(id) == dc && h.Rack(id) == rack {
			e.Kill(id)
			killed++
		}
	}
	return killed
}

// Members returns the live members of a datacenter.
func (h *Hierarchy) Members(e *sim.Engine, dc int) []sim.NodeID {
	var out []sim.NodeID
	for _, id := range e.LiveIDs() {
		if h.Datacenter(id) == dc {
			out = append(out, id)
		}
	}
	return out
}

// LargestHole measures the damage a failure leaves in the shape: given
// the positions of the *surviving* nodes, it returns the widest
// contiguous fraction of the torus width (bucketed into resolution bands,
// with wrap-around) containing no survivor. A correlated datacenter crash
// leaves one wide hole (≈ the datacenter's slab); the same number of
// scattered crashes leaves only slivers — which is exactly the structural
// difference of the paper's Sec. II-A.
func LargestHole(survivors []space.Point, width float64, resolution int) float64 {
	if resolution <= 0 {
		return 0
	}
	if len(survivors) == 0 {
		return 1
	}
	covered := make([]bool, resolution)
	for _, p := range survivors {
		b := int(p[0] / width * float64(resolution))
		if b >= resolution {
			b = resolution - 1
		}
		if b < 0 {
			b = 0
		}
		covered[b] = true
	}
	// Longest run of uncovered bands on the circle: scan two laps to
	// handle wrap-around, capping the run at resolution.
	longest, run := 0, 0
	for i := 0; i < 2*resolution; i++ {
		if covered[i%resolution] {
			run = 0
			continue
		}
		run++
		if run > longest {
			longest = run
		}
		if longest >= resolution {
			break
		}
	}
	if longest > resolution {
		longest = resolution
	}
	return float64(longest) / float64(resolution)
}

package failures

import (
	"testing"

	"polystyrene/internal/scenario"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

func gridPositions(w, h int) []space.Point { return space.TorusGrid(w, h, 1) }

func TestHierarchyValidation(t *testing.T) {
	pts := gridPositions(8, 4)
	if _, err := NewHierarchy(0, 2, Correlated, pts, 8, nil); err == nil {
		t.Fatal("zero datacenters accepted")
	}
	if _, err := NewHierarchy(2, 2, Placement(9), pts, 8, nil); err == nil {
		t.Fatal("bad placement accepted")
	}
	if _, err := NewHierarchy(2, 2, Correlated, pts, 0, nil); err == nil {
		t.Fatal("correlated without width accepted")
	}
	if _, err := NewHierarchy(2, 2, Scattered, pts, 8, nil); err == nil {
		t.Fatal("scattered without rng accepted")
	}
}

func TestCorrelatedAssignmentIsContiguous(t *testing.T) {
	pts := gridPositions(16, 4)
	h, err := NewHierarchy(2, 2, Correlated, pts, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes in the first quarter of the width belong to dc 0 rack 0, etc.
	for i, p := range pts {
		id := sim.NodeID(i)
		wantBand := int(p[0] / 16 * 4)
		if got := h.Datacenter(id)*2 + h.Rack(id); got != wantBand {
			t.Fatalf("node %d at %v assigned band %d, want %d", id, p, got, wantBand)
		}
	}
}

func TestScatteredAssignmentIsSpread(t *testing.T) {
	pts := gridPositions(16, 8)
	h, err := NewHierarchy(4, 2, Scattered, pts, 16, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := range pts {
		counts[h.Datacenter(sim.NodeID(i))]++
	}
	for dc := 0; dc < 4; dc++ {
		if counts[dc] < 10 {
			t.Fatalf("datacenter %d holds only %d of 128 nodes", dc, counts[dc])
		}
	}
}

func TestAssignAndLookup(t *testing.T) {
	h, err := NewHierarchy(2, 3, Scattered, nil, 0, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Assign(7, 1, 2); err != nil {
		t.Fatal(err)
	}
	if h.Datacenter(7) != 1 || h.Rack(7) != 2 {
		t.Fatalf("lookup = (%d,%d)", h.Datacenter(7), h.Rack(7))
	}
	if err := h.Assign(8, 5, 0); err == nil {
		t.Fatal("out-of-range assign accepted")
	}
	if h.Datacenter(99) != -1 || h.Rack(99) != -1 {
		t.Fatal("unknown node should be (-1,-1)")
	}
}

func TestFailDatacenterAndRack(t *testing.T) {
	sc := scenario.MustNew(scenario.Config{Seed: 3, W: 16, H: 8, Polystyrene: true, SkipMetrics: true})
	h, err := NewHierarchy(2, 2, Correlated, sc.Points, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc.Run(5)
	before := sc.Engine.NumLive()
	killed := h.FailRack(sc.Engine, 0, 0)
	if killed != 32 { // a quarter of the 128 nodes
		t.Fatalf("rack failure killed %d, want 32", killed)
	}
	killed = h.FailDatacenter(sc.Engine, 1)
	if killed != 64 {
		t.Fatalf("datacenter failure killed %d, want 64", killed)
	}
	if got := sc.Engine.NumLive(); got != before-96 {
		t.Fatalf("live = %d", got)
	}
	if members := h.Members(sc.Engine, 1); len(members) != 0 {
		t.Fatalf("dead datacenter still has %d members", len(members))
	}
}

func TestLargestHoleDistinguishesPlacements(t *testing.T) {
	// The structural point of the paper's Sec. II-A: under correlated
	// placement a datacenter failure removes one contiguous slab of the
	// shape (a wide hole); the same number of scattered crashes leaves
	// only slivers.
	pts := gridPositions(32, 8)
	corr, err := NewHierarchy(4, 1, Correlated, pts, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	scat, err := NewHierarchy(4, 1, Scattered, pts, 32, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	survivorsAfterDC2 := func(h *Hierarchy) []space.Point {
		var out []space.Point
		for i := range pts {
			if h.Datacenter(sim.NodeID(i)) != 2 {
				out = append(out, pts[i])
			}
		}
		return out
	}
	corrHole := LargestHole(survivorsAfterDC2(corr), 32, 32)
	scatHole := LargestHole(survivorsAfterDC2(scat), 32, 32)
	if corrHole < 0.2 || corrHole > 0.3 {
		t.Fatalf("correlated hole %v, want ~0.25 (one contiguous quarter)", corrHole)
	}
	if scatHole > corrHole/2 {
		t.Fatalf("scattered hole %v not far below correlated %v", scatHole, corrHole)
	}
}

func TestLargestHoleEdgeCases(t *testing.T) {
	if LargestHole(nil, 10, 8) != 1 {
		t.Fatal("empty survivor set should be one full hole")
	}
	if LargestHole([]space.Point{{1, 1}}, 10, 0) != 0 {
		t.Fatal("zero resolution should be 0")
	}
	// One survivor at band 5 of 10: the hole wraps around and covers the
	// other 9 bands.
	if got := LargestHole([]space.Point{{5, 0}}, 10, 10); got != 0.9 {
		t.Fatalf("wrap-around hole = %v, want 0.9", got)
	}
	// Full coverage: no hole.
	full := make([]space.Point, 10)
	for i := range full {
		full[i] = space.Point{float64(i), 0}
	}
	if got := LargestHole(full, 10, 10); got != 0 {
		t.Fatalf("full coverage hole = %v, want 0", got)
	}
}

func TestDatacenterFailureRecoveryEndToEnd(t *testing.T) {
	// The deployment story end to end: correlated placement, one of two
	// datacenters dies, Polystyrene re-forms the torus.
	sc := scenario.MustNew(scenario.Config{Seed: 5, W: 20, H: 10, Polystyrene: true, K: 6, SkipMetrics: true})
	h, err := NewHierarchy(2, 4, Correlated, sc.Points, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc.Run(12)
	if killed := h.FailDatacenter(sc.Engine, 1); killed != 100 {
		t.Fatalf("killed %d, want 100", killed)
	}
	sc.Run(20)
	if hom, ref := sc.Homogeneity(), sc.ReferenceHomogeneity(); hom >= ref {
		t.Fatalf("shape not recovered after datacenter loss: %v >= %v", hom, ref)
	}
	if rel := sc.Reliability(); rel < 0.95 {
		t.Fatalf("reliability %v with K=6", rel)
	}
}

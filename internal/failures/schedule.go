package failures

import (
	"fmt"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/trace"
)

// This file turns the failure-domain models into replayable availability
// schedules (trace.Schedule): the same correlated outages the injectors
// (FailRack, FailDatacenter) apply live to an engine, expressed as
// pre-computed join/leave scripts that replay through
// scenario.DriveSchedule — so scripted attacks, real traces and the
// paper's catastrophes all share one deterministic code path. Property
// tests pin each generator to direct event-by-event application of its
// injector.

// DomainFailureEvents appends a leave event at `round` for every node in
// [0, n) the hierarchy assigns to datacenter dc — the whole power-feed
// domain — or, when rack >= 0, only to (dc, rack). The returned slice is
// NOT yet canonical; compose events into a Schedule and Canonicalize.
func DomainFailureEvents(events []trace.Event, h *Hierarchy, n, round, dc, rack int) []trace.Event {
	for i := 0; i < n; i++ {
		id := sim.NodeID(i)
		if h.Datacenter(id) != dc {
			continue
		}
		if rack >= 0 && h.Rack(id) != rack {
			continue
		}
		events = append(events, trace.Event{Round: round, Op: trace.OpLeave, Node: i})
	}
	return events
}

// RegionFailureEvents appends a leave event at `round` for every node of
// positions whose first coordinate falls in the contiguous region
// [lo, hi) of the torus width — a correlated geographic outage. Node i is
// positions[i].
func RegionFailureEvents(events []trace.Event, positions []space.Point, lo, hi float64, round int) []trace.Event {
	for i, p := range positions {
		if p[0] >= lo && p[0] < hi {
			events = append(events, trace.Event{Round: round, Op: trace.OpLeave, Node: i})
		}
	}
	return events
}

// DatacenterOutage scripts a full correlated datacenter (power-feed)
// failure: every node the hierarchy assigns to dc leaves at failRound,
// and — when rejoinRound >= 0 — the same number of fresh, empty nodes
// joins at rejoinRound, the recovery half of the paper's evaluation. n is
// the population the hierarchy was built over.
func DatacenterOutage(h *Hierarchy, n, failRound, rejoinRound, dc int) (*trace.Schedule, error) {
	if n < 0 || failRound < 0 {
		return nil, fmt.Errorf("failures: datacenter outage needs non-negative population and fail round (got %d, %d)", n, failRound)
	}
	if dc < 0 || dc >= h.Datacenters {
		return nil, fmt.Errorf("failures: datacenter %d out of range [0,%d)", dc, h.Datacenters)
	}
	if rejoinRound >= 0 && rejoinRound < failRound {
		return nil, fmt.Errorf("failures: rejoin round %d precedes fail round %d", rejoinRound, failRound)
	}
	s := &trace.Schedule{Initial: n}
	s.Events = DomainFailureEvents(s.Events, h, n, failRound, dc, -1)
	if rejoinRound >= 0 {
		killed := len(s.Events)
		for i := 0; i < killed; i++ {
			s.Events = append(s.Events, trace.Event{Round: rejoinRound, Op: trace.OpJoin, Node: n + i})
		}
	}
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// RollingPartition scripts a partition sweeping across the torus: the
// width is cut into `bands` contiguous vertical bands, and band b's nodes
// (by their position in `positions`; node i is positions[i]) leave at
// start + b*stride — rack after rack going dark as the failure front
// rolls through the space. When rejoin >= 0, each band's loss is matched
// by fresh nodes joining `rejoin` rounds after that band fails, modelling
// rolling recovery behind the front.
func RollingPartition(positions []space.Point, width float64, bands, start, stride, rejoin int) (*trace.Schedule, error) {
	if bands <= 0 {
		return nil, fmt.Errorf("failures: rolling partition needs a positive band count (got %d)", bands)
	}
	if width <= 0 {
		return nil, fmt.Errorf("failures: rolling partition needs a positive width (got %v)", width)
	}
	if start < 0 || stride < 0 {
		return nil, fmt.Errorf("failures: rolling partition needs non-negative start and stride (got %d, %d)", start, stride)
	}
	n := len(positions)
	s := &trace.Schedule{Initial: n}
	next := n
	for b := 0; b < bands; b++ {
		lo := width * float64(b) / float64(bands)
		hi := width * float64(b+1) / float64(bands)
		if b == bands-1 {
			hi = width + 1 // last band owns the boundary, clamping rounding spill
		}
		before := len(s.Events)
		s.Events = RegionFailureEvents(s.Events, positions, lo, hi, start+b*stride)
		if rejoin >= 0 {
			// Count the band's kills before appending joins: the loop grows
			// s.Events, so it must not bound itself on the live length.
			killed := len(s.Events) - before
			for i := 0; i < killed; i++ {
				s.Events = append(s.Events, trace.Event{Round: start + b*stride + rejoin, Op: trace.OpJoin, Node: next})
				next++
			}
		}
	}
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	return s, nil
}

package failures

import (
	"testing"

	"polystyrene/internal/shape"
	"polystyrene/internal/sim"
	"polystyrene/internal/trace"
)

// These property tests pin the schedule generators to direct
// event-by-event application of the live injectors: the set of nodes a
// generated schedule crashes must be exactly the set FailDatacenter /
// FailRack / region membership would crash on an engine — same domain
// model, two code paths, one truth.

func corrHierarchy(t *testing.T, w, h, dcs, racks int) *Hierarchy {
	t.Helper()
	pos := shape.Grid(w, h, 1)
	hier, err := NewHierarchy(dcs, racks, Correlated, pos, float64(w), nil)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return hier
}

func leaveSet(s *trace.Schedule, round int) map[int]bool {
	out := make(map[int]bool)
	for _, ev := range s.Events {
		if ev.Op == trace.OpLeave && (round < 0 || ev.Round == round) {
			out[ev.Node] = true
		}
	}
	return out
}

func TestDomainFailureEventsMatchInjector(t *testing.T) {
	const w, h = 24, 12
	n := w * h
	hier := corrHierarchy(t, w, h, 4, 3)

	for _, tc := range []struct{ dc, rack int }{{0, -1}, {2, -1}, {1, 0}, {3, 2}} {
		events := DomainFailureEvents(nil, hier, n, 5, tc.dc, tc.rack)

		// Direct application: a fresh engine, kill through the injector.
		eng := sim.New(1)
		eng.AddNodes(n)
		if tc.rack < 0 {
			hier.FailDatacenter(eng, tc.dc)
		} else {
			hier.FailRack(eng, tc.dc, tc.rack)
		}
		direct := make(map[int]bool)
		for id := 0; id < n; id++ {
			if !eng.Alive(sim.NodeID(id)) {
				direct[id] = true
			}
		}
		eng.Close()

		scripted := make(map[int]bool)
		for _, ev := range events {
			if ev.Round != 5 || ev.Op != trace.OpLeave {
				t.Fatalf("dc %d rack %d: unexpected event %+v", tc.dc, tc.rack, ev)
			}
			if scripted[ev.Node] {
				t.Fatalf("dc %d rack %d: node %d scripted twice", tc.dc, tc.rack, ev.Node)
			}
			scripted[ev.Node] = true
		}
		if len(scripted) != len(direct) {
			t.Fatalf("dc %d rack %d: schedule crashes %d nodes, injector %d", tc.dc, tc.rack, len(scripted), len(direct))
		}
		for id := range direct {
			if !scripted[id] {
				t.Errorf("dc %d rack %d: injector kills node %d, schedule does not", tc.dc, tc.rack, id)
			}
		}
	}
}

func TestDatacenterOutageSchedule(t *testing.T) {
	const w, h = 16, 8
	n := w * h
	hier := corrHierarchy(t, w, h, 4, 4)
	s, err := DatacenterOutage(hier, n, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every member of dc 1 leaves at round 10, nobody else.
	killed := leaveSet(s, 10)
	for id := 0; id < n; id++ {
		want := hier.Datacenter(sim.NodeID(id)) == 1
		if killed[id] != want {
			t.Errorf("node %d (dc %d): killed=%v want %v", id, hier.Datacenter(sim.NodeID(id)), killed[id], want)
		}
	}
	// Matched joins at round 20, sequential from n.
	joins := 0
	for _, ev := range s.Events {
		if ev.Op == trace.OpJoin {
			if ev.Round != 20 {
				t.Errorf("join at round %d, want 20", ev.Round)
			}
			joins++
		}
	}
	if joins != len(killed) {
		t.Errorf("%d rejoins for %d kills", joins, len(killed))
	}
	// No-rejoin variant.
	s2, err := DatacenterOutage(hier, n, 10, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s2.Events {
		if ev.Op == trace.OpJoin {
			t.Fatal("rejoinRound < 0 must not script joins")
		}
	}
	if _, err := DatacenterOutage(hier, n, 10, 5, 1); err == nil {
		t.Error("rejoin before fail must be rejected")
	}
	if _, err := DatacenterOutage(hier, n, 10, 20, 7); err == nil {
		t.Error("out-of-range datacenter must be rejected")
	}
}

func TestRollingPartitionSchedule(t *testing.T) {
	const w, h = 20, 10
	pos := shape.Grid(w, h, 1)
	const bands, start, stride = 4, 6, 3
	s, err := RollingPartition(pos, float64(w), bands, start, stride, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Every node leaves exactly once, at the round of its position band —
	// the same banding RegionFailureEvents applies directly.
	all := leaveSet(s, -1)
	if len(all) != w*h {
		t.Fatalf("partition sweep crashed %d of %d nodes", len(all), w*h)
	}
	for b := 0; b < bands; b++ {
		lo := float64(w) * float64(b) / bands
		hi := float64(w) * float64(b+1) / bands
		if b == bands-1 {
			hi = float64(w) + 1
		}
		direct := make(map[int]bool)
		for _, ev := range RegionFailureEvents(nil, pos, lo, hi, start+b*stride) {
			direct[ev.Node] = true
		}
		got := leaveSet(s, start+b*stride)
		if len(got) != len(direct) {
			t.Fatalf("band %d: schedule crashes %d nodes, direct region application %d", b, len(got), len(direct))
		}
		for id := range direct {
			if !got[id] {
				t.Errorf("band %d: node %d missing from schedule", b, id)
			}
		}
	}
	// With rejoin, each band's loss is matched `rejoin` rounds later.
	const rejoin = 2
	s2, err := RollingPartition(pos, float64(w), bands, start, stride, rejoin)
	if err != nil {
		t.Fatal(err)
	}
	joinsAt := make(map[int]int)
	for _, ev := range s2.Events {
		if ev.Op == trace.OpJoin {
			joinsAt[ev.Round]++
		}
	}
	for b := 0; b < bands; b++ {
		killRound := start + b*stride
		kills := len(leaveSet(s2, killRound))
		if joinsAt[killRound+rejoin] != kills {
			t.Errorf("band %d: %d kills at %d but %d joins at %d", b, kills, killRound, joinsAt[killRound+rejoin], killRound+rejoin)
		}
	}
	if _, err := RollingPartition(pos, float64(w), 0, 1, 1, -1); err == nil {
		t.Error("zero bands must be rejected")
	}
	if _, err := RollingPartition(pos, -3, 2, 1, 1, -1); err == nil {
		t.Error("negative width must be rejected")
	}
}

// Package faultio is a deterministic fault-injecting filesystem shim
// over ckpt.FS, for property tests that must prove crash safety rather
// than assume it.
//
// Every mutating operation — MkdirAll, Create, each Write chunk, Sync,
// Close, Rename, Remove, SyncDir — consumes one slot of a global op
// counter. Faults are keyed on that counter, which makes the fault
// space enumerable: run the workload once with no faults, read Ops(),
// and every index in [0, Ops()) is a distinct crash point.
//
// Two fault styles:
//
//   - CrashAt n: the n-th mutating op fails with ErrCrash and the shim
//     latches a crashed state — every later operation (reads included)
//     fails too, modelling process death. A crash landing on a Write
//     chunk first writes a seed-determined prefix of that chunk, so
//     torn writes are part of the enumeration, not a separate mode.
//   - TransientOps n: the first n mutating ops fail with a retryable
//     error (IsTransient-positive), exercising the manager's
//     retry-with-backoff path.
//
// Everything is driven by Config.Seed through a splitmix64 stream, so
// a failing crash point reproduces bit-identically from its index.
package faultio

import (
	"errors"
	"fmt"

	"polystyrene/internal/ckpt"
)

// ErrCrash marks a simulated crash. It is deliberately not transient:
// a dead process does not retry.
var ErrCrash = errors.New("faultio: simulated crash")

// NoCrash disables the crash point.
const NoCrash = -1

// Config selects the faults to inject.
type Config struct {
	// Seed drives torn-write prefix lengths deterministically.
	Seed uint64
	// CrashAt is the 0-based mutating-op index that crashes, or
	// NoCrash (-1). The zero value crashes at the very first op, so
	// always set it explicitly.
	CrashAt int
	// TransientOps makes the first N mutating ops fail retryably.
	TransientOps int
	// ChunkBytes splits each Write into chunks of at most this many
	// bytes, each consuming one op slot — this is what turns byte
	// offsets inside a large envelope write into enumerable crash
	// points. 0 leaves writes whole.
	ChunkBytes int
}

// FS implements ckpt.FS with injected faults. Not safe for concurrent
// use: the op counter is the enumeration axis and must stay ordered.
type FS struct {
	inner   ckpt.FS
	cfg     Config
	rng     uint64
	ops     int
	crashed bool
}

// New wraps inner (usually ckpt.OS over a test temp dir) with faults.
func New(inner ckpt.FS, cfg Config) *FS {
	return &FS{inner: inner, cfg: cfg, rng: cfg.Seed}
}

// Ops reports how many mutating-op slots have been consumed. Run the
// workload once with CrashAt: NoCrash to size the crash-point sweep.
func (f *FS) Ops() int { return f.ops }

// Crashed reports whether the crash point has fired.
func (f *FS) Crashed() bool { return f.crashed }

func (f *FS) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gate consumes one op slot and returns the fault for it, if any.
func (f *FS) gate(op string) error {
	if f.crashed {
		return fmt.Errorf("faultio: %s after crash: %w", op, ErrCrash)
	}
	idx := f.ops
	f.ops++
	if f.cfg.CrashAt >= 0 && idx == f.cfg.CrashAt {
		f.crashed = true
		return fmt.Errorf("faultio: crash at op %d (%s): %w", idx, op, ErrCrash)
	}
	if idx < f.cfg.TransientOps {
		return transientError{op: op, idx: idx}
	}
	return nil
}

func (f *FS) readGate(op string) error {
	if f.crashed {
		return fmt.Errorf("faultio: %s after crash: %w", op, ErrCrash)
	}
	return nil
}

func (f *FS) MkdirAll(dir string) error {
	if err := f.gate("mkdir"); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FS) Create(path string) (ckpt.File, error) {
	if err := f.gate("create"); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Rename(oldPath, newPath string) error {
	if err := f.gate("rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FS) Remove(path string) error {
	if err := f.gate("remove"); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	if err := f.readGate("readdir"); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	if err := f.readGate("readfile"); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.gate("syncdir"); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

type file struct {
	fs    *FS
	inner ckpt.File
}

// Write consumes one op slot per chunk. A crash landing on a chunk
// tears it: a seed-determined prefix reaches the inner file before the
// error, so recovery sees a partially written region, not a clean cut
// at a chunk boundary.
func (w *file) Write(p []byte) (int, error) {
	chunk := w.fs.cfg.ChunkBytes
	if chunk <= 0 {
		chunk = len(p)
	}
	total := 0
	for len(p) > 0 {
		n := chunk
		if n > len(p) {
			n = len(p)
		}
		wasCrashed := w.fs.crashed
		if err := w.fs.gate("write"); err != nil {
			// Tear only the chunk that fired the crash; a process
			// that is already dead writes nothing.
			if !wasCrashed && w.fs.crashed {
				torn := int(w.fs.next() % uint64(n+1))
				m, _ := w.inner.Write(p[:torn])
				total += m
			}
			return total, err
		}
		m, err := w.inner.Write(p[:n])
		total += m
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

func (w *file) Sync() error {
	if err := w.fs.gate("fsync"); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close always releases the inner handle — the kernel closes the fds
// of a dead process — but the reported error still honors the fault
// schedule, so a crash at Close leaves the temp file unrenamed.
func (w *file) Close() error {
	gateErr := w.fs.gate("close")
	closeErr := w.inner.Close()
	if gateErr != nil {
		return gateErr
	}
	return closeErr
}

type transientError struct {
	op  string
	idx int
}

func (e transientError) Error() string {
	return fmt.Sprintf("faultio: transient %s failure at op %d", e.op, e.idx)
}

func (e transientError) Transient() bool { return true }

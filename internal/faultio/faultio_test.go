package faultio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/snap"
)

// workload performs one fixed sequence of mutating ops through fs and
// returns the first error.
func workload(fs ckpt.FS, dir string) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	path := filepath.Join(dir, "a.snap")
	f, err := fs.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("0123456789abcdef0123456789abcdef")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(path+".tmp", path); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestOpCountingIsDeterministic(t *testing.T) {
	count := func(chunk int) int {
		fs := New(ckpt.OS, Config{CrashAt: NoCrash, ChunkBytes: chunk})
		if err := workload(fs, t.TempDir()); err != nil {
			t.Fatalf("fault-free workload failed: %v", err)
		}
		return fs.Ops()
	}
	// mkdir + create + write(s) + sync + close + rename + syncdir.
	if got := count(0); got != 7 {
		t.Fatalf("unchunked ops = %d, want 7", got)
	}
	// 32-byte payload in 8-byte chunks: 4 write ops instead of 1.
	if got := count(8); got != 10 {
		t.Fatalf("chunked ops = %d, want 10", got)
	}
	if a, b := count(8), count(8); a != b {
		t.Fatalf("op count not deterministic: %d vs %d", a, b)
	}
}

func TestEveryCrashPointFailsAndLatches(t *testing.T) {
	probe := New(ckpt.OS, Config{CrashAt: NoCrash, ChunkBytes: 8})
	if err := workload(probe, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	for at := 0; at < total; at++ {
		fs := New(ckpt.OS, Config{Seed: uint64(at), CrashAt: at, ChunkBytes: 8})
		dir := t.TempDir()
		err := workload(fs, dir)
		if !errors.Is(err, ErrCrash) {
			t.Fatalf("crash point %d: err = %v", at, err)
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d did not latch", at)
		}
		// Everything after the crash fails, reads included.
		if err := fs.MkdirAll(dir); !errors.Is(err, ErrCrash) {
			t.Fatalf("post-crash mkdir: %v", err)
		}
		if _, err := fs.ReadFile(filepath.Join(dir, "a.snap")); !errors.Is(err, ErrCrash) {
			t.Fatalf("post-crash read: %v", err)
		}
	}
}

func TestTornWriteLeavesPrefixOnly(t *testing.T) {
	// Ops: mkdir=0, create=1, first write chunk=2 — so CrashAt=3
	// lands on the second write chunk and tears it.
	dir := t.TempDir()
	fs := New(ckpt.OS, Config{Seed: 42, CrashAt: 3, ChunkBytes: 8})
	err := workload(fs, dir)
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("err = %v", err)
	}
	data, rerr := os.ReadFile(filepath.Join(dir, "a.snap.tmp"))
	if rerr != nil {
		t.Fatalf("reading torn temp file: %v", rerr)
	}
	// One full chunk landed, then up to 8 torn bytes of the second.
	if len(data) < 8 || len(data) > 16 {
		t.Fatalf("torn file has %d bytes, want [8,16]", len(data))
	}
	want := "0123456789abcdef"
	if string(data) != want[:len(data)] {
		t.Fatalf("torn file %q is not a prefix of the payload", data)
	}
	// Same seed, same tear.
	dir2 := t.TempDir()
	fs2 := New(ckpt.OS, Config{Seed: 42, CrashAt: 3, ChunkBytes: 8})
	_ = workload(fs2, dir2)
	data2, _ := os.ReadFile(filepath.Join(dir2, "a.snap.tmp"))
	if string(data2) != string(data) {
		t.Fatalf("tear not deterministic: %q vs %q", data, data2)
	}
}

func TestTransientOpsAreRetryable(t *testing.T) {
	fs := New(ckpt.OS, Config{CrashAt: NoCrash, TransientOps: 2})
	err := fs.MkdirAll(t.TempDir())
	if err == nil || !ckpt.IsTransient(err) {
		t.Fatalf("first op: %v", err)
	}
	if errors.Is(err, ErrCrash) {
		t.Fatal("transient error claims to be a crash")
	}
}

func TestCrashIsNotTransient(t *testing.T) {
	fs := New(ckpt.OS, Config{CrashAt: 0})
	err := fs.MkdirAll(t.TempDir())
	if !errors.Is(err, ErrCrash) || ckpt.IsTransient(err) {
		t.Fatalf("crash error misclassified: %v", err)
	}
}

// TestManagerSurvivesEveryCrashPoint is the property at the heart of
// this package: enumerate every mutating op in a two-generation save
// sequence, crash at each one, and require that recovery over the real
// directory still yields a verified generation — with data no older
// than the generation that had already been made durable.
func TestManagerSurvivesEveryCrashPoint(t *testing.T) {
	save := func(m *ckpt.Manager, round int, body string) error {
		_, err := m.Save(round, func(w io.Writer) error {
			return snap.WriteEnvelope(w, "blob", []byte(body))
		})
		return err
	}
	// Probe run: count ops for save(1) + save(2) after a durable save(0).
	countOps := func() int {
		dir := t.TempDir()
		seedM, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := save(seedM, 0, "gen0"); err != nil {
			t.Fatal(err)
		}
		fs := New(ckpt.OS, Config{CrashAt: NoCrash, ChunkBytes: 8})
		m, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		if err := save(m, 1, "gen1"); err != nil {
			t.Fatal(err)
		}
		if err := save(m, 2, "gen2"); err != nil {
			t.Fatal(err)
		}
		return fs.Ops()
	}
	total := countOps()
	if total < 10 {
		t.Fatalf("implausible op count %d", total)
	}
	for at := 0; at < total; at++ {
		dir := t.TempDir()
		seedM, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := save(seedM, 0, "gen0"); err != nil {
			t.Fatal(err)
		}
		fs := New(ckpt.OS, Config{Seed: uint64(at), CrashAt: at, ChunkBytes: 8})
		m, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2, FS: fs, Sleep: func(d time.Duration) {}})
		if err != nil {
			// NewManager itself crashed (MkdirAll is op 0): the
			// durable state is untouched.
			if !errors.Is(err, ErrCrash) {
				t.Fatalf("crash %d: NewManager: %v", at, err)
			}
		} else {
			err1 := save(m, 1, "gen1")
			if err1 == nil {
				if err2 := save(m, 2, "gen2"); err2 != nil && !errors.Is(err2, ErrCrash) {
					t.Fatalf("crash %d: save(2): %v", at, err2)
				}
			} else if !errors.Is(err1, ErrCrash) {
				t.Fatalf("crash %d: save(1): %v", at, err1)
			}
		}
		// Recovery: a fresh process over the same directory.
		rec, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2})
		if err != nil {
			t.Fatalf("crash %d: recovery NewManager: %v", at, err)
		}
		g, body, err := rec.OpenLatestGood()
		if err != nil {
			t.Fatalf("crash %d: no good generation: %v", at, err)
		}
		if g.Round < 0 || g.Round > 2 {
			t.Fatalf("crash %d: recovered impossible round %d", at, g.Round)
		}
		want := map[int]string{0: "gen0", 1: "gen1", 2: "gen2"}[g.Round]
		inner, derr := snap.Decode("blob", body)
		if derr != nil {
			t.Fatalf("crash %d: decoding recovered envelope: %v", at, derr)
		}
		if string(inner) != want {
			t.Fatalf("crash %d: recovered round %d body %q, want %q", at, g.Round, inner, want)
		}
	}
}

// FuzzCrashPoint fuzzes the (seed, crash point, chunk size) space of a
// save-then-crash sequence: whatever the tear looks like, recovery must
// return a verified generation whose body is one of the states that was
// actually saved.
func FuzzCrashPoint(f *testing.F) {
	f.Add(uint64(1), 3, 8)
	f.Add(uint64(7), 0, 4)
	f.Add(uint64(1234567), 25, 16)
	f.Fuzz(func(t *testing.T, seed uint64, crashAt int, chunk int) {
		if crashAt < 0 {
			crashAt = -crashAt
		}
		crashAt %= 64
		if chunk < 0 {
			chunk = -chunk
		}
		chunk = 1 + chunk%32
		dir := t.TempDir()
		seedM, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seedM.Save(0, func(w io.Writer) error {
			return snap.WriteEnvelope(w, "blob", []byte("gen0"))
		}); err != nil {
			t.Fatal(err)
		}
		fs := New(ckpt.OS, Config{Seed: seed, CrashAt: crashAt, ChunkBytes: chunk})
		if m, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2, FS: fs,
			Sleep: func(time.Duration) {}}); err == nil {
			_, _ = m.Save(1, func(w io.Writer) error {
				return snap.WriteEnvelope(w, "blob", []byte("gen1"))
			})
		}
		rec, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: "blob", Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		g, body, err := rec.OpenLatestGood()
		if err != nil {
			t.Fatalf("seed=%d crashAt=%d chunk=%d: no good generation: %v", seed, crashAt, chunk, err)
		}
		want := map[int]string{0: "gen0", 1: "gen1"}[g.Round]
		inner, derr := snap.Decode("blob", body)
		if derr != nil {
			t.Fatalf("decoding recovered envelope: %v", derr)
		}
		if string(inner) != want {
			t.Fatalf("recovered round %d body %q", g.Round, inner)
		}
	})
}

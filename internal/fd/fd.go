// Package fd provides the failure detectors Polystyrene consults in its
// recovery and backup steps (the `failed` variable of the paper's
// pseudocode, Sec. III-A).
//
// The paper assumes "a (possibly imperfect) failure detector", realised in
// practice by pings or heartbeats. We provide a perfect detector (what the
// published evaluation uses, since PeerSim exposes ground-truth liveness)
// and two imperfect ones used by the robustness tests and ablation benches:
// a fixed-delay detector and a probabilistic detector in which each
// observer independently discovers each crash with some per-query
// probability. All detectors are eventually complete: a crash is
// eventually reported to every observer, so ghosts are always reactivated.
// None produces false positives; the crash-stop model makes completeness
// the interesting axis.
//
// Detectors are queried from inside protocol steps. Under the engine's
// intra-round exchange batching (sim.Batched), steps of disjoint node
// pairs run concurrently, so a detector consulted by a batched layer must
// declare itself safe for that via ParallelSafe: its answers must be
// deterministic regardless of query order within a round, and concurrent
// queries must be race-free. Perfect (stateless) and Delayed (first-seen
// round recording is idempotent within a round, guarded by a mutex)
// qualify; Probabilistic does not — its answers consume a shared random
// stream, so query order changes results — and the Polystyrene layer
// falls back to sequential stepping when it is configured.
package fd

import (
	"sync"

	"polystyrene/internal/sim"
	"polystyrene/internal/xrand"
)

// Detector answers liveness queries. Failed reports whether, in the
// observer's current knowledge, the target node has crashed.
type Detector interface {
	Failed(e *sim.Engine, observer, target sim.NodeID) bool
}

// ParallelSafe is the opt-in marker a Detector implements to allow the
// layer consulting it to run under the engine's batch scheduler. It must
// only return true when Failed is safe for concurrent calls and its
// answers do not depend on the order of queries within a round.
type ParallelSafe interface {
	ParallelSafe() bool
}

// Perfect reports crashes immediately and accurately: it simply consults
// the engine's ground truth. This matches the published experiments.
type Perfect struct{}

var _ Detector = Perfect{}

// Failed implements Detector.
func (Perfect) Failed(e *sim.Engine, _, target sim.NodeID) bool {
	return !e.Alive(target)
}

// ParallelSafe implements the batching opt-in: ground-truth reads are
// stateless.
func (Perfect) ParallelSafe() bool { return true }

// Delayed reports a crash only after it has been observable for Delay
// rounds, modelling heartbeat timeouts. With Delay == 0 it behaves like
// Perfect.
type Delayed struct {
	// Delay is the number of rounds between a crash becoming visible and
	// the detector reporting it.
	Delay int

	// mu guards deathRound: batched layers query concurrently. Whichever
	// query observes a crash first records the current round — the same
	// value any competing query would record — so answers stay
	// deterministic at every worker count.
	mu         sync.Mutex
	deathRound map[sim.NodeID]int
}

var _ Detector = (*Delayed)(nil)

// NewDelayed returns a detector with the given detection delay in rounds.
func NewDelayed(delay int) *Delayed {
	if delay < 0 {
		delay = 0
	}
	return &Delayed{Delay: delay, deathRound: make(map[sim.NodeID]int)}
}

// Failed implements Detector.
func (d *Delayed) Failed(e *sim.Engine, _, target sim.NodeID) bool {
	if e.Alive(target) {
		return false
	}
	d.mu.Lock()
	first, ok := d.deathRound[target]
	if !ok {
		first = e.Round()
		d.deathRound[target] = first
	}
	d.mu.Unlock()
	return e.Round() >= first+d.Delay
}

// ParallelSafe implements the batching opt-in: see the mu field.
func (d *Delayed) ParallelSafe() bool { return true }

// Probabilistic lets every observer discover each crash independently: a
// query against a crashed node succeeds with probability P, and once an
// observer has detected a crash the answer stays positive (strong
// completeness in expectation after 1/P queries).
type Probabilistic struct {
	// P is the per-query detection probability, in (0, 1].
	P float64

	rng      *xrand.Rand
	detected map[pair]bool
}

type pair struct{ observer, target sim.NodeID }

var _ Detector = (*Probabilistic)(nil)

// NewProbabilistic returns a probabilistic detector with per-query
// detection probability p, drawing randomness from rng.
func NewProbabilistic(p float64, rng *xrand.Rand) *Probabilistic {
	if p <= 0 || p > 1 {
		panic("fd: NewProbabilistic requires p in (0,1]")
	}
	return &Probabilistic{P: p, rng: rng, detected: make(map[pair]bool)}
}

// Failed implements Detector.
func (d *Probabilistic) Failed(e *sim.Engine, observer, target sim.NodeID) bool {
	if e.Alive(target) {
		return false
	}
	k := pair{observer, target}
	if d.detected[k] {
		return true
	}
	if d.rng.Bool(d.P) {
		d.detected[k] = true
		return true
	}
	return false
}

package fd

import (
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/xrand"
)

type noop struct{}

func (noop) Name() string                     { return "noop" }
func (noop) InitNode(*sim.Engine, sim.NodeID) {}
func (noop) Step(*sim.Engine, sim.NodeID)     {}

func newEngine(n int) *sim.Engine {
	e := sim.New(1, noop{})
	e.AddNodes(n)
	return e
}

func TestPerfect(t *testing.T) {
	e := newEngine(3)
	var d Perfect
	if d.Failed(e, 0, 1) {
		t.Fatal("perfect FD reported a live node as failed")
	}
	e.Kill(1)
	if !d.Failed(e, 0, 1) {
		t.Fatal("perfect FD missed a crash")
	}
	if !d.Failed(e, 0, sim.None) {
		t.Fatal("unknown nodes should read as failed")
	}
}

func TestDelayed(t *testing.T) {
	e := newEngine(2)
	d := NewDelayed(3)
	e.Kill(1)
	// Crash observed first at round 0; must be hidden until round 3.
	for round := 0; round < 3; round++ {
		if d.Failed(e, 0, 1) {
			t.Fatalf("delayed FD reported crash at round %d, delay 3", e.Round())
		}
		e.RunRounds(1)
	}
	if !d.Failed(e, 0, 1) {
		t.Fatal("delayed FD never reported the crash")
	}
	if d.Failed(e, 0, 0) {
		t.Fatal("delayed FD reported a live node")
	}
}

func TestDelayedZeroActsPerfect(t *testing.T) {
	e := newEngine(2)
	d := NewDelayed(0)
	e.Kill(1)
	if !d.Failed(e, 0, 1) {
		t.Fatal("zero-delay FD should report immediately")
	}
}

func TestDelayedNegativeClamped(t *testing.T) {
	if d := NewDelayed(-5); d.Delay != 0 {
		t.Fatalf("negative delay not clamped: %d", d.Delay)
	}
}

func TestProbabilisticNeverFalsePositive(t *testing.T) {
	e := newEngine(2)
	d := NewProbabilistic(1, xrand.New(1))
	for i := 0; i < 100; i++ {
		if d.Failed(e, 0, 1) {
			t.Fatal("probabilistic FD reported a live node")
		}
	}
}

func TestProbabilisticSticky(t *testing.T) {
	e := newEngine(2)
	d := NewProbabilistic(0.5, xrand.New(2))
	e.Kill(1)
	// Query until first detection, then it must stay detected.
	detectedAt := -1
	for i := 0; i < 1000; i++ {
		if d.Failed(e, 0, 1) {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("crash never detected with p=0.5 over 1000 queries")
	}
	for i := 0; i < 50; i++ {
		if !d.Failed(e, 0, 1) {
			t.Fatal("detection did not stick")
		}
	}
}

func TestProbabilisticPerObserver(t *testing.T) {
	e := newEngine(10)
	d := NewProbabilistic(0.5, xrand.New(3))
	e.Kill(9)
	// Different observers detect independently; with p=0.5 and 8 observers
	// at least one should detect on the first query and it must not leak
	// to others' state incorrectly (we only check detection counts are
	// plausible: not all, not none, across many trials).
	detections := 0
	for obs := sim.NodeID(0); obs < 9; obs++ {
		if d.Failed(e, obs, 9) {
			detections++
		}
	}
	if detections == 0 || detections == 9 {
		t.Logf("detections on first query: %d of 9 (possible but unlikely)", detections)
	}
	// Eventually complete for every observer.
	for obs := sim.NodeID(0); obs < 9; obs++ {
		ok := false
		for i := 0; i < 1000; i++ {
			if d.Failed(e, obs, 9) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("observer %d never detected the crash", obs)
		}
	}
}

func TestProbabilisticDetectionRate(t *testing.T) {
	e := newEngine(2)
	e.Kill(1)
	const p, trials = 0.25, 10000
	hits := 0
	for i := 0; i < trials; i++ {
		d := NewProbabilistic(p, xrand.New(uint64(i)))
		if d.Failed(e, 0, 1) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < p-0.02 || rate > p+0.02 {
		t.Fatalf("first-query detection rate %v, want ~%v", rate, p)
	}
}

func TestProbabilisticPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v did not panic", p)
				}
			}()
			NewProbabilistic(p, xrand.New(1))
		}()
	}
}

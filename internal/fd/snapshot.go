package fd

import (
	"sort"

	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
	"polystyrene/internal/xrand"
)

// Snapshot support. Detectors are not engine layers — they live inside
// the Polystyrene layer's configuration — so they implement the same
// sim.Snapshotter contract and the core layer embeds their section in its
// own. Perfect is stateless and deliberately implements nothing.

var _ sim.Snapshotter = (*Delayed)(nil)
var _ sim.Snapshotter = (*Probabilistic)(nil)

// SnapshotState implements sim.Snapshotter: the first-observed death
// rounds, in sorted node order (map iteration order must never leak into
// a snapshot).
func (d *Delayed) SnapshotState(w *snap.Writer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]sim.NodeID, 0, len(d.deathRound))
	for id := range d.deathRound {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Len(len(ids))
	for _, id := range ids {
		w.Int(int(id))
		w.Int(d.deathRound[id])
	}
}

// RestoreState implements sim.Snapshotter.
func (d *Delayed) RestoreState(r *snap.Reader) error {
	n := r.Len(16)
	m := make(map[sim.NodeID]int, n)
	for i := 0; i < n; i++ {
		id := sim.NodeID(r.Int())
		m[id] = r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	d.deathRound = m
	d.mu.Unlock()
	return nil
}

// SnapshotState implements sim.Snapshotter: the private random stream and
// the per-(observer, target) detection set, sorted.
func (d *Probabilistic) SnapshotState(w *snap.Writer) {
	var st [4]uint64
	if d.rng != nil {
		st = d.rng.State()
	}
	for _, s := range st {
		w.U64(s)
	}
	ks := make([]pair, 0, len(d.detected))
	for k := range d.detected {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].observer != ks[j].observer {
			return ks[i].observer < ks[j].observer
		}
		return ks[i].target < ks[j].target
	})
	w.Len(len(ks))
	for _, k := range ks {
		w.Int(int(k.observer))
		w.Int(int(k.target))
	}
}

// RestoreState implements sim.Snapshotter.
func (d *Probabilistic) RestoreState(r *snap.Reader) error {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	n := r.Len(16)
	m := make(map[pair]bool, n)
	for i := 0; i < n; i++ {
		k := pair{observer: sim.NodeID(r.Int()), target: sim.NodeID(r.Int())}
		m[k] = true
	}
	if err := r.Err(); err != nil {
		return err
	}
	if d.rng == nil {
		d.rng = xrand.New(0)
	}
	d.rng.SetState(st)
	d.detected = m
	return nil
}

// Package genset provides the generation-stamped membership set over
// dense integer IDs that the protocol layers use instead of per-call maps:
// starting a fresh, empty set is O(1) (bump a generation counter), and
// insert/lookup are single array accesses. T-Man's view merges and
// Polystyrene's point-set unions, backup deltas and target exclusion all
// pool one of these per worker slot (one slot per engine exchange worker,
// slot 0 under the sequential engine — the same discipline as
// topk.Scratch), and the engine's batch matcher uses one for the open
// batch's claimed-node set.
package genset

// Set is a reusable membership set over dense non-negative IDs (NodeIDs,
// PointIDs). The zero value is ready to use. Not safe for concurrent use.
type Set struct {
	stamp []uint32
	gen   uint32
}

// Next sizes the set to hold IDs in [0, n), starts a new (empty)
// generation and returns the stamp array together with the generation
// token: callers insert with stamp[id] = gen and test membership with
// stamp[id] == gen. The returned slice is only valid until the next call
// to Next, which may grow it.
func (s *Set) Next(n int) (stamp []uint32, gen uint32) {
	if len(s.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.gen++
	if s.gen == 0 { // wrapped: stale stamps could collide, reset them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	return s.stamp, s.gen
}

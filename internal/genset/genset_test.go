package genset

import "testing"

func TestNextStartsEmpty(t *testing.T) {
	var s Set
	stamp, gen := s.Next(8)
	if len(stamp) != 8 {
		t.Fatalf("stamp len %d, want 8", len(stamp))
	}
	for id, v := range stamp {
		if v == gen {
			t.Fatalf("fresh set already contains %d", id)
		}
	}
	stamp[3] = gen
	if stamp[3] != gen {
		t.Fatal("insert lost")
	}
	// Next generation: previous members are gone.
	stamp2, gen2 := s.Next(8)
	if gen2 == gen {
		t.Fatal("generation did not advance")
	}
	if stamp2[3] == gen2 {
		t.Fatal("stale member survived into the new generation")
	}
}

func TestNextGrowsAndKeepsGeneration(t *testing.T) {
	var s Set
	stamp, gen := s.Next(2)
	stamp[1] = gen
	// Growing within the same logical usage pattern: a later, larger Next
	// must still present an empty set.
	stamp, gen = s.Next(100)
	if len(stamp) != 100 {
		t.Fatalf("stamp len %d, want 100", len(stamp))
	}
	for id, v := range stamp {
		if v == gen {
			t.Fatalf("grown set already contains %d", id)
		}
	}
}

func TestGenerationWrapResets(t *testing.T) {
	var s Set
	stamp, _ := s.Next(4)
	stamp[0] = ^uint32(0) // a stale stamp that would collide after wrap
	s.gen = ^uint32(0)    // force the next increment to wrap
	stamp, gen := s.Next(4)
	if gen != 1 {
		t.Fatalf("wrapped generation = %d, want 1", gen)
	}
	for id, v := range stamp {
		if v == gen {
			t.Fatalf("post-wrap set contains %d (stale stamps not reset)", id)
		}
	}
}

// Package kvstore implements a CAN-style key-value store on top of the
// overlay — the storage application class the paper motivates Polystyrene
// with (CAN, Pastry, PAST: "overlay nodes are used to map a virtual data
// space, be it for routing, indexing or storage", Sec. I).
//
// Every key hashes to a point of the data space; the node whose virtual
// position is closest to that point owns the key and serves reads. Each
// entry is also replicated to R random nodes. A lightweight anti-entropy
// step runs every round: replica holders check who currently owns each of
// their entries and push missing entries to the owner, so ownership
// follows the overlay as nodes crash or — under Polystyrene — migrate
// across the shape.
//
// The store is where shape preservation pays off concretely: after a
// regional catastrophe, key ownership under Polystyrene returns to nodes
// sitting *near* the key's point, so request locality and load balance
// recover; over a collapsed shape the same keys are owned by far-away
// survivors forever.
package kvstore

import (
	"fmt"
	"hash/fnv"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// DefaultReplicas is the number of replica holders per entry.
const DefaultReplicas = 3

// PositionFunc resolves the current virtual position of a node.
type PositionFunc func(id sim.NodeID) space.Point

// KeyMapper hashes a key to its home point in the data space.
type KeyMapper func(key string) space.Point

// TorusKeyMapper returns a KeyMapper hashing keys uniformly onto the given
// torus using FNV-64.
func TorusKeyMapper(t space.Torus) KeyMapper {
	return func(key string) space.Point {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		sum := h.Sum64()
		p := make(space.Point, t.Dim())
		for i := range p {
			// 21 bits of hash per coordinate is ample for simulation.
			bits := (sum >> (21 * uint(i))) & ((1 << 21) - 1)
			p[i] = float64(bits) / (1 << 21) * t.Width(i)
		}
		return p
	}
}

// InterningKeyMapper wraps m so that every mapped point is registered in
// the interner and the canonical interned instance is returned: repeated
// mappings of one key share a single Point (and dense space.PointID via
// Interner.Lookup), so stores and overlays can key per-point state by
// integer identity instead of hashing coordinates again.
func InterningKeyMapper(in *space.Interner, m KeyMapper) KeyMapper {
	return func(key string) space.Point {
		return in.PointOf(in.Intern(m(key)))
	}
}

// Config parameterises the store. All reference fields are required.
type Config struct {
	// Space supplies the metric.
	Space space.Space
	// Position resolves node positions (the Polystyrene projection, or
	// fixed positions for a baseline overlay).
	Position PositionFunc
	// Map hashes keys to points.
	Map KeyMapper
	// Replicas is R, the number of replica holders per entry
	// (0 means DefaultReplicas).
	Replicas int
}

// entry is one stored record.
type entry struct {
	key   string
	point space.Point
	value []byte
}

// Store is the storage layer. It implements sim.Protocol and is stacked
// above the topology (and Polystyrene) layers.
type Store struct {
	cfg Config
	// owned is each node's primary table; replicas is its replica table.
	owned    []map[string]*entry
	replicas []map[string]*entry
}

var _ sim.Protocol = (*Store)(nil)

// New returns a Store with the given configuration.
func New(cfg Config) (*Store, error) {
	if cfg.Space == nil || cfg.Position == nil || cfg.Map == nil {
		return nil, fmt.Errorf("kvstore: Space, Position and Map are required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	return &Store{cfg: cfg}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Store {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements sim.Protocol.
func (s *Store) Name() string { return "kvstore" }

// InitNode implements sim.Protocol. It is idempotent: re-initialising a
// known node keeps its tables, so the store can also be driven from an
// engine observer that sweeps all live nodes.
func (s *Store) InitNode(_ *sim.Engine, id sim.NodeID) {
	for len(s.owned) <= int(id) {
		s.owned = append(s.owned, nil)
		s.replicas = append(s.replicas, nil)
	}
	if s.owned[id] == nil {
		s.owned[id] = make(map[string]*entry)
		s.replicas[id] = make(map[string]*entry)
	}
}

// Step implements sim.Protocol: anti-entropy re-homing. Each node checks
// the entries it replicates; when the current owner of an entry's point
// does not hold it (because the previous owner died, or ownership moved
// with the reshaped overlay), the replica holder pushes it over.
func (s *Store) Step(e *sim.Engine, id sim.NodeID) {
	for key, en := range s.replicas[id] {
		owner := s.Owner(e, en.point)
		if owner == sim.None {
			continue
		}
		if _, ok := s.owned[owner][key]; !ok {
			s.owned[owner][key] = en
			e.Charge(len(en.point) + len(en.value))
		}
	}
	// Primary entries this node no longer owns are handed to the rightful
	// owner directly (ownership moves whenever nodes crash or migrate
	// across the shape); without this, a key whose replicas all died
	// would strand at a node no lookup reaches.
	for key, en := range s.owned[id] {
		owner := s.Owner(e, en.point)
		if owner == id || owner == sim.None {
			continue
		}
		if _, ok := s.owned[owner][key]; !ok {
			s.owned[owner][key] = en
			e.Charge(len(en.point) + len(en.value))
		}
		delete(s.owned[id], key)
	}
}

// Owner returns the live node whose position is closest to the point, or
// sim.None when the system is empty.
func (s *Store) Owner(e *sim.Engine, p space.Point) sim.NodeID {
	best, bestD := sim.None, 0.0
	for _, id := range e.LiveIDs() {
		d := s.cfg.Space.Distance(s.cfg.Position(id), p)
		if best == sim.None || d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// Put stores key=value at the current owner and replicates it to R random
// live nodes. It returns the owner, or an error when the system is empty.
func (s *Store) Put(e *sim.Engine, key string, value []byte) (sim.NodeID, error) {
	point := s.cfg.Map(key)
	owner := s.Owner(e, point)
	if owner == sim.None {
		return sim.None, fmt.Errorf("kvstore: no live nodes")
	}
	en := &entry{key: key, point: point, value: append([]byte(nil), value...)}
	s.owned[owner][key] = en
	e.Charge(len(point) + len(value))

	placed := map[sim.NodeID]bool{owner: true}
	for tries := 0; len(placed)-1 < s.cfg.Replicas && tries < 20*s.cfg.Replicas; tries++ {
		r := e.RandomLive()
		if r == sim.None || placed[r] {
			continue
		}
		placed[r] = true
		s.replicas[r][key] = en
		e.Charge(len(point) + len(value))
	}
	return owner, nil
}

// Get fetches a key from its current owner. The boolean reports whether
// the owner held the value (a miss can occur transiently between a crash
// and the next anti-entropy round).
func (s *Store) Get(e *sim.Engine, key string) ([]byte, bool) {
	owner := s.Owner(e, s.cfg.Map(key))
	if owner == sim.None {
		return nil, false
	}
	en, ok := s.owned[owner][key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), en.value...), true
}

// OwnershipDistance returns how far the key's current owner sits from the
// key's home point — the store-level analogue of the paper's homogeneity:
// low values mean requests are served by nodes local to the key region.
func (s *Store) OwnershipDistance(e *sim.Engine, key string) float64 {
	point := s.cfg.Map(key)
	owner := s.Owner(e, point)
	if owner == sim.None {
		return 0
	}
	return s.cfg.Space.Distance(s.cfg.Position(owner), point)
}

// Entries returns how many primary entries a node currently serves (its
// storage load).
func (s *Store) Entries(id sim.NodeID) int {
	if int(id) >= len(s.owned) {
		return 0
	}
	return len(s.owned[id])
}

package kvstore

import (
	"fmt"
	"testing"

	"polystyrene/internal/scenario"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// testStore wires a Store above a scenario stack. The store is stepped by
// the same engine as an extra layer via an observer (the scenario owns its
// engine, so we hook rounds rather than rebuild the stack).
type testStore struct {
	sc    *scenario.Scenario
	store *Store
}

func newTestStore(t *testing.T, seed uint64, poly bool) *testStore {
	t.Helper()
	sc := scenario.MustNew(scenario.Config{
		Seed: seed, W: 20, H: 10, Polystyrene: poly, K: 4, SkipMetrics: true,
	})
	store := MustNew(Config{
		Space:    sc.Space,
		Position: func(id sim.NodeID) space.Point { return sc.System().Position(id) },
		Map:      TorusKeyMapper(sc.Space),
	})
	for _, id := range sc.Engine.LiveIDs() {
		store.InitNode(sc.Engine, id)
	}
	sc.Engine.Observe(func(e *sim.Engine, _ int) {
		for _, id := range e.LiveIDs() {
			store.InitNode(e, id) // idempotent; covers late joiners
		}
		for _, id := range e.LiveIDs() {
			store.Step(e, id)
		}
	})
	return &testStore{sc: sc, store: store}
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%04d", i)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestTorusKeyMapperDeterministicAndInRange(t *testing.T) {
	tor := space.NewTorus(20, 10)
	m := TorusKeyMapper(tor)
	a, b := m("hello"), m("hello")
	if !a.Equal(b) {
		t.Fatal("mapper not deterministic")
	}
	for _, k := range keys(200) {
		p := m(k)
		if p[0] < 0 || p[0] >= 20 || p[1] < 0 || p[1] >= 10 {
			t.Fatalf("key %q mapped out of range: %v", k, p)
		}
	}
	if m("a").Equal(m("b")) {
		t.Fatal("distinct keys mapped identically")
	}
}

func TestInterningKeyMapperCanonicalises(t *testing.T) {
	tor := space.NewTorus(20, 10)
	in := space.NewInterner()
	m := InterningKeyMapper(in, TorusKeyMapper(tor))
	a, b := m("hello"), m("hello")
	if &a[0] != &b[0] {
		t.Fatal("repeated mappings should share one canonical Point instance")
	}
	if pid, ok := in.Lookup(a); !ok || !in.PointOf(pid).Equal(a) {
		t.Fatal("mapped point was not registered in the interner")
	}
	if m("a").Equal(m("b")) {
		t.Fatal("distinct keys mapped identically")
	}
	if in.Len() != 3 { // hello, a, b
		t.Fatalf("interner holds %d points, want 3", in.Len())
	}
	// An interning store still round-trips.
	ts := newTestStore(t, 12, true)
	ts.store.cfg.Map = InterningKeyMapper(in, TorusKeyMapper(ts.sc.Space))
	ts.sc.Run(10)
	if _, err := ts.store.Put(ts.sc.Engine, "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := ts.store.Get(ts.sc.Engine, "k1"); !ok || string(v) != "v1" {
		t.Fatalf("Get = (%q, %v) through interning mapper", v, ok)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	ts := newTestStore(t, 1, true)
	ts.sc.Run(10)
	owner, err := ts.store.Put(ts.sc.Engine, "alpha", []byte("42"))
	if err != nil || owner == sim.None {
		t.Fatalf("put failed: %v", err)
	}
	got, ok := ts.store.Get(ts.sc.Engine, "alpha")
	if !ok || string(got) != "42" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if _, ok := ts.store.Get(ts.sc.Engine, "missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestValueIsolation(t *testing.T) {
	ts := newTestStore(t, 2, true)
	ts.sc.Run(5)
	val := []byte("mutable")
	if _, err := ts.store.Put(ts.sc.Engine, "k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X'
	got, _ := ts.store.Get(ts.sc.Engine, "k")
	if string(got) != "mutable" {
		t.Fatal("stored value aliases caller's buffer")
	}
	got[0] = 'Y'
	again, _ := ts.store.Get(ts.sc.Engine, "k")
	if string(again) != "mutable" {
		t.Fatal("returned value aliases stored buffer")
	}
}

func TestOwnerIsClosestNode(t *testing.T) {
	ts := newTestStore(t, 3, true)
	ts.sc.Run(10)
	for _, k := range keys(20) {
		if d := ts.store.OwnershipDistance(ts.sc.Engine, k); d > 1.0 {
			t.Fatalf("key %q owned at distance %v on an intact grid", k, d)
		}
	}
}

func TestEntriesSurviveOwnerCrash(t *testing.T) {
	ts := newTestStore(t, 4, true)
	ts.sc.Run(10)
	owner, err := ts.store.Put(ts.sc.Engine, "precious", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	ts.sc.Engine.Kill(owner)
	ts.sc.Run(3) // anti-entropy re-homes from a replica
	got, ok := ts.store.Get(ts.sc.Engine, "precious")
	if !ok || string(got) != "data" {
		t.Fatalf("entry lost after owner crash: %q %v", got, ok)
	}
}

func TestRegionalCatastropheLocality(t *testing.T) {
	// The application-level payoff of shape preservation: after the right
	// half of the torus dies, key ownership distance recovers to ~grid
	// scale under Polystyrene but stays ~quarter-torus under the baseline.
	measure := func(poly bool) (worst float64, misses int) {
		ts := newTestStore(t, 5, poly)
		ts.sc.Run(10)
		for _, k := range keys(100) {
			if _, err := ts.store.Put(ts.sc.Engine, k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		ts.sc.FailRightHalf()
		ts.sc.Run(20)
		for _, k := range keys(100) {
			if _, ok := ts.store.Get(ts.sc.Engine, k); !ok {
				misses++
			}
			if d := ts.store.OwnershipDistance(ts.sc.Engine, k); d > worst {
				worst = d
			}
		}
		return worst, misses
	}
	polyWorst, polyMisses := measure(true)
	tmanWorst, tmanMisses := measure(false)
	// Keys whose owner and all R=3 replicas died together are genuinely
	// lost — expected fraction 0.5^4 ≈ 6%. (Polystyrene protects the
	// *shape*; entry durability is the store's own replication.) Anything
	// beyond that indicates broken re-homing.
	if polyMisses > 15 || tmanMisses > 15 {
		t.Fatalf("misses after re-homing: poly=%d tman=%d (expected ~6)", polyMisses, tmanMisses)
	}
	if polyWorst > 2.5 {
		t.Errorf("Polystyrene worst ownership distance %v, want local (<2.5)", polyWorst)
	}
	if tmanWorst < 2*polyWorst {
		t.Errorf("baseline (%v) should be far worse than Polystyrene (%v)", tmanWorst, polyWorst)
	}
}

func TestLoadBalanceAfterRecovery(t *testing.T) {
	ts := newTestStore(t, 6, true)
	ts.sc.Run(10)
	for _, k := range keys(200) {
		if _, err := ts.store.Put(ts.sc.Engine, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ts.sc.FailRightHalf()
	ts.sc.Run(20)
	// 200 keys over ~100 survivors: no node should own a wildly
	// disproportionate share once the shape is uniform again.
	maxLoad := 0
	for _, id := range ts.sc.Engine.LiveIDs() {
		if n := ts.store.Entries(id); n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad > 20 {
		t.Errorf("worst node owns %d of 200 keys after recovery", maxLoad)
	}
}

func TestEntriesUnknownNode(t *testing.T) {
	ts := newTestStore(t, 7, true)
	if ts.store.Entries(9999) != 0 {
		t.Fatal("unknown node has entries")
	}
}

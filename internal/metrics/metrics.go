// Package metrics implements the five evaluation metrics of the paper
// (Sec. IV-A) — proximity, homogeneity (with its reference value H and the
// derived reshaping time), data points per node, message cost — plus the
// reliability measure of Table II and the summary statistics (mean and 95%
// confidence intervals) used to aggregate repeated experiments.
//
// Homogeneity and Reliability exist in two equivalent forms: the
// full-scan originals, which rebuild the guests⁻¹ map from scratch on
// every call (O(N·g) plus a string key per hosted point), and the indexed
// forms, which read an incrementally maintained HolderIndex (the core
// layer's) in O(holders) per data point. The full-scan forms are the
// reference oracle: the indexed forms must return bit-identical values,
// and the cross-check tests pin that.
package metrics

import (
	"math"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// System is the read-only view of a running overlay that the metrics need.
// Both configurations of the paper implement it: Polystyrene-over-T-Man,
// and plain T-Man (where Guests(n) is defined as {n.pos} and ghosts are
// counted as zero, exactly as in Sec. IV-A).
type System interface {
	// Space returns the metric data space.
	Space() space.Space
	// Live returns the IDs of live nodes in ascending order. The returned
	// slice is only valid until the next Live call — implementations may
	// reuse one buffer — and must not be mutated.
	Live() []sim.NodeID
	// Alive reports whether a node is currently live.
	Alive(id sim.NodeID) bool
	// Position returns a live node's current virtual position.
	Position(id sim.NodeID) space.Point
	// Guests returns the data points a node currently hosts as primary.
	// The slice is only valid until the next Guests call — implementations
	// may reuse one buffer — and must not be mutated; only the full-scan
	// oracle paths consume it (fast paths use NumGuests or a HolderIndex).
	Guests(id sim.NodeID) []space.Point
	// NumGuests returns the number of primary data points at a node.
	NumGuests(id sim.NodeID) int
	// NumGhosts returns the number of inactive replica points at a node.
	NumGhosts(id sim.NodeID) int
	// EachNeighbor visits the k closest overlay neighbours of a node in
	// increasing distance order, stopping early when yield returns false —
	// the zero-copy form of core.Topology, which keeps the per-round
	// metric loop allocation-free. yield must not call back into the
	// underlying topology.
	EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool)
}

// HolderIndex is an incrementally maintained guests⁻¹ view: for an
// interned data point, the nodes currently hosting it as a guest.
// core.Protocol satisfies it. The returned slice may contain crashed
// nodes (a crash is not an observable transition for the maintainer);
// consumers filter with System.Alive.
type HolderIndex interface {
	HoldersOf(id space.PointID) []sim.NodeID
}

// Proximity is the paper's main topology-quality metric: the mean distance
// between a node and its k closest overlay neighbours (k = 4 in the
// evaluation). Lower is better; on a converged unit-step torus grid the
// optimum is 1.0.
func Proximity(sys System, k int) float64 {
	s := sys.Space()
	sum, count := 0.0, 0
	// One visitor closure serves every node (its captured variables are
	// hoisted), so the whole sweep performs no per-node allocations.
	var pos space.Point
	visit := func(nb sim.NodeID) bool {
		sum += s.Distance(pos, sys.Position(nb))
		count++
		return true
	}
	for _, id := range sys.Live() {
		pos = sys.Position(id)
		sys.EachNeighbor(id, k, visit)
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Homogeneity measures how well the original shape is conserved: the mean,
// over all original data points x, of the distance from x to the nearest
// node that hosts x as a guest — or, when x has been lost, to the nearest
// node of the whole network (the ĝuests⁻¹ fallback of Sec. IV-A). Lower is
// better; 0 means every original point is hosted exactly in place.
//
// This is the full-scan reference implementation; HomogeneityIndexed is
// the equivalent fast path over an incremental HolderIndex.
func Homogeneity(sys System, datapoints []space.Point) float64 {
	live := sys.Live()
	if len(live) == 0 || len(datapoints) == 0 {
		return 0
	}
	s := sys.Space()

	// guests⁻¹: map every hosted point key to its primary holders.
	holders := make(map[string][]sim.NodeID)
	for _, id := range live {
		for _, g := range sys.Guests(id) {
			k := g.Key()
			holders[k] = append(holders[k], id)
		}
	}

	sum := 0.0
	for _, x := range datapoints {
		hs := holders[x.Key()]
		best := math.Inf(1)
		if len(hs) > 0 {
			for _, id := range hs {
				if d := s.Distance(x, sys.Position(id)); d < best {
					best = d
				}
			}
		} else {
			// Point lost: fall back to the nearest node overall.
			for _, id := range live {
				if d := s.Distance(x, sys.Position(id)); d < best {
					best = d
				}
			}
		}
		sum += best
	}
	return sum / float64(len(datapoints))
}

// HomogeneityIndexed computes exactly Homogeneity, but resolves each data
// point's holders through the incrementally maintained index instead of
// rebuilding the guests⁻¹ map: O(holders) per hosted point, touching live
// nodes only for lost points. ids must carry the datapoints' interned IDs
// in lockstep (from the same interner the index maintainer uses).
func HomogeneityIndexed(sys System, idx HolderIndex, datapoints []space.Point, ids []space.PointID) float64 {
	if len(datapoints) != len(ids) {
		panic("metrics: datapoints and ids length mismatch")
	}
	live := sys.Live()
	if len(live) == 0 || len(datapoints) == 0 {
		return 0
	}
	s := sys.Space()
	sum := 0.0
	for i, x := range datapoints {
		best := math.Inf(1)
		hosted := false
		for _, id := range idx.HoldersOf(ids[i]) {
			if !sys.Alive(id) {
				continue
			}
			hosted = true
			if d := s.Distance(x, sys.Position(id)); d < best {
				best = d
			}
		}
		if !hosted {
			for _, id := range live {
				if d := s.Distance(x, sys.Position(id)); d < best {
					best = d
				}
			}
		}
		sum += best
	}
	return sum / float64(len(datapoints))
}

// ReferenceHomogeneity returns H^N_A = (1/2)·sqrt(A/N), the paper's rough
// upper bound on the homogeneity of an ideal distribution of N nodes over
// a 2D surface of area A (Sec. IV-A). A topology counts as "reshaped" once
// its measured homogeneity drops below this value.
func ReferenceHomogeneity(area float64, nodes int) float64 {
	if nodes <= 0 {
		return math.Inf(1)
	}
	return 0.5 * math.Sqrt(area/float64(nodes))
}

// DataPointsPerNode is the paper's memory-overhead metric: the mean number
// of data points (guests and ghosts alike) per live node. For plain T-Man
// this is exactly 1.
func DataPointsPerNode(sys System) float64 {
	live := sys.Live()
	if len(live) == 0 {
		return 0
	}
	total := 0
	for _, id := range live {
		total += sys.NumGuests(id) + sys.NumGhosts(id)
	}
	return float64(total) / float64(len(live))
}

// MessageCostPerNode returns the communication units charged in the given
// round, averaged over live nodes, using the engine's meter.
func MessageCostPerNode(e *sim.Engine, round int) float64 {
	if e.NumLive() == 0 {
		return 0
	}
	return float64(e.Meter().TotalRoundCost(round)) / float64(e.NumLive())
}

// Reliability is the Table II measure: the fraction of the original data
// points still hosted (as a guest) by at least one live node.
//
// This is the full-scan reference implementation; ReliabilityIndexed is
// the equivalent fast path over an incremental HolderIndex.
func Reliability(sys System, datapoints []space.Point) float64 {
	if len(datapoints) == 0 {
		return 1
	}
	hosted := make(map[string]bool)
	for _, id := range sys.Live() {
		for _, g := range sys.Guests(id) {
			hosted[g.Key()] = true
		}
	}
	surviving := 0
	for _, x := range datapoints {
		if hosted[x.Key()] {
			surviving++
		}
	}
	return float64(surviving) / float64(len(datapoints))
}

// ReliabilityIndexed computes exactly Reliability through the holders
// index: a point survives iff any of its indexed holders is live. ids are
// the original datapoints' interned IDs.
func ReliabilityIndexed(sys System, idx HolderIndex, ids []space.PointID) float64 {
	if len(ids) == 0 {
		return 1
	}
	surviving := 0
	for _, pid := range ids {
		for _, id := range idx.HoldersOf(pid) {
			if sys.Alive(id) {
				surviving++
				break
			}
		}
	}
	return float64(surviving) / float64(len(ids))
}

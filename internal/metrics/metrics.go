// Package metrics implements the five evaluation metrics of the paper
// (Sec. IV-A) — proximity, homogeneity (with its reference value H and the
// derived reshaping time), data points per node, message cost — plus the
// reliability measure of Table II and the summary statistics (mean and 95%
// confidence intervals) used to aggregate repeated experiments.
package metrics

import (
	"math"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// System is the read-only view of a running overlay that the metrics need.
// Both configurations of the paper implement it: Polystyrene-over-T-Man,
// and plain T-Man (where Guests(n) is defined as {n.pos} and ghosts are
// counted as zero, exactly as in Sec. IV-A).
type System interface {
	// Space returns the metric data space.
	Space() space.Space
	// Live returns the IDs of live nodes.
	Live() []sim.NodeID
	// Position returns a live node's current virtual position.
	Position(id sim.NodeID) space.Point
	// Guests returns the data points a node currently hosts as primary.
	Guests(id sim.NodeID) []space.Point
	// NumGhosts returns the number of inactive replica points at a node.
	NumGhosts(id sim.NodeID) int
	// Neighbors returns the k closest overlay neighbours of a node.
	Neighbors(id sim.NodeID, k int) []sim.NodeID
}

// Proximity is the paper's main topology-quality metric: the mean distance
// between a node and its k closest overlay neighbours (k = 4 in the
// evaluation). Lower is better; on a converged unit-step torus grid the
// optimum is 1.0.
func Proximity(sys System, k int) float64 {
	s := sys.Space()
	sum, count := 0.0, 0
	for _, id := range sys.Live() {
		pos := sys.Position(id)
		for _, nb := range sys.Neighbors(id, k) {
			sum += s.Distance(pos, sys.Position(nb))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Homogeneity measures how well the original shape is conserved: the mean,
// over all original data points x, of the distance from x to the nearest
// node that hosts x as a guest — or, when x has been lost, to the nearest
// node of the whole network (the ĝuests⁻¹ fallback of Sec. IV-A). Lower is
// better; 0 means every original point is hosted exactly in place.
func Homogeneity(sys System, datapoints []space.Point) float64 {
	live := sys.Live()
	if len(live) == 0 || len(datapoints) == 0 {
		return 0
	}
	s := sys.Space()

	// guests⁻¹: map every hosted point key to its primary holders.
	holders := make(map[string][]sim.NodeID)
	for _, id := range live {
		for _, g := range sys.Guests(id) {
			k := g.Key()
			holders[k] = append(holders[k], id)
		}
	}

	sum := 0.0
	for _, x := range datapoints {
		hs := holders[x.Key()]
		best := math.Inf(1)
		if len(hs) > 0 {
			for _, id := range hs {
				if d := s.Distance(x, sys.Position(id)); d < best {
					best = d
				}
			}
		} else {
			// Point lost: fall back to the nearest node overall.
			for _, id := range live {
				if d := s.Distance(x, sys.Position(id)); d < best {
					best = d
				}
			}
		}
		sum += best
	}
	return sum / float64(len(datapoints))
}

// ReferenceHomogeneity returns H^N_A = (1/2)·sqrt(A/N), the paper's rough
// upper bound on the homogeneity of an ideal distribution of N nodes over
// a 2D surface of area A (Sec. IV-A). A topology counts as "reshaped" once
// its measured homogeneity drops below this value.
func ReferenceHomogeneity(area float64, nodes int) float64 {
	if nodes <= 0 {
		return math.Inf(1)
	}
	return 0.5 * math.Sqrt(area/float64(nodes))
}

// DataPointsPerNode is the paper's memory-overhead metric: the mean number
// of data points (guests and ghosts alike) per live node. For plain T-Man
// this is exactly 1.
func DataPointsPerNode(sys System) float64 {
	live := sys.Live()
	if len(live) == 0 {
		return 0
	}
	total := 0
	for _, id := range live {
		total += len(sys.Guests(id)) + sys.NumGhosts(id)
	}
	return float64(total) / float64(len(live))
}

// MessageCostPerNode returns the communication units charged in the given
// round, averaged over live nodes, using the engine's meter.
func MessageCostPerNode(e *sim.Engine, round int) float64 {
	if e.NumLive() == 0 {
		return 0
	}
	return float64(e.Meter().TotalRoundCost(round)) / float64(e.NumLive())
}

// Reliability is the Table II measure: the fraction of the original data
// points still hosted (as a guest) by at least one live node.
func Reliability(sys System, datapoints []space.Point) float64 {
	if len(datapoints) == 0 {
		return 1
	}
	hosted := make(map[string]bool)
	for _, id := range sys.Live() {
		for _, g := range sys.Guests(id) {
			hosted[g.Key()] = true
		}
	}
	surviving := 0
	for _, x := range datapoints {
		if hosted[x.Key()] {
			surviving++
		}
	}
	return float64(surviving) / float64(len(datapoints))
}

package metrics

import (
	"math"
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// fakeSystem is a hand-built System for exact metric assertions.
type fakeSystem struct {
	spc       space.Space
	live      []sim.NodeID
	positions map[sim.NodeID]space.Point
	guests    map[sim.NodeID][]space.Point
	ghosts    map[sim.NodeID]int
	neighbors map[sim.NodeID][]sim.NodeID
}

func (f *fakeSystem) Space() space.Space { return f.spc }
func (f *fakeSystem) Live() []sim.NodeID { return f.live }
func (f *fakeSystem) Alive(id sim.NodeID) bool {
	for _, l := range f.live {
		if l == id {
			return true
		}
	}
	return false
}
func (f *fakeSystem) Position(id sim.NodeID) space.Point { return f.positions[id] }
func (f *fakeSystem) Guests(id sim.NodeID) []space.Point { return f.guests[id] }
func (f *fakeSystem) NumGuests(id sim.NodeID) int        { return len(f.guests[id]) }
func (f *fakeSystem) NumGhosts(id sim.NodeID) int        { return f.ghosts[id] }
func (f *fakeSystem) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	nbs := f.neighbors[id]
	if k < len(nbs) {
		nbs = nbs[:k]
	}
	for _, nb := range nbs {
		if !yield(nb) {
			return
		}
	}
}

func line3() *fakeSystem {
	// Three nodes on a line at 0, 1, 3; each hosting its own point.
	return &fakeSystem{
		spc:  space.NewEuclidean(1),
		live: []sim.NodeID{0, 1, 2},
		positions: map[sim.NodeID]space.Point{
			0: {0}, 1: {1}, 2: {3},
		},
		guests: map[sim.NodeID][]space.Point{
			0: {{0}}, 1: {{1}}, 2: {{3}},
		},
		ghosts: map[sim.NodeID]int{0: 2, 1: 0, 2: 1},
		neighbors: map[sim.NodeID][]sim.NodeID{
			0: {1}, 1: {0}, 2: {1},
		},
	}
}

func TestProximity(t *testing.T) {
	sys := line3()
	// pairs: 0→1 (1), 1→0 (1), 2→1 (2); mean = 4/3.
	if got := Proximity(sys, 1); math.Abs(got-4.0/3) > 1e-9 {
		t.Fatalf("Proximity = %v, want 4/3", got)
	}
}

func TestProximityEmpty(t *testing.T) {
	sys := &fakeSystem{spc: space.NewEuclidean(1)}
	if got := Proximity(sys, 4); got != 0 {
		t.Fatalf("Proximity(empty) = %v", got)
	}
}

func TestHomogeneityPerfect(t *testing.T) {
	sys := line3()
	pts := []space.Point{{0}, {1}, {3}}
	if got := Homogeneity(sys, pts); got != 0 {
		t.Fatalf("Homogeneity = %v, want 0 (every point hosted in place)", got)
	}
}

func TestHomogeneityDisplacedHolder(t *testing.T) {
	sys := line3()
	// Node 2 hosts point {3} but sits at position {5}: contribution 2.
	sys.positions[2] = space.Point{5}
	pts := []space.Point{{0}, {1}, {3}}
	if got := Homogeneity(sys, pts); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Homogeneity = %v, want 2/3", got)
	}
}

func TestHomogeneityLostPointFallsBack(t *testing.T) {
	sys := line3()
	// Point {10} is hosted by nobody: nearest node overall is node 2 at 3,
	// so it contributes 7.
	pts := []space.Point{{0}, {1}, {3}, {10}}
	if got := Homogeneity(sys, pts); math.Abs(got-7.0/4) > 1e-9 {
		t.Fatalf("Homogeneity = %v, want 7/4", got)
	}
}

func TestHomogeneityPicksNearestHolder(t *testing.T) {
	sys := line3()
	// Point {1} hosted by node 1 (pos 1, d=0) and node 2 (pos 3, d=2):
	// nearest holder wins.
	sys.guests[2] = append(sys.guests[2], space.Point{1})
	pts := []space.Point{{1}}
	if got := Homogeneity(sys, pts); got != 0 {
		t.Fatalf("Homogeneity = %v, want 0 (nearest holder)", got)
	}
}

func TestHomogeneityEmptyInputs(t *testing.T) {
	if got := Homogeneity(line3(), nil); got != 0 {
		t.Fatalf("Homogeneity(no points) = %v", got)
	}
	empty := &fakeSystem{spc: space.NewEuclidean(1)}
	if got := Homogeneity(empty, []space.Point{{0}}); got != 0 {
		t.Fatalf("Homogeneity(no nodes) = %v", got)
	}
}

func TestReferenceHomogeneityPaperValues(t *testing.T) {
	// Paper Sec. IV-A: H^3200_{40x80} = 1/2 and H^1600_{40x80} = sqrt(2)/2.
	if got := ReferenceHomogeneity(3200, 3200); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("H(3200,3200) = %v, want 0.5", got)
	}
	if got := ReferenceHomogeneity(3200, 1600); math.Abs(got-math.Sqrt2/2) > 1e-9 {
		t.Fatalf("H(3200,1600) = %v, want sqrt(2)/2", got)
	}
	if got := ReferenceHomogeneity(3200, 0); !math.IsInf(got, 1) {
		t.Fatalf("H(·,0) = %v, want +Inf", got)
	}
}

func TestDataPointsPerNode(t *testing.T) {
	sys := line3()
	// guests: 1+1+1, ghosts: 2+0+1 => 6/3 = 2.
	if got := DataPointsPerNode(sys); math.Abs(got-2) > 1e-9 {
		t.Fatalf("DataPointsPerNode = %v, want 2", got)
	}
	empty := &fakeSystem{spc: space.NewEuclidean(1)}
	if got := DataPointsPerNode(empty); got != 0 {
		t.Fatalf("DataPointsPerNode(empty) = %v", got)
	}
}

func TestReliability(t *testing.T) {
	sys := line3()
	pts := []space.Point{{0}, {1}, {3}, {99}}
	if got := Reliability(sys, pts); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Reliability = %v, want 0.75", got)
	}
	if got := Reliability(sys, nil); got != 1 {
		t.Fatalf("Reliability(no points) = %v, want 1", got)
	}
}

func TestMessageCostPerNode(t *testing.T) {
	e := sim.New(1, &charging{})
	e.AddNodes(4)
	e.RunRounds(1)
	if got := MessageCostPerNode(e, 0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("MessageCostPerNode = %v, want 10", got)
	}
}

type charging struct{}

func (charging) Name() string                     { return "c" }
func (charging) InitNode(*sim.Engine, sim.NodeID) {}
func (charging) Step(e *sim.Engine, _ sim.NodeID) { e.Charge(10) }

func TestAccumulator(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.CI95() <= 0 {
		t.Fatalf("CI95 = %v, want > 0", a.CI95())
	}
	if a.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestAccumulatorDegenerate(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Fatal("empty accumulator not zero-valued")
	}
	a.Add(3)
	if a.Variance() != 0 || a.CI95() != 0 {
		t.Fatal("single observation should have no spread")
	}
}

func TestTCritical(t *testing.T) {
	cases := map[int]float64{1: 12.706, 24: 2.064, 100: 1.99, 1000: 1.96}
	for df, want := range cases {
		if got := tCritical95(df); math.Abs(got-want) > 1e-6 {
			t.Errorf("t(%d) = %v, want %v", df, got, want)
		}
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Error("t(0) should be +Inf")
	}
	if got := tCritical95(35); got != 2.03 {
		t.Errorf("t(35) = %v, want 2.03", got)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	widths := []float64{}
	for _, n := range []int{5, 25, 100} {
		var a Accumulator
		for i := 0; i < n; i++ {
			a.Add(float64(i % 10))
		}
		widths = append(widths, a.CI95())
	}
	if !(widths[0] > widths[1] && widths[1] > widths[2]) {
		t.Fatalf("CI95 did not shrink with n: %v", widths)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "h"}
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 || s.At(1) != 2 {
		t.Fatalf("Series misbehaves: %+v", s)
	}
	if !math.IsNaN(s.At(5)) || !math.IsNaN(s.At(-1)) {
		t.Fatal("out-of-range At should be NaN")
	}
}

func TestMeanSeries(t *testing.T) {
	mean, ci, err := MeanSeries([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 2 || mean[1] != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if ci[0] <= 0 {
		t.Fatalf("ci = %v", ci)
	}
	if _, _, err := MeanSeries(nil); err == nil {
		t.Fatal("MeanSeries(nil) should fail")
	}
	if _, _, err := MeanSeries([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged runs should fail")
	}
}

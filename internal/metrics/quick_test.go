package metrics

// Property-based tests (testing/quick) for the statistics primitives.

import (
	"math"
	"testing"
	"testing/quick"
)

// sane filters quick-generated floats down to ordinary magnitudes.
func sane(raw []float64) []float64 {
	out := raw[:0]
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e6))
	}
	return out
}

func TestQuickAccumulatorMatchesNaiveMean(t *testing.T) {
	f := func(raw []float64) bool {
		values := sane(raw)
		var acc Accumulator
		sum := 0.0
		for _, v := range values {
			acc.Add(v)
			sum += v
		}
		if len(values) == 0 {
			return acc.Mean() == 0
		}
		naive := sum / float64(len(values))
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(acc.Mean()-naive)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAccumulatorMatchesNaiveVariance(t *testing.T) {
	f := func(raw []float64) bool {
		values := sane(raw)
		if len(values) < 2 {
			return true
		}
		var acc Accumulator
		mean := 0.0
		for _, v := range values {
			acc.Add(v)
			mean += v
		}
		mean /= float64(len(values))
		ss := 0.0
		for _, v := range values {
			d := v - mean
			ss += d * d
		}
		naive := ss / float64(len(values)-1)
		scale := math.Max(1, naive)
		return math.Abs(acc.Variance()-naive)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var acc Accumulator
		for _, v := range sane(raw) {
			acc.Add(v)
		}
		return acc.Variance() >= 0 && acc.CI95() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickConstantSeriesHasZeroSpread(t *testing.T) {
	f := func(v float64, nRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		n := 2 + int(nRaw)%50
		var acc Accumulator
		for i := 0; i < n; i++ {
			acc.Add(v)
		}
		return acc.StdDev() < 1e-6*math.Max(1, math.Abs(v)) && acc.Mean() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMeanSeriesBounds(t *testing.T) {
	// The point-wise mean of two runs lies between the two runs' values.
	f := func(raw []float64) bool {
		a := sane(raw)
		if len(a) == 0 {
			return true
		}
		b := make([]float64, len(a))
		for i, v := range a {
			b[i] = v + 1
		}
		mean, _, err := MeanSeries([][]float64{a, b})
		if err != nil {
			return false
		}
		for i := range a {
			if mean[i] < a[i]-1e-9 || mean[i] > b[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

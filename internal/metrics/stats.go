package metrics

import (
	"fmt"
	"math"
)

// Accumulator computes running mean and variance with Welford's algorithm,
// numerically stable for long experiment series.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using Student's t distribution (the paper reports "confidence interval
// at 95%" over 25 experiments, hence small-sample t values matter).
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return tCritical95(a.n-1) * a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary renders "mean ± ci" in the style of the paper's tables.
func (a *Accumulator) Summary() string {
	return fmt.Sprintf("%.2f ± %.3f", a.Mean(), a.CI95())
}

// tCritical95 returns the two-tailed 5% critical value of Student's t
// distribution with df degrees of freedom.
func tCritical95(df int) float64 {
	// Exact table for small df, asymptote for large df.
	table := []float64{
		0: math.Inf(1),
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
		26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df < len(table):
		return table[df]
	case df < 40:
		return 2.03
	case df < 60:
		return 2.01
	case df < 120:
		return 1.99
	default:
		return 1.96
	}
}

// Series is a per-round time series of one metric across an experiment.
type Series struct {
	// Name labels the metric (e.g. "homogeneity").
	Name string
	// Values holds one entry per round.
	Values []float64
}

// At returns the value at a given round, or NaN when out of range.
func (s *Series) At(round int) float64 {
	if round < 0 || round >= len(s.Values) {
		return math.NaN()
	}
	return s.Values[round]
}

// Append records the next round's value.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of recorded rounds.
func (s *Series) Len() int { return len(s.Values) }

// MeanSeries averages several runs of the same metric point-wise, along
// with the per-round CI95 half-widths. All runs must have equal length.
func MeanSeries(runs [][]float64) (mean, ci []float64, err error) {
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("metrics: MeanSeries needs at least one run")
	}
	length := len(runs[0])
	for i, r := range runs {
		if len(r) != length {
			return nil, nil, fmt.Errorf("metrics: run %d has length %d, want %d", i, len(r), length)
		}
	}
	mean = make([]float64, length)
	ci = make([]float64, length)
	for i := 0; i < length; i++ {
		var acc Accumulator
		for _, r := range runs {
			acc.Add(r[i])
		}
		mean[i] = acc.Mean()
		ci[i] = acc.CI95()
	}
	return mean, ci, nil
}

// Package route implements greedy geometric routing over the constructed
// overlay, the canonical application the paper motivates Polystyrene with:
// "losing the shape of the topology might affect system performance, e.g.
// routing or load balancing, which often relies on a uniform distribution
// of nodes along the topology" (Sec. I).
//
// A message heads for a target point in the data space; at every hop the
// current node forwards it to whichever overlay neighbour is closest to
// the target, and delivery ends at a local minimum — the node none of
// whose neighbours improves on it (CAN-style greedy routing). On an intact
// torus grid this reaches the node nearest the target in roughly
// (Manhattan distance / step) hops. After a catastrophic failure, greedy
// routing over a collapsed shape stalls far from any target in the dead
// region, while over a Polystyrene-recovered shape it keeps working — the
// routing experiment in this package's tests and benches quantifies that.
package route

import (
	"fmt"

	"polystyrene/internal/core"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Defaults.
const (
	// DefaultFanout is how many closest neighbours each hop considers.
	DefaultFanout = 4
	// DefaultMaxHops bounds a route; greedy routing on an n-node torus
	// needs O(sqrt(n)) hops, so this is generous for the scales we run.
	DefaultMaxHops = 256
)

// Router performs greedy routing over a topology layer.
type Router struct {
	// Space supplies the metric.
	Space space.Space
	// Topology enumerates overlay neighbours (T-Man or Vicinity).
	Topology core.Topology
	// Position resolves current node positions.
	Position func(id sim.NodeID) space.Point
	// Fanout is the number of closest neighbours considered per hop
	// (0 means DefaultFanout).
	Fanout int
	// MaxHops bounds the path length (0 means DefaultMaxHops).
	MaxHops int
}

// Result describes one routed message.
type Result struct {
	// Path is the sequence of nodes visited, starting at the source.
	Path []sim.NodeID
	// Dest is the node the message stopped at.
	Dest sim.NodeID
	// Hops is len(Path) - 1.
	Hops int
	// FinalDistance is the distance between Dest's position and the
	// target point.
	FinalDistance float64
	// Converged is false when the route was cut off by MaxHops.
	Converged bool
}

// Route greedily forwards a message from the given source node towards the
// target point and returns the resulting path. It returns an error when
// the source is invalid.
func (r *Router) Route(e *sim.Engine, from sim.NodeID, target space.Point) (Result, error) {
	if !e.Alive(from) {
		return Result{}, fmt.Errorf("route: source node %d is not alive", from)
	}
	fanout := r.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	maxHops := r.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}

	current := from
	currentDist := r.Space.Distance(r.Position(current), target)
	path := []sim.NodeID{current}

	for hop := 0; hop < maxHops; hop++ {
		next := sim.None
		nextDist := currentDist
		for _, nb := range r.Topology.Neighbors(current, fanout) {
			if !e.Alive(nb) {
				continue
			}
			if d := r.Space.Distance(r.Position(nb), target); d < nextDist {
				next, nextDist = nb, d
			}
		}
		if next == sim.None {
			// Local minimum: nobody closer — greedy delivery point.
			return Result{
				Path:          path,
				Dest:          current,
				Hops:          len(path) - 1,
				FinalDistance: currentDist,
				Converged:     true,
			}, nil
		}
		current, currentDist = next, nextDist
		path = append(path, current)
	}
	return Result{
		Path:          path,
		Dest:          current,
		Hops:          len(path) - 1,
		FinalDistance: currentDist,
		Converged:     false,
	}, nil
}

// Probe routes from a fixed source to every target and aggregates quality:
// the mean and worst final distance, and the mean hop count. It skips no
// targets; callers choose probes that cover the region of interest.
func (r *Router) Probe(e *sim.Engine, from sim.NodeID, targets []space.Point) (ProbeStats, error) {
	var st ProbeStats
	for _, target := range targets {
		res, err := r.Route(e, from, target)
		if err != nil {
			return ProbeStats{}, err
		}
		st.Routes++
		st.TotalHops += res.Hops
		st.TotalFinalDistance += res.FinalDistance
		if res.FinalDistance > st.WorstFinalDistance {
			st.WorstFinalDistance = res.FinalDistance
		}
		if !res.Converged {
			st.Truncated++
		}
	}
	return st, nil
}

// ProbeStats aggregates a batch of routes.
type ProbeStats struct {
	Routes             int
	TotalHops          int
	TotalFinalDistance float64
	WorstFinalDistance float64
	Truncated          int
}

// MeanHops returns the average path length.
func (s ProbeStats) MeanHops() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Routes)
}

// MeanFinalDistance returns the average distance between the delivery node
// and the target.
func (s ProbeStats) MeanFinalDistance() float64 {
	if s.Routes == 0 {
		return 0
	}
	return s.TotalFinalDistance / float64(s.Routes)
}

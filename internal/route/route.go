// Package route implements greedy geometric routing over the constructed
// overlay, the canonical application the paper motivates Polystyrene with:
// "losing the shape of the topology might affect system performance, e.g.
// routing or load balancing, which often relies on a uniform distribution
// of nodes along the topology" (Sec. I).
//
// A message heads for a target point in the data space; at every hop the
// current node forwards it to whichever overlay neighbour is closest to
// the target, and delivery ends at a local minimum — the node none of
// whose neighbours improves on it (CAN-style greedy routing). On an intact
// torus grid this reaches the node nearest the target in roughly
// (Manhattan distance / step) hops. After a catastrophic failure, greedy
// routing over a collapsed shape stalls far from any target in the dead
// region, while over a Polystyrene-recovered shape it keeps working — the
// routing experiment in this package's tests and benches quantifies that.
package route

import (
	"fmt"

	"polystyrene/internal/core"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Defaults.
const (
	// DefaultFanout is how many closest neighbours each hop considers.
	DefaultFanout = 4
	// DefaultMaxHops bounds a route; greedy routing on an n-node torus
	// needs O(sqrt(n)) hops, so this is generous for the scales we run.
	DefaultMaxHops = 256
)

// Router performs greedy routing over a topology layer.
type Router struct {
	// Space supplies the metric.
	Space space.Space
	// Topology enumerates overlay neighbours (T-Man or Vicinity).
	Topology core.Topology
	// Position resolves current node positions.
	Position func(id sim.NodeID) space.Point
	// Fanout is the number of closest neighbours considered per hop
	// (0 means DefaultFanout).
	Fanout int
	// MaxHops bounds the path length (0 means DefaultMaxHops).
	MaxHops int
}

// Result describes one routed message.
type Result struct {
	// Path is the sequence of nodes visited, starting at the source.
	Path []sim.NodeID
	// Dest is the node the message stopped at.
	Dest sim.NodeID
	// Hops is len(Path) - 1.
	Hops int
	// FinalDistance is the distance between Dest's position and the
	// target point.
	FinalDistance float64
	// Converged is false when the route was cut off by MaxHops.
	Converged bool
}

// Route greedily forwards a message from the given source node towards the
// target point and returns the resulting path. It returns an error when
// the source is invalid.
func (r *Router) Route(e *sim.Engine, from sim.NodeID, target space.Point) (Result, error) {
	if !e.Alive(from) {
		return Result{}, fmt.Errorf("route: source node %d is not alive", from)
	}
	fanout := r.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	maxHops := r.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}

	path := []sim.NodeID{from}
	current, currentDist, converged := r.descend(e, from, target, fanout, maxHops,
		func(hop sim.NodeID) { path = append(path, hop) })
	return Result{
		Path:          path,
		Dest:          current,
		Hops:          len(path) - 1,
		FinalDistance: currentDist,
		Converged:     converged,
	}, nil
}

// Descend greedily walks from the given live node towards the target and
// returns the delivery node — the local minimum none of whose neighbours
// is closer to the target — together with its distance to the target and
// whether the walk terminated within the hop budget. It is Route without
// the path record: nothing is retained, so a descent performs only the
// visitor-closure allocation. This is the primitive point lookups build
// on.
func (r *Router) Descend(e *sim.Engine, from sim.NodeID, target space.Point) (sim.NodeID, float64, error) {
	if !e.Alive(from) {
		return sim.None, 0, fmt.Errorf("route: source node %d is not alive", from)
	}
	fanout := r.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	maxHops := r.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	dest, d, converged := r.descend(e, from, target, fanout, maxHops, nil)
	if !converged {
		return dest, d, fmt.Errorf("route: descent from %d truncated after %d hops", from, maxHops)
	}
	return dest, d, nil
}

// descend is the shared greedy walk: at every hop the fanout closest
// overlay neighbours are visited through the topology's zero-copy
// EachNeighbor form, and the message moves to whichever is closest to the
// target. onHop, when non-nil, observes each node the walk moves to.
func (r *Router) descend(e *sim.Engine, from sim.NodeID, target space.Point,
	fanout, maxHops int, onHop func(sim.NodeID)) (dest sim.NodeID, dist float64, converged bool) {

	current := from
	currentDist := r.Space.Distance(r.Position(current), target)
	// The visitor closure is hoisted out of the hop loop; next/nextDist
	// carry the per-hop argmin across calls.
	next := sim.None
	nextDist := currentDist
	visit := func(nb sim.NodeID) bool {
		if e.Alive(nb) {
			if d := r.Space.Distance(r.Position(nb), target); d < nextDist {
				next, nextDist = nb, d
			}
		}
		return true
	}
	for hop := 0; hop < maxHops; hop++ {
		next, nextDist = sim.None, currentDist
		r.Topology.EachNeighbor(current, fanout, visit)
		if next == sim.None {
			// Local minimum: nobody closer — greedy delivery point.
			return current, currentDist, true
		}
		current, currentDist = next, nextDist
		if onHop != nil {
			onHop(current)
		}
	}
	return current, currentDist, false
}

// Probe routes from a fixed source to every target and aggregates quality:
// the mean and worst final distance, and the mean hop count. It skips no
// targets; callers choose probes that cover the region of interest.
func (r *Router) Probe(e *sim.Engine, from sim.NodeID, targets []space.Point) (ProbeStats, error) {
	var st ProbeStats
	for _, target := range targets {
		res, err := r.Route(e, from, target)
		if err != nil {
			return ProbeStats{}, err
		}
		st.Routes++
		st.TotalHops += res.Hops
		st.TotalFinalDistance += res.FinalDistance
		if res.FinalDistance > st.WorstFinalDistance {
			st.WorstFinalDistance = res.FinalDistance
		}
		if !res.Converged {
			st.Truncated++
		}
	}
	return st, nil
}

// ProbeStats aggregates a batch of routes.
type ProbeStats struct {
	Routes             int
	TotalHops          int
	TotalFinalDistance float64
	WorstFinalDistance float64
	Truncated          int
}

// MeanHops returns the average path length.
func (s ProbeStats) MeanHops() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Routes)
}

// MeanFinalDistance returns the average distance between the delivery node
// and the target.
func (s ProbeStats) MeanFinalDistance() float64 {
	if s.Routes == 0 {
		return 0
	}
	return s.TotalFinalDistance / float64(s.Routes)
}

package route

import (
	"testing"

	"polystyrene/internal/scenario"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// routerFor builds a Router over a scenario's stack.
func routerFor(sc *scenario.Scenario) *Router {
	return &Router{
		Space:    sc.Space,
		Topology: sc.Topology(),
		Position: func(id sim.NodeID) space.Point { return sc.System().Position(id) },
	}
}

func converged(t *testing.T, seed uint64, poly bool) (*scenario.Scenario, *Router) {
	t.Helper()
	sc := scenario.MustNew(scenario.Config{
		Seed: seed, W: 20, H: 10, Polystyrene: poly, K: 4, SkipMetrics: true,
	})
	sc.Run(15)
	return sc, routerFor(sc)
}

func TestRouteReachesTarget(t *testing.T) {
	sc, r := converged(t, 1, true)
	res, err := r.Route(sc.Engine, 0, space.Point{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("route truncated on an intact grid")
	}
	// On a unit grid the greedy minimum is the node on the target cell.
	if res.FinalDistance > 0.01 {
		t.Fatalf("final distance %v, want ~0 on intact grid", res.FinalDistance)
	}
	if res.Hops == 0 {
		t.Fatal("crossing half the torus should take hops")
	}
	if res.Dest == 0 {
		t.Fatal("route went nowhere")
	}
	if len(res.Path) != res.Hops+1 {
		t.Fatalf("path length %d vs hops %d", len(res.Path), res.Hops)
	}
}

func TestRouteToOwnPosition(t *testing.T) {
	sc, r := converged(t, 2, true)
	pos := sc.System().Position(5)
	res, err := r.Route(sc.Engine, 5, pos)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 0 || res.Dest != 5 {
		t.Fatalf("routing to own position moved: %+v", res)
	}
}

func TestRouteHopEfficiency(t *testing.T) {
	// Greedy hops on the grid should be close to the Manhattan distance
	// between source and target (each hop advances ~1 grid step).
	sc, r := converged(t, 3, true)
	res, err := r.Route(sc.Engine, 0, space.Point{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan distance from (0,0) to (8,4) is 12; allow some slack for
	// diagonal neighbours and imperfect views.
	if res.Hops > 20 {
		t.Fatalf("route took %d hops for a 12-step Manhattan path", res.Hops)
	}
}

func TestRouteFromDeadNode(t *testing.T) {
	sc, r := converged(t, 4, true)
	sc.Engine.Kill(3)
	if _, err := r.Route(sc.Engine, 3, space.Point{1, 1}); err == nil {
		t.Fatal("routing from a dead node succeeded")
	}
}

func TestRouteMaxHopsTruncation(t *testing.T) {
	sc, r := converged(t, 5, true)
	r.MaxHops = 1
	res, err := r.Route(sc.Engine, 0, space.Point{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("1-hop budget should truncate a cross-torus route")
	}
	if res.Hops != 1 {
		t.Fatalf("hops = %d, want 1", res.Hops)
	}
}

func TestRoutingSurvivesCatastropheWithPolystyrene(t *testing.T) {
	// The motivating experiment: routes into the crashed half. With
	// Polystyrene the shape re-forms and greedy routing lands near every
	// target; with plain T-Man the dead half stays empty and routes stall
	// half a torus away.
	probes := []space.Point{{15, 5}, {12, 2}, {18, 8}, {16, 1}, {13, 7}}
	measure := func(poly bool) float64 {
		sc, r := converged(t, 6, poly)
		sc.FailRightHalf()
		sc.Run(20)
		src := sc.Engine.LiveIDs()[0]
		st, err := r.Probe(sc.Engine, src, probes)
		if err != nil {
			t.Fatal(err)
		}
		if st.Truncated > 0 {
			t.Fatalf("poly=%v: %d routes truncated", poly, st.Truncated)
		}
		return st.MeanFinalDistance()
	}
	polyDist := measure(true)
	tmanDist := measure(false)
	if polyDist > 1.5 {
		t.Errorf("Polystyrene routing mean final distance %v, want < 1.5", polyDist)
	}
	if tmanDist < 2*polyDist {
		t.Errorf("T-Man (%v) should be far worse than Polystyrene (%v)", tmanDist, polyDist)
	}
}

func TestProbeStats(t *testing.T) {
	sc, r := converged(t, 7, true)
	st, err := r.Probe(sc.Engine, 0, []space.Point{{1, 1}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes != 2 {
		t.Fatalf("routes = %d", st.Routes)
	}
	if st.MeanHops() < 0 || st.MeanFinalDistance() < 0 {
		t.Fatal("negative stats")
	}
	var empty ProbeStats
	if empty.MeanHops() != 0 || empty.MeanFinalDistance() != 0 {
		t.Fatal("empty stats not zero")
	}
}

// TestDescendMatchesRoute pins the path-free descent to the full Route:
// same delivery node and final distance, across several targets and both
// stack configurations.
func TestDescendMatchesRoute(t *testing.T) {
	for _, poly := range []bool{true, false} {
		sc, r := converged(t, 8, poly)
		for _, target := range []space.Point{{1, 1}, {10, 5}, {19, 9}, {7.3, 2.8}} {
			res, err := r.Route(sc.Engine, 0, target)
			if err != nil {
				t.Fatal(err)
			}
			dest, d, err := r.Descend(sc.Engine, 0, target)
			if err != nil {
				t.Fatal(err)
			}
			if dest != res.Dest || d != res.FinalDistance {
				t.Fatalf("poly=%v target %v: Descend = (%d, %v), Route = (%d, %v)",
					poly, target, dest, d, res.Dest, res.FinalDistance)
			}
		}
	}
}

func TestDescendErrors(t *testing.T) {
	sc, r := converged(t, 9, true)
	sc.Engine.Kill(3)
	if _, _, err := r.Descend(sc.Engine, 3, space.Point{1, 1}); err == nil {
		t.Fatal("descent from a dead node succeeded")
	}
	r.MaxHops = 1
	if _, _, err := r.Descend(sc.Engine, 0, space.Point{10, 5}); err == nil {
		t.Fatal("1-hop budget should truncate a cross-torus descent with an error")
	}
}

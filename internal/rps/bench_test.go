package rps

import (
	"testing"

	"polystyrene/internal/sim"
)

// BenchmarkGossipRound measures one full peer-sampling round over a
// 2,000-node system: the Cyclon shuffle is the innermost loop of every
// experiment, so it must run map-free and with pooled buffers.
func BenchmarkGossipRound(b *testing.B) {
	p := New(Config{})
	e := sim.New(1, p)
	e.AddNodes(2000)
	e.RunRounds(3) // let views fill before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkRandomPeers measures the sampling query the layers above
// issue on every step.
func BenchmarkRandomPeers(b *testing.B) {
	p := New(Config{})
	e := sim.New(2, p)
	e.AddNodes(500)
	e.RunRounds(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.RandomPeers(e, 0, 10)) == 0 {
			b.Fatal("no peers")
		}
	}
}

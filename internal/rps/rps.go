// Package rps implements the peer-sampling service at the bottom of the
// stack (Fig. 2 of the paper): a Cyclon-style gossip shuffle (Voulgaris,
// Gavidia & van Steen, JNSM 2005) that provides every node with a
// continuously refreshed random sample of the live network.
//
// Both layers above depend on it: T-Man seeds and refreshes its view with
// random peers to guarantee convergence (Sec. II-B), and Polystyrene picks
// its K backup nodes "as randomly as possible in the system ... using the
// underlying peer-sampling layer" (Sec. III-D).
//
// Following the paper's accounting ("we ... do not include the peer
// sampling protocol in our measurements", Sec. IV-A), this layer does not
// charge the engine's cost meter.
//
// Views are small (tens of entries), so membership tests are linear scans
// and per-exchange buffers are pooled per worker slot — a shuffle performs
// no map operations and no steady-state allocations. Under the sequential
// engine only slot 0 is ever used; under intra-round exchange batching
// (sim.Batched) each worker owns a slot, and the matcher plans on a
// dedicated plan scratch. A shuffle's conflict set is {initiator, shuffle
// partner}: Step reads and writes only those two views.
package rps

import (
	"polystyrene/internal/sim"
	"polystyrene/internal/xrand"
)

// DefaultViewSize is the Cyclon view size used when Config.ViewSize is 0.
const DefaultViewSize = 20

// DefaultShuffleLen is the number of descriptors exchanged per shuffle
// when Config.ShuffleLen is 0.
const DefaultShuffleLen = 10

// Config parameterises the protocol.
type Config struct {
	// ViewSize is the maximum number of neighbours a node keeps.
	ViewSize int
	// ShuffleLen is the number of descriptors exchanged per shuffle.
	ShuffleLen int
}

func (c Config) withDefaults() Config {
	if c.ViewSize <= 0 {
		c.ViewSize = DefaultViewSize
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = DefaultShuffleLen
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	return c
}

// entry is a view slot: a neighbour ID plus its gossip age.
type entry struct {
	id  sim.NodeID
	age int
}

// scratch is the reusable per-exchange state of one worker slot:
// candidate indices for sampling and the two in-flight message buffers
// (both live across a merge pair, so they need separate backing arrays).
type scratch struct {
	idxBuf []int
	bufA   []entry
	bufB   []entry
}

// Protocol is the peer-sampling layer. It implements sim.Protocol and
// sim.Batched.
type Protocol struct {
	cfg   Config
	views [][]entry

	// ws holds one scratch per worker slot (slot 0 is the sequential
	// engine's); plan is the matcher's dedicated read-only-mirror scratch.
	ws   []scratch
	plan planScratch
}

// planScratch backs the non-mutating selection mirrors PlanStep and the
// Plan* helpers run while the matcher forms batches (single-threaded).
type planScratch struct {
	peers []sim.NodeID
	idx   []int
}

var _ sim.Protocol = (*Protocol)(nil)
var _ sim.Batched = (*Protocol)(nil)

// New returns a peer-sampling protocol with the given configuration.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg.withDefaults(), ws: make([]scratch, 1)}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "rps" }

// scr returns worker slot w's scratch. Slots are sized single-threaded in
// BeginBatchedRound; out-of-range here would be an engine bug.
func (p *Protocol) scr(w int) *scratch { return &p.ws[w] }

// ensureWorkers grows the scratch-slot table to n slots (single-threaded:
// called from BeginBatchedRound before any worker starts).
func (p *Protocol) ensureWorkers(n int) {
	for len(p.ws) < n {
		p.ws = append(p.ws, scratch{})
	}
}

// InitNode implements sim.Protocol: a joining node is bootstrapped with up
// to ViewSize random live peers (this models the out-of-band introduction
// every gossip system needs).
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	for len(p.views) <= int(id) {
		p.views = append(p.views, nil)
	}
	p.views[id] = p.bootstrapView(e.SeqCtx(), id)
}

func (p *Protocol) bootstrapView(ctx *sim.StepCtx, id sim.NodeID) []entry {
	view := make([]entry, 0, p.cfg.ViewSize)
	// Sample without replacement from the live set via rejection; the
	// join-time live set is usually much larger than the view.
	for attempts := 0; len(view) < p.cfg.ViewSize && attempts < 20*p.cfg.ViewSize; attempts++ {
		peer := ctx.RandomLive()
		if peer == sim.None || peer == id || viewContains(view, peer) {
			continue
		}
		view = append(view, entry{id: peer})
	}
	return view
}

// viewContains reports whether id occurs in view. Views hold at most a few
// tens of entries, so a linear scan beats any set structure.
func viewContains(view []entry, id sim.NodeID) bool {
	for _, en := range view {
		if en.id == id {
			return true
		}
	}
	return false
}

// Step implements sim.Protocol: one Cyclon shuffle initiated by id.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.StepW(e.SeqCtx(), id)
}

// StepW implements sim.Batched: the shuffle under an explicit step
// context (the sequential Step routes through it with the engine's
// shared context, byte-identically).
func (p *Protocol) StepW(ctx *sim.StepCtx, id sim.NodeID) {
	e := ctx.Engine()
	p.purgeDead(e, id)
	view := p.views[id]
	if len(view) == 0 {
		p.views[id] = p.bootstrapView(ctx, id)
		view = p.views[id]
		if len(view) == 0 {
			return // alone in the system
		}
	}

	// Age all entries and pick the oldest as the shuffle partner; contacting
	// the oldest entry is what lets Cyclon evict stale (likely dead) links.
	oldest := 0
	for i := range view {
		view[i].age++
		if view[i].age > view[oldest].age {
			oldest = i
		}
	}
	q := view[oldest].id
	// Remove q from p's view; if the exchange succeeds q is replaced by
	// fresh entries, and if q is dead the stale link is gone either way.
	view[oldest] = view[len(view)-1]
	p.views[id] = view[:len(view)-1]
	if !e.Alive(q) {
		return
	}
	ctx.Touch(q)

	scr := p.scr(ctx.Worker())
	p.purgeDead(e, q)
	sentToQ := p.sampleForShuffle(ctx, scr, id, q, p.cfg.ShuffleLen-1, &scr.bufA)
	sentToQ = append(sentToQ, entry{id: id, age: 0}) // fresh self-descriptor
	scr.bufA = sentToQ
	sentToP := p.sampleForShuffle(ctx, scr, q, id, p.cfg.ShuffleLen, &scr.bufB)

	p.merge(id, sentToP, sentToQ)
	p.merge(q, sentToQ, sentToP)
}

// sampleForShuffle picks up to n random entries from owner's view,
// excluding peer itself, into the pooled buffer buf.
func (p *Protocol) sampleForShuffle(ctx *sim.StepCtx, scr *scratch, owner, peer sim.NodeID, n int, buf *[]entry) []entry {
	view := p.views[owner]
	cand := scr.idxBuf[:0]
	for i, en := range view {
		if en.id != peer {
			cand = append(cand, i)
		}
	}
	scr.idxBuf = cand
	if n > len(cand) {
		n = len(cand)
	}
	// Partial Fisher-Yates over the candidate indices: the first n slots
	// become a uniform sample without replacement.
	out := (*buf)[:0]
	rng := ctx.Rand()
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out = append(out, view[cand[i]])
	}
	*buf = out
	return out
}

// merge installs received entries into owner's view, Cyclon style: skip
// self and duplicates, fill free slots first, then overwrite the slots of
// the entries owner just sent away.
func (p *Protocol) merge(owner sim.NodeID, received, sent []entry) {
	view := p.views[owner]
	sentIdx := 0
	for _, en := range received {
		if en.id == owner || viewContains(view, en.id) {
			continue
		}
		if len(view) < p.cfg.ViewSize {
			view = append(view, en)
			continue
		}
		// Replace one of the entries we sent away, if any remain.
		replaced := false
		for ; sentIdx < len(view); sentIdx++ {
			if viewContains(sent, view[sentIdx].id) {
				view[sentIdx] = en
				sentIdx++
				replaced = true
				break
			}
		}
		if !replaced {
			break // view full and nothing left to replace
		}
	}
	p.views[owner] = view
}

// purgeDead removes entries for crashed nodes from id's view.
func (p *Protocol) purgeDead(e *sim.Engine, id sim.NodeID) {
	view := p.views[id]
	kept := view[:0]
	for _, en := range view {
		if e.Alive(en.id) {
			kept = append(kept, en)
		}
	}
	p.views[id] = kept
}

// --- sim.Batched ---

// Batchable implements sim.Batched: shuffles are always pair-local.
func (p *Protocol) Batchable() bool { return true }

// BeginBatchedRound implements sim.Batched, sizing per-worker scratch.
func (p *Protocol) BeginBatchedRound(e *sim.Engine, workers int) {
	p.ensureWorkers(workers)
}

// PlanStep implements sim.Batched: it predicts the shuffle partner of
// StepW(id) — the oldest live view entry, or the head of the bootstrap
// view a node with no live links would draw — without mutating anything,
// and appends {id, partner} (or just {id} for a no-op step) to dst.
func (p *Protocol) PlanStep(e *sim.Engine, rng *xrand.Rand, id sim.NodeID, dst []sim.NodeID) []sim.NodeID {
	dst = append(dst, id)
	// Mirror of purge + age + argmax: purging preserves order and ageing
	// is uniform, so the partner is the first strictly-oldest live entry.
	q, bestAge, found := sim.None, 0, false
	for _, en := range p.views[id] {
		if e.Alive(en.id) && (!found || en.age > bestAge) {
			q, bestAge, found = en.id, en.age, true
		}
	}
	if !found {
		// Mirror of bootstrapView: replicate its rejection sampling
		// draw-for-draw on the throwaway stream; the bootstrapped view's
		// entries all carry age 0, so the partner is its first entry.
		sv := p.plan.peers[:0]
		for attempts := 0; len(sv) < p.cfg.ViewSize && attempts < 20*p.cfg.ViewSize; attempts++ {
			peer := planRandomLive(e, rng)
			if peer == sim.None || peer == id || idsContain(sv, peer) {
				continue
			}
			sv = append(sv, peer)
		}
		p.plan.peers = sv
		if len(sv) == 0 {
			return dst // alone in the system: StepW is a no-op
		}
		q = sv[0]
	}
	return append(dst, q)
}

// FlushBatch implements sim.Batched (the shuffle defers nothing).
func (p *Protocol) FlushBatch(e *sim.Engine) {}

// EndBatchedRound implements sim.Batched.
func (p *Protocol) EndBatchedRound(e *sim.Engine) {}

// planRandomLive is StepCtx.RandomLive against an explicit stream, for
// plan mirrors.
func planRandomLive(e *sim.Engine, rng *xrand.Rand) sim.NodeID {
	if e.NumLive() == 0 {
		return sim.None
	}
	return e.LiveAt(rng.Intn(e.NumLive()))
}

func idsContain(ids []sim.NodeID, id sim.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// --- queries used by the layers above ---

// View returns a copy of id's current view (live and stale entries alike).
func (p *Protocol) View(id sim.NodeID) []sim.NodeID {
	view := p.views[id]
	out := make([]sim.NodeID, len(view))
	for i, en := range view {
		out[i] = en.id
	}
	return out
}

// RandomPeer returns a uniformly random live peer from id's view, or
// sim.None when the view holds no live peer. Layers above use this as
// their source of fresh random nodes.
func (p *Protocol) RandomPeer(e *sim.Engine, id sim.NodeID) sim.NodeID {
	return p.RandomPeerW(e.SeqCtx(), id)
}

// RandomPeerW is RandomPeer under an explicit step context: the drawing
// stream comes from the context, as do the caller's scratch slots.
func (p *Protocol) RandomPeerW(ctx *sim.StepCtx, id sim.NodeID) sim.NodeID {
	p.purgeDead(ctx.Engine(), id)
	view := p.views[id]
	if len(view) == 0 {
		return sim.None
	}
	return view[ctx.Rand().Intn(len(view))].id
}

// PlanRandomPeer predicts what RandomPeerW(ctx, id) will return for a
// context whose stream is (a copy of) rng, without mutating the view —
// the selection mirror the batch matcher uses. Exactly one Intn is drawn
// iff the view holds a live peer, matching RandomPeerW draw-for-draw.
func (p *Protocol) PlanRandomPeer(e *sim.Engine, rng *xrand.Rand, id sim.NodeID) sim.NodeID {
	live := p.plan.peers[:0]
	for _, en := range p.views[id] {
		if e.Alive(en.id) {
			live = append(live, en.id)
		}
	}
	p.plan.peers = live
	if len(live) == 0 {
		return sim.None
	}
	return live[rng.Intn(len(live))]
}

// RandomPeers returns up to n distinct live peers from id's view as a
// fresh slice. Hot paths use AppendRandomPeers, which does not allocate.
func (p *Protocol) RandomPeers(e *sim.Engine, id sim.NodeID, n int) []sim.NodeID {
	if n <= 0 {
		return nil
	}
	out := p.AppendRandomPeers(make([]sim.NodeID, 0, n), e, id, n)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendRandomPeers appends up to n distinct live peers from id's view to
// dst and returns the extended slice — the allocation-free variant of
// RandomPeers for callers with a reusable buffer (backup top-up, view
// re-seeding). The draw sequence is identical to RandomPeers'.
func (p *Protocol) AppendRandomPeers(dst []sim.NodeID, e *sim.Engine, id sim.NodeID, n int) []sim.NodeID {
	return p.AppendRandomPeersW(e.SeqCtx(), dst, id, n)
}

// AppendRandomPeersW is AppendRandomPeers under an explicit step context.
func (p *Protocol) AppendRandomPeersW(ctx *sim.StepCtx, dst []sim.NodeID, id sim.NodeID, n int) []sim.NodeID {
	p.purgeDead(ctx.Engine(), id)
	view := p.views[id]
	if n > len(view) {
		n = len(view)
	}
	if n <= 0 {
		return dst
	}
	scr := p.scr(ctx.Worker())
	cand := scr.idxBuf[:0]
	for i := range view {
		cand = append(cand, i)
	}
	scr.idxBuf = cand
	rng := ctx.Rand()
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		dst = append(dst, view[cand[i]].id)
	}
	return dst
}

// AppendPlanRandomPeers predicts what AppendRandomPeersW(ctx, dst, id, n)
// will append for a context whose stream is (a copy of) rng, without
// mutating the view — draw-for-draw identical to the real call, over the
// plan scratch.
func (p *Protocol) AppendPlanRandomPeers(dst []sim.NodeID, e *sim.Engine, rng *xrand.Rand, id sim.NodeID, n int) []sim.NodeID {
	live := p.plan.peers[:0]
	for _, en := range p.views[id] {
		if e.Alive(en.id) {
			live = append(live, en.id)
		}
	}
	p.plan.peers = live
	if n > len(live) {
		n = len(live)
	}
	if n <= 0 {
		return dst
	}
	cand := p.plan.idx[:0]
	for i := range live {
		cand = append(cand, i)
	}
	p.plan.idx = cand
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		dst = append(dst, live[cand[i]])
	}
	return dst
}

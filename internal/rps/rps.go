// Package rps implements the peer-sampling service at the bottom of the
// stack (Fig. 2 of the paper): a Cyclon-style gossip shuffle (Voulgaris,
// Gavidia & van Steen, JNSM 2005) that provides every node with a
// continuously refreshed random sample of the live network.
//
// Both layers above depend on it: T-Man seeds and refreshes its view with
// random peers to guarantee convergence (Sec. II-B), and Polystyrene picks
// its K backup nodes "as randomly as possible in the system ... using the
// underlying peer-sampling layer" (Sec. III-D).
//
// Following the paper's accounting ("we ... do not include the peer
// sampling protocol in our measurements", Sec. IV-A), this layer does not
// charge the engine's cost meter.
//
// Views are small (tens of entries), so membership tests are linear scans
// and per-exchange buffers are pooled on the protocol instance — a shuffle
// performs no map operations and no steady-state allocations. The engine
// is sequential, so one scratch set per protocol instance is safe.
package rps

import (
	"polystyrene/internal/sim"
)

// DefaultViewSize is the Cyclon view size used when Config.ViewSize is 0.
const DefaultViewSize = 20

// DefaultShuffleLen is the number of descriptors exchanged per shuffle
// when Config.ShuffleLen is 0.
const DefaultShuffleLen = 10

// Config parameterises the protocol.
type Config struct {
	// ViewSize is the maximum number of neighbours a node keeps.
	ViewSize int
	// ShuffleLen is the number of descriptors exchanged per shuffle.
	ShuffleLen int
}

func (c Config) withDefaults() Config {
	if c.ViewSize <= 0 {
		c.ViewSize = DefaultViewSize
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = DefaultShuffleLen
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	return c
}

// entry is a view slot: a neighbour ID plus its gossip age.
type entry struct {
	id  sim.NodeID
	age int
}

// Protocol is the peer-sampling layer. It implements sim.Protocol.
type Protocol struct {
	cfg   Config
	views [][]entry

	// Reusable per-exchange scratch: candidate indices for sampling and
	// the two in-flight message buffers (both live across a merge pair, so
	// they need separate backing arrays).
	idxBuf []int
	bufA   []entry
	bufB   []entry
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns a peer-sampling protocol with the given configuration.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg.withDefaults()}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "rps" }

// InitNode implements sim.Protocol: a joining node is bootstrapped with up
// to ViewSize random live peers (this models the out-of-band introduction
// every gossip system needs).
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	for len(p.views) <= int(id) {
		p.views = append(p.views, nil)
	}
	p.views[id] = p.bootstrapView(e, id)
}

func (p *Protocol) bootstrapView(e *sim.Engine, id sim.NodeID) []entry {
	view := make([]entry, 0, p.cfg.ViewSize)
	// Sample without replacement from the live set via rejection; the
	// join-time live set is usually much larger than the view.
	for attempts := 0; len(view) < p.cfg.ViewSize && attempts < 20*p.cfg.ViewSize; attempts++ {
		peer := e.RandomLive()
		if peer == sim.None || peer == id || viewContains(view, peer) {
			continue
		}
		view = append(view, entry{id: peer})
	}
	return view
}

// viewContains reports whether id occurs in view. Views hold at most a few
// tens of entries, so a linear scan beats any set structure.
func viewContains(view []entry, id sim.NodeID) bool {
	for _, en := range view {
		if en.id == id {
			return true
		}
	}
	return false
}

// Step implements sim.Protocol: one Cyclon shuffle initiated by id.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.purgeDead(e, id)
	view := p.views[id]
	if len(view) == 0 {
		p.views[id] = p.bootstrapView(e, id)
		view = p.views[id]
		if len(view) == 0 {
			return // alone in the system
		}
	}

	// Age all entries and pick the oldest as the shuffle partner; contacting
	// the oldest entry is what lets Cyclon evict stale (likely dead) links.
	oldest := 0
	for i := range view {
		view[i].age++
		if view[i].age > view[oldest].age {
			oldest = i
		}
	}
	q := view[oldest].id
	// Remove q from p's view; if the exchange succeeds q is replaced by
	// fresh entries, and if q is dead the stale link is gone either way.
	view[oldest] = view[len(view)-1]
	p.views[id] = view[:len(view)-1]
	if !e.Alive(q) {
		return
	}

	p.purgeDead(e, q)
	sentToQ := p.sampleForShuffle(e, id, q, p.cfg.ShuffleLen-1, &p.bufA)
	sentToQ = append(sentToQ, entry{id: id, age: 0}) // fresh self-descriptor
	p.bufA = sentToQ
	sentToP := p.sampleForShuffle(e, q, id, p.cfg.ShuffleLen, &p.bufB)

	p.merge(id, sentToP, sentToQ)
	p.merge(q, sentToQ, sentToP)
}

// sampleForShuffle picks up to n random entries from owner's view,
// excluding peer itself, into the pooled buffer buf.
func (p *Protocol) sampleForShuffle(e *sim.Engine, owner, peer sim.NodeID, n int, buf *[]entry) []entry {
	view := p.views[owner]
	cand := p.idxBuf[:0]
	for i, en := range view {
		if en.id != peer {
			cand = append(cand, i)
		}
	}
	p.idxBuf = cand
	if n > len(cand) {
		n = len(cand)
	}
	// Partial Fisher-Yates over the candidate indices: the first n slots
	// become a uniform sample without replacement.
	out := (*buf)[:0]
	rng := e.Rand()
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out = append(out, view[cand[i]])
	}
	*buf = out
	return out
}

// merge installs received entries into owner's view, Cyclon style: skip
// self and duplicates, fill free slots first, then overwrite the slots of
// the entries owner just sent away.
func (p *Protocol) merge(owner sim.NodeID, received, sent []entry) {
	view := p.views[owner]
	sentIdx := 0
	for _, en := range received {
		if en.id == owner || viewContains(view, en.id) {
			continue
		}
		if len(view) < p.cfg.ViewSize {
			view = append(view, en)
			continue
		}
		// Replace one of the entries we sent away, if any remain.
		replaced := false
		for ; sentIdx < len(view); sentIdx++ {
			if viewContains(sent, view[sentIdx].id) {
				view[sentIdx] = en
				sentIdx++
				replaced = true
				break
			}
		}
		if !replaced {
			break // view full and nothing left to replace
		}
	}
	p.views[owner] = view
}

// purgeDead removes entries for crashed nodes from id's view.
func (p *Protocol) purgeDead(e *sim.Engine, id sim.NodeID) {
	view := p.views[id]
	kept := view[:0]
	for _, en := range view {
		if e.Alive(en.id) {
			kept = append(kept, en)
		}
	}
	p.views[id] = kept
}

// View returns a copy of id's current view (live and stale entries alike).
func (p *Protocol) View(id sim.NodeID) []sim.NodeID {
	view := p.views[id]
	out := make([]sim.NodeID, len(view))
	for i, en := range view {
		out[i] = en.id
	}
	return out
}

// RandomPeer returns a uniformly random live peer from id's view, or
// sim.None when the view holds no live peer. Layers above use this as
// their source of fresh random nodes.
func (p *Protocol) RandomPeer(e *sim.Engine, id sim.NodeID) sim.NodeID {
	p.purgeDead(e, id)
	view := p.views[id]
	if len(view) == 0 {
		return sim.None
	}
	return view[e.Rand().Intn(len(view))].id
}

// RandomPeers returns up to n distinct live peers from id's view.
func (p *Protocol) RandomPeers(e *sim.Engine, id sim.NodeID, n int) []sim.NodeID {
	p.purgeDead(e, id)
	view := p.views[id]
	if n > len(view) {
		n = len(view)
	}
	if n <= 0 {
		return nil
	}
	cand := p.idxBuf[:0]
	for i := range view {
		cand = append(cand, i)
	}
	p.idxBuf = cand
	out := make([]sim.NodeID, 0, n)
	rng := e.Rand()
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out = append(out, view[cand[i]].id)
	}
	return out
}

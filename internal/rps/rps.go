// Package rps implements the peer-sampling service at the bottom of the
// stack (Fig. 2 of the paper): a Cyclon-style gossip shuffle (Voulgaris,
// Gavidia & van Steen, JNSM 2005) that provides every node with a
// continuously refreshed random sample of the live network.
//
// Both layers above depend on it: T-Man seeds and refreshes its view with
// random peers to guarantee convergence (Sec. II-B), and Polystyrene picks
// its K backup nodes "as randomly as possible in the system ... using the
// underlying peer-sampling layer" (Sec. III-D).
//
// Following the paper's accounting ("we ... do not include the peer
// sampling protocol in our measurements", Sec. IV-A), this layer does not
// charge the engine's cost meter.
package rps

import (
	"polystyrene/internal/sim"
)

// DefaultViewSize is the Cyclon view size used when Config.ViewSize is 0.
const DefaultViewSize = 20

// DefaultShuffleLen is the number of descriptors exchanged per shuffle
// when Config.ShuffleLen is 0.
const DefaultShuffleLen = 10

// Config parameterises the protocol.
type Config struct {
	// ViewSize is the maximum number of neighbours a node keeps.
	ViewSize int
	// ShuffleLen is the number of descriptors exchanged per shuffle.
	ShuffleLen int
}

func (c Config) withDefaults() Config {
	if c.ViewSize <= 0 {
		c.ViewSize = DefaultViewSize
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = DefaultShuffleLen
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	return c
}

// entry is a view slot: a neighbour ID plus its gossip age.
type entry struct {
	id  sim.NodeID
	age int
}

// Protocol is the peer-sampling layer. It implements sim.Protocol.
type Protocol struct {
	cfg   Config
	views [][]entry
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns a peer-sampling protocol with the given configuration.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg.withDefaults()}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "rps" }

// InitNode implements sim.Protocol: a joining node is bootstrapped with up
// to ViewSize random live peers (this models the out-of-band introduction
// every gossip system needs).
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	for len(p.views) <= int(id) {
		p.views = append(p.views, nil)
	}
	p.views[id] = p.bootstrapView(e, id)
}

func (p *Protocol) bootstrapView(e *sim.Engine, id sim.NodeID) []entry {
	view := make([]entry, 0, p.cfg.ViewSize)
	seen := map[sim.NodeID]bool{id: true}
	// Sample without replacement from the live set via rejection; the
	// join-time live set is usually much larger than the view.
	for attempts := 0; len(view) < p.cfg.ViewSize && attempts < 20*p.cfg.ViewSize; attempts++ {
		peer := e.RandomLive()
		if peer == sim.None || seen[peer] {
			continue
		}
		seen[peer] = true
		view = append(view, entry{id: peer})
	}
	return view
}

// Step implements sim.Protocol: one Cyclon shuffle initiated by id.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.purgeDead(e, id)
	view := p.views[id]
	if len(view) == 0 {
		p.views[id] = p.bootstrapView(e, id)
		view = p.views[id]
		if len(view) == 0 {
			return // alone in the system
		}
	}

	// Age all entries and pick the oldest as the shuffle partner; contacting
	// the oldest entry is what lets Cyclon evict stale (likely dead) links.
	oldest := 0
	for i := range view {
		view[i].age++
		if view[i].age > view[oldest].age {
			oldest = i
		}
	}
	q := view[oldest].id
	// Remove q from p's view; if the exchange succeeds q is replaced by
	// fresh entries, and if q is dead the stale link is gone either way.
	view[oldest] = view[len(view)-1]
	p.views[id] = view[:len(view)-1]
	if !e.Alive(q) {
		return
	}

	p.purgeDead(e, q)
	sentToQ := p.sampleForShuffle(e, id, q, p.cfg.ShuffleLen-1)
	sentToQ = append(sentToQ, entry{id: id, age: 0}) // fresh self-descriptor
	sentToP := p.sampleForShuffle(e, q, id, p.cfg.ShuffleLen)

	p.merge(id, sentToP, sentToQ)
	p.merge(q, sentToQ, sentToP)
}

// sampleForShuffle picks up to n random entries from owner's view,
// excluding peer itself.
func (p *Protocol) sampleForShuffle(e *sim.Engine, owner, peer sim.NodeID, n int) []entry {
	view := p.views[owner]
	candidates := make([]int, 0, len(view))
	for i, en := range view {
		if en.id != peer {
			candidates = append(candidates, i)
		}
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	out := make([]entry, 0, n+1)
	for _, idx := range e.Rand().Sample(len(candidates), n) {
		out = append(out, view[candidates[idx]])
	}
	return out
}

// merge installs received entries into owner's view, Cyclon style: skip
// self and duplicates, fill free slots first, then overwrite the slots of
// the entries owner just sent away.
func (p *Protocol) merge(owner sim.NodeID, received, sent []entry) {
	view := p.views[owner]
	present := make(map[sim.NodeID]bool, len(view)+1)
	present[owner] = true
	for _, en := range view {
		present[en.id] = true
	}
	sentIdx := 0
	sentSet := make(map[sim.NodeID]bool, len(sent))
	for _, en := range sent {
		sentSet[en.id] = true
	}
	for _, en := range received {
		if present[en.id] {
			continue
		}
		present[en.id] = true
		if len(view) < p.cfg.ViewSize {
			view = append(view, en)
			continue
		}
		// Replace one of the entries we sent away, if any remain.
		replaced := false
		for ; sentIdx < len(view); sentIdx++ {
			if sentSet[view[sentIdx].id] {
				view[sentIdx] = en
				sentIdx++
				replaced = true
				break
			}
		}
		if !replaced {
			break // view full and nothing left to replace
		}
	}
	p.views[owner] = view
}

// purgeDead removes entries for crashed nodes from id's view.
func (p *Protocol) purgeDead(e *sim.Engine, id sim.NodeID) {
	view := p.views[id]
	kept := view[:0]
	for _, en := range view {
		if e.Alive(en.id) {
			kept = append(kept, en)
		}
	}
	p.views[id] = kept
}

// View returns a copy of id's current view (live and stale entries alike).
func (p *Protocol) View(id sim.NodeID) []sim.NodeID {
	view := p.views[id]
	out := make([]sim.NodeID, len(view))
	for i, en := range view {
		out[i] = en.id
	}
	return out
}

// RandomPeer returns a uniformly random live peer from id's view, or
// sim.None when the view holds no live peer. Layers above use this as
// their source of fresh random nodes.
func (p *Protocol) RandomPeer(e *sim.Engine, id sim.NodeID) sim.NodeID {
	p.purgeDead(e, id)
	view := p.views[id]
	if len(view) == 0 {
		return sim.None
	}
	return view[e.Rand().Intn(len(view))].id
}

// RandomPeers returns up to n distinct live peers from id's view.
func (p *Protocol) RandomPeers(e *sim.Engine, id sim.NodeID, n int) []sim.NodeID {
	p.purgeDead(e, id)
	view := p.views[id]
	if n > len(view) {
		n = len(view)
	}
	out := make([]sim.NodeID, 0, n)
	for _, idx := range e.Rand().Sample(len(view), n) {
		out = append(out, view[idx].id)
	}
	return out
}

package rps

import (
	"testing"

	"polystyrene/internal/sim"
)

func newNetwork(t *testing.T, seed uint64, n int, cfg Config) (*sim.Engine, *Protocol) {
	t.Helper()
	p := New(cfg)
	e := sim.New(seed, p)
	e.AddNodes(n)
	return e, p
}

func checkViewInvariants(t *testing.T, e *sim.Engine, p *Protocol) {
	t.Helper()
	for _, id := range e.LiveIDs() {
		view := p.View(id)
		if len(view) > p.cfg.ViewSize {
			t.Fatalf("node %d view size %d exceeds cap %d", id, len(view), p.cfg.ViewSize)
		}
		seen := map[sim.NodeID]bool{}
		for _, peer := range view {
			if peer == id {
				t.Fatalf("node %d has itself in its view", id)
			}
			if seen[peer] {
				t.Fatalf("node %d has duplicate entry %d", id, peer)
			}
			seen[peer] = true
		}
	}
}

func TestBootstrapViews(t *testing.T) {
	e, p := newNetwork(t, 1, 100, Config{})
	checkViewInvariants(t, e, p)
	// The very first node joins an empty network and legitimately starts
	// with no neighbours; every later joiner must know someone.
	for _, id := range e.LiveIDs()[1:] {
		if len(p.View(id)) == 0 {
			t.Fatalf("node %d bootstrapped with empty view", id)
		}
	}
	// After one shuffle round even the first node is integrated.
	e.RunRounds(1)
	for _, id := range e.LiveIDs() {
		if len(p.View(id)) == 0 {
			t.Fatalf("node %d still has an empty view after a round", id)
		}
	}
}

func TestInvariantsHoldOverRounds(t *testing.T) {
	e, p := newNetwork(t, 2, 200, Config{ViewSize: 15, ShuffleLen: 8})
	for i := 0; i < 30; i++ {
		e.RunRounds(1)
		checkViewInvariants(t, e, p)
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	e, p := newNetwork(t, 3, 1, Config{})
	e.RunRounds(5) // must not panic or loop
	if len(p.View(0)) != 0 {
		t.Fatalf("lone node should have an empty view, got %v", p.View(0))
	}
	if p.RandomPeer(e, 0) != sim.None {
		t.Fatal("lone node RandomPeer should be None")
	}
}

func TestConnectivityAfterShuffles(t *testing.T) {
	// The union of views must keep the network connected (reachability from
	// node 0 covers everyone) after many shuffles.
	e, p := newNetwork(t, 4, 300, Config{})
	e.RunRounds(20)
	reached := map[sim.NodeID]bool{0: true}
	frontier := []sim.NodeID{0}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, id := range frontier {
			for _, peer := range p.View(id) {
				if !reached[peer] {
					reached[peer] = true
					next = append(next, peer)
				}
			}
		}
		frontier = next
	}
	if len(reached) != 300 {
		t.Fatalf("network partitioned: reached %d of 300", len(reached))
	}
}

func TestDeadNeighboursPurged(t *testing.T) {
	e, p := newNetwork(t, 5, 100, Config{ViewSize: 10, ShuffleLen: 5})
	e.RunRounds(5)
	// Kill half the network; stale links must disappear from live views.
	for id := sim.NodeID(50); id < 100; id++ {
		e.Kill(id)
	}
	e.RunRounds(15)
	for _, id := range e.LiveIDs() {
		for _, peer := range p.View(id) {
			if !e.Alive(peer) {
				t.Fatalf("node %d still references dead node %d after 15 rounds", id, peer)
			}
		}
	}
}

func TestRandomPeerLiveAndCovering(t *testing.T) {
	e, p := newNetwork(t, 6, 60, Config{})
	e.RunRounds(10)
	covered := map[sim.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		peer := p.RandomPeer(e, 0)
		if peer == sim.None {
			t.Fatal("RandomPeer returned None in a populated network")
		}
		if !e.Alive(peer) {
			t.Fatalf("RandomPeer returned dead node %d", peer)
		}
		covered[peer] = true
		// Keep shuffling so the view refreshes and coverage grows.
		if i%50 == 49 {
			e.RunRounds(1)
		}
	}
	// Over 40 rounds of shuffling, node 0 should have seen a large part of
	// the 59 other nodes through its view.
	if len(covered) < 40 {
		t.Fatalf("RandomPeer coverage too small: %d distinct peers", len(covered))
	}
}

func TestRandomPeersDistinct(t *testing.T) {
	e, p := newNetwork(t, 7, 50, Config{})
	e.RunRounds(5)
	peers := p.RandomPeers(e, 0, 5)
	if len(peers) == 0 {
		t.Fatal("RandomPeers returned nothing")
	}
	seen := map[sim.NodeID]bool{}
	for _, peer := range peers {
		if seen[peer] {
			t.Fatalf("duplicate peer %d", peer)
		}
		if !e.Alive(peer) {
			t.Fatalf("dead peer %d", peer)
		}
		seen[peer] = true
	}
	// Asking for more than the view holds returns what is available.
	many := p.RandomPeers(e, 0, 1000)
	if len(many) > p.cfg.ViewSize {
		t.Fatalf("RandomPeers returned %d > view cap", len(many))
	}
}

func TestIndegreeBalance(t *testing.T) {
	// Cyclon keeps in-degrees concentrated: no node should be referenced
	// wildly more than average after mixing.
	e, p := newNetwork(t, 8, 200, Config{})
	e.RunRounds(30)
	indeg := map[sim.NodeID]int{}
	total := 0
	for _, id := range e.LiveIDs() {
		for _, peer := range p.View(id) {
			indeg[peer]++
			total++
		}
	}
	mean := float64(total) / 200
	for id, d := range indeg {
		if float64(d) > 5*mean {
			t.Errorf("node %d in-degree %d, mean %.1f: badly skewed", id, d, mean)
		}
	}
}

func TestLateJoinersIntegrate(t *testing.T) {
	e, p := newNetwork(t, 9, 50, Config{})
	e.RunRounds(10)
	newcomers := e.AddNodes(50)
	e.RunRounds(15)
	checkViewInvariants(t, e, p)
	// Newcomers must appear in some old node's view (they are discoverable).
	known := map[sim.NodeID]bool{}
	for _, id := range e.LiveIDs() {
		for _, peer := range p.View(id) {
			known[peer] = true
		}
	}
	missing := 0
	for _, id := range newcomers {
		if !known[id] {
			missing++
		}
	}
	if missing > 5 {
		t.Fatalf("%d of 50 newcomers still undiscovered after 15 rounds", missing)
	}
}

func TestReBootstrapAfterTotalViewLoss(t *testing.T) {
	// If every neighbour of a node dies, the node re-bootstraps.
	e, p := newNetwork(t, 10, 30, Config{ViewSize: 5, ShuffleLen: 3})
	e.RunRounds(3)
	victim := sim.NodeID(0)
	for _, peer := range p.View(victim) {
		e.Kill(peer)
	}
	e.RunRounds(3)
	view := p.View(victim)
	if len(view) == 0 {
		t.Fatal("node did not re-bootstrap after losing its whole view")
	}
	for _, peer := range view {
		if !e.Alive(peer) {
			t.Fatalf("re-bootstrapped view contains dead node %d", peer)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ViewSize != DefaultViewSize || cfg.ShuffleLen != DefaultShuffleLen {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{ViewSize: 4, ShuffleLen: 10}.withDefaults()
	if cfg.ShuffleLen != 4 {
		t.Fatalf("shuffle length not clamped to view size: %+v", cfg)
	}
}

func TestRPSChargesNothing(t *testing.T) {
	e, _ := newNetwork(t, 11, 50, Config{})
	e.RunRounds(10)
	if cost := e.Meter().TotalCost("rps"); cost != 0 {
		t.Fatalf("rps charged %d units; the paper excludes peer sampling from cost accounting", cost)
	}
}

package rps

import (
	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
)

var _ sim.Snapshotter = (*Protocol)(nil)

// SnapshotState implements sim.Snapshotter. The per-node views (IDs and
// ages) are the protocol's only cross-round state; worker scratch and the
// matcher's plan mirrors are rebuilt every round.
func (p *Protocol) SnapshotState(w *snap.Writer) {
	w.Len(len(p.views))
	for _, v := range p.views {
		w.Len(len(v))
		for _, e := range v {
			w.Int(int(e.id))
			w.Int(e.age)
		}
	}
}

// RestoreState implements sim.Snapshotter.
func (p *Protocol) RestoreState(r *snap.Reader) error {
	n := r.Len(8)
	views := make([][]entry, n)
	for i := range views {
		ln := r.Len(16)
		v := make([]entry, ln)
		for j := range v {
			v[j].id = sim.NodeID(r.Int())
			v[j].age = r.Int()
		}
		views[i] = v
	}
	if err := r.Err(); err != nil {
		return err
	}
	p.views = views
	return nil
}

// Package runner executes independent simulation jobs with bounded
// parallelism. Repeated experiments (Table II repetitions, Fig. 10 sweep
// cells) are embarrassingly parallel — every run owns its engine and PRNG —
// so on multi-core machines the harness fans them out across goroutines.
//
// Determinism is preserved by construction: each job writes only to its
// own index of a pre-sized result slice, and callers fold results in index
// order, so the output is identical regardless of scheduling.
//
// Jobs may themselves be internally parallel (engines running intra-round
// exchange batching, sim.SetExchangeParallelism); a Budget splits one
// machine-wide worker budget between the two levels so a sweep does not
// oversubscribe the cores, and additionally bounds how many jobs may run
// at once by memory — each sweep cell owns a full engine whose footprint
// scales with its node count, and at large grids memory, not cores, is
// the wall hit first. The split never affects results: cell-level results
// fold in index order, and exchange results are byte-identical at every
// worker count >= 1.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Budget describes the resources a fan-out may consume: a goroutine
// budget split between concurrent jobs and per-job exchange workers, and
// an optional memory budget that further bounds concurrent jobs by their
// estimated footprint. The zero value means "all cores, sequential
// engines, unbounded memory".
type Budget struct {
	// Workers is the total goroutine budget across concurrent jobs and
	// their exchange workers; <= 0 means GOMAXPROCS.
	Workers int
	// ExchangeCap caps the exchange workers inside each job: 0 keeps jobs
	// on the legacy sequential engine (a semantically different
	// trajectory, so it is never enabled implicitly), any value >= 1
	// switches jobs to the batched engine, whose results are identical at
	// every worker count >= 1.
	ExchangeCap int
	// MemBytes bounds the total estimated footprint of concurrently
	// running jobs; <= 0 means unbounded.
	MemBytes int64
	// JobBytes is the estimated footprint of one job (callers estimate it
	// from the job's engine size — nodes x layer count — or override it
	// with a measured value). <= 0 means unknown, which disables the
	// memory bound.
	JobBytes int64
}

// Split resolves the budget for a fan-out of the given job count:
// parallelism is how many jobs may run at once and perJob the exchange
// worker count inside each. Jobs fan out first — outer parallelism scales
// with no coordination cost — bounded by the memory budget when one is
// given (always allowing at least one job, or nothing would ever run);
// leftover worker budget is spent inside each job: perJob =
// min(ExchangeCap, max(1, Workers/parallelism)).
func (b Budget) Split(jobs int) (parallelism, perJob int) {
	budget := b.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if jobs < 1 {
		jobs = 1
	}
	parallelism = budget
	if parallelism > jobs {
		parallelism = jobs
	}
	if b.MemBytes > 0 && b.JobBytes > 0 {
		memJobs := int(b.MemBytes / b.JobBytes)
		if memJobs < 1 {
			memJobs = 1
		}
		if parallelism > memJobs {
			parallelism = memJobs
		}
	}
	if b.ExchangeCap <= 0 {
		return parallelism, 0
	}
	perJob = budget / parallelism
	if perJob < 1 {
		perJob = 1
	}
	if perJob > b.ExchangeCap {
		perJob = b.ExchangeCap
	}
	return parallelism, perJob
}

// ComposeBudget splits a total worker budget between concurrently running
// jobs and per-job exchange workers: Budget{Workers: budget, ExchangeCap:
// exchangeCap}.Split(jobs) — the memory-unbounded composition, kept for
// callers without a footprint estimate.
func ComposeBudget(budget, jobs, exchangeCap int) (parallelism, perJob int) {
	return Budget{Workers: budget, ExchangeCap: exchangeCap}.Split(jobs)
}

// Map runs fn(0), ..., fn(n-1) using at most parallelism concurrent
// goroutines (0 means GOMAXPROCS) and waits for all of them. All jobs are
// always executed; if any fail, Map returns the error of the
// lowest-indexed failing job.
func Map(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if fn == nil {
		return fmt.Errorf("runner: nil job function")
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall converts a panicking job into an error so one bad experiment
// cannot take the whole sweep down.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Package runner executes independent simulation jobs with bounded
// parallelism. Repeated experiments (Table II repetitions, Fig. 10 sweep
// cells) are embarrassingly parallel — every run owns its engine and PRNG —
// so on multi-core machines the harness fans them out across goroutines.
//
// Determinism is preserved by construction: each job writes only to its
// own index of a pre-sized result slice, and callers fold results in index
// order, so the output is identical regardless of scheduling.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Map runs fn(0), ..., fn(n-1) using at most parallelism concurrent
// goroutines (0 means GOMAXPROCS) and waits for all of them. All jobs are
// always executed; if any fail, Map returns the error of the
// lowest-indexed failing job.
func Map(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if fn == nil {
		return fmt.Errorf("runner: nil job function")
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall converts a panicking job into an error so one bad experiment
// cannot take the whole sweep down.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Package runner executes independent simulation jobs with bounded
// parallelism. Repeated experiments (Table II repetitions, Fig. 10 sweep
// cells) are embarrassingly parallel — every run owns its engine and PRNG —
// so on multi-core machines the harness fans them out across goroutines.
//
// Determinism is preserved by construction: each job writes only to its
// own index of a pre-sized result slice, and callers fold results in index
// order, so the output is identical regardless of scheduling.
//
// Jobs may themselves be internally parallel (engines running intra-round
// exchange batching, sim.SetExchangeParallelism); ComposeBudget splits one
// machine-wide worker budget between the two levels so a sweep does not
// oversubscribe the cores. The split never affects results: cell-level
// results fold in index order, and exchange results are byte-identical at
// every worker count >= 1.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// ComposeBudget splits a total worker budget between concurrently running
// jobs and per-job exchange workers. budget <= 0 means GOMAXPROCS.
// exchangeCap is the per-job ceiling the caller asked for: 0 disables
// intra-round parallelism entirely (perJob = 0, the legacy sequential
// engine — a semantically different trajectory, so it is never enabled
// implicitly). Otherwise jobs are fanned out first — outer parallelism
// scales with no coordination cost — and leftover budget is spent inside
// each job, bounded by exchangeCap: perJob = min(exchangeCap,
// max(1, budget/jobs)).
func ComposeBudget(budget, jobs, exchangeCap int) (parallelism, perJob int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if jobs < 1 {
		jobs = 1
	}
	parallelism = budget
	if parallelism > jobs {
		parallelism = jobs
	}
	if exchangeCap <= 0 {
		return parallelism, 0
	}
	perJob = budget / parallelism
	if perJob < 1 {
		perJob = 1
	}
	if perJob > exchangeCap {
		perJob = exchangeCap
	}
	return parallelism, perJob
}

// Map runs fn(0), ..., fn(n-1) using at most parallelism concurrent
// goroutines (0 means GOMAXPROCS) and waits for all of them. All jobs are
// always executed; if any fail, Map returns the error of the
// lowest-indexed failing job.
func Map(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if fn == nil {
		return fmt.Errorf("runner: nil job function")
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = safeCall(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall converts a panicking job into an error so one bad experiment
// cannot take the whole sweep down.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

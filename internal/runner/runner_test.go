package runner

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllJobs(t *testing.T) {
	const n = 50
	var ran [n]int32
	err := Map(4, n, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if err := Map(4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapNilFn(t *testing.T) {
	if err := Map(1, 3, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Map(8, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want lowest-indexed error %v", err, errA)
	}
}

func TestMapAllJobsRunDespiteError(t *testing.T) {
	var ran int32
	_ = Map(2, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if ran != 20 {
		t.Fatalf("only %d of 20 jobs ran after an error", ran)
	}
}

func TestMapRecoversPanics(t *testing.T) {
	err := Map(2, 5, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestMapDefaultsParallelism(t *testing.T) {
	var ran int32
	if err := Map(0, 7, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 7 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestMapSequentialDeterministicFold(t *testing.T) {
	// The documented usage pattern: jobs write to their own slot; folding
	// in index order is deterministic regardless of scheduling.
	results := make([]int, 100)
	if err := Map(8, 100, func(i int) error { results[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range results {
		sum += v
	}
	if sum != 328350 {
		t.Fatalf("sum = %d", sum)
	}
}

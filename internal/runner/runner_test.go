package runner

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllJobs(t *testing.T) {
	const n = 50
	var ran [n]int32
	err := Map(4, n, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if err := Map(4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapNilFn(t *testing.T) {
	if err := Map(1, 3, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Map(8, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want lowest-indexed error %v", err, errA)
	}
}

func TestMapAllJobsRunDespiteError(t *testing.T) {
	var ran int32
	_ = Map(2, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if ran != 20 {
		t.Fatalf("only %d of 20 jobs ran after an error", ran)
	}
}

func TestMapRecoversPanics(t *testing.T) {
	err := Map(2, 5, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestMapDefaultsParallelism(t *testing.T) {
	var ran int32
	if err := Map(0, 7, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 7 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestMapSequentialDeterministicFold(t *testing.T) {
	// The documented usage pattern: jobs write to their own slot; folding
	// in index order is deterministic regardless of scheduling.
	results := make([]int, 100)
	if err := Map(8, 100, func(i int) error { results[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range results {
		sum += v
	}
	if sum != 328350 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestComposeBudget(t *testing.T) {
	cases := []struct {
		budget, jobs, exchangeCap int
		wantPar, wantPerJob       int
	}{
		// exchangeCap 0 disables intra-round workers entirely.
		{budget: 8, jobs: 4, exchangeCap: 0, wantPar: 4, wantPerJob: 0},
		{budget: 2, jobs: 10, exchangeCap: 0, wantPar: 2, wantPerJob: 0},
		// Jobs fan out first; leftover budget goes inside each job.
		{budget: 8, jobs: 2, exchangeCap: 16, wantPar: 2, wantPerJob: 4},
		{budget: 8, jobs: 2, exchangeCap: 3, wantPar: 2, wantPerJob: 3},
		// More jobs than budget: every running job still gets one worker.
		{budget: 4, jobs: 100, exchangeCap: 8, wantPar: 4, wantPerJob: 1},
		// A requested cap always yields at least one worker per job.
		{budget: 1, jobs: 1, exchangeCap: 8, wantPar: 1, wantPerJob: 1},
	}
	for _, c := range cases {
		par, perJob := ComposeBudget(c.budget, c.jobs, c.exchangeCap)
		if par != c.wantPar || perJob != c.wantPerJob {
			t.Errorf("ComposeBudget(%d, %d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.jobs, c.exchangeCap, par, perJob, c.wantPar, c.wantPerJob)
		}
	}
	// budget <= 0 means GOMAXPROCS: never zero concurrent jobs.
	if par, _ := ComposeBudget(0, 3, 0); par < 1 {
		t.Fatalf("default budget produced parallelism %d", par)
	}
}

func TestBudgetSplitMemoryBound(t *testing.T) {
	cases := []struct {
		name                string
		b                   Budget
		jobs                int
		wantPar, wantPerJob int
	}{
		{
			name: "memory caps parallelism below the worker budget",
			b:    Budget{Workers: 8, MemBytes: 2 << 20, JobBytes: 1 << 20},
			jobs: 8, wantPar: 2,
		},
		{
			name: "worker budget caps when memory is plentiful",
			b:    Budget{Workers: 3, MemBytes: 100 << 20, JobBytes: 1 << 20},
			jobs: 8, wantPar: 3,
		},
		{
			name: "a job bigger than the whole budget still runs, one at a time",
			b:    Budget{Workers: 8, MemBytes: 1 << 20, JobBytes: 4 << 20},
			jobs: 8, wantPar: 1,
		},
		{
			name: "unknown job footprint disables the memory bound",
			b:    Budget{Workers: 4, MemBytes: 1},
			jobs: 8, wantPar: 4,
		},
		{
			name: "no memory budget disables the bound",
			b:    Budget{Workers: 4, JobBytes: 1 << 30},
			jobs: 8, wantPar: 4,
		},
		{
			name: "memory-freed workers move inside the jobs",
			b:    Budget{Workers: 8, ExchangeCap: 16, MemBytes: 2 << 20, JobBytes: 1 << 20},
			jobs: 8, wantPar: 2, wantPerJob: 4,
		},
	}
	for _, c := range cases {
		par, perJob := c.b.Split(c.jobs)
		if par != c.wantPar || perJob != c.wantPerJob {
			t.Errorf("%s: Split(%d) = (%d, %d), want (%d, %d)",
				c.name, c.jobs, par, perJob, c.wantPar, c.wantPerJob)
		}
	}
	// The zero Budget behaves like ComposeBudget(0, jobs, 0).
	par, perJob := Budget{}.Split(5)
	refPar, refPerJob := ComposeBudget(0, 5, 0)
	if par != refPar || perJob != refPerJob {
		t.Errorf("zero Budget = (%d, %d), want ComposeBudget default (%d, %d)", par, perJob, refPar, refPerJob)
	}
}

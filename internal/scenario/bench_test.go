package scenario

import (
	"bytes"
	"fmt"
	"runtime"
	"slices"
	"testing"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/metrics"
	"polystyrene/internal/sim"
	"polystyrene/internal/trace"
	"polystyrene/internal/xrand"
)

// BenchmarkMetricsRound measures one full per-round metrics sweep
// (homogeneity, reliability, proximity, data points per node) over a
// post-catastrophe population — exactly what the record observer and the
// reshaping-time stop condition pay every round. The "indexed" variant
// reads the Polystyrene layer's incremental holders index; "fullscan" is
// the string-keyed rebuild-and-scan baseline kept as the oracle. Both are
// recorded in the tracked BENCH_*.json.
func BenchmarkMetricsRound(b *testing.B) {
	mkScenario := func() *Scenario {
		sc := MustNew(Config{Seed: 21, W: 40, H: 20, Polystyrene: true, K: 4, SkipMetrics: true})
		sc.Run(20)
		sc.FailRightHalf()
		sc.Run(10)
		return sc
	}
	b.Run("indexed", func(b *testing.B) {
		sc := mkScenario()
		sys := sc.System()
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += metrics.HomogeneityIndexed(sys, sc.Poly(), sc.Points, sc.PointIDs)
			sink += metrics.ReliabilityIndexed(sys, sc.Poly(), sc.PointIDs)
			sink += metrics.Proximity(sys, sc.Cfg.NeighborK)
			sink += metrics.DataPointsPerNode(sys)
		}
		_ = sink
	})
	b.Run("fullscan", func(b *testing.B) {
		sc := mkScenario()
		sys := sc.System()
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += metrics.Homogeneity(sys, sc.Points)
			sink += metrics.Reliability(sys, sc.Points)
			sink += metrics.Proximity(sys, sc.Cfg.NeighborK)
			sink += metrics.DataPointsPerNode(sys)
		}
		_ = sink
	})
}

// BenchmarkProximityRound isolates the neighbour-query cost of the
// per-round metric loop: the proximity sweep asks every live node for its
// 4 closest overlay neighbours. The "each" variant is the production
// path (metrics.Proximity over the zero-copy EachNeighbor visitor); the
// "legacy" variant replays the PR 2 implementation, one fresh result
// slice per node per round. Both are recorded in the tracked
// BENCH_*.json.
func BenchmarkProximityRound(b *testing.B) {
	mkScenario := func() *Scenario {
		sc := MustNew(Config{Seed: 21, W: 40, H: 20, Polystyrene: true, K: 4, SkipMetrics: true})
		sc.Run(20)
		sc.FailRightHalf()
		sc.Run(10)
		return sc
	}
	b.Run("each", func(b *testing.B) {
		sc := mkScenario()
		sys := sc.System()
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += metrics.Proximity(sys, sc.Cfg.NeighborK)
		}
		_ = sink
	})
	b.Run("legacy", func(b *testing.B) {
		sc := mkScenario()
		sys := sc.System()
		legacy, ok := sc.Topology().(interface {
			Neighbors(id sim.NodeID, k int) []sim.NodeID
		})
		if !ok {
			b.Fatal("overlay does not expose the legacy Neighbors form")
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			s := sys.Space()
			sum, count := 0.0, 0
			for _, id := range sys.Live() {
				pos := sys.Position(id)
				for _, nb := range legacy.Neighbors(id, sc.Cfg.NeighborK) {
					sum += s.Distance(pos, sys.Position(nb))
					count++
				}
			}
			if count > 0 {
				sink += sum / float64(count)
			}
		}
		_ = sink
	})
}

// BenchmarkParallelRound measures one steady-state full-stack round
// (RPS + T-Man + Polystyrene) at the paper's largest configuration —
// 51,200 nodes on the 320x160 torus — across intra-round exchange worker
// counts. w=0 is the legacy sequential engine; w>=1 runs the batched
// scheduler (same physics, byte-identical across every w>=1), so the
// variants expose both the scheduler's constant overhead (w=1 vs w=0:
// planning and batching are sequential work on top of stepping) and its
// scaling (w=2..GOMAXPROCS). Since the persistent worker pool, the w>=2
// variants also pin the no-per-batch-spawns contract: their allocs/op
// must stay at the w=1 level. Tracked in BENCH_*.json via
// scripts/bench.sh.
func BenchmarkParallelRound(b *testing.B) {
	const convergeRounds = 5
	counts := []int{0, 1, 2, 4}
	if gm := runtime.GOMAXPROCS(0); !slices.Contains(counts, gm) {
		counts = append(counts, gm)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			sc := MustNew(Config{
				Seed: 5, W: 320, H: 160, Polystyrene: true, K: 4,
				SkipMetrics: true, ExchangeParallelism: w,
			})
			b.Cleanup(sc.Close)
			sc.Run(convergeRounds)
			b.ReportAllocs()
			b.ResetTimer()
			sc.Run(b.N)
		})
	}
}

// BenchmarkShardedRound measures one full round of the complete stack at
// the paper's largest configuration — 51,200 nodes on the 320x160 torus —
// under the sharded multi-engine topology at 1, 2 and 4 shards. Unlike
// BenchmarkParallelRound's worker counts (byte-identical across every
// w>=1), shard counts are distinct trajectory identities: the s>=2
// variants expose the cost of routing, the per-shard waves and the
// boundary-mailbox drain relative to the s=1 sharded scheduler, which in
// turn is comparable with BenchmarkParallelRound/w=1 for the scheduler's
// constant overhead. Tracked in BENCH_*.json via scripts/bench.sh.
func BenchmarkShardedRound(b *testing.B) {
	const convergeRounds = 5
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("s=%d", shards), func(b *testing.B) {
			sc := MustNew(Config{
				Seed: 5, W: 320, H: 160, Polystyrene: true, K: 4,
				SkipMetrics: true, Shards: shards,
			})
			b.Cleanup(sc.Close)
			sc.Run(convergeRounds)
			b.ReportAllocs()
			b.ResetTimer()
			sc.Run(b.N)
		})
	}
}

// BenchmarkSnapshotRestore measures checkpointing the paper's largest
// configuration — 51,200 nodes on the 320x160 torus — and restoring it
// into an already wired scenario: the per-checkpoint cost a long polysim
// run pays, and the per-cell cost a warm-started sweep pays. Bytes/op is
// the serialized snapshot size, so MB/s reads as checkpoint throughput.
// Tracked in BENCH_*.json via scripts/bench.sh.
func BenchmarkSnapshotRestore(b *testing.B) {
	cfg := Config{Seed: 5, W: 320, H: 160, Polystyrene: true, K: 4, SkipMetrics: true}
	sc := MustNew(cfg)
	b.Cleanup(sc.Close)
	sc.Run(5)
	var buf bytes.Buffer
	if err := sc.SnapshotTo(&buf); err != nil {
		b.Fatal(err)
	}
	size := int64(buf.Len())

	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sc.SnapshotTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		dst := MustNew(cfg)
		b.Cleanup(dst.Close)
		data := buf.Bytes()
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := dst.Restore(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAutoCheckpoint measures the durable-checkpoint tax on a
// 51,200-node soak: each iteration is one engine round driven through an
// AutoCheckpointer that writes atomic, fsynced, checksummed generations
// (keep 2) into a temporary directory. every=0 is the no-checkpoint
// baseline round, every=1 pays a full durable generation on every
// round, and every=16 is a realistic soak cadence whose amortized cost
// should sit near the baseline. Warm-up runs to round 16 so the cadence
// fires on the first timed iteration even at -benchtime 1x.
func BenchmarkAutoCheckpoint(b *testing.B) {
	cfg := Config{Seed: 5, W: 320, H: 160, Polystyrene: true, K: 4, SkipMetrics: true}
	for _, every := range []int{0, 1, 16} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			sc := MustNew(cfg)
			b.Cleanup(sc.Close)
			sc.Run(16)
			mgr, err := ckpt.NewManager(ckpt.Options{Dir: b.TempDir(), Kind: SnapshotKind, Keep: 2})
			if err != nil {
				b.Fatal(err)
			}
			auto := NewAutoCheckpointer(sc, mgr, every)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := auto.MaybeSave(sc.Engine.Round()); err != nil {
					b.Fatal(err)
				}
				sc.Run(1)
			}
		})
	}
}

// BenchmarkScheduleReplay measures one trace-replayed round at the
// paper's largest configuration — 51,200 nodes on the 320x160 torus under
// 0.1% uniform churn with replacement — against the equivalent in-band
// churn round, whose victims are drawn live from an RNG as the run goes.
// The replay variant pays event lookup, join-identity verification and
// the kills/joins themselves on top of the same full-stack exchanges, so
// the delta is the price of replayable, checkpoint-composable
// availability schedules. Tracked in BENCH_*.json via scripts/bench.sh.
func BenchmarkScheduleReplay(b *testing.B) {
	const rate = 0.001
	const convergeRounds = 5
	cfg := Config{Seed: 5, W: 320, H: 160, Polystyrene: true, K: 4, SkipMetrics: true}
	b.Run("replay", func(b *testing.B) {
		// The script covers far more rounds than any realistic benchtime
		// reaches; rounds beyond it replay event-free.
		const horizon = 2048
		sched, err := trace.UniformChurn(cfg.W*cfg.H, horizon, rate, true, 77)
		if err != nil {
			b.Fatal(err)
		}
		sc := MustNew(cfg)
		b.Cleanup(sc.Close)
		// Convergence happens inside the drive so the event ledger and the
		// engine population stay reconciled.
		if err := DriveSchedule(sc, sched, convergeRounds); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := DriveSchedule(sc, sched, convergeRounds+b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("inband", func(b *testing.B) {
		sc := MustNew(cfg)
		b.Cleanup(sc.Close)
		sc.Run(convergeRounds)
		rng := xrand.New(77)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			live := sc.Engine.LiveIDs()
			kills := int(rate * float64(len(live)))
			for _, idx := range rng.Sample(len(live), kills) {
				sc.Engine.Kill(live[idx])
			}
			sc.Reinject(kills)
			sc.Run(1)
		}
	})
}

// BenchmarkMeasureReshaping measures the full-stack reshaping experiment
// at a small grid — the unit of work every sweep cell executes.
func BenchmarkMeasureReshaping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := MeasureReshaping(
			Config{Seed: 1, W: 16, H: 8, Polystyrene: true, K: 4}, 15, 40)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Reached {
			b.Fatal("did not reshape")
		}
	}
}

// BenchmarkSizeSweepParallel measures a small multi-cell sweep with the
// runner fan-out across all cores, the polysweep execution path.
func BenchmarkSizeSweepParallel(b *testing.B) {
	sizes := []GridSize{{16, 8}, {20, 10}}
	variants := map[string]func(Config) Config{
		"K2": func(c Config) Config { c.K = 2; return c },
		"K4": func(c Config) Config { c.K = 4; return c },
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SizeSweep(Config{Seed: 2}, sizes, variants,
			RunOpts{Reps: 2, ConvergeRounds: 15, MaxRounds: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

package scenario

import (
	"testing"
)

// BenchmarkMeasureReshaping measures the full-stack reshaping experiment
// at a small grid — the unit of work every sweep cell executes.
func BenchmarkMeasureReshaping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := MeasureReshaping(
			Config{Seed: 1, W: 16, H: 8, Polystyrene: true, K: 4}, 15, 40)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Reached {
			b.Fatal("did not reshape")
		}
	}
}

// BenchmarkSizeSweepParallel measures a small multi-cell sweep with the
// runner fan-out across all cores, the polysweep execution path.
func BenchmarkSizeSweepParallel(b *testing.B) {
	sizes := []GridSize{{16, 8}, {20, 10}}
	variants := map[string]func(Config) Config{
		"K2": func(c Config) Config { c.K = 2; return c },
		"K4": func(c Config) Config { c.K = 4; return c },
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SizeSweep(Config{Seed: 2}, sizes, variants,
			RunOpts{Reps: 2, ConvergeRounds: 15, MaxRounds: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

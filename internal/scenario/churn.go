package scenario

import (
	"fmt"

	"polystyrene/internal/runner"
)

// ChurnConfig drives a sustained-churn experiment: every round a fraction
// of the live population crashes and (optionally) the same number of
// fresh, empty nodes joins. The paper evaluates one catastrophic event;
// sustained churn is the regime its conclusion points at for future work
// ("the loss and reinjection of resources"), and this harness measures how
// much churn the shape survives.
type ChurnConfig struct {
	// Rate is the per-round fraction of live nodes that crash (e.g. 0.01
	// = 1% churn per round).
	Rate float64
	// Replace controls whether each crash is matched by a fresh joiner.
	Replace bool
	// Rounds is the churn period length.
	Rounds int
}

// ChurnOutcome summarises a churn run.
type ChurnOutcome struct {
	// Crashed and Joined count churn events over the run.
	Crashed, Joined int
	// FinalHomogeneity and FinalReference are measured after a settling
	// period with churn stopped.
	FinalHomogeneity float64
	FinalReference   float64
	// Reliability is the surviving fraction of original data points.
	Reliability float64
	// ShapeHeld reports FinalHomogeneity < FinalReference.
	ShapeHeld bool
}

// RunChurn converges the system, applies sustained random churn, lets it
// settle for settleRounds, and reports the outcome. An engine it
// allocates itself is closed before returning (a supplied cfg.Engine
// stays open — the pooling caller owns it).
func RunChurn(cfg Config, churn ChurnConfig, convergeRounds, settleRounds int) (ChurnOutcome, error) {
	if churn.Rate < 0 || churn.Rate >= 1 {
		return ChurnOutcome{}, fmt.Errorf("scenario: churn rate %v out of [0,1)", churn.Rate)
	}
	cfg.SkipMetrics = true
	sc, err := New(cfg)
	if err != nil {
		return ChurnOutcome{}, err
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	sc.Run(convergeRounds)
	return runChurnTail(sc, churn, settleRounds), nil
}

// runChurnTail applies the churn period to a converged (or warm-restored)
// scenario — the shared second half of RunChurn and RunChurnFrom.
func runChurnTail(sc *Scenario, churn ChurnConfig, settleRounds int) ChurnOutcome {
	var out ChurnOutcome
	rng := sc.Engine.Rand()
	for round := 0; round < churn.Rounds; round++ {
		kills := int(float64(sc.Engine.NumLive()) * churn.Rate)
		live := sc.Engine.LiveIDs()
		for _, idx := range rng.Sample(len(live), kills) {
			sc.Engine.Kill(live[idx])
			out.Crashed++
		}
		if churn.Replace && kills > 0 {
			sc.Reinject(kills)
			out.Joined += kills
		}
		sc.Run(1)
	}
	sc.Run(settleRounds)

	out.FinalHomogeneity = sc.Homogeneity()
	out.FinalReference = sc.ReferenceHomogeneity()
	out.Reliability = sc.Reliability()
	out.ShapeHeld = out.FinalHomogeneity < out.FinalReference
	return out
}

// ChurnSweepOpts bundles the execution parameters of a churn-rate sweep,
// mirroring RunOpts for the reshaping harnesses.
type ChurnSweepOpts struct {
	// ChurnRounds is the churn period length per rate.
	ChurnRounds int
	// ConvergeRounds precedes the churn period.
	ConvergeRounds int
	// SettleRounds of quiet follow the churn before measuring.
	SettleRounds int
	// Parallelism bounds concurrent rates: 0 means GOMAXPROCS, 1 serial.
	Parallelism int
	// ExchangeParallelism caps per-rate intra-round exchange workers; see
	// RunOpts.ExchangeParallelism (0 keeps the sequential engine).
	ExchangeParallelism int
	// MemBudgetBytes bounds concurrent rates by estimated engine
	// footprint and CellBytes overrides the per-cell estimate; see the
	// same fields on RunOpts.
	MemBudgetBytes int64
	CellBytes      int64
	// PoolEngines recycles engines across rates via sim.Engine.Reset;
	// see RunOpts.PoolEngines.
	PoolEngines bool
	// WarmStart converges one cell and restores its checkpoint into every
	// rate instead of re-converging per rate; see RunOpts.WarmStart.
	WarmStart bool
	// WarmSnapshot supplies an externally produced ConvergedSnapshot of
	// the base configuration (e.g. loaded from disk by polychurn -resume).
	// Implies WarmStart; its digest must match the sweep's cells.
	WarmSnapshot []byte
}

// ChurnSweep measures shape survival across churn rates, one outcome per
// rate. Rates run concurrently via the parallel runner (each owns its
// engine and seed), bounded by opts.Parallelism; results land at their
// rate's index, so the output is deterministic regardless of scheduling.
func ChurnSweep(base Config, rates []float64, opts ChurnSweepOpts) ([]ChurnOutcome, error) {
	outs := make([]ChurnOutcome, len(rates))
	est := base
	est.Polystyrene = true
	run := RunOpts{
		Parallelism:         opts.Parallelism,
		ExchangeParallelism: opts.ExchangeParallelism,
		MemBudgetBytes:      opts.MemBudgetBytes,
		CellBytes:           opts.CellBytes,
		PoolEngines:         opts.PoolEngines,
	}
	cellPar, exPar := run.compose(len(rates), est.EstimatedFootprintBytes())
	pool := run.pool()
	defer pool.Drain()

	warm := opts.WarmSnapshot
	if warm == nil && opts.WarmStart {
		cfg := base
		cfg.Polystyrene = true
		cfg.ExchangeParallelism = exPar
		cfg.Seed = sweepSeed(base.Seed, "churn-warm")
		release := pool.Acquire(&cfg)
		b, err := ConvergedSnapshot(cfg, opts.ConvergeRounds)
		release()
		if err != nil {
			return nil, err
		}
		warm = b
	}

	err := runner.Map(cellPar, len(rates), func(i int) error {
		cfg := base
		cfg.Seed = sweepSeed(base.Seed, "churn", uint64(i))
		cfg.Polystyrene = true
		cfg.ExchangeParallelism = exPar
		defer pool.Acquire(&cfg)()
		churn := ChurnConfig{Rate: rates[i], Replace: true, Rounds: opts.ChurnRounds}
		var out ChurnOutcome
		var err error
		if warm != nil {
			out, err = RunChurnFrom(cfg, warm, churn, opts.SettleRounds)
		} else {
			out, err = RunChurn(cfg, churn, opts.ConvergeRounds, opts.SettleRounds)
		}
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

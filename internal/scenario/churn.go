package scenario

import "fmt"

// ChurnConfig drives a sustained-churn experiment: every round a fraction
// of the live population crashes and (optionally) the same number of
// fresh, empty nodes joins. The paper evaluates one catastrophic event;
// sustained churn is the regime its conclusion points at for future work
// ("the loss and reinjection of resources"), and this harness measures how
// much churn the shape survives.
type ChurnConfig struct {
	// Rate is the per-round fraction of live nodes that crash (e.g. 0.01
	// = 1% churn per round).
	Rate float64
	// Replace controls whether each crash is matched by a fresh joiner.
	Replace bool
	// Rounds is the churn period length.
	Rounds int
}

// ChurnOutcome summarises a churn run.
type ChurnOutcome struct {
	// Crashed and Joined count churn events over the run.
	Crashed, Joined int
	// FinalHomogeneity and FinalReference are measured after a settling
	// period with churn stopped.
	FinalHomogeneity float64
	FinalReference   float64
	// Reliability is the surviving fraction of original data points.
	Reliability float64
	// ShapeHeld reports FinalHomogeneity < FinalReference.
	ShapeHeld bool
}

// RunChurn converges the system, applies sustained random churn, lets it
// settle for settleRounds, and reports the outcome.
func RunChurn(cfg Config, churn ChurnConfig, convergeRounds, settleRounds int) (ChurnOutcome, error) {
	if churn.Rate < 0 || churn.Rate >= 1 {
		return ChurnOutcome{}, fmt.Errorf("scenario: churn rate %v out of [0,1)", churn.Rate)
	}
	cfg.SkipMetrics = true
	sc, err := New(cfg)
	if err != nil {
		return ChurnOutcome{}, err
	}
	sc.Run(convergeRounds)

	var out ChurnOutcome
	rng := sc.Engine.Rand()
	for round := 0; round < churn.Rounds; round++ {
		kills := int(float64(sc.Engine.NumLive()) * churn.Rate)
		live := sc.Engine.LiveIDs()
		for _, idx := range rng.Sample(len(live), kills) {
			sc.Engine.Kill(live[idx])
			out.Crashed++
		}
		if churn.Replace && kills > 0 {
			sc.Reinject(kills)
			out.Joined += kills
		}
		sc.Run(1)
	}
	sc.Run(settleRounds)

	out.FinalHomogeneity = sc.Homogeneity()
	out.FinalReference = sc.ReferenceHomogeneity()
	out.Reliability = sc.Reliability()
	out.ShapeHeld = out.FinalHomogeneity < out.FinalReference
	return out, nil
}

// ChurnSweep measures shape survival across churn rates, one outcome per
// rate, using the parallel runner.
func ChurnSweep(base Config, rates []float64, churnRounds, convergeRounds, settleRounds int) ([]ChurnOutcome, error) {
	outs := make([]ChurnOutcome, len(rates))
	for i, rate := range rates {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		cfg.Polystyrene = true
		out, err := RunChurn(cfg, ChurnConfig{Rate: rate, Replace: true, Rounds: churnRounds},
			convergeRounds, settleRounds)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

package scenario

import (
	"bytes"
	"fmt"

	"polystyrene/internal/ckpt"
)

// AutoCheckpointer saves a scenario into a ckpt.Manager every fixed
// number of rounds. Call MaybeSave at the START of each round, before
// that round's phase events fire: the snapshot then captures the state
// a resumed run re-enters at, which is exactly what makes the resumed
// trajectory byte-identical — the resumed loop fires the round's events
// itself, once, just like the uninterrupted loop did.
//
// Not safe for concurrent use; it runs on the round-driving goroutine.
type AutoCheckpointer struct {
	sc        *Scenario
	mgr       *ckpt.Manager
	every     int
	lastSaved int
}

// NewAutoCheckpointer checkpoints sc into mgr every `every` rounds
// (every <= 0 disables periodic saves; SaveNow still works, e.g. for a
// final checkpoint on SIGTERM).
func NewAutoCheckpointer(sc *Scenario, mgr *ckpt.Manager, every int) *AutoCheckpointer {
	return &AutoCheckpointer{sc: sc, mgr: mgr, every: every, lastSaved: -1}
}

// Manager exposes the underlying checkpoint manager.
func (a *AutoCheckpointer) Manager() *ckpt.Manager { return a.mgr }

// MaybeSave checkpoints if round is on the cadence and has not been
// saved already (a run resumed from round r re-enters the loop at r;
// MarkSaved suppresses the redundant re-save). Returns the generation
// and whether a save happened.
func (a *AutoCheckpointer) MaybeSave(round int) (ckpt.Generation, bool, error) {
	if a.every <= 0 || round%a.every != 0 || round == a.lastSaved {
		return ckpt.Generation{}, false, nil
	}
	g, err := a.SaveNow(round)
	if err != nil {
		return ckpt.Generation{}, false, err
	}
	return g, true, nil
}

// SaveNow checkpoints unconditionally at round — the final-checkpoint
// path of graceful shutdown.
func (a *AutoCheckpointer) SaveNow(round int) (ckpt.Generation, error) {
	g, err := a.mgr.Save(round, a.sc.SnapshotTo)
	if err != nil {
		return ckpt.Generation{}, err
	}
	a.lastSaved = round
	return g, nil
}

// MarkSaved records that round already has a durable generation (the
// one just restored), so MaybeSave does not rewrite it on re-entry.
func (a *AutoCheckpointer) MarkSaved(round int) { a.lastSaved = round }

// RestoreLatest restores sc from the newest generation in mgr that
// verifies cleanly, returning which generation was used. The scenario
// must be wired from a configuration digest-equal to the checkpointed
// one; see Scenario.Restore.
func RestoreLatest(sc *Scenario, mgr *ckpt.Manager) (ckpt.Generation, error) {
	g, data, err := mgr.OpenLatestGood()
	if err != nil {
		return ckpt.Generation{}, err
	}
	if err := sc.Restore(bytes.NewReader(data)); err != nil {
		return ckpt.Generation{}, fmt.Errorf("restoring %s: %w", g.Name, err)
	}
	return g, nil
}

// DrivePhases advances sc from its current round to round `to` under
// the paper's schedule, firing each phase event at the start of its
// round. Reinjection tops the population back up to the full grid, so
// the schedule is insensitive to where a checkpoint interrupted it —
// the library form of the CLI drive loop.
func DrivePhases(sc *Scenario, ph Phases, to int) {
	DrivePhasesFunc(sc, ph, to, nil)
}

// DrivePhasesFunc is DrivePhases with a per-round callback: atRound (if
// non-nil) runs at the START of each round, before that round's phase
// events fire — the checkpoint discipline (a checkpoint taken there
// replays byte-identically, because the events re-fire on resume) and
// the natural place for pacing or a shutdown check. Returning false
// stops the drive before the round runs; the scenario is left at a
// round boundary either way.
func DrivePhasesFunc(sc *Scenario, ph Phases, to int, atRound func(round int) bool) {
	if to > ph.End {
		to = ph.End
	}
	total := sc.Cfg.W * sc.Cfg.H
	for sc.Engine.Round() < to {
		r := sc.Engine.Round()
		if atRound != nil && !atRound(r) {
			return
		}
		if r == ph.FailAt {
			sc.FailRightHalf()
		}
		if r == ph.ReinjectAt {
			sc.Reinject(total - sc.Engine.NumLive())
		}
		sc.Run(1)
	}
}

// ReplayFromCheckpoint is the time-travel debugging seed: given a
// checkpoint directory of a phased soak and a failing round, it wires a
// fresh scenario, restores the newest retained generation at or before
// that round and replays forward to it — a minimal reproduction that
// skips every round before the last checkpoint. Returns the positioned
// scenario and the generation it started from; the caller owns Close.
func ReplayFromCheckpoint(cfg Config, mgr *ckpt.Manager, ph Phases, failRound int) (*Scenario, ckpt.Generation, error) {
	g, data, err := mgr.OpenLatestGoodAtMost(failRound)
	if err != nil {
		return nil, ckpt.Generation{}, err
	}
	sc, err := New(cfg)
	if err != nil {
		return nil, ckpt.Generation{}, err
	}
	if err := sc.Restore(bytes.NewReader(data)); err != nil {
		if cfg.Engine == nil {
			sc.Close()
		}
		return nil, ckpt.Generation{}, fmt.Errorf("restoring %s: %w", g.Name, err)
	}
	DrivePhases(sc, ph, failRound)
	return sc, g, nil
}

package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/faultio"
	"polystyrene/internal/fd"
	"polystyrene/internal/sim"
)

// crashPhases is the compressed schedule the crash-safety tests soak:
// every phase of the paper's scenario is crossed by the checkpoint
// cadence below.
var crashPhases = Phases{FailAt: 6, ReinjectAt: 12, End: 24}

const crashEvery = 4 // checkpoint cadence: rounds 0,4,8,12,16,20

// runCheckpointedSoak drives the phased soak with auto-checkpointing
// through fs into dir, returning the round of the last save known
// durable and the error that killed the run (nil when it completed).
func runCheckpointedSoak(cfg Config, phases Phases, every int, fs ckpt.FS, dir string) (lastSaved int, err error) {
	lastSaved = -1
	mgr, err := ckpt.NewManager(ckpt.Options{
		Dir: dir, Kind: SnapshotKind, Keep: 2, FS: fs,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		return lastSaved, err
	}
	sc, err := New(cfg)
	if err != nil {
		return lastSaved, err
	}
	defer sc.Close()
	auto := NewAutoCheckpointer(sc, mgr, every)
	total := cfg.W * cfg.H
	for sc.Engine.Round() < phases.End {
		r := sc.Engine.Round()
		if g, ok, err := auto.MaybeSave(r); err != nil {
			return lastSaved, err
		} else if ok {
			lastSaved = g.Round
		}
		if r == phases.FailAt {
			sc.FailRightHalf()
		}
		if r == phases.ReinjectAt {
			sc.Reinject(total - sc.Engine.NumLive())
		}
		sc.Run(1)
	}
	return lastSaved, nil
}

// TestCrashPointSweepRecovery is the tentpole property: enumerate every
// mutating filesystem op of a whole auto-checkpointed soak, crash the
// run at each one, and require that (a) OpenLatestGood recovers a
// verified generation no older than the previous durable one, and (b)
// resuming from it replays to a metric record byte-identical to the
// uninterrupted run — at exchange parallelism w ∈ {0, 2}.
func TestCrashPointSweepRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash-point sweep runs in its dedicated CI step")
	}
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			cfg := Config{Seed: 31, W: 8, H: 4, Polystyrene: true, ExchangeParallelism: workers}

			base := MustNew(cfg)
			DrivePhases(base, crashPhases, crashPhases.End)
			baseRes := base.Result()
			baseRel := base.Reliability()
			base.Close()

			// Probe: the same soak fault-free, counting mutating ops.
			// The simulation is deterministic, so every crashing run
			// below performs a prefix of exactly this op sequence.
			probe := faultio.New(ckpt.OS, faultio.Config{CrashAt: faultio.NoCrash, ChunkBytes: 8192})
			probeDir := t.TempDir()
			if _, err := runCheckpointedSoak(cfg, crashPhases, crashEvery, probe, probeDir); err != nil {
				t.Fatalf("fault-free soak failed: %v", err)
			}
			totalOps := probe.Ops()
			if totalOps < 20 {
				t.Fatalf("implausible op count %d", totalOps)
			}

			for at := 0; at < totalOps; at++ {
				dir := t.TempDir()
				fs := faultio.New(ckpt.OS, faultio.Config{Seed: uint64(at), CrashAt: at, ChunkBytes: 8192})
				lastSaved, err := runCheckpointedSoak(cfg, crashPhases, crashEvery, fs, dir)
				if err == nil {
					// Legitimate only when the crash landed on a
					// best-effort rotation Remove at the very end of the
					// soak — nothing after it needed the filesystem.
					if !fs.Crashed() {
						t.Fatalf("crash %d: soak completed without the crash firing", at)
					}
				} else if !errors.Is(err, faultio.ErrCrash) {
					t.Fatalf("crash %d: soak ended with %v, want simulated crash", at, err)
				}

				// Recovery: a fresh process over the same directory.
				rec, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: SnapshotKind, Keep: 2})
				if err != nil {
					t.Fatalf("crash %d: recovery manager: %v", at, err)
				}
				resumed := MustNew(cfg)
				g, err := RestoreLatest(resumed, rec)
				if err != nil {
					// Only legitimate before the very first save became
					// durable: recovery is then a fresh run from round 0.
					if lastSaved >= 0 {
						resumed.Close()
						t.Fatalf("crash %d: durable save at %d but RestoreLatest failed: %v", at, lastSaved, err)
					}
				} else {
					if g.Round < lastSaved {
						t.Fatalf("crash %d: recovered round %d older than last durable save %d", at, g.Round, lastSaved)
					}
					if got := resumed.Engine.Round(); got != g.Round {
						t.Fatalf("crash %d: restored engine at round %d, generation says %d", at, got, g.Round)
					}
				}
				DrivePhases(resumed, crashPhases, crashPhases.End)
				if !reflect.DeepEqual(resumed.Result(), baseRes) {
					t.Fatalf("crash %d: resumed metric record diverged from uninterrupted run", at)
				}
				if rel := resumed.Reliability(); rel != baseRel {
					t.Fatalf("crash %d: resumed reliability %v, want %v", at, rel, baseRel)
				}
				resumed.Close()
			}
		})
	}
}

// TestSoakSurvivesTransientWriteErrors pins the retry path end to end:
// a soak whose first filesystem ops fail retryably still completes, all
// checkpoints land, and the metric record matches the fault-free run.
func TestSoakSurvivesTransientWriteErrors(t *testing.T) {
	cfg := Config{Seed: 31, W: 8, H: 4, Polystyrene: true}
	base := MustNew(cfg)
	DrivePhases(base, crashPhases, crashPhases.End)
	baseRes := base.Result()
	base.Close()

	fs := faultio.New(ckpt.OS, faultio.Config{CrashAt: faultio.NoCrash, TransientOps: 3, ChunkBytes: 8192})
	dir := t.TempDir()
	lastSaved, err := runCheckpointedSoak(cfg, crashPhases, crashEvery, fs, dir)
	if err != nil {
		t.Fatalf("soak under transient errors: %v", err)
	}
	if lastSaved != 20 {
		t.Fatalf("last save at round %d, want 20", lastSaved)
	}
	rec, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: SnapshotKind})
	if err != nil {
		t.Fatal(err)
	}
	resumed := MustNew(cfg)
	defer resumed.Close()
	if _, err := RestoreLatest(resumed, rec); err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	DrivePhases(resumed, crashPhases, crashPhases.End)
	if !reflect.DeepEqual(resumed.Result(), baseRes) {
		t.Fatal("record diverged after transient-error soak")
	}
}

// TestAutoCheckpointerSkipsRestoredRound pins the resume re-entry rule:
// after MarkSaved(r), MaybeSave(r) is a no-op, but the next cadence
// round still saves.
func TestAutoCheckpointerSkipsRestoredRound(t *testing.T) {
	cfg := Config{Seed: 3, W: 8, H: 4, Polystyrene: true}
	sc := MustNew(cfg)
	defer sc.Close()
	mgr, err := ckpt.NewManager(ckpt.Options{Dir: t.TempDir(), Kind: SnapshotKind})
	if err != nil {
		t.Fatal(err)
	}
	auto := NewAutoCheckpointer(sc, mgr, 4)
	auto.MarkSaved(4)
	sc.Run(4)
	if _, saved, err := auto.MaybeSave(4); err != nil || saved {
		t.Fatalf("MaybeSave(4) after MarkSaved = saved %v err %v, want no-op", saved, err)
	}
	sc.Run(4)
	if _, saved, err := auto.MaybeSave(8); err != nil || !saved {
		t.Fatalf("MaybeSave(8) = saved %v err %v, want save", saved, err)
	}
	if _, saved, err := auto.MaybeSave(9); err != nil || saved {
		t.Fatalf("MaybeSave(9) off cadence = saved %v err %v", saved, err)
	}
}

// TestReplayFromCheckpoint is the time-travel seed: a failure at round
// 18 of a checkpointed soak reproduces from the newest retained
// generation at or before 18 — without replaying the rounds before it —
// and the replayed metric record matches the original prefix exactly.
func TestReplayFromCheckpoint(t *testing.T) {
	cfg := Config{Seed: 41, W: 8, H: 4, Polystyrene: true}
	base := MustNew(cfg)
	DrivePhases(base, crashPhases, crashPhases.End)
	baseRes := base.Result()
	base.Close()

	dir := t.TempDir()
	soakFS := faultio.New(ckpt.OS, faultio.Config{CrashAt: faultio.NoCrash})
	if _, err := runCheckpointedSoak(cfg, crashPhases, crashEvery, soakFS, dir); err != nil {
		t.Fatalf("soak: %v", err)
	}

	mgr, err := ckpt.NewManager(ckpt.Options{Dir: dir, Kind: SnapshotKind, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	const failRound = 18
	re, g, err := ReplayFromCheckpoint(cfg, mgr, crashPhases, failRound)
	if err != nil {
		t.Fatalf("ReplayFromCheckpoint: %v", err)
	}
	defer re.Close()
	// Keep=2 retains generations 16 and 20; 16 is the newest <= 18.
	if g.Round != 16 {
		t.Fatalf("replayed from generation %d, want 16", g.Round)
	}
	if got := re.Engine.Round(); got != failRound {
		t.Fatalf("replay stopped at round %d, want %d", got, failRound)
	}
	got := re.Result()
	if !reflect.DeepEqual(got.Homogeneity, baseRes.Homogeneity[:failRound]) ||
		!reflect.DeepEqual(got.LiveNodes, baseRes.LiveNodes[:failRound]) {
		t.Fatal("replayed metric prefix diverged from the original run")
	}
}

// TestRestoreRejectsDetectorMismatch: the failure detector is part of
// the snapshot's configuration digest; restoring across a detector
// change must fail loudly, while digest-equal detectors interchange.
func TestRestoreRejectsDetectorMismatch(t *testing.T) {
	cfg := Config{Seed: 5, W: 8, H: 4, Polystyrene: true}
	sc := MustNew(cfg)
	defer sc.Close()
	sc.Run(3)
	var buf bytes.Buffer
	if err := sc.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	mis := cfg
	mis.Detector = fd.NewDelayed(2)
	other := MustNew(mis)
	defer other.Close()
	err := other.Restore(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("detector mismatch accepted or unclear error: %v", err)
	}

	// Delay is part of the identity too.
	d3 := cfg
	d3.Detector = fd.NewDelayed(3)
	sc3 := MustNew(d3)
	sc3.Run(2)
	var buf3 bytes.Buffer
	if err := sc3.SnapshotTo(&buf3); err != nil {
		t.Fatal(err)
	}
	sc3.Close()
	if err := other.Restore(bytes.NewReader(buf3.Bytes())); err == nil {
		t.Fatal("Delayed(3) snapshot restored into Delayed(2) scenario")
	}

	// An explicit Perfect detector digests equal to the nil default.
	same := cfg
	same.Detector = fd.Perfect{}
	sc2 := MustNew(same)
	defer sc2.Close()
	if err := sc2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("digest-equal detector rejected: %v", err)
	}
}

// TestCloseIsIdempotent: Close on Engine and Scenario (and the facade
// System, tested in the root package) must be safe to call twice — the
// graceful-shutdown path closes once on signal and once in a defer.
func TestCloseIsIdempotent(t *testing.T) {
	sc := MustNew(Config{Seed: 1, W: 8, H: 4, Polystyrene: true, ExchangeParallelism: 2})
	sc.Run(2)
	sc.Close()
	sc.Close()
	// The scenario stays readable after Close.
	if sc.Engine.NumLive() == 0 {
		t.Fatal("engine unreadable after double Close")
	}

	eng := sim.New(3)
	eng.Close()
	eng.Close()
}

func TestWatchdogFiresOnStall(t *testing.T) {
	fired := make(chan int, 1)
	w := NewWatchdog(30*time.Millisecond, func(r int) { fired <- r })
	w.Tick(5)
	select {
	case r := <-fired:
		if r != 5 {
			t.Fatalf("stall reported round %d, want 5", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a stalled run")
	}
	if !w.Fired() {
		t.Fatal("Fired() false after stall callback")
	}
	w.Stop() // must not hang after the loop already exited
}

func TestWatchdogQuietWhileProgressing(t *testing.T) {
	stalled := make(chan struct{})
	w := NewWatchdog(60*time.Millisecond, func(int) { close(stalled) })
	for i := 0; i < 10; i++ {
		w.Tick(i)
		time.Sleep(10 * time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent
	select {
	case <-stalled:
		t.Fatal("watchdog fired despite steady progress")
	default:
	}
	if w.Fired() {
		t.Fatal("Fired() true without a stall")
	}
}

// TestStallReportContents: the dump names the round, the checkpoint and
// contains a goroutine stack — the three things needed to time-travel
// into a stall.
func TestStallReportContents(t *testing.T) {
	var buf bytes.Buffer
	StallReport(&buf, 37, "ckpt/gen-0000000032.snap")
	out := buf.String()
	for _, want := range []string{"last round worked on: 37", "gen-0000000032.snap", "goroutine"} {
		if !strings.Contains(out, want) {
			t.Errorf("stall report missing %q:\n%s", want, out)
		}
	}
	var none bytes.Buffer
	StallReport(&none, 2, "")
	if !strings.Contains(none.String(), "no durable checkpoint") {
		t.Error("checkpoint-less stall report does not say so")
	}
}

package scenario

import (
	"fmt"
	"sort"
	"sync"

	"polystyrene/internal/metrics"
	"polystyrene/internal/runner"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Phases fixes the round boundaries of the paper's evaluation scenario.
type Phases struct {
	// FailAt is the round of the catastrophic failure (paper: 20).
	FailAt int
	// ReinjectAt is the round fresh nodes are injected (paper: 100).
	ReinjectAt int
	// End is the total number of rounds (paper: 200).
	End int
}

// PaperPhases returns the boundaries used in the paper (Sec. IV-A).
func PaperPhases() Phases { return Phases{FailAt: 20, ReinjectAt: 100, End: 200} }

// Validate checks phase ordering.
func (p Phases) Validate() error {
	if !(0 < p.FailAt && p.FailAt <= p.ReinjectAt && p.ReinjectAt <= p.End) {
		return fmt.Errorf("scenario: invalid phases %+v (need 0 < FailAt <= ReinjectAt <= End)", p)
	}
	return nil
}

// RunPaper executes the full 3-phase scenario and returns the scenario in
// its final state together with its per-round metric record.
func RunPaper(cfg Config, phases Phases) (*Scenario, *Result, error) {
	if err := phases.Validate(); err != nil {
		return nil, nil, err
	}
	sc, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	sc.Run(phases.FailAt)
	killed := sc.FailRightHalf()
	sc.Run(phases.ReinjectAt - phases.FailAt)
	sc.Reinject(killed)
	sc.Run(phases.End - phases.ReinjectAt)
	return sc, sc.Result(), nil
}

// ReshapingOutcome is one observation for Table II.
type ReshapingOutcome struct {
	// Rounds is the reshaping time: rounds from the failure until the
	// homogeneity first drops below the reference H of the surviving
	// population. Equal to MaxRounds+1 when never reached.
	Rounds int
	// Reached reports whether the homogeneity threshold was met.
	Reached bool
	// Reliability is the surviving fraction of original data points,
	// measured when the threshold is reached (or at the round budget).
	Reliability float64
}

// MeasureReshaping converges a fresh system for convergeRounds, triggers
// the half-torus catastrophe, and counts the rounds needed for the
// homogeneity to drop below the reference value (Sec. IV-A). An engine it
// allocates itself is closed before returning (a supplied cfg.Engine
// stays open — the pooling caller owns it).
func MeasureReshaping(cfg Config, convergeRounds, maxRounds int) (ReshapingOutcome, error) {
	cfg.SkipMetrics = true
	sc, err := New(cfg)
	if err != nil {
		return ReshapingOutcome{}, err
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	sc.Run(convergeRounds)
	return measureReshapingTail(sc, maxRounds), nil
}

// measureReshapingTail triggers the catastrophe on a converged (or
// warm-restored) scenario and measures the reshaping time — the shared
// second half of MeasureReshaping and MeasureReshapingFrom.
func measureReshapingTail(sc *Scenario, maxRounds int) ReshapingOutcome {
	sc.FailRightHalf()
	ref := sc.ReferenceHomogeneity()
	rounds, reached := sc.Engine.RunUntil(maxRounds, func(*sim.Engine, int) bool {
		return sc.Homogeneity() < ref
	})
	if !reached {
		rounds = maxRounds + 1
	}
	return ReshapingOutcome{
		Rounds:      rounds,
		Reached:     reached,
		Reliability: sc.Reliability(),
	}
}

// splitmix64 is the avalanche step of the splitmix64 generator, used to
// derive well-separated sweep-cell seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sweepSeed derives one sweep cell's seed by chaining the base seed, a
// variant label and the cell coordinates through splitmix64. Additive
// derivations (base + f(cell)) collide — rep r of an N-node cell equals
// rep 0 of an (N+r)-node cell, and same-size variants share seeds — so
// every distinguishing component is mixed through a full avalanche
// instead.
func sweepSeed(base uint64, label string, parts ...uint64) uint64 {
	x := splitmix64(base ^ uint64(len(label)))
	for _, b := range []byte(label) {
		x = splitmix64(x ^ uint64(b))
	}
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return x
}

// CellSeed derives a well-separated per-cell seed from a base seed, a
// variant label and the cell coordinates — the exported form of the
// sweep-seed derivation, shared with the experiment-grid runner
// (internal/experiments) so grid cells and sweep cells use one collision
// -resistant scheme.
func CellSeed(base uint64, label string, parts ...uint64) uint64 {
	return sweepSeed(base, label, parts...)
}

// RunOpts bundles the execution parameters shared by the repeated-run
// harnesses (Table II, Fig. 10 sweeps).
type RunOpts struct {
	// Reps is the number of repetitions per measured point.
	Reps int
	// ConvergeRounds is how long the system converges before the failure.
	ConvergeRounds int
	// MaxRounds is the round budget for reshaping after the failure.
	MaxRounds int
	// Parallelism bounds how many cells run concurrently: 0 means
	// GOMAXPROCS, 1 runs serially. Results are identical at every level —
	// each cell owns its engine and PRNG, and results fold in index order.
	Parallelism int
	// ExchangeParallelism caps the per-cell intra-round exchange workers.
	// 0 (the default) keeps cells on the legacy sequential engine; any
	// value >= 1 switches cells to the batched engine, whose results are
	// byte-identical at every worker count >= 1. The harness composes the
	// two levels under one budget (runner.Budget): cells fan out first,
	// leftover cores go to exchange workers up to this cap, so the actual
	// per-cell worker count never changes results.
	ExchangeParallelism int
	// Shards runs every cell on the sharded multi-engine topology with
	// this many shards (>= 2; 0 or 1 keeps cells single-engine). The
	// shard count must divide each cell's grid width — the paper sweep
	// widths all tile at 2 and 4 — and, unlike ExchangeParallelism, it is
	// part of each cell's trajectory identity: an N-shard sweep is
	// deterministic and repeatable at that N, keyed by N. Takes
	// precedence over ExchangeParallelism inside each cell.
	Shards int
	// MemBudgetBytes additionally bounds concurrent cells by their
	// estimated engine footprint: at most MemBudgetBytes / cell-bytes
	// cells run at once (always at least one). 0 means unbounded. Every
	// cell still runs — a tight budget trades throughput, never coverage
	// or results.
	MemBudgetBytes int64
	// CellBytes overrides the per-cell footprint estimate used with
	// MemBudgetBytes; 0 derives it from the harness's largest cell via
	// Config.EstimatedFootprintBytes.
	CellBytes int64
	// PoolEngines recycles engines across cells of equal size via
	// sim.Engine.Reset instead of allocating one per cell, bounding a
	// sweep's engine footprint by its concurrency rather than its cell
	// count. Results are byte-identical either way (pinned by the
	// pooled-sweep identity test).
	PoolEngines bool
	// WarmStart pays convergence once per distinct cell configuration:
	// the harness converges one cell, checkpoints it (ConvergedSnapshot)
	// and restores that snapshot into every repetition, which then forks
	// its own trajectory from its cell seed. Repetitions share a converged
	// topology instead of each re-paying ConvergeRounds, trading the
	// cold-path's independent convergence transcripts for sweep
	// throughput; outcomes remain deterministic at every parallelism
	// level. Composes with PoolEngines (warm cells restore into
	// pooled-Reset engines).
	WarmStart bool
}

// compose splits the machine budget between concurrent cells and per-cell
// exchange workers for a harness about to run `jobs` cells, each costing
// an estimated cellBytes (overridden by opts.CellBytes when set).
func (o RunOpts) compose(jobs int, cellBytes int64) (cellPar, exPar int) {
	if o.CellBytes > 0 {
		cellBytes = o.CellBytes
	}
	return runner.Budget{
		Workers:     o.Parallelism,
		ExchangeCap: o.ExchangeParallelism,
		MemBytes:    o.MemBudgetBytes,
		JobBytes:    cellBytes,
	}.Split(jobs)
}

// EnginePool recycles engines across the cells of one sweep or
// experiment grid, keyed by initial node count so equal-size cells reuse
// fully-sized backing arrays. Concurrent cells each hold a distinct
// engine; a cell that finds the pool empty gets a fresh engine that joins
// the pool when it is released. Drain closes every pooled engine
// (releasing parked exchange workers) once the run has folded its
// results. A nil *EnginePool means pooling is off: Acquire is a no-op and
// Drain does nothing, so callers thread one variable either way.
type EnginePool struct {
	mu   sync.Mutex
	free map[int][]*sim.Engine
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool { return &EnginePool{} }

// Acquire hands cfg a pooled engine (pool == nil means pooling is off and
// Acquire is a no-op) and returns the release that parks it back.
func (p *EnginePool) Acquire(cfg *Config) (release func()) {
	if p == nil {
		return func() {}
	}
	c := cfg.withDefaults()
	nodes := c.W * c.H
	p.mu.Lock()
	var eng *sim.Engine
	if l := p.free[nodes]; len(l) > 0 {
		eng = l[len(l)-1]
		p.free[nodes] = l[:len(l)-1]
	}
	p.mu.Unlock()
	if eng == nil {
		eng = sim.New(0)
	}
	cfg.Engine = eng
	return func() {
		p.mu.Lock()
		if p.free == nil {
			p.free = make(map[int][]*sim.Engine)
		}
		p.free[nodes] = append(p.free[nodes], eng)
		p.mu.Unlock()
	}
}

// Drain closes every parked engine and empties the pool.
func (p *EnginePool) Drain() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.free {
		for _, e := range l {
			e.Close()
		}
	}
	p.free = nil
}

// pool returns the sweep-lifetime engine pool, nil when pooling is off.
func (o RunOpts) pool() *EnginePool {
	if !o.PoolEngines {
		return nil
	}
	return NewEnginePool()
}

// TableIIRow aggregates repeated reshaping measurements for one K.
type TableIIRow struct {
	K               int
	ReshapingTime   metrics.Accumulator
	ReliabilityPct  metrics.Accumulator
	FailedToReshape int
}

// TableII reproduces Table II: reshaping time and reliability on the
// configured torus for each replication factor, averaged over opts.Reps
// runs. Repetitions fan out across cores via the runner (each owns its
// engine); results are folded in repetition order so the output is
// deterministic regardless of opts.Parallelism.
func TableII(base Config, ks []int, opts RunOpts) ([]TableIIRow, error) {
	rows := make([]TableIIRow, len(ks))
	outcomes := make([]ReshapingOutcome, len(ks)*opts.Reps)
	est := base
	est.Polystyrene = true
	cellPar, exPar := opts.compose(len(outcomes), est.EstimatedFootprintBytes())
	pool := opts.pool()
	defer pool.Drain()
	err := runner.Map(cellPar, len(outcomes), func(job int) error {
		k := ks[job/opts.Reps]
		rep := job % opts.Reps
		cfg := base
		cfg.Polystyrene = true
		cfg.K = k
		cfg.ExchangeParallelism = exPar
		cfg.Shards = opts.Shards
		cfg.Seed = sweepSeed(base.Seed, "tableII", uint64(k), uint64(rep))
		defer pool.Acquire(&cfg)()
		out, err := MeasureReshaping(cfg, opts.ConvergeRounds, opts.MaxRounds)
		if err != nil {
			return err
		}
		outcomes[job] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range ks {
		rows[i].K = k
		for rep := 0; rep < opts.Reps; rep++ {
			out := outcomes[i*opts.Reps+rep]
			if !out.Reached {
				rows[i].FailedToReshape++
			}
			rows[i].ReshapingTime.Add(float64(out.Rounds))
			rows[i].ReliabilityPct.Add(100 * out.Reliability)
		}
	}
	return rows, nil
}

// SweepPoint is one (network size, configuration) cell of Fig. 10.
type SweepPoint struct {
	Nodes         int
	Label         string
	ReshapingTime metrics.Accumulator
}

// GridSize is a torus grid dimension pair for sweeps.
type GridSize struct{ W, H int }

// PaperGridSizes returns the 2:1-aspect grids spanning the size axis of
// Fig. 10 (up to the paper's 51 200-node 320x160 torus).
func PaperGridSizes(maxNodes int) []GridSize {
	all := []GridSize{
		{16, 8}, {20, 10}, {40, 20}, {80, 40}, {160, 80}, {320, 160},
	}
	out := make([]GridSize, 0, len(all))
	for _, g := range all {
		if g.W*g.H <= maxNodes {
			out = append(out, g)
		}
	}
	return out
}

// SizeSweep measures reshaping time across network sizes for a family of
// configurations (Fig. 10a varies K; Fig. 10b varies the split function).
// variants maps a label to a mutation of the base config. Grid cells fan
// out across cores via the runner; results fold in deterministic order,
// so the output is identical at every opts.Parallelism level.
func SizeSweep(base Config, sizes []GridSize, variants map[string]func(Config) Config,
	opts RunOpts) (map[string][]SweepPoint, error) {

	labels := make([]string, 0, len(variants))
	for label := range variants {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	type cell struct {
		label string
		size  GridSize
		rep   int
	}
	cells := make([]cell, 0, len(labels)*len(sizes)*opts.Reps)
	for _, label := range labels {
		for _, size := range sizes {
			for rep := 0; rep < opts.Reps; rep++ {
				cells = append(cells, cell{label: label, size: size, rep: rep})
			}
		}
	}

	rounds := make([]float64, len(cells))
	est := base
	est.Polystyrene = true
	for _, size := range sizes {
		if size.W*size.H > est.W*est.H {
			est.W, est.H = size.W, size.H
		}
	}
	cellPar, exPar := opts.compose(len(cells), est.EstimatedFootprintBytes())
	pool := opts.pool()
	defer pool.Drain()

	// Warm start: converge one cell per distinct (variant, size)
	// configuration up front and share its checkpoint across the
	// repetitions, which only differ by seed.
	type warmKey struct {
		label string
		size  GridSize
	}
	var warm map[warmKey][]byte
	if opts.WarmStart {
		keys := make([]warmKey, 0, len(labels)*len(sizes))
		for _, label := range labels {
			for _, size := range sizes {
				keys = append(keys, warmKey{label: label, size: size})
			}
		}
		snaps := make([][]byte, len(keys))
		err := runner.Map(cellPar, len(keys), func(i int) error {
			k := keys[i]
			cfg := variants[k.label](base)
			cfg.Polystyrene = true
			cfg.W, cfg.H = k.size.W, k.size.H
			cfg.ExchangeParallelism = exPar
			cfg.Shards = opts.Shards
			cfg.Seed = sweepSeed(base.Seed, "warm:"+k.label, uint64(k.size.W), uint64(k.size.H))
			release := pool.Acquire(&cfg)
			b, err := ConvergedSnapshot(cfg, opts.ConvergeRounds)
			release()
			if err != nil {
				return err
			}
			snaps[i] = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		warm = make(map[warmKey][]byte, len(keys))
		for i, k := range keys {
			warm[k] = snaps[i]
		}
	}

	err := runner.Map(cellPar, len(cells), func(i int) error {
		c := cells[i]
		cfg := variants[c.label](base)
		cfg.Polystyrene = true
		cfg.W, cfg.H = c.size.W, c.size.H
		cfg.ExchangeParallelism = exPar
		cfg.Shards = opts.Shards
		cfg.Seed = sweepSeed(base.Seed, c.label, uint64(c.size.W), uint64(c.size.H), uint64(c.rep))
		defer pool.Acquire(&cfg)()
		var res ReshapingOutcome
		var err error
		if warm != nil {
			res, err = MeasureReshapingFrom(cfg, warm[warmKey{label: c.label, size: c.size}], opts.MaxRounds)
		} else {
			res, err = MeasureReshaping(cfg, opts.ConvergeRounds, opts.MaxRounds)
		}
		if err != nil {
			return err
		}
		rounds[i] = float64(res.Rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string][]SweepPoint, len(variants))
	i := 0
	for _, label := range labels {
		points := make([]SweepPoint, 0, len(sizes))
		for _, size := range sizes {
			pt := SweepPoint{Nodes: size.W * size.H, Label: label}
			for rep := 0; rep < opts.Reps; rep++ {
				pt.ReshapingTime.Add(rounds[i])
				i++
			}
			points = append(points, pt)
		}
		out[label] = points
	}
	return out, nil
}

// NodeSnapshot is the rendered state of one node (Figs. 1, 8, 9). The
// Neighbors slices of one Snapshot call share a single backing array —
// read them freely (as the viz renderers do), but do not append to them.
type NodeSnapshot struct {
	ID        sim.NodeID
	Pos       space.Point
	Neighbors []sim.NodeID
}

// Snapshot captures every live node's position and its NeighborK closest
// overlay neighbours for rendering. All neighbour lists append into one
// exact-capacity backing array (at most NeighborK entries per live node),
// so a snapshot costs two allocations plus the cloned positions instead
// of one slice per node.
func (sc *Scenario) Snapshot() []NodeSnapshot {
	live := sc.Engine.LiveIDs()
	out := make([]NodeSnapshot, 0, len(live))
	nbrs := make([]sim.NodeID, 0, len(live)*sc.Cfg.NeighborK)
	for _, id := range live {
		start := len(nbrs)
		nbrs = sc.topo.AppendNeighbors(nbrs, id, sc.Cfg.NeighborK)
		out = append(out, NodeSnapshot{
			ID:        id,
			Pos:       sc.position(id).Clone(),
			Neighbors: nbrs[start:len(nbrs):len(nbrs)],
		})
	}
	return out
}

package scenario

import (
	"runtime"
	"testing"
)

// measureFootprintBytes reports the live-heap growth (bytes) of building
// one cell of cfg and running it for the given rounds: GC-settled heap
// after, minus GC-settled heap before, with the scenario still alive at
// the second reading. It is the calibration probe for the footprint
// heuristics (estFootprintBytesPerNodeLayer, estFootprintBytesPerPoint).
func measureFootprintBytes(cfg Config, rounds int) (heap int64, sc *Scenario) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	sc = MustNew(cfg)
	sc.Run(rounds)

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc), sc
}

// TestEstimatedFootprintTracksMeasuredHeap pins EstimatedFootprintBytes
// against live runtime.MemStats sampling on converged mid-size runs: the
// estimate must land within a factor of 3 of measured live heap, in both
// directions, for the full Polystyrene stack and the plain baseline.
// (Factor 3 is the documented contract: the estimate feeds runner.Budget
// admission, where the cost of a loose bound is throughput, and the cost
// of an estimate off by more than the factor is either an OOM-admitting
// sweep or one that strands most of the budget.) This is the test that
// recalibrates the two constants: if allocator or layout changes move
// measured heap outside the window, the constants — not the factor —
// should be updated.
func TestEstimatedFootprintTracksMeasuredHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("converged mid-size calibration run")
	}
	const factor = 3
	cases := map[string]Config{
		"poly-80x40":     {Seed: 11, W: 80, H: 40, Polystyrene: true},
		"baseline-80x40": {Seed: 11, W: 80, H: 40},
		"poly-120x60":    {Seed: 12, W: 120, H: 60, Polystyrene: true},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			measured, sc := measureFootprintBytes(cfg, 25)
			defer sc.Close()
			if measured <= 0 {
				t.Fatalf("measured live-heap growth %d bytes; calibration probe broken", measured)
			}
			est := cfg.EstimatedFootprintBytes()
			t.Logf("estimate %d bytes, measured %d bytes (ratio %.2f)", est, measured, float64(est)/float64(measured))
			if est > measured*factor {
				t.Fatalf("estimate %d overshoots measured heap %d by more than %dx", est, measured, factor)
			}
			if est*factor < measured {
				t.Fatalf("estimate %d undershoots measured heap %d by more than %dx", est, measured, factor)
			}
			runtime.KeepAlive(sc)
		})
	}
}

// TestEstimatedFootprintPricesPointUniverse pins the shape of the fix:
// under Polystyrene the estimate must include a term that scales with
// the interned point universe on top of the per-node-layer term — the
// configuration's estimate strictly exceeds layer pricing alone — and
// the baseline (which interns no data universe) must not pay it.
func TestEstimatedFootprintPricesPointUniverse(t *testing.T) {
	poly := Config{W: 80, H: 40, Polystyrene: true}
	base := Config{W: 80, H: 40}
	nodes := int64(80 * 40)
	layersOnly := nodes * 3 * estFootprintBytesPerNodeLayer
	if got := poly.EstimatedFootprintBytes(); got != layersOnly+nodes*estFootprintBytesPerPoint {
		t.Fatalf("poly estimate %d does not price the point universe (want %d)", got, layersOnly+nodes*estFootprintBytesPerPoint)
	}
	if got := base.EstimatedFootprintBytes(); got != nodes*2*estFootprintBytesPerNodeLayer {
		t.Fatalf("baseline estimate %d should carry no point term", got)
	}
}

package scenario

import "testing"

// TestHoldersIndexTrimsAfterRecoveryWaves is the memory soak for the
// holders index at 12,800 nodes (160x80): repeated half-torus
// catastrophes make every surviving point's holder list balloon — one
// holder appended at a time as ghosts reactivate, doubling each list's
// backing array — and before the decaying high-water-mark trim those
// wave-peak capacities stayed pinned for the rest of the run (~3x the
// entry count after two waves). The test drives two full
// catastrophe/recovery/reinjection waves and pins the discipline: the
// index balloons during each wave, and once the system settles the total
// capacity is trimmed back under the holderTrimSlack bound of ~2x the
// live entry count.
func TestHoldersIndexTrimsAfterRecoveryWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("12,800-node soak run")
	}
	sc := MustNew(Config{Seed: 3, W: 160, H: 80, Polystyrene: true, K: 4, SkipMetrics: true})
	defer sc.Close()
	sc.Run(10)

	peakCap := 0
	for wave := 0; wave < 2; wave++ {
		killed := sc.FailRightHalf()
		for r := 0; r < 10; r++ {
			sc.Run(1)
			if _, c, _ := sc.Poly().HoldersIndexFootprint(); c > peakCap {
				peakCap = c
			}
		}
		sc.Reinject(killed)
		sc.Run(10)
	}
	sc.Run(6) // several calm trim windows close here

	entries, capacity, slackBound := sc.Poly().HoldersIndexFootprint()
	if entries < len(sc.Points)*9/10 {
		t.Fatalf("only %d live holder entries for %d points; the soak did not recover", entries, len(sc.Points))
	}
	// The trim discipline's exact promise: every allocated list keeps at
	// most max(2, 2*len) capacity once calm windows have closed. (The
	// untrimmed regression settled around 3x the entry count — well above
	// this bound.)
	if capacity > slackBound {
		t.Errorf("settled holders capacity %d exceeds the slack bound %d (entries %d) — the trim is not engaging",
			capacity, slackBound, entries)
	}
	// And the settle must actually have decayed the wave peak (the
	// untrimmed regression kept ~all of it).
	if capacity >= peakCap {
		t.Errorf("settled holders capacity %d did not drop below the wave peak %d", capacity, peakCap)
	}
}

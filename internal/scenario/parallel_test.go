package scenario

import (
	"reflect"
	"runtime"
	"testing"

	"polystyrene/internal/fd"
	"polystyrene/internal/xrand"
)

// paperRun executes a compressed 3-phase paper scenario and returns its
// full per-round metric record plus the final reliability. Scenarios it
// owns are closed (their exchange workers released); a caller-supplied
// cfg.Engine stays open for reuse.
func paperRun(t *testing.T, cfg Config) (*Result, float64) {
	t.Helper()
	sc, res, err := RunPaper(cfg, Phases{FailAt: 8, ReinjectAt: 20, End: 32})
	if err != nil {
		t.Fatal(err)
	}
	rel := sc.Reliability()
	if cfg.Engine == nil {
		sc.Close()
	}
	return res, rel
}

// TestExchangeParallelismByteIdentical pins the tentpole's determinism
// contract at the full-stack level: with intra-round exchange batching
// enabled, every per-round metric series — homogeneity, proximity, data
// points, message cost, liveness — is byte-identical across worker counts
// {1, 2, GOMAXPROCS}, through convergence, the half-torus catastrophe and
// reinjection, for both overlay hosts, the baseline, a delayed failure
// detector and the full-copy backup ablation.
func TestExchangeParallelismByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack exchange-parallel identity run; exercised by CI's dedicated race step")
	}
	cases := map[string]Config{
		"poly-tman":     {Seed: 42, W: 20, H: 10, Polystyrene: true},
		"poly-vicinity": {Seed: 42, W: 20, H: 10, Polystyrene: true, Overlay: "vicinity"},
		"baseline-tman": {Seed: 42, W: 20, H: 10},
		"delayed-fd":    {Seed: 43, W: 20, H: 10, Polystyrene: true, Detector: fd.NewDelayed(2)},
		"full-copy":     {Seed: 44, W: 16, H: 8, Polystyrene: true, FullCopyBackup: true, K: 2},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for name, base := range cases {
		t.Run(name, func(t *testing.T) {
			if name == "delayed-fd" {
				// The delayed detector records first-seen rounds; give each
				// worker count a fresh instance so runs stay independent.
				base.Detector = nil
			}
			var refRes *Result
			var refRel float64
			for _, workers := range workerCounts {
				cfg := base
				cfg.ExchangeParallelism = workers
				if name == "delayed-fd" {
					cfg.Detector = fd.NewDelayed(2)
				}
				res, rel := paperRun(t, cfg)
				if refRes == nil {
					refRes, refRel = res, rel
					continue
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("workers=%d: metric record diverged from workers=%d", workers, workerCounts[0])
				}
				if rel != refRel {
					t.Fatalf("workers=%d: reliability %v, want %v", workers, rel, refRel)
				}
			}
		})
	}
}

// TestExchangeParallelismDetectorFallback pins the graceful degradation
// path: a failure detector that is not fd.ParallelSafe (Probabilistic
// consumes a shared stream, so query order matters) keeps the Polystyrene
// layer on the sequential path while the layers below still batch — and
// results remain byte-identical across worker counts, because the
// sequential fallback draws from the engine stream whose position does
// not depend on the worker count.
func TestExchangeParallelismDetectorFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack exchange-parallel identity run; exercised by CI's dedicated race step")
	}
	run := func(workers int) (*Result, float64) {
		cfg := Config{
			Seed: 9, W: 16, H: 8, Polystyrene: true,
			Detector:            fd.NewProbabilistic(0.5, xrand.New(77)),
			ExchangeParallelism: workers,
		}
		return paperRun(t, cfg)
	}
	refRes, refRel := run(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		res, rel := run(workers)
		if !reflect.DeepEqual(res, refRes) || rel != refRel {
			t.Fatalf("workers=%d diverged under the sequential-core fallback", workers)
		}
	}
}

// TestExchangeParallelismChangesTrajectory documents that batching is a
// *different* deterministic trajectory, not a re-ordering of the
// sequential one: pre-splitting per-step streams necessarily changes the
// draw sequence, which is why the engine keeps it opt-in (and why the
// golden sequential tests are untouched by this feature).
func TestExchangeParallelismChangesTrajectory(t *testing.T) {
	seqRes, _ := paperRun(t, Config{Seed: 42, W: 20, H: 10, Polystyrene: true})
	batRes, _ := paperRun(t, Config{Seed: 42, W: 20, H: 10, Polystyrene: true, ExchangeParallelism: 1})
	if reflect.DeepEqual(seqRes, batRes) {
		t.Fatal("batched trajectory reproduced the sequential one exactly; the pre-split stream discipline is not in effect")
	}
	// Both must converge to a recovered shape, though: same physics,
	// different dice.
	last := len(seqRes.Homogeneity) - 1
	if seqRes.LiveNodes[last] != batRes.LiveNodes[last] {
		t.Fatalf("liveness diverged: %d vs %d", seqRes.LiveNodes[last], batRes.LiveNodes[last])
	}
}

// TestRunOptsComposeExchangeParallelism pins that the sweep harnesses
// give byte-identical output whether cells run sequential engines, or
// batched engines at any composed budget — the property that lets the
// CLI expose -exchange-parallel as a pure throughput knob.
func TestRunOptsComposeExchangeParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack exchange-parallel identity run; exercised by CI's dedicated race step")
	}
	base := Config{Seed: 7, W: 16, H: 8}
	run := func(par, exchange int) []TableIIRow {
		rows, err := TableII(base, []int{2}, RunOpts{
			Reps: 2, ConvergeRounds: 8, MaxRounds: 30,
			Parallelism: par, ExchangeParallelism: exchange,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	ref := run(1, 1)
	for _, c := range [][2]int{{2, 1}, {1, 4}, {4, 2}} {
		if rows := run(c[0], c[1]); !reflect.DeepEqual(rows, ref) {
			t.Fatalf("TableII(parallel=%d, exchange=%d) diverged from the reference composition", c[0], c[1])
		}
	}
}

package scenario

import (
	"reflect"
	"testing"

	"polystyrene/internal/sim"
)

// TestEngineResetByteIdentical pins sim.Engine.Reset's contract at the
// full-stack level: an engine that already ran a different experiment
// (different seed, different worker count), once Reset and handed to a
// new scenario via Config.Engine, reproduces the fresh-engine metric
// record and reliability byte-for-byte — for the sequential engine and
// under exchange batching.
func TestEngineResetByteIdentical(t *testing.T) {
	for _, workers := range []int{0, 2} {
		cfg := Config{Seed: 11, W: 16, H: 8, Polystyrene: true, ExchangeParallelism: workers}
		freshRes, freshRel := paperRun(t, cfg)

		eng := sim.New(0)
		defer eng.Close()
		dirty := cfg
		dirty.Seed = 99
		dirty.ExchangeParallelism = 3 - workers // different pool size too
		dirty.Engine = eng
		paperRun(t, dirty)

		reused := cfg
		reused.Engine = eng
		res, rel := paperRun(t, reused)
		if !reflect.DeepEqual(res, freshRes) {
			t.Errorf("workers=%d: reset-engine metric record diverged from fresh engine", workers)
		}
		if rel != freshRel {
			t.Errorf("workers=%d: reset-engine reliability %v, want %v", workers, rel, freshRel)
		}
	}
}

// TestPooledSweepByteIdentical pins that the pooled-cell sweep path —
// engines recycled across cells via Reset, concurrency bounded by a
// deliberately tight memory budget — folds to exactly the PR 4
// runner.Map output, for both repeated-run harnesses. CI runs it in the
// race-enabled determinism step: the engine pool, the per-cell reset and
// the concurrent cells' worker pools all execute under the race
// detector there.
func TestPooledSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep identity run; exercised by CI's dedicated race step")
	}
	base := Config{Seed: 7, W: 16, H: 8}
	opts := RunOpts{
		Reps: 2, ConvergeRounds: 8, MaxRounds: 30,
		Parallelism: 2, ExchangeParallelism: 2,
	}

	tableRef, err := TableII(base, []int{2, 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pooled := opts
	pooled.PoolEngines = true
	pooled.MemBudgetBytes = base.EstimatedFootprintBytes() // one cell at a time
	tablePooled, err := TableII(base, []int{2, 4}, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tablePooled, tableRef) {
		t.Error("pooled TableII diverged from the per-cell-engine reference")
	}

	sizes := []GridSize{{16, 8}, {20, 10}}
	variants := map[string]func(Config) Config{
		"K2": func(c Config) Config { c.K = 2; return c },
		"K4": func(c Config) Config { c.K = 4; return c },
	}
	sweepRef, err := SizeSweep(base, sizes, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	sweepPooled, err := SizeSweep(base, sizes, variants, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepPooled, sweepRef) {
		t.Error("pooled SizeSweep diverged from the per-cell-engine reference")
	}

	churnRef, err := ChurnSweep(base, []float64{0.01, 0.02}, ChurnSweepOpts{
		ChurnRounds: 6, ConvergeRounds: 8, SettleRounds: 6,
		Parallelism: 2, ExchangeParallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	churnPooled, err := ChurnSweep(base, []float64{0.01, 0.02}, ChurnSweepOpts{
		ChurnRounds: 6, ConvergeRounds: 8, SettleRounds: 6,
		Parallelism: 2, ExchangeParallelism: 2,
		PoolEngines: true, MemBudgetBytes: base.EstimatedFootprintBytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(churnPooled, churnRef) {
		t.Error("pooled ChurnSweep diverged from the per-cell-engine reference")
	}
}

// TestExchangeParallelismTailCoalescing pins tail coalescing at the
// full-stack level: the per-round metric record and final reliability are
// byte-identical with coalescing disabled, at the default threshold, and
// with the whole round coalesced onto the engine goroutine. (The name
// keeps it inside CI's race-enabled determinism step.)
func TestExchangeParallelismTailCoalescing(t *testing.T) {
	run := func(minBatch int) (*Result, float64) {
		sc := MustNew(Config{Seed: 42, W: 20, H: 10, Polystyrene: true, ExchangeParallelism: 3})
		defer sc.Close()
		sc.Engine.SetTailCoalescing(minBatch)
		sc.Run(8)
		killed := sc.FailRightHalf()
		sc.Run(12)
		sc.Reinject(killed)
		sc.Run(12)
		return sc.Result(), sc.Reliability()
	}
	refRes, refRel := run(1) // coalescing off: every batch dispatched
	for _, minBatch := range []int{0, 6, 1 << 20} {
		res, rel := run(minBatch)
		if !reflect.DeepEqual(res, refRes) || rel != refRel {
			t.Errorf("minBatch=%d: trajectory diverged from the uncoalesced reference", minBatch)
		}
	}
}

// TestRunOptsMemBudgetBoundsParallelism pins the memory side of the
// budget composition: a budget sized for two cells caps cell parallelism
// at two even on a wider worker budget, the floor is always one cell,
// and CellBytes overrides the heuristic estimate.
func TestRunOptsMemBudgetBoundsParallelism(t *testing.T) {
	cell := Config{Seed: 1, W: 16, H: 8, Polystyrene: true}
	bytes := cell.EstimatedFootprintBytes()
	if bytes <= 0 {
		t.Fatalf("footprint estimate %d, want > 0", bytes)
	}
	opts := RunOpts{Parallelism: 8, MemBudgetBytes: 2 * bytes}
	if par, _ := opts.compose(8, bytes); par != 2 {
		t.Errorf("parallelism = %d, want 2 (budget fits two cells)", par)
	}
	opts.MemBudgetBytes = bytes / 2
	if par, _ := opts.compose(8, bytes); par != 1 {
		t.Errorf("parallelism = %d, want the floor of 1 under an impossible budget", par)
	}
	opts.CellBytes = bytes / 4 // measured override: four cells fit budget/2
	if par, _ := opts.compose(8, bytes); par != 2 {
		t.Errorf("parallelism = %d, want 2 under the CellBytes override", par)
	}
}

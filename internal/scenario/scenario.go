// Package scenario assembles the full experimental stack of the paper
// (RPS → T-Man → Polystyrene over a torus grid) and drives the evaluation
// scenario of Sec. IV-A:
//
//   - Phase 1, Convergence (rounds [0, 20)): the topology converges while
//     Polystyrene replicates data points and monitors nodes.
//   - Phase 2, Failure (rounds [20, 100)): at round 20 all nodes located in
//     one half of the torus crash simultaneously; the system re-converges.
//   - Phase 3, Reinjection (rounds [100, 200)): at round 100 as many fresh
//     nodes are injected, empty-handed, on a grid parallel to the original.
//
// Both evaluated configurations are supported: Polystyrene over T-Man, and
// plain T-Man (the baseline, which heals its links but cannot recover the
// shape). The harness records the paper's metrics every round and derives
// the reshaping time and reliability figures of Table II.
package scenario

import (
	"fmt"

	"polystyrene/internal/core"
	"polystyrene/internal/fd"
	"polystyrene/internal/metrics"
	"polystyrene/internal/rps"
	"polystyrene/internal/shape"
	"polystyrene/internal/shard"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/tman"
	"polystyrene/internal/vicinity"
)

// Config describes one experiment.
type Config struct {
	// Seed makes the run reproducible.
	Seed uint64
	// W, H are the torus grid dimensions (N = W*H nodes); zero means the
	// paper's 80x40. Step is the grid step (zero means 1).
	W, H int
	Step float64
	// Polystyrene selects the full stack; false runs plain T-Man.
	Polystyrene bool
	// K is the replication factor (Polystyrene only).
	K int
	// Split selects the migration split function (Polystyrene only);
	// zero means SplitAdvanced.
	Split core.SplitKind
	// Detector overrides the failure detector; nil means perfect.
	Detector fd.Detector
	// Placement overrides backup placement; zero means random.
	Placement core.BackupPlacement
	// FullCopyBackup disables the incremental-delta backup optimisation.
	FullCopyBackup bool
	// Overlay selects the topology-construction protocol: "tman"
	// (default, the paper's host) or "vicinity" (the alternative host
	// named in the paper's Fig. 3).
	Overlay string
	// TMan overrides T-Man parameters; zero fields take paper defaults.
	// Ignored when Overlay is "vicinity".
	TMan tman.Config
	// NeighborK is the neighbourhood size used by the proximity metric
	// and snapshots ("we represent the 4 closest nodes", Sec. IV-A).
	NeighborK int
	// SkipMetrics disables per-round metric collection (for sweeps that
	// only need the final state or reshaping time).
	SkipMetrics bool
	// ExchangeParallelism, when >= 1, runs rounds under the engine's
	// intra-round exchange batching with that many workers. Results are
	// byte-identical for every value >= 1 (worker count is a throughput
	// knob only); 0 keeps the legacy sequential engine, whose trajectory
	// differs. See sim.SetExchangeParallelism.
	ExchangeParallelism int
	// Shards, when >= 2, runs rounds under the sharded multi-engine
	// topology: a deterministic router cuts the torus into Shards
	// vertical bands keyed by each node's home grid cell, interior
	// exchanges execute concurrently per shard, and boundary exchanges
	// drain from a mailbox at the pass barrier (sim.SetShardMap). Shards
	// must divide W evenly. Unlike ExchangeParallelism, the shard count
	// is part of the trajectory's identity: runs are deterministic per
	// count, byte-identical across counts only for interior-only
	// traffic, and snapshots refuse to restore across counts. 0 or 1
	// keeps the single-engine topology. Sharding takes precedence over
	// ExchangeParallelism for layers supporting both.
	Shards int
	// Engine, when non-nil, is reused via sim.Engine.Reset(Seed, layers)
	// instead of allocating a fresh engine — the pooled-cell path of the
	// sweep harnesses, which recycles one engine across cells of equal
	// size. A reset engine's trajectory is byte-identical to a fresh
	// one's. The caller keeps ownership: Close is never called on a
	// supplied engine.
	Engine *sim.Engine
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 80
	}
	if c.H == 0 {
		c.H = 40
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.K == 0 {
		c.K = core.DefaultK
	}
	if c.Split == 0 {
		c.Split = core.SplitAdvanced
	}
	if c.NeighborK == 0 {
		c.NeighborK = 4
	}
	return c
}

// Scenario is a wired, running experiment.
type Scenario struct {
	Cfg    Config
	Engine *sim.Engine
	Space  space.Torus
	// Points are the original data points — the target shape. Index i is
	// the original position of node i. PointIDs carries their interned
	// identities in lockstep: the scenario owns the interner shared with
	// the Polystyrene layer, so the indexed metrics resolve the same IDs
	// the protocol maintains.
	Points   []space.Point
	PointIDs []space.PointID
	Interner *space.Interner

	sampler  *rps.Protocol
	topo     topology
	poly     *core.Protocol // nil when running the plain baseline
	provider shard.Topology

	// fixedPos holds positions of reinjected nodes in the plain T-Man
	// configuration (indexed by NodeID; nil entries fall back to Points).
	fixedPos map[sim.NodeID]space.Point

	// sys is the persistent metrics view (polySystem or tmanSystem); its
	// live-ID buffer is reused across rounds.
	sys metrics.System

	result *Result
}

// Result is the per-round metric record of a run.
type Result struct {
	// Homogeneity, Proximity, DataPoints, MsgCost have one entry per
	// completed round.
	Homogeneity []float64
	Proximity   []float64
	DataPoints  []float64
	MsgCost     []float64
	// LiveNodes traces the live node count per round.
	LiveNodes []int
}

// New wires a scenario and creates its initial node population.
func New(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	sc := &Scenario{
		Cfg:      cfg,
		Space:    space.TorusForGrid(cfg.W, cfg.H, cfg.Step),
		Points:   shape.Grid(cfg.W, cfg.H, cfg.Step),
		Interner: space.NewInterner(),
		sampler:  rps.New(rps.Config{}),
		fixedPos: make(map[sim.NodeID]space.Point),
		result:   &Result{},
	}
	// Generated shapes register into the interner once at setup
	// (intern-before-use); the IDs feed the indexed metrics.
	sc.PointIDs = shape.Intern(sc.Interner, sc.Points)

	switch cfg.Overlay {
	case "", "tman":
		tmCfg := cfg.TMan
		tmCfg.Space = sc.Space
		tmCfg.Sampler = sc.sampler
		tmCfg.Position = sc.position
		tm, err := tman.New(tmCfg)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc.topo = tm
	case "vicinity":
		vic, err := vicinity.New(vicinity.Config{
			Space:    sc.Space,
			Sampler:  sc.sampler,
			Position: sc.position,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc.topo = vic
	default:
		return nil, fmt.Errorf("scenario: unknown overlay %q (want tman|vicinity)", cfg.Overlay)
	}

	layers := []sim.Protocol{sc.sampler, sc.topo}
	if cfg.Polystyrene {
		poly, err := core.New(core.Config{
			Space:          sc.Space,
			Topology:       sc.topo,
			Sampler:        sc.sampler,
			Detector:       cfg.Detector,
			Interner:       sc.Interner,
			K:              cfg.K,
			Split:          cfg.Split,
			Placement:      cfg.Placement,
			FullCopyBackup: cfg.FullCopyBackup,
			InitialPoint:   sc.initialPoint,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc.poly = poly
		layers = append(layers, poly)
		sc.sys = &polySystem{sc: sc}
	} else {
		sc.sys = &tmanSystem{sc: sc}
	}

	provider, err := shard.ForGrid(cfg.W, cfg.H, cfg.Step, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc.provider = provider

	if cfg.Engine != nil {
		cfg.Engine.Reset(cfg.Seed, layers...)
		sc.Engine = cfg.Engine
	} else {
		sc.Engine = sim.New(cfg.Seed, layers...)
	}
	sc.Engine.SetExchangeParallelism(cfg.ExchangeParallelism)
	var hsm *homeShardMap
	if r := provider.Router(); r != nil {
		hsm = &homeShardMap{sc: sc, router: r}
		sc.Engine.SetShardMap(hsm)
	}
	if !cfg.SkipMetrics {
		sc.Engine.Observe(sc.record)
	}
	sc.Engine.AddNodes(cfg.W * cfg.H)
	if hsm != nil {
		// Route the initial population now so the map answers before the
		// first round (the engine re-runs Assign each round for joiners).
		hsm.Assign(sc.Engine)
	}
	return sc, nil
}

// MustNew is New but panics on error (for tests and examples).
func MustNew(cfg Config) *Scenario {
	sc, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return sc
}

// initialPoint supplies a joining node's original position. Nodes of the
// initial population seed their own data point; later (reinjected) nodes
// start empty on the offset parallel grid.
func (sc *Scenario) initialPoint(id sim.NodeID) (space.Point, bool) {
	if int(id) < len(sc.Points) {
		return sc.Points[id], true
	}
	return sc.reinjectionPosition(id), false
}

// reinjectionPosition places node id on a grid parallel to the original,
// shifted by half a step in both dimensions (Sec. IV-A phase 3: new nodes
// are "positioned uniformly on the torus, on a grid parallel to the
// original one"). Consecutive reinjected nodes take every other cell of
// the grid, so reinjecting N/2 nodes covers the whole torus uniformly at
// half density; a second wave fills the remaining cells.
func (sc *Scenario) reinjectionPosition(id sim.NodeID) space.Point {
	idx := int(id) - len(sc.Points)
	n := len(sc.Points)
	cell := ((2*idx)%n + (2 * idx / n)) % n
	base := sc.Points[cell]
	half := sc.Cfg.Step / 2
	return sc.Space.Wrap(space.Point{base[0] + half, base[1] + half})
}

// Provider returns the execution-topology provider of this scenario:
// shard.SingleEngine for the default configuration, the sharded topology
// when Cfg.Shards >= 2.
func (sc *Scenario) Provider() shard.Topology { return sc.provider }

// homeShardMap implements sim.ShardMap over the shard router and the
// scenario's config-derived home positions: a node's shard is the shard
// of the grid cell its original (or reinjection) position falls in. Both
// inputs are pure functions of the configuration, so every shard of a
// distributed deployment derives the identical map with no coordination
// — the property the router's determinism test pins. Assignments are
// cached in a dense table extended as nodes join.
type homeShardMap struct {
	sc     *Scenario
	router *shard.Router
	table  []int32
}

func (m *homeShardMap) Shards() int { return m.router.Shards() }

func (m *homeShardMap) Assign(e *sim.Engine) {
	for len(m.table) < e.NumNodes() {
		id := sim.NodeID(len(m.table))
		pos, _ := m.sc.initialPoint(id)
		m.table = append(m.table, int32(m.router.ShardOf(pos)))
	}
}

func (m *homeShardMap) ShardOf(id sim.NodeID) int { return int(m.table[id]) }

// position is the PositionFunc fed to T-Man: the Polystyrene projection
// when enabled, otherwise the node's fixed original (or reinjection) spot.
func (sc *Scenario) position(id sim.NodeID) space.Point {
	if sc.poly != nil {
		return sc.poly.Position(id)
	}
	if p, ok := sc.fixedPos[id]; ok {
		return p
	}
	return sc.Points[id]
}

// Run executes n rounds.
func (sc *Scenario) Run(n int) { sc.Engine.RunRounds(n) }

// Close releases the engine's persistent exchange-worker pool. Call it
// when discarding a scenario whose ExchangeParallelism was >= 2 (the
// sweep harnesses do this for the scenarios they own); it is idempotent
// and a no-op for sequential configurations. The scenario stays readable
// — metrics, snapshots and even further (inline-executed) rounds all
// still work.
func (sc *Scenario) Close() { sc.Engine.Close() }

// Footprint heuristics behind EstimatedFootprintBytes, calibrated
// against live runtime.MemStats sampling of converged mid-size cells
// (TestEstimatedFootprintTracksMeasuredHeap re-runs the calibration and
// pins the estimate to measured heap within a documented factor): one
// node of one protocol layer costs ~900 B at rest (views, guest/ghost
// sets, pooled scratch, engine bookkeeping), and each interned point of
// the Polystyrene data universe costs ~450 B on top (the interner's
// point storage and id map, a holders-index row, and the per-point share
// of guest/ghost set slots). The point term is what the estimate used to
// ignore: guest sets and the holders index scale with points, not nodes,
// so dense data universes under-estimated and runner.Budget over-admitted
// cells. Both constants are deliberately a little generous — the estimate
// bounds sweep parallelism, where overshooting trades throughput and
// undershooting trades the machine.
const (
	estFootprintBytesPerNodeLayer = 896
	estFootprintBytesPerPoint     = 448
)

// EstimatedFootprintBytes estimates the resident memory of one running
// cell of this configuration: nodes x protocol-layer count x a per-node
// constant, plus — under Polystyrene — the interned point universe (the
// target shape holds one data point per grid cell) x a per-point
// constant. It is the default per-cell cost the memory-budgeted sweep
// harnesses (RunOpts.MemBudgetBytes) divide their budget by; override it
// with a measured value via RunOpts.CellBytes when the heuristic is off
// for a workload.
func (c Config) EstimatedFootprintBytes() int64 {
	c = c.withDefaults()
	nodes := int64(c.W) * int64(c.H)
	layers := int64(2) // sampler + overlay
	if c.Polystyrene {
		layers++
	}
	est := nodes * layers * estFootprintBytesPerNodeLayer
	if c.Polystyrene {
		// The data universe: one interned original point per node, plus
		// the reinjection wave's half-offset positions interned as nodes
		// re-join. Priced per point, not per node-layer, because guest
		// sets, ghost sets and the holders index scale with it.
		est += nodes * estFootprintBytesPerPoint
	}
	return est
}

// FailRightHalf crashes every live node currently positioned in the right
// half of the torus — the catastrophic correlated failure of Fig. 1 and
// phase 2. It returns the number of crashed nodes.
func (sc *Scenario) FailRightHalf() int {
	w := float64(sc.Cfg.W) * sc.Cfg.Step
	return sc.FailRegion(func(p space.Point) bool { return space.RightHalf(p, w) })
}

// FailRegion crashes every live node whose current position satisfies the
// predicate, returning how many crashed.
func (sc *Scenario) FailRegion(in func(space.Point) bool) int {
	killed := 0
	for _, id := range sc.Engine.LiveIDs() {
		if in(sc.position(id)) {
			sc.Engine.Kill(id)
			killed++
		}
	}
	return killed
}

// Reinject adds n fresh nodes. Under Polystyrene they hold no data point
// but have initialised positions on the parallel grid; under plain T-Man
// they are ordinary nodes fixed at those positions.
func (sc *Scenario) Reinject(n int) []sim.NodeID {
	ids := sc.Engine.AddNodes(n)
	if sc.poly == nil {
		for _, id := range ids {
			sc.fixedPos[id] = sc.reinjectionPosition(id)
		}
	}
	return ids
}

// record is the per-round metrics observer. Under Polystyrene the
// homogeneity reading comes from the layer's incremental holders index;
// the plain baseline keeps the full-scan path (its "guest set" is the
// node position, which no index maintains).
func (sc *Scenario) record(e *sim.Engine, round int) {
	r := sc.result
	r.Homogeneity = append(r.Homogeneity, sc.Homogeneity())
	r.Proximity = append(r.Proximity, metrics.Proximity(sc.sys, sc.Cfg.NeighborK))
	r.DataPoints = append(r.DataPoints, metrics.DataPointsPerNode(sc.sys))
	r.MsgCost = append(r.MsgCost, metrics.MessageCostPerNode(e, round))
	r.LiveNodes = append(r.LiveNodes, e.NumLive())
}

// Result returns the metric record accumulated so far.
func (sc *Scenario) Result() *Result { return sc.result }

// System returns the metrics view of the current configuration. The view
// is persistent and reuses an internal live-ID buffer across Live calls.
func (sc *Scenario) System() metrics.System { return sc.sys }

// ReferenceHomogeneity returns H for the current live population.
func (sc *Scenario) ReferenceHomogeneity() float64 {
	return metrics.ReferenceHomogeneity(sc.Space.Area(), sc.Engine.NumLive())
}

// Reliability returns the fraction of original data points still hosted.
func (sc *Scenario) Reliability() float64 {
	if sc.poly != nil {
		return metrics.ReliabilityIndexed(sc.sys, sc.poly, sc.PointIDs)
	}
	return metrics.Reliability(sc.sys, sc.Points)
}

// Homogeneity computes the current homogeneity on demand (useful when
// SkipMetrics is set). It reads the Polystyrene holders index when the
// layer is present and falls back to the full scan for the baseline.
func (sc *Scenario) Homogeneity() float64 {
	if sc.poly != nil {
		return metrics.HomogeneityIndexed(sc.sys, sc.poly, sc.Points, sc.PointIDs)
	}
	return metrics.Homogeneity(sc.sys, sc.Points)
}

// topology is what the scenario needs from the overlay layer: it must be
// steppable by the engine and expose closest-neighbour queries.
type topology interface {
	sim.Protocol
	core.Topology
}

// Topology exposes the topology-construction layer (for snapshots, tests
// and application layers such as routing).
func (sc *Scenario) Topology() core.Topology { return sc.topo }

// Poly exposes the Polystyrene layer, nil in the baseline configuration.
func (sc *Scenario) Poly() *core.Protocol { return sc.poly }

// polySystem adapts the full stack to metrics.System. liveBuf and
// guestBuf back Live and Guests so per-round metric sweeps reuse two
// allocations instead of cloning per node.
type polySystem struct {
	sc       *Scenario
	liveBuf  []sim.NodeID
	guestBuf []space.Point
}

func (s *polySystem) Space() space.Space { return s.sc.Space }
func (s *polySystem) Live() []sim.NodeID {
	s.liveBuf = s.sc.Engine.AppendLiveIDs(s.liveBuf[:0])
	return s.liveBuf
}
func (s *polySystem) Alive(id sim.NodeID) bool           { return s.sc.Engine.Alive(id) }
func (s *polySystem) Position(id sim.NodeID) space.Point { return s.sc.poly.Position(id) }
func (s *polySystem) Guests(id sim.NodeID) []space.Point {
	s.guestBuf = s.sc.poly.AppendGuests(id, s.guestBuf[:0])
	return s.guestBuf
}
func (s *polySystem) NumGuests(id sim.NodeID) int { return s.sc.poly.NumGuests(id) }
func (s *polySystem) NumGhosts(id sim.NodeID) int { return s.sc.poly.NumGhosts(id) }
func (s *polySystem) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	s.sc.topo.EachNeighbor(id, k, yield)
}

// tmanSystem adapts the baseline: a node's single "guest" is its fixed
// position and it stores no ghosts (paper Sec. IV-A). guestBuf backs the
// single-point Guests answer so metric sweeps do not allocate per node.
type tmanSystem struct {
	sc       *Scenario
	liveBuf  []sim.NodeID
	guestBuf [1]space.Point
}

func (s *tmanSystem) Space() space.Space { return s.sc.Space }
func (s *tmanSystem) Live() []sim.NodeID {
	s.liveBuf = s.sc.Engine.AppendLiveIDs(s.liveBuf[:0])
	return s.liveBuf
}
func (s *tmanSystem) Alive(id sim.NodeID) bool           { return s.sc.Engine.Alive(id) }
func (s *tmanSystem) Position(id sim.NodeID) space.Point { return s.sc.position(id) }
func (s *tmanSystem) Guests(id sim.NodeID) []space.Point {
	s.guestBuf[0] = s.sc.position(id)
	return s.guestBuf[:]
}
func (s *tmanSystem) NumGuests(sim.NodeID) int { return 1 }
func (s *tmanSystem) NumGhosts(sim.NodeID) int { return 0 }
func (s *tmanSystem) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	s.sc.topo.EachNeighbor(id, k, yield)
}

package scenario

import (
	"math"
	"testing"

	"polystyrene/internal/core"
	"polystyrene/internal/metrics"
)

// smallCfg is a fast, unit-test-scale version of the paper's setup.
func smallCfg(seed uint64, poly bool) Config {
	return Config{Seed: seed, W: 20, H: 10, Polystyrene: poly, K: 4}
}

// smallPhases scales the paper's phases down to a 20x10 grid.
func smallPhases() Phases { return Phases{FailAt: 15, ReinjectAt: 50, End: 90} }

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.W != 80 || cfg.H != 40 || cfg.Step != 1 || cfg.K != core.DefaultK || cfg.NeighborK != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestPhasesValidate(t *testing.T) {
	if err := PaperPhases().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Phases{
		{FailAt: 0, ReinjectAt: 10, End: 20},
		{FailAt: 30, ReinjectAt: 10, End: 20},
		{FailAt: 5, ReinjectAt: 10, End: 9},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("phases %+v validated", p)
		}
	}
}

func TestInitialPopulation(t *testing.T) {
	sc := MustNew(smallCfg(1, true))
	if sc.Engine.NumNodes() != 200 {
		t.Fatalf("population %d, want 200", sc.Engine.NumNodes())
	}
	if len(sc.Points) != 200 {
		t.Fatalf("points %d, want 200", len(sc.Points))
	}
	// Reference homogeneity of the full grid: 0.5*sqrt(200/200) = 0.5.
	if got := sc.ReferenceHomogeneity(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("H = %v, want 0.5", got)
	}
}

func TestConvergencePhase(t *testing.T) {
	for _, poly := range []bool{false, true} {
		sc := MustNew(smallCfg(2, poly))
		sc.Run(15)
		res := sc.Result()
		if got := res.Proximity[14]; got > 1.1 {
			t.Errorf("poly=%v: proximity after convergence %v, want ~1", poly, got)
		}
		if got := res.Homogeneity[14]; got > 0.2 {
			t.Errorf("poly=%v: homogeneity after convergence %v, want ~0", poly, got)
		}
	}
}

func TestFailRightHalfKillsHalf(t *testing.T) {
	sc := MustNew(smallCfg(3, true))
	sc.Run(15)
	killed := sc.FailRightHalf()
	if killed < 90 || killed > 110 {
		t.Fatalf("killed %d of 200, want ~100", killed)
	}
	if sc.Engine.NumLive() != 200-killed {
		t.Fatalf("live %d after killing %d", sc.Engine.NumLive(), killed)
	}
}

func TestPolystyreneReshapesTManDoesNot(t *testing.T) {
	// The paper's headline comparison (Fig. 6a) at test scale: after the
	// half-torus catastrophe, Polystyrene's homogeneity drops below the
	// reference H while plain T-Man stays far above it.
	phases := smallPhases()

	scP, resP, err := RunPaper(smallCfg(4, true), phases)
	if err != nil {
		t.Fatal(err)
	}
	scT, resT, err := RunPaper(smallCfg(4, false), phases)
	if err != nil {
		t.Fatal(err)
	}

	// Reference H for ~100 survivors on a 200-cell torus ~ 0.5*sqrt(2).
	checkRound := phases.ReinjectAt - 1
	hP := resP.Homogeneity[checkRound]
	hT := resT.Homogeneity[checkRound]
	refP := 0.5 * math.Sqrt(float64(200)/float64(resP.LiveNodes[checkRound]))
	if hP >= refP {
		t.Errorf("Polystyrene homogeneity %v did not drop below H=%v", hP, refP)
	}
	if hT < 2*refP {
		t.Errorf("plain T-Man homogeneity %v unexpectedly recovered (H=%v)", hT, refP)
	}
	// On the full 80x40 grid the gap is ~8.6x (5.25 vs 0.61); on this small
	// 20-wide torus the lost half is nearer to the survivors, so the
	// margin shrinks — 2.5x still asserts the qualitative separation.
	if hT < 2.5*hP {
		t.Errorf("expected Polystyrene (h=%v) to beat T-Man (h=%v) by a wide margin", hP, hT)
	}
	_ = scP
	_ = scT
}

func TestReinjectionRebalances(t *testing.T) {
	phases := smallPhases()
	sc, res, err := RunPaper(smallCfg(5, true), phases)
	if err != nil {
		t.Fatal(err)
	}
	// After reinjection the node count is back to ~200 and homogeneity
	// approaches the full-population reference 0.5 (paper: an order of
	// magnitude below the T-Man baseline of ~0.35 on their grid; on this
	// small grid we assert it simply returns below H).
	last := phases.End - 1
	if res.LiveNodes[last] < 190 {
		t.Fatalf("live %d at the end, want ~200", res.LiveNodes[last])
	}
	if got := res.Homogeneity[last]; got > 0.5 {
		t.Errorf("homogeneity after reinjection %v, want < 0.5", got)
	}
	if got := res.Proximity[last]; got > 1.3 {
		t.Errorf("proximity after reinjection %v, want ~1", got)
	}
	_ = sc
}

func TestTManReinjectionStaysOffset(t *testing.T) {
	// Plain T-Man reinjected nodes sit on the offset grid and never adopt
	// the original points: homogeneity converges to ~ mean(0, step/sqrt(2))
	// (≈ 0.35 for step 1, paper Sec. IV-B).
	phases := smallPhases()
	_, res, err := RunPaper(smallCfg(6, false), phases)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Homogeneity[phases.End-1]
	want := (0 + math.Sqrt2/2) / 2
	if math.Abs(got-want) > 0.1 {
		t.Errorf("T-Man homogeneity after reinjection %v, want ~%v", got, want)
	}
}

func TestMemoryOverheadTracksK(t *testing.T) {
	// Before the failure the system stores K+1 copies per point: the
	// memory metric should sit near K+1 data points per node (Fig. 7a).
	for _, k := range []int{2, 4} {
		cfg := smallCfg(7, true)
		cfg.K = k
		sc := MustNew(cfg)
		sc.Run(15)
		got := sc.Result().DataPoints[14]
		want := float64(k + 1)
		if math.Abs(got-want) > 0.5 {
			t.Errorf("K=%d: data points per node %v, want ~%v", k, got, want)
		}
	}
}

func TestMessageCostDominatedByTMan(t *testing.T) {
	// Fig. 7b: most communication is T-Man's; Polystyrene adds little.
	cfg := smallCfg(8, true)
	sc := MustNew(cfg)
	sc.Run(15)
	m := sc.Engine.Meter()
	tmanCost := m.TotalCost("tman")
	polyCost := m.TotalCost("polystyrene")
	if tmanCost == 0 {
		t.Fatal("no T-Man cost recorded")
	}
	frac := float64(tmanCost) / float64(tmanCost+polyCost)
	if frac < 0.6 {
		t.Errorf("T-Man share of traffic %.2f, want dominant (paper: ~0.94)", frac)
	}
}

func TestMeasureReshaping(t *testing.T) {
	cfg := smallCfg(9, true)
	out, err := MeasureReshaping(cfg, 15, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reached {
		t.Fatalf("reshaping never completed within 40 rounds")
	}
	if out.Rounds < 1 || out.Rounds > 25 {
		t.Errorf("reshaping time %d rounds, expected a small number", out.Rounds)
	}
	// K=4, pf=0.5: expected reliability ≈ 1-0.5^5 = 96.9%.
	if out.Reliability < 0.9 {
		t.Errorf("reliability %v, want > 0.9", out.Reliability)
	}
}

func TestTableIIOrdering(t *testing.T) {
	// Higher K ⇒ better reliability (Table II); reshaping time grows with
	// K (more redundant copies to deduplicate).
	rows, err := TableII(smallCfg(10, true), []int{2, 8}, RunOpts{Reps: 3, ConvergeRounds: 15, MaxRounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r2, r8 := rows[0], rows[1]
	if r8.ReliabilityPct.Mean() <= r2.ReliabilityPct.Mean() {
		t.Errorf("reliability K=8 (%.1f%%) not above K=2 (%.1f%%)",
			r8.ReliabilityPct.Mean(), r2.ReliabilityPct.Mean())
	}
	if r2.FailedToReshape > 0 || r8.FailedToReshape > 0 {
		t.Errorf("some runs never reshaped: K2=%d K8=%d", r2.FailedToReshape, r8.FailedToReshape)
	}
}

func TestSizeSweepRuns(t *testing.T) {
	sizes := []GridSize{{16, 8}, {20, 10}}
	variants := map[string]func(Config) Config{
		"K4": func(c Config) Config { c.K = 4; return c },
	}
	out, err := SizeSweep(Config{Seed: 11}, sizes, variants, RunOpts{Reps: 1, ConvergeRounds: 15, MaxRounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	pts := out["K4"]
	if len(pts) != 2 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.ReshapingTime.Mean() <= 0 {
			t.Errorf("size %d: non-positive reshaping time", pt.Nodes)
		}
	}
}

func TestPaperGridSizes(t *testing.T) {
	sizes := PaperGridSizes(3200)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	for _, s := range sizes {
		if s.W*s.H > 3200 {
			t.Errorf("size %dx%d exceeds cap", s.W, s.H)
		}
	}
	all := PaperGridSizes(1 << 30)
	last := all[len(all)-1]
	if last.W*last.H != 51200 {
		t.Errorf("largest size %d, want 51200", last.W*last.H)
	}
}

func TestSnapshot(t *testing.T) {
	sc := MustNew(smallCfg(12, true))
	sc.Run(10)
	snap := sc.Snapshot()
	if len(snap) != 200 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	for _, ns := range snap {
		if ns.Pos == nil {
			t.Fatalf("node %d has nil position", ns.ID)
		}
		if len(ns.Neighbors) == 0 {
			t.Fatalf("node %d has no neighbours in snapshot", ns.ID)
		}
		if len(ns.Neighbors) > 4 {
			t.Fatalf("node %d has %d neighbours, cap 4", ns.ID, len(ns.Neighbors))
		}
	}
}

func TestSplitFunctionAffectsReshaping(t *testing.T) {
	// Fig. 10b at test scale: SplitAdvanced must not be slower than
	// SplitBasic on average.
	measure := func(kind core.SplitKind) float64 {
		var total float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			cfg := smallCfg(uint64(13+rep), true)
			cfg.Split = kind
			out, err := MeasureReshaping(cfg, 15, 60)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(out.Rounds)
		}
		return total / reps
	}
	basic := measure(core.SplitBasic)
	advanced := measure(core.SplitAdvanced)
	if advanced > basic+2 {
		t.Errorf("advanced split (%.1f rounds) slower than basic (%.1f)", advanced, basic)
	}
}

func TestIndexedMetricsMatchFullScanOracle(t *testing.T) {
	// The per-round metrics read the core layer's incremental holders
	// index; the string-keyed full scans are kept as the oracle. Across
	// the whole 3-phase scenario the two must agree bit for bit — this is
	// what licenses recording only the indexed values.
	sc := MustNew(smallCfg(33, true))
	phases := smallPhases()
	checkRound := func(round int) {
		sys := sc.System()
		gotH := metrics.HomogeneityIndexed(sys, sc.Poly(), sc.Points, sc.PointIDs)
		wantH := metrics.Homogeneity(sys, sc.Points)
		if gotH != wantH {
			t.Fatalf("round %d: indexed homogeneity %v != full-scan %v", round, gotH, wantH)
		}
		gotR := metrics.ReliabilityIndexed(sys, sc.Poly(), sc.PointIDs)
		wantR := metrics.Reliability(sys, sc.Points)
		if gotR != wantR {
			t.Fatalf("round %d: indexed reliability %v != full-scan %v", round, gotR, wantR)
		}
	}
	for round := 0; round < phases.End; round++ {
		if round == phases.FailAt {
			sc.FailRightHalf()
		}
		if round == phases.ReinjectAt {
			sc.Reinject(40)
		}
		sc.Run(1)
		checkRound(round)
	}
}

func TestDeterministicScenario(t *testing.T) {
	run := func() []float64 {
		sc := MustNew(smallCfg(42, true))
		sc.Run(10)
		return sc.Result().Homogeneity
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at round %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunPaperRejectsBadPhases(t *testing.T) {
	if _, _, err := RunPaper(smallCfg(1, true), Phases{}); err == nil {
		t.Fatal("bad phases accepted")
	}
}

func TestReinjectionPositionsOnOffsetGrid(t *testing.T) {
	sc := MustNew(smallCfg(14, true))
	sc.Run(5)
	sc.FailRightHalf()
	ids := sc.Reinject(10)
	for _, id := range ids {
		pos := sc.Poly().Position(id)
		// Offset grid: both coordinates are x.5 for step 1.
		fx := pos[0] - math.Floor(pos[0])
		fy := pos[1] - math.Floor(pos[1])
		if math.Abs(fx-0.5) > 1e-9 || math.Abs(fy-0.5) > 1e-9 {
			t.Fatalf("reinjected node %d at %v, want half-step offsets", id, pos)
		}
	}
}

func TestVicinityHostAlsoReshapes(t *testing.T) {
	// The paper presents Polystyrene as an add-on for any topology
	// construction protocol (Fig. 3 names T-Man, Vicinity, Gossple).
	// Verify the Vicinity host converges and recovers the shape too.
	cfg := smallCfg(20, true)
	cfg.Overlay = "vicinity"
	out, err := MeasureReshaping(cfg, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reached {
		t.Fatal("Polystyrene-over-Vicinity never reshaped")
	}
	if out.Reliability < 0.9 {
		t.Fatalf("reliability %v over Vicinity", out.Reliability)
	}
}

func TestUnknownOverlayRejected(t *testing.T) {
	cfg := smallCfg(21, true)
	cfg.Overlay = "gossple"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown overlay accepted")
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := RunChurn(smallCfg(30, true), ChurnConfig{Rate: 1.5}, 5, 5); err == nil {
		t.Fatal("churn rate > 1 accepted")
	}
	if _, err := RunChurn(smallCfg(30, true), ChurnConfig{Rate: -0.1}, 5, 5); err == nil {
		t.Fatal("negative churn rate accepted")
	}
}

func TestShapeSurvivesModerateChurn(t *testing.T) {
	// 1% churn per round with replacement for 30 rounds: the shape must
	// hold (homogeneity below the reference) and nearly all points live.
	cfg := smallCfg(31, true)
	cfg.K = 6
	out, err := RunChurn(cfg, ChurnConfig{Rate: 0.01, Replace: true, Rounds: 30}, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed == 0 || out.Joined != out.Crashed {
		t.Fatalf("churn bookkeeping: crashed=%d joined=%d", out.Crashed, out.Joined)
	}
	if !out.ShapeHeld {
		t.Fatalf("shape lost under 1%% churn: h=%v ref=%v", out.FinalHomogeneity, out.FinalReference)
	}
	if out.Reliability < 0.95 {
		t.Fatalf("reliability %v under churn with K=6", out.Reliability)
	}
}

func TestChurnSweepMonotoneDamage(t *testing.T) {
	outs, err := ChurnSweep(smallCfg(32, true), []float64{0, 0.05}, ChurnSweepOpts{ChurnRounds: 20, ConvergeRounds: 10, SettleRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[0].Reliability < outs[1].Reliability {
		t.Fatalf("reliability should not improve with churn: %v vs %v",
			outs[0].Reliability, outs[1].Reliability)
	}
}

package scenario

import (
	"fmt"

	"polystyrene/internal/sim"
	"polystyrene/internal/trace"
)

// This file drives replayable availability schedules (trace.Schedule)
// through the deterministic engine: the trace-driven counterpart of the
// paper's scripted phases (DrivePhases). Both follow the same round-START
// event discipline, so schedules compose with auto-checkpointing (a
// checkpoint taken at round start re-fires that round's pending events
// exactly once on resume), with warm starts (a schedule whose events
// begin after the converge horizon replays on top of a restored
// ConvergedSnapshot — DriveSchedule fast-forwards past already-applied
// rounds), and with phases (drive a phase window, then a schedule window,
// or express the phases themselves as a schedule via the generators).

// RunSchedule wires cfg, replays the schedule for `rounds` rounds and
// returns the scenario in its final state together with its per-round
// metric record. The schedule must be canonical (Canonicalize has run)
// and sized for the configuration: sched.Initial == W*H. Events beyond
// `rounds` simply never fire. The caller owns sc.Close.
func RunSchedule(cfg Config, sched *trace.Schedule, rounds int) (*Scenario, *Result, error) {
	sc, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := DriveSchedule(sc, sched, rounds); err != nil {
		if cfg.Engine == nil {
			sc.Close()
		}
		return nil, nil, err
	}
	return sc, sc.Result(), nil
}

// DriveSchedule advances sc from its current round to round `to`, firing
// each schedule event at the START of its round — joins first (fresh,
// empty-handed nodes on the reinjection grid, exactly like the paper's
// phase-3 arrivals), then leaves (crash-stop kills). Resuming is
// implicit: events before the scenario's current round are skipped as
// already applied (their effect travels in the checkpoint), and the
// skipped joins are reconciled against the engine's population so a
// schedule/checkpoint mismatch fails loudly instead of replaying a
// different trace.
func DriveSchedule(sc *Scenario, sched *trace.Schedule, to int) error {
	return DriveScheduleFunc(sc, sched, to, nil)
}

// DriveScheduleFunc is DriveSchedule with a per-round callback: atRound
// (if non-nil) runs at the start of each round, before that round's
// events fire — the checkpoint discipline (AutoCheckpointer.MaybeSave
// belongs there) and the natural place for pacing or a shutdown check.
// Returning false stops the drive before the round runs; the scenario is
// left at a round boundary either way.
func DriveScheduleFunc(sc *Scenario, sched *trace.Schedule, to int, atRound func(round int) bool) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if want := sc.Cfg.W * sc.Cfg.H; sched.Initial != want {
		return fmt.Errorf("scenario: schedule initial population %d does not match the %dx%d grid (%d nodes)",
			sched.Initial, sc.Cfg.W, sc.Cfg.H, want)
	}
	events := sched.Events
	// Fast-forward past rounds that already ran (fresh scenarios start at
	// round 0 and skip nothing; restored ones re-enter mid-schedule).
	// Checkpoints are taken at round start BEFORE events, so events of the
	// re-entry round itself are still pending and must fire here.
	idx, skippedJoins := 0, 0
	for idx < len(events) && events[idx].Round < sc.Engine.Round() {
		if events[idx].Op == trace.OpJoin {
			skippedJoins++
		}
		idx++
	}
	if got, want := sc.Engine.NumNodes(), sched.Initial+skippedJoins; got != want {
		return fmt.Errorf("scenario: engine has %d nodes at round %d but the schedule accounts for %d — resumed state does not match this schedule",
			got, sc.Engine.Round(), want)
	}
	for sc.Engine.Round() < to {
		r := sc.Engine.Round()
		if atRound != nil && !atRound(r) {
			return nil
		}
		// Joins first (canonical order groups them ahead of the round's
		// leaves, node-ascending — the engine assigns IDs in exactly that
		// order, which the canonical form validated).
		joins := 0
		for idx+joins < len(events) && events[idx+joins].Round == r && events[idx+joins].Op == trace.OpJoin {
			joins++
		}
		if joins > 0 {
			ids := sc.Reinject(joins)
			for i, id := range ids {
				if int(id) != events[idx+i].Node {
					return fmt.Errorf("scenario: round %d: engine assigned joiner id %d, schedule expected %d", r, id, events[idx+i].Node)
				}
			}
			idx += joins
		}
		for idx < len(events) && events[idx].Round == r {
			ev := events[idx]
			if ev.Op != trace.OpLeave {
				return fmt.Errorf("scenario: round %d: event %v out of canonical order", r, ev)
			}
			if !sc.Engine.Alive(sim.NodeID(ev.Node)) {
				return fmt.Errorf("scenario: round %d: schedule crashes node %d, which is not alive", r, ev.Node)
			}
			sc.Engine.Kill(sim.NodeID(ev.Node))
			idx++
		}
		sc.Run(1)
	}
	return nil
}

package scenario

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"polystyrene/internal/ckpt"
	"polystyrene/internal/trace"
)

// replaySchedule returns the canonical test trace: uniform churn with
// replacement on the 16x8 grid — joins and leaves nearly every round, so
// every replay path (parallel exchanges, pooled engines, checkpoint
// resume) exercises both event kinds repeatedly.
func replaySchedule(t *testing.T, rounds int) *trace.Schedule {
	t.Helper()
	sched, err := trace.UniformChurn(16*8, rounds, 0.05, true, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func replayConfig(exchange int) Config {
	return Config{
		Seed: 42, W: 16, H: 8,
		Polystyrene:         true,
		K:                   4,
		ExchangeParallelism: exchange,
	}
}

// resultFingerprint is FNV-1a over the full per-round series — the same
// digest the experiment grid uses (experiments.Fingerprint; duplicated
// here because that package imports this one).
func resultFingerprint(r *Result) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for _, col := range [][]float64{r.Homogeneity, r.Proximity, r.DataPoints, r.MsgCost} {
		mix(uint64(len(col)))
		for _, v := range col {
			mix(math.Float64bits(v))
		}
	}
	mix(uint64(len(r.LiveNodes)))
	for _, v := range r.LiveNodes {
		mix(uint64(v))
	}
	return h
}

func runReplay(t *testing.T, cfg Config, sched *trace.Schedule, rounds int) *Result {
	t.Helper()
	sc, res, err := RunSchedule(cfg, sched, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	return res
}

// TestScheduleReplayParallelIdentity: one schedule, every batched
// exchange-parallelism level — byte-identical series. (Level 0, the
// legacy sequential engine, is a deliberately different deterministic
// trajectory; it is pinned by the golden test below, not compared here.)
func TestScheduleReplayParallelIdentity(t *testing.T) {
	const rounds = 30
	sched := replaySchedule(t, rounds)
	base := runReplay(t, replayConfig(1), sched, rounds)
	for _, w := range []int{2, 4} {
		got := runReplay(t, replayConfig(w), sched, rounds)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("exchange parallelism %d diverged from level 1: fp %016x vs %016x",
				w, resultFingerprint(got), resultFingerprint(base))
		}
	}
}

// TestScheduleReplayGolden pins the replay trajectories — sequential
// (w=0) and batched (w>=1) — to golden fingerprints. Catches silent
// semantic drift anywhere in the stack: engine order, schedule
// application, metrics.
func TestScheduleReplayGolden(t *testing.T) {
	const rounds = 30
	sched := replaySchedule(t, rounds)
	golden := map[int]uint64{
		0: 0x3cd4d052351114e6,
		2: 0x01981679371906bb,
	}
	for w, want := range golden {
		res := runReplay(t, replayConfig(w), sched, rounds)
		if got := resultFingerprint(res); got != want {
			t.Errorf("w=%d: replay fingerprint %#016x, want %#016x", w, got, want)
		}
	}
}

// TestScheduleReplayPooledIdentity: a replay on a pooled, Reset engine —
// dirtied by a prior run of a different seed — is byte-identical to one
// on a fresh engine.
func TestScheduleReplayPooledIdentity(t *testing.T) {
	const rounds = 30
	sched := replaySchedule(t, rounds)
	fresh := runReplay(t, replayConfig(2), sched, rounds)

	pool := NewEnginePool()
	defer pool.Drain()
	dirty := replayConfig(2)
	dirty.Seed = 999
	rel := pool.Acquire(&dirty)
	sc, _, err := RunSchedule(dirty, sched, rounds)
	if err != nil {
		t.Fatal(err)
	}
	_ = sc
	rel()

	cfg := replayConfig(2)
	rel = pool.Acquire(&cfg)
	if cfg.Engine == nil {
		t.Fatal("pool did not hand back the dirtied engine")
	}
	pooled := runReplay(t, cfg, sched, rounds)
	rel()
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("pooled replay diverged from fresh engine: fp %016x vs %016x",
			resultFingerprint(pooled), resultFingerprint(fresh))
	}
}

// TestScheduleReplayCheckpointResume: checkpoint mid-schedule at round
// START (before that round's events fire), restore into a fresh
// scenario, drive the same schedule to the end — byte-identical to the
// uninterrupted run. The resumed loop must re-fire the checkpoint
// round's pending events exactly once; both the in-memory snapshot and
// the on-disk ckpt.Manager path are covered.
func TestScheduleReplayCheckpointResume(t *testing.T) {
	const rounds, mid = 30, 13
	sched := replaySchedule(t, rounds)
	full := runReplay(t, replayConfig(2), sched, rounds)

	// Drive to the checkpoint boundary: stop at round `mid` before its
	// events, exactly where AutoCheckpointer.MaybeSave sits in the loop.
	sc, err := New(replayConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := DriveScheduleFunc(sc, sched, rounds, func(r int) bool { return r != mid }); err != nil {
		t.Fatal(err)
	}
	if got := sc.Engine.Round(); got != mid {
		t.Fatalf("stopped at round %d, want %d", got, mid)
	}
	var snap bytes.Buffer
	if err := sc.SnapshotTo(&snap); err != nil {
		t.Fatal(err)
	}

	// In-memory resume.
	resumed, err := New(replayConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := DriveSchedule(resumed, sched, rounds); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed.Result()) {
		t.Errorf("snapshot resume diverged: fp %016x vs %016x",
			resultFingerprint(resumed.Result()), resultFingerprint(full))
	}

	// Durable resume through a checkpoint directory.
	mgr, err := ckpt.NewManager(ckpt.Options{Dir: t.TempDir(), Kind: SnapshotKind, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Save(mid, sc.SnapshotTo); err != nil {
		t.Fatal(err)
	}
	durable, err := New(replayConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	if _, err := RestoreLatest(durable, mgr); err != nil {
		t.Fatal(err)
	}
	if err := DriveSchedule(durable, sched, rounds); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, durable.Result()) {
		t.Errorf("ckpt.Manager resume diverged: fp %016x vs %016x",
			resultFingerprint(durable.Result()), resultFingerprint(full))
	}
}

// TestDriveScheduleRejects: population mismatches fail loudly, both at
// wiring (schedule sized for a different grid) and at resume (restored
// state inconsistent with the schedule's join history).
func TestDriveScheduleRejects(t *testing.T) {
	sched := replaySchedule(t, 10)
	cfg := replayConfig(0)
	cfg.W, cfg.H = 10, 10 // 100 nodes, schedule says 128
	if _, _, err := RunSchedule(cfg, sched, 10); err == nil {
		t.Fatal("size-mismatched schedule must be rejected")
	}

	// A scenario advanced under a different regime cannot resume an
	// unrelated schedule: the join ledger will not reconcile.
	sc, err := New(replayConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.Engine.Kill(3) // population now 127, schedule accounts for 128
	sc.Run(5)
	if err := DriveSchedule(sc, sched, 10); err == nil {
		t.Fatal("resume into inconsistent population must be rejected")
	}
}

package scenario

import (
	"polystyrene/internal/serve"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// serveSrc adapts a Scenario to serve.Source, so phase-driven soaks
// (cmd/polyserve) can publish epochs from the same engine DrivePhases
// advances. All methods run on the round-driving goroutine while the
// engine is quiescent.
type serveSrc struct{ sc *Scenario }

func (v serveSrc) Space() space.Space { return v.sc.Space }
func (v serveSrc) Round() int         { return v.sc.Engine.Round() }
func (v serveSrc) NumNodes() int      { return v.sc.Engine.NumNodes() }

func (v serveSrc) AppendLive(dst []sim.NodeID) []sim.NodeID {
	return v.sc.Engine.AppendLiveIDs(dst)
}

func (v serveSrc) Position(id sim.NodeID) space.Point { return v.sc.position(id) }

func (v serveSrc) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	v.sc.topo.EachNeighbor(id, k, yield)
}

func (v serveSrc) NumGuests(id sim.NodeID) int {
	if v.sc.poly == nil {
		return 0
	}
	return v.sc.poly.NumGuests(id)
}

func (v serveSrc) NumGhosts(id sim.NodeID) int {
	if v.sc.poly == nil {
		return 0
	}
	return v.sc.poly.NumGhosts(id)
}

func (v serveSrc) NumPoints() int {
	if v.sc.poly == nil {
		return 0
	}
	return v.sc.Interner.Len()
}

func (v serveSrc) EachGuestID(id sim.NodeID, fn func(pid space.PointID)) {
	if v.sc.poly == nil {
		return
	}
	v.sc.poly.GuestsFunc(id, func(_ space.Point, pid space.PointID) { fn(pid) })
}

// ServeSource returns the scenario's serve.Source adapter.
func (sc *Scenario) ServeSource() serve.Source { return serveSrc{sc} }

// ServePublisher creates a Publisher with the given router-view fanout
// (<= 0 means serve.DefaultFanout), publishes an initial epoch, and
// hooks the publisher to the engine's post-barrier publish point so
// every round ends by swapping in a fresh epoch — the scenario twin of
// polystyrene.System.ServePublisher. The engine has a single publish
// hook; a second call replaces the first wiring.
func (sc *Scenario) ServePublisher(fanout int) *serve.Publisher {
	pub := serve.NewPublisher(fanout)
	src := serveSrc{sc}
	pub.Publish(src)
	sc.Engine.SetPublishHook(func(*sim.Engine, int) { pub.Publish(src) })
	return pub
}

// StopServing detaches the publish hook installed by ServePublisher.
func (sc *Scenario) StopServing() { sc.Engine.SetPublishHook(nil) }

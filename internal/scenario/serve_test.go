package scenario

import (
	"testing"

	"polystyrene/internal/serve"
)

func TestScenarioServePublisherThroughPhases(t *testing.T) {
	sc := MustNew(Config{Seed: 5, W: 16, H: 8, Polystyrene: true, K: 4, SkipMetrics: true})
	defer sc.Close()
	pub := sc.ServePublisher(0)
	defer pub.Close()
	ep := pub.Current()
	if ep == nil || ep.Seq != 1 || ep.NumLive() != 16*8 {
		t.Fatalf("eager epoch = %+v", ep)
	}
	if ep.NumPoints() != 16*8 {
		t.Fatalf("epoch points = %d, want %d", ep.NumPoints(), 16*8)
	}

	ph := Phases{FailAt: 4, ReinjectAt: 8, End: 12}
	var starts []int
	DrivePhasesFunc(sc, ph, 12, func(round int) bool {
		starts = append(starts, round)
		return true
	})
	if len(starts) != 12 || starts[0] != 0 || starts[11] != 11 {
		t.Fatalf("atRound calls = %v, want rounds 0..11", starts)
	}
	ep = pub.Current()
	if ep.Round != 11 || ep.Seq != 13 {
		t.Fatalf("final epoch Round/Seq = %d/%d, want 11/13", ep.Round, ep.Seq)
	}
	// Reinjection topped the population back up to the full grid.
	if ep.NumLive() != 16*8 {
		t.Fatalf("final epoch live = %d, want %d", ep.NumLive(), 16*8)
	}
	// Mid-catastrophe epochs existed: the serving surface answered with
	// half the grid dead (epochs are immutable, so check the current one
	// only for structure and trust the publisher sequence for the rest).
	if _, _, _, ok := ep.Lookup([]float64{3.5, 3.5}); !ok {
		t.Fatal("lookup on recovered scenario epoch failed")
	}

	// atRound returning false stops at a round boundary, before events.
	sc2 := MustNew(Config{Seed: 5, W: 8, H: 4, Polystyrene: true, K: 4, SkipMetrics: true})
	defer sc2.Close()
	DrivePhasesFunc(sc2, Phases{FailAt: 2, ReinjectAt: 4, End: 10}, 10, func(round int) bool {
		return round < 2
	})
	if sc2.Engine.Round() != 2 {
		t.Fatalf("early stop left round %d, want 2", sc2.Engine.Round())
	}
	if sc2.Engine.NumLive() != 8*4 {
		t.Fatal("stop at round 2 should precede the FailAt event")
	}
}

func TestScenarioBaselineServeSource(t *testing.T) {
	sc := MustNew(Config{Seed: 3, W: 8, H: 4, Polystyrene: false, SkipMetrics: true})
	defer sc.Close()
	ep := serve.Capture(sc.ServeSource(), 4, 1)
	if ep.NumPoints() != 0 || ep.HolderEntries() != 0 {
		t.Fatalf("baseline epoch has data universe: %d points, %d holders",
			ep.NumPoints(), ep.HolderEntries())
	}
	if g, ok := ep.NumGuests(0); !ok || g != 0 {
		t.Fatalf("baseline guests = %d,%v", g, ok)
	}
	if _, _, _, ok := ep.Lookup([]float64{1, 1}); !ok {
		t.Fatal("baseline epoch lookup failed")
	}
}

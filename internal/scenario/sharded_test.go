package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"polystyrene/internal/sim"
)

// TestShardedScenarioDeterministic pins the sharded topology at the
// full-stack level: for each shard count the complete paper scenario —
// convergence, half-torus catastrophe, reinjection — runs to the end and
// two identical runs produce byte-identical per-round metric records and
// reliability. This is the scenario-level face of the sim package's
// TestSharded* suite and runs under -race in CI's determinism matrix.
func TestShardedScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack sharded identity run; exercised by CI's dedicated race step")
	}
	for _, shards := range []int{2, 4} {
		cfg := Config{Seed: 42, W: 20, H: 10, Polystyrene: true, Shards: shards}
		ref, refRel := paperRun(t, cfg)
		res, rel := paperRun(t, cfg)
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("shards=%d: two identical runs diverged", shards)
		}
		if rel != refRel {
			t.Fatalf("shards=%d: reliability %v then %v", shards, refRel, rel)
		}
	}
}

// TestShardedPrecedenceOverExchangeParallelism pins the scheduler
// selection contract documented on Config.Shards: when both sharding and
// exchange batching are requested, sharding wins, and the worker count
// has no effect on the trajectory.
func TestShardedPrecedenceOverExchangeParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack sharded identity run; exercised by CI's dedicated race step")
	}
	plain := Config{Seed: 7, W: 16, H: 8, Polystyrene: true, Shards: 2}
	both := plain
	both.ExchangeParallelism = 4
	refRes, refRel := paperRun(t, plain)
	res, rel := paperRun(t, both)
	if !reflect.DeepEqual(res, refRes) || rel != refRel {
		t.Fatal("ExchangeParallelism changed a sharded trajectory; sharding must take precedence")
	}
}

// TestShardedSnapshotDigest pins that the shard count is part of the
// trajectory identity: a snapshot taken under one shard count restores
// into the same count and is refused by any other — including the
// single-engine topology — because the boundary-mailbox schedule would
// silently differ from there on.
func TestShardedSnapshotDigest(t *testing.T) {
	cfg := Config{Seed: 31, W: 8, H: 4, Polystyrene: true, Shards: 2}
	sc := MustNew(cfg)
	defer sc.Close()
	sc.Run(6)
	var buf bytes.Buffer
	if err := sc.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	same := MustNew(cfg)
	defer same.Close()
	if err := same.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("same-count restore refused: %v", err)
	}

	for _, shards := range []int{0, 1, 4} {
		other := cfg
		other.Shards = shards
		target := MustNew(other)
		if err := target.Restore(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("2-shard snapshot restored into shards=%d", shards)
		}
		target.Close()
	}

	// Normalisation: 0 and 1 are the same single-engine identity.
	single := Config{Seed: 31, W: 8, H: 4, Polystyrene: true}
	s0 := MustNew(single)
	s0.Run(3)
	var sb bytes.Buffer
	if err := s0.SnapshotTo(&sb); err != nil {
		t.Fatal(err)
	}
	s0.Close()
	single.Shards = 1
	s1 := MustNew(single)
	defer s1.Close()
	if err := s1.Restore(bytes.NewReader(sb.Bytes())); err != nil {
		t.Fatalf("shards=0 snapshot must restore into shards=1: %v", err)
	}
}

// TestShardedRejectsUnevenTiling pins the configuration error path: a
// shard count that does not divide the grid width is refused at
// construction with the router's error, never silently rounded.
func TestShardedRejectsUnevenTiling(t *testing.T) {
	_, err := New(Config{Seed: 1, W: 20, H: 10, Polystyrene: true, Shards: 3})
	if err == nil {
		t.Fatal("3 shards over width 20 accepted")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("error does not mention sharding: %v", err)
	}
}

// TestShardedProviderWiring pins the topology-provider split at the
// scenario level: the default is the single-engine provider with no
// router and no engine shard map; Shards >= 2 selects the sharded
// provider whose router tiles the configured grid.
func TestShardedProviderWiring(t *testing.T) {
	single := MustNew(Config{Seed: 1, W: 16, H: 8, Polystyrene: true})
	defer single.Close()
	if p := single.Provider(); p.Name() != "single" || p.Router() != nil {
		t.Fatalf("default provider = %q/%v", p.Name(), p.Router())
	}
	if single.Engine.Sharding() != nil {
		t.Fatal("single topology installed a shard map")
	}

	sharded := MustNew(Config{Seed: 1, W: 16, H: 8, Polystyrene: true, Shards: 4})
	defer sharded.Close()
	p := sharded.Provider()
	if p.Name() != "sharded" || p.Shards() != 4 || p.Router() == nil {
		t.Fatalf("sharded provider = %q/%d/%v", p.Name(), p.Shards(), p.Router())
	}
	if w, h, step := p.Router().Grid(); w != 16 || h != 8 || step != 1 {
		t.Fatalf("router grid = %dx%d step %g", w, h, step)
	}
	m := sharded.Engine.Sharding()
	if m == nil || m.Shards() != 4 {
		t.Fatal("sharded topology did not install a 4-shard map on the engine")
	}
	// Every node routes to the shard of its home cell, in range.
	for id := 0; id < sharded.Engine.NumNodes(); id++ {
		if s := m.ShardOf(sim.NodeID(id)); s < 0 || s >= 4 {
			t.Fatalf("node %d -> shard %d out of range", id, s)
		}
	}
}

package scenario

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"polystyrene/internal/fd"
	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
	"polystyrene/internal/space"
)

// SnapshotKind is the snap envelope kind of scenario checkpoints; pass
// it as ckpt.Options.Kind when a checkpoint directory holds scenario
// snapshots.
const SnapshotKind = "scenario"

const scenarioKind = SnapshotKind

// configDigest is the structural identity of a scenario embedded in every
// snapshot: a snapshot may only be restored into a scenario wired from an
// equivalent configuration (seed and execution knobs excluded — the RNG
// state travels in the snapshot itself, and exchange parallelism is a
// throughput knob that batched trajectories are invariant to). The
// failure detector is part of the identity: a Delayed(3) trajectory is
// not a Perfect one, and resuming across that divide must fail loudly.
// The shard count is part of the identity too — unlike the worker
// count, it keys the trajectory (boundary traffic drains through the
// mailbox), so a 2-shard snapshot must not resume as a 4-shard run.
type configDigest struct {
	w, h           int
	step           float64
	polystyrene    bool
	overlay        string
	k              int
	split          int
	placement      int
	fullCopyBackup bool
	neighborK      int
	detector       string
	shards         int
}

// detectorIdentity names a detector configuration for the digest. The
// default string covers third-party detectors conservatively: two runs
// only match when they use the same concrete type.
func detectorIdentity(d fd.Detector) string {
	switch det := d.(type) {
	case nil:
		return "perfect"
	case fd.Perfect:
		return "perfect"
	case *fd.Delayed:
		return fmt.Sprintf("delayed(%d)", det.Delay)
	case *fd.Probabilistic:
		return fmt.Sprintf("probabilistic(%g)", det.P)
	default:
		return fmt.Sprintf("%T", d)
	}
}

func digestOf(cfg Config) configDigest {
	cfg = cfg.withDefaults()
	overlay := cfg.Overlay
	if overlay == "" {
		overlay = "tman"
	}
	return configDigest{
		w: cfg.W, h: cfg.H, step: cfg.Step,
		polystyrene: cfg.Polystyrene, overlay: overlay,
		k: cfg.K, split: int(cfg.Split), placement: int(cfg.Placement),
		fullCopyBackup: cfg.FullCopyBackup, neighborK: cfg.NeighborK,
		detector: detectorIdentity(cfg.Detector),
		shards:   normalizedShards(cfg.Shards),
	}
}

// normalizedShards folds the two spellings of "single engine" (0 and 1)
// into one digest value, since they wire the identical topology.
func normalizedShards(s int) int {
	if s <= 1 {
		return 1
	}
	return s
}

func (d configDigest) write(w *snap.Writer) {
	w.Int(d.w)
	w.Int(d.h)
	w.F64(d.step)
	w.Bool(d.polystyrene)
	w.String(d.overlay)
	w.Int(d.k)
	w.Int(d.split)
	w.Int(d.placement)
	w.Bool(d.fullCopyBackup)
	w.Int(d.neighborK)
	w.String(d.detector)
	w.Int(d.shards)
}

func readDigest(r *snap.Reader) configDigest {
	var d configDigest
	d.w = r.Int()
	d.h = r.Int()
	d.step = r.F64()
	d.polystyrene = r.Bool()
	d.overlay = r.String()
	d.k = r.Int()
	d.split = r.Int()
	d.placement = r.Int()
	d.fullCopyBackup = r.Bool()
	d.neighborK = r.Int()
	d.detector = r.String()
	d.shards = r.Int()
	return d
}

// SnapshotTo writes a checksummed checkpoint of the whole scenario —
// configuration digest, reinjection positions, the metric series recorded
// so far and the complete engine state (RNG, liveness, meter, every
// protocol layer) — to w. Restoring it into a freshly wired scenario of
// the same configuration and running n more rounds is byte-identical to
// never having checkpointed.
//
// (The name avoids Scenario.Snapshot, which predates checkpointing and
// captures node positions for rendering.)
func (sc *Scenario) SnapshotTo(w io.Writer) error {
	var sw snap.Writer
	digestOf(sc.Cfg).write(&sw)

	ids := make([]sim.NodeID, 0, len(sc.fixedPos))
	for id := range sc.fixedPos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sw.Len(len(ids))
	for _, id := range ids {
		sw.Int(int(id))
		p := sc.fixedPos[id]
		sw.Len(len(p))
		for _, c := range p {
			sw.F64(c)
		}
	}

	writeFloats(&sw, sc.result.Homogeneity)
	writeFloats(&sw, sc.result.Proximity)
	writeFloats(&sw, sc.result.DataPoints)
	writeFloats(&sw, sc.result.MsgCost)
	sw.Len(len(sc.result.LiveNodes))
	for _, v := range sc.result.LiveNodes {
		sw.Int(v)
	}

	if err := sc.Engine.SnapshotState(&sw); err != nil {
		return err
	}
	return snap.WriteEnvelope(w, scenarioKind, sw.Bytes())
}

// Restore loads a checkpoint written by SnapshotTo into this scenario,
// which must have been wired from an equivalent configuration (New has
// already run; everything its init paths produced is overwritten). The
// file is checksum- and version-verified, and the configuration digest
// checked, before any state is touched — a corrupted, truncated or
// mismatched snapshot never yields a partial restore.
func (sc *Scenario) Restore(rd io.Reader) error {
	body, err := snap.ReadEnvelope(rd, scenarioKind)
	if err != nil {
		return err
	}
	r := snap.NewReader(body)
	got := readDigest(r)

	nFixed := r.Len(16)
	fixedIDs := make([]sim.NodeID, nFixed)
	fixedPts := make([]space.Point, nFixed)
	for i := 0; i < nFixed; i++ {
		fixedIDs[i] = sim.NodeID(r.Int())
		n := r.Len(8)
		p := make(space.Point, n)
		for j := range p {
			p[j] = r.F64()
		}
		fixedPts[i] = p
	}

	homog := readFloats(r)
	prox := readFloats(r)
	dataPts := readFloats(r)
	msgCost := readFloats(r)
	nLive := r.Len(8)
	liveNodes := make([]int, nLive)
	for i := range liveNodes {
		liveNodes[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if want := digestOf(sc.Cfg); got != want {
		return fmt.Errorf("scenario: snapshot configuration %+v does not match this scenario %+v", got, want)
	}

	if err := sc.Engine.RestoreState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("scenario: %d trailing bytes in snapshot", r.Remaining())
	}

	clear(sc.fixedPos)
	for i, id := range fixedIDs {
		sc.fixedPos[id] = fixedPts[i]
	}
	sc.result.Homogeneity = homog
	sc.result.Proximity = prox
	sc.result.DataPoints = dataPts
	sc.result.MsgCost = msgCost
	sc.result.LiveNodes = liveNodes
	return nil
}

func writeFloats(w *snap.Writer, s []float64) {
	w.Len(len(s))
	for _, v := range s {
		w.F64(v)
	}
}

func readFloats(r *snap.Reader) []float64 {
	n := r.Len(8)
	s := make([]float64, n)
	for i := range s {
		s[i] = r.F64()
	}
	return s
}

// ConvergedSnapshot wires cfg, runs convergeRounds quiet rounds and
// returns the serialized checkpoint — the "pay convergence once" half of
// a warm-started sweep. Metrics recording is disabled for the converge
// run; warm-started cells measure from their own restored state. A
// pooled cfg.Engine is honoured and left open for its owner.
func ConvergedSnapshot(cfg Config, convergeRounds int) ([]byte, error) {
	cfg.SkipMetrics = true
	sc, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	sc.Run(convergeRounds)
	var buf bytes.Buffer
	if err := sc.SnapshotTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restoreWarm wires cfg, restores the shared converged snapshot into it
// and forks the cell's own trajectory by reseeding the engine generator
// from cfg.Seed — every warm cell continues from the same topology but
// diverges randomly, mirroring how cold cells differ only by seed.
func restoreWarm(cfg Config, snapshot []byte) (*Scenario, error) {
	sc, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sc.Restore(bytes.NewReader(snapshot)); err != nil {
		if cfg.Engine == nil {
			sc.Close()
		}
		return nil, err
	}
	sc.Engine.Rand().Reseed(cfg.Seed)
	return sc, nil
}

// MeasureReshapingFrom is MeasureReshaping with the convergence phase
// replaced by restoring a ConvergedSnapshot of an equivalent
// configuration.
func MeasureReshapingFrom(cfg Config, snapshot []byte, maxRounds int) (ReshapingOutcome, error) {
	cfg.SkipMetrics = true
	sc, err := restoreWarm(cfg, snapshot)
	if err != nil {
		return ReshapingOutcome{}, err
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	return measureReshapingTail(sc, maxRounds), nil
}

// RunChurnFrom is RunChurn with the convergence phase replaced by
// restoring a ConvergedSnapshot of an equivalent configuration.
func RunChurnFrom(cfg Config, snapshot []byte, churn ChurnConfig, settleRounds int) (ChurnOutcome, error) {
	if churn.Rate < 0 || churn.Rate >= 1 {
		return ChurnOutcome{}, fmt.Errorf("scenario: churn rate %v out of [0,1)", churn.Rate)
	}
	cfg.SkipMetrics = true
	sc, err := restoreWarm(cfg, snapshot)
	if err != nil {
		return ChurnOutcome{}, err
	}
	if cfg.Engine == nil {
		defer sc.Close()
	}
	return runChurnTail(sc, churn, settleRounds), nil
}

package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"polystyrene/internal/fd"
	"polystyrene/internal/sim"
)

// snapPhases is the compressed paper schedule the snapshot tests run
// (mirrors paperRun): fail at 8, reinject at 20, end at 32.
var snapPhases = Phases{FailAt: 8, ReinjectAt: 20, End: 32}

// interruptedRun replicates the snapPhases schedule but checkpoints at
// stopAt rounds, restores the checkpoint into a freshly wired scenario
// (or one wired over restoreInto, e.g. a pooled engine) and finishes the
// schedule there. The returned record must be byte-identical to an
// uninterrupted run's.
func interruptedRun(t *testing.T, cfg Config, stopAt int, restoreInto *sim.Engine) (*Result, float64) {
	t.Helper()
	run := func(sc *Scenario, from, to int) {
		for r := from; r < to; r++ {
			if r == snapPhases.FailAt {
				sc.FailRightHalf()
			}
			if r == snapPhases.ReinjectAt {
				sc.Reinject(sc.Cfg.W*sc.Cfg.H - sc.Engine.NumLive())
			}
			sc.Run(1)
		}
	}
	first := MustNew(cfg)
	run(first, 0, stopAt)
	var buf bytes.Buffer
	if err := first.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	first.Close()

	resumedCfg := cfg
	resumedCfg.Engine = restoreInto
	resumed := MustNew(resumedCfg)
	if restoreInto == nil {
		defer resumed.Close()
	}
	if err := resumed.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := resumed.Engine.Round(); got != stopAt {
		t.Fatalf("restored round = %d, want %d", got, stopAt)
	}
	run(resumed, stopAt, snapPhases.End)
	return resumed.Result(), resumed.Reliability()
}

// TestSnapshotRestoreByteIdentical is the tentpole's keystone guarantee:
// snapshot at round r, restore into a fresh engine, run the rest of the
// schedule — every per-round metric series and the final reliability are
// byte-identical to the uninterrupted run, for the sequential engine and
// batched engines at w ∈ {2, 4}, across checkpoint rounds in every phase,
// for both stacks, both overlays and a stateful failure detector.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"poly/w0", Config{Seed: 11, W: 16, H: 8, Polystyrene: true}},
		{"poly/w2", Config{Seed: 11, W: 16, H: 8, Polystyrene: true, ExchangeParallelism: 2}},
		{"poly/w4", Config{Seed: 11, W: 16, H: 8, Polystyrene: true, ExchangeParallelism: 4}},
		{"baseline/w0", Config{Seed: 13, W: 16, H: 8}},
		{"vicinity/w2", Config{Seed: 17, W: 16, H: 8, Polystyrene: true, Overlay: "vicinity", ExchangeParallelism: 2}},
		{"delayedfd/w2", Config{Seed: 19, W: 16, H: 8, Polystyrene: true, Detector: fd.NewDelayed(2), ExchangeParallelism: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			if tc.name == "delayedfd/w2" {
				// Each run needs its own detector instance: it is stateful.
				cfg.Detector = fd.NewDelayed(2)
			}
			refRes, refRel := paperRun(t, cfg)
			for _, stopAt := range []int{5, 8, 14, 20, 27} {
				if tc.name == "delayedfd/w2" {
					cfg.Detector = fd.NewDelayed(2)
				}
				res, rel := interruptedRun(t, cfg, stopAt, nil)
				if !reflect.DeepEqual(res, refRes) {
					t.Errorf("stopAt=%d: resumed metric record diverged from uninterrupted run", stopAt)
				}
				if rel != refRel {
					t.Errorf("stopAt=%d: resumed reliability %v, want %v", stopAt, rel, refRel)
				}
			}
		})
	}
}

// TestSnapshotRestoreIntoPooledReset pins restore composing with engine
// pooling: restoring a checkpoint into an engine that already ran a
// different experiment (and was recycled via Config.Engine → Reset)
// continues byte-identically to restoring into a fresh engine.
func TestSnapshotRestoreIntoPooledReset(t *testing.T) {
	for _, workers := range []int{0, 2} {
		cfg := Config{Seed: 23, W: 16, H: 8, Polystyrene: true, ExchangeParallelism: workers}
		refRes, refRel := paperRun(t, cfg)

		eng := sim.New(0)
		defer eng.Close()
		dirty := cfg
		dirty.Seed = 99
		dirty.ExchangeParallelism = 3 - workers
		dirty.Engine = eng
		paperRun(t, dirty)

		res, rel := interruptedRun(t, cfg, 14, eng)
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d: restore-into-Reset record diverged from fresh run", workers)
		}
		if rel != refRel {
			t.Errorf("workers=%d: restore-into-Reset reliability %v, want %v", workers, rel, refRel)
		}
	}
}

// TestSnapshotRejectsCorruption pins the no-partial-restore guarantee:
// corrupted, truncated and wrong-kind snapshots are all rejected, and a
// failed Restore leaves the target scenario's state untouched.
func TestSnapshotRejectsCorruption(t *testing.T) {
	cfg := Config{Seed: 31, W: 8, H: 4, Polystyrene: true}
	sc := MustNew(cfg)
	defer sc.Close()
	sc.Run(6)
	var buf bytes.Buffer
	if err := sc.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	target := MustNew(cfg)
	defer target.Close()
	target.Run(3)
	var before bytes.Buffer
	if err := target.SnapshotTo(&before); err != nil {
		t.Fatal(err)
	}

	tryRestore := func(name string, data []byte) {
		t.Helper()
		if err := target.Restore(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: corrupted snapshot accepted", name)
		}
		var after bytes.Buffer
		if err := target.SnapshotTo(&after); err != nil {
			t.Fatalf("%s: re-snapshot: %v", name, err)
		}
		if !bytes.Equal(after.Bytes(), before.Bytes()) {
			t.Fatalf("%s: failed restore mutated the target scenario", name)
		}
	}

	// Single-byte corruption at several positions, including header and
	// trailing checksum.
	for _, pos := range []int{0, 7, 12, len(good) / 2, len(good) - 9, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x20
		tryRestore(fmt.Sprintf("flip@%d", pos), bad)
	}
	for _, n := range []int{0, 1, 15, len(good) / 3, len(good) - 1} {
		tryRestore(fmt.Sprintf("truncate@%d", n), good[:n])
	}

	// A mismatched configuration must be rejected by the digest gate.
	otherCfg := cfg
	otherCfg.K = cfg.K + 3
	other := MustNew(otherCfg)
	defer other.Close()
	if err := other.Restore(bytes.NewReader(good)); err == nil {
		t.Fatal("snapshot restored into a different configuration")
	}

	// The pristine snapshot must still restore cleanly after all that.
	if err := target.Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestWarmStartedSweeps pins the warm-start harness path: sweeps that
// restore one converged checkpoint into every cell produce deterministic
// results (same output when run twice), identical across engine pooling,
// and agree with manually chaining ConvergedSnapshot + the *From runners.
func TestWarmStartedSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep; exercised by CI's dedicated race step")
	}
	base := Config{Seed: 7, W: 16, H: 8}
	opts := RunOpts{
		Reps: 2, ConvergeRounds: 8, MaxRounds: 30,
		Parallelism: 2, ExchangeParallelism: 2, WarmStart: true,
	}
	sizes := []GridSize{{16, 8}, {20, 10}}
	variants := map[string]func(Config) Config{
		"K2": func(c Config) Config { c.K = 2; return c },
		"K4": func(c Config) Config { c.K = 4; return c },
	}
	ref, err := SizeSweep(base, sizes, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SizeSweep(base, sizes, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, ref) {
		t.Error("warm-started SizeSweep is not deterministic")
	}
	pooled := opts
	pooled.PoolEngines = true
	pooledOut, err := SizeSweep(base, sizes, variants, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooledOut, ref) {
		t.Error("pooled warm-started SizeSweep diverged from the unpooled one")
	}

	churnOpts := ChurnSweepOpts{
		ChurnRounds: 6, ConvergeRounds: 8, SettleRounds: 6,
		Parallelism: 2, ExchangeParallelism: 2, WarmStart: true,
	}
	rates := []float64{0.01, 0.02}
	churnRef, err := ChurnSweep(base, rates, churnOpts)
	if err != nil {
		t.Fatal(err)
	}
	churnAgain, err := ChurnSweep(base, rates, churnOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(churnAgain, churnRef) {
		t.Error("warm-started ChurnSweep is not deterministic")
	}

	// Supplying the equivalent snapshot externally (the polychurn -resume
	// path) must reproduce the WarmStart-computed outcomes.
	warmCfg := base
	warmCfg.Polystyrene = true
	_, exPar := RunOpts{Parallelism: churnOpts.Parallelism, ExchangeParallelism: churnOpts.ExchangeParallelism}.compose(len(rates), warmCfg.EstimatedFootprintBytes())
	warmCfg.ExchangeParallelism = exPar
	warmCfg.Seed = sweepSeed(base.Seed, "churn-warm")
	snapBytes, err := ConvergedSnapshot(warmCfg, churnOpts.ConvergeRounds)
	if err != nil {
		t.Fatal(err)
	}
	supplied := churnOpts
	supplied.WarmStart = false
	supplied.WarmSnapshot = snapBytes
	churnSupplied, err := ChurnSweep(base, rates, supplied)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(churnSupplied, churnRef) {
		t.Error("externally supplied warm snapshot diverged from WarmStart")
	}
}

// FuzzSnapshotRoundTrip drives the snapshot codec across seeds, grid
// sizes, worker counts and mid-run churn: a snapshot restored into a
// fresh scenario must re-serialize to the identical bytes, and both
// scenarios must continue to identical states.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint64(42), uint8(3), uint8(2), uint8(2), true)
	f.Add(uint64(7), uint8(1), uint8(5), uint8(4), false)
	f.Add(uint64(99), uint8(6), uint8(1), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed uint64, dw, dh, workers uint8, churn bool) {
		cfg := Config{
			Seed:                seed,
			W:                   6 + int(dw%6),
			H:                   3 + int(dh%4),
			Polystyrene:         true,
			SkipMetrics:         true,
			ExchangeParallelism: int(workers % 5),
		}
		sc := MustNew(cfg)
		defer sc.Close()
		sc.Run(4)
		if churn {
			sc.Engine.Kill(sc.Engine.RandomLive())
			sc.Engine.Kill(sc.Engine.RandomLive())
			sc.Run(2)
			sc.Reinject(1)
			sc.Run(1)
		}
		var a bytes.Buffer
		if err := sc.SnapshotTo(&a); err != nil {
			t.Fatal(err)
		}
		restored := MustNew(cfg)
		defer restored.Close()
		if err := restored.Restore(bytes.NewReader(a.Bytes())); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := restored.SnapshotTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("restore → re-snapshot is not byte-identical")
		}
		// Both continue identically.
		sc.Run(3)
		restored.Run(3)
		var a2, b2 bytes.Buffer
		if err := sc.SnapshotTo(&a2); err != nil {
			t.Fatal(err)
		}
		if err := restored.SnapshotTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a2.Bytes(), b2.Bytes()) {
			t.Fatal("original and restored scenarios diverged after resume")
		}
	})
}

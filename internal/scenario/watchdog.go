package scenario

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects a stalled soak: the round-driving goroutine calls
// Tick once per round, and if no tick arrives for the stall duration
// the onStall callback fires exactly once with the last ticked round.
//
// The driver publishes progress only through Tick's atomics — the
// watchdog goroutine never reads engine state, so it is race-free at
// any exchange-parallelism level.
type Watchdog struct {
	stall   time.Duration
	onStall func(lastRound int)

	lastRound atomic.Int64
	ticks     atomic.Int64
	fired     atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewWatchdog starts a watchdog that fires onStall(lastRound) after
// stall elapses with no Tick. Stop it when the run completes.
func NewWatchdog(stall time.Duration, onStall func(lastRound int)) *Watchdog {
	w := &Watchdog{
		stall:   stall,
		onStall: onStall,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.lastRound.Store(-1)
	go w.loop()
	return w
}

// Tick reports that round is being worked on. Call it once per round
// from the driving goroutine.
func (w *Watchdog) Tick(round int) {
	w.lastRound.Store(int64(round))
	w.ticks.Add(1)
}

// Fired reports whether the stall callback has run.
func (w *Watchdog) Fired() bool { return w.fired.Load() }

// Stop disarms the watchdog and waits for its goroutine to exit. After
// Stop returns, onStall will never fire (unless it already has).
// Idempotent.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	poll := w.stall / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	seen := w.ticks.Load()
	lastProgress := time.Now()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if cur := w.ticks.Load(); cur != seen {
				seen = cur
				lastProgress = time.Now()
				continue
			}
			if time.Since(lastProgress) >= w.stall {
				w.fired.Store(true)
				w.onStall(int(w.lastRound.Load()))
				return
			}
		}
	}
}

// StallReport writes the standard stall diagnosis: the stuck round, the
// most recent durable checkpoint (empty string for none) and a full
// all-goroutine stack dump — everything needed to time-travel into the
// stall with ReplayFromCheckpoint.
func StallReport(w io.Writer, lastRound int, lastCheckpoint string) {
	fmt.Fprintf(w, "watchdog: no round progress; last round worked on: %d\n", lastRound)
	if lastCheckpoint != "" {
		fmt.Fprintf(w, "watchdog: last durable checkpoint: %s\n", lastCheckpoint)
	} else {
		fmt.Fprintf(w, "watchdog: no durable checkpoint exists\n")
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	w.Write(buf[:n])
}

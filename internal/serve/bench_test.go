package serve_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"polystyrene/internal/scenario"
	"polystyrene/internal/serve"
	"polystyrene/internal/serve/loadgen"
	"polystyrene/internal/sim"
	"polystyrene/internal/xrand"
)

// BenchmarkEpochPublish prices the copy-on-publish step the round loop
// pays once per round: positions, neighbour rows, guest index and the
// live-only holders table for an 800-node converged overlay.
func BenchmarkEpochPublish(b *testing.B) {
	sc := scenario.MustNew(scenario.Config{
		Seed: 7, W: 40, H: 20, Polystyrene: true, K: 4, SkipMetrics: true,
	})
	defer sc.Close()
	sc.Run(25)
	src := sc.ServeSource()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := serve.Capture(src, serve.DefaultFanout, uint64(i+1))
		if ep.NumLive() == 0 {
			b.Fatal("empty epoch")
		}
	}
}

// BenchmarkServeLookup pins the allocation-free read path: greedy
// lookup against a published epoch must stay at 0 allocs/op — the
// guarantee that lets thousands of concurrent readers run without
// feeding the garbage collector.
func BenchmarkServeLookup(b *testing.B) {
	sc := scenario.MustNew(scenario.Config{
		Seed: 7, W: 40, H: 20, Polystyrene: true, K: 4, SkipMetrics: true,
	})
	defer sc.Close()
	sc.Run(25)
	ep := serve.Capture(sc.ServeSource(), serve.DefaultFanout, 1)

	// Pre-generate queries so the timed loop touches only the epoch.
	rng := xrand.New(99)
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 40, rng.Float64() * 20}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := ep.Lookup(queries[i%len(queries)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkServePhases measures what the service sustains end to end:
// a closed-loop load generator querying over real loopback HTTP while
// the round loop drives the overlay through the paper's regimes. Each
// sub-benchmark reports sustained qps and p50/p99 latency via
// ReportMetric, which bench.sh records into the tracked BENCH_*.json.
//
//   - calm: converged overlay, no failures.
//   - catastrophe_recovery: half the grid crashes mid-window, then the
//     lost nodes are reinjected — the serving surface answers
//     throughout from the last published epoch.
//   - churn: 1% of live nodes crash every round and are replaced.
func BenchmarkServePhases(b *testing.B) {
	for _, tc := range []struct {
		name        string
		catastrophe bool
		churn       bool
	}{
		{name: "calm"},
		{name: "catastrophe_recovery", catastrophe: true},
		{name: "churn", churn: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchServePhase(b, tc.catastrophe, tc.churn)
		})
	}
}

func benchServePhase(b *testing.B, catastrophe, churn bool) {
	const window = 400 * time.Millisecond
	var total loadgen.Result
	for i := 0; i < b.N; i++ {
		sc := scenario.MustNew(scenario.Config{
			Seed: uint64(11 + i), W: 24, H: 12, Polystyrene: true, K: 4, SkipMetrics: true,
		})
		pub := sc.ServePublisher(0)
		srv := httptest.NewServer(serve.NewFrontend(pub))
		sc.Run(15) // converge before the measured window

		// The driver goroutine owns the engine for the whole window;
		// the load generator only ever touches published epochs.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			grid := sc.Cfg.W * sc.Cfg.H
			round := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if catastrophe {
					if round == 3 {
						sc.FailRightHalf()
					}
					if round == 12 {
						sc.Reinject(grid - sc.Engine.NumLive())
					}
				}
				if churn {
					kills := sc.Engine.NumLive() / 100
					if kills < 1 {
						kills = 1
					}
					for k := 0; k < kills; k++ {
						if id := sc.Engine.RandomLive(); id != sim.None {
							sc.Engine.Kill(id)
						}
					}
					sc.Reinject(grid - sc.Engine.NumLive())
				}
				sc.Run(1)
				round++
				// Pace rounds like a deployed service (polyserve's
				// -interval); an unpaced loop would just monopolise the
				// CPU and measure scheduler starvation, not serving.
				time.Sleep(5 * time.Millisecond)
			}
		}()

		// Keep one idle connection per worker: without it the default
		// transport churns sockets and delayed ACKs dominate latency.
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
		res := loadgen.Run(&loadgen.HTTPTarget{Base: srv.URL, Client: client, Pub: pub}, loadgen.Options{
			Seed:     uint64(17 + i),
			Workers:  4,
			Duration: window,
		})
		close(stop)
		wg.Wait()
		client.CloseIdleConnections()
		srv.Close()
		pub.Close()
		sc.Close()
		if res.Errors > 0 {
			b.Fatalf("load generator saw %d errors", res.Errors)
		}
		total.Ops += res.Ops
		total.Misses += res.Misses
		total.Elapsed += res.Elapsed
		total.Lookups.Add(&res.Lookups)
		total.Neighbors.Add(&res.Neighbors)
	}
	if total.Elapsed > 0 {
		b.ReportMetric(float64(total.Ops)/total.Elapsed.Seconds(), "qps")
	}
	if total.Lookups.Count() > 0 {
		b.ReportMetric(float64(total.Lookups.Quantile(0.50))/1e3, "p50_us")
		b.ReportMetric(float64(total.Lookups.Quantile(0.99))/1e3, "p99_us")
	}
}

package serve

import (
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// DefaultFanout is the per-node neighbour count captured into an epoch's
// router view when the caller does not choose one. Greedy descent needs a
// wider fanout than the metric neighbourhood (side-steps out of shallow
// local minima on a recovering, half-density shape), so this is 2x the
// paper's K=4 neighbourhood.
const DefaultFanout = 8

// lookupProbes is how many evenly strided live nodes a Lookup samples to
// seed its greedy descent, mirroring the facade's Lookup.
const lookupProbes = 8

// lookupMaxHops bounds a descent; greedy routing on an n-node torus needs
// O(sqrt(n)) hops, so this is generous for served scales, and because
// every hop strictly decreases the distance the bound only triggers on a
// pathological router view.
const lookupMaxHops = 256

// Epoch is one immutable published read snapshot of a running system:
// the live population's positions, a compact router view (each live
// node's K closest overlay neighbours, stored as slot indexes so queries
// never translate IDs), the live-only holders index (interned data point
// -> hosting nodes) and per-node guest/ghost counts. Epochs are built by
// Capture on the round-driving goroutine and swapped into a Publisher;
// after publication nothing mutates them, so any number of readers query
// one concurrently without synchronisation. Every query method is
// allocation-free unless it appends to a caller-owned buffer.
type Epoch struct {
	// Seq is the publication sequence number (1-based, monotonic per
	// Publisher) and Round the engine round the snapshot was captured
	// after. Responses carry both, making staleness observable.
	Seq   uint64
	Round int
	// K is the per-node neighbour count captured into the router view.
	K int

	spc space.Space
	dim int
	// ids lists the live nodes in ascending NodeID order; slot[id] is
	// id's index into ids (and every per-node array), -1 when dead or
	// unknown. pos is the flattened position matrix (len(ids) x dim).
	ids  []sim.NodeID
	slot []int32
	pos  []float64
	// nbr is the flattened router view: row s holds the slots of node
	// ids[s]'s up-to-K closest live neighbours, -1 padded.
	nbr []int32
	// guests/ghosts count each slot's primary and replica points.
	guests []int32
	ghosts []int32
	// guestPID[guestOff[s]:guestOff[s+1]] are slot s's interned guest
	// point IDs; holdSlot[holdOff[pid]:holdOff[pid+1]] are the slots
	// currently hosting point pid (rebuilt from live guest sets at
	// capture, so the epoch's holders index never names a dead node).
	guestOff []int32
	guestPID []space.PointID
	holdOff  []int32
	holdSlot []int32
}

// Capture copies a new immutable epoch out of src, recording it as
// sequence number seq. k chooses the router-view fanout (<= 0 means
// DefaultFanout). It runs on the round-driving goroutine; cost is
// O(live x (dim + k + guests/node)) with a handful of exact-size
// allocations, measured by BenchmarkEpochPublish.
func Capture(src Source, k int, seq uint64) *Epoch {
	if k <= 0 {
		k = DefaultFanout
	}
	spc := src.Space()
	ep := &Epoch{
		Seq:   seq,
		Round: src.Round(),
		K:     k,
		spc:   spc,
		dim:   spc.Dim(),
	}
	ep.ids = src.AppendLive(make([]sim.NodeID, 0, 64))
	n := len(ep.ids)

	ep.slot = make([]int32, src.NumNodes())
	for i := range ep.slot {
		ep.slot[i] = -1
	}
	for s, id := range ep.ids {
		ep.slot[id] = int32(s)
	}

	ep.pos = make([]float64, n*ep.dim)
	ep.guests = make([]int32, n)
	ep.ghosts = make([]int32, n)
	ep.nbr = make([]int32, n*k)
	for i := range ep.nbr {
		ep.nbr[i] = -1
	}
	guestTotal := 0
	// row/written carry the per-node visitor state; the closure is
	// hoisted out of the loop so capture performs no per-node closure
	// allocation.
	var row []int32
	written := 0
	visit := func(nb sim.NodeID) bool {
		// The topology's views may still name crashed peers; the router
		// view keeps live ones only, so descent never parks on a corpse.
		if s := ep.slot[nb]; s >= 0 {
			row[written] = s
			written++
		}
		return true
	}
	for s, id := range ep.ids {
		copy(ep.pos[s*ep.dim:(s+1)*ep.dim], src.Position(id))
		row = ep.nbr[s*k : (s+1)*k]
		written = 0
		src.EachNeighbor(id, k, visit)
		g := src.NumGuests(id)
		ep.guests[s] = int32(g)
		ep.ghosts[s] = int32(src.NumGhosts(id))
		guestTotal += g
	}

	// Guest point IDs per slot, then the inverse (holders) as a
	// two-pass counting sort: count holders per point, prefix-sum into
	// offsets, fill. Rebuilding from live guest sets keeps the epoch's
	// holders index free of crashed nodes by construction.
	np := src.NumPoints()
	ep.guestOff = make([]int32, n+1)
	ep.guestPID = make([]space.PointID, 0, guestTotal)
	ep.holdOff = make([]int32, np+1)
	appendPID := func(pid space.PointID) {
		ep.guestPID = append(ep.guestPID, pid)
		if int(pid) < np {
			ep.holdOff[pid+1]++
		}
	}
	for s, id := range ep.ids {
		src.EachGuestID(id, appendPID)
		ep.guestOff[s+1] = int32(len(ep.guestPID))
	}
	for i := 1; i <= np; i++ {
		ep.holdOff[i] += ep.holdOff[i-1]
	}
	ep.holdSlot = make([]int32, len(ep.guestPID))
	if np > 0 {
		cursor := make([]int32, np)
		copy(cursor, ep.holdOff[:np])
		for s := range ep.ids {
			for _, pid := range ep.guestPID[ep.guestOff[s]:ep.guestOff[s+1]] {
				if int(pid) < np {
					ep.holdSlot[cursor[pid]] = int32(s)
					cursor[pid]++
				}
			}
		}
	}
	return ep
}

// NumLive returns how many nodes are live in this epoch.
func (ep *Epoch) NumLive() int { return len(ep.ids) }

// Dim returns the dimensionality of the epoch's data space.
func (ep *Epoch) Dim() int { return ep.dim }

// NumPoints returns the size of the interned data-point universe the
// holders index covers (0 for baseline overlays without a data layer).
func (ep *Epoch) NumPoints() int { return len(ep.holdOff) - 1 }

// HolderEntries returns the total number of (point, holder) pairs.
func (ep *Epoch) HolderEntries() int { return len(ep.holdSlot) }

// Contains reports whether id was live when the epoch was captured.
func (ep *Epoch) Contains(id sim.NodeID) bool {
	return id >= 0 && int(id) < len(ep.slot) && ep.slot[id] >= 0
}

// NodeAt returns the i-th live node in ascending ID order,
// 0 <= i < NumLive(). Query generators use it to pick valid targets.
func (ep *Epoch) NodeAt(i int) sim.NodeID { return ep.ids[i] }

// Position returns a live node's position as a read-only view into the
// epoch's backing array (callers must not mutate it), and false for a
// node that was dead or unknown at capture.
func (ep *Epoch) Position(id sim.NodeID) (space.Point, bool) {
	if !ep.Contains(id) {
		return nil, false
	}
	s := int(ep.slot[id])
	return space.Point(ep.pos[s*ep.dim : (s+1)*ep.dim]), true
}

// NumGuests returns how many primary data points a live node hosted at
// capture, and false for a dead or unknown node.
func (ep *Epoch) NumGuests(id sim.NodeID) (int, bool) {
	if !ep.Contains(id) {
		return 0, false
	}
	return int(ep.guests[ep.slot[id]]), true
}

// NumGhosts returns how many replica points a live node stored at
// capture, and false for a dead or unknown node.
func (ep *Epoch) NumGhosts(id sim.NodeID) (int, bool) {
	if !ep.Contains(id) {
		return 0, false
	}
	return int(ep.ghosts[ep.slot[id]]), true
}

// AppendNeighbors appends up to k of a live node's captured closest
// neighbours (increasing distance) to dst and returns the extended
// slice; ok is false for a dead or unknown node. k is capped at the
// epoch's captured fanout K.
func (ep *Epoch) AppendNeighbors(dst []sim.NodeID, id sim.NodeID, k int) (_ []sim.NodeID, ok bool) {
	if !ep.Contains(id) {
		return dst, false
	}
	if k > ep.K {
		k = ep.K
	}
	s := int(ep.slot[id])
	for _, ns := range ep.nbr[s*ep.K : s*ep.K+k] {
		if ns < 0 {
			break
		}
		dst = append(dst, ep.ids[ns])
	}
	return dst, true
}

// AppendGuestIDs appends a live node's interned guest point IDs to dst;
// ok is false for a dead or unknown node.
func (ep *Epoch) AppendGuestIDs(dst []space.PointID, id sim.NodeID) (_ []space.PointID, ok bool) {
	if !ep.Contains(id) {
		return dst, false
	}
	s := int(ep.slot[id])
	return append(dst, ep.guestPID[ep.guestOff[s]:ep.guestOff[s+1]]...), true
}

// AppendHolders appends the nodes that hosted interned point pid at
// capture to dst. Unknown point IDs (out of the captured universe)
// append nothing. An orphaned point — one the catastrophe left without
// any live holder — also appends nothing; that is the observable gap
// recovery closes round by round.
func (ep *Epoch) AppendHolders(dst []sim.NodeID, pid space.PointID) []sim.NodeID {
	if int(pid) >= ep.NumPoints() {
		return dst
	}
	for _, s := range ep.holdSlot[ep.holdOff[pid]:ep.holdOff[pid+1]] {
		dst = append(dst, ep.ids[s])
	}
	return dst
}

// Lookup returns the live node whose position is (locally) closest to
// the query point, its distance, and the number of greedy hops taken —
// the serving form of the facade's Lookup, executed entirely against the
// epoch's immutable arrays. The closest of a few evenly strided live
// probes seeds a greedy descent over the captured router view; on a
// converged shape the local minimum it ends at is the global nearest
// node. It returns (None, 0, 0, false) when the epoch holds no live node
// or the query's dimension does not match the space — the consistent
// empty-set sentinel, never a panic, because served queries are
// untrusted input. Lookup performs no allocation (pinned by
// TestEpochLookupAllocFree and BenchmarkServeLookup).
func (ep *Epoch) Lookup(q []float64) (id sim.NodeID, dist float64, hops int, ok bool) {
	n := len(ep.ids)
	if n == 0 || len(q) != ep.dim {
		return sim.None, 0, 0, false
	}
	qp := space.Point(q)
	stride := n / lookupProbes
	if stride == 0 {
		stride = 1
	}
	cur := 0
	curD := ep.spc.Distance(qp, ep.posAt(0))
	for s := stride; s < n; s += stride {
		if d := ep.spc.Distance(qp, ep.posAt(s)); d < curD {
			cur, curD = s, d
		}
	}
	for hops = 0; hops < lookupMaxHops; hops++ {
		next := -1
		nextD := curD
		for _, ns := range ep.nbr[cur*ep.K : (cur+1)*ep.K] {
			if ns < 0 {
				break
			}
			if d := ep.spc.Distance(qp, ep.posAt(int(ns))); d < nextD {
				next, nextD = int(ns), d
			}
		}
		if next < 0 {
			// Local minimum: no captured neighbour improves — delivery.
			break
		}
		cur, curD = next, nextD
	}
	return ep.ids[cur], curD, hops, true
}

// posAt returns slot s's position as a view into the flat matrix.
func (ep *Epoch) posAt(s int) space.Point {
	return space.Point(ep.pos[s*ep.dim : (s+1)*ep.dim])
}

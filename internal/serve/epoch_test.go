package serve

import (
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// fakeSource is a hand-rolled Source over a 1-D Euclidean line: node i
// (when live) sits at position float64(i), neighbours are the nearest
// live nodes by index distance, and guest sets are assigned directly.
type fakeSource struct {
	spc    space.Space
	round  int
	n      int
	live   []bool
	guests map[sim.NodeID][]space.PointID
	ghosts map[sim.NodeID]int
	np     int
	pos    []float64 // scratch reused across Position calls
}

func newFakeSource(n int) *fakeSource {
	fs := &fakeSource{
		spc:    space.NewEuclidean(1),
		n:      n,
		live:   make([]bool, n),
		guests: map[sim.NodeID][]space.PointID{},
		ghosts: map[sim.NodeID]int{},
		pos:    make([]float64, 1),
	}
	for i := range fs.live {
		fs.live[i] = true
	}
	return fs
}

func (fs *fakeSource) Space() space.Space { return fs.spc }
func (fs *fakeSource) Round() int         { return fs.round }
func (fs *fakeSource) NumNodes() int      { return fs.n }

func (fs *fakeSource) AppendLive(dst []sim.NodeID) []sim.NodeID {
	for i, ok := range fs.live {
		if ok {
			dst = append(dst, sim.NodeID(i))
		}
	}
	return dst
}

func (fs *fakeSource) Position(id sim.NodeID) space.Point {
	fs.pos[0] = float64(id)
	return fs.pos
}

func (fs *fakeSource) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	// Nearest live nodes by |index distance|, increasing.
	for d := 1; d < fs.n && k > 0; d++ {
		for _, nb := range [2]int{int(id) - d, int(id) + d} {
			if nb >= 0 && nb < fs.n && fs.live[nb] && k > 0 {
				if !yield(sim.NodeID(nb)) {
					return
				}
				k--
			}
		}
	}
}

func (fs *fakeSource) NumGuests(id sim.NodeID) int { return len(fs.guests[id]) }
func (fs *fakeSource) NumGhosts(id sim.NodeID) int { return fs.ghosts[id] }
func (fs *fakeSource) NumPoints() int              { return fs.np }

func (fs *fakeSource) EachGuestID(id sim.NodeID, fn func(pid space.PointID)) {
	for _, pid := range fs.guests[id] {
		fn(pid)
	}
}

func TestCaptureBasics(t *testing.T) {
	fs := newFakeSource(10)
	fs.live[3] = false
	fs.round = 7
	fs.np = 4
	fs.guests[2] = []space.PointID{0, 1}
	fs.guests[5] = []space.PointID{1, 2}
	fs.ghosts[5] = 3

	ep := Capture(fs, 4, 42)
	if ep.Seq != 42 || ep.Round != 7 {
		t.Fatalf("Seq/Round = %d/%d, want 42/7", ep.Seq, ep.Round)
	}
	if ep.NumLive() != 9 {
		t.Fatalf("NumLive = %d, want 9", ep.NumLive())
	}
	if ep.Contains(3) {
		t.Fatal("dead node 3 reported live")
	}
	if ep.Contains(-1) || ep.Contains(99) {
		t.Fatal("out-of-range IDs reported live")
	}
	if _, ok := ep.Position(3); ok {
		t.Fatal("Position(dead) ok")
	}
	pos, ok := ep.Position(5)
	if !ok || pos[0] != 5 {
		t.Fatalf("Position(5) = %v,%v", pos, ok)
	}
	// Neighbours of 2 skip dead 3: nearest live are 1, then the
	// equidistant pair 0 and 4 (lower index first), then 5.
	nbs, ok := ep.AppendNeighbors(nil, 2, 4)
	if !ok {
		t.Fatal("AppendNeighbors(2) not ok")
	}
	want := []sim.NodeID{1, 0, 4, 5}
	if len(nbs) != len(want) {
		t.Fatalf("neighbors(2) = %v, want %v", nbs, want)
	}
	for i := range want {
		if nbs[i] != want[i] {
			t.Fatalf("neighbors(2) = %v, want %v", nbs, want)
		}
	}
	if g, _ := ep.NumGuests(5); g != 2 {
		t.Fatalf("NumGuests(5) = %d, want 2", g)
	}
	if g, _ := ep.NumGhosts(5); g != 3 {
		t.Fatalf("NumGhosts(5) = %d, want 3", g)
	}
	gids, _ := ep.AppendGuestIDs(nil, 2)
	if len(gids) != 2 || gids[0] != 0 || gids[1] != 1 {
		t.Fatalf("AppendGuestIDs(2) = %v", gids)
	}
	// Holders: pid 1 held by nodes 2 and 5; pid 3 orphaned; pid 99 unknown.
	h := ep.AppendHolders(nil, 1)
	if len(h) != 2 || h[0] != 2 || h[1] != 5 {
		t.Fatalf("holders(1) = %v, want [2 5]", h)
	}
	if h := ep.AppendHolders(nil, 3); len(h) != 0 {
		t.Fatalf("holders(orphan 3) = %v, want empty", h)
	}
	if h := ep.AppendHolders(nil, 99); len(h) != 0 {
		t.Fatalf("holders(unknown 99) = %v, want empty", h)
	}
	if ep.HolderEntries() != 4 || ep.NumPoints() != 4 {
		t.Fatalf("HolderEntries/NumPoints = %d/%d, want 4/4", ep.HolderEntries(), ep.NumPoints())
	}
}

func TestEpochLookup(t *testing.T) {
	fs := newFakeSource(64)
	ep := Capture(fs, 0, 1)
	if ep.K != DefaultFanout {
		t.Fatalf("K = %d, want DefaultFanout", ep.K)
	}
	for _, q := range []float64{0, 17.4, 31.5, 63, 200} {
		id, dist, _, ok := ep.Lookup([]float64{q})
		if !ok {
			t.Fatalf("Lookup(%v) not ok", q)
		}
		wantID := int(q + 0.5)
		if q >= 31.4 && q <= 31.6 {
			// Tie region: either neighbour acceptable.
			if id != 31 && id != 32 {
				t.Fatalf("Lookup(%v) = %d, want 31 or 32", q, id)
			}
			continue
		}
		if wantID > 63 {
			wantID = 63
		}
		if int(id) != wantID {
			t.Fatalf("Lookup(%v) = %d (dist %v), want %d", q, id, dist, wantID)
		}
	}
}

func TestEpochLookupEmptyAndMismatch(t *testing.T) {
	fs := newFakeSource(8)
	for i := range fs.live {
		fs.live[i] = false
	}
	ep := Capture(fs, 4, 1)
	if ep.NumLive() != 0 {
		t.Fatalf("NumLive = %d, want 0", ep.NumLive())
	}
	id, dist, hops, ok := ep.Lookup([]float64{1})
	if ok || id != sim.None || dist != 0 || hops != 0 {
		t.Fatalf("empty Lookup = (%d,%v,%d,%v), want (None,0,0,false)", id, dist, hops, ok)
	}
	ep2 := Capture(newFakeSource(8), 4, 2)
	if _, _, _, ok := ep2.Lookup([]float64{1, 2}); ok {
		t.Fatal("dimension-mismatch Lookup reported ok")
	}
	if _, _, _, ok := ep2.Lookup(nil); ok {
		t.Fatal("nil-query Lookup reported ok")
	}
}

func TestEpochLookupAllocFree(t *testing.T) {
	fs := newFakeSource(128)
	ep := Capture(fs, 0, 1)
	q := []float64{77.3}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, ok := ep.Lookup(q); !ok {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Epoch.Lookup allocates %v allocs/op, want 0", allocs)
	}
}

func TestPublisherLifecycle(t *testing.T) {
	fs := newFakeSource(8)
	p := NewPublisher(4)
	if p.Current() != nil {
		t.Fatal("Current before first Publish should be nil (warming)")
	}
	ep1 := p.Publish(fs)
	if ep1 == nil || ep1.Seq != 1 {
		t.Fatalf("first Publish = %+v", ep1)
	}
	if p.Current() != ep1 {
		t.Fatal("Current != just-published epoch")
	}
	fs.round = 1
	ep2 := p.Publish(fs)
	if ep2.Seq != 2 || ep2.Round != 1 {
		t.Fatalf("second Publish Seq/Round = %d/%d", ep2.Seq, ep2.Round)
	}
	if p.Current() != ep2 {
		t.Fatal("Current not advanced")
	}
	// ep1 stays queryable after being superseded: readers holding it
	// finish unharmed.
	if _, _, _, ok := ep1.Lookup([]float64{3}); !ok {
		t.Fatal("superseded epoch no longer queryable")
	}
	p.Close()
	if !p.Closed() || p.Current() != nil {
		t.Fatal("Close did not drain Current")
	}
	if p.Publish(fs) != nil {
		t.Fatal("Publish after Close should be a no-op")
	}
	p.Close() // idempotent
}

package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Frontend is the JSON-over-HTTP serving surface. Every handler loads
// the publisher's current epoch once and answers entirely from it, so a
// response is internally consistent (positions, neighbours and holders
// from the same round) and stamps the epoch's sequence number and round.
// Before the first published epoch and after Close the frontend answers
// 503 with a machine-readable state ("warming" / "draining") and a
// Retry-After hint; malformed queries get 400 and dead or unknown nodes
// 404 — served input is untrusted, so nothing a client sends can panic
// the service.
type Frontend struct {
	pub     *Publisher
	mux     *http.ServeMux
	queries atomic.Uint64
}

// NewFrontend returns a frontend serving pub's epochs:
//
//	GET /lookup?q=x,y,...   greedy nearest-node lookup at a point
//	GET /neighbors?id=N&k=K a node's captured closest neighbours
//	GET /node/{id}          position + load + neighbours + guest points
//	GET /stats              epoch and service counters
//	GET /healthz            200 once an epoch is published, else 503
func NewFrontend(pub *Publisher) *Frontend {
	f := &Frontend{pub: pub, mux: http.NewServeMux()}
	f.mux.HandleFunc("GET /lookup", f.handleLookup)
	f.mux.HandleFunc("GET /neighbors", f.handleNeighbors)
	f.mux.HandleFunc("GET /node/{id}", f.handleNode)
	f.mux.HandleFunc("GET /stats", f.handleStats)
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	return f
}

// ServeHTTP implements http.Handler.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mux.ServeHTTP(w, r)
}

// Queries returns how many epoch-backed queries (lookup, neighbors,
// node) the frontend has answered successfully.
func (f *Frontend) Queries() uint64 { return f.queries.Load() }

type errResponse struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// epoch resolves the current epoch or writes the 503 warming/draining
// answer and returns nil.
func (f *Frontend) epoch(w http.ResponseWriter) *Epoch {
	if ep := f.pub.Current(); ep != nil {
		return ep
	}
	state := "warming"
	if f.pub.Closed() {
		state = "draining"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errResponse{
		Error: "no epoch available", State: state,
	})
	return nil
}

// parseNodeID parses a client-supplied node id, enforcing the serving
// contract up front: ids are non-negative and bounded by the epoch
// address space (int32 — the engine's dense tables index by NodeID, and
// every published population fits). Parsing in 64 bits first means an
// id like 4294967296 or -1 is rejected here as the client error it is,
// instead of wrapping through the int conversion and turning into a
// spurious 404 (or, on 32-bit builds, an implementation-defined value).
func parseNodeID(s string) (sim.NodeID, bool) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 || v > maxNodeID {
		return 0, false
	}
	return sim.NodeID(v), true
}

const maxNodeID = 1<<31 - 1

// vecPool recycles the query-vector scratch across requests so parsing a
// lookup point costs no steady-state allocation.
var vecPool = sync.Pool{
	New: func() any { s := make([]float64, 0, 64); return &s },
}

// parseVec parses a comma-separated float vector ("1.5,2,-0.25") into
// dst, returning the extended slice.
func parseVec(s string, dst []float64) ([]float64, error) {
	for s != "" {
		field := s
		if i := strings.IndexByte(s, ','); i >= 0 {
			field, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

type lookupResponse struct {
	Epoch    uint64     `json:"epoch"`
	Round    int        `json:"round"`
	Found    bool       `json:"found"`
	Node     sim.NodeID `json:"node"`
	Distance float64    `json:"distance"`
	Hops     int        `json:"hops"`
}

func (f *Frontend) handleLookup(w http.ResponseWriter, r *http.Request) {
	ep := f.epoch(w)
	if ep == nil {
		return
	}
	qs := r.URL.Query().Get("q")
	if qs == "" {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "missing q parameter"})
		return
	}
	bufp := vecPool.Get().(*[]float64)
	q, err := parseVec(qs, (*bufp)[:0])
	*bufp = q
	if err == nil && len(q) != ep.Dim() {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: "q has dimension " + strconv.Itoa(len(q)) + ", space wants " + strconv.Itoa(ep.Dim()),
		})
		vecPool.Put(bufp)
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad q: " + err.Error()})
		vecPool.Put(bufp)
		return
	}
	id, dist, hops, ok := ep.Lookup(q)
	vecPool.Put(bufp)
	f.queries.Add(1)
	writeJSON(w, http.StatusOK, lookupResponse{
		Epoch: ep.Seq, Round: ep.Round,
		Found: ok, Node: id, Distance: dist, Hops: hops,
	})
}

type neighborsResponse struct {
	Epoch     uint64       `json:"epoch"`
	Round     int          `json:"round"`
	ID        sim.NodeID   `json:"id"`
	Neighbors []sim.NodeID `json:"neighbors"`
}

func (f *Frontend) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	ep := f.epoch(w)
	if ep == nil {
		return
	}
	id, ok := parseNodeID(r.URL.Query().Get("id"))
	if !ok {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad id: want an integer in [0, 2^31)"})
		return
	}
	k := ep.K
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad k"})
			return
		}
	}
	// Clamp before sizing the result: the epoch can never answer more
	// than its captured K-row width, so an arbitrary client k must not
	// size the allocation (k=1e9 would otherwise reserve gigabytes per
	// request before AppendNeighbors capped it).
	if k > ep.K {
		k = ep.K
	}
	nbs, ok := ep.AppendNeighbors(make([]sim.NodeID, 0, k), id, k)
	if !ok {
		writeJSON(w, http.StatusNotFound, errResponse{Error: "node dead or unknown in this epoch"})
		return
	}
	f.queries.Add(1)
	writeJSON(w, http.StatusOK, neighborsResponse{
		Epoch: ep.Seq, Round: ep.Round, ID: id, Neighbors: nbs,
	})
}

type nodeResponse struct {
	Epoch     uint64          `json:"epoch"`
	Round     int             `json:"round"`
	ID        sim.NodeID      `json:"id"`
	Position  []float64       `json:"position"`
	Guests    int             `json:"guests"`
	Ghosts    int             `json:"ghosts"`
	Neighbors []sim.NodeID    `json:"neighbors"`
	GuestIDs  []space.PointID `json:"guest_ids,omitempty"`
}

func (f *Frontend) handleNode(w http.ResponseWriter, r *http.Request) {
	ep := f.epoch(w)
	if ep == nil {
		return
	}
	nid, ok := parseNodeID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad id: want an integer in [0, 2^31)"})
		return
	}
	pos, ok := ep.Position(nid)
	if !ok {
		writeJSON(w, http.StatusNotFound, errResponse{Error: "node dead or unknown in this epoch"})
		return
	}
	guests, _ := ep.NumGuests(nid)
	ghosts, _ := ep.NumGhosts(nid)
	nbs, _ := ep.AppendNeighbors(make([]sim.NodeID, 0, ep.K), nid, ep.K)
	gids, _ := ep.AppendGuestIDs(make([]space.PointID, 0, guests), nid)
	f.queries.Add(1)
	writeJSON(w, http.StatusOK, nodeResponse{
		Epoch: ep.Seq, Round: ep.Round, ID: nid,
		Position: pos, Guests: guests, Ghosts: ghosts,
		Neighbors: nbs, GuestIDs: gids,
	})
}

type statsResponse struct {
	Epoch         uint64 `json:"epoch"`
	Round         int    `json:"round"`
	Live          int    `json:"live"`
	Dim           int    `json:"dim"`
	K             int    `json:"k"`
	Points        int    `json:"points"`
	HolderEntries int    `json:"holder_entries"`
	Queries       uint64 `json:"queries"`
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	ep := f.epoch(w)
	if ep == nil {
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch: ep.Seq, Round: ep.Round,
		Live: ep.NumLive(), Dim: ep.Dim(), K: ep.K,
		Points: ep.NumPoints(), HolderEntries: ep.HolderEntries(),
		Queries: f.queries.Load(),
	})
}

type healthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	Round  int    `json:"round"`
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ep := f.pub.Current()
	if ep == nil {
		state := "warming"
		if f.pub.Closed() {
			state = "draining"
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "not serving", State: state})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Epoch: ep.Seq, Round: ep.Round})
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"polystyrene/internal/space"
)

func getJSON(t *testing.T, f *Frontend, url string, wantStatus int, into any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d (%s), want %d", url, rec.Code, rec.Body.String(), wantStatus)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
}

func TestFrontendWarmingAndDraining(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	var er errResponse
	getJSON(t, f, "/lookup?q=1", 503, &er)
	if er.State != "warming" {
		t.Fatalf("pre-epoch state = %q, want warming", er.State)
	}
	getJSON(t, f, "/healthz", 503, &er)
	if er.State != "warming" {
		t.Fatalf("healthz state = %q, want warming", er.State)
	}
	p.Publish(newFakeSource(8))
	getJSON(t, f, "/healthz", 200, nil)
	p.Close()
	getJSON(t, f, "/lookup?q=1", 503, &er)
	if er.State != "draining" {
		t.Fatalf("post-Close state = %q, want draining", er.State)
	}
	getJSON(t, f, "/healthz", 503, &er)
	if er.State != "draining" {
		t.Fatalf("post-Close healthz state = %q, want draining", er.State)
	}
}

func TestFrontendEndpoints(t *testing.T) {
	fs := newFakeSource(16)
	fs.live[3] = false
	fs.round = 5
	fs.np = 3
	fs.guests[2] = []space.PointID{0, 1}
	fs.guests[7] = []space.PointID{1}
	fs.ghosts[7] = 2
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(fs)

	var lr lookupResponse
	getJSON(t, f, "/lookup?q=6.8", 200, &lr)
	if !lr.Found || lr.Node != 7 || lr.Epoch != 1 || lr.Round != 5 {
		t.Fatalf("lookup = %+v, want node 7 @ epoch 1 round 5", lr)
	}

	var nr neighborsResponse
	getJSON(t, f, "/neighbors?id=2&k=3", 200, &nr)
	if nr.ID != 2 || len(nr.Neighbors) != 3 || nr.Neighbors[0] != 1 {
		t.Fatalf("neighbors = %+v", nr)
	}
	if nr.Epoch != 1 || nr.Round != 5 {
		t.Fatalf("neighbors missing epoch stamp: %+v", nr)
	}

	var node nodeResponse
	getJSON(t, f, "/node/7", 200, &node)
	if node.Guests != 1 || node.Ghosts != 2 || node.Position[0] != 7 {
		t.Fatalf("node = %+v", node)
	}
	if len(node.GuestIDs) != 1 || node.GuestIDs[0] != 1 {
		t.Fatalf("node guest IDs = %v, want [1]", node.GuestIDs)
	}

	var st statsResponse
	getJSON(t, f, "/stats", 200, &st)
	if st.Live != 15 || st.Points != 3 || st.HolderEntries != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Queries != 3 {
		t.Fatalf("stats queries = %d, want 3", st.Queries)
	}
	if f.Queries() != 3 {
		t.Fatalf("Queries() = %d, want 3", f.Queries())
	}
}

func TestFrontendBadInput(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(newFakeSource(8))

	getJSON(t, f, "/lookup", 400, nil)           // missing q
	getJSON(t, f, "/lookup?q=abc", 400, nil)     // unparsable
	getJSON(t, f, "/lookup?q=1,2", 400, nil)     // wrong dimension
	getJSON(t, f, "/neighbors?id=zap", 400, nil) // bad id
	getJSON(t, f, "/neighbors?id=1&k=-2", 400, nil)
	getJSON(t, f, "/neighbors?id=99", 404, nil) // unknown node
	getJSON(t, f, "/node/99", 404, nil)
	getJSON(t, f, "/node/banana", 400, nil)
	if f.Queries() != 0 {
		t.Fatalf("failed requests counted as queries: %d", f.Queries())
	}
}

func TestFrontendLookupOnEmptyEpoch(t *testing.T) {
	fs := newFakeSource(8)
	for i := range fs.live {
		fs.live[i] = false
	}
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(fs)
	var lr lookupResponse
	getJSON(t, f, "/lookup?q=1", 200, &lr)
	if lr.Found || lr.Node != -1 {
		t.Fatalf("empty-epoch lookup = %+v, want found=false node=-1", lr)
	}
}

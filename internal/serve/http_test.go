package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"polystyrene/internal/space"
)

func getJSON(t *testing.T, f *Frontend, url string, wantStatus int, into any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d (%s), want %d", url, rec.Code, rec.Body.String(), wantStatus)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
}

func TestFrontendWarmingAndDraining(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	var er errResponse
	getJSON(t, f, "/lookup?q=1", 503, &er)
	if er.State != "warming" {
		t.Fatalf("pre-epoch state = %q, want warming", er.State)
	}
	getJSON(t, f, "/healthz", 503, &er)
	if er.State != "warming" {
		t.Fatalf("healthz state = %q, want warming", er.State)
	}
	p.Publish(newFakeSource(8))
	getJSON(t, f, "/healthz", 200, nil)
	p.Close()
	getJSON(t, f, "/lookup?q=1", 503, &er)
	if er.State != "draining" {
		t.Fatalf("post-Close state = %q, want draining", er.State)
	}
	getJSON(t, f, "/healthz", 503, &er)
	if er.State != "draining" {
		t.Fatalf("post-Close healthz state = %q, want draining", er.State)
	}
}

func TestFrontendEndpoints(t *testing.T) {
	fs := newFakeSource(16)
	fs.live[3] = false
	fs.round = 5
	fs.np = 3
	fs.guests[2] = []space.PointID{0, 1}
	fs.guests[7] = []space.PointID{1}
	fs.ghosts[7] = 2
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(fs)

	var lr lookupResponse
	getJSON(t, f, "/lookup?q=6.8", 200, &lr)
	if !lr.Found || lr.Node != 7 || lr.Epoch != 1 || lr.Round != 5 {
		t.Fatalf("lookup = %+v, want node 7 @ epoch 1 round 5", lr)
	}

	var nr neighborsResponse
	getJSON(t, f, "/neighbors?id=2&k=3", 200, &nr)
	if nr.ID != 2 || len(nr.Neighbors) != 3 || nr.Neighbors[0] != 1 {
		t.Fatalf("neighbors = %+v", nr)
	}
	if nr.Epoch != 1 || nr.Round != 5 {
		t.Fatalf("neighbors missing epoch stamp: %+v", nr)
	}

	var node nodeResponse
	getJSON(t, f, "/node/7", 200, &node)
	if node.Guests != 1 || node.Ghosts != 2 || node.Position[0] != 7 {
		t.Fatalf("node = %+v", node)
	}
	if len(node.GuestIDs) != 1 || node.GuestIDs[0] != 1 {
		t.Fatalf("node guest IDs = %v, want [1]", node.GuestIDs)
	}

	var st statsResponse
	getJSON(t, f, "/stats", 200, &st)
	if st.Live != 15 || st.Points != 3 || st.HolderEntries != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Queries != 3 {
		t.Fatalf("stats queries = %d, want 3", st.Queries)
	}
	if f.Queries() != 3 {
		t.Fatalf("Queries() = %d, want 3", f.Queries())
	}
}

func TestFrontendBadInput(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(newFakeSource(8))

	getJSON(t, f, "/lookup", 400, nil)           // missing q
	getJSON(t, f, "/lookup?q=abc", 400, nil)     // unparsable
	getJSON(t, f, "/lookup?q=1,2", 400, nil)     // wrong dimension
	getJSON(t, f, "/neighbors?id=zap", 400, nil) // bad id
	getJSON(t, f, "/neighbors?id=1&k=-2", 400, nil)
	getJSON(t, f, "/neighbors?id=99", 404, nil) // unknown node
	getJSON(t, f, "/node/99", 404, nil)
	getJSON(t, f, "/node/banana", 400, nil)
	if f.Queries() != 0 {
		t.Fatalf("failed requests counted as queries: %d", f.Queries())
	}
}

// TestFrontendNodeIDRange pins the id parsing contract of both
// id-taking endpoints: out-of-range ids — negative, beyond the int32
// node address space, or beyond int64 entirely — are client errors
// answered 400 before any epoch lookup, never wrapped into a NodeID
// that would alias a real node or surface as a spurious 404. The
// largest representable id is in range and gets the honest 404.
func TestFrontendNodeIDRange(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(newFakeSource(8))

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"neighbors ok", "/neighbors?id=2", 200},
		{"neighbors negative", "/neighbors?id=-1", 400},
		{"neighbors just past int32", "/neighbors?id=2147483648", 400},
		{"neighbors wraps to small int", "/neighbors?id=4294967297", 400},
		{"neighbors past int64", "/neighbors?id=99999999999999999999", 400},
		{"neighbors empty id", "/neighbors?id=", 400},
		{"neighbors not a number", "/neighbors?id=2.5", 400},
		{"neighbors max int32 is honest 404", "/neighbors?id=2147483647", 404},
		{"node ok", "/node/2", 200},
		{"node negative", "/node/-1", 400},
		{"node just past int32", "/node/2147483648", 400},
		{"node wraps to small int", "/node/4294967297", 400},
		{"node past int64", "/node/99999999999999999999", 400},
		{"node max int32 is honest 404", "/node/2147483647", 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			getJSON(t, f, tc.url, tc.want, nil)
		})
	}
}

// TestFrontendNeighborsKClamp pins the k sizing contract: the epoch can
// never answer more than its captured K-row width, so a client k above
// it is clamped before the result slice is sized — a huge k must behave
// exactly like k=K instead of reserving client-controlled memory per
// request (and the clamp must not disturb small-k answers).
func TestFrontendNeighborsKClamp(t *testing.T) {
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(newFakeSource(16))

	var ref neighborsResponse
	getJSON(t, f, "/neighbors?id=5", 200, &ref) // k omitted: the full K row

	cases := []struct {
		name    string
		url     string
		wantLen int
	}{
		{"k above row width clamps", "/neighbors?id=5&k=7", len(ref.Neighbors)},
		{"absurd k clamps", "/neighbors?id=5&k=1000000000", len(ref.Neighbors)},
		{"k equal to row width", "/neighbors?id=5&k=4", len(ref.Neighbors)},
		{"small k honoured", "/neighbors?id=5&k=2", 2},
		{"k zero", "/neighbors?id=5&k=0", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var nr neighborsResponse
			getJSON(t, f, tc.url, 200, &nr)
			if len(nr.Neighbors) != tc.wantLen {
				t.Fatalf("%s: %d neighbors, want %d (full row %v)", tc.url, len(nr.Neighbors), tc.wantLen, ref.Neighbors)
			}
		})
	}
}

func TestFrontendLookupOnEmptyEpoch(t *testing.T) {
	fs := newFakeSource(8)
	for i := range fs.live {
		fs.live[i] = false
	}
	p := NewPublisher(4)
	f := NewFrontend(p)
	p.Publish(fs)
	var lr lookupResponse
	getJSON(t, f, "/lookup?q=1", 200, &lr)
	if lr.Found || lr.Node != -1 {
		t.Fatalf("empty-epoch lookup = %+v, want found=false node=-1", lr)
	}
}

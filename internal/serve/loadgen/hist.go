// Package loadgen drives a serve.Publisher-backed service with a
// deterministic closed-loop load generator and records what the paper's
// serving story needs measured: sustained query throughput and an
// HDR-style latency distribution (p50/p90/p99/p999) while the underlying
// shape is calm, churning or recovering from a catastrophe.
//
// The generator is closed-loop: each worker issues one query, waits for
// the answer, records the latency, and immediately issues the next — so
// QPS is a measurement of service capacity, not an offered-load knob.
// Queries are generated from the served keyspace itself (live positions
// in the current epoch), with worker-private seeded RNG streams so a run
// is reproducible query-for-query.
package loadgen

import "math/bits"

// The histogram is log-linear, the classic HDR layout: values below
// histSub are exact; above, each power-of-two range is split into
// histSub linear sub-buckets, giving a fixed relative error of at most
// 1/histSub (~3%) across the full uint64 range in a flat 1920-entry
// array — no allocation per Record, mergeable by element-wise add.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// The largest index is exp_max*histSub + (2*histSub - 1) with
	// exp_max = 64 - histSubBits - 1, hence the +1 exponent row.
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Hist is a fixed-footprint latency histogram in nanoseconds. The zero
// value is ready to use. Not safe for concurrent use: each worker
// records into its own and the runner merges them with Add.
type Hist struct {
	n       uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [histBuckets]uint32
}

// histIndex maps a value to its bucket: identity below histSub, then
// exponent*histSub + mantissa where the mantissa keeps histSubBits of
// precision below the leading bit.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1
	return exp*histSub + int(v>>uint(exp))
}

// bucketMid returns the midpoint of bucket idx's value range, the value
// Quantile reports for ranks landing in it.
func bucketMid(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := uint(idx>>histSubBits) - 1
	low := uint64(idx-int(exp)*histSub) << exp
	return low + 1<<exp/2
}

// Record adds one observation (nanoseconds).
func (h *Hist) Record(v uint64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[histIndex(v)]++
}

// Add merges other into h (element-wise; relative error is unchanged).
func (h *Hist) Add(other *Hist) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// Count returns how many observations were recorded.
func (h *Hist) Count() uint64 { return h.n }

// Min and Max return the exact extreme observations (0 when empty).
func (h *Hist) Min() uint64 { return h.min }
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the value at quantile q in [0,1] — the bucket
// midpoint covering the ceil(q*n)-th smallest observation, so the
// answer is within the histogram's ~3% relative error. Returns 0 when
// empty; q<=0 yields the min bucket, q>=1 the max bucket.
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += uint64(c)
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

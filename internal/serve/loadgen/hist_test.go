package loadgen

import (
	"math"
	"testing"
)

func TestHistIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 65, 100, 1000, 1 << 20, 1<<20 + 7, 1 << 40, math.MaxUint64} {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistRelativeError(t *testing.T) {
	// Every recorded value must land in a bucket whose midpoint is
	// within the layout's relative error (1/histSub of the bucket low,
	// so ~±1.6% around the midpoint; allow the full 1/histSub).
	for v := uint64(1); v < 1<<30; v = v*3 + 1 {
		mid := bucketMid(histIndex(v))
		relerr := math.Abs(float64(mid)-float64(v)) / float64(v)
		if relerr > 1.0/histSub {
			t.Fatalf("value %d -> midpoint %d, relative error %.3f > %.3f",
				v, mid, relerr, 1.0/histSub)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1..1000 microseconds, in nanoseconds.
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 1000000 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500500) > 1 {
		t.Fatalf("Mean = %v, want 500500", mean)
	}
	checks := map[float64]uint64{0.5: 500000, 0.9: 900000, 0.99: 990000, 0.999: 999000}
	for q, want := range checks {
		got := h.Quantile(q)
		if relerr := math.Abs(float64(got)-float64(want)) / float64(want); relerr > 0.05 {
			t.Fatalf("Quantile(%v) = %d, want ~%d (relerr %.3f)", q, got, want, relerr)
		}
	}
	if h.Quantile(0) != bucketMid(histIndex(1000)) {
		t.Fatalf("Quantile(0) = %d, want min bucket", h.Quantile(0))
	}
	if got, wantMax := h.Quantile(1), bucketMid(histIndex(1000000)); got != wantMax {
		t.Fatalf("Quantile(1) = %d, want max bucket %d", got, wantMax)
	}
}

func TestHistAddMerges(t *testing.T) {
	var a, b, whole Hist
	for i := uint64(0); i < 500; i++ {
		a.Record(i * 7)
		whole.Record(i * 7)
	}
	for i := uint64(500); i < 1000; i++ {
		b.Record(i * 7)
		whole.Record(i * 7)
	}
	a.Add(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d min %d/%d max %d/%d",
			a.Count(), whole.Count(), a.Min(), whole.Min(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, direct = %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	var empty Hist
	a.Add(&empty) // no-op
	if a.Count() != whole.Count() {
		t.Fatal("adding empty hist changed count")
	}
	empty.Add(&a)
	if empty.Count() != a.Count() || empty.Min() != a.Min() {
		t.Fatal("adding into empty hist lost state")
	}
	var z Hist
	if z.Quantile(0.5) != 0 || z.Mean() != 0 {
		t.Fatal("empty hist quantile/mean not 0")
	}
}

package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"polystyrene/internal/serve"
	"polystyrene/internal/sim"
	"polystyrene/internal/xrand"
)

// Target is one query backend the generator can drive. EpochTarget
// executes against the published epoch in-process (measuring the bare
// read path); HTTPTarget goes through real sockets and JSON (measuring
// the full service stack). Epoch supplies the current snapshot for
// query *generation*; Lookup/Neighbors execute the queries. Targets
// must be safe for concurrent use by all workers.
type Target interface {
	Epoch() *serve.Epoch
	Lookup(q []float64) (sim.NodeID, bool, error)
	Neighbors(id sim.NodeID, k int) (int, error)
}

// EpochTarget queries the publisher's current epoch directly.
type EpochTarget struct {
	Pub *serve.Publisher
}

func (t EpochTarget) Epoch() *serve.Epoch { return t.Pub.Current() }

func (t EpochTarget) Lookup(q []float64) (sim.NodeID, bool, error) {
	ep := t.Pub.Current()
	if ep == nil {
		return sim.None, false, errors.New("no epoch")
	}
	id, _, _, ok := ep.Lookup(q)
	return id, ok, nil
}

func (t EpochTarget) Neighbors(id sim.NodeID, k int) (int, error) {
	ep := t.Pub.Current()
	if ep == nil {
		return 0, errors.New("no epoch")
	}
	var buf [serve.DefaultFanout]sim.NodeID
	nbs, ok := ep.AppendNeighbors(buf[:0], id, k)
	if !ok {
		// Dead in a newer epoch than the one that named it: a routine
		// churn outcome, not an error.
		return 0, nil
	}
	return len(nbs), nil
}

// HTTPTarget queries a Frontend over real HTTP. Pub is still consulted
// for query generation (the selftest runs generator and service in one
// process); the measured path is socket -> mux -> JSON end to end.
type HTTPTarget struct {
	Base   string       // e.g. "http://127.0.0.1:4600"
	Client *http.Client // nil means http.DefaultClient
	Pub    *serve.Publisher
}

func (t HTTPTarget) Epoch() *serve.Epoch { return t.Pub.Current() }

func (t HTTPTarget) get(url string, into any) (int, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

func (t HTTPTarget) Lookup(q []float64) (sim.NodeID, bool, error) {
	buf := make([]byte, 0, len(t.Base)+16+len(q)*20)
	buf = append(buf, t.Base...)
	buf = append(buf, "/lookup?q="...)
	for i, v := range q {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	var lr struct {
		Found bool       `json:"found"`
		Node  sim.NodeID `json:"node"`
	}
	status, err := t.get(string(buf), &lr)
	if err != nil {
		return sim.None, false, err
	}
	if status != http.StatusOK {
		return sim.None, false, fmt.Errorf("lookup: HTTP %d", status)
	}
	return lr.Node, lr.Found, nil
}

func (t HTTPTarget) Neighbors(id sim.NodeID, k int) (int, error) {
	url := t.Base + "/neighbors?id=" + strconv.Itoa(int(id)) + "&k=" + strconv.Itoa(k)
	var nr struct {
		Neighbors []sim.NodeID `json:"neighbors"`
	}
	status, err := t.get(url, &nr)
	if err != nil {
		return 0, err
	}
	if status == http.StatusNotFound {
		return 0, nil // died between epochs: routine churn outcome
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("neighbors: HTTP %d", status)
	}
	return len(nr.Neighbors), nil
}

// Options configures one generator run.
type Options struct {
	// Seed derives every worker's private RNG stream; same seed, same
	// query sequence per worker.
	Seed uint64
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Duration is how long to generate load for (default 1s).
	Duration time.Duration
	// NeighborEvery chains a neighbor query off every Nth successful
	// lookup (0 disables; default 4).
	NeighborEvery int
}

// Result is the merged outcome of a run.
type Result struct {
	// Ops counts completed queries (lookups + neighbor queries), Misses
	// the lookups answered "not found" (empty epoch), and Errors the
	// transport or server failures.
	Ops    uint64
	Misses uint64
	Errors uint64
	// Elapsed is the wall-clock measurement window; QPS is Ops/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// Lookups and Neighbors are the per-query-kind latency histograms.
	Lookups   Hist
	Neighbors Hist
}

// String formats the run one line per histogram for logs and the
// selftest output.
func (r *Result) String() string {
	us := func(v uint64) float64 { return float64(v) / 1e3 }
	s := fmt.Sprintf("%.0f qps over %v (%d ops, %d misses, %d errors)",
		r.QPS, r.Elapsed.Round(time.Millisecond), r.Ops, r.Misses, r.Errors)
	if r.Lookups.Count() > 0 {
		s += fmt.Sprintf("\n  lookup    p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
			us(r.Lookups.Quantile(0.50)), us(r.Lookups.Quantile(0.90)),
			us(r.Lookups.Quantile(0.99)), us(r.Lookups.Quantile(0.999)), us(r.Lookups.Max()))
	}
	if r.Neighbors.Count() > 0 {
		s += fmt.Sprintf("\n  neighbors p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
			us(r.Neighbors.Quantile(0.50)), us(r.Neighbors.Quantile(0.90)),
			us(r.Neighbors.Quantile(0.99)), us(r.Neighbors.Quantile(0.999)), us(r.Neighbors.Max()))
	}
	return s
}

// Run drives tgt closed-loop until the duration elapses and returns the
// merged result. Each worker draws queries from its own xrand stream:
// it picks a live node from the target's *current* epoch (so churn is
// followed round by round), looks up that node's position, and every
// NeighborEvery-th hit chains a neighbor query on the node the lookup
// returned — the pattern a real client resolving then browsing would
// produce.
func Run(tgt Target, opt Options) Result {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.Duration <= 0 {
		opt.Duration = time.Second
	}
	if opt.NeighborEvery < 0 {
		opt.NeighborEvery = 0
	}

	type workerOut struct {
		ops, misses, errors uint64
		lookups, neighbors  Hist
	}
	outs := make([]workerOut, opt.Workers)
	root := xrand.New(opt.Seed)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(opt.Duration)
	for w := 0; w < opt.Workers; w++ {
		rng := root.Split()
		out := &outs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var q []float64
			sinceNbr := 0
			for time.Now().Before(deadline) {
				ep := tgt.Epoch()
				if ep == nil || ep.NumLive() == 0 {
					// Warming or fully crashed: nothing to query yet.
					out.misses++
					time.Sleep(100 * time.Microsecond)
					continue
				}
				pos, ok := ep.Position(ep.NodeAt(rng.Intn(ep.NumLive())))
				if !ok {
					continue
				}
				q = append(q[:0], pos...)
				t0 := time.Now()
				node, found, err := tgt.Lookup(q)
				lat := time.Since(t0)
				switch {
				case err != nil:
					out.errors++
					continue
				case !found:
					out.misses++
					continue
				}
				out.lookups.Record(uint64(lat))
				out.ops++
				if opt.NeighborEvery > 0 {
					if sinceNbr++; sinceNbr >= opt.NeighborEvery {
						sinceNbr = 0
						t0 = time.Now()
						_, err := tgt.Neighbors(node, serve.DefaultFanout)
						lat = time.Since(t0)
						if err != nil {
							out.errors++
							continue
						}
						out.neighbors.Record(uint64(lat))
						out.ops++
					}
				}
			}
		}()
	}
	wg.Wait()
	res := Result{Elapsed: time.Since(start)}
	for i := range outs {
		res.Ops += outs[i].ops
		res.Misses += outs[i].misses
		res.Errors += outs[i].errors
		res.Lookups.Add(&outs[i].lookups)
		res.Neighbors.Add(&outs[i].neighbors)
	}
	if res.Elapsed > 0 {
		res.QPS = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res
}

package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"polystyrene/internal/serve"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// lineSource is a minimal serve.Source: n nodes on a 1-D Euclidean
// line, node i at position i, ring-ish neighbours by index distance.
type lineSource struct {
	spc space.Space
	n   int
	pos []float64
}

func newLineSource(n int) *lineSource {
	return &lineSource{spc: space.NewEuclidean(1), n: n, pos: make([]float64, 1)}
}

func (s *lineSource) Space() space.Space { return s.spc }
func (s *lineSource) Round() int         { return 0 }
func (s *lineSource) NumNodes() int      { return s.n }

func (s *lineSource) AppendLive(dst []sim.NodeID) []sim.NodeID {
	for i := 0; i < s.n; i++ {
		dst = append(dst, sim.NodeID(i))
	}
	return dst
}

func (s *lineSource) Position(id sim.NodeID) space.Point {
	s.pos[0] = float64(id)
	return s.pos
}

func (s *lineSource) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	for d := 1; d < s.n && k > 0; d++ {
		for _, nb := range [2]int{int(id) - d, int(id) + d} {
			if nb >= 0 && nb < s.n && k > 0 {
				if !yield(sim.NodeID(nb)) {
					return
				}
				k--
			}
		}
	}
}

func (s *lineSource) NumGuests(sim.NodeID) int                    { return 0 }
func (s *lineSource) NumGhosts(sim.NodeID) int                    { return 0 }
func (s *lineSource) NumPoints() int                              { return 0 }
func (s *lineSource) EachGuestID(sim.NodeID, func(space.PointID)) {}

func TestRunEpochTarget(t *testing.T) {
	pub := serve.NewPublisher(4)
	pub.Publish(newLineSource(64))
	res := Run(EpochTarget{Pub: pub}, Options{
		Seed: 7, Workers: 2, Duration: 50 * time.Millisecond, NeighborEvery: 4,
	})
	if res.Ops == 0 || res.QPS == 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors against healthy epoch: %d", res.Errors)
	}
	if res.Lookups.Count() == 0 || res.Neighbors.Count() == 0 {
		t.Fatalf("histograms empty: lookups=%d neighbors=%d",
			res.Lookups.Count(), res.Neighbors.Count())
	}
	// Closed-loop chaining: roughly one neighbor query per 4 lookups.
	ratio := float64(res.Lookups.Count()) / float64(res.Neighbors.Count())
	if ratio < 3 || ratio > 6 {
		t.Fatalf("lookup/neighbor ratio = %.1f, want ~4", ratio)
	}
	if s := res.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestRunDeterministicQueries(t *testing.T) {
	// Same seed, same epoch: the query streams are identical, so two
	// runs bounded by op count (not time) agree on every sampled node.
	pub := serve.NewPublisher(4)
	pub.Publish(newLineSource(64))
	ep := pub.Current()
	sample := func(seed uint64) []sim.NodeID {
		rng := []sim.NodeID{}
		r := xrand.New(seed).Split()
		for i := 0; i < 100; i++ {
			rng = append(rng, ep.NodeAt(r.Intn(ep.NumLive())))
		}
		return rng
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunHTTPTarget(t *testing.T) {
	pub := serve.NewPublisher(4)
	pub.Publish(newLineSource(32))
	srv := httptest.NewServer(serve.NewFrontend(pub))
	defer srv.Close()
	res := Run(HTTPTarget{Base: srv.URL, Client: srv.Client(), Pub: pub}, Options{
		Seed: 7, Workers: 2, Duration: 50 * time.Millisecond, NeighborEvery: 3,
	})
	if res.Ops == 0 {
		t.Fatalf("no ops over HTTP: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("HTTP errors: %d", res.Errors)
	}
}

func TestRunAgainstWarmingPublisher(t *testing.T) {
	pub := serve.NewPublisher(4)
	res := Run(EpochTarget{Pub: pub}, Options{
		Seed: 1, Workers: 1, Duration: 10 * time.Millisecond,
	})
	if res.Ops != 0 {
		t.Fatalf("ops against warming publisher: %d", res.Ops)
	}
	if res.Misses == 0 {
		t.Fatal("warming publisher recorded no misses")
	}
}

func TestHTTPTargetToleratesChurnedNode(t *testing.T) {
	pub := serve.NewPublisher(4)
	pub.Publish(newLineSource(8))
	srv := httptest.NewServer(serve.NewFrontend(pub))
	defer srv.Close()
	tgt := HTTPTarget{Base: srv.URL, Client: srv.Client(), Pub: pub}
	// Node 99 never existed: the target treats the 404 as a routine
	// churn outcome, not an error.
	n, err := tgt.Neighbors(99, 4)
	if err != nil || n != 0 {
		t.Fatalf("Neighbors(dead) = %d, %v; want 0, nil", n, err)
	}
	if _, found, err := tgt.Lookup([]float64{3}); err != nil || !found {
		t.Fatalf("Lookup = found=%v err=%v", found, err)
	}
	if _, _, err := (HTTPTarget{Base: srv.URL, Client: &http.Client{}, Pub: pub}).Lookup([]float64{1, 2}); err == nil {
		t.Fatal("dimension-mismatch lookup over HTTP did not error")
	}
}

package serve

import "sync/atomic"

// Publisher is the single-writer, many-reader handoff point between the
// round loop and the serving surface. The round-driving goroutine calls
// Publish once per round (from the engine's post-barrier publish hook);
// any number of reader goroutines call Current and query the returned
// epoch. The swap is one atomic pointer store, so readers never take a
// lock the loop can hold and the loop never waits for a reader;
// superseded epochs are garbage-collected once the last reader drops
// them.
type Publisher struct {
	k int
	// seq is only touched by the publishing goroutine; readers see it
	// through the epochs it stamps.
	seq    uint64
	cur    atomic.Pointer[Epoch]
	closed atomic.Bool
}

// NewPublisher returns a publisher whose epochs capture a k-wide router
// view (<= 0 means DefaultFanout). No epoch is current until the first
// Publish; Current returns nil and the frontend answers 503 "warming".
func NewPublisher(k int) *Publisher {
	if k <= 0 {
		k = DefaultFanout
	}
	return &Publisher{k: k}
}

// Publish captures a fresh epoch from src and makes it current,
// returning it. It must only be called from the round-driving goroutine
// (single writer); after Close it is a no-op returning nil.
func (p *Publisher) Publish(src Source) *Epoch {
	if p.closed.Load() {
		return nil
	}
	p.seq++
	ep := Capture(src, p.k, p.seq)
	p.cur.Store(ep)
	return ep
}

// Current returns the most recently published epoch, nil before the
// first Publish (warming) and nil again after Close (draining) — use
// Closed to tell the two apart. Safe from any goroutine.
func (p *Publisher) Current() *Epoch {
	if p.closed.Load() {
		return nil
	}
	return p.cur.Load()
}

// Closed reports whether Close has been called.
func (p *Publisher) Closed() bool { return p.closed.Load() }

// Close starts the drain: Current returns nil, Publish becomes a no-op,
// and the frontend answers 503 "draining". Idempotent, safe from any
// goroutine; it does not wait for in-flight readers (they hold their own
// epoch pointers and finish unharmed).
func (p *Publisher) Close() { p.closed.Store(true) }

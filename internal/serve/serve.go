// Package serve turns a running Polystyrene engine into a live overlay
// service: while the round loop advances on one goroutine, any number of
// concurrent readers answer point lookups, neighbour queries and node
// inspections against an epoch-published read snapshot.
//
// The paper's whole point is a data shape that keeps answering queries
// *while* dying and recovering; this package is the serving half of that
// claim. The design is copy-on-publish:
//
//   - Once per round, at the engine's post-barrier publish point
//     (sim.Engine.SetPublishHook — after every layer has stepped and every
//     observer has run, so the engine is quiescent and all deferred
//     per-round work is flushed), the driver copies the read state into a
//     fresh immutable Epoch: live positions, a compact K-nearest router
//     view, the live-only holders index and per-node guest/ghost counts.
//   - The Publisher swaps the new epoch in with one atomic pointer store.
//     Readers load the pointer, query the immutable arrays, and never
//     acquire a lock the round loop can hold; the loop never waits for a
//     reader. Superseded epochs are garbage-collected once the last
//     reader drops them.
//
// Staleness contract: a reader sees the state as of the end of some
// completed round — at most one round behind the loop, and internally
// consistent (positions, topology and holders all from the same round).
// Every query answer carries the epoch's sequence number and round so
// staleness is observable end to end.
//
// The HTTP frontend (Frontend) exposes the epoch queries as a JSON API;
// loadgen (a subpackage) drives it with a deterministic closed-loop load
// generator recording HDR-style latency histograms. cmd/polyserve wires
// both around a phase-driven engine for a churn-and-catastrophe serving
// soak.
package serve

import (
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// Source is the state a Capture copies an Epoch from: the read surface of
// a running system (the polystyrene.System facade and scenario.Scenario
// both provide one). All methods are called from the round-driving
// goroutine while the engine is quiescent, so implementations need no
// locking; buffers returned by AppendLive-style methods are copied before
// Capture returns.
type Source interface {
	// Space is the metric data space (shared, immutable).
	Space() space.Space
	// Round is the engine round counter at capture time. Inside the
	// post-barrier publish hook this is the index of the round that just
	// completed; for an eager pre-run capture it is 0.
	Round() int
	// NumNodes bounds the dense NodeID range ever allocated.
	NumNodes() int
	// AppendLive appends all live node IDs in ascending order.
	AppendLive(dst []sim.NodeID) []sim.NodeID
	// Position returns a live node's current virtual position. The point
	// is copied during capture; it only needs to stay valid for the call.
	Position(id sim.NodeID) space.Point
	// EachNeighbor visits up to k closest overlay neighbours of a live
	// node in increasing distance order (the core.Topology visitor form).
	EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool)
	// NumGuests and NumGhosts count a node's primary and replica points.
	NumGuests(id sim.NodeID) int
	NumGhosts(id sim.NodeID) int
	// NumPoints is the size of the interned data-point universe, and
	// EachGuestID visits the interned IDs of a node's guest points.
	// Sources without a Polystyrene layer (plain-overlay baselines)
	// return 0 and visit nothing: the epoch then serves positions and
	// topology only, with an empty holders index.
	NumPoints() int
	EachGuestID(id sim.NodeID, fn func(pid space.PointID))
}

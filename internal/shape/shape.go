// Package shape generates the data-point sets that define target
// topologies — the "decentralized data shapes" of the paper's title. The
// evaluation uses a regular torus grid, but the mechanism is
// shape-agnostic: the set of initial data points *is* the shape
// (Sec. III-A), so anything expressible as points in a metric space can be
// maintained. This package provides generators for the common cases
// (grids, rings, clusters, crosses, spheres, uniform clouds) used by the
// examples and the generality tests.
package shape

import (
	"math"

	"polystyrene/internal/space"
	"polystyrene/internal/xrand"
)

// Grid is the paper's w x h torus grid with the given step (re-exported
// here so shape consumers need a single import).
func Grid(w, h int, step float64) []space.Point {
	return space.TorusGrid(w, h, step)
}

// Intern registers a generated shape into the interner and returns the
// points' dense IDs in lockstep. Shape generators produce the fixed data
// universe of a system (the shape *is* the point set, Sec. III-A), so the
// whole universe is interned once at setup — the intern-before-use
// invariant the ID-keyed protocol layers rely on (see space.Interner).
// Points must already be canonical for the target space.
func Intern(in *space.Interner, pts []space.Point) []space.PointID {
	return in.InternAll(pts)
}

// Ring returns n points evenly spaced on a 1D ring.
func Ring(n int, circumference float64) []space.Point {
	return space.RingPoints(n, circumference)
}

// Clusters returns Gaussian blobs: for each centre, perCluster points
// drawn from an isotropic normal with the given standard deviation. This
// is the semantic-community shape of recommendation overlays.
func Clusters(centers []space.Point, perCluster int, stddev float64, rng *xrand.Rand) []space.Point {
	if perCluster <= 0 || len(centers) == 0 {
		return nil
	}
	out := make([]space.Point, 0, len(centers)*perCluster)
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			p := make(space.Point, len(c))
			for d := range c {
				p[d] = c[d] + stddev*rng.NormFloat64()
			}
			out = append(out, p)
		}
	}
	return out
}

// Cross returns a plus-sign shape centred in a w x h box: points along the
// horizontal and vertical centre lines with the given step. Non-convex
// shapes like this exercise the medoid projection (a centroid would fall
// off the shape at the junction).
func Cross(w, h, step float64) []space.Point {
	if w <= 0 || h <= 0 || step <= 0 {
		return nil
	}
	var out []space.Point
	cy := h / 2
	for x := 0.0; x < w; x += step {
		out = append(out, space.Point{x, cy})
	}
	cx := w / 2
	for y := 0.0; y < h; y += step {
		if y == cy {
			continue // junction already present
		}
		out = append(out, space.Point{cx, y})
	}
	return out
}

// Sphere returns n points approximately evenly distributed on the surface
// of a 3D sphere (Fibonacci lattice) with the given radius, centred at the
// origin — a shape for 3D Euclidean deployments.
func Sphere(n int, radius float64) []space.Point {
	if n <= 0 || radius <= 0 {
		return nil
	}
	out := make([]space.Point, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		y := 1 - 2*float64(i)/float64(maxInt(n-1, 1))
		r := math.Sqrt(math.Max(0, 1-y*y))
		theta := golden * float64(i)
		out[i] = space.Point{
			radius * r * math.Cos(theta),
			radius * y,
			radius * r * math.Sin(theta),
		}
	}
	return out
}

// UniformTorus returns n points drawn uniformly at random on the torus.
func UniformTorus(n int, t space.Torus, rng *xrand.Rand) []space.Point {
	if n <= 0 {
		return nil
	}
	out := make([]space.Point, n)
	for i := range out {
		p := make(space.Point, t.Dim())
		for d := range p {
			p[d] = rng.Float64() * t.Width(d)
		}
		out[i] = p
	}
	return out
}

// Profile builds the interest profile of user u of community c (for a
// space of `topics` 0/1 topics split among `communities`): the
// community's shared topic core — topics/communities consecutive topics
// — plus one per-user variation topic outside the core, so community
// members are mutually close under Hamming distance but not identical.
// This is the semantic-overlay shape of decentralized recommendation
// (Gossple, WhatsUp; the paper's Sec. II-B), and the profile formula of
// examples/profiles and polyserve -profiles.
func Profile(c, u, topics, communities int) space.Point {
	core := topics / communities
	p := make(space.Point, topics)
	for t := 0; t < core; t++ {
		p[c*core+t] = 1
	}
	p[(c*core+core+u%(topics-core))%topics] = 1
	return p
}

// ProfileCore returns community c's canonical core profile (the shared
// topics only) — the query point for "how reachable is this interest
// region in the overlay".
func ProfileCore(c, topics, communities int) space.Point {
	core := topics / communities
	p := make(space.Point, topics)
	for t := 0; t < core; t++ {
		p[c*core+t] = 1
	}
	return p
}

// Profiles returns the full profile shape: usersPerCommunity Profile
// vectors for each of the communities, community-by-community (node i
// is user i%usersPerCommunity of community i/usersPerCommunity). It
// lives on Hamming(topics). Degenerate parameters (no users, no
// communities, fewer topics than communities) return nil.
func Profiles(usersPerCommunity, topics, communities int) []space.Point {
	if usersPerCommunity <= 0 || communities <= 0 || topics <= communities {
		return nil
	}
	out := make([]space.Point, 0, communities*usersPerCommunity)
	for c := 0; c < communities; c++ {
		for u := 0; u < usersPerCommunity; u++ {
			out = append(out, Profile(c, u, topics, communities))
		}
	}
	return out
}

// BoundingTorus returns a torus just enclosing the points' coordinate
// ranges (with the given margin per dimension), convenient for wrapping an
// arbitrary 2D shape into a modular space.
func BoundingTorus(points []space.Point, margin float64) space.Torus {
	if len(points) == 0 {
		return space.NewTorus(1, 1)
	}
	dim := len(points[0])
	maxs := make([]float64, dim)
	for _, p := range points {
		for d, c := range p {
			if c > maxs[d] {
				maxs[d] = c
			}
		}
	}
	widths := make([]float64, dim)
	for d := range widths {
		widths[d] = maxs[d] + margin
		if widths[d] <= 0 {
			widths[d] = margin
		}
	}
	return space.NewTorus(widths...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package shape

import (
	"math"
	"testing"

	"polystyrene/internal/core"
	"polystyrene/internal/fd"
	"polystyrene/internal/metrics"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/tman"
	"polystyrene/internal/xrand"
)

func TestGridAndRingDelegate(t *testing.T) {
	if len(Grid(4, 3, 1)) != 12 {
		t.Fatal("Grid size")
	}
	if len(Ring(7, 70)) != 7 {
		t.Fatal("Ring size")
	}
}

func TestClusters(t *testing.T) {
	rng := xrand.New(1)
	centers := []space.Point{{0, 0}, {100, 100}}
	pts := Clusters(centers, 50, 2, rng)
	if len(pts) != 100 {
		t.Fatalf("points = %d", len(pts))
	}
	// Points must sit near their own centre, far from the other.
	for i, p := range pts {
		c := centers[i/50]
		d := math.Hypot(p[0]-c[0], p[1]-c[1])
		if d > 12 { // 6 sigma
			t.Fatalf("point %d at distance %v from its centre", i, d)
		}
	}
	if Clusters(nil, 5, 1, rng) != nil || Clusters(centers, 0, 1, rng) != nil {
		t.Fatal("degenerate clusters not nil")
	}
}

func TestCross(t *testing.T) {
	pts := Cross(10, 10, 1)
	if len(pts) == 0 {
		t.Fatal("empty cross")
	}
	// Every point lies on one of the two centre lines.
	for _, p := range pts {
		if p[0] != 5 && p[1] != 5 {
			t.Fatalf("point %v off the cross arms", p)
		}
	}
	// No duplicate at the junction.
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p.Key()] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p.Key()] = true
	}
	if Cross(0, 1, 1) != nil {
		t.Fatal("degenerate cross not nil")
	}
}

func TestSphere(t *testing.T) {
	pts := Sphere(200, 5)
	if len(pts) != 200 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		r := math.Sqrt(p[0]*p[0] + p[1]*p[1] + p[2]*p[2])
		if math.Abs(r-5) > 1e-9 {
			t.Fatalf("point %v at radius %v, want 5", p, r)
		}
	}
	// Roughly balanced hemispheres.
	north := 0
	for _, p := range pts {
		if p[1] > 0 {
			north++
		}
	}
	if north < 80 || north > 120 {
		t.Fatalf("northern hemisphere holds %d of 200", north)
	}
	if Sphere(0, 1) != nil || Sphere(1, 0) != nil {
		t.Fatal("degenerate sphere not nil")
	}
}

func TestUniformTorus(t *testing.T) {
	tor := space.NewTorus(10, 20)
	pts := UniformTorus(500, tor, xrand.New(2))
	if len(pts) != 500 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p[0] < 0 || p[0] >= 10 || p[1] < 0 || p[1] >= 20 {
			t.Fatalf("point %v out of torus", p)
		}
	}
	if UniformTorus(0, tor, xrand.New(1)) != nil {
		t.Fatal("degenerate cloud not nil")
	}
}

func TestInternRegistersGeneratedShape(t *testing.T) {
	in := space.NewInterner()
	pts := Cross(25, 20, 0.5)
	ids := Intern(in, pts)
	if len(ids) != len(pts) || in.Len() != len(pts) {
		t.Fatalf("interned %d IDs / %d points for a %d-point shape",
			len(ids), in.Len(), len(pts))
	}
	for i, id := range ids {
		if !in.PointOf(id).Equal(pts[i]) {
			t.Fatalf("ID %d resolves to %v, want %v", id, in.PointOf(id), pts[i])
		}
	}
	// Re-interning the same shape is a no-op (same IDs, no growth).
	again := Intern(in, pts)
	for i := range ids {
		if again[i] != ids[i] {
			t.Fatalf("re-intern changed ID %d: %d -> %d", i, ids[i], again[i])
		}
	}
	if in.Len() != len(pts) {
		t.Fatalf("re-intern grew the universe to %d", in.Len())
	}
}

func TestBoundingTorus(t *testing.T) {
	pts := []space.Point{{3, 8}, {7, 2}}
	tor := BoundingTorus(pts, 1)
	if tor.Width(0) != 8 || tor.Width(1) != 9 {
		t.Fatalf("widths = %v,%v", tor.Width(0), tor.Width(1))
	}
	empty := BoundingTorus(nil, 1)
	if empty.Dim() != 2 {
		t.Fatal("empty bounding torus malformed")
	}
}

// TestCrossShapeSurvivesCatastrophe is the generality check behind the
// paper's title: the maintained shape need not be a grid. Build a cross,
// crash one arm, and verify the survivors re-form the whole cross.
func TestCrossShapeSurvivesCatastrophe(t *testing.T) {
	pts := Cross(20, 20, 0.5)
	tor := BoundingTorus(pts, 4)
	sampler := rps.New(rps.Config{})
	var poly *core.Protocol
	tm := tman.MustNew(tman.Config{
		Space:   tor,
		Sampler: sampler,
		Position: func(id sim.NodeID) space.Point {
			return poly.Position(id)
		},
	})
	poly = core.MustNew(core.Config{
		Space:    tor,
		Topology: tm,
		Sampler:  sampler,
		Detector: fd.Perfect{},
		K:        6,
		InitialPoint: func(id sim.NodeID) (space.Point, bool) {
			return pts[id], true
		},
	})
	e := sim.New(42, sampler, tm, poly)
	e.AddNodes(len(pts))
	e.RunRounds(15)

	// Crash the entire right arm of the horizontal bar (x > 12.5).
	for _, id := range e.LiveIDs() {
		if poly.Position(id)[0] > 12.5 {
			e.Kill(id)
		}
	}
	e.RunRounds(25)

	sys := shapeSystem{e: e, poly: poly, tor: tor, tm: tm}
	hom := metrics.Homogeneity(sys, pts)
	// Cross spacing is 0.5 and the survivors cover ~60 points with ~45
	// nodes; each original point should be hosted within ~one spacing.
	if hom > 0.75 {
		t.Fatalf("cross shape not recovered: homogeneity %v", hom)
	}
	// The dead arm must be repopulated.
	rightArm := 0
	for _, id := range e.LiveIDs() {
		if p := poly.Position(id); p[0] > 12.5 && p[1] == 10 {
			rightArm++
		}
	}
	if rightArm == 0 {
		t.Fatal("no survivor migrated onto the crashed arm")
	}
}

// shapeSystem adapts the hand-built stack to metrics.System.
type shapeSystem struct {
	e    *sim.Engine
	poly *core.Protocol
	tor  space.Torus
	tm   *tman.Protocol
}

func (s shapeSystem) Space() space.Space                 { return s.tor }
func (s shapeSystem) Live() []sim.NodeID                 { return s.e.LiveIDs() }
func (s shapeSystem) Alive(id sim.NodeID) bool           { return s.e.Alive(id) }
func (s shapeSystem) Position(id sim.NodeID) space.Point { return s.poly.Position(id) }
func (s shapeSystem) Guests(id sim.NodeID) []space.Point { return s.poly.Guests(id) }
func (s shapeSystem) NumGuests(id sim.NodeID) int        { return s.poly.NumGuests(id) }
func (s shapeSystem) NumGhosts(id sim.NodeID) int        { return s.poly.NumGhosts(id) }
func (s shapeSystem) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	s.tm.EachNeighbor(id, k, yield)
}

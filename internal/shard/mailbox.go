package shard

import "sort"

// Deferred identifies one cross-shard exchange postponed to the round
// barrier: the step at index Step of the round's shuffled order, whose
// planned conflict set (initiator, selected peer, backup targets) spans
// the initiator's Home shard and at least the foreign shard Away (the
// lowest-numbered one when several are crossed). The step itself is not
// stored — its randomness is pinned by the engine's pre-split per-step
// seed, so replaying the step index at the barrier reproduces it exactly.
type Deferred struct {
	Step int
	Home ID
	Away ID
}

// Mailbox accumulates the current round's deferred cross-shard
// exchanges, one queue per ordered (home, away) shard pair — the unit a
// distributed deployment would ship between engines at the barrier. The
// zero value is ready to use; queues and their backing arrays are
// retained across rounds, so a steady-state round allocates nothing.
type Mailbox struct {
	idx    map[uint64]int // pair key -> queue slot
	queues [][]Deferred
	total  int
}

func pairKey(home, away ID) uint64 {
	return uint64(uint32(home))<<32 | uint64(uint32(away))
}

// Defer enqueues one deferred exchange into its (home, away) pair queue.
func (m *Mailbox) Defer(d Deferred) {
	if m.idx == nil {
		m.idx = make(map[uint64]int)
	}
	key := pairKey(d.Home, d.Away)
	slot, ok := m.idx[key]
	if !ok {
		slot = len(m.queues)
		m.idx[key] = slot
		m.queues = append(m.queues, nil)
	}
	m.queues[slot] = append(m.queues[slot], d)
	m.total++
}

// Len returns how many exchanges are currently deferred.
func (m *Mailbox) Len() int { return m.total }

// NumPairs returns how many (home, away) shard pairs have ever exchanged
// mailbox traffic (queues are retained when emptied).
func (m *Mailbox) NumPairs() int { return len(m.queues) }

// Drain appends every deferred exchange to dst in the canonical barrier
// order — ascending home shard, then ascending step index — empties the
// mailbox (retaining queue capacity) and returns the extended slice. The
// round is implicit: one Drain call ends one round's mailbox, so the
// documented (round, shard, step) replay order is Drain-call order, then
// the order within the returned slice. Draining is deterministic: the
// order depends only on the deferred set, never on queue or map layout.
func (m *Mailbox) Drain(dst []Deferred) []Deferred {
	if m.total == 0 {
		return dst
	}
	base := len(dst)
	for i := range m.queues {
		dst = append(dst, m.queues[i]...)
		m.queues[i] = m.queues[i][:0]
	}
	m.total = 0
	out := dst[base:]
	sort.Slice(out, func(i, j int) bool {
		if out[i].Home != out[j].Home {
			return out[i].Home < out[j].Home
		}
		return out[i].Step < out[j].Step
	})
	return dst
}

package shard

import (
	"reflect"
	"testing"
)

// TestMailboxCanonicalDrainOrder pins the barrier replay order: whatever
// order exchanges were deferred in — interleaved across pairs, out of
// step order within a pair (later waves defer earlier step indices) —
// Drain yields ascending (home shard, step index).
func TestMailboxCanonicalDrainOrder(t *testing.T) {
	var m Mailbox
	in := []Deferred{
		{Step: 40, Home: 1, Away: 2},
		{Step: 7, Home: 3, Away: 0},
		{Step: 12, Home: 1, Away: 0},
		{Step: 3, Home: 1, Away: 2}, // deferred after step 40: waves reorder
		{Step: 99, Home: 0, Away: 1},
		{Step: 2, Home: 0, Away: 3},
	}
	for _, d := range in {
		m.Defer(d)
	}
	if m.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(in))
	}
	got := m.Drain(nil)
	want := []Deferred{
		{Step: 2, Home: 0, Away: 3},
		{Step: 99, Home: 0, Away: 1},
		{Step: 3, Home: 1, Away: 2},
		{Step: 12, Home: 1, Away: 0},
		{Step: 40, Home: 1, Away: 2},
		{Step: 7, Home: 3, Away: 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain order:\n got %v\nwant %v", got, want)
	}
	if m.Len() != 0 {
		t.Fatalf("mailbox not empty after drain: %d", m.Len())
	}
}

// TestMailboxReuse pins the steady-state contract: a drained mailbox is
// empty, retains its pair queues, and the next round's deferrals land
// cleanly; Drain appends to the caller's buffer.
func TestMailboxReuse(t *testing.T) {
	var m Mailbox
	m.Defer(Deferred{Step: 1, Home: 0, Away: 1})
	m.Defer(Deferred{Step: 2, Home: 1, Away: 0})
	if got := m.Drain(nil); len(got) != 2 {
		t.Fatalf("first drain: %v", got)
	}
	if m.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d after drain, want 2 (queues retained)", m.NumPairs())
	}

	m.Defer(Deferred{Step: 5, Home: 1, Away: 0})
	buf := []Deferred{{Step: 0, Home: 9, Away: 9}} // pre-existing content survives
	got := m.Drain(buf)
	if len(got) != 2 || got[0].Home != 9 || got[1].Step != 5 {
		t.Fatalf("append-drain = %v", got)
	}
	if m.NumPairs() != 2 {
		t.Fatalf("reusing a pair queue grew NumPairs to %d", m.NumPairs())
	}
	if m.Drain(nil) != nil {
		t.Fatal("empty mailbox drained non-nil")
	}
}

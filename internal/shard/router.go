// Package shard splits one simulated torus across several engines. It is
// the topology layer behind the ROADMAP's "break the 10^6-node barrier"
// item: the paper's gossip exchanges are pair-atomic and geometrically
// local, so a cell can be cut into regions whose interior traffic never
// interacts, leaving only boundary exchanges to reconcile at round
// barriers.
//
// The package is deliberately a leaf: it depends only on the geometry
// (internal/space), never on the engine. Three pieces compose:
//
//   - Router maps grid cells to shards, derived from the cell
//     configuration alone (W, H, Step, shard count) via the grid's cell
//     inverses — every shard computes the identical map with no
//     coordination or exchanged state.
//   - Mailbox collects the exchanges whose conflict set crosses a shard
//     boundary, one queue per (home, away) shard pair, and drains them in
//     a canonical order at the barrier.
//   - Topology is the provider split the harness wires: a single-engine
//     cell and a sharded cell answer the same questions behind one
//     interface, and the config's -shards knob selects which.
//
// The execution half — classifying steps as interior or boundary and
// actually running shards concurrently — lives in internal/sim
// (Engine.SetShardMap), which consumes this package.
package shard

import (
	"fmt"

	"polystyrene/internal/space"
)

// ID identifies one shard (one engine's region) of a sharded cell.
type ID int32

// Router deterministically maps the cells of a W x H torus grid to
// shards. The partition is vertical bands of equal width: shard s owns
// cells with cx in [s*W/shards, (s+1)*W/shards). Bands follow the grid's
// row-major emission order (a contiguous x-range is the "consecutive
// portion of the topology" idiom used throughout the codebase), and they
// nest: when s1 divides s2, every s2-band lies inside exactly one
// s1-band, which is what makes interior-only traffic produce identical
// trajectories across shard counts that tile evenly.
//
// A Router is pure configuration — two routers built from equal
// parameters are interchangeable, so every shard of a distributed
// deployment derives the same map locally.
type Router struct {
	w, h   int
	step   float64
	shards int
	band   int // cells per vertical band (w / shards)
}

// NewRouter returns the router of a w x h grid with the given step split
// into shards vertical bands. The shard count must divide w so bands tile
// the torus evenly; anything else is a configuration error.
func NewRouter(w, h int, step float64, shards int) (*Router, error) {
	if w <= 0 || h <= 0 || step <= 0 {
		return nil, fmt.Errorf("shard: router requires positive grid dimensions and step (got %dx%d step %g)", w, h, step)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1 (got %d)", shards)
	}
	if w%shards != 0 {
		return nil, fmt.Errorf("shard: %d shards do not tile a width-%d grid evenly (width %% shards must be 0)", shards, w)
	}
	return &Router{w: w, h: h, step: step, shards: shards, band: w / shards}, nil
}

// Shards returns the number of shards the router partitions into.
func (r *Router) Shards() int { return r.shards }

// Grid returns the grid configuration the router was derived from.
func (r *Router) Grid() (w, h int, step float64) { return r.w, r.h, r.step }

// CellOf returns the grid cell a position falls in, wrapping aliased
// coordinates into the fundamental domain first (space.GridCell).
func (r *Router) CellOf(p space.Point) (cx, cy int) {
	return space.GridCell(p, r.w, r.h, r.step)
}

// ShardOfCell returns the shard owning grid cell (cx, cy).
func (r *Router) ShardOfCell(cx, cy int) ID {
	if cx < 0 || cx >= r.w || cy < 0 || cy >= r.h {
		panic(fmt.Sprintf("shard: cell (%d,%d) outside %dx%d grid", cx, cy, r.w, r.h))
	}
	return ID(cx / r.band)
}

// ShardOf returns the shard owning the grid cell that position p falls
// in.
func (r *Router) ShardOf(p space.Point) ID {
	cx, cy := r.CellOf(p)
	return r.ShardOfCell(cx, cy)
}

// Boundary reports whether grid cell (cx, cy) touches a shard boundary:
// at least one of its torus-adjacent cells belongs to a different shard.
// Exchanges initiated from interior cells can only conflict within their
// own shard; boundary cells are where cross-shard mailbox traffic
// originates.
func (r *Router) Boundary(cx, cy int) bool {
	own := r.ShardOfCell(cx, cy)
	left := r.ShardOfCell((cx+r.w-1)%r.w, cy)
	right := r.ShardOfCell((cx+1)%r.w, cy)
	return left != own || right != own
}

// AppendNeighborShards appends the distinct foreign shards adjacent to
// grid cell (cx, cy) — the shards of its torus-neighbouring cells minus
// its own — to dst in ascending order and returns the extended slice.
// Interior cells append nothing. Adjacency is symmetric: cell a lists
// cell b's shard iff b lists a's, which is what lets both sides of a
// boundary agree on their mailbox pairs without coordination.
func (r *Router) AppendNeighborShards(dst []ID, cx, cy int) []ID {
	own := r.ShardOfCell(cx, cy)
	left := r.ShardOfCell((cx+r.w-1)%r.w, cy)
	right := r.ShardOfCell((cx+1)%r.w, cy)
	// Vertical bands make cy irrelevant and leave at most two distinct
	// foreign shards (left and right neighbours of the band).
	lo, hi := left, right
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != own {
		dst = append(dst, lo)
	}
	if hi != own && hi != lo {
		dst = append(dst, hi)
	}
	return dst
}

package shard

import (
	"testing"

	"polystyrene/internal/space"
)

// tilings lists (w, h, shards) configurations whose bands tile evenly,
// covering the paper grid widths the sweeps use.
var tilings = []struct{ w, h, shards int }{
	{16, 8, 2}, {16, 8, 4}, {20, 10, 2}, {20, 10, 4},
	{40, 20, 2}, {40, 20, 4}, {40, 20, 8}, {80, 40, 4}, {80, 40, 16},
}

// TestRouterPartition is the property test of the router's core
// contract: every grid cell maps to exactly one shard in range, shards
// partition the grid into equal vertical bands, and two independently
// constructed routers from the same configuration agree cell for cell —
// the "derive the same map from config alone" property a distributed
// deployment relies on.
func TestRouterPartition(t *testing.T) {
	for _, tc := range tilings {
		r, err := NewRouter(tc.w, tc.h, 1, tc.shards)
		if err != nil {
			t.Fatalf("NewRouter(%d,%d,1,%d): %v", tc.w, tc.h, tc.shards, err)
		}
		r2, err := NewRouter(tc.w, tc.h, 1, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, tc.shards)
		for cy := 0; cy < tc.h; cy++ {
			for cx := 0; cx < tc.w; cx++ {
				s := r.ShardOfCell(cx, cy)
				if s < 0 || int(s) >= tc.shards {
					t.Fatalf("%dx%d/%d: cell (%d,%d) -> shard %d out of range", tc.w, tc.h, tc.shards, cx, cy, s)
				}
				if s2 := r2.ShardOfCell(cx, cy); s2 != s {
					t.Fatalf("independently built routers disagree at (%d,%d): %d vs %d", cx, cy, s, s2)
				}
				counts[s]++
			}
		}
		want := tc.w * tc.h / tc.shards
		for s, n := range counts {
			if n != want {
				t.Fatalf("%dx%d/%d: shard %d owns %d cells, want %d (bands must be equal)", tc.w, tc.h, tc.shards, s, n, want)
			}
		}
	}
}

// TestRouterBoundarySymmetry pins that boundary cells enumerate the same
// neighbor-shard set from both sides: for every pair of torus-adjacent
// cells in different shards, each cell's neighbor-shard enumeration
// contains the other's shard. This is what lets both engines of a
// boundary agree on their mailbox pairs without coordination.
func TestRouterBoundarySymmetry(t *testing.T) {
	for _, tc := range tilings {
		r, err := NewRouter(tc.w, tc.h, 1, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		var nbs []ID
		contains := func(set []ID, s ID) bool {
			for _, v := range set {
				if v == s {
					return true
				}
			}
			return false
		}
		for cy := 0; cy < tc.h; cy++ {
			for cx := 0; cx < tc.w; cx++ {
				own := r.ShardOfCell(cx, cy)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx := (cx + d[0] + tc.w) % tc.w
					ny := (cy + d[1] + tc.h) % tc.h
					other := r.ShardOfCell(nx, ny)
					if other == own {
						continue
					}
					nbs = r.AppendNeighborShards(nbs[:0], cx, cy)
					if !contains(nbs, other) {
						t.Fatalf("%dx%d/%d: cell (%d,%d) in shard %d does not list adjacent shard %d (neighbors %v)",
							tc.w, tc.h, tc.shards, cx, cy, own, other, nbs)
					}
					back := r.AppendNeighborShards(nil, nx, ny)
					if !contains(back, own) {
						t.Fatalf("%dx%d/%d: asymmetric boundary: (%d,%d) lists %d but (%d,%d) does not list %d",
							tc.w, tc.h, tc.shards, cx, cy, other, nx, ny, own)
					}
					if !r.Boundary(cx, cy) || !r.Boundary(nx, ny) {
						t.Fatalf("cells (%d,%d)/(%d,%d) straddle shards %d/%d but are not both boundary", cx, cy, nx, ny, own, other)
					}
				}
				if len(r.AppendNeighborShards(nil, cx, cy)) == 0 && r.Boundary(cx, cy) {
					t.Fatalf("cell (%d,%d) is boundary but enumerates no neighbor shards", cx, cy)
				}
			}
		}
	}
}

// TestRouterRefinement pins the nesting property behind cross-count
// byte-identity: when s1 divides s2 (both tiling the grid evenly), every
// s2-band lies inside exactly one s1-band — concretely, the coarse shard
// of any cell is its fine shard scaled down. Interior conflict sets at
// the finest count are therefore interior at every coarser count.
func TestRouterRefinement(t *testing.T) {
	const w, h = 80, 40
	counts := []int{1, 2, 4, 8, 16}
	routers := make([]*Router, len(counts))
	for i, s := range counts {
		var err error
		if routers[i], err = NewRouter(w, h, 1, s); err != nil {
			t.Fatal(err)
		}
	}
	for i, coarse := range counts {
		for j, fine := range counts {
			if fine%coarse != 0 {
				continue
			}
			ratio := ID(fine / coarse)
			for cy := 0; cy < h; cy++ {
				for cx := 0; cx < w; cx++ {
					got := routers[i].ShardOfCell(cx, cy)
					want := routers[j].ShardOfCell(cx, cy) / ratio
					if got != want {
						t.Fatalf("cell (%d,%d): %d-shard map %d does not refine to %d-shard map %d",
							cx, cy, fine, routers[j].ShardOfCell(cx, cy), coarse, got)
					}
				}
			}
		}
	}
}

// TestRouterCellInverse pins routing through positions: a point anywhere
// inside a cell — the exact grid point, the reinjection wave's
// half-offset, and torus-aliased coordinates — routes to that cell's
// shard via the grid cell inverse.
func TestRouterCellInverse(t *testing.T) {
	r, err := NewRouter(20, 10, 2, 4) // step 2: cells are 2x2
	if err != nil {
		t.Fatal(err)
	}
	for cy := 0; cy < 10; cy++ {
		for cx := 0; cx < 20; cx++ {
			want := r.ShardOfCell(cx, cy)
			exact := space.Point{float64(cx) * 2, float64(cy) * 2}
			offset := space.Point{float64(cx)*2 + 1, float64(cy)*2 + 1}
			aliased := space.Point{float64(cx)*2 - 40, float64(cy)*2 + 20}
			for _, p := range []space.Point{exact, offset, aliased} {
				if got := r.ShardOf(p); got != want {
					t.Fatalf("point %v routes to shard %d, want cell (%d,%d)'s shard %d", p, got, cx, cy, want)
				}
			}
		}
	}
}

// TestRouterRejectsUnevenTiling pins the configuration error: shard
// counts that do not divide the grid width are refused at construction,
// never silently rounded.
func TestRouterRejectsUnevenTiling(t *testing.T) {
	if _, err := NewRouter(20, 10, 1, 3); err == nil {
		t.Fatal("3 shards over width 20 should not construct")
	}
	if _, err := NewRouter(20, 10, 1, 0); err == nil {
		t.Fatal("0 shards should not construct")
	}
	if _, err := NewRouter(0, 10, 1, 2); err == nil {
		t.Fatal("empty grid should not construct")
	}
	if _, err := ForGrid(20, 10, 1, 3); err == nil {
		t.Fatal("ForGrid must surface the router error")
	}
}

// TestTopologyProviders pins the provider split: both topologies answer
// the same interface, the single-engine provider has no router, and
// ForGrid selects by shard count.
func TestTopologyProviders(t *testing.T) {
	single, err := ForGrid(80, 40, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Name() != "single" || single.Shards() != 1 || single.Router() != nil {
		t.Fatalf("single provider = %q/%d/%v", single.Name(), single.Shards(), single.Router())
	}
	sharded, err := ForGrid(80, 40, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Name() != "sharded" || sharded.Shards() != 4 || sharded.Router() == nil {
		t.Fatalf("sharded provider = %q/%d/%v", sharded.Name(), sharded.Shards(), sharded.Router())
	}
	if w, h, step := sharded.Router().Grid(); w != 80 || h != 40 || step != 1 {
		t.Fatalf("router grid = %dx%d step %g", w, h, step)
	}
}

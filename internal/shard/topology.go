package shard

// Topology is the provider split between the two execution topologies a
// cell can run on: one engine owning the whole torus, or several engines
// each owning a vertical band and reconciling boundary traffic at round
// barriers. Both providers answer the same questions behind this
// interface, and the harness wires whichever the configuration selects
// (-shards N on the CLIs) — the stateless-vs-coordinated provider shape,
// so callers never branch on the topology kind.
type Topology interface {
	// Name identifies the provider in logs and experiment records.
	Name() string
	// Shards returns how many engines the cell is split across (1 for
	// the single-engine provider).
	Shards() int
	// Router returns the cell's shard router, nil for the single-engine
	// provider (there are no boundaries to route around).
	Router() *Router
}

// SingleEngine is the default topology: the whole torus on one engine.
type SingleEngine struct{}

func (SingleEngine) Name() string    { return "single" }
func (SingleEngine) Shards() int     { return 1 }
func (SingleEngine) Router() *Router { return nil }

// Sharded is the multi-engine topology driven by a Router.
type Sharded struct{ router *Router }

// NewSharded returns the sharded topology over r.
func NewSharded(r *Router) Sharded { return Sharded{router: r} }

func (s Sharded) Name() string    { return "sharded" }
func (s Sharded) Shards() int     { return s.router.Shards() }
func (s Sharded) Router() *Router { return s.router }

// ForGrid selects the topology of a w x h cell with the given step:
// SingleEngine for shards <= 1, otherwise a Sharded topology whose
// router must tile the grid evenly.
func ForGrid(w, h int, step float64, shards int) (Topology, error) {
	if shards <= 1 {
		return SingleEngine{}, nil
	}
	r, err := NewRouter(w, h, step, shards)
	if err != nil {
		return nil, err
	}
	return NewSharded(r), nil
}

package sim

import "testing"

// noopLayer isolates engine scheduling overhead from protocol work.
type noopLayer struct{ name string }

func (n noopLayer) Name() string             { return n.name }
func (n noopLayer) InitNode(*Engine, NodeID) {}
func (n noopLayer) Step(*Engine, NodeID)     {}

// chargeLayer stresses the meter hot path.
type chargeLayer struct{}

func (chargeLayer) Name() string             { return "charge" }
func (chargeLayer) InitNode(*Engine, NodeID) {}
func (chargeLayer) Step(e *Engine, _ NodeID) { e.Charge(3) }

// BenchmarkRunRoundsScheduling measures pure per-round scheduling cost —
// the once-per-round shuffle into the reused order buffer, walked by
// three layers — at the paper's full 51,200-node scale.
func BenchmarkRunRoundsScheduling(b *testing.B) {
	e := New(1, noopLayer{"a"}, noopLayer{"b"}, noopLayer{"c"})
	e.AddNodes(51200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkMeterCharge measures the flat-ledger charge path.
func BenchmarkMeterCharge(b *testing.B) {
	e := New(2, chargeLayer{})
	e.AddNodes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkRandomLiveAfterCatastrophe measures live-node sampling when
// 99% of the fleet is dead — the regime right after the paper's
// correlated failure, where a scanning implementation degrades.
func BenchmarkRandomLiveAfterCatastrophe(b *testing.B) {
	e := New(3, noopLayer{"a"})
	e.AddNodes(51200)
	for id := NodeID(0); id < 50688; id++ {
		e.Kill(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.RandomLive() == None {
			b.Fatal("empty system")
		}
	}
}

// BenchmarkLiveIDsAfterCatastrophe measures live-set enumeration in the
// same mostly-dead regime: cost must scale with survivors, not history.
func BenchmarkLiveIDsAfterCatastrophe(b *testing.B) {
	e := New(4, noopLayer{"a"})
	e.AddNodes(51200)
	for id := NodeID(0); id < 50688; id++ {
		e.Kill(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.LiveIDs()) != 512 {
			b.Fatal("wrong live count")
		}
	}
}

// BenchmarkKill measures crash bookkeeping (swap-remove) including the
// re-add path, by alternating kill waves with reinjection.
func BenchmarkKill(b *testing.B) {
	e := New(5, noopLayer{"a"})
	ids := e.AddNodes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.KillAll(ids)
		b.StopTimer()
		ids = e.AddNodes(8192)
		b.StartTimer()
	}
}

package sim

import (
	"testing"
)

// gossipish is a toy protocol that exercises every engine facility that
// feeds the deterministic trajectory: per-round step order, RandomLive
// draws, kills, and meter charges.
type gossipish struct {
	name  string
	trace *fnv64Trace
}

func (g *gossipish) Name() string             { return g.name }
func (g *gossipish) InitNode(*Engine, NodeID) {}

func (g *gossipish) Step(e *Engine, id NodeID) {
	g.trace.add(uint64(id))
	peer := e.RandomLive()
	g.trace.add(uint64(peer) + 1)
	e.Charge(int(id%5) + 1)
	// Light deterministic churn: node 13 assassinates its random peer
	// every third round, exercising mid-round kills.
	if id == 13 && e.Round()%3 == 0 && peer != id {
		e.Kill(peer)
	}
}

// fnv64Trace folds a sequence of values into one FNV-1a fingerprint.
type fnv64Trace struct{ h uint64 }

func newTrace() *fnv64Trace { return &fnv64Trace{h: 14695981039346656037} }

func (t *fnv64Trace) add(v uint64) {
	for i := 0; i < 8; i++ {
		t.h ^= v & 0xff
		t.h *= 1099511628211
		v >>= 8
	}
}

// goldenRun executes a fixed scripted simulation and fingerprints its
// full observable trajectory: step order across layers and rounds, kill
// effects, live counts, and meter ledgers.
func goldenRun() uint64 {
	trace := newTrace()
	bottom := &gossipish{name: "bottom", trace: trace}
	top := &gossipish{name: "top", trace: trace}
	e := New(0xdecafbad, bottom, top)
	e.AddNodes(64)
	if err := e.ScheduleAt(2, func(e *Engine) {
		for id := NodeID(20); id < 40; id++ {
			e.Kill(id)
		}
	}); err != nil {
		panic(err)
	}
	if err := e.ScheduleAt(5, func(e *Engine) { e.AddNodes(8) }); err != nil {
		panic(err)
	}
	e.Observe(func(e *Engine, round int) { trace.add(uint64(e.NumLive())) })
	e.RunRounds(10)

	for _, id := range e.LiveIDs() {
		trace.add(uint64(id))
	}
	for _, layer := range []string{"bottom", "top", "external"} {
		trace.add(uint64(e.Meter().TotalCost(layer)))
		for r := 0; r < 10; r++ {
			trace.add(uint64(e.Meter().RoundCost(layer, r)))
		}
	}
	return trace.h
}

// goldenTrajectory is the fingerprint of goldenRun under the current
// engine. It pins the exact seeded behaviour — step-order policy (one
// shuffle per round shared by all layers), the O(1) RandomLive draw
// discipline, swap-remove kill bookkeeping, and meter attribution — so
// any engine change that silently alters simulation results fails here
// rather than surfacing as mysteriously shifted experiment curves. If a
// deliberate engine-semantics change lands, update the constant and note
// the trajectory break in CHANGES.md.
const goldenTrajectory uint64 = 0xa0fb816899d749a1

func TestGoldenTrajectory(t *testing.T) {
	a, b := goldenRun(), goldenRun()
	if a != b {
		t.Fatalf("same-process reruns diverged: %#x vs %#x", a, b)
	}
	if a != goldenTrajectory {
		t.Fatalf("engine trajectory changed: got %#x, golden %#x\n"+
			"(intentional engine-semantics changes must update goldenTrajectory)", a, goldenTrajectory)
	}
}

func TestGoldenTrajectorySeedSensitivity(t *testing.T) {
	// The fingerprint must actually depend on the seed — otherwise the
	// golden test would pass vacuously.
	trace := newTrace()
	e := New(0xfeedface, &gossipish{name: "bottom", trace: trace})
	e.AddNodes(64)
	e.RunRounds(10)
	if trace.h == goldenTrajectory {
		t.Fatal("different seed reproduced the golden fingerprint")
	}
}

package sim

// Intra-round parallel exchange batching.
//
// The paper's gossip exchanges are pair-wise atomic: one step touches the
// initiator, its selected peer and (for Polystyrene's backup push) a few
// replication targets, and nothing else. Steps whose touched node sets are
// disjoint therefore commute, and a round can be partitioned into batches
// of mutually node-disjoint steps that execute concurrently without
// changing any result.
//
// The scheduler below does exactly that, while keeping the same-seed
// determinism contract: for a fixed seed, results are byte-identical at
// every worker count. Three mechanisms carry that guarantee:
//
//   - Pre-split randomness. Before a layer's batched pass, the engine
//     draws one 64-bit seed per step from its own stream, in step order.
//     Step i always runs against the stream Reseed(seed[i]) regardless of
//     which worker executes it or which batch it lands in.
//   - Deterministic greedy matching. Steps are scanned in the round's
//     shuffled order; each is planned (PlanStep predicts its conflict
//     set against current state, consuming a throwaway copy of the step's
//     stream) and admitted to the open batch iff its conflict set is
//     disjoint from every admitted step's. Conflicting steps wait for the
//     next batch and are re-planned. The partition depends only on the
//     step order and the (deterministic) plans — never on worker count.
//   - Barriers with ordered flushes. A batch executes across the worker
//     pool, then the engine waits, flushes deferred per-worker state
//     (meter charges, the core layer's holder-index ops, applied in step
//     order) and only then opens the next batch.
//
// The worker pool is persistent: SetExchangeParallelism(n) keeps n-1 pool
// goroutines (the engine goroutine itself executes as worker slot 0)
// parked on per-worker wake channels across batches, rounds and even
// Engine.Reset, so dispatching a batch costs a few channel operations
// instead of goroutine spawns. Batches below a threshold — the tail of a
// round, where the greedy matcher is down to a handful of conflicting
// stragglers — are coalesced onto the inline slot-0 path and skip the
// dispatch entirely (see SetTailCoalescing); because admitted steps are
// node-disjoint and randomness is pre-split, the execution vehicle is
// unobservable and results stay byte-identical with coalescing on or off,
// at every worker count, and across pool resizes.
//
// Execution replays the plan: StepW re-derives the selected peer from the
// same stream state PlanStep saw, so the plan stores nothing and the two
// cannot drift without tripping the StepCtx.Touch assertion, which panics
// the moment a step touches a node outside its planned conflict set.
//
// The batched trajectory is a different (equally valid) trajectory from
// the legacy sequential one — pre-splitting changes the draw sequence — so
// batching is opt-in via SetExchangeParallelism. With it off, the engine
// byte-for-byte reproduces the golden-pinned sequential behaviour.

import (
	"fmt"
	"sync/atomic"

	"polystyrene/internal/genset"
	"polystyrene/internal/xrand"
)

// StepCtx is the execution context of one protocol step. In a batched
// round each worker owns one, carrying the step's pre-split random stream
// and the worker's scratch-slot index; in the legacy sequential round the
// engine's shared seqCtx (whose stream is the engine generator itself) is
// passed instead, so protocol code written against StepCtx behaves
// byte-identically in both modes.
type StepCtx struct {
	e       *Engine
	rng     *xrand.Rand
	worker  int
	step    int
	planned []NodeID
	cost    int
	batched bool
}

// Engine returns the engine this step runs in.
func (c *StepCtx) Engine() *Engine { return c.e }

// Rand returns the step's deterministic random stream. Protocol code must
// draw all randomness from it (never from Engine.Rand) so that batched
// steps are independent of scheduling.
func (c *StepCtx) Rand() *xrand.Rand { return c.rng }

// Worker returns the scratch-slot index of the executing worker. Slot 0
// is the sequential engine's slot; batched workers use [0, workers); the
// matcher plans on protocols' dedicated plan scratch, not a slot.
func (c *StepCtx) Worker() int { return c.worker }

// StepIndex returns the step's position in the round's shuffled order
// (meaningful in batched rounds; 0 in sequential ones). Protocols key
// deferred per-step state on it so barriers can apply it in step order.
func (c *StepCtx) StepIndex() int { return c.step }

// Batched reports whether this step runs under the batch scheduler (and
// must defer cross-cutting mutations to its layer's FlushBatch).
func (c *StepCtx) Batched() bool { return c.batched }

// Charge records communication cost for the executing layer. Sequential
// steps charge the meter directly; batched steps accumulate locally and
// the engine flushes the per-worker sums at the batch barrier (addition
// commutes, so ledgers are identical at every worker count).
func (c *StepCtx) Charge(units int) {
	if !c.batched {
		c.e.Charge(units)
		return
	}
	c.cost += units
}

// RandomLive returns a uniformly random live node drawn from the step's
// stream, or None when the system is empty — Engine.RandomLive for
// protocol code running under a StepCtx.
func (c *StepCtx) RandomLive() NodeID {
	if len(c.e.live) == 0 {
		return None
	}
	return c.e.live[c.rng.Intn(len(c.e.live))]
}

// Touch asserts that node id belongs to the step's planned conflict set.
// Batched protocols call it at every point where they are about to read
// or mutate another node's layer state; a plan/execution divergence —
// the one bug class that could silently break determinism — then panics
// deterministically instead of racing. Sequential steps have no plan and
// Touch is a no-op.
func (c *StepCtx) Touch(id NodeID) {
	if c.planned == nil {
		return
	}
	for _, v := range c.planned {
		if v == id {
			return
		}
	}
	panic(fmt.Sprintf("sim: step %d (node %d) touched node %d outside its planned conflict set %v",
		c.step, c.e.order[c.step], id, c.planned))
}

// Batched is the optional extension a Protocol implements to run its
// rounds under the batch scheduler. Implementations must guarantee that
// StepW(ctx, id) reads and writes layer state only of the nodes PlanStep
// reported (plus engine-global state that is frozen during a round:
// liveness, the live set, positions snapshotted by the layer), and that
// all randomness comes from ctx.Rand().
type Batched interface {
	Protocol

	// Batchable reports whether the layer can currently run batched (e.g.
	// the Polystyrene layer declines when configured with a failure
	// detector whose answers are not parallel-safe). Non-batchable layers
	// fall back to the sequential path inside an otherwise parallel round.
	Batchable() bool

	// BeginBatchedRound is called once before the layer's batched pass,
	// in the engine goroutine. The layer sizes its per-worker scratch for
	// the given pool size and may snapshot state that concurrent steps
	// read outside their conflict sets (core snapshots node positions).
	BeginBatchedRound(e *Engine, workers int)

	// PlanStep appends the conflict set of the upcoming StepW(ctx, id) to
	// dst and returns the extended slice: every node whose layer-local
	// state (in this layer or one below) the step may read or write,
	// including id itself. rng is a throwaway stream seeded identically
	// to the one StepW will receive; PlanStep must not mutate any
	// protocol state and must predict peer selection by mirroring the
	// exchange's selection prefix draw-for-draw.
	//
	// Selection may depend ONLY on id's own layer state plus state frozen
	// for the whole pass (liveness, the live set, snapshotted positions):
	// the engine caches plans across batch barriers and re-plans a step
	// only after an executed batch touched the step's own node. Reading
	// another node's mutable state during selection would make cached
	// plans stale — which is also why implementations may hand their
	// plan's draw-free selection work (e.g. a ranked candidate window)
	// to StepW through a per-node cache instead of recomputing it.
	PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID

	// StepW is Step under the batch scheduler: randomness from
	// ctx.Rand(), pooled scratch from slot ctx.Worker(), meter charges
	// via ctx.Charge, and cross-cutting mutations deferred to FlushBatch.
	StepW(ctx *StepCtx, id NodeID)

	// FlushBatch is called at each batch barrier, in the engine
	// goroutine, to apply mutations the workers deferred (in step order,
	// so results are independent of how steps were scheduled).
	FlushBatch(e *Engine)

	// EndBatchedRound is called after the layer's last batch of the
	// round, before observers run (core drops its position snapshot).
	EndBatchedRound(e *Engine)
}

// WindowCache hands a planned step's ranked candidate window (a draw-free
// selection such as the ψ closest overlay neighbours) from PlanStep to
// StepW: a flat arena of width+1 slots per node — [count, ids...] —
// written single-threaded at plan time and read only by the node's own
// step, which the engine guarantees executes under its latest plan. The
// zero value is ready to use at a fixed width.
type WindowCache struct {
	width int
	slots []NodeID
}

// NewWindowCache returns a cache holding up to width candidates per node.
func NewWindowCache(width int) WindowCache {
	return WindowCache{width: width}
}

// Put stores node id's ranked window; len(sel) must not exceed the width.
func (c *WindowCache) Put(id NodeID, sel []NodeID) {
	w := c.width + 1
	for len(c.slots) < (int(id)+1)*w {
		c.slots = append(c.slots, None)
	}
	slot := c.slots[int(id)*w : (int(id)+1)*w]
	slot[0] = NodeID(len(sel))
	copy(slot[1:], sel)
}

// Append appends node id's cached window to dst and returns it.
func (c *WindowCache) Append(dst []NodeID, id NodeID) []NodeID {
	w := c.width + 1
	slot := c.slots[int(id)*w : (int(id)+1)*w]
	return append(dst, slot[1:1+int(slot[0])]...)
}

// PlanInvariant is an optional marker a Batched layer implements when its
// PlanStep output is invariant for the whole pass even for nodes that
// executed batches touched — i.e. selection reads nothing an exchange of
// this layer mutates (only pass-frozen snapshots and state mutated
// exclusively by the node's own step). The engine then never re-plans a
// deferred step of that layer. The Polystyrene layer qualifies: its
// partner window ranks snapshotted positions over the (frozen) overlay
// views, and its random-peer draws read the initiator's own sampling
// view, which no other Polystyrene step touches. The gossip layers do
// not: an exchange rewrites its partner's view, which feeds the
// partner's own future selection.
type PlanInvariant interface {
	PlanInvariant() bool
}

// SetExchangeParallelism configures intra-round exchange batching: n >= 1
// runs every Batchable layer's pass through the batch scheduler on n
// workers; n <= 0 (the default) keeps the legacy sequential engine.
//
// For a fixed seed, results are byte-identical across all n >= 1 — worker
// count is a throughput knob, not a semantic one — but the batched
// trajectory differs from the sequential one (randomness is pre-split per
// step instead of drawn from one shared stream), so 0 and 1 are different
// runs. Call it before RunRounds or between rounds, never mid-round;
// resizing between rounds never changes results.
//
// The call resizes the engine's persistent worker pool to n-1 parked
// goroutines (the engine goroutine executes as worker slot 0). Shrinking
// joins the retired goroutines before returning; an engine configured
// with n >= 2 holds pool goroutines until SetExchangeParallelism(1 or 0)
// or Close releases them.
func (e *Engine) SetExchangeParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.exWorkers = n
	for len(e.wctx) < n {
		e.wctx = append(e.wctx, &StepCtx{e: e, rng: xrand.New(0), worker: len(e.wctx), batched: true})
	}
	e.resizePool(n - 1)
}

// SetTailCoalescing sets the smallest batch size worth dispatching to the
// worker pool: batches with fewer admitted steps — typically the tail of
// a round, where only conflicting stragglers remain — execute inline on
// the engine goroutine (worker slot 0) and skip the wake/park round-trip.
// minBatch == 1 disables coalescing (every batch is dispatched while the
// pool is non-empty); minBatch <= 0 restores the default of twice the
// worker count. The threshold is a pure throughput knob: the batch
// partition is unchanged and admitted steps are node-disjoint, so results
// are byte-identical at every setting.
func (e *Engine) SetTailCoalescing(minBatch int) {
	if minBatch < 0 {
		minBatch = 0
	}
	e.coalesceMin = minBatch
}

// TailCoalescing returns the configured coalescing threshold (0 = the
// default of twice the worker count).
func (e *Engine) TailCoalescing() int { return e.coalesceMin }

// dispatchMin returns the effective smallest batch size handed to the
// pool; smaller batches run inline on slot 0.
func (e *Engine) dispatchMin() int {
	if e.coalesceMin != 0 {
		return e.coalesceMin
	}
	return 2 * (len(e.pool.workers) + 1)
}

// Close releases the engine's pool goroutines (joining them before it
// returns) and is idempotent. The engine stays usable — batched passes
// simply execute inline on the engine goroutine, which is byte-identical
// — and a later SetExchangeParallelism call re-spawns the pool. Call it
// when discarding an engine configured with exchange parallelism >= 2, or
// its parked workers outlive the engine's last use.
func (e *Engine) Close() { e.resizePool(0) }

// exWorker is one parked pool goroutine: wake hands it the open batch
// (closing the channel retires it), exited confirms it is gone.
type exWorker struct {
	wake   chan struct{}
	exited chan struct{}
}

// exPool is the engine's persistent exchange-worker pool. The engine
// goroutine doubles as worker slot 0, so workers[i] executes with step
// context e.wctx[i+1]; bp and next carry the open batch's layer and claim
// counter from the dispatching engine to the woken workers (the wake send
// publishes them, the done receive collects the workers' writes).
type exPool struct {
	workers []*exWorker
	done    chan struct{}
	next    atomic.Int64
	bp      Batched
}

// resizePool grows or shrinks the pool to n parked goroutines. Shrinking
// closes the retired workers' wake channels and waits for each to exit,
// so callers observe real goroutine counts (no leak window). Never call
// it mid-round: workers must be parked.
func (e *Engine) resizePool(n int) {
	if n < 0 {
		n = 0
	}
	p := &e.pool
	if p.done == nil {
		p.done = make(chan struct{})
	}
	for len(p.workers) < n {
		w := &exWorker{wake: make(chan struct{}, 1), exited: make(chan struct{})}
		p.workers = append(p.workers, w)
		go e.poolWorker(e.wctx[len(p.workers)], w)
	}
	for len(p.workers) > n {
		w := p.workers[len(p.workers)-1]
		close(w.wake)
		<-w.exited
		p.workers = p.workers[:len(p.workers)-1]
	}
}

// poolWorker is the body of one pool goroutine: park on wake, drain the
// open batch, report done, park again. It exits when wake is closed.
func (e *Engine) poolWorker(ctx *StepCtx, w *exWorker) {
	defer close(w.exited)
	for range w.wake {
		e.runBatchSteps(e.pool.bp, ctx)
		e.pool.done <- struct{}{}
	}
}

// runBatchSteps claims steps of the open batch off the shared counter and
// executes them under ctx until the batch is drained. The claiming order
// is nondeterministic, which is safe precisely because admitted steps are
// node-disjoint.
func (e *Engine) runBatchSteps(bp Batched, ctx *StepCtx) {
	bs := &e.bs
	for {
		k := int(e.pool.next.Add(1)) - 1
		if k >= len(bs.batch) {
			break
		}
		pe := bs.batch[k]
		ctx.rng.Reseed(bs.seeds[pe.si])
		ctx.planned = bs.arena[pe.off : pe.off+pe.n]
		ctx.step = int(pe.si)
		bp.StepW(ctx, e.order[pe.si])
	}
	ctx.planned = nil
}

// ExchangeParallelism returns the configured exchange worker count (0 =
// sequential legacy engine).
func (e *Engine) ExchangeParallelism() int { return e.exWorkers }

// pendStep is one not-yet-executed step of the current pass, together
// with its cached plan: arena[off:off+n] is the planned conflict set when
// valid. Plans stay valid across batches because PlanStep may only read
// the initiator's own layer state plus pass-frozen state, so a cached
// plan is only invalidated when an executed batch touches the step's own
// node.
type pendStep struct {
	si    int32
	off   int32
	n     int32
	valid bool
}

// batchState is the engine's pooled scheduling scratch, reused across
// rounds and layers.
type batchState struct {
	seeds   []uint64    // per-step streams, drawn up front in step order
	pending []pendStep  // steps not yet executed, with cached plans
	batch   []pendStep  // steps admitted to the open batch
	arena   []NodeID    // conflict-set storage for the pass (append-only)
	touched genset.Set  // nodes claimed by the open batch
	planRng *xrand.Rand // throwaway stream handed to PlanStep
}

// runBatched executes one layer's pass over the round's step order under
// the batch scheduler. Called with e.curLayer already set to the layer's
// ledger slot.
func (e *Engine) runBatched(bp Batched) {
	n := len(e.order)
	if n == 0 {
		return
	}
	bs := &e.bs
	if bs.planRng == nil {
		bs.planRng = xrand.New(0)
	}

	// Draw every step's stream seed up front, in step order, from the
	// engine's own stream: step i's randomness is fixed before any
	// scheduling decision exists.
	bs.seeds = bs.seeds[:0]
	for i := 0; i < n; i++ {
		bs.seeds = append(bs.seeds, e.rng.Uint64())
	}

	bp.BeginBatchedRound(e, e.exWorkers)
	invariant := false
	if pi, ok := bp.(PlanInvariant); ok {
		invariant = pi.PlanInvariant()
	}

	bs.pending, bs.arena = bs.pending[:0], bs.arena[:0]
	for i := 0; i < n; i++ {
		if e.alive[e.order[i]] {
			bs.pending = append(bs.pending, pendStep{si: int32(i)})
		}
	}

	for len(bs.pending) > 0 {
		// Greedy matching: admit every pending step (in step order) whose
		// planned conflict set is disjoint from the batch so far;
		// conflicting steps wait for a later batch. Plans are computed
		// lazily and cached: a deferred step is only re-planned when an
		// executed batch touched its own node (see pendStep).
		touched, gen := bs.touched.Next(e.NumNodes())
		bs.batch = bs.batch[:0]
		keep := bs.pending[:0]
		for k := range bs.pending {
			pe := bs.pending[k]
			if !pe.valid {
				bs.planRng.Reseed(bs.seeds[pe.si])
				off := int32(len(bs.arena))
				bs.arena = bp.PlanStep(e, bs.planRng, e.order[pe.si], bs.arena)
				pe.off, pe.n, pe.valid = off, int32(len(bs.arena))-off, true
			}
			cs := bs.arena[pe.off : pe.off+pe.n]
			conflict := false
			for _, c := range cs {
				if touched[c] == gen {
					conflict = true
					break
				}
			}
			if conflict {
				keep = append(keep, pe)
				continue
			}
			for _, c := range cs {
				touched[c] = gen
			}
			bs.batch = append(bs.batch, pe)
		}
		bs.pending = keep

		e.execBatch(bp)
		bp.FlushBatch(e)

		// Invalidate cached plans whose own node this batch touched: its
		// layer-local state may have changed, so selection must re-run.
		// Conflicts through *other* planned nodes (a claimed partner or
		// backup target) leave the plan valid — selection never reads the
		// partner's state, only the initiator's — and a PlanInvariant
		// layer's plans survive even own-node touches.
		if !invariant {
			for k := range bs.pending {
				if touched[e.order[bs.pending[k].si]] == gen {
					bs.pending[k].valid = false
				}
			}
		}
	}
	bp.EndBatchedRound(e)
}

// execBatch steps every admitted step of the open batch and waits at the
// barrier. Batches of at least dispatchMin steps wake helpers from the
// persistent pool (the engine claims steps too, as slot 0); smaller ones
// — the coalesced tail — run inline on slot 0 with no dispatch at all.
// Per-worker meter charges are flushed after the barrier (sums commute).
func (e *Engine) execBatch(bp Batched) {
	bs := &e.bs
	n := len(bs.batch)
	if n == 0 {
		return
	}
	helpers := len(e.pool.workers)
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers > 0 && n >= e.dispatchMin() {
		e.pool.bp = bp
		e.pool.next.Store(0)
		for w := 0; w < helpers; w++ {
			e.pool.workers[w].wake <- struct{}{}
		}
		e.runBatchSteps(bp, e.wctx[0])
		for w := 0; w < helpers; w++ {
			<-e.pool.done
		}
	} else {
		ctx := e.wctx[0]
		for _, pe := range bs.batch {
			ctx.rng.Reseed(bs.seeds[pe.si])
			ctx.planned = bs.arena[pe.off : pe.off+pe.n]
			ctx.step = int(pe.si)
			bp.StepW(ctx, e.order[pe.si])
		}
		ctx.planned = nil
	}
	for _, ctx := range e.wctx {
		if ctx.cost != 0 {
			e.meter.charge(e.curLayer, e.round, ctx.cost)
			ctx.cost = 0
		}
	}
}

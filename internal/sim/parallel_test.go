package sim

import (
	"sync"
	"testing"

	"polystyrene/internal/xrand"
)

// pairProto is a scripted batched protocol that exercises the scheduler
// the way the real gossip layers do: every step draws a partner from its
// step stream, mutates both nodes' state and charges the meter. It
// instruments execution to let the tests check the scheduler's two core
// invariants (node-disjoint batches, every live step executed exactly
// once) and the determinism contract.
type pairProto struct {
	name string
	vals []uint64

	mu         sync.Mutex
	batchNodes map[NodeID]int // node -> claiming step, for the open batch
	execCount  map[NodeID]int // per-round execution counter
	batchSizes []int          // admitted steps per batch
	fail       func(string, ...any)
}

var _ Batched = (*pairProto)(nil)

func newPairProto(name string, fail func(string, ...any)) *pairProto {
	return &pairProto{
		name:       name,
		batchNodes: make(map[NodeID]int),
		execCount:  make(map[NodeID]int),
		fail:       fail,
	}
}

func (p *pairProto) Name() string { return p.name }

func (p *pairProto) InitNode(e *Engine, id NodeID) {
	for len(p.vals) <= int(id) {
		p.vals = append(p.vals, uint64(len(p.vals))*0x9e3779b97f4a7c15)
	}
}

// pickPeer draws the exchange partner: a uniformly random live node other
// than the initiator. Used identically by the plan mirror and the step.
func (p *pairProto) pickPeer(e *Engine, rng *xrand.Rand, id NodeID) NodeID {
	if e.NumLive() < 2 {
		return None
	}
	for {
		if q := e.LiveAt(rng.Intn(e.NumLive())); q != id {
			return q
		}
	}
}

func (p *pairProto) Step(e *Engine, id NodeID) { p.StepW(e.SeqCtx(), id) }

func (p *pairProto) StepW(ctx *StepCtx, id NodeID) {
	e := ctx.Engine()
	p.noteExec(ctx, id)
	q := p.pickPeer(e, ctx.Rand(), id)
	if q == None {
		return
	}
	ctx.Touch(q)
	p.note(ctx, id, q)
	// The exchange: an order-insensitive-within-disjoint-batches mix of
	// the pair's states.
	a, b := p.vals[id], p.vals[q]
	p.vals[id] = a*1099511628211 ^ b
	p.vals[q] = b*1099511628211 ^ a ^ uint64(ctx.Rand().Intn(1<<30))
	ctx.Charge(int(id%7) + 1)
}

// noteExec counts the step's execution for the exactly-once coverage
// check — before peer selection, so a step that finds no live partner
// (a near-empty system) still registers.
func (p *pairProto) noteExec(ctx *StepCtx, id NodeID) {
	if !ctx.Batched() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.execCount[id]++
}

// note records the step's touched nodes and fails the test if the open
// batch already claimed either (i.e. the scheduler admitted conflicting
// steps).
func (p *pairProto) note(ctx *StepCtx, id, q NodeID) {
	if !ctx.Batched() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range []NodeID{id, q} {
		if prev, dup := p.batchNodes[n]; dup {
			p.fail("batch admitted steps %d and %d both touching node %d", prev, ctx.StepIndex(), n)
		}
		p.batchNodes[n] = ctx.StepIndex()
	}
}

func (p *pairProto) Batchable() bool                          { return true }
func (p *pairProto) BeginBatchedRound(e *Engine, workers int) {}

func (p *pairProto) PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID {
	dst = append(dst, id)
	if q := p.pickPeer(e, rng, id); q != None {
		dst = append(dst, q)
	}
	return dst
}

func (p *pairProto) FlushBatch(e *Engine) {
	p.batchSizes = append(p.batchSizes, len(p.batchNodes)/2)
	clear(p.batchNodes)
}

func (p *pairProto) EndBatchedRound(e *Engine) {}

func (p *pairProto) fingerprint() uint64 {
	t := newTrace()
	for _, v := range p.vals {
		t.add(v)
	}
	return t.h
}

// runPairSim drives a churny scripted run at the given worker count and
// returns the protocol for inspection.
func runPairSim(t *testing.T, workers int) (*pairProto, *Engine) {
	t.Helper()
	proto := newPairProto("pairs", func(format string, args ...any) { t.Errorf(format, args...) })
	e := New(0xfeedbeef, proto)
	e.SetExchangeParallelism(workers)
	e.AddNodes(300)
	if err := e.ScheduleAt(3, func(e *Engine) {
		for id := NodeID(40); id < 190; id++ {
			e.Kill(id)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(6, func(e *Engine) { e.AddNodes(75) }); err != nil {
		t.Fatal(err)
	}
	observeExactlyOnce(t, e, proto)
	t.Cleanup(e.Close)
	e.RunRounds(10)
	return proto, e
}

// observeExactlyOnce registers the exactly-once-per-round coverage check:
// every live node steps exactly once, every round.
func observeExactlyOnce(t testing.TB, e *Engine, proto *pairProto) {
	e.Observe(func(e *Engine, round int) {
		proto.mu.Lock()
		defer proto.mu.Unlock()
		if len(proto.execCount) != e.NumLive() {
			t.Errorf("round %d: %d nodes stepped, %d live", round, len(proto.execCount), e.NumLive())
		}
		for id, n := range proto.execCount {
			if n != 1 {
				t.Errorf("round %d: node %d stepped %d times", round, id, n)
			}
		}
		clear(proto.execCount)
	})
}

// TestBatchedCoverageAndDisjointness pins the matcher's two invariants on
// a churny run: every live node steps exactly once per round (checked by
// the observer above), batches never admit two steps touching the same
// node (checked by note), and the batches actually partition the work
// into multi-step groups rather than degenerating to one step per batch.
func TestBatchedCoverageAndDisjointness(t *testing.T) {
	proto, _ := runPairSim(t, 4)
	if len(proto.batchSizes) == 0 {
		t.Fatal("no batches recorded")
	}
	max := 0
	for _, s := range proto.batchSizes {
		if s > max {
			max = s
		}
	}
	if max < 8 {
		t.Errorf("largest batch held %d steps; matching is degenerating", max)
	}
}

// TestBatchedWorkerCountInvariance pins the determinism contract: for a
// fixed seed, node state and meter ledgers are byte-identical at every
// worker count, including the inline single-worker scheduler.
func TestBatchedWorkerCountInvariance(t *testing.T) {
	protoRef, eRef := runPairSim(t, 1)
	ref := protoRef.fingerprint()
	refCost := eRef.Meter().TotalCost("pairs")
	if refCost == 0 {
		t.Fatal("reference run charged nothing")
	}
	for _, workers := range []int{2, 3, 8} {
		proto, e := runPairSim(t, workers)
		if got := proto.fingerprint(); got != ref {
			t.Errorf("workers=%d: state fingerprint %#x, want %#x", workers, got, ref)
		}
		if got := e.Meter().TotalCost("pairs"); got != refCost {
			t.Errorf("workers=%d: total cost %d, want %d", workers, got, refCost)
		}
		for r := 0; r < 10; r++ {
			if got, want := e.Meter().RoundCost("pairs", r), eRef.Meter().RoundCost("pairs", r); got != want {
				t.Errorf("workers=%d round %d: cost %d, want %d", workers, r, got, want)
			}
		}
	}
}

// rogueProto plans {id} but then touches another node — the plan/exec
// divergence Touch exists to catch.
type rogueProto struct{ pairProto }

func (p *rogueProto) PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID {
	return append(dst, id) // lies: omits the partner
}

func (p *rogueProto) Batchable() bool { return true }

// TestTouchCatchesPlanDivergence pins the safety net: a protocol whose
// executed step touches a node missing from its planned conflict set must
// panic deterministically instead of corrupting a concurrent run.
func TestTouchCatchesPlanDivergence(t *testing.T) {
	proto := &rogueProto{}
	proto.name = "rogue"
	proto.batchNodes = make(map[NodeID]int)
	proto.execCount = make(map[NodeID]int)
	proto.fail = func(string, ...any) {}
	e := New(7, proto)
	e.SetExchangeParallelism(1) // inline scheduler: the panic surfaces here
	e.AddNodes(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected Touch to panic on an unplanned node")
		}
	}()
	e.RunRounds(1)
}

package sim

import (
	"runtime"
	"testing"
	"time"

	"polystyrene/internal/xrand"
)

// churnyPairSim assembles the scripted churny run of runPairSim without
// executing it, so tests can drive rounds and resize the pool themselves.
func churnyPairSim(t testing.TB, seed uint64, nodes, workers int) (*pairProto, *Engine) {
	t.Helper()
	proto := newPairProto("pairs", func(format string, args ...any) { t.Errorf(format, args...) })
	e := New(seed, proto)
	e.SetExchangeParallelism(workers)
	e.AddNodes(nodes)
	if err := e.ScheduleAt(3, func(e *Engine) {
		for id := NodeID(nodes / 8); id < NodeID(nodes*5/8); id++ {
			e.Kill(id)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(6, func(e *Engine) { e.AddNodes(nodes / 4) }); err != nil {
		t.Fatal(err)
	}
	observeExactlyOnce(t, e, proto)
	t.Cleanup(e.Close)
	return proto, e
}

// waitGoroutines retries until the process goroutine count settles at
// want: a retired pool worker has confirmed its exit before resizePool
// returns, but the runtime may decrement the count a moment later.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := runtime.NumGoroutine(); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine count = %d, want %d", got, want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerPoolLifecycle pins the persistent pool's goroutine
// accounting: SetExchangeParallelism(n) parks exactly n-1 workers, they
// stay parked across rounds (no per-batch spawns), resizing down joins
// the retired workers, and Close (idempotent) releases them all — no
// leak, asserted via runtime.NumGoroutine deltas.
func TestWorkerPoolLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	_, e := churnyPairSim(t, 0xfeedbeef, 240, 6)
	waitGoroutines(t, base+5)

	e.RunRounds(4)
	waitGoroutines(t, base+5) // parked between rounds, not respawned

	e.SetExchangeParallelism(2)
	waitGoroutines(t, base+1)
	e.RunRounds(2)

	e.SetExchangeParallelism(8)
	waitGoroutines(t, base+7)
	e.RunRounds(2)

	e.Close()
	waitGoroutines(t, base)
	e.Close() // idempotent
	waitGoroutines(t, base)

	// A closed engine stays usable: batched passes execute inline.
	e.RunRounds(2)
	waitGoroutines(t, base)

	// And re-configuring re-spawns a fresh pool.
	e.SetExchangeParallelism(3)
	waitGoroutines(t, base+2)
	e.RunRounds(1)
}

// TestWorkerPoolResizeMidRunByteIdentical pins that resizing the pool
// between rounds — up, down, to sequential-batched (1) and back — leaves
// the trajectory byte-identical to a constant-worker run: the partition
// and the pre-split randomness never depend on the pool size.
func TestWorkerPoolResizeMidRunByteIdentical(t *testing.T) {
	protoRef, eRef := churnyPairSim(t, 0xfeedbeef, 240, 1)
	eRef.RunRounds(10)
	ref := protoRef.fingerprint()

	schedule := map[int]int{1: 4, 3: 2, 5: 8, 7: 1, 8: 3}
	proto, e := churnyPairSim(t, 0xfeedbeef, 240, 2)
	e.Observe(func(e *Engine, round int) {
		if w, ok := schedule[round]; ok {
			e.SetExchangeParallelism(w)
		}
	})
	e.RunRounds(10)
	if got := proto.fingerprint(); got != ref {
		t.Errorf("resized run fingerprint %#x, want %#x", got, ref)
	}
	for r := 0; r < 10; r++ {
		if got, want := e.Meter().RoundCost("pairs", r), eRef.Meter().RoundCost("pairs", r); got != want {
			t.Errorf("round %d: cost %d, want %d", r, got, want)
		}
	}
}

// TestTailCoalescingByteIdentical pins the coalescing knob's determinism
// contract: for a fixed seed, results are identical with coalescing off
// (minBatch 1), at the default threshold, at an aggressive threshold and
// with every batch coalesced (huge threshold: the pool is never woken) —
// across worker counts. The partition is unchanged; only the execution
// vehicle differs.
func TestTailCoalescingByteIdentical(t *testing.T) {
	run := func(workers, minBatch int) uint64 {
		proto, e := churnyPairSim(t, 0xabcdef99, 300, workers)
		e.SetTailCoalescing(minBatch)
		e.RunRounds(10)
		return proto.fingerprint()
	}
	ref := run(1, 1)
	for _, workers := range []int{1, 2, 4} {
		for _, minBatch := range []int{1, 0, 8, 1 << 20} {
			if got := run(workers, minBatch); got != ref {
				t.Errorf("workers=%d minBatch=%d: fingerprint %#x, want %#x",
					workers, minBatch, got, ref)
			}
		}
	}
}

// quietProto is pairProto's uninstrumented twin for allocation
// measurements: same exchange physics, no mutex, no maps, no recording.
type quietProto struct {
	vals []uint64
}

var _ Batched = (*quietProto)(nil)

func (p *quietProto) Name() string { return "quiet" }

func (p *quietProto) InitNode(e *Engine, id NodeID) {
	for len(p.vals) <= int(id) {
		p.vals = append(p.vals, uint64(len(p.vals))*0x9e3779b97f4a7c15)
	}
}

func (p *quietProto) Step(e *Engine, id NodeID) { p.StepW(e.SeqCtx(), id) }

func (p *quietProto) StepW(ctx *StepCtx, id NodeID) {
	e := ctx.Engine()
	if e.NumLive() < 2 {
		return
	}
	var q NodeID
	for {
		if q = e.LiveAt(ctx.Rand().Intn(e.NumLive())); q != id {
			break
		}
	}
	ctx.Touch(q)
	a, b := p.vals[id], p.vals[q]
	p.vals[id] = a*1099511628211 ^ b
	p.vals[q] = b*1099511628211 ^ a
	ctx.Charge(1)
}

func (p *quietProto) Batchable() bool                          { return true }
func (p *quietProto) BeginBatchedRound(e *Engine, workers int) {}

func (p *quietProto) PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID {
	dst = append(dst, id)
	if e.NumLive() < 2 {
		return dst
	}
	for {
		if q := e.LiveAt(rng.Intn(e.NumLive())); q != id {
			return append(dst, q)
		}
	}
}

func (p *quietProto) FlushBatch(e *Engine)      {}
func (p *quietProto) EndBatchedRound(e *Engine) {}

// TestBatchSchedulerSteadyStateAllocs pins the tentpole's allocation
// contract: a warmed batched round spawns no goroutines and allocates
// O(1) — the pool is persistent and every scheduling buffer is pooled.
// (The PR 4 scheduler spawned per-batch goroutines: tens of allocations
// per round at this scale, hundreds at 51,200 nodes.)
func TestBatchSchedulerSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("AllocsPerRun is unreliable under -race; the race step runs -short")
	}
	proto := &quietProto{}
	e := New(99, proto)
	e.SetExchangeParallelism(4)
	defer e.Close()
	e.AddNodes(1024)
	e.RunRounds(5) // warm every pooled buffer
	avg := testing.AllocsPerRun(20, func() { e.RunRounds(1) })
	// The only allowed steady-state growth is the meter ledger's
	// amortised one-entry-per-round append.
	if avg > 4 {
		t.Errorf("steady-state batched round allocates %.1f objects/round, want O(1)", avg)
	}
}

// FuzzBatchCoalesce drives the scripted exchange protocol over fuzzed
// (worker count, coalescing threshold, population, churn) and pins the
// scheduler's invariants at every point: batches stay node-disjoint and
// every live node steps exactly once per round (pairProto's checks), and
// the final state and ledger are byte-identical to the single-worker,
// never-coalescing reference — the determinism contract over the whole
// (batch partition x execution vehicle) space.
func FuzzBatchCoalesce(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), uint8(50), uint8(20))
	f.Add(uint64(0xfeedbeef), uint8(2), uint8(1), uint8(200), uint8(3))
	f.Add(uint64(42), uint8(7), uint8(255), uint8(90), uint8(70))
	f.Add(uint64(7777), uint8(1), uint8(16), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, workers, minBatch, nodes, churn uint8) {
		n := int(nodes)%200 + 2
		run := func(w, coalesce int) (uint64, int) {
			proto := newPairProto("pairs", func(format string, args ...any) { t.Errorf(format, args...) })
			e := New(seed, proto)
			e.SetExchangeParallelism(w)
			e.SetTailCoalescing(coalesce)
			defer e.Close()
			e.AddNodes(n)
			kills := int(churn) % n
			if err := e.ScheduleAt(2, func(e *Engine) {
				for id := NodeID(0); id < NodeID(kills); id++ {
					e.Kill(id)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.ScheduleAt(4, func(e *Engine) { e.AddNodes(kills / 2) }); err != nil {
				t.Fatal(err)
			}
			observeExactlyOnce(t, e, proto)
			e.RunRounds(6)
			return proto.fingerprint(), e.Meter().TotalCost("pairs")
		}
		refFp, refCost := run(1, 1)
		gotFp, gotCost := run(int(workers)%8+1, int(minBatch))
		if gotFp != refFp {
			t.Errorf("workers=%d minBatch=%d: state fingerprint %#x, want %#x",
				int(workers)%8+1, int(minBatch), gotFp, refFp)
		}
		if gotCost != refCost {
			t.Errorf("workers=%d minBatch=%d: total cost %d, want %d",
				int(workers)%8+1, int(minBatch), gotCost, refCost)
		}
	})
}

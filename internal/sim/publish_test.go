package sim

import "testing"

// orderProbe records the interleaving of observer and publish-hook calls.
type orderProbe struct {
	events []string
}

func TestPublishHookRunsAfterObservers(t *testing.T) {
	e := New(1, noopLayer{name: "noop"})
	e.AddNodes(4)

	var probe orderProbe
	e.Observe(func(e *Engine, round int) {
		probe.events = append(probe.events, "observe")
	})
	var rounds []int
	e.SetPublishHook(func(e *Engine, round int) {
		probe.events = append(probe.events, "publish")
		rounds = append(rounds, round)
		if e.Round() != round {
			t.Fatalf("hook saw Round()=%d, want %d (pre-increment)", e.Round(), round)
		}
	})

	e.RunRounds(3)
	want := []string{"observe", "publish", "observe", "publish", "observe", "publish"}
	if len(probe.events) != len(want) {
		t.Fatalf("events = %v, want %v", probe.events, want)
	}
	for i := range want {
		if probe.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", probe.events, want)
		}
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("publish rounds = %v, want 0..2", rounds)
		}
	}
}

func TestPublishHookClearedByReset(t *testing.T) {
	e := New(1, noopLayer{name: "noop"})
	e.AddNodes(2)
	fired := 0
	e.SetPublishHook(func(e *Engine, round int) { fired++ })
	e.RunRounds(2)
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2", fired)
	}
	e.Reset(1, noopLayer{name: "noop"})
	e.AddNodes(2)
	e.RunRounds(2)
	if fired != 2 {
		t.Fatalf("hook survived Reset: fired %d times, want 2", fired)
	}
	// And nil explicitly clears it too.
	e.SetPublishHook(func(e *Engine, round int) { fired++ })
	e.SetPublishHook(nil)
	e.RunRounds(1)
	if fired != 2 {
		t.Fatalf("nil did not clear the hook: fired %d times, want 2", fired)
	}
}

package sim

// Sharded multi-engine execution.
//
// Where the batch scheduler (parallel.go) partitions one round into
// node-disjoint batches, the sharded scheduler partitions the *node
// universe* into shards — regions of the torus owned by one worker each,
// the in-process rehearsal of a multi-engine deployment. The same
// pair-atomic commutativity argument carries it: an exchange whose
// planned conflict set (initiator, selected peer, backup targets) stays
// inside one shard cannot interact with any other shard's interior
// exchanges, so the shards' interior work runs concurrently with no
// cross-shard synchronisation at all. Exchanges that would cross a
// boundary are not run where they were scheduled: they are deferred into
// a per-shard-pair mailbox (internal/shard.Mailbox) and drained at the
// pass barrier in canonical (round, home shard, step) order on the
// engine goroutine — exactly what a distributed deployment would do by
// shipping mailbox queues between engines at the barrier.
//
// Determinism is inherited wholesale from the batch scheduler's three
// mechanisms, with one addition:
//
//   - Pre-split randomness: one seed per step, drawn up front in step
//     order from the engine stream; step i always runs against
//     Reseed(seed[i]) whether it executes in a shard wave or from the
//     mailbox.
//   - Deterministic planning: steps are scanned in the round's shuffled
//     order on the engine goroutine (plan scratch is single-instance by
//     design) and classified interior/boundary from their planned
//     conflict sets. Within a shard, admitted steps execute sequentially
//     in step order; concurrency exists only *between* shards, whose
//     interior conflict sets are provably disjoint.
//   - Waves: a step whose own node was already claimed this wave waits
//     for the next wave and is re-planned (its selection may read its
//     own mutated state) — the same own-node invalidation contract as
//     the batch scheduler, so PlanInvariant layers run in a single wave.
//   - The mailbox barrier: boundary steps replay at the barrier in an
//     order keyed only by (home shard, step index), re-planned against
//     post-wave state, so the trajectory is a pure function of seed and
//     shard count.
//
// The wave partition and the per-step streams never consult the shard
// count, and bands nest when shard counts divide evenly — so a round
// whose every conflict set is interior at the finest count produces
// byte-identical state at every shard count that tiles the grid. Rounds
// with boundary traffic follow a documented, stable shard-count-keyed
// trajectory instead: the mailbox set itself depends on where the
// boundaries lie. Like the batched trajectory, the sharded trajectory is
// a different (equally valid) deterministic run from the sequential and
// batched ones.

import (
	"sync"

	"polystyrene/internal/shard"
	"polystyrene/internal/xrand"
)

// ShardMap assigns every node to one shard for the sharded scheduler.
// Implementations must be derivable from configuration alone (the
// scenario routes a node's *home* grid cell through shard.Router), so
// the assignment is static per node and identical on every shard of a
// distributed deployment.
type ShardMap interface {
	// Shards returns the shard count, >= 1, fixed for the map's lifetime.
	Shards() int
	// Assign is called once per round, after the round's events fire and
	// before any layer steps: implementations extend their node→shard
	// table to cover nodes that joined since the last round. Assignments
	// must be frozen between Assign calls.
	Assign(e *Engine)
	// ShardOf returns node id's shard, in [0, Shards()).
	ShardOf(id NodeID) int
}

// SetShardMap opts the engine into sharded execution: every Batchable
// layer's pass runs under the sharded scheduler (see sharded.go's
// package comment), with interior exchanges executing concurrently per
// shard and boundary exchanges drained from the mailbox at the pass
// barrier. m == nil restores single-engine execution. Sharding takes
// precedence over SetExchangeParallelism for layers that support both;
// non-Batchable layers (and layers declining via Batchable) fall back to
// the sequential engine-stream path, unchanged.
//
// For a fixed seed and shard map, results are byte-identical across
// runs, GOMAXPROCS values and process restarts; across *different* shard
// counts they are byte-identical exactly when every conflict set is
// interior at the finest count (see the package comment). Call it before
// RunRounds or between rounds, never mid-round. Reset clears it: the map
// is run wiring, like observers and the publish hook.
func (e *Engine) SetShardMap(m ShardMap) {
	e.shardMap = m
	if m == nil {
		return
	}
	n := m.Shards()
	if n < 1 {
		panic("sim: shard map must have at least one shard")
	}
	for len(e.wctx) < n {
		e.wctx = append(e.wctx, &StepCtx{e: e, rng: xrand.New(0), worker: len(e.wctx), batched: true})
	}
}

// Sharding returns the engine's shard map (nil when single-engine).
func (e *Engine) Sharding() ShardMap { return e.shardMap }

// shardState is the engine's pooled sharded-scheduling scratch, reused
// across rounds and layers (the sharded sibling of batchState).
type shardState struct {
	seeds   []uint64         // per-step streams, drawn up front in step order
	pending []pendStep       // interior steps not yet executed, with cached plans
	queues  [][]pendStep     // per-shard admitted steps of the open wave
	mail    shard.Mailbox    // boundary steps deferred to the pass barrier
	drain   []shard.Deferred // canonical drain buffer
	arena   []NodeID         // conflict-set storage for the pass (append-only)
	planRng *xrand.Rand      // throwaway stream handed to PlanStep
}

// runSharded executes one layer's pass over the round's step order under
// the sharded scheduler. Called with e.curLayer already set.
func (e *Engine) runSharded(bp Batched) {
	n := len(e.order)
	if n == 0 {
		return
	}
	m := e.shardMap
	shards := m.Shards()
	ss := &e.ss
	if ss.planRng == nil {
		ss.planRng = xrand.New(0)
	}

	// Pre-split per-step streams: the batch scheduler's discipline, so
	// step i's randomness is fixed before any classification decision.
	ss.seeds = ss.seeds[:0]
	for i := 0; i < n; i++ {
		ss.seeds = append(ss.seeds, e.rng.Uint64())
	}

	bp.BeginBatchedRound(e, shards)
	invariant := false
	if pi, ok := bp.(PlanInvariant); ok {
		invariant = pi.PlanInvariant()
	}

	ss.pending, ss.arena = ss.pending[:0], ss.arena[:0]
	for i := 0; i < n; i++ {
		if e.alive[e.order[i]] {
			ss.pending = append(ss.pending, pendStep{si: int32(i)})
		}
	}
	for cap(ss.queues) < shards {
		ss.queues = append(ss.queues[:cap(ss.queues)], nil)
	}
	ss.queues = ss.queues[:shards]

	for len(ss.pending) > 0 {
		// One wave: scan pending steps in step order, classify each from
		// its planned conflict set, and admit interior steps to their
		// home shard's queue. Boundary steps leave the pass immediately
		// for the mailbox. The claimed-node set and the wave partition
		// never consult the shard count — that is what keeps interior
		// trajectories identical across counts.
		touched, gen := e.bs.touched.Next(e.NumNodes())
		for s := range ss.queues {
			ss.queues[s] = ss.queues[s][:0]
		}
		keep := ss.pending[:0]
		for k := range ss.pending {
			pe := ss.pending[k]
			if !pe.valid {
				ss.planRng.Reseed(ss.seeds[pe.si])
				off := int32(len(ss.arena))
				ss.arena = bp.PlanStep(e, ss.planRng, e.order[pe.si], ss.arena)
				pe.off, pe.n, pe.valid = off, int32(len(ss.arena))-off, true
			}
			cs := ss.arena[pe.off : pe.off+pe.n]
			home := m.ShardOf(e.order[pe.si])
			away := -1
			for _, c := range cs {
				if s := m.ShardOf(c); s != home && (away == -1 || s < away) {
					away = s
				}
			}
			if away >= 0 {
				ss.mail.Defer(shard.Deferred{Step: int(pe.si), Home: shard.ID(home), Away: shard.ID(away)})
				continue
			}
			if invariant {
				// Pass-invariant plans never go stale: every interior
				// step is admitted in the first wave and executes in step
				// order within its shard.
				ss.queues[home] = append(ss.queues[home], pe)
				continue
			}
			if touched[e.order[pe.si]] == gen {
				// The step's own node was claimed this wave; its
				// selection may read the mutated state, so it waits and
				// re-plans (same contract as the batch scheduler).
				keep = append(keep, pe)
				continue
			}
			for _, c := range cs {
				touched[c] = gen
			}
			ss.queues[home] = append(ss.queues[home], pe)
		}
		ss.pending = keep

		e.execWave(bp)
		bp.FlushBatch(e)

		if !invariant {
			for k := range ss.pending {
				if touched[e.order[ss.pending[k].si]] == gen {
					ss.pending[k].valid = false
				}
			}
		}
	}

	e.drainShardMailbox(bp)
	bp.EndBatchedRound(e)
}

// execWave runs the open wave's per-shard queues: each shard's steps
// execute sequentially in step order under that shard's worker context,
// shards run concurrently on transient goroutines (the engine goroutine
// takes the first non-empty shard). Interior conflict sets of different
// shards are disjoint by construction, so the only shared mutable state
// is per-context, and per-worker meter charges are flushed after the
// join in slot order (sums commute).
func (e *Engine) execWave(bp Batched) {
	ss := &e.ss
	first := -1
	extra := 0
	for s := range ss.queues {
		if len(ss.queues[s]) == 0 {
			continue
		}
		if first == -1 {
			first = s
		} else {
			extra++
		}
	}
	if first == -1 {
		return
	}
	if extra > 0 {
		var wg sync.WaitGroup
		wg.Add(extra)
		for s := first + 1; s < len(ss.queues); s++ {
			if len(ss.queues[s]) == 0 {
				continue
			}
			go func(s int) {
				defer wg.Done()
				e.runShardQueue(bp, s)
			}(s)
		}
		e.runShardQueue(bp, first)
		wg.Wait()
	} else {
		e.runShardQueue(bp, first)
	}
	for _, ctx := range e.wctx {
		if ctx.cost != 0 {
			e.meter.charge(e.curLayer, e.round, ctx.cost)
			ctx.cost = 0
		}
	}
}

// runShardQueue executes shard s's admitted steps in step order under
// its dedicated worker context.
func (e *Engine) runShardQueue(bp Batched, s int) {
	ss := &e.ss
	ctx := e.wctx[s]
	for _, pe := range ss.queues[s] {
		ctx.rng.Reseed(ss.seeds[pe.si])
		ctx.planned = ss.arena[pe.off : pe.off+pe.n]
		ctx.step = int(pe.si)
		bp.StepW(ctx, e.order[pe.si])
	}
	ctx.planned = nil
}

// drainShardMailbox replays the round's deferred boundary exchanges at
// the pass barrier, sequentially on the engine goroutine, in the
// mailbox's canonical (home shard, step) order. Each exchange is
// re-planned immediately before executing — interior waves may have
// moved its initiator's state, and re-planning also refreshes the
// layer's per-node plan caches and the conflict set the Touch assertion
// checks — then replayed against its original pre-split stream.
func (e *Engine) drainShardMailbox(bp Batched) {
	ss := &e.ss
	if ss.mail.Len() == 0 {
		return
	}
	ss.drain = ss.mail.Drain(ss.drain[:0])
	ctx := e.wctx[0]
	for _, d := range ss.drain {
		id := e.order[d.Step]
		if !e.alive[id] {
			continue
		}
		ss.planRng.Reseed(ss.seeds[d.Step])
		off := len(ss.arena)
		ss.arena = bp.PlanStep(e, ss.planRng, id, ss.arena)
		ctx.rng.Reseed(ss.seeds[d.Step])
		ctx.planned = ss.arena[off:]
		ctx.step = d.Step
		bp.StepW(ctx, id)
	}
	ctx.planned = nil
	for _, c := range e.wctx {
		if c.cost != 0 {
			e.meter.charge(e.curLayer, e.round, c.cost)
			c.cost = 0
		}
	}
	bp.FlushBatch(e)
}

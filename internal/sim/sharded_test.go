package sim

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"polystyrene/internal/xrand"
)

// bandMap is a static sim.ShardMap for scheduler tests: node ids are cut
// into bands of bandSize consecutive ids, dealt round-robin over shards.
// It is a pure function of the id, so every shard count refines evenly
// when partners stay within one band.
type bandMap struct {
	bandSize int
	shards   int
}

func (m bandMap) Shards() int      { return m.shards }
func (m bandMap) Assign(e *Engine) {}
func (m bandMap) ShardOf(id NodeID) int {
	return (int(id) / m.bandSize) % m.shards
}

// bandProto is a scripted batched protocol with *deterministic* partner
// selection keyed to the band layout: node id partners id^1 (its
// neighbour inside the band), except every crossEvery-th node, which
// partners one full band over — guaranteed cross-shard at every shard
// count >= 2. Exchanges mix both nodes' states with the step stream, and
// chained overlapping exchanges make execution order observable, so
// fingerprints pin the scheduler's ordering exactly.
type bandProto struct {
	name       string
	bandSize   int
	crossEvery int // 0 = interior-only
	vals       []uint64

	seq         atomic.Int64 // global execution sequence
	mu          sync.Mutex
	execCount   map[NodeID]int
	maxInterior atomic.Int64     // highest interior execution seq this round
	boundary    [][2]int         // (home shard via map under test, step index) of drained steps, in exec order
	homeOf      func(NodeID) int // set by tests that check drain order
}

var _ Batched = (*bandProto)(nil)

func newBandProto(bandSize, crossEvery int) *bandProto {
	return &bandProto{
		name: "band", bandSize: bandSize, crossEvery: crossEvery,
		execCount: make(map[NodeID]int),
	}
}

func (p *bandProto) Name() string { return p.name }

func (p *bandProto) InitNode(e *Engine, id NodeID) {
	for len(p.vals) <= int(id) {
		p.vals = append(p.vals, uint64(len(p.vals))*0x9e3779b97f4a7c15+1)
	}
}

// partner is the deterministic selection shared by plan and step: it
// reads only the initiator's id and pass-frozen liveness, the contract
// that keeps cached plans valid. Cross traffic comes in two ranges: one
// band over (foreign at every shard count >= 2) and two bands over —
// foreign at 4 shards but *interior* at 2, which is exactly the
// classification difference that keys the boundary trajectory to the
// shard count.
func (p *bandProto) partner(e *Engine, id NodeID) NodeID {
	var q NodeID
	switch {
	case p.crossEvery > 0 && int(id)%p.crossEvery == 0:
		q = id + NodeID(p.bandSize)
	case p.crossEvery > 0 && int(id)%p.crossEvery == 1:
		q = id + NodeID(2*p.bandSize)
	default:
		q = id ^ 1
	}
	if int(q) >= e.NumNodes() || !e.Alive(q) {
		return None
	}
	return q
}

func (p *bandProto) crossShard(e *Engine, id NodeID) bool {
	q := p.partner(e, id)
	return q != None && p.homeOf != nil && p.homeOf(q) != p.homeOf(id)
}

func (p *bandProto) Step(e *Engine, id NodeID) { p.StepW(e.SeqCtx(), id) }

func (p *bandProto) StepW(ctx *StepCtx, id NodeID) {
	e := ctx.Engine()
	seq := p.seq.Add(1)
	p.mu.Lock()
	p.execCount[id]++
	p.mu.Unlock()
	q := p.partner(e, id)
	if q == None {
		p.vals[id] ^= ctx.Rand().Uint64()
		return
	}
	ctx.Touch(q)
	if ctx.Batched() && p.homeOf != nil {
		if p.homeOf(q) != p.homeOf(id) {
			// A cross-shard exchange: it must run from the mailbox, i.e.
			// strictly after every interior execution of the pass.
			p.mu.Lock()
			p.boundary = append(p.boundary, [2]int{p.homeOf(id), ctx.StepIndex()})
			p.mu.Unlock()
		} else {
			for {
				old := p.maxInterior.Load()
				if seq <= old || p.maxInterior.CompareAndSwap(old, seq) {
					break
				}
			}
		}
	}
	v := ctx.Rand().Uint64()
	a, b := p.vals[id], p.vals[q]
	p.vals[id] = a*1099511628211 ^ b ^ v
	p.vals[q] = b*1099511628211 ^ a ^ (v>>17 | v<<47)
	ctx.Charge(int(id%5) + 1)
}

func (p *bandProto) Batchable() bool                          { return true }
func (p *bandProto) BeginBatchedRound(e *Engine, workers int) {}

func (p *bandProto) PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID {
	dst = append(dst, id)
	if q := p.partner(e, id); q != None {
		dst = append(dst, q)
	}
	return dst
}

func (p *bandProto) FlushBatch(e *Engine)      {}
func (p *bandProto) EndBatchedRound(e *Engine) {}

func (p *bandProto) fingerprint(e *Engine, rounds int) uint64 {
	t := newTrace()
	for _, v := range p.vals {
		t.add(v)
	}
	for r := 0; r < rounds; r++ {
		t.add(uint64(e.Meter().RoundCost(p.name, r)))
	}
	return t.h
}

// runBandSim drives a churny scripted run under the sharded scheduler
// and returns the protocol and engine. crossEvery = 0 keeps every
// conflict set inside its band (interior at every tested shard count).
func runBandSim(t *testing.T, shards, crossEvery int) (*bandProto, *Engine) {
	t.Helper()
	const bandSize = 16
	proto := newBandProto(bandSize, crossEvery)
	e := New(0xABCD1234, proto)
	m := bandMap{bandSize: bandSize, shards: shards}
	proto.homeOf = func(id NodeID) int { return m.ShardOf(id) }
	e.SetShardMap(m)
	e.AddNodes(256)
	if err := e.ScheduleAt(3, func(e *Engine) {
		for id := NodeID(64); id < 120; id++ {
			e.Kill(id)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(6, func(e *Engine) { e.AddNodes(64) }); err != nil {
		t.Fatal(err)
	}
	e.Observe(func(e *Engine, round int) {
		proto.mu.Lock()
		defer proto.mu.Unlock()
		if len(proto.execCount) != e.NumLive() {
			t.Errorf("round %d: %d nodes stepped, %d live", round, len(proto.execCount), e.NumLive())
		}
		for id, n := range proto.execCount {
			if n != 1 {
				t.Errorf("round %d: node %d stepped %d times", round, id, n)
			}
		}
		clear(proto.execCount)
	})
	e.RunRounds(10)
	return proto, e
}

// TestShardedInteriorIdentity pins the keystone cross-count property:
// when every conflict set stays inside its shard at the finest count
// (bands nest, so it then stays inside at every coarser count), the
// trajectory — node states and meter ledgers — is byte-identical at 1,
// 2 and 4 shards, through churn. Run under -race in CI's determinism
// matrix, this is also the proof that concurrent shards share no
// mutable state.
func TestShardedInteriorIdentity(t *testing.T) {
	ref, refEngine := runBandSim(t, 1, 0)
	want := ref.fingerprint(refEngine, 10)
	for _, shards := range []int{2, 4} {
		proto, e := runBandSim(t, shards, 0)
		if got := proto.fingerprint(e, 10); got != want {
			t.Fatalf("interior-only trajectory diverged at %d shards: %x vs %x", shards, got, want)
		}
		if proto.seq.Load() != ref.seq.Load() {
			t.Fatalf("step count diverged at %d shards", shards)
		}
	}
}

// TestShardedBoundaryTrajectory pins the boundary semantics: with
// cross-shard traffic the run is still deterministic per shard count
// (two identical runs agree exactly), but the trajectory is keyed by
// the shard count — the mailbox set and its canonical drain order
// depend on where the boundaries lie, which is why the shard count is
// part of the snapshot digest.
func TestShardedBoundaryTrajectory(t *testing.T) {
	fp := func(shards int) uint64 {
		proto, e := runBandSim(t, shards, 5)
		return proto.fingerprint(e, 10)
	}
	if fp(2) != fp(2) {
		t.Fatal("same-count boundary runs diverged; sharded scheduling is nondeterministic")
	}
	if fp(4) != fp(4) {
		t.Fatal("same-count boundary runs diverged at 4 shards")
	}
	if fp(2) == fp(4) {
		t.Fatal("2- and 4-shard boundary trajectories coincide; the shard-count-keyed contract (and the digest guard) would be vacuous")
	}
}

// TestShardedMailboxBarrier pins the drain discipline: every cross-shard
// exchange executes strictly after every interior execution of the pass
// (waves first, mailbox at the barrier), and drained exchanges replay in
// the canonical ascending (home shard, step index) order.
func TestShardedMailboxBarrier(t *testing.T) {
	proto := newBandProto(16, 4)
	e := New(0x5eed, proto)
	m := bandMap{bandSize: 16, shards: 4}
	proto.homeOf = func(id NodeID) int { return m.ShardOf(id) }
	e.SetShardMap(m)
	e.AddNodes(192)
	for round := 0; round < 5; round++ {
		proto.boundary = proto.boundary[:0]
		proto.maxInterior.Store(0)
		e.RunRounds(1)
		if len(proto.boundary) == 0 {
			t.Fatalf("round %d drained no cross-shard exchanges; the scenario is not exercising the mailbox", round)
		}
		for i := 1; i < len(proto.boundary); i++ {
			prev, cur := proto.boundary[i-1], proto.boundary[i]
			if prev[0] > cur[0] || (prev[0] == cur[0] && prev[1] >= cur[1]) {
				t.Fatalf("round %d: drain order violated canonical (home, step): %v before %v", round, prev, cur)
			}
		}
	}
	if got := proto.maxInterior.Load(); got == 0 {
		t.Fatal("no interior exchanges recorded")
	}
}

// TestShardedDrainAfterInterior pins the barrier ordering with the
// sequence counter: the lowest boundary execution sequence exceeds the
// highest interior one, every round.
func TestShardedDrainAfterInterior(t *testing.T) {
	proto := newBandProto(16, 4)
	e := New(0x5eed, proto)
	m := bandMap{bandSize: 16, shards: 2}
	proto.homeOf = func(id NodeID) int { return m.ShardOf(id) }
	e.SetShardMap(m)
	e.AddNodes(160)
	for round := 0; round < 4; round++ {
		proto.boundary = proto.boundary[:0]
		proto.maxInterior.Store(0)
		e.RunRounds(1)
		if len(proto.boundary) == 0 {
			t.Fatalf("round %d: no boundary traffic", round)
		}
		// Drained exchanges run last on the engine goroutine, so the
		// first boundary execution's sequence number must exceed every
		// interior one of the round.
		firstBoundary := proto.seq.Load() - int64(len(proto.boundary)) + 1
		if firstBoundary <= proto.maxInterior.Load() {
			t.Fatalf("round %d: boundary exchange (seq %d) ran before the last interior one (seq %d)", round, firstBoundary, proto.maxInterior.Load())
		}
	}
}

// divergeProto plans {id} but touches a partner anyway — the bug class
// the Touch assertion exists for.
type divergeProto struct{ bandProto }

func (p *divergeProto) PlanStep(e *Engine, rng *xrand.Rand, id NodeID, dst []NodeID) []NodeID {
	return append(dst, id)
}

// TestShardedTouchCatchesPlanDivergence pins that a plan/execution
// divergence under the sharded scheduler panics deterministically via
// StepCtx.Touch instead of racing across shards.
func TestShardedTouchCatchesPlanDivergence(t *testing.T) {
	proto := &divergeProto{bandProto: *newBandProto(16, 0)}
	proto.execCount = make(map[NodeID]int)
	e := New(7, proto)
	e.SetShardMap(bandMap{bandSize: 16, shards: 1})
	e.AddNodes(32)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("plan divergence did not panic")
		}
		if !strings.Contains(r.(string), "outside its planned conflict set") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.RunRounds(1)
}

// TestShardedResetClearsMap pins that Reset treats the shard map as run
// wiring: a reset engine is single-engine again until SetShardMap is
// re-applied (the scenario re-wires it per cell, exactly like observers
// and the publish hook).
func TestShardedResetClearsMap(t *testing.T) {
	proto := newBandProto(16, 0)
	e := New(1, proto)
	e.SetShardMap(bandMap{bandSize: 16, shards: 2})
	if e.Sharding() == nil {
		t.Fatal("shard map not installed")
	}
	proto2 := newBandProto(16, 0)
	e.Reset(1, proto2)
	if e.Sharding() != nil {
		t.Fatal("Reset retained the shard map")
	}
	e.AddNodes(32)
	e.RunRounds(2) // sequential path; would panic if sharded scratch were half-wired
}

// seqOnly is a minimal non-Batched layer, to pin the sequential fallback
// inside a sharded round.
type seqOnly struct {
	count map[NodeID]int
}

func (s *seqOnly) Name() string                  { return "seqonly" }
func (s *seqOnly) InitNode(e *Engine, id NodeID) {}
func (s *seqOnly) Step(e *Engine, id NodeID)     { s.count[id]++ }

// TestShardedNonBatchableFallback pins graceful degradation: a layer
// that does not implement Batched still steps every live node exactly
// once per round, sequentially, inside an otherwise sharded engine.
func TestShardedNonBatchableFallback(t *testing.T) {
	plain := &seqOnly{count: make(map[NodeID]int)}
	batched := newBandProto(16, 0)
	e := New(3, batched, plain)
	e.SetShardMap(bandMap{bandSize: 16, shards: 4})
	e.AddNodes(64)
	e.RunRounds(3)
	for id := NodeID(0); int(id) < 64; id++ {
		if plain.count[id] != 3 {
			t.Fatalf("node %d stepped %d times in the sequential fallback, want 3", id, plain.count[id])
		}
	}
}

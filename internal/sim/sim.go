// Package sim provides the cycle-driven simulation engine the evaluation
// runs on. It is our substitute for PeerSim (Montresor & Jelasity, P2P'09),
// which the paper used: protocols are layered, the engine steps every live
// node once per layer per round (in a random order drawn fresh each round),
// events such as catastrophic failures and node reinjection are scheduled
// at specific rounds, and a cost meter records the communication units each
// layer spends, using the paper's unit model (1 node ID = 1 coordinate = 1
// unit).
//
// The engine is sequential by default: gossip exchanges are pair-wise
// atomic by construction ("q should not be interacting with anyone else
// than p while the exchange occurs", Sec. III-F), and sequential execution
// with a seeded PRNG makes every experiment exactly reproducible. Because
// exchanges are pair-atomic, steps touching disjoint node sets commute,
// and SetExchangeParallelism opts a run into intra-round batching: a
// deterministic greedy matcher partitions each round's shuffled step order
// into batches of node-disjoint exchanges that execute across a persistent
// worker pool — n-1 goroutines parked on wake channels across batches and
// rounds, the engine goroutine itself being worker slot 0 — while batches
// below a threshold (the conflict-bound tail of a round) coalesce onto the
// inline slot-0 path and skip the dispatch (see parallel.go,
// SetTailCoalescing). Same-seed results are byte-identical at every worker
// count and every coalescing threshold, though the batched trajectory
// differs from the sequential one (per-step randomness is pre-split
// instead of drawn from one shared stream).
//
// Engines are reusable: Engine.Reset(seed, layers...) returns one to its
// freshly-constructed state while keeping every grown backing array and
// the parked worker pool, which is how sweep harnesses run many same-size
// cells without per-cell engine allocations. Engines configured with
// exchange parallelism >= 2 hold pool goroutines; Close releases them.
//
// The engine is built for full-paper-scale (51,200-node) sweeps: the live
// population is tracked in a dense swap-remove set so RandomLive is O(1)
// and LiveIDs touches only survivors even after a catastrophe kills most
// of the fleet, the per-round step order is shuffled once per round into a
// reused buffer shared by all layers, and the meter accumulates costs in
// flat per-layer round ledgers instead of nested maps.
package sim

import (
	"fmt"
	"slices"
	"sort"

	"polystyrene/internal/xrand"
)

// NodeID identifies a node for the lifetime of a simulation. IDs are dense
// indices assigned in creation order and are never reused.
type NodeID int

// None is the sentinel for "no node".
const None NodeID = -1

// Protocol is one layer of the simulated stack (e.g. peer sampling,
// topology construction, Polystyrene). The engine owns scheduling; each
// protocol owns its per-node state, indexed by NodeID.
type Protocol interface {
	// Name identifies the layer in cost reports.
	Name() string
	// InitNode is invoked exactly once per node, when the node joins
	// (including nodes reinjected mid-run). Layers are initialised in
	// stack order, bottom first.
	InitNode(e *Engine, id NodeID)
	// Step executes one round of the protocol on behalf of node id. It is
	// only called for live nodes.
	Step(e *Engine, id NodeID)
}

// Observer is called after every completed round, before any events of the
// next round fire.
type Observer func(e *Engine, round int)

// Event is a scheduled state change (crash, reinjection, ...). Events for
// round r run before the protocols step in round r.
type Event func(e *Engine)

// Engine drives a layered gossip simulation.
type Engine struct {
	rng    *xrand.Rand
	layers []Protocol
	// alive[id] reports liveness; live is the dense, unordered set of live
	// IDs and livePos[id] is id's index in live (-1 when dead), so Kill is
	// a swap-remove and RandomLive a single bounded draw.
	alive   []bool
	live    []NodeID
	livePos []int32
	round   int

	events    map[int][]Event
	observers []Observer
	// publish is the post-barrier publish hook (see SetPublishHook); nil
	// when no serving surface is attached.
	publish func(e *Engine, round int)

	meter *Meter
	// curLayer is the meter ledger index costs are attributed to; -1 means
	// outside any protocol (the "external" pseudo-layer).
	curLayer int
	// layerLedger[i] is the meter ledger index of layers[i].
	layerLedger []int
	// order is the per-round step-order buffer, reused across rounds.
	order []NodeID

	// exWorkers is the intra-round exchange worker count (0 = sequential),
	// wctx the per-worker step contexts, bs the pooled batch-scheduling
	// scratch and seqCtx the shared context of sequential steps (its
	// stream is the engine generator itself, so routing the sequential
	// path through StepCtx changes nothing observable). pool holds the
	// persistent exchange workers (exWorkers-1 parked goroutines; the
	// engine goroutine is slot 0) and coalesceMin the tail-coalescing
	// threshold (see SetTailCoalescing).
	exWorkers   int
	wctx        []*StepCtx
	bs          batchState
	seqCtx      *StepCtx
	pool        exPool
	coalesceMin int

	// shardMap, when non-nil, opts the engine into sharded execution
	// (see SetShardMap and sharded.go); ss is its pooled scratch.
	shardMap ShardMap
	ss       shardState
}

// New returns an engine seeded with seed and running the given layers,
// bottom layer first.
func New(seed uint64, layers ...Protocol) *Engine {
	e := &Engine{
		rng:      xrand.New(seed),
		layers:   layers,
		events:   make(map[int][]Event),
		meter:    newMeter(),
		curLayer: -1,
	}
	e.layerLedger = make([]int, len(layers))
	for i, l := range layers {
		e.layerLedger[i] = e.meter.ledgerIndex(l.Name())
	}
	e.seqCtx = &StepCtx{e: e, rng: e.rng}
	// Slot 0 doubles as the inline-execution context when a batched pass
	// degenerates to a single worker.
	e.wctx = []*StepCtx{{e: e, rng: xrand.New(0), batched: true}}
	return e
}

// Reset returns the engine to the state New(seed, layers...) would have
// produced, while retaining every backing array it has grown — the live
// set, the step-order buffer, the batch scheduler's arenas and per-worker
// contexts, the meter's ledgers — and the persistent exchange-worker pool
// (the configured parallelism and tail-coalescing threshold survive the
// reset; they describe the engine, not the run). Sweeps that execute many
// same-size cells reuse one engine per concurrent worker this way instead
// of allocating (and, at worker counts >= 2, re-spawning pool goroutines
// for) a fresh engine per cell.
//
// A reset engine is observably indistinguishable from a fresh one: for a
// fixed seed and layer stack, the trajectory is byte-identical (pinned by
// the scenario-level reset identity test).
func (e *Engine) Reset(seed uint64, layers ...Protocol) {
	e.rng.Reseed(seed)
	e.layers = layers
	e.alive = e.alive[:0]
	e.live = e.live[:0]
	e.livePos = e.livePos[:0]
	e.order = e.order[:0]
	e.round = 0
	clear(e.events)
	e.observers = e.observers[:0]
	e.publish = nil
	e.shardMap = nil
	e.meter.reset()
	e.curLayer = -1
	e.layerLedger = e.layerLedger[:0]
	for _, l := range layers {
		e.layerLedger = append(e.layerLedger, e.meter.ledgerIndex(l.Name()))
	}
}

// SeqCtx returns the engine's sequential step context: worker slot 0,
// randomness drawn straight from the engine generator, charges applied
// immediately. Protocol code written once against StepCtx runs the legacy
// sequential semantics byte-identically through it.
func (e *Engine) SeqCtx() *StepCtx { return e.seqCtx }

// Rand exposes the engine's deterministic random source. Protocols should
// draw all randomness from it (or from generators Split from it) so that a
// run is fully determined by the engine seed.
func (e *Engine) Rand() *xrand.Rand { return e.rng }

// Round returns the index of the round currently executing (or about to).
func (e *Engine) Round() int { return e.round }

// AddNode creates a new live node and initialises every layer for it. It
// returns the new node's ID. A node added while a round is executing joins
// the step rotation from the next round.
func (e *Engine) AddNode() NodeID {
	id := NodeID(len(e.alive))
	e.alive = append(e.alive, true)
	e.livePos = append(e.livePos, int32(len(e.live)))
	e.live = append(e.live, id)
	prev := e.curLayer
	for i, l := range e.layers {
		e.curLayer = e.layerLedger[i]
		l.InitNode(e, id)
	}
	e.curLayer = prev
	return id
}

// AddNodes creates n nodes and returns their IDs.
func (e *Engine) AddNodes(n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = e.AddNode()
	}
	return ids
}

// NumNodes returns how many nodes have ever been created.
func (e *Engine) NumNodes() int { return len(e.alive) }

// NumLive returns how many nodes are currently alive.
func (e *Engine) NumLive() int { return len(e.live) }

// Alive reports whether id is a live node. Unknown IDs are not alive.
func (e *Engine) Alive(id NodeID) bool {
	return id >= 0 && int(id) < len(e.alive) && e.alive[id]
}

// Kill crashes node id (crash-stop: it never recovers). Killing a dead or
// unknown node is a no-op, mirroring the idempotence of real crashes.
func (e *Engine) Kill(id NodeID) {
	if !e.Alive(id) {
		return
	}
	e.alive[id] = false
	p := e.livePos[id]
	last := e.live[len(e.live)-1]
	e.live[p] = last
	e.livePos[last] = p
	e.live = e.live[:len(e.live)-1]
	e.livePos[id] = -1
}

// KillAll crashes every node in ids.
func (e *Engine) KillAll(ids []NodeID) {
	for _, id := range ids {
		e.Kill(id)
	}
}

// LiveIDs returns the IDs of all live nodes in ascending order. The
// returned slice is a fresh copy the caller may retain or mutate; its cost
// scales with the number of survivors, not with every node ever created.
func (e *Engine) LiveIDs() []NodeID {
	return e.AppendLiveIDs(make([]NodeID, 0, len(e.live)))
}

// AppendLiveIDs appends the IDs of all live nodes in ascending order to
// dst and returns the extended slice — the allocation-free variant of
// LiveIDs for callers that sweep the population every round with a
// reusable buffer. Only the appended region is sorted.
func (e *Engine) AppendLiveIDs(dst []NodeID) []NodeID {
	n := len(dst)
	dst = append(dst, e.live...)
	slices.Sort(dst[n:])
	return dst
}

// LiveAt returns the i-th entry of the dense (unordered) live set,
// 0 <= i < NumLive(). It exposes the exact indexing RandomLive and
// StepCtx.RandomLive draw against, so batch-plan mirrors can replicate a
// draw without consuming the engine stream.
func (e *Engine) LiveAt(i int) NodeID { return e.live[i] }

// RandomLive returns a uniformly random live node, or None when the system
// is empty. It is O(1) regardless of how many nodes have died.
func (e *Engine) RandomLive() NodeID {
	if len(e.live) == 0 {
		return None
	}
	return e.live[e.rng.Intn(len(e.live))]
}

// ScheduleAt registers fn to run at the start of the given round. Multiple
// events for one round run in registration order. Scheduling in the past
// returns an error rather than silently dropping the event.
func (e *Engine) ScheduleAt(round int, fn Event) error {
	if round < e.round {
		return fmt.Errorf("sim: cannot schedule event at past round %d (current %d)", round, e.round)
	}
	e.events[round] = append(e.events[round], fn)
	return nil
}

// Observe registers an observer called after every round.
func (e *Engine) Observe(o Observer) {
	e.observers = append(e.observers, o)
}

// SetPublishHook registers fn as the engine's post-barrier publish point:
// it runs exactly once at the very end of every round — after all layers
// have stepped (every batched pass has flushed its deferred work) and
// after every observer has run — with the index of the round that just
// completed. This is where a serving surface copies the engine's read
// state into an immutable epoch and swaps it in for concurrent readers:
// the hook runs on the round-driving goroutine, so it sees a quiescent,
// fully-flushed engine, and nothing the readers do can block the loop.
// One hook is supported; fn == nil clears it. Reset also clears it (the
// hook is run wiring, not engine state).
func (e *Engine) SetPublishHook(fn func(e *Engine, round int)) { e.publish = fn }

// Meter returns the engine's communication cost meter.
func (e *Engine) Meter() *Meter { return e.meter }

// Charge records cost units spent by the protocol currently stepping.
// Calling Charge outside a protocol step or init attributes the cost to
// the pseudo-layer "external".
func (e *Engine) Charge(units int) {
	idx := e.curLayer
	if idx < 0 {
		idx = e.meter.ledgerIndex("external")
	}
	e.meter.charge(idx, e.round, units)
}

// RunRounds executes n rounds. Each round: fire the round's events, then
// step each layer bottom-up, visiting live nodes in a random order drawn
// once per round and shared by all layers.
func (e *Engine) RunRounds(n int) {
	for i := 0; i < n; i++ {
		e.runOne()
	}
}

// RunUntil executes rounds until stop returns true (checked after each
// round's observers) or maxRounds have elapsed. It returns the number of
// rounds executed and whether stop was satisfied.
func (e *Engine) RunUntil(maxRounds int, stop func(e *Engine, round int) bool) (int, bool) {
	for i := 0; i < maxRounds; i++ {
		round := e.round
		e.runOne()
		if stop(e, round) {
			return i + 1, true
		}
	}
	return maxRounds, false
}

func (e *Engine) runOne() {
	for _, ev := range e.events[e.round] {
		ev(e)
	}
	delete(e.events, e.round)
	if e.shardMap != nil {
		// Refresh the node→shard table before any layer steps, so nodes
		// injected by this round's events are routed too.
		e.shardMap.Assign(e)
	}

	// One shuffle per round, into a buffer reused across rounds; every
	// layer walks the same order. A node may die mid-round (killed by a
	// peer's step in extended protocols), hence the aliveness guard.
	e.order = append(e.order[:0], e.live...)
	e.rng.Shuffle(len(e.order), func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })

	for i, layer := range e.layers {
		e.curLayer = e.layerLedger[i]
		if bp, ok := layer.(Batched); ok && e.shardMap != nil && bp.Batchable() {
			e.runSharded(bp)
		} else if bp, ok := layer.(Batched); ok && e.exWorkers > 0 && bp.Batchable() {
			e.runBatched(bp)
		} else {
			for _, id := range e.order {
				if e.alive[id] {
					layer.Step(e, id)
				}
			}
		}
		e.curLayer = -1
	}

	for _, o := range e.observers {
		o(e, e.round)
	}
	if e.publish != nil {
		e.publish(e, e.round)
	}
	e.round++
}

// Layer returns the layer with the given name, or nil. Useful for tests
// and tools that need to reach a specific protocol in an assembled stack.
func (e *Engine) Layer(name string) Protocol {
	for _, l := range e.layers {
		if l.Name() == name {
			return l
		}
	}
	return nil
}

// LayerNames returns the names of all layers, bottom first.
func (e *Engine) LayerNames() []string {
	names := make([]string, len(e.layers))
	for i, l := range e.layers {
		names[i] = l.Name()
	}
	return names
}

// Meter accumulates communication cost in abstract units, per layer and per
// round, following the paper's accounting model (Sec. IV-A): a node ID and
// a single coordinate both cost 1 unit, so a node descriptor (ID + 2D
// position) costs 3 units and a bare 2D data point costs 2.
//
// Storage is one flat ledger slice per layer, indexed by round — charging
// on the hot path is two slice indexings, with no map or allocation.
type Meter struct {
	index   map[string]int
	names   []string
	ledgers [][]int
	charged []bool
}

func newMeter() *Meter {
	return &Meter{index: make(map[string]int)}
}

// reset empties every ledger for an Engine.Reset, keeping the registered
// layer names (and their slots) so reused ledgers keep their capacity.
func (m *Meter) reset() {
	for i := range m.ledgers {
		m.ledgers[i] = m.ledgers[i][:0]
		m.charged[i] = false
	}
}

// ledgerIndex returns the ledger slot for layer, registering it on first
// use.
func (m *Meter) ledgerIndex(layer string) int {
	if i, ok := m.index[layer]; ok {
		return i
	}
	i := len(m.names)
	m.index[layer] = i
	m.names = append(m.names, layer)
	m.ledgers = append(m.ledgers, nil)
	m.charged = append(m.charged, false)
	return i
}

func (m *Meter) charge(idx, round, units int) {
	ledger := m.ledgers[idx]
	for len(ledger) <= round {
		ledger = append(ledger, 0)
	}
	ledger[round] += units
	m.ledgers[idx] = ledger
	m.charged[idx] = true
}

// RoundCost returns the units layer spent in the given round.
func (m *Meter) RoundCost(layer string, round int) int {
	i, ok := m.index[layer]
	if !ok || round < 0 || round >= len(m.ledgers[i]) {
		return 0
	}
	return m.ledgers[i][round]
}

// TotalRoundCost returns the units all layers spent in the given round.
func (m *Meter) TotalRoundCost(round int) int {
	total := 0
	for _, ledger := range m.ledgers {
		if round >= 0 && round < len(ledger) {
			total += ledger[round]
		}
	}
	return total
}

// TotalCost returns the units layer has spent across all rounds.
func (m *Meter) TotalCost(layer string) int {
	i, ok := m.index[layer]
	if !ok {
		return 0
	}
	total := 0
	for _, units := range m.ledgers[i] {
		total += units
	}
	return total
}

// Layers returns the names of all layers that have been charged, sorted.
func (m *Meter) Layers() []string {
	names := make([]string, 0, len(m.names))
	for i, name := range m.names {
		if m.charged[i] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Unit costs of the paper's communication model.
const (
	// CostID is the cost of transmitting one node identifier.
	CostID = 1
	// CostCoord is the cost of transmitting one coordinate.
	CostCoord = 1
)

// DescriptorCost returns the cost of a node descriptor (ID + position) in
// a space of the given dimension: 3 units for the 2D torus.
func DescriptorCost(dim int) int { return CostID + dim*CostCoord }

// PointCost returns the cost of a bare data point of the given dimension:
// 2 units on the 2D torus.
func PointCost(dim int) int { return dim * CostCoord }

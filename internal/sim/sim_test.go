package sim

import (
	"testing"
	"testing/quick"
)

// recorder is a test protocol that records which nodes stepped each round.
type recorder struct {
	name     string
	inits    []NodeID
	stepped  [][]NodeID
	killOnID NodeID // if set (>=0), kills this node during its own step
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) InitNode(_ *Engine, id NodeID) { r.inits = append(r.inits, id) }

func (r *recorder) Step(e *Engine, id NodeID) {
	round := e.Round()
	for len(r.stepped) <= round {
		r.stepped = append(r.stepped, nil)
	}
	r.stepped[round] = append(r.stepped[round], id)
	if r.killOnID >= 0 && id == r.killOnID {
		e.Kill(id)
	}
}

func newRecorder(name string) *recorder { return &recorder{name: name, killOnID: None} }

func TestAddNodeInitialisesAllLayers(t *testing.T) {
	bottom := newRecorder("bottom")
	top := newRecorder("top")
	e := New(1, bottom, top)
	ids := e.AddNodes(3)
	if len(ids) != 3 || ids[2] != 2 {
		t.Fatalf("AddNodes ids = %v", ids)
	}
	if len(bottom.inits) != 3 || len(top.inits) != 3 {
		t.Fatalf("layers not initialised: %v %v", bottom.inits, top.inits)
	}
	if e.NumNodes() != 3 || e.NumLive() != 3 {
		t.Fatalf("counts: nodes=%d live=%d", e.NumNodes(), e.NumLive())
	}
}

func TestStepVisitsEveryLiveNodeOnce(t *testing.T) {
	r := newRecorder("p")
	e := New(2, r)
	e.AddNodes(10)
	e.Kill(3)
	e.RunRounds(1)
	if len(r.stepped[0]) != 9 {
		t.Fatalf("round 0 stepped %d nodes, want 9", len(r.stepped[0]))
	}
	seen := map[NodeID]bool{}
	for _, id := range r.stepped[0] {
		if id == 3 {
			t.Fatal("dead node stepped")
		}
		if seen[id] {
			t.Fatalf("node %d stepped twice", id)
		}
		seen[id] = true
	}
}

func TestStepOrderIsShuffled(t *testing.T) {
	r := newRecorder("p")
	e := New(3, r)
	e.AddNodes(50)
	e.RunRounds(2)
	same := true
	for i := range r.stepped[0] {
		if r.stepped[0][i] != r.stepped[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two consecutive rounds used the identical node order")
	}
}

func TestKillIsIdempotentAndCrashStop(t *testing.T) {
	e := New(4, newRecorder("p"))
	e.AddNodes(5)
	e.Kill(2)
	e.Kill(2)
	e.Kill(99) // unknown: no-op
	if e.NumLive() != 4 {
		t.Fatalf("live = %d, want 4", e.NumLive())
	}
	if e.Alive(2) || e.Alive(99) || e.Alive(None) {
		t.Fatal("Alive misreports")
	}
}

func TestNodeKilledMidRoundDoesNotStep(t *testing.T) {
	// If a node dies during the round (e.g. killed by a peer's step in an
	// extended protocol), it must not be stepped afterwards.
	killer := newRecorder("killer")
	e := New(5, killer)
	e.AddNodes(30)
	victim := NodeID(7)
	other := newRecorder("other")
	// Simulate by killing from an event mid-run instead: schedule kill at
	// round 1 and verify round 1 excludes the victim.
	_ = other
	if err := e.ScheduleAt(1, func(e *Engine) { e.Kill(victim) }); err != nil {
		t.Fatal(err)
	}
	e.RunRounds(2)
	for _, id := range killer.stepped[1] {
		if id == victim {
			t.Fatal("victim stepped after scheduled kill")
		}
	}
}

func TestSelfKillDuringStep(t *testing.T) {
	r := newRecorder("p")
	r.killOnID = 5
	e := New(6, r)
	e.AddNodes(10)
	e.RunRounds(2)
	if e.Alive(5) {
		t.Fatal("node 5 should be dead")
	}
	for _, id := range r.stepped[1] {
		if id == 5 {
			t.Fatal("dead node stepped in later round")
		}
	}
}

func TestEventsFireBeforeStepping(t *testing.T) {
	r := newRecorder("p")
	e := New(7, r)
	e.AddNodes(4)
	if err := e.ScheduleAt(0, func(e *Engine) { e.Kill(0) }); err != nil {
		t.Fatal(err)
	}
	e.RunRounds(1)
	for _, id := range r.stepped[0] {
		if id == 0 {
			t.Fatal("event did not fire before stepping")
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := New(8, newRecorder("p"))
	e.AddNodes(1)
	e.RunRounds(3)
	if err := e.ScheduleAt(1, func(*Engine) {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
	if err := e.ScheduleAt(3, func(*Engine) {}); err != nil {
		t.Fatalf("scheduling at current round failed: %v", err)
	}
}

func TestObserversRunEachRound(t *testing.T) {
	e := New(9, newRecorder("p"))
	e.AddNodes(2)
	var rounds []int
	e.Observe(func(_ *Engine, round int) { rounds = append(rounds, round) })
	e.RunRounds(3)
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Fatalf("observer rounds = %v", rounds)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(10, newRecorder("p"))
	e.AddNodes(1)
	n, ok := e.RunUntil(100, func(_ *Engine, round int) bool { return round == 4 })
	if !ok || n != 5 {
		t.Fatalf("RunUntil = (%d,%v), want (5,true)", n, ok)
	}
	n, ok = e.RunUntil(3, func(*Engine, int) bool { return false })
	if ok || n != 3 {
		t.Fatalf("RunUntil exhausted = (%d,%v), want (3,false)", n, ok)
	}
}

func TestRandomLive(t *testing.T) {
	e := New(11, newRecorder("p"))
	if e.RandomLive() != None {
		t.Fatal("RandomLive on empty system should be None")
	}
	e.AddNodes(100)
	// Kill most nodes: sampling must stay exact over the dense live set.
	for i := 0; i < 99; i++ {
		e.Kill(NodeID(i))
	}
	for i := 0; i < 50; i++ {
		if got := e.RandomLive(); got != 99 {
			t.Fatalf("RandomLive = %d, want 99", got)
		}
	}
}

func TestRandomLiveUniform(t *testing.T) {
	e := New(12, newRecorder("p"))
	e.AddNodes(10)
	counts := map[NodeID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[e.RandomLive()]++
	}
	for id, c := range counts {
		if c < trials/10-500 || c > trials/10+500 {
			t.Errorf("node %d drawn %d times, want ~%d", id, c, trials/10)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []NodeID {
		r := newRecorder("p")
		e := New(42, r)
		e.AddNodes(20)
		e.RunRounds(5)
		var flat []NodeID
		for _, round := range r.stepped {
			flat = append(flat, round...)
		}
		return flat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMeterAttribution(t *testing.T) {
	bottom := newRecorder("rps")
	e := New(13, bottom)
	e.AddNodes(1)
	charger := &chargingProtocol{units: 7}
	e2 := New(13, bottom, charger)
	e2.AddNodes(2)
	e2.RunRounds(2)
	m := e2.Meter()
	if got := m.RoundCost("charger", 0); got != 14 {
		t.Fatalf("round 0 charger cost = %d, want 14", got)
	}
	if got := m.TotalCost("charger"); got != 28 {
		t.Fatalf("total charger cost = %d, want 28", got)
	}
	if got := m.TotalRoundCost(1); got != 14 {
		t.Fatalf("total round 1 cost = %d, want 14", got)
	}
	if got := m.RoundCost("rps", 0); got != 0 {
		t.Fatalf("rps cost = %d, want 0", got)
	}
	layers := m.Layers()
	if len(layers) != 1 || layers[0] != "charger" {
		t.Fatalf("Layers = %v", layers)
	}
	_ = e
}

type chargingProtocol struct{ units int }

func (c *chargingProtocol) Name() string             { return "charger" }
func (c *chargingProtocol) InitNode(*Engine, NodeID) {}
func (c *chargingProtocol) Step(e *Engine, _ NodeID) { e.Charge(c.units) }

func TestChargeOutsideStepGoesToExternal(t *testing.T) {
	e := New(14)
	e.Charge(5)
	if got := e.Meter().RoundCost("external", 0); got != 5 {
		t.Fatalf("external cost = %d, want 5", got)
	}
}

func TestCostModelConstants(t *testing.T) {
	if DescriptorCost(2) != 3 {
		t.Errorf("DescriptorCost(2) = %d, want 3 (paper Sec. IV-A)", DescriptorCost(2))
	}
	if PointCost(2) != 2 {
		t.Errorf("PointCost(2) = %d, want 2 (paper Sec. IV-A)", PointCost(2))
	}
}

func TestLayerLookup(t *testing.T) {
	a, b := newRecorder("a"), newRecorder("b")
	e := New(15, a, b)
	if e.Layer("a") != a || e.Layer("b") != b || e.Layer("zzz") != nil {
		t.Fatal("Layer lookup broken")
	}
	names := e.LayerNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("LayerNames = %v", names)
	}
}

func TestLiveIDsSortedProperty(t *testing.T) {
	f := func(seed uint64, kills []uint8) bool {
		e := New(seed, newRecorder("p"))
		e.AddNodes(64)
		for _, k := range kills {
			e.Kill(NodeID(k % 64))
		}
		ids := e.LiveIDs()
		if len(ids) != e.NumLive() {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return false
			}
		}
		for _, id := range ids {
			if !e.Alive(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package sim

import (
	"fmt"
	"io"

	"polystyrene/internal/snap"
)

// Snapshotter is implemented by protocol layers whose per-node state must
// survive a checkpoint. A layer that carries no state between rounds
// (pure scratch, caches rebuilt at plan time) simply doesn't implement
// it, and the engine records an empty section for it.
//
// SnapshotState must write every bit of state that influences future
// rounds, in a deterministic order (sort map iterations). RestoreState
// reads the same stream back into a layer that has already been
// constructed and InitNode'd for the same configuration; it must fully
// overwrite — never merge with — the state those init paths produced.
type Snapshotter interface {
	SnapshotState(w *snap.Writer)
	RestoreState(r *snap.Reader) error
}

const engineKind = "engine"

// SnapshotState serializes the complete run state of the engine — RNG,
// round counter, liveness sets, meter ledgers and every layer's section —
// into w. It fails if events are still scheduled: events are arbitrary
// closures and cannot be serialized, so harnesses that checkpoint drive
// failures/reinjections inline (as the scenario drivers do) instead of
// scheduling them ahead.
//
// Worker-pool configuration (exchange parallelism, tail coalescing) and
// registered observers are deliberately not part of a snapshot: they
// describe the engine and its harness, not the simulated state, and the
// batched scheduler re-derives all per-step randomness from the engine
// generator, so restoring the RNG state alone reproduces batched
// trajectories byte-identically at any worker count.
func (e *Engine) SnapshotState(w *snap.Writer) error {
	if len(e.events) > 0 {
		return fmt.Errorf("sim: cannot snapshot with %d pending scheduled event rounds", len(e.events))
	}
	for _, s := range e.rng.State() {
		w.U64(s)
	}
	w.Int(e.round)
	w.Int(len(e.alive))
	// The dense live set is order-sensitive: RandomLive indexes it, and
	// Kill swap-removes, so the exact ordering is part of the trajectory.
	w.Len(len(e.live))
	for _, id := range e.live {
		w.Int(int(id))
	}
	e.meter.snapshotState(w)
	w.Len(len(e.layers))
	for _, l := range e.layers {
		w.String(l.Name())
		if s, ok := l.(Snapshotter); ok {
			w.Bool(true)
			var lw snap.Writer
			s.SnapshotState(&lw)
			w.Section(lw.Bytes())
		} else {
			w.Bool(false)
		}
	}
	return nil
}

// RestoreState is the inverse of SnapshotState. The engine must already
// be configured with the same layer stack the snapshot was taken from
// (layers are matched by position and name); pending events are
// discarded, observers are left registered, and the RNG is mutated in
// place so contexts aliasing it keep working. The snapshot is parsed and
// validated in full before any engine state is touched.
func (e *Engine) RestoreState(r *snap.Reader) error {
	// Phase 1: parse everything into temporaries.
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = r.U64()
	}
	round := r.Int()
	numNodes := r.Int()
	nLive := r.Len(8)
	live := make([]NodeID, nLive)
	for i := range live {
		live[i] = NodeID(r.Int())
	}
	var meter meterState
	meter.parse(r)
	nLayers := r.Len(2)
	type layerSection struct {
		name string
		has  bool
		body *snap.Reader
	}
	sections := make([]layerSection, nLayers)
	for i := range sections {
		sections[i].name = r.String()
		sections[i].has = r.Bool()
		if sections[i].has {
			sections[i].body = r.Section()
		}
	}
	if err := r.Err(); err != nil {
		return err
	}

	// Phase 2: validate against this engine's configuration.
	if round < 0 || numNodes < 0 {
		return fmt.Errorf("sim: snapshot has negative round (%d) or node count (%d)", round, numNodes)
	}
	seen := make([]bool, numNodes)
	for _, id := range live {
		if id < 0 || int(id) >= numNodes {
			return fmt.Errorf("sim: snapshot live ID %d out of range [0,%d)", id, numNodes)
		}
		if seen[id] {
			return fmt.Errorf("sim: snapshot live ID %d duplicated", id)
		}
		seen[id] = true
	}
	if len(sections) != len(e.layers) {
		return fmt.Errorf("sim: snapshot has %d layers, engine has %d", len(sections), len(e.layers))
	}
	for i, s := range sections {
		if s.name != e.layers[i].Name() {
			return fmt.Errorf("sim: snapshot layer %d is %q, engine has %q", i, s.name, e.layers[i].Name())
		}
		if _, ok := e.layers[i].(Snapshotter); ok != s.has {
			return fmt.Errorf("sim: snapshot layer %q state presence mismatch", s.name)
		}
	}

	// Phase 3: overwrite engine state.
	e.rng.SetState(rngState)
	e.round = round
	e.alive = e.alive[:0]
	e.livePos = e.livePos[:0]
	for i := 0; i < numNodes; i++ {
		e.alive = append(e.alive, false)
		e.livePos = append(e.livePos, -1)
	}
	e.live = e.live[:0]
	for i, id := range live {
		e.alive[id] = true
		e.livePos[id] = int32(i)
		e.live = append(e.live, id)
	}
	clear(e.events)
	meter.apply(e.meter)
	e.curLayer = -1
	e.layerLedger = e.layerLedger[:0]
	for _, l := range e.layers {
		e.layerLedger = append(e.layerLedger, e.meter.ledgerIndex(l.Name()))
	}
	for i, s := range sections {
		if !s.has {
			continue
		}
		if err := e.layers[i].(Snapshotter).RestoreState(s.body); err != nil {
			return fmt.Errorf("sim: restoring layer %q: %w", s.name, err)
		}
		if err := snap.CloseSection(s.name, s.body); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot writes a standalone, checksummed engine snapshot to w.
func (e *Engine) Snapshot(w io.Writer) error {
	var sw snap.Writer
	if err := e.SnapshotState(&sw); err != nil {
		return err
	}
	return snap.WriteEnvelope(w, engineKind, sw.Bytes())
}

// Restore reads a snapshot written by Snapshot into the engine. The
// entire file is checksum- and version-verified before any state is
// mutated, so a corrupted or truncated snapshot never produces a
// partial restore.
func (e *Engine) Restore(rd io.Reader) error {
	body, err := snap.ReadEnvelope(rd, engineKind)
	if err != nil {
		return err
	}
	r := snap.NewReader(body)
	if err := e.RestoreState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("sim: %d trailing bytes in engine snapshot", r.Remaining())
	}
	return nil
}

// meterState is the parsed-but-not-applied image of a Meter.
type meterState struct {
	names   []string
	charged []bool
	ledgers [][]int
}

func (m *Meter) snapshotState(w *snap.Writer) {
	// Slot order matters: layerLedger indices are rebuilt by registering
	// names in this exact order on restore.
	w.Len(len(m.names))
	for i, name := range m.names {
		w.String(name)
		w.Bool(m.charged[i])
		w.Len(len(m.ledgers[i]))
		for _, v := range m.ledgers[i] {
			w.Int(v)
		}
	}
}

func (ms *meterState) parse(r *snap.Reader) {
	n := r.Len(2)
	ms.names = make([]string, 0, n)
	ms.charged = make([]bool, 0, n)
	ms.ledgers = make([][]int, 0, n)
	for i := 0; i < n; i++ {
		ms.names = append(ms.names, r.String())
		ms.charged = append(ms.charged, r.Bool())
		ln := r.Len(8)
		ledger := make([]int, 0, ln)
		for j := 0; j < ln; j++ {
			ledger = append(ledger, r.Int())
		}
		ms.ledgers = append(ms.ledgers, ledger)
	}
}

func (ms *meterState) apply(m *Meter) {
	clear(m.index)
	m.names = m.names[:0]
	m.charged = m.charged[:0]
	old := m.ledgers
	m.ledgers = m.ledgers[:0]
	for i, name := range ms.names {
		var ledger []int
		if i < len(old) {
			ledger = append(old[i][:0], ms.ledgers[i]...)
		} else {
			ledger = ms.ledgers[i]
		}
		m.index[name] = i
		m.names = append(m.names, name)
		m.charged = append(m.charged, ms.charged[i])
		m.ledgers = append(m.ledgers, ledger)
	}
}

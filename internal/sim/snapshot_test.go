package sim

import (
	"bytes"
	"testing"

	"polystyrene/internal/snap"
)

// snapLayer is a minimal stateful protocol: every step increments the
// node's counter by a value drawn from the engine stream, so both layer
// state and RNG state must survive a round trip for streams to match.
type snapLayer struct {
	name   string
	counts []int
}

func (l *snapLayer) Name() string { return l.name }
func (l *snapLayer) InitNode(e *Engine, id NodeID) {
	for len(l.counts) <= int(id) {
		l.counts = append(l.counts, 0)
	}
}
func (l *snapLayer) Step(e *Engine, id NodeID) {
	l.counts[id] += e.Rand().Intn(100)
	e.Charge(1)
}

func (l *snapLayer) SnapshotState(w *snap.Writer) {
	w.Len(len(l.counts))
	for _, c := range l.counts {
		w.Int(c)
	}
}

func (l *snapLayer) RestoreState(r *snap.Reader) error {
	n := r.Len(8)
	counts := make([]int, n)
	for i := range counts {
		counts[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	l.counts = counts
	return nil
}

// statelessLayer carries nothing between rounds and does not implement
// Snapshotter.
type statelessLayer struct{}

func (statelessLayer) Name() string              { return "stateless" }
func (statelessLayer) InitNode(*Engine, NodeID)  {}
func (statelessLayer) Step(e *Engine, id NodeID) { e.Charge(2) }

func TestEngineSnapshotRoundTrip(t *testing.T) {
	la := &snapLayer{name: "counter"}
	e := New(5, la, statelessLayer{})
	e.AddNodes(20)
	e.RunRounds(4)
	e.Kill(3)
	e.Kill(11)
	e.RunRounds(3)

	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	lb := &snapLayer{name: "counter"}
	e2 := New(0, lb, statelessLayer{})
	if err := e2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if e2.Round() != e.Round() || e2.NumNodes() != e.NumNodes() || e2.NumLive() != e.NumLive() {
		t.Fatalf("restored engine shape (round=%d nodes=%d live=%d) != original (%d, %d, %d)",
			e2.Round(), e2.NumNodes(), e2.NumLive(), e.Round(), e.NumNodes(), e.NumLive())
	}
	if e2.Alive(3) || e2.Alive(11) || !e2.Alive(0) {
		t.Fatal("restored liveness diverged")
	}
	if got, want := e2.Meter().TotalCost("counter"), e.Meter().TotalCost("counter"); got != want {
		t.Fatalf("restored meter cost %d, want %d", got, want)
	}

	// Both engines must continue identically: same layer state, same
	// RNG stream, same meter.
	e.RunRounds(5)
	e2.RunRounds(5)
	for id := range la.counts {
		if la.counts[id] != lb.counts[id] {
			t.Fatalf("node %d counter diverged after resume: %d != %d", id, la.counts[id], lb.counts[id])
		}
	}
	if a, b := e.Rand().Uint64(), e2.Rand().Uint64(); a != b {
		t.Fatalf("RNG streams diverged after resume: %d != %d", a, b)
	}
	for r := 0; r < e.Round(); r++ {
		if a, b := e.Meter().TotalRoundCost(r), e2.Meter().TotalRoundCost(r); a != b {
			t.Fatalf("round %d meter cost diverged: %d != %d", r, a, b)
		}
	}
}

func TestEngineSnapshotRejectsPendingEvents(t *testing.T) {
	e := New(1, &snapLayer{name: "counter"})
	e.AddNodes(4)
	if err := e.ScheduleAt(10, func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err == nil {
		t.Fatal("snapshot with pending events accepted")
	}
}

func TestEngineRestoreRejectsLayerMismatch(t *testing.T) {
	e := New(1, &snapLayer{name: "counter"})
	e.AddNodes(4)
	e.RunRounds(2)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other := New(0, &snapLayer{name: "renamed"})
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a different layer stack accepted")
	}
	fewer := New(0)
	if err := fewer.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into an engine with fewer layers accepted")
	}
}

func TestEngineRestoreRejectsCorruption(t *testing.T) {
	e := New(1, &snapLayer{name: "counter"})
	e.AddNodes(4)
	e.RunRounds(2)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	target := New(0, &snapLayer{name: "counter"})
	for _, pos := range []int{0, 9, len(good) / 2, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x10
		if err := target.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupted snapshot (flip@%d) accepted", pos)
		}
	}
	if err := target.Restore(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := target.Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// Package snap implements the binary snapshot codec used by the
// deterministic checkpoint/restore machinery.
//
// A snapshot file is a single envelope:
//
//	magic    8 bytes  "PSYSNAP\x00"
//	kind     length-prefixed string ("engine", "scenario", "system", ...)
//	version  uint32
//	bodyLen  uint64
//	body     bodyLen bytes
//	checksum uint64 FNV-1a over every preceding byte
//
// All integers are little-endian. The body itself is a flat stream of
// length-prefixed primitives written by Writer and consumed by Reader.
// Decode verifies the magic, kind, version, length and checksum before
// returning the body, so callers can guarantee that a corrupted or
// truncated snapshot is rejected before any state has been mutated.
//
// Reader carries a sticky error: after the first malformed read every
// subsequent call returns a zero value, and the error is reported once at
// the end via Err. That keeps restore code linear — no per-field error
// plumbing — without ever silently accepting bad data.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// Version is the current snapshot format version. Restore rejects any
// other version outright: the format has no cross-version migration.
const Version = 1

var magic = [8]byte{'P', 'S', 'Y', 'S', 'N', 'A', 'P', 0}

// Writer accumulates a snapshot body in memory.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated body. The slice aliases the writer's
// internal buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// I64 appends a signed integer as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int via I64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by bit pattern, preserving NaN payloads and ±Inf.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Len appends a non-negative count. Restore reads it back with
// Reader.Len, which bounds it against the remaining input.
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.buf = append(w.buf, s...)
}

// Section appends a length-prefixed nested body, so a reader can hand a
// bounded sub-reader to the code that owns the section and detect
// over- or under-reads at the section boundary.
func (w *Writer) Section(body []byte) {
	w.Len(len(body))
	w.buf = append(w.buf, body...)
}

// Reader consumes a snapshot body produced by Writer. The first
// malformed read latches an error; every later call is a no-op returning
// zero values.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over body.
func NewReader(body []byte) *Reader { return &Reader{data: body} }

// Err reports the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("truncated body: need %d bytes at offset %d, have %d", n, r.off, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads a signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int via I64.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a single byte, rejecting anything but 0 or 1.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %#x at offset %d", b[0], r.off-1)
		return false
	}
}

// Len reads a count written by Writer.Len and bounds it: each counted
// item must occupy at least itemBytes of the remaining input (use 1 for
// variable-size items). This caps allocation on malformed input so a bad
// length fails cleanly instead of attempting a huge make().
func (r *Reader) Len(itemBytes int) int {
	v := r.U64()
	if r.err != nil {
		return 0
	}
	if itemBytes < 1 {
		itemBytes = 1
	}
	if v > uint64(r.Remaining()/itemBytes) {
		r.fail("implausible count %d at offset %d (%d bytes remain)", v, r.off-8, r.Remaining())
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Section reads a length-prefixed nested body and returns a bounded
// sub-reader over it.
func (r *Reader) Section() *Reader {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return &Reader{err: r.err}
	}
	return NewReader(b)
}

// CloseSection folds a sub-reader's outcome back into an error: the
// section must have decoded cleanly and been consumed exactly.
func CloseSection(name string, sub *Reader) error {
	if err := sub.Err(); err != nil {
		return fmt.Errorf("snap: section %q: %w", name, err)
	}
	if sub.Remaining() != 0 {
		return fmt.Errorf("snap: section %q: %d trailing bytes", name, sub.Remaining())
	}
	return nil
}

// Encode wraps a body in the versioned, checksummed envelope.
func Encode(kind string, body []byte) []byte {
	var w Writer
	w.buf = append(w.buf, magic[:]...)
	w.String(kind)
	w.U32(Version)
	w.Section(body)
	h := fnv.New64a()
	h.Write(w.buf)
	w.U64(h.Sum64())
	return w.buf
}

// Decode verifies an envelope end to end — magic, kind, version, body
// length and whole-file checksum — and returns the body. It never returns
// a partially validated body: any defect yields a nil body and an error.
//
// Truncation classes are diagnosed before the checksum so an interrupted
// or torn write produces an actionable message ("empty snapshot",
// "declares an N-byte body but only M remain") rather than a generic
// corruption report; the checksum then covers every defect the structural
// checks cannot see.
func Decode(kind string, data []byte) ([]byte, error) {
	const tail = 8 // trailing checksum
	if len(data) == 0 {
		return nil, fmt.Errorf("snap: empty snapshot (0 bytes): not a snapshot envelope")
	}
	if len(data) < len(magic) {
		return nil, fmt.Errorf("snap: truncated snapshot: %d bytes is shorter than the %d-byte magic (interrupted write?)",
			len(data), len(magic))
	}
	var m [8]byte
	copy(m[:], data)
	if m != magic {
		return nil, fmt.Errorf("snap: bad magic %q: not a snapshot file", m[:])
	}
	if len(data) < len(magic)+tail {
		return nil, fmt.Errorf("snap: header-only snapshot: %d bytes cannot hold the trailing checksum (interrupted write?)",
			len(data))
	}
	// Structural pass over the unverified envelope, tail excluded: a
	// truncated file is reported as such, with the declared-vs-present
	// byte counts, instead of as a bare checksum mismatch.
	r := NewReader(data[len(magic) : len(data)-tail])
	gotKind := r.String()
	version := r.U32()
	bodyLen := r.U64()
	if r.Err() == nil && bodyLen > uint64(r.Remaining()) {
		return nil, fmt.Errorf("snap: truncated snapshot: envelope declares a %d-byte body but only %d bytes remain (interrupted write?)",
			bodyLen, r.Remaining())
	}
	body := r.take(int(bodyLen))
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snap: malformed envelope header: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snap: %d trailing bytes after body", r.Remaining())
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-tail])
	if got := binary.LittleEndian.Uint64(data[len(data)-tail:]); got != h.Sum64() {
		return nil, fmt.Errorf("snap: checksum mismatch: file %#016x, computed %#016x (corrupted snapshot)", got, h.Sum64())
	}
	if gotKind != kind {
		return nil, fmt.Errorf("snap: snapshot kind %q, want %q", gotKind, kind)
	}
	if version != Version {
		return nil, fmt.Errorf("snap: unsupported snapshot version %d (this build reads version %d)", version, Version)
	}
	return body, nil
}

// WriteEnvelope encodes body and writes the envelope to w.
func WriteEnvelope(w io.Writer, kind string, body []byte) error {
	_, err := w.Write(Encode(kind, body))
	return err
}

// ReadEnvelope buffers all of r and decodes it. Snapshots are verified
// whole-file before any restore begins, so streaming decode is
// deliberately not offered.
func ReadEnvelope(r io.Reader, kind string) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snap: reading snapshot: %w", err)
	}
	return Decode(kind, data)
}

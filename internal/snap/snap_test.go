package snap

import (
	"bytes"
	"hash/fnv"
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0xdeadbeefcafef00d)
	w.U32(42)
	w.I64(-7)
	w.Int(123456)
	w.F64(math.NaN())
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.String("hello, snapshot")
	w.Len(3)
	w.Bool(true)
	w.Bool(true)
	w.Bool(true)

	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.U32(); got != 42 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := r.Len(1); got != 3 {
		t.Errorf("Len = %d", got)
	}
	for i := 0; i < 3; i++ {
		if !r.Bool() {
			t.Errorf("counted item %d lost", i)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestLenBoundsAllocation(t *testing.T) {
	var w Writer
	w.Len(1 << 40)
	r := NewReader(w.Bytes())
	if got := r.Len(8); got != 0 {
		t.Errorf("bogus Len returned %d", got)
	}
	if r.Err() == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("Bool accepted byte 7")
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U64() // truncated: latches the error
	if r.Err() == nil {
		t.Fatal("truncated U64 accepted")
	}
	first := r.Err()
	r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Fatal("sticky error was replaced")
	}
}

func TestSectionBounds(t *testing.T) {
	var inner Writer
	inner.U64(11)
	var w Writer
	w.Section(inner.Bytes())
	w.U64(99)

	r := NewReader(w.Bytes())
	sub := r.Section()
	if got := sub.U64(); got != 11 {
		t.Errorf("section U64 = %d", got)
	}
	if err := CloseSection("test", sub); err != nil {
		t.Fatalf("CloseSection: %v", err)
	}
	// The sub-reader must not see past its boundary.
	sub2 := NewReader(w.Bytes())
	s := sub2.Section()
	s.U64()
	s.U64()
	if s.Err() == nil {
		t.Fatal("section over-read was not detected")
	}
	if got := r.U64(); got != 99 {
		t.Errorf("outer U64 after section = %d", got)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	body := []byte("engine state goes here")
	enc := Encode("engine", body)
	got, err := Decode("engine", enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: %q", got)
	}
}

func TestEnvelopeIORoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "scenario", []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteEnvelope: %v", err)
	}
	got, err := ReadEnvelope(&buf, "scenario")
	if err != nil {
		t.Fatalf("ReadEnvelope: %v", err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("body mismatch: %v", got)
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	enc := Encode("engine", []byte("state"))
	// Flip every byte in turn: each single-byte corruption must be caught.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode("engine", bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestEnvelopeRejectsTruncation(t *testing.T) {
	enc := Encode("engine", []byte("0123456789abcdef"))
	for n := 0; n < len(enc); n++ {
		if _, err := Decode("engine", enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestEnvelopeRejectsWrongKind(t *testing.T) {
	enc := Encode("engine", []byte("state"))
	_, err := Decode("scenario", enc)
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("wrong kind accepted or unclear error: %v", err)
	}
}

func TestEnvelopeRejectsWrongVersion(t *testing.T) {
	// Hand-build an envelope with version+1 and a valid checksum: the
	// version gate, not the checksum, must reject it.
	var w Writer
	w.buf = append(w.buf, magic[:]...)
	w.String("engine")
	w.U32(Version + 1)
	w.Section([]byte("future state"))
	enc := appendChecksum(w.Bytes())
	_, err := Decode("engine", enc)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted or unclear error: %v", err)
	}
}

// TestEnvelopeTruncationDiagnostics pins the error message of every
// truncation class at the envelope layer: an operator reading a recovery
// log must be able to tell an empty or torn file (a crash mid-write) from
// genuine bit-level corruption.
func TestEnvelopeTruncationDiagnostics(t *testing.T) {
	enc := Encode("engine", []byte("0123456789abcdef"))
	headerLen := len(magic) + 8 + len("engine") + 4 // magic + kind + version
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "empty snapshot"},
		{"empty-slice", []byte{}, "empty snapshot"},
		{"partial-magic", enc[:3], "shorter than the 8-byte magic"},
		{"magic-only", enc[:len(magic)], "header-only snapshot"},
		{"header-under-checksum", enc[:len(magic)+7], "header-only snapshot"},
		{"mid-kind", enc[:len(magic)+10], "malformed envelope header"},
		{"header-only", enc[:headerLen], "malformed envelope header"},
		{"body-length-cut", enc[:headerLen+4], "malformed envelope header"},
		{"mid-body", enc[:len(enc)-12], "declares a 16-byte body"},
		{"checksum-cut", enc[:len(enc)-3], "declares a 16-byte body"},
		{"not-a-snapshot", []byte("#!/bin/sh\necho hello\n"), "bad magic"},
		{"bit-flip-body", flipByte(enc, headerLen+10), "checksum mismatch"},
		{"bit-flip-checksum", flipByte(enc, len(enc)-1), "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode("engine", tc.data)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// ReadEnvelope must surface the identical diagnosis.
			_, rerr := ReadEnvelope(bytes.NewReader(tc.data), "engine")
			if rerr == nil || !strings.Contains(rerr.Error(), tc.want) {
				t.Fatalf("ReadEnvelope error %q does not mention %q", rerr, tc.want)
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

func appendChecksum(b []byte) []byte {
	// Mirrors Encode's trailer for hand-built test envelopes.
	h := fnv.New64a()
	h.Write(b)
	var w Writer
	w.buf = append(w.buf, b...)
	w.U64(h.Sum64())
	return w.buf
}

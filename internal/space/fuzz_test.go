package space

import (
	"math"
	"testing"
)

// Fuzz targets for the torus geometry: the metric axioms the whole
// protocol stack leans on (Space interface contract), the wrap-around
// canonicalisation, and the grid/cell correspondence the evaluation
// scenario builds its failure regions from. Run the seed corpus with
// go test; explore with go test -fuzz=FuzzTorus... .

const fuzzEps = 1e-9

// sanitizeWidth maps arbitrary float input to a usable circumference.
func sanitizeWidth(w float64) float64 {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return 1
	}
	w = math.Abs(w)
	if w < 1e-3 {
		return 1e-3 + w
	}
	if w > 1e6 {
		return 1e6
	}
	return w
}

// sanitizeCoord maps arbitrary float input to a finite coordinate.
func sanitizeCoord(c float64) float64 {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0
	}
	return math.Mod(c, 1e9)
}

func FuzzTorusDistanceSymmetry(f *testing.F) {
	f.Add(80.0, 40.0, 1.0, 2.0, 70.0, 30.0)
	f.Add(1.0, 1.0, 0.0, 0.0, 0.5, 0.5)
	f.Add(320.0, 160.0, -5.0, 900.0, 319.9, 0.1)
	f.Fuzz(func(t *testing.T, w1, w2, ax, ay, bx, by float64) {
		tor := NewTorus(sanitizeWidth(w1), sanitizeWidth(w2))
		a := Point{sanitizeCoord(ax), sanitizeCoord(ay)}
		b := Point{sanitizeCoord(bx), sanitizeCoord(by)}

		dab, dba := tor.Distance(a, b), tor.Distance(b, a)
		if math.Abs(dab-dba) > fuzzEps*(1+dab) {
			t.Fatalf("asymmetric: d(a,b)=%v d(b,a)=%v (a=%v b=%v)", dab, dba, a, b)
		}
		if dab < 0 || math.IsNaN(dab) {
			t.Fatalf("invalid distance %v", dab)
		}
		if d := tor.Distance(a, a); d != 0 {
			t.Fatalf("d(a,a) = %v, want 0", d)
		}
		// No pair can be further apart than the half-circumference diagonal.
		bound := math.Hypot(tor.Width(0)/2, tor.Width(1)/2)
		if dab > bound*(1+fuzzEps) {
			t.Fatalf("d=%v exceeds half-diagonal %v", dab, bound)
		}
	})
}

func FuzzTorusTriangleInequality(f *testing.F) {
	f.Add(80.0, 40.0, 1.0, 2.0, 41.0, 20.0, 79.0, 39.0)
	f.Add(2.0, 3.0, 0.1, 0.1, 1.9, 2.9, 1.0, 1.5)
	f.Fuzz(func(t *testing.T, w1, w2, ax, ay, bx, by, cx, cy float64) {
		tor := NewTorus(sanitizeWidth(w1), sanitizeWidth(w2))
		a := Point{sanitizeCoord(ax), sanitizeCoord(ay)}
		b := Point{sanitizeCoord(bx), sanitizeCoord(by)}
		c := Point{sanitizeCoord(cx), sanitizeCoord(cy)}

		dac := tor.Distance(a, c)
		viaB := tor.Distance(a, b) + tor.Distance(b, c)
		if dac > viaB+fuzzEps*(1+viaB) {
			t.Fatalf("triangle violated: d(a,c)=%v > d(a,b)+d(b,c)=%v", dac, viaB)
		}
	})
}

func FuzzTorusWrapCanonical(f *testing.F) {
	f.Add(80.0, 40.0, -1.0, 41.5)
	f.Add(1.0, 1.0, 1e6, -1e6)
	f.Fuzz(func(t *testing.T, w1, w2, px, py float64) {
		tor := NewTorus(sanitizeWidth(w1), sanitizeWidth(w2))
		p := Point{sanitizeCoord(px), sanitizeCoord(py)}

		q := tor.Wrap(p)
		for i, c := range q {
			if c < 0 || c >= tor.Width(i) {
				t.Fatalf("Wrap out of range: %v (widths %v, %v)", q, tor.Width(0), tor.Width(1))
			}
		}
		// Wrapping is idempotent and distance-preserving: the wrapped
		// representative is metrically indistinguishable from the original.
		if !tor.Wrap(q).Equal(q) {
			t.Fatalf("Wrap not idempotent: %v -> %v", q, tor.Wrap(q))
		}
		if d := tor.Distance(p, q); d > fuzzEps*(1+math.Abs(p[0])+math.Abs(p[1])) {
			t.Fatalf("Wrap moved the point: d(p, Wrap(p)) = %v", d)
		}
	})
}

func FuzzTorusGridCellInverse(f *testing.F) {
	f.Add(uint8(80), uint8(40), 1.0)
	f.Add(uint8(16), uint8(8), 2.5)
	f.Add(uint8(1), uint8(1), 0.25)
	f.Fuzz(func(t *testing.T, w8, h8 uint8, step float64) {
		w, h := int(w8%64)+1, int(h8%64)+1
		if math.IsNaN(step) || math.IsInf(step, 0) {
			step = 1
		}
		step = math.Abs(step)
		if step < 1e-3 || step > 1e3 {
			step = 1
		}

		pts := TorusGrid(w, h, step)
		if len(pts) != w*h {
			t.Fatalf("grid size %d, want %d", len(pts), w*h)
		}
		tor := TorusForGrid(w, h, step)
		for idx, p := range pts {
			// Row-major cell inverse: the point determines its grid cell,
			// and the cell determines its slice index.
			x := int(math.Round(p[0] / step))
			y := int(math.Round(p[1] / step))
			if got := y*w + x; got != idx {
				t.Fatalf("cell inverse broken: point %v at index %d maps to %d (x=%d y=%d)",
					p, idx, got, x, y)
			}
			// Every grid point is already canonical on its torus.
			if !tor.Wrap(p).Equal(p) {
				t.Fatalf("grid point %v not canonical on torus (%v x %v)",
					p, tor.Width(0), tor.Width(1))
			}
		}
		// Adjacent cells sit exactly one step apart (w > 1 needed for a
		// horizontal neighbour).
		if w > 1 {
			if d := tor.Distance(pts[0], pts[1]); math.Abs(d-step) > fuzzEps*step {
				t.Fatalf("grid spacing %v, want %v", d, step)
			}
		}
	})
}

package space

import (
	"polystyrene/internal/topk"
	"polystyrene/internal/xrand"
)

// Medoid returns the medoid of points under s: the element x0 that
// minimises the sum of squared distances to all other elements
// (paper Sec. III-C). Ties break towards the lowest index so the result is
// deterministic for a given slice order. It returns -1 for an empty slice.
//
// The medoid — not the centroid — is used for node positions because the
// torus is a modular space where scalar division, and hence the mean, is
// ill defined (paper footnote 2).
func Medoid(s Space, points []Point) int {
	best, bestCost := -1, 0.0
	for i, cand := range points {
		cost := 0.0
		for j, other := range points {
			if i == j {
				continue
			}
			d := s.Distance(cand, other)
			cost += d * d
			if best >= 0 && cost >= bestCost {
				break // cannot beat the incumbent; skip the rest
			}
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// MedoidPoint is like Medoid but returns the point itself (nil when points
// is empty).
func MedoidPoint(s Space, points []Point) Point {
	i := Medoid(s, points)
	if i < 0 {
		return nil
	}
	return points[i]
}

// Centroid returns the arithmetic mean of points. It is only meaningful in
// vector spaces (Euclidean, Manhattan); do not use it on modular spaces.
// It returns nil for an empty slice.
func Centroid(points []Point) Point {
	if len(points) == 0 {
		return nil
	}
	c := make(Point, len(points[0]))
	for _, p := range points {
		for i, v := range p {
			c[i] += v
		}
	}
	inv := 1 / float64(len(points))
	for i := range c {
		c[i] *= inv
	}
	return c
}

// Diameter returns the indices (i, j) of a farthest pair in points under s,
// by exhaustive O(n^2) search, together with their distance. For n < 2 it
// returns (-1, -1, 0).
func Diameter(s Space, points []Point) (i, j int, dist float64) {
	i, j = -1, -1
	for a := 0; a < len(points); a++ {
		for b := a + 1; b < len(points); b++ {
			if d := s.Distance(points[a], points[b]); d > dist || i < 0 {
				i, j, dist = a, b, d
			}
		}
	}
	return i, j, dist
}

// DiameterSampled approximates a diameter by examining maxPairs random
// pairs. The paper (Sec. III-F) suggests sampling when a merged guest set
// grows large ("say over 30" points). When the number of pairs is at most
// maxPairs the search is exhaustive and exact. rng may not be nil.
func DiameterSampled(s Space, points []Point, maxPairs int, rng *xrand.Rand) (i, j int, dist float64) {
	n := len(points)
	if n < 2 {
		return -1, -1, 0
	}
	totalPairs := n * (n - 1) / 2
	if totalPairs <= maxPairs {
		return Diameter(s, points)
	}
	i, j = -1, -1
	for k := 0; k < maxPairs; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		if d := s.Distance(points[a], points[b]); d > dist || i < 0 {
			i, j, dist = a, b, d
		}
	}
	return i, j, dist
}

// SumSquaredTo returns the sum of squared distances from x to every element
// of points.
func SumSquaredTo(s Space, x Point, points []Point) float64 {
	sum := 0.0
	for _, p := range points {
		d := s.Distance(x, p)
		sum += d * d
	}
	return sum
}

// Scatter returns the within-set sum of squared pairwise distances —
// the objective clustering function the paper uses to compare partitions
// (Sec. III-F): sum over unordered pairs {i,j} of d(i,j)^2.
func Scatter(s Space, points []Point) float64 {
	sum := 0.0
	for a := 0; a < len(points); a++ {
		for b := a + 1; b < len(points); b++ {
			d := s.Distance(points[a], points[b])
			sum += d * d
		}
	}
	return sum
}

// Nearest returns the index in points of the element closest to x, and the
// distance. It returns (-1, +Inf-free 0) for an empty slice.
func Nearest(s Space, x Point, points []Point) (int, float64) {
	best, bestD := -1, 0.0
	for i, p := range points {
		d := s.Distance(x, p)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// KNearest returns the indices of the k nearest elements of points to x,
// ordered by increasing distance (ties toward the lower index). When
// k >= len(points) all indices are returned. Selection is delegated to
// topk.SmallestK, the same partial-selection pass the gossip layers use,
// so there is a single tie-break semantics across the system.
func KNearest(s Space, x Point, points []Point, k int) []int {
	if k <= 0 {
		return nil
	}
	dist := make([]float64, len(points))
	idx := make([]int, len(points))
	for i, p := range points {
		dist[i] = s.Distance(x, p)
		idx[i] = i
	}
	k = topk.SmallestK(dist, idx, k)
	return idx[:k]
}

package space

// TorusGrid returns the w x h regular grid of data points used by the
// paper's evaluation (Sec. IV-A): points (x*step, y*step) for x in [0,w)
// and y in [0,h), living on a torus of widths (w*step, h*step). The
// distance between two grid-adjacent points is step.
//
// Points are emitted row-major (y outer, x inner), so a contiguous prefix
// or suffix of the slice corresponds to a contiguous vertical band of the
// torus — exactly the "consecutive portion of the topology" that the
// catastrophic-failure scenario removes.
func TorusGrid(w, h int, step float64) []Point {
	if w <= 0 || h <= 0 || step <= 0 {
		panic("space: TorusGrid requires positive dimensions and step")
	}
	pts := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, Point{float64(x) * step, float64(y) * step})
		}
	}
	return pts
}

// TorusGridOffset is TorusGrid shifted by (dx, dy): the paper's reinjection
// phase places 1600 fresh nodes "on a grid parallel to the original one",
// which we realise as the original grid offset by half a step in each
// dimension.
func TorusGridOffset(w, h int, step, dx, dy float64) []Point {
	pts := TorusGrid(w, h, step)
	for _, p := range pts {
		p[0] += dx
		p[1] += dy
	}
	return pts
}

// TorusForGrid returns the torus that TorusGrid(w, h, step) tiles.
func TorusForGrid(w, h int, step float64) Torus {
	return NewTorus(float64(w)*step, float64(h)*step)
}

// RingPoints returns n evenly spaced points on a ring of the given
// circumference, for ring-overlay examples.
func RingPoints(n int, circumference float64) []Point {
	if n <= 0 || circumference <= 0 {
		panic("space: RingPoints requires positive arguments")
	}
	pts := make([]Point, n)
	step := circumference / float64(n)
	for i := range pts {
		pts[i] = Point{float64(i) * step}
	}
	return pts
}

// RightHalf reports whether a 2D point lies in the right half of a torus of
// width w (x in [w/2, w)). The paper's catastrophic failure kills "all the
// 1600 nodes located in one half of the torus"; combined with the row-major
// grid this selects a contiguous region.
func RightHalf(p Point, w float64) bool {
	return p[0] >= w/2
}

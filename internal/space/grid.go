package space

import "math"

// TorusGrid returns the w x h regular grid of data points used by the
// paper's evaluation (Sec. IV-A): points (x*step, y*step) for x in [0,w)
// and y in [0,h), living on a torus of widths (w*step, h*step). The
// distance between two grid-adjacent points is step.
//
// Points are emitted row-major (y outer, x inner), so a contiguous prefix
// or suffix of the slice corresponds to a contiguous vertical band of the
// torus — exactly the "consecutive portion of the topology" that the
// catastrophic-failure scenario removes.
func TorusGrid(w, h int, step float64) []Point {
	if w <= 0 || h <= 0 || step <= 0 {
		panic("space: TorusGrid requires positive dimensions and step")
	}
	pts := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, Point{float64(x) * step, float64(y) * step})
		}
	}
	return pts
}

// TorusGridOffset is TorusGrid shifted by (dx, dy): the paper's reinjection
// phase places 1600 fresh nodes "on a grid parallel to the original one",
// which we realise as the original grid offset by half a step in each
// dimension.
func TorusGridOffset(w, h int, step, dx, dy float64) []Point {
	pts := TorusGrid(w, h, step)
	for _, p := range pts {
		p[0] += dx
		p[1] += dy
	}
	return pts
}

// TorusForGrid returns the torus that TorusGrid(w, h, step) tiles.
func TorusForGrid(w, h int, step float64) Torus {
	return NewTorus(float64(w)*step, float64(h)*step)
}

// GridCell returns the cell (cx, cy) of the w x h grid of the given step
// that point p falls in — the inverse of TorusGrid's placement: cell
// (cx, cy) covers [cx*step, (cx+1)*step) x [cy*step, (cy+1)*step) on the
// torus, and the point emitted at index cy*w+cx is its lower corner.
// Coordinates outside the fundamental domain wrap first, so any aliased
// position resolves to the same cell. Only p's first two coordinates are
// consulted.
func GridCell(p Point, w, h int, step float64) (cx, cy int) {
	if w <= 0 || h <= 0 || step <= 0 {
		panic("space: GridCell requires positive dimensions and step")
	}
	cx = wrapCell(p[0], w, step)
	cy = wrapCell(p[1], h, step)
	return cx, cy
}

// wrapCell maps one coordinate into its cell index in [0, n): wrap into
// the fundamental domain [0, n*step), divide by step, and clamp the
// float-rounding edge where a value epsilon below the domain width lands
// exactly on n.
func wrapCell(c float64, n int, step float64) int {
	width := float64(n) * step
	c = math.Mod(c, width)
	if c < 0 {
		c += width
	}
	i := int(c / step)
	if i >= n {
		i = n - 1
	}
	return i
}

// RingPoints returns n evenly spaced points on a ring of the given
// circumference, for ring-overlay examples.
func RingPoints(n int, circumference float64) []Point {
	if n <= 0 || circumference <= 0 {
		panic("space: RingPoints requires positive arguments")
	}
	pts := make([]Point, n)
	step := circumference / float64(n)
	for i := range pts {
		pts[i] = Point{float64(i) * step}
	}
	return pts
}

// RightHalf reports whether a 2D point lies in the right half of a torus of
// width w (x in [w/2, w)). The paper's catastrophic failure kills "all the
// 1600 nodes located in one half of the torus"; combined with the row-major
// grid this selects a contiguous region.
func RightHalf(p Point, w float64) bool {
	return p[0] >= w/2
}

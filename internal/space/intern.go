package space

// PointID is a dense integer identity for an interned canonical Point.
// IDs are assigned in interning order starting at 0, so they index directly
// into flat arrays: the protocol layers use them for generation-stamped
// membership sets and holder indexes instead of string-keyed maps.
type PointID uint32

// NoPointID is the sentinel for "no interned point". An Interner never
// assigns it (it would take 2^32-1 interned points to reach).
const NoPointID PointID = ^PointID(0)

// Interner assigns each distinct canonical Point a dense PointID, exactly
// once. The data points of a Polystyrene system form a fixed,
// generator-produced universe (the shape is the point set, Sec. III-A), so
// the whole universe is interned once at setup and every later point-set
// operation — merge, backup delta, holders lookup — works on integer IDs
// with no hashing and no string keys.
//
// Invariants callers must uphold (see also the package doc):
//
//   - Canonical points only: two points are the same identity iff their
//     coordinates are bitwise equal, so modular coordinates must be wrapped
//     into their canonical range before interning or lookup.
//   - Intern before use: every point that enters an ID-keyed structure must
//     have been interned first; IDs from one Interner are meaningless to
//     another.
//   - Immutability: the Interner retains the point; callers must never
//     mutate a point after interning it.
//
// An Interner is not safe for concurrent mutation; the simulation engine is
// sequential, and each engine owns (at most) one interner.
type Interner struct {
	byKey map[string]PointID
	pts   []Point
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byKey: make(map[string]PointID)}
}

// Intern returns the PointID of p, assigning the next dense ID if p has not
// been seen before. The interner retains p itself (points are immutable by
// convention); it does not clone.
func (in *Interner) Intern(p Point) PointID {
	k := p.Key()
	if id, ok := in.byKey[k]; ok {
		return id
	}
	id := PointID(len(in.pts))
	in.byKey[k] = id
	in.pts = append(in.pts, p)
	return id
}

// InternAll interns every point of pts and returns their IDs in order.
func (in *Interner) InternAll(pts []Point) []PointID {
	ids := make([]PointID, len(pts))
	for i, p := range pts {
		ids[i] = in.Intern(p)
	}
	return ids
}

// Lookup returns the ID of an already-interned point without registering
// anything. The boolean reports whether p was known.
func (in *Interner) Lookup(p Point) (PointID, bool) {
	id, ok := in.byKey[p.Key()]
	return id, ok
}

// PointOf returns the canonical point with the given ID. It panics on IDs
// the interner never assigned, as that is a programming error (an ID from a
// different interner, or NoPointID).
func (in *Interner) PointOf(id PointID) Point {
	return in.pts[id]
}

// Len returns how many distinct points have been interned. Valid IDs are
// exactly [0, Len()).
func (in *Interner) Len() int { return len(in.pts) }

// Reset empties the interner so a snapshot restore can repopulate it.
// Re-interning the serialized points in their original ID order yields
// the identical table, which is what keeps every PointID stored elsewhere
// in a snapshot valid after the round trip.
func (in *Interner) Reset() {
	clear(in.byKey)
	in.pts = in.pts[:0]
}

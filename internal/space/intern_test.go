package space

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestInternerAssignsDenseIDs(t *testing.T) {
	in := NewInterner()
	pts := TorusGrid(4, 3, 1)
	ids := in.InternAll(pts)
	if in.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(pts))
	}
	for i, id := range ids {
		if id != PointID(i) {
			t.Fatalf("id[%d] = %d, want dense assignment in intern order", i, id)
		}
		if !in.PointOf(id).Equal(pts[i]) {
			t.Fatalf("PointOf(%d) = %v, want %v", id, in.PointOf(id), pts[i])
		}
	}
}

func TestInternerIdempotent(t *testing.T) {
	in := NewInterner()
	a := Point{1, 2}
	id := in.Intern(a)
	if got := in.Intern(Point{1, 2}); got != id {
		t.Fatalf("re-interning equal point gave %d, want %d", got, id)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d after duplicate intern", in.Len())
	}
	got, ok := in.Lookup(Point{1, 2})
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
	if _, ok := in.Lookup(Point{2, 1}); ok {
		t.Fatal("Lookup found a point that was never interned")
	}
}

func TestInternerDistinguishesDimensions(t *testing.T) {
	// {1} and {1, 0} have different keys even though one prefixes the
	// other's coordinates.
	in := NewInterner()
	a := in.Intern(Point{1})
	b := in.Intern(Point{1, 0})
	if a == b {
		t.Fatal("points of different dimension interned to one ID")
	}
}

func TestInternerRetainsPoint(t *testing.T) {
	in := NewInterner()
	p := Point{3, 4}
	id := in.Intern(p)
	if &in.PointOf(id)[0] != &p[0] {
		t.Fatal("Intern should retain the point, not clone it")
	}
}

// FuzzInterner checks the round-trip laws on fuzzer-built point sets:
// Intern is idempotent and injective on distinct points, PointOf inverts
// Intern, Lookup agrees with Intern, and Len counts distinct points.
func FuzzInterner(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(1))
	f.Add(func() []byte {
		var b []byte
		for _, v := range []float64{0, 1, 1, 0, math.Pi, 0, 1} {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}(), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, dimRaw uint8) {
		dim := 1 + int(dimRaw)%3
		var pts []Point
		for len(raw) >= 8*dim {
			p := make(Point, dim)
			valid := true
			for d := range p {
				c := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*d:]))
				if math.IsNaN(c) {
					valid = false // NaN != NaN: not a canonical coordinate
				}
				p[d] = c
			}
			raw = raw[8*dim:]
			if valid {
				pts = append(pts, p)
			}
		}

		in := NewInterner()
		ids := in.InternAll(pts)
		distinct := map[string]PointID{}
		for i, p := range pts {
			// Idempotence and Lookup agreement.
			if again := in.Intern(p); again != ids[i] {
				t.Fatalf("re-intern of %v: %d then %d", p, ids[i], again)
			}
			if got, ok := in.Lookup(p); !ok || got != ids[i] {
				t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", p, got, ok, ids[i])
			}
			// Round trip through PointOf.
			if got := in.PointOf(ids[i]); !got.Equal(p) {
				t.Fatalf("PointOf(Intern(%v)) = %v", p, got)
			}
			// Injective on distinct points, constant on equal ones.
			k := p.Key()
			if prev, seen := distinct[k]; seen {
				if prev != ids[i] {
					t.Fatalf("equal points %v interned to %d and %d", p, prev, ids[i])
				}
			} else {
				for k2, id2 := range distinct {
					if id2 == ids[i] {
						t.Fatalf("distinct points share ID %d (%q vs %q)", ids[i], k2, k)
					}
				}
				distinct[k] = ids[i]
			}
		}
		if in.Len() != len(distinct) {
			t.Fatalf("Len = %d, want %d distinct points", in.Len(), len(distinct))
		}
		// Dense ID space: every ID below Len resolves.
		for id := 0; id < in.Len(); id++ {
			if in.PointOf(PointID(id)) == nil {
				t.Fatalf("dense ID %d has no point", id)
			}
		}
	})
}

// Package space defines the metric data spaces that Polystyrene shapes live
// in, together with the geometric primitives the protocol needs: distances,
// medoids, centroids and diameters.
//
// The paper (Sec. III-A) only requires the data space to be metric: "the
// only constraint on this data space is that a distance can be computed
// between any two data points". We therefore expose a minimal Space
// interface and several implementations, including the modular 2D torus
// used throughout the paper's evaluation, in which scalar division is ill
// defined and the medoid must be used instead of the centroid (Sec. III-C).
//
// # Point identity and interning
//
// Data points originate from a fixed generator and are never
// arithmetically perturbed afterwards, so identity is exact coordinate
// equality (Point.Equal) and the whole point universe can be interned once
// into dense integer PointIDs (see Interner). The ID-keyed protocol and
// metric layers depend on three invariants: points entering an interner
// are canonical (wrap modular coordinates first — e.g. Torus.Wrap — so
// bitwise equality is identity), every point is interned before its ID is
// used anywhere, and interned points are immutable.
package space

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a position in a data space. Points are treated as immutable
// values: protocols copy them at ownership boundaries and never mutate a
// point in place after it has been published.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same point (same dimension and
// exactly equal coordinates). Data points in this system originate from a
// fixed generator and are never arithmetically perturbed, so exact float
// comparison is the correct notion of identity.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key identifying the point.
func (p Point) Key() string {
	var b strings.Builder
	b.Grow(8 * len(p))
	var buf [8]byte
	for _, c := range p {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c))
		b.Write(buf[:])
	}
	return b.String()
}

// String renders the point for logs and test failures, e.g. "(3, 4.5)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Space is a metric space over Points of a fixed dimension.
//
// Implementations must satisfy the metric axioms (up to floating point):
// non-negativity, identity of indiscernibles, symmetry, and the triangle
// inequality. The property tests in this package check these on samples.
type Space interface {
	// Dim returns the dimensionality points must have.
	Dim() int
	// Distance returns the metric distance between a and b. It panics if
	// the points have the wrong dimension, as that is a programming error.
	Distance(a, b Point) float64
}

// checkDim panics when a point does not match the space dimension.
func checkDim(dim int, p Point) {
	if len(p) != dim {
		panic(fmt.Sprintf("space: point %v has dimension %d, space wants %d", p, len(p), dim))
	}
}

// Euclidean is the standard Euclidean metric over R^dim.
type Euclidean struct {
	dim int
}

var _ Space = Euclidean{}

// NewEuclidean returns the Euclidean space of the given dimension.
func NewEuclidean(dim int) Euclidean {
	if dim <= 0 {
		panic("space: NewEuclidean requires dim > 0")
	}
	return Euclidean{dim: dim}
}

// Dim implements Space.
func (e Euclidean) Dim() int { return e.dim }

// Distance implements Space.
func (e Euclidean) Distance(a, b Point) float64 {
	checkDim(e.dim, a)
	checkDim(e.dim, b)
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Manhattan is the L1 metric over R^dim. It is not used by the paper's
// evaluation but demonstrates the protocol's metric-space generality and is
// exercised by examples and tests.
type Manhattan struct {
	dim int
}

var _ Space = Manhattan{}

// NewManhattan returns the L1 space of the given dimension.
func NewManhattan(dim int) Manhattan {
	if dim <= 0 {
		panic("space: NewManhattan requires dim > 0")
	}
	return Manhattan{dim: dim}
}

// Dim implements Space.
func (m Manhattan) Dim() int { return m.dim }

// Distance implements Space.
func (m Manhattan) Distance(a, b Point) float64 {
	checkDim(m.dim, a)
	checkDim(m.dim, b)
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Torus is a flat torus: each coordinate i lives on a circle of
// circumference Widths[i] and distances wrap around. This is the "logical
// torus" of the paper's evaluation (an 80x40 grid with step 1 lives on a
// Torus with widths {80, 40}).
type Torus struct {
	widths []float64
}

var _ Space = Torus{}

// NewTorus returns a torus with the given per-dimension circumferences.
func NewTorus(widths ...float64) Torus {
	if len(widths) == 0 {
		panic("space: NewTorus requires at least one width")
	}
	ws := make([]float64, len(widths))
	for i, w := range widths {
		if w <= 0 {
			panic("space: NewTorus widths must be positive")
		}
		ws[i] = w
	}
	return Torus{widths: ws}
}

// NewRing returns a one-dimensional torus (a ring) of the given
// circumference — the key space of ring overlays such as Chord or Pastry.
func NewRing(circumference float64) Torus {
	return NewTorus(circumference)
}

// Dim implements Space.
func (t Torus) Dim() int { return len(t.widths) }

// Width returns the circumference of dimension i.
func (t Torus) Width(i int) float64 { return t.widths[i] }

// Distance implements Space. Along each dimension the distance is the
// shorter of the two arcs between the coordinates.
func (t Torus) Distance(a, b Point) float64 {
	checkDim(len(t.widths), a)
	checkDim(len(t.widths), b)
	sum := 0.0
	for i := range a {
		d := wrapDelta(a[i]-b[i], t.widths[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// wrapDelta returns the magnitude of the shorter arc for a signed
// difference on a circle of circumference w.
//
// Coordinates in this system are canonical (in [0, w)) in the overwhelming
// majority of calls, so |d| < w and the math.Mod reduction — the single
// most expensive operation of the whole distance hot path — can be skipped.
// Both branches compute identical values: for |d| < w, math.Mod(d, w)
// returns d exactly.
func wrapDelta(d, w float64) float64 {
	if d < 0 {
		d = -d
	}
	if d >= w {
		d = math.Mod(d, w)
	}
	if d > w/2 {
		d = w - d
	}
	return d
}

// Wrap returns the canonical representative of p with every coordinate in
// [0, Widths[i]).
func (t Torus) Wrap(p Point) Point {
	checkDim(len(t.widths), p)
	q := make(Point, len(p))
	for i, c := range p {
		c = math.Mod(c, t.widths[i])
		if c < 0 {
			c += t.widths[i]
		}
		q[i] = c
	}
	return q
}

// Area returns the total content (product of widths) of the torus; the
// reference homogeneity H of the paper is defined in terms of this area.
func (t Torus) Area() float64 {
	a := 1.0
	for _, w := range t.widths {
		a *= w
	}
	return a
}

// Hamming treats points as vectors of symbols (compared exactly) and
// returns the number of differing coordinates. With 0/1 coordinates this is
// the set-difference metric over item sets of a fixed universe, matching
// the paper's remark that positions can be "a list of items" from "the
// power-set of items" (Sec. III-A): profile spaces for recommendation.
type Hamming struct {
	dim int
}

var _ Space = Hamming{}

// NewHamming returns the Hamming space over vectors of the given length.
func NewHamming(dim int) Hamming {
	if dim <= 0 {
		panic("space: NewHamming requires dim > 0")
	}
	return Hamming{dim: dim}
}

// Dim implements Space.
func (h Hamming) Dim() int { return h.dim }

// Distance implements Space.
func (h Hamming) Distance(a, b Point) float64 {
	checkDim(h.dim, a)
	checkDim(h.dim, b)
	n := 0.0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

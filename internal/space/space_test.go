package space

import (
	"math"
	"testing"
	"testing/quick"

	"polystyrene/internal/xrand"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEuclideanDistance(t *testing.T) {
	e := NewEuclidean(2)
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := e.Distance(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("Distance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanDistance(t *testing.T) {
	m := NewManhattan(3)
	if got := m.Distance(Point{0, 0, 0}, Point{1, -2, 3}); !almostEqual(got, 6) {
		t.Errorf("Manhattan distance = %v, want 6", got)
	}
}

func TestTorusDistanceWraps(t *testing.T) {
	tor := NewTorus(80, 40)
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{79, 0}, 1},  // wrap in x
		{Point{0, 0}, Point{0, 39}, 1},  // wrap in y
		{Point{0, 0}, Point{40, 0}, 40}, // antipodal in x
		{Point{0, 0}, Point{40, 20}, math.Sqrt(40*40 + 20*20)},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{2, 0}, Point{78, 0}, 4},
	}
	for _, c := range cases {
		if got := tor.Distance(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("torus Distance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTorusWrap(t *testing.T) {
	tor := NewTorus(10, 10)
	got := tor.Wrap(Point{-1, 23})
	if !got.Equal(Point{9, 3}) {
		t.Errorf("Wrap(-1,23) = %v, want (9,3)", got)
	}
	if a := tor.Area(); !almostEqual(a, 100) {
		t.Errorf("Area = %v, want 100", a)
	}
}

func TestRingDistance(t *testing.T) {
	r := NewRing(100)
	if got := r.Distance(Point{1}, Point{99}); !almostEqual(got, 2) {
		t.Errorf("ring Distance(1,99) = %v, want 2", got)
	}
}

func TestHammingDistance(t *testing.T) {
	h := NewHamming(4)
	if got := h.Distance(Point{1, 0, 1, 0}, Point{1, 1, 1, 1}); !almostEqual(got, 2) {
		t.Errorf("Hamming distance = %v, want 2", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewEuclidean(2).Distance(Point{1}, Point{1, 2})
}

func TestPointEqualAndKey(t *testing.T) {
	a := Point{1, 2}
	b := Point{1, 2}
	c := Point{1, 3}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Point{1}) {
		t.Error("Point.Equal misbehaves")
	}
	if a.Key() != b.Key() {
		t.Error("equal points must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("distinct points must have distinct keys")
	}
	if got := a.Clone(); !got.Equal(a) {
		t.Error("Clone changed the point")
	}
	clone := a.Clone()
	clone[0] = 42
	if a[0] == 42 {
		t.Error("Clone aliases the original")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

// metricAxioms verifies the metric axioms for s on randomly drawn points.
func metricAxioms(t *testing.T, s Space, gen func(r *xrand.Rand) Point) {
	t.Helper()
	r := xrand.New(1234)
	for i := 0; i < 500; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		dab := s.Distance(a, b)
		dba := s.Distance(b, a)
		if dab < 0 {
			t.Fatalf("negative distance d(%v,%v)=%v", a, b, dab)
		}
		if !almostEqual(dab, dba) {
			t.Fatalf("asymmetric distance d(%v,%v)=%v d(b,a)=%v", a, b, dab, dba)
		}
		if d := s.Distance(a, a); !almostEqual(d, 0) {
			t.Fatalf("d(a,a)=%v for %v", d, a)
		}
		dac := s.Distance(a, c)
		dcb := s.Distance(c, b)
		if dab > dac+dcb+1e-9 {
			t.Fatalf("triangle inequality violated: d(%v,%v)=%v > %v+%v", a, b, dab, dac, dcb)
		}
	}
}

func TestMetricAxioms(t *testing.T) {
	uniform := func(lo, hi float64, dim int) func(r *xrand.Rand) Point {
		return func(r *xrand.Rand) Point {
			p := make(Point, dim)
			for i := range p {
				p[i] = lo + (hi-lo)*r.Float64()
			}
			return p
		}
	}
	t.Run("euclidean", func(t *testing.T) { metricAxioms(t, NewEuclidean(3), uniform(-10, 10, 3)) })
	t.Run("manhattan", func(t *testing.T) { metricAxioms(t, NewManhattan(2), uniform(-5, 5, 2)) })
	t.Run("torus", func(t *testing.T) { metricAxioms(t, NewTorus(80, 40), uniform(0, 80, 2)) })
	t.Run("ring", func(t *testing.T) { metricAxioms(t, NewRing(100), uniform(0, 100, 1)) })
	t.Run("hamming", func(t *testing.T) {
		metricAxioms(t, NewHamming(8), func(r *xrand.Rand) Point {
			p := make(Point, 8)
			for i := range p {
				if r.Bool(0.5) {
					p[i] = 1
				}
			}
			return p
		})
	})
}

func TestTorusDistanceInvariantUnderWrap(t *testing.T) {
	// Property: distance is invariant when either argument is shifted by a
	// full circumference in any dimension.
	tor := NewTorus(80, 40)
	f := func(ax, ay, bx, by float64, kx, ky int8) bool {
		a := tor.Wrap(Point{math.Mod(math.Abs(ax), 80), math.Mod(math.Abs(ay), 40)})
		b := tor.Wrap(Point{math.Mod(math.Abs(bx), 80), math.Mod(math.Abs(by), 40)})
		shifted := Point{b[0] + 80*float64(kx), b[1] + 40*float64(ky)}
		return almostEqual(tor.Distance(a, b), tor.Distance(a, tor.Wrap(shifted)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedoidMinimality(t *testing.T) {
	s := NewTorus(80, 40)
	r := xrand.New(7)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{80 * r.Float64(), 40 * r.Float64()}
		}
		m := Medoid(s, pts)
		if m < 0 || m >= n {
			t.Fatalf("Medoid index %d out of range", m)
		}
		mCost := SumSquaredTo(s, pts[m], pts) // includes d(m,m)=0 so same objective
		for i := range pts {
			if c := SumSquaredTo(s, pts[i], pts); c < mCost-1e-9 {
				t.Fatalf("trial %d: point %d has cost %v < medoid cost %v", trial, i, c, mCost)
			}
		}
	}
}

func TestMedoidEmptyAndSingle(t *testing.T) {
	s := NewEuclidean(2)
	if got := Medoid(s, nil); got != -1 {
		t.Errorf("Medoid(empty) = %d, want -1", got)
	}
	if got := MedoidPoint(s, nil); got != nil {
		t.Errorf("MedoidPoint(empty) = %v, want nil", got)
	}
	if got := Medoid(s, []Point{{5, 5}}); got != 0 {
		t.Errorf("Medoid(single) = %d, want 0", got)
	}
}

func TestMedoidMatchesPaperExample(t *testing.T) {
	// In a symmetric line of three points the middle one is the medoid.
	s := NewEuclidean(1)
	pts := []Point{{0}, {1}, {2}}
	if got := Medoid(s, pts); got != 1 {
		t.Errorf("Medoid of {0,1,2} = index %d, want 1", got)
	}
}

func TestCentroid(t *testing.T) {
	if Centroid(nil) != nil {
		t.Error("Centroid(empty) should be nil")
	}
	got := Centroid([]Point{{0, 0}, {2, 4}})
	if !got.Equal(Point{1, 2}) {
		t.Errorf("Centroid = %v, want (1,2)", got)
	}
}

func TestDiameterExact(t *testing.T) {
	s := NewEuclidean(2)
	pts := []Point{{0, 0}, {1, 0}, {5, 0}, {2, 2}}
	i, j, d := Diameter(s, pts)
	if !(i == 0 && j == 2) || !almostEqual(d, 5) {
		t.Errorf("Diameter = (%d,%d,%v), want (0,2,5)", i, j, d)
	}
	if i, j, d := Diameter(s, pts[:1]); i != -1 || j != -1 || d != 0 {
		t.Errorf("Diameter(single) = (%d,%d,%v)", i, j, d)
	}
}

func TestDiameterSampledExactWhenSmall(t *testing.T) {
	s := NewEuclidean(2)
	r := xrand.New(5)
	pts := []Point{{0, 0}, {1, 0}, {5, 0}, {2, 2}}
	i, j, d := DiameterSampled(s, pts, 100, r)
	if !(i == 0 && j == 2) || !almostEqual(d, 5) {
		t.Errorf("DiameterSampled(small) = (%d,%d,%v), want exact (0,2,5)", i, j, d)
	}
}

func TestDiameterSampledApproximation(t *testing.T) {
	// On many random points, the sampled diameter must be a valid pair and
	// reach a decent fraction of the true diameter.
	s := NewEuclidean(2)
	r := xrand.New(9)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	_, _, exact := Diameter(s, pts)
	i, j, approx := DiameterSampled(s, pts, 500, r)
	if i < 0 || j < 0 || i == j {
		t.Fatalf("invalid sampled pair (%d,%d)", i, j)
	}
	if approx > exact+1e-9 {
		t.Fatalf("sampled diameter %v exceeds exact %v", approx, exact)
	}
	if approx < 0.5*exact {
		t.Fatalf("sampled diameter %v too small vs exact %v", approx, exact)
	}
}

func TestScatter(t *testing.T) {
	s := NewEuclidean(1)
	// pairs: (0,1):1 (0,3):9 (1,3):4 -> 14
	if got := Scatter(s, []Point{{0}, {1}, {3}}); !almostEqual(got, 14) {
		t.Errorf("Scatter = %v, want 14", got)
	}
}

func TestNearest(t *testing.T) {
	s := NewEuclidean(2)
	pts := []Point{{0, 0}, {10, 0}, {3, 0}}
	i, d := Nearest(s, Point{4, 0}, pts)
	if i != 2 || !almostEqual(d, 1) {
		t.Errorf("Nearest = (%d,%v), want (2,1)", i, d)
	}
	if i, _ := Nearest(s, Point{0, 0}, nil); i != -1 {
		t.Errorf("Nearest(empty) = %d, want -1", i)
	}
}

func TestKNearestOrdering(t *testing.T) {
	s := NewEuclidean(1)
	pts := []Point{{10}, {1}, {7}, {2}, {100}}
	got := KNearest(s, Point{0}, pts, 3)
	want := []int{1, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("KNearest = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNearest = %v, want %v", got, want)
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	s := NewEuclidean(1)
	pts := []Point{{1}, {2}}
	if got := KNearest(s, Point{0}, pts, 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
	if got := KNearest(s, Point{0}, pts, 5); len(got) != 2 {
		t.Errorf("k>n should return all, got %v", got)
	}
	if got := KNearest(s, Point{0}, nil, 3); len(got) != 0 {
		t.Errorf("empty points should return empty, got %v", got)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	s := NewTorus(50, 50)
	r := xrand.New(31)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{50 * r.Float64(), 50 * r.Float64()}
		}
		x := Point{50 * r.Float64(), 50 * r.Float64()}
		k := 1 + r.Intn(6)
		got := KNearest(s, x, pts, k)
		// Brute force: the k-th smallest distance bounds every selected one.
		dists := make([]float64, n)
		for i, p := range pts {
			dists[i] = s.Distance(x, p)
		}
		for rank := 1; rank < len(got); rank++ {
			if s.Distance(x, pts[got[rank-1]]) > s.Distance(x, pts[got[rank]])+1e-12 {
				t.Fatalf("KNearest not sorted: %v", got)
			}
		}
		kth := s.Distance(x, pts[got[len(got)-1]])
		below := 0
		for _, d := range dists {
			if d < kth-1e-12 {
				below++
			}
		}
		if below > len(got)-1 {
			t.Fatalf("KNearest missed closer points: %d closer than kth", below)
		}
	}
}

func TestTorusGrid(t *testing.T) {
	pts := TorusGrid(4, 3, 2)
	if len(pts) != 12 {
		t.Fatalf("grid size %d, want 12", len(pts))
	}
	if !pts[0].Equal(Point{0, 0}) || !pts[1].Equal(Point{2, 0}) || !pts[4].Equal(Point{0, 2}) {
		t.Errorf("unexpected grid layout: %v %v %v", pts[0], pts[1], pts[4])
	}
	tor := TorusForGrid(4, 3, 2)
	if tor.Width(0) != 8 || tor.Width(1) != 6 {
		t.Errorf("TorusForGrid widths = %v,%v", tor.Width(0), tor.Width(1))
	}
	// Neighbouring grid points are at distance step.
	if d := tor.Distance(pts[0], pts[1]); !almostEqual(d, 2) {
		t.Errorf("adjacent grid distance %v, want 2", d)
	}
}

func TestTorusGridOffset(t *testing.T) {
	pts := TorusGridOffset(2, 2, 1, 0.5, 0.5)
	if !pts[0].Equal(Point{0.5, 0.5}) {
		t.Errorf("offset grid origin %v", pts[0])
	}
}

func TestRingPoints(t *testing.T) {
	pts := RingPoints(4, 100)
	want := []float64{0, 25, 50, 75}
	for i, p := range pts {
		if !almostEqual(p[0], want[i]) {
			t.Errorf("RingPoints[%d] = %v, want %v", i, p[0], want[i])
		}
	}
}

func TestRightHalf(t *testing.T) {
	if RightHalf(Point{39, 0}, 80) {
		t.Error("39 should be left half of width 80")
	}
	if !RightHalf(Point{40, 0}, 80) {
		t.Error("40 should be right half of width 80")
	}
}

func TestGridPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"grid":   func() { TorusGrid(0, 1, 1) },
		"ring":   func() { RingPoints(0, 1) },
		"torus":  func() { NewTorus() },
		"widths": func() { NewTorus(-1) },
		"eucl":   func() { NewEuclidean(0) },
		"manh":   func() { NewManhattan(0) },
		"hamm":   func() { NewHamming(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkTorusDistance(b *testing.B) {
	tor := NewTorus(80, 40)
	a, c := Point{1, 2}, Point{70, 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tor.Distance(a, c)
	}
}

func BenchmarkMedoid20(b *testing.B) {
	tor := NewTorus(80, 40)
	r := xrand.New(1)
	pts := make([]Point, 20)
	for i := range pts {
		pts[i] = Point{80 * r.Float64(), 40 * r.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Medoid(tor, pts)
	}
}

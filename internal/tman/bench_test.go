package tman

import (
	"testing"

	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// benchNet assembles RPS + T-Man over a torus grid, the configuration
// whose view selection dominates whole-simulator CPU time.
func benchNet(b *testing.B, w, h int) (*sim.Engine, *Protocol) {
	b.Helper()
	s := space.TorusForGrid(w, h, 1)
	pts := space.TorusGrid(w, h, 1)
	sampler := rps.New(rps.Config{})
	tm, err := New(Config{
		Space:    s,
		Sampler:  sampler,
		Position: func(id sim.NodeID) space.Point { return pts[id] },
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.New(1, sampler, tm)
	e.AddNodes(w * h)
	return e, tm
}

// BenchmarkGossipRound measures one full T-Man round over 800 nodes:
// partner selection, buffer building and capped merges — the simulator's
// hottest path.
func BenchmarkGossipRound(b *testing.B) {
	e, _ := benchNet(b, 40, 20)
	e.RunRounds(5) // fill views to their steady-state size first
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkNeighborsQuery measures the closest-k query consumed by
// partner selection, Polystyrene migration, and the proximity metric, in
// its three forms: the legacy fresh-slice Neighbors (the PR 2 API,
// kept as the baseline), the caller-buffer AppendNeighbors and the
// visitor EachNeighbor. The sweep queries every live node, the shape of
// the per-round metric loop; the two new forms must report 0 allocs/op.
func BenchmarkNeighborsQuery(b *testing.B) {
	bench := func(b *testing.B, query func(tm *Protocol, id sim.NodeID)) {
		b.Helper()
		e, tm := benchNet(b, 40, 20)
		e.RunRounds(10)
		ids := e.LiveIDs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				query(tm, id)
			}
		}
	}
	b.Run("legacy", func(b *testing.B) {
		bench(b, func(tm *Protocol, id sim.NodeID) {
			if len(tm.Neighbors(id, 5)) == 0 {
				b.Fatal("no neighbours")
			}
		})
	})
	b.Run("append", func(b *testing.B) {
		buf := make([]sim.NodeID, 0, 8)
		bench(b, func(tm *Protocol, id sim.NodeID) {
			buf = tm.AppendNeighbors(buf[:0], id, 5)
			if len(buf) == 0 {
				b.Fatal("no neighbours")
			}
		})
	})
	b.Run("each", func(b *testing.B) {
		n := 0
		visit := func(sim.NodeID) bool { n++; return true }
		bench(b, func(tm *Protocol, id sim.NodeID) {
			n = 0
			tm.EachNeighbor(id, 5, visit)
			if n == 0 {
				b.Fatal("no neighbours")
			}
		})
	})
}

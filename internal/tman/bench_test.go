package tman

import (
	"testing"

	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// benchNet assembles RPS + T-Man over a torus grid, the configuration
// whose view selection dominates whole-simulator CPU time.
func benchNet(b *testing.B, w, h int) (*sim.Engine, *Protocol) {
	b.Helper()
	s := space.TorusForGrid(w, h, 1)
	pts := space.TorusGrid(w, h, 1)
	sampler := rps.New(rps.Config{})
	tm, err := New(Config{
		Space:    s,
		Sampler:  sampler,
		Position: func(id sim.NodeID) space.Point { return pts[id] },
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.New(1, sampler, tm)
	e.AddNodes(w * h)
	return e, tm
}

// BenchmarkGossipRound measures one full T-Man round over 800 nodes:
// partner selection, buffer building and capped merges — the simulator's
// hottest path.
func BenchmarkGossipRound(b *testing.B) {
	e, _ := benchNet(b, 40, 20)
	e.RunRounds(5) // fill views to their steady-state size first
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkNeighbors measures the closest-k query consumed by partner
// selection, Polystyrene migration, and the proximity metric.
func BenchmarkNeighbors(b *testing.B) {
	e, tm := benchNet(b, 40, 20)
	e.RunRounds(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tm.Neighbors(0, 5)) == 0 {
			b.Fatal("no neighbours")
		}
	}
}

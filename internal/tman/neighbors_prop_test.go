package tman

import (
	"slices"
	"sort"
	"testing"

	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// neighborsOracle is an independent reimplementation of the neighbour
// query contract — full stable sort of a view copy by (distance, ID) —
// against which the three production forms (legacy Neighbors,
// AppendNeighbors, EachNeighbor) are pinned. It deliberately shares no
// code with selectClosest.
func neighborsOracle(p *Protocol, id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return nil
	}
	view := slices.Clone(p.views[id])
	pos := p.pos(id)
	sort.SliceStable(view, func(i, j int) bool {
		di := p.cfg.Space.Distance(p.pos(view[i]), pos)
		dj := p.cfg.Space.Distance(p.pos(view[j]), pos)
		if di != dj {
			return di < dj
		}
		return view[i] < view[j]
	})
	if k > len(view) {
		k = len(view)
	}
	return view[:k]
}

// checkNeighborForms asserts that for every node — live or dead (dead
// nodes answer from their stale view), plus out-of-range and negative
// IDs — and a spread of k values, all three query forms agree exactly
// with the oracle.
func checkNeighborForms(t *testing.T, n *testNet, phase string) {
	t.Helper()
	probe := make([]sim.NodeID, 0, n.engine.NumNodes()+1)
	for id := 0; id < n.engine.NumNodes(); id++ {
		probe = append(probe, sim.NodeID(id))
	}
	probe = append(probe, sim.NodeID(n.engine.NumNodes()+5), sim.None)
	buf := make([]sim.NodeID, 0, 128)
	for _, id := range probe {
		for _, k := range []int{0, 1, 3, 5, 100} {
			want := neighborsOracle(n.tman, id, k)

			if got := n.tman.Neighbors(id, k); !slices.Equal(got, want) {
				t.Fatalf("%s: Neighbors(%d, %d) = %v, oracle %v", phase, id, k, got, want)
			}

			buf = append(buf[:0], 9999)
			buf = n.tman.AppendNeighbors(buf, id, k)
			if buf[0] != 9999 || !slices.Equal(buf[1:], want) {
				t.Fatalf("%s: AppendNeighbors(%d, %d) = %v, oracle %v", phase, id, k, buf, want)
			}

			var visited []sim.NodeID
			n.tman.EachNeighbor(id, k, func(nb sim.NodeID) bool {
				visited = append(visited, nb)
				return true
			})
			if !slices.Equal(visited, want) {
				t.Fatalf("%s: EachNeighbor(%d, %d) visited %v, oracle %v", phase, id, k, visited, want)
			}
			if len(want) > 1 {
				visited = visited[:0]
				n.tman.EachNeighbor(id, k, func(nb sim.NodeID) bool {
					visited = append(visited, nb)
					return len(visited) < 2
				})
				if !slices.Equal(visited, want[:2]) {
					t.Fatalf("%s: early-stopped EachNeighbor(%d, %d) = %v, want %v",
						phase, id, k, visited, want[:2])
				}
			}
		}
	}
}

// TestNeighborQueryFormsUnderChurn is the property test of the PR 3 API
// redesign: through convergence, a catastrophic correlated kill (with one
// round of stale views), recovery, reinjection of fresh nodes and a second
// thinning, the append and visitor forms stay byte-identical to the legacy
// Neighbors form and to the independent sort oracle.
func TestNeighborQueryFormsUnderChurn(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		w, h := 12, 6
		tor := space.TorusForGrid(w, h, 1)
		pts := space.TorusGrid(w, h, 1)
		n := newTestNet(t, seed, tor, pts, Config{})

		n.engine.RunRounds(8)
		checkNeighborForms(t, n, "converged")

		for i, p := range pts {
			if space.RightHalf(p, float64(w)) {
				n.engine.Kill(sim.NodeID(i))
			}
		}
		n.engine.RunRounds(1)
		checkNeighborForms(t, n, "post-catastrophe")

		n.engine.RunRounds(6)
		checkNeighborForms(t, n, "recovered")

		// Reinject fresh nodes on the offset parallel grid.
		for i := 0; i < w*h/4; i++ {
			base := pts[(2*i)%len(pts)]
			n.positions = append(n.positions, tor.Wrap(space.Point{base[0] + 0.5, base[1] + 0.5}))
			n.engine.AddNode()
		}
		n.engine.RunRounds(5)
		checkNeighborForms(t, n, "reinjected")

		// Thin the survivors again: every third live node crashes.
		for i, id := range slices.Clone(n.engine.LiveIDs()) {
			if i%3 == 0 {
				n.engine.Kill(id)
			}
		}
		n.engine.RunRounds(2)
		checkNeighborForms(t, n, "thinned")
	}
}

// TestScratchTrimAfterCatastrophe pins the pooled-buffer high-water trim:
// after a 95% correlated kill, the selection scratch and the per-node view
// backings sized for the 800-node regime must shrink back towards the
// 40-node working set instead of pinning worst-case capacity forever.
func TestScratchTrimAfterCatastrophe(t *testing.T) {
	w, h := 40, 20
	tor := space.TorusForGrid(w, h, 1)
	pts := space.TorusGrid(w, h, 1)
	n := newTestNet(t, 7, tor, pts, Config{})
	n.engine.RunRounds(10)

	before := n.tman.ws[0].sel.Cap()
	if before < DefaultViewCap {
		t.Fatalf("scratch capacity %d before the kill, expected at least the view cap", before)
	}

	// Kill 95%: keep one node in twenty.
	for _, id := range slices.Clone(n.engine.LiveIDs()) {
		if int(id)%20 != 0 {
			n.engine.Kill(id)
		}
	}
	live := n.engine.NumLive()
	// Run past a full trim window at the surviving scale.
	rounds := scratchTrimInterval/live + 10
	n.engine.RunRounds(rounds)

	if after := n.tman.ws[0].sel.Cap(); after >= before || after > scratchTrimSlack*live {
		t.Fatalf("selection scratch capacity %d after trim (was %d, %d live nodes)",
			after, before, live)
	}
	if c := cap(n.tman.ws[0].candBuf); c > scratchTrimSlack*live {
		t.Fatalf("candidate buffer capacity %d not trimmed for %d live nodes", c, live)
	}
	for _, id := range n.engine.LiveIDs() {
		view := n.tman.views[id]
		floor := len(view)
		if floor < n.tman.cfg.InitDegree {
			floor = n.tman.cfg.InitDegree
		}
		if cap(view) > scratchTrimSlack*floor {
			t.Fatalf("node %d view capacity %d pinned (len %d, floor %d)",
				id, cap(view), len(view), floor)
		}
	}
}

package tman

import (
	"polystyrene/internal/sim"
	"polystyrene/internal/snap"
)

var _ sim.Snapshotter = (*Protocol)(nil)

// SnapshotState implements sim.Snapshotter. The per-node neighbour views
// are the protocol's only cross-round state; worker scratch, the plan
// mirrors and the ψ-window cache are rebuilt within each round.
func (p *Protocol) SnapshotState(w *snap.Writer) {
	w.Len(len(p.views))
	for _, v := range p.views {
		w.Len(len(v))
		for _, id := range v {
			w.Int(int(id))
		}
	}
}

// RestoreState implements sim.Snapshotter.
func (p *Protocol) RestoreState(r *snap.Reader) error {
	n := r.Len(8)
	views := make([][]sim.NodeID, n)
	for i := range views {
		ln := r.Len(8)
		v := make([]sim.NodeID, ln)
		for j := range v {
			v[j] = sim.NodeID(r.Int())
		}
		views[i] = v
	}
	if err := r.Err(); err != nil {
		return err
	}
	p.views = views
	return nil
}

// Package tman implements the T-Man decentralized topology-construction
// protocol (Jelasity, Montresor & Babaoglu, Computer Networks 2009), the
// middle layer of the paper's stack and also its evaluation baseline.
//
// T-Man greedily organises nodes so that each ends up linked to its
// closest peers in a metric space: every round a node picks an exchange
// partner among its ψ closest neighbours, the two swap the m descriptors
// most useful to each other, and both keep the closest entries up to a
// view cap. Fresh random peers from the peer-sampling layer are folded in
// to guarantee convergence from any starting state (paper Sec. II-B).
//
// A key property required by Polystyrene (Sec. II-C) is that T-Man does
// not own node positions: it reads them through a PositionFunc. With plain
// T-Man the function returns the node's fixed original data point; with
// Polystyrene on top it returns the medoid of the node's guests, which
// changes as data points migrate — this is how nodes "move" on the shape.
//
// Message-cost accounting follows the paper (Sec. IV-A): a descriptor
// (ID + position) costs 1 + dim units. Because positions are dynamic,
// T-Man also refreshes the coordinates of every view entry each round
// ("T-Man must update their positions in its view in each round, causing
// most of the traffic", Sec. IV-B), at dim units per entry.
//
// Ranking view entries by distance is the hottest code path of the whole
// simulator, so selections go through topk.SmallestK (partial selection,
// no comparator closures) over scratch buffers pooled per worker slot,
// and set-membership during merges uses a generation-stamped array
// indexed by the engine's dense NodeIDs. The sequential engine only ever
// uses slot 0; under intra-round exchange batching (sim.Batched) each
// worker owns a slot and the batch matcher plans on a dedicated mirror
// scratch. An exchange's conflict set is {initiator, partner}: Step reads
// and writes only those two views (it reads the *positions* of ranked
// candidates too, but positions are frozen during a T-Man pass, and the
// Polystyrene layer above snapshots them for its own pass).
//
// Neighbour queries are exposed through the allocation-free two-form API
// of core.Topology — AppendNeighbors (caller-owned buffer) and
// EachNeighbor (zero-copy visitor over the pooled selection scratch) —
// with the legacy Neighbors form kept as a convenience wrapper. Pooled
// buffers are trimmed against a decaying high-water mark so the merge
// wave after a catastrophic failure does not pin worst-case capacity for
// the rest of a run.
package tman

import (
	"fmt"

	"polystyrene/internal/genset"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/topk"
	"polystyrene/internal/xrand"
)

// Defaults from the paper's experimental setting (Sec. IV-A).
const (
	// DefaultViewCap bounds the T-Man view ("capped to 100 peers").
	DefaultViewCap = 100
	// DefaultMsgSize is m, the number of descriptors per message.
	DefaultMsgSize = 20
	// DefaultPsi is ψ, the number of closest neighbours the exchange
	// partner is drawn from.
	DefaultPsi = 5
	// DefaultInitDegree is the number of random peers a node's view is
	// seeded with ("initialized with 10 random neighbors from RPS").
	DefaultInitDegree = 10
)

// PositionFunc reports the current virtual position of a node. It must
// return a valid point for every live node.
type PositionFunc func(id sim.NodeID) space.Point

// Config parameterises the protocol. Space, Sampler and Position are
// required; zero-valued numeric fields take the paper's defaults.
type Config struct {
	// Space is the metric space positions live in.
	Space space.Space
	// Sampler is the underlying peer-sampling layer.
	Sampler *rps.Protocol
	// Position resolves a node's current virtual position.
	Position PositionFunc
	// ViewCap bounds the view size.
	ViewCap int
	// MsgSize is the number of descriptors per exchanged message (m).
	MsgSize int
	// Psi is the partner-selection window (ψ).
	Psi int
	// InitDegree seeds a joining node's view with this many random peers.
	InitDegree int
}

func (c Config) withDefaults() (Config, error) {
	if c.Space == nil {
		return c, fmt.Errorf("tman: Config.Space is required")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("tman: Config.Sampler is required")
	}
	if c.Position == nil {
		return c, fmt.Errorf("tman: Config.Position is required")
	}
	if c.ViewCap <= 0 {
		c.ViewCap = DefaultViewCap
	}
	if c.MsgSize <= 0 {
		c.MsgSize = DefaultMsgSize
	}
	if c.Psi <= 0 {
		c.Psi = DefaultPsi
	}
	if c.InitDegree <= 0 {
		c.InitDegree = DefaultInitDegree
	}
	return c, nil
}

// Pooled-scratch trimming parameters: every scratchTrimInterval steps a
// worker slot compares its pooled buffer capacities against
// scratchTrimSlack times the high-water candidate size of the elapsed
// window and releases buffers above it. A 50%-failure round balloons merge
// candidate sets for a few rounds; without the trim those transients would
// pin worst-case capacity for the remainder of a run.
const (
	scratchTrimInterval = 4096
	scratchTrimSlack    = 2
)

// scratch is one worker slot's pooled exchange state.
type scratch struct {
	// sel holds the pooled parallel (distance, id) selection arrays.
	sel topk.Scratch[sim.NodeID]
	// candBuf assembles the owner+view candidate set for buildBuffer and
	// the partner-selection window.
	candBuf []sim.NodeID
	// msgA/msgB are the two in-flight message buffers of Step; both live
	// across a merge pair, so they need separate backing arrays.
	msgA []sim.NodeID
	msgB []sim.NodeID
	// seen is the pooled membership set over dense NodeIDs used by merges.
	seen genset.Set

	// hwMark is the largest selection candidate set of the current trim
	// window; hwSteps counts the steps elapsed in it.
	hwMark  int
	hwSteps int
}

// Protocol is the T-Man layer. It implements sim.Protocol, sim.Batched
// and core.Topology.
type Protocol struct {
	cfg   Config
	views [][]sim.NodeID

	// ws holds one scratch per worker slot (slot 0 is the sequential
	// engine's and the external query path's); plan backs the matcher's
	// read-only selection mirrors.
	ws   []*scratch
	plan struct {
		sel  topk.Scratch[sim.NodeID]
		cand []sim.NodeID
		part []sim.NodeID
	}
	// psiCache hands each planned step's ψ-window ranking (the expensive,
	// draw-free part of partner selection) from PlanStep to StepW.
	psiCache sim.WindowCache
}

var _ sim.Protocol = (*Protocol)(nil)
var _ sim.Batched = (*Protocol)(nil)

// New returns a T-Man layer with the given configuration.
func New(cfg Config) (*Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg, ws: []*scratch{{}}, psiCache: sim.NewWindowCache(cfg.Psi)}, nil
}

// MustNew is New but panics on configuration errors; intended for tests
// and examples where the configuration is statically known to be valid.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "tman" }

// EnsureWorkers implements core.WorkerTopology, growing the worker-slot
// table (single-threaded; called before any worker starts).
func (p *Protocol) EnsureWorkers(n int) {
	for len(p.ws) < n {
		p.ws = append(p.ws, &scratch{})
	}
}

// InitNode implements sim.Protocol, seeding the view with random peers.
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	for len(p.views) <= int(id) {
		p.views = append(p.views, nil)
	}
	p.views[id] = p.cfg.Sampler.RandomPeers(e, id, p.cfg.InitDegree)
}

// Step implements sim.Protocol: one T-Man gossip exchange initiated by id.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.StepW(e.SeqCtx(), id)
}

// StepW implements sim.Batched: the exchange under an explicit step
// context (the sequential Step routes through it byte-identically).
func (p *Protocol) StepW(ctx *sim.StepCtx, id sim.NodeID) {
	e := ctx.Engine()
	scr := p.ws[ctx.Worker()]
	p.maybeTrimScratch(scr)
	p.purgeDead(ctx, id)
	// Refresh stale coordinates of the whole view: positions move every
	// round under Polystyrene, and the paper attributes most communication
	// traffic to these per-round position updates.
	ctx.Charge(len(p.views[id]) * sim.PointCost(p.cfg.Space.Dim()))

	q := p.selectPartner(ctx, scr, id)
	if q == sim.None {
		return
	}
	ctx.Touch(q)
	p.purgeDead(ctx, q)

	// Each side sends the m descriptors most useful to the other, drawn
	// from its view plus its own fresh descriptor. Both buffers are pooled
	// on the worker slot: merge copies what it keeps into the views.
	scr.msgA = p.buildBuffer(scr, scr.msgA[:0], id, p.pos(q))
	scr.msgB = p.buildBuffer(scr, scr.msgB[:0], q, p.pos(id))
	descCost := sim.DescriptorCost(p.cfg.Space.Dim())
	ctx.Charge((len(scr.msgA) + len(scr.msgB)) * descCost)

	p.merge(e, scr, id, scr.msgB)
	p.merge(e, scr, q, scr.msgA)
}

func (p *Protocol) pos(id sim.NodeID) space.Point { return p.cfg.Position(id) }

// selectPartner draws the exchange partner uniformly from the ψ closest
// live view entries, augmented with one random peer from the sampling
// layer (which guarantees convergence and re-connects isolated nodes).
// Batched steps reuse the ψ ranking their plan already computed (it is
// draw-free, so the stream stays aligned with the plan's replay).
func (p *Protocol) selectPartner(ctx *sim.StepCtx, scr *scratch, id sim.NodeID) sim.NodeID {
	var candidates []sim.NodeID
	if ctx.Batched() {
		candidates = p.psiCache.Append(scr.candBuf[:0], id)
	} else {
		candidates = append(scr.candBuf[:0], p.selectClosest(scr, p.views[id], p.pos(id), p.cfg.Psi)...)
	}
	if r := p.cfg.Sampler.RandomPeerW(ctx, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
		}
	}
	scr.candBuf = candidates
	if len(candidates) == 0 {
		return sim.None
	}
	return candidates[ctx.Rand().Intn(len(candidates))]
}

// buildBuffer appends to dst up to m descriptors from owner's view plus
// owner itself, ranked by proximity to the receiver's position target.
func (p *Protocol) buildBuffer(scr *scratch, dst []sim.NodeID, owner sim.NodeID, target space.Point) []sim.NodeID {
	view := p.views[owner]
	cand := append(scr.candBuf[:0], owner)
	cand = append(cand, view...)
	scr.candBuf = cand
	return append(dst, p.selectClosest(scr, cand, target, p.cfg.MsgSize)...)
}

// selectClosest partially selects the up-to-k IDs of cand whose positions
// are closest to target, ordered by increasing distance (ties toward the
// lower ID). Distances are evaluated once per candidate; selection is a
// topk pass over the slot's pooled scratch and the result aliases that
// scratch: it is only valid until the slot's next selection and must not
// be retained. Nothing is allocated.
func (p *Protocol) selectClosest(scr *scratch, cand []sim.NodeID, target space.Point, k int) []sim.NodeID {
	p.noteScratch(scr, len(cand))
	s := p.cfg.Space
	dist, ids := scr.sel.Get(len(cand))
	for i, c := range cand {
		dist[i] = s.Distance(p.pos(c), target)
		ids[i] = c
	}
	k = topk.SmallestK(dist, ids, k)
	return ids[:k]
}

// merge folds received descriptors into owner's view and keeps the
// entries closest to owner's position, up to the view cap. The capped
// selection writes back into the view's own backing array, so steady-state
// merges allocate nothing.
func (p *Protocol) merge(e *sim.Engine, scr *scratch, owner sim.NodeID, received []sim.NodeID) {
	view := p.views[owner]
	stamp, gen := scr.seen.Next(e.NumNodes())
	stamp[owner] = gen
	for _, v := range view {
		stamp[v] = gen
	}
	for _, r := range received {
		if stamp[r] != gen && e.Alive(r) {
			stamp[r] = gen
			view = append(view, r)
		}
	}
	if len(view) > p.cfg.ViewCap {
		sel := p.selectClosest(scr, view, p.pos(owner), p.cfg.ViewCap)
		view = view[:copy(view, sel)]
	}
	p.views[owner] = view
}

// purgeDead removes crashed nodes from id's view; if the view empties out
// it is re-seeded from the sampling layer (healing after failures),
// appending into the view's own backing so the re-seed allocates nothing.
// A view whose backing array vastly exceeds the surviving entries — the
// aftermath of a catastrophic failure on a small surviving population —
// is compacted so dead capacity is not pinned for the rest of the run.
func (p *Protocol) purgeDead(ctx *sim.StepCtx, id sim.NodeID) {
	e := ctx.Engine()
	view := p.views[id]
	kept := view[:0]
	for _, v := range view {
		if e.Alive(v) {
			kept = append(kept, v)
		}
	}
	floor := len(kept)
	if floor < p.cfg.InitDegree {
		floor = p.cfg.InitDegree
	}
	if len(kept) > 0 && cap(kept) > scratchTrimSlack*floor {
		compact := make([]sim.NodeID, len(kept))
		copy(compact, kept)
		kept = compact
	}
	p.views[id] = kept
	if len(kept) == 0 {
		if cap(kept) < p.cfg.InitDegree {
			kept = make([]sim.NodeID, 0, p.cfg.InitDegree)
		}
		p.views[id] = p.cfg.Sampler.AppendRandomPeersW(ctx, kept, id, p.cfg.InitDegree)
	}
}

// noteScratch records a selection candidate size in the slot's trim
// window's high-water mark.
func (p *Protocol) noteScratch(scr *scratch, n int) {
	if n > scr.hwMark {
		scr.hwMark = n
	}
}

// maybeTrimScratch closes a slot's trim window: when the pooled selection
// and message buffers grew beyond scratchTrimSlack times the window's
// largest actual use, they are released and reallocated at working size on
// next use. This bounds the memory a transient worst case (a
// post-catastrophe merge wave) can pin.
func (p *Protocol) maybeTrimScratch(scr *scratch) {
	scr.hwSteps++
	if scr.hwSteps < scratchTrimInterval {
		return
	}
	limit := scratchTrimSlack * scr.hwMark
	if limit < p.cfg.InitDegree {
		limit = p.cfg.InitDegree
	}
	scr.sel.Shrink(limit)
	if cap(scr.candBuf) > limit {
		scr.candBuf = nil
	}
	if cap(scr.msgA) > limit {
		scr.msgA = nil
	}
	if cap(scr.msgB) > limit {
		scr.msgB = nil
	}
	scr.hwMark, scr.hwSteps = 0, 0
}

// --- sim.Batched ---

// Batchable implements sim.Batched: exchanges are always pair-local.
func (p *Protocol) Batchable() bool { return true }

// BeginBatchedRound implements sim.Batched, sizing per-worker scratch for
// this layer's own pass and for the neighbour queries the layers above
// issue from their workers (AppendNeighborsW).
func (p *Protocol) BeginBatchedRound(e *sim.Engine, workers int) {
	p.EnsureWorkers(workers)
}

// PlanStep implements sim.Batched: it predicts the exchange partner of
// StepW(id) by mirroring the selection prefix — purge (and possible
// re-seed, replicated draw-for-draw on the throwaway stream), the ψ-window
// ranking, the blended random peer and the final uniform pick — without
// mutating any state, and appends {id, partner} (or {id} alone when the
// step will be a no-op) to dst.
func (p *Protocol) PlanStep(e *sim.Engine, rng *xrand.Rand, id sim.NodeID, dst []sim.NodeID) []sim.NodeID {
	dst = append(dst, id)
	// Mirror purgeDead(id): live entries keep their order; an emptied view
	// is re-seeded from the sampling layer.
	view := p.plan.cand[:0]
	for _, v := range p.views[id] {
		if e.Alive(v) {
			view = append(view, v)
		}
	}
	if len(view) == 0 {
		view = p.cfg.Sampler.AppendPlanRandomPeers(view, e, rng, id, p.cfg.InitDegree)
	}
	p.plan.cand = view

	// Mirror selectPartner over the (possibly re-seeded) view, handing
	// the ranked window to StepW through the per-node cache.
	candidates := append(p.plan.part[:0], p.planSelectClosest(view, p.pos(id), p.cfg.Psi)...)
	p.psiCache.Put(id, candidates)
	if r := p.cfg.Sampler.PlanRandomPeer(e, rng, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
		}
	}
	p.plan.part = candidates
	if len(candidates) == 0 {
		return dst
	}
	return append(dst, candidates[rng.Intn(len(candidates))])
}

// planSelectClosest is selectClosest over the matcher's mirror scratch
// (no high-water accounting: planning must not perturb worker trims).
func (p *Protocol) planSelectClosest(cand []sim.NodeID, target space.Point, k int) []sim.NodeID {
	s := p.cfg.Space
	dist, ids := p.plan.sel.Get(len(cand))
	for i, c := range cand {
		dist[i] = s.Distance(p.pos(c), target)
		ids[i] = c
	}
	k = topk.SmallestK(dist, ids, k)
	return ids[:k]
}

// FlushBatch implements sim.Batched (the exchange defers nothing).
func (p *Protocol) FlushBatch(e *sim.Engine) {}

// EndBatchedRound implements sim.Batched.
func (p *Protocol) EndBatchedRound(e *sim.Engine) {}

// --- core.Topology ---

// AppendNeighbors implements core.Topology: it appends the k closest live
// view entries of id to dst, ordered by increasing distance to id's
// current position, and returns the extended slice. With a caller-owned
// buffer the query is allocation-free; this is what the layers above
// consume (Polystyrene migration uses ψ, the evaluation metrics k = 4).
// It runs on worker slot 0 — the sequential engine's and the observers'
// slot; batched steps of layers above use AppendNeighborsW.
func (p *Protocol) AppendNeighbors(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	return p.AppendNeighborsW(0, dst, id, k)
}

// AppendNeighborsW implements core.WorkerTopology: AppendNeighbors over
// worker slot w's selection scratch, so concurrent batched steps of the
// layer above can query the overlay without sharing buffers.
func (p *Protocol) AppendNeighborsW(w int, dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return dst
	}
	scr := p.ws[w]
	return append(dst, p.selectClosest(scr, p.views[id], p.pos(id), k)...)
}

// AppendNeighborsPlan implements core.WorkerTopology: AppendNeighbors over
// the matcher's mirror scratch, for conflict-set planning by the layer
// above (single-threaded, between batches).
func (p *Protocol) AppendNeighborsPlan(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return dst
	}
	return append(dst, p.planSelectClosest(p.views[id], p.pos(id), k)...)
}

// EachNeighbor implements core.Topology: it calls yield for each of the k
// closest live view entries of id in increasing distance order, stopping
// early if yield returns false. The iteration runs over the pooled
// selection scratch, so yield must not call back into this protocol.
func (p *Protocol) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return
	}
	for _, nb := range p.selectClosest(p.ws[0], p.views[id], p.pos(id), k) {
		if !yield(nb) {
			return
		}
	}
}

// Neighbors returns the k closest live view entries of id as a fresh
// slice, ordered by increasing distance to id's current position — the
// legacy one-shot form, kept for callers without a reusable buffer.
// Hot paths use AppendNeighbors or EachNeighbor, which do not allocate.
func (p *Protocol) Neighbors(id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return nil
	}
	sel := p.selectClosest(p.ws[0], p.views[id], p.pos(id), k)
	out := make([]sim.NodeID, len(sel))
	copy(out, sel)
	return out
}

// ViewSize returns the current view size of id (test/metrics helper).
func (p *Protocol) ViewSize(id sim.NodeID) int {
	if id < 0 || int(id) >= len(p.views) {
		return 0
	}
	return len(p.views[id])
}

// View returns a copy of id's raw view.
func (p *Protocol) View(id sim.NodeID) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) {
		return nil
	}
	out := make([]sim.NodeID, len(p.views[id]))
	copy(out, p.views[id])
	return out
}

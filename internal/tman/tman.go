// Package tman implements the T-Man decentralized topology-construction
// protocol (Jelasity, Montresor & Babaoglu, Computer Networks 2009), the
// middle layer of the paper's stack and also its evaluation baseline.
//
// T-Man greedily organises nodes so that each ends up linked to its
// closest peers in a metric space: every round a node picks an exchange
// partner among its ψ closest neighbours, the two swap the m descriptors
// most useful to each other, and both keep the closest entries up to a
// view cap. Fresh random peers from the peer-sampling layer are folded in
// to guarantee convergence from any starting state (paper Sec. II-B).
//
// A key property required by Polystyrene (Sec. II-C) is that T-Man does
// not own node positions: it reads them through a PositionFunc. With plain
// T-Man the function returns the node's fixed original data point; with
// Polystyrene on top it returns the medoid of the node's guests, which
// changes as data points migrate — this is how nodes "move" on the shape.
//
// Message-cost accounting follows the paper (Sec. IV-A): a descriptor
// (ID + position) costs 1 + dim units. Because positions are dynamic,
// T-Man also refreshes the coordinates of every view entry each round
// ("T-Man must update their positions in its view in each round, causing
// most of the traffic", Sec. IV-B), at dim units per entry.
//
// Ranking view entries by distance is the hottest code path of the whole
// simulator, so selections go through topk.SmallestK (partial selection,
// no comparator closures) over scratch buffers pooled on the protocol
// instance, and set-membership during merges uses a generation-stamped
// array indexed by the engine's dense NodeIDs. The engine is sequential,
// so instance-level scratch is safe.
//
// Neighbour queries are exposed through the allocation-free two-form API
// of core.Topology — AppendNeighbors (caller-owned buffer) and
// EachNeighbor (zero-copy visitor over the pooled selection scratch) —
// with the legacy Neighbors form kept as a convenience wrapper. Pooled
// buffers are trimmed against a decaying high-water mark so the merge
// wave after a catastrophic failure does not pin worst-case capacity for
// the rest of a run.
package tman

import (
	"fmt"

	"polystyrene/internal/genset"
	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
	"polystyrene/internal/topk"
)

// Defaults from the paper's experimental setting (Sec. IV-A).
const (
	// DefaultViewCap bounds the T-Man view ("capped to 100 peers").
	DefaultViewCap = 100
	// DefaultMsgSize is m, the number of descriptors per message.
	DefaultMsgSize = 20
	// DefaultPsi is ψ, the number of closest neighbours the exchange
	// partner is drawn from.
	DefaultPsi = 5
	// DefaultInitDegree is the number of random peers a node's view is
	// seeded with ("initialized with 10 random neighbors from RPS").
	DefaultInitDegree = 10
)

// PositionFunc reports the current virtual position of a node. It must
// return a valid point for every live node.
type PositionFunc func(id sim.NodeID) space.Point

// Config parameterises the protocol. Space, Sampler and Position are
// required; zero-valued numeric fields take the paper's defaults.
type Config struct {
	// Space is the metric space positions live in.
	Space space.Space
	// Sampler is the underlying peer-sampling layer.
	Sampler *rps.Protocol
	// Position resolves a node's current virtual position.
	Position PositionFunc
	// ViewCap bounds the view size.
	ViewCap int
	// MsgSize is the number of descriptors per exchanged message (m).
	MsgSize int
	// Psi is the partner-selection window (ψ).
	Psi int
	// InitDegree seeds a joining node's view with this many random peers.
	InitDegree int
}

func (c Config) withDefaults() (Config, error) {
	if c.Space == nil {
		return c, fmt.Errorf("tman: Config.Space is required")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("tman: Config.Sampler is required")
	}
	if c.Position == nil {
		return c, fmt.Errorf("tman: Config.Position is required")
	}
	if c.ViewCap <= 0 {
		c.ViewCap = DefaultViewCap
	}
	if c.MsgSize <= 0 {
		c.MsgSize = DefaultMsgSize
	}
	if c.Psi <= 0 {
		c.Psi = DefaultPsi
	}
	if c.InitDegree <= 0 {
		c.InitDegree = DefaultInitDegree
	}
	return c, nil
}

// Pooled-scratch trimming parameters: every scratchTrimInterval steps the
// protocol compares pooled buffer capacities against scratchTrimSlack
// times the high-water candidate size of the elapsed window and releases
// buffers above it. A 50%-failure round balloons merge candidate sets for
// a few rounds; without the trim those transients would pin worst-case
// capacity for the remainder of a run.
const (
	scratchTrimInterval = 4096
	scratchTrimSlack    = 2
)

// Protocol is the T-Man layer. It implements sim.Protocol and
// core.Topology.
type Protocol struct {
	cfg   Config
	views [][]sim.NodeID

	// sel holds the pooled parallel (distance, id) selection arrays.
	sel topk.Scratch[sim.NodeID]
	// candBuf assembles the owner+view candidate set for buildBuffer and
	// the partner-selection window.
	candBuf []sim.NodeID
	// msgA/msgB are the two in-flight message buffers of Step; both live
	// across a merge pair, so they need separate backing arrays.
	msgA []sim.NodeID
	msgB []sim.NodeID
	// seen is the pooled membership set over dense NodeIDs used by merges.
	seen genset.Set

	// hwMark is the largest selection candidate set of the current trim
	// window; hwSteps counts the steps elapsed in it.
	hwMark  int
	hwSteps int
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns a T-Man layer with the given configuration.
func New(cfg Config) (*Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg}, nil
}

// MustNew is New but panics on configuration errors; intended for tests
// and examples where the configuration is statically known to be valid.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "tman" }

// InitNode implements sim.Protocol, seeding the view with random peers.
func (p *Protocol) InitNode(e *sim.Engine, id sim.NodeID) {
	for len(p.views) <= int(id) {
		p.views = append(p.views, nil)
	}
	p.views[id] = p.cfg.Sampler.RandomPeers(e, id, p.cfg.InitDegree)
}

// Step implements sim.Protocol: one T-Man gossip exchange initiated by id.
func (p *Protocol) Step(e *sim.Engine, id sim.NodeID) {
	p.maybeTrimScratch()
	p.purgeDead(e, id)
	// Refresh stale coordinates of the whole view: positions move every
	// round under Polystyrene, and the paper attributes most communication
	// traffic to these per-round position updates.
	e.Charge(len(p.views[id]) * sim.PointCost(p.cfg.Space.Dim()))

	q := p.selectPartner(e, id)
	if q == sim.None {
		return
	}
	p.purgeDead(e, q)

	// Each side sends the m descriptors most useful to the other, drawn
	// from its view plus its own fresh descriptor. Both buffers are pooled
	// on the instance: merge copies what it keeps into the views.
	p.msgA = p.buildBuffer(p.msgA[:0], id, p.pos(q))
	p.msgB = p.buildBuffer(p.msgB[:0], q, p.pos(id))
	descCost := sim.DescriptorCost(p.cfg.Space.Dim())
	e.Charge((len(p.msgA) + len(p.msgB)) * descCost)

	p.merge(e, id, p.msgB)
	p.merge(e, q, p.msgA)
}

func (p *Protocol) pos(id sim.NodeID) space.Point { return p.cfg.Position(id) }

// selectPartner draws the exchange partner uniformly from the ψ closest
// live view entries, augmented with one random peer from the sampling
// layer (which guarantees convergence and re-connects isolated nodes).
func (p *Protocol) selectPartner(e *sim.Engine, id sim.NodeID) sim.NodeID {
	candidates := p.AppendNeighbors(p.candBuf[:0], id, p.cfg.Psi)
	if r := p.cfg.Sampler.RandomPeer(e, id); r != sim.None && r != id {
		dup := false
		for _, c := range candidates {
			if c == r {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, r)
		}
	}
	p.candBuf = candidates
	if len(candidates) == 0 {
		return sim.None
	}
	return candidates[e.Rand().Intn(len(candidates))]
}

// buildBuffer appends to dst up to m descriptors from owner's view plus
// owner itself, ranked by proximity to the receiver's position target.
func (p *Protocol) buildBuffer(dst []sim.NodeID, owner sim.NodeID, target space.Point) []sim.NodeID {
	view := p.views[owner]
	cand := append(p.candBuf[:0], owner)
	cand = append(cand, view...)
	p.candBuf = cand
	return append(dst, p.selectClosest(cand, target, p.cfg.MsgSize)...)
}

// selectClosest partially selects the up-to-k IDs of cand whose positions
// are closest to target, ordered by increasing distance (ties toward the
// lower ID). Distances are evaluated once per candidate; selection is a
// topk pass over pooled scratch and the result aliases that scratch: it is
// only valid until the next selection and must not be retained. Nothing is
// allocated.
func (p *Protocol) selectClosest(cand []sim.NodeID, target space.Point, k int) []sim.NodeID {
	p.noteScratch(len(cand))
	s := p.cfg.Space
	dist, ids := p.sel.Get(len(cand))
	for i, c := range cand {
		dist[i] = s.Distance(p.pos(c), target)
		ids[i] = c
	}
	k = topk.SmallestK(dist, ids, k)
	return ids[:k]
}

// merge folds received descriptors into owner's view and keeps the
// entries closest to owner's position, up to the view cap. The capped
// selection writes back into the view's own backing array, so steady-state
// merges allocate nothing.
func (p *Protocol) merge(e *sim.Engine, owner sim.NodeID, received []sim.NodeID) {
	view := p.views[owner]
	stamp, gen := p.seen.Next(e.NumNodes())
	stamp[owner] = gen
	for _, v := range view {
		stamp[v] = gen
	}
	for _, r := range received {
		if stamp[r] != gen && e.Alive(r) {
			stamp[r] = gen
			view = append(view, r)
		}
	}
	if len(view) > p.cfg.ViewCap {
		sel := p.selectClosest(view, p.pos(owner), p.cfg.ViewCap)
		view = view[:copy(view, sel)]
	}
	p.views[owner] = view
}

// purgeDead removes crashed nodes from id's view; if the view empties out
// it is re-seeded from the sampling layer (healing after failures). A view
// whose backing array vastly exceeds the surviving entries — the aftermath
// of a catastrophic failure on a small surviving population — is compacted
// so dead capacity is not pinned for the rest of the run.
func (p *Protocol) purgeDead(e *sim.Engine, id sim.NodeID) {
	view := p.views[id]
	kept := view[:0]
	for _, v := range view {
		if e.Alive(v) {
			kept = append(kept, v)
		}
	}
	floor := len(kept)
	if floor < p.cfg.InitDegree {
		floor = p.cfg.InitDegree
	}
	if len(kept) > 0 && cap(kept) > scratchTrimSlack*floor {
		compact := make([]sim.NodeID, len(kept))
		copy(compact, kept)
		kept = compact
	}
	p.views[id] = kept
	if len(kept) == 0 {
		p.views[id] = p.cfg.Sampler.RandomPeers(e, id, p.cfg.InitDegree)
	}
}

// noteScratch records a selection candidate size in the trim window's
// high-water mark.
func (p *Protocol) noteScratch(n int) {
	if n > p.hwMark {
		p.hwMark = n
	}
}

// maybeTrimScratch closes a trim window: when the pooled selection and
// message buffers grew beyond scratchTrimSlack times the window's largest
// actual use, they are released and reallocated at working size on next
// use. This bounds the memory a transient worst case (a post-catastrophe
// merge wave) can pin.
func (p *Protocol) maybeTrimScratch() {
	p.hwSteps++
	if p.hwSteps < scratchTrimInterval {
		return
	}
	limit := scratchTrimSlack * p.hwMark
	if limit < p.cfg.InitDegree {
		limit = p.cfg.InitDegree
	}
	p.sel.Shrink(limit)
	if cap(p.candBuf) > limit {
		p.candBuf = nil
	}
	if cap(p.msgA) > limit {
		p.msgA = nil
	}
	if cap(p.msgB) > limit {
		p.msgB = nil
	}
	p.hwMark, p.hwSteps = 0, 0
}

// AppendNeighbors implements core.Topology: it appends the k closest live
// view entries of id to dst, ordered by increasing distance to id's
// current position, and returns the extended slice. With a caller-owned
// buffer the query is allocation-free; this is what the layers above
// consume (Polystyrene migration uses ψ, the evaluation metrics k = 4).
func (p *Protocol) AppendNeighbors(dst []sim.NodeID, id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return dst
	}
	return append(dst, p.selectClosest(p.views[id], p.pos(id), k)...)
}

// EachNeighbor implements core.Topology: it calls yield for each of the k
// closest live view entries of id in increasing distance order, stopping
// early if yield returns false. The iteration runs over the pooled
// selection scratch, so yield must not call back into this protocol.
func (p *Protocol) EachNeighbor(id sim.NodeID, k int, yield func(sim.NodeID) bool) {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return
	}
	for _, nb := range p.selectClosest(p.views[id], p.pos(id), k) {
		if !yield(nb) {
			return
		}
	}
}

// Neighbors returns the k closest live view entries of id as a fresh
// slice, ordered by increasing distance to id's current position — the
// legacy one-shot form, kept for callers without a reusable buffer.
// Hot paths use AppendNeighbors or EachNeighbor, which do not allocate.
func (p *Protocol) Neighbors(id sim.NodeID, k int) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) || k <= 0 {
		return nil
	}
	sel := p.selectClosest(p.views[id], p.pos(id), k)
	out := make([]sim.NodeID, len(sel))
	copy(out, sel)
	return out
}

// ViewSize returns the current view size of id (test/metrics helper).
func (p *Protocol) ViewSize(id sim.NodeID) int {
	if id < 0 || int(id) >= len(p.views) {
		return 0
	}
	return len(p.views[id])
}

// View returns a copy of id's raw view.
func (p *Protocol) View(id sim.NodeID) []sim.NodeID {
	if id < 0 || int(id) >= len(p.views) {
		return nil
	}
	out := make([]sim.NodeID, len(p.views[id]))
	copy(out, p.views[id])
	return out
}

package tman

import (
	"testing"

	"polystyrene/internal/rps"
	"polystyrene/internal/sim"
	"polystyrene/internal/space"
)

// testNet assembles RPS + T-Man over a fixed set of positions.
type testNet struct {
	engine    *sim.Engine
	sampler   *rps.Protocol
	tman      *Protocol
	positions []space.Point
	space     space.Space
}

func newTestNet(t *testing.T, seed uint64, s space.Space, pts []space.Point, cfg Config) *testNet {
	t.Helper()
	n := &testNet{sampler: rps.New(rps.Config{}), positions: pts, space: s}
	cfg.Space = s
	cfg.Sampler = n.sampler
	cfg.Position = func(id sim.NodeID) space.Point { return n.positions[id] }
	tm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.tman = tm
	n.engine = sim.New(seed, n.sampler, tm)
	n.engine.AddNodes(len(pts))
	return n
}

// proximity returns the mean distance from each live node to its k
// closest T-Man neighbours.
func (n *testNet) proximity(k int) float64 {
	total, count := 0.0, 0
	for _, id := range n.engine.LiveIDs() {
		for _, nb := range n.tman.Neighbors(id, k) {
			total += n.space.Distance(n.positions[id], n.positions[nb])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Space: space.NewEuclidean(2)}); err == nil {
		t.Fatal("config without sampler accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestDefaultsApplied(t *testing.T) {
	cfg, err := Config{
		Space:    space.NewEuclidean(2),
		Sampler:  rps.New(rps.Config{}),
		Position: func(sim.NodeID) space.Point { return space.Point{0, 0} },
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ViewCap != DefaultViewCap || cfg.MsgSize != DefaultMsgSize ||
		cfg.Psi != DefaultPsi || cfg.InitDegree != DefaultInitDegree {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestInitSeedsViews(t *testing.T) {
	pts := space.TorusGrid(10, 10, 1)
	net := newTestNet(t, 1, space.TorusForGrid(10, 10, 1), pts, Config{})
	empty := 0
	for _, id := range net.engine.LiveIDs() {
		if net.tman.ViewSize(id) == 0 {
			empty++
		}
	}
	// Only the earliest joiners (bootstrapping an empty network) may start
	// with few peers.
	if empty > 2 {
		t.Fatalf("%d nodes started with empty T-Man views", empty)
	}
}

func TestConvergenceOnTorusGrid(t *testing.T) {
	// On a 20x10 grid with step 1, a converged T-Man gives each node 4
	// neighbours at distance 1, so proximity ~1. Paper: converges in <20
	// rounds for 3200 nodes; our smaller grid is faster.
	const w, h = 20, 10
	pts := space.TorusGrid(w, h, 1)
	net := newTestNet(t, 2, space.TorusForGrid(w, h, 1), pts, Config{})
	net.engine.RunRounds(20)
	if prox := net.proximity(4); prox > 1.05 {
		t.Fatalf("proximity after 20 rounds = %v, want ~1.0", prox)
	}
}

func TestNeighborsSortedByDistance(t *testing.T) {
	pts := space.TorusGrid(10, 10, 1)
	s := space.TorusForGrid(10, 10, 1)
	net := newTestNet(t, 3, s, pts, Config{})
	net.engine.RunRounds(10)
	for _, id := range net.engine.LiveIDs() {
		nbs := net.tman.Neighbors(id, 6)
		for i := 1; i < len(nbs); i++ {
			d0 := s.Distance(pts[id], pts[nbs[i-1]])
			d1 := s.Distance(pts[id], pts[nbs[i]])
			if d0 > d1+1e-9 {
				t.Fatalf("node %d neighbours not sorted: %v then %v", id, d0, d1)
			}
		}
	}
}

func TestViewCapRespected(t *testing.T) {
	pts := space.TorusGrid(12, 12, 1)
	net := newTestNet(t, 4, space.TorusForGrid(12, 12, 1), pts, Config{ViewCap: 7})
	net.engine.RunRounds(15)
	for _, id := range net.engine.LiveIDs() {
		if got := net.tman.ViewSize(id); got > 7 {
			t.Fatalf("node %d view size %d exceeds cap 7", id, got)
		}
	}
}

func TestNoSelfOrDuplicateInView(t *testing.T) {
	pts := space.TorusGrid(8, 8, 1)
	net := newTestNet(t, 5, space.TorusForGrid(8, 8, 1), pts, Config{})
	net.engine.RunRounds(10)
	for _, id := range net.engine.LiveIDs() {
		seen := map[sim.NodeID]bool{}
		for _, v := range net.tman.View(id) {
			if v == id {
				t.Fatalf("node %d references itself", id)
			}
			if seen[v] {
				t.Fatalf("node %d has duplicate %d", id, v)
			}
			seen[v] = true
		}
	}
}

func TestHealingAfterUncorrelatedChurn(t *testing.T) {
	pts := space.TorusGrid(12, 12, 1)
	s := space.TorusForGrid(12, 12, 1)
	net := newTestNet(t, 6, s, pts, Config{})
	net.engine.RunRounds(15)
	// Kill 30% of nodes at random (uncorrelated churn).
	rng := net.engine.Rand()
	for _, idx := range rng.Sample(len(pts), len(pts)*3/10) {
		net.engine.Kill(sim.NodeID(idx))
	}
	net.engine.RunRounds(15)
	for _, id := range net.engine.LiveIDs() {
		for _, v := range net.tman.View(id) {
			if !net.engine.Alive(v) {
				t.Fatalf("node %d still references dead node %d", id, v)
			}
		}
		if len(net.tman.Neighbors(id, 2)) == 0 {
			t.Fatalf("node %d is isolated after churn", id)
		}
	}
}

func TestShapeLossAfterCorrelatedFailure(t *testing.T) {
	// The motivating observation (Fig. 1): plain T-Man heals its links but
	// cannot recover the torus shape — surviving nodes keep their original
	// positions, so the left half stays at proximity ~1 while the whole
	// right half of the shape remains empty. We assert the healing part
	// here; shape (homogeneity) assertions live in the metrics/scenario
	// packages.
	const w, h = 16, 8
	pts := space.TorusGrid(w, h, 1)
	s := space.TorusForGrid(w, h, 1)
	net := newTestNet(t, 7, s, pts, Config{})
	net.engine.RunRounds(20)
	for i, p := range pts {
		if space.RightHalf(p, float64(w)) {
			net.engine.Kill(sim.NodeID(i))
		}
	}
	net.engine.RunRounds(20)
	if live := net.engine.NumLive(); live != w*h/2 {
		t.Fatalf("live = %d, want %d", live, w*h/2)
	}
	for _, id := range net.engine.LiveIDs() {
		for _, v := range net.tman.View(id) {
			if !net.engine.Alive(v) {
				t.Fatalf("node %d references dead node %d after healing", id, v)
			}
		}
	}
	// Positions never moved: every survivor is still in the left half.
	for _, id := range net.engine.LiveIDs() {
		if space.RightHalf(pts[id], float64(w)) {
			t.Fatalf("node %d in right half survived the kill", id)
		}
	}
}

func TestDynamicPositionsAreHonoured(t *testing.T) {
	// Moving a node's position (as Polystyrene does) must steer its
	// neighbourhood to the new location.
	const w, h = 16, 8
	pts := space.TorusGrid(w, h, 1)
	s := space.TorusForGrid(w, h, 1)
	net := newTestNet(t, 8, s, pts, Config{})
	net.engine.RunRounds(15)
	// Teleport node 0 to the far corner of the torus.
	target := space.Point{12, 4}
	net.positions[0] = target
	net.engine.RunRounds(15)
	nbs := net.tman.Neighbors(0, 4)
	if len(nbs) == 0 {
		t.Fatal("node 0 has no neighbours after moving")
	}
	for _, nb := range nbs {
		if d := s.Distance(target, net.positions[nb]); d > 2.5 {
			t.Fatalf("neighbour %d at distance %v from new position; view did not follow the move", nb, d)
		}
	}
}

func TestMessageCostCharged(t *testing.T) {
	pts := space.TorusGrid(10, 10, 1)
	net := newTestNet(t, 9, space.TorusForGrid(10, 10, 1), pts, Config{})
	net.engine.RunRounds(5)
	if cost := net.engine.Meter().TotalCost("tman"); cost == 0 {
		t.Fatal("T-Man charged no communication cost")
	}
	// Per-round, per-node cost must be bounded by refresh (viewCap*2) plus
	// two buffers per exchange and a node can partner in several exchanges.
	perNode := float64(net.engine.Meter().RoundCost("tman", 4)) / 100
	upper := float64(DefaultViewCap*2 + 10*2*DefaultMsgSize*3)
	if perNode <= 0 || perNode > upper {
		t.Fatalf("per-node round cost %v outside (0, %v]", perNode, upper)
	}
}

func TestNeighborsEdgeCases(t *testing.T) {
	pts := space.TorusGrid(4, 4, 1)
	net := newTestNet(t, 10, space.TorusForGrid(4, 4, 1), pts, Config{})
	if got := net.tman.Neighbors(99, 4); got != nil {
		t.Fatalf("unknown node neighbours = %v", got)
	}
	if got := net.tman.Neighbors(0, 0); got != nil {
		t.Fatalf("k=0 neighbours = %v", got)
	}
	if got := net.tman.View(99); got != nil {
		t.Fatalf("unknown node view = %v", got)
	}
	if got := net.tman.ViewSize(99); got != 0 {
		t.Fatalf("unknown node view size = %d", got)
	}
}

package topk

import (
	"sort"
	"testing"

	"polystyrene/internal/xrand"
)

func benchInput(n int) ([]float64, []int) {
	rng := xrand.New(3)
	keys := make([]float64, n)
	payload := make([]int, n)
	for i := range keys {
		keys[i] = rng.Float64()
		payload[i] = i
	}
	return keys, payload
}

// BenchmarkSmallestK mirrors the T-Man merge shape: keep the 20 closest
// of ~120 candidates.
func BenchmarkSmallestK(b *testing.B) {
	keys, payload := benchInput(120)
	ks := make([]float64, len(keys))
	ps := make([]int, len(payload))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ks, keys)
		copy(ps, payload)
		SmallestK(ks, ps, 20)
	}
}

// BenchmarkSortSliceBaseline is the approach SmallestK replaced, kept so
// the bench trajectory shows the win.
func BenchmarkSortSliceBaseline(b *testing.B) {
	keys, payload := benchInput(120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ks := append([]float64(nil), keys...)
		ps := append([]int(nil), payload...)
		idx := make([]int, len(ks))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, c int) bool { return ks[idx[a]] < ks[idx[c]] })
		_ = ps
	}
}
